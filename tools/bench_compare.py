#!/usr/bin/env python3
"""Compare two BENCH JSON files produced by tools/bench_runner.py.

Usage: bench_compare.py OLD.json NEW.json [--threshold PCT]
                        [--cell BENCHMARK/SCHEME/NPROCS]
       bench_compare.py --check FILE.json

Cells are keyed by (benchmark, scheme, nprocs). The comparison FAILS
(exit 1) when a cell present in OLD is missing from NEW, or when a
cell's makespan regressed by more than --threshold percent (default 5).
Because the simulator is fully deterministic, any makespan change at all
is a real behavioral change; the threshold only decides how large a
slowdown blocks CI. Improvements and sub-threshold drifts are reported
but don't fail.

--cell restricts the comparison to one cell, e.g. --cell TreeAdd/local/8.

--check validates a single file's schema (structure, bucket arithmetic,
critical-path exactness) without comparing — used by CI on freshly
generated files before they're trusted as a comparison side.

Exit codes are distinct so CI scripts can tell the failure modes apart:
  0  OK
  1  comparison failed (regression, or a baseline cell missing from NEW)
  2  usage error
  3  an input file is unusable (missing, unreadable, empty, not JSON, or
     schema-invalid) — always a one-line error, never a traceback
  4  the requested --cell is absent from both files, or the two files
     share no cells at all

Stdlib only, so it can run in any CI image.
"""

import json
import sys

BENCH_SCHEMA_VERSION = 1

BUCKET_KEYS = ["compute", "migration", "cache_stall", "coherence", "idle"]

SCHEMES = {"local", "global", "bilateral"}


EXIT_OK = 0
EXIT_COMPARE_FAILED = 1
EXIT_USAGE = 2
EXIT_BAD_INPUT = 3
EXIT_NO_SUCH_CELL = 4


class SchemaError(Exception):
    pass


def require(cond, msg):
    if not cond:
        raise SchemaError(msg)


def check_document(doc, path):
    require(isinstance(doc, dict), f"{path}: top level must be an object")
    require(doc.get("bench_schema_version") == BENCH_SCHEMA_VERSION,
            f"{path}: bench_schema_version must be {BENCH_SCHEMA_VERSION}, "
            f"got {doc.get('bench_schema_version')!r}")
    require(doc.get("generator") == "bench_runner",
            f"{path}: generator must be 'bench_runner'")
    require(isinstance(doc.get("revision"), str),
            f"{path}: missing revision")
    require(doc.get("mode") in ("tiny", "default", "paper"),
            f"{path}: mode must be 'tiny', 'default' or 'paper'")
    require(isinstance(doc.get("nprocs"), int) and doc["nprocs"] >= 1,
            f"{path}: nprocs must be a positive integer")
    cells = doc.get("cells")
    require(isinstance(cells, list) and cells, f"{path}: missing cells")
    seen = set()
    for cell in cells:
        ctx = (f"{path} cell "
               f"{cell.get('benchmark')}/{cell.get('scheme')}")
        require(isinstance(cell.get("benchmark"), str) and cell["benchmark"],
                f"{ctx}: missing benchmark")
        require(cell.get("scheme") in SCHEMES,
                f"{ctx}: scheme must be one of {sorted(SCHEMES)}")
        require(isinstance(cell.get("nprocs"), int) and cell["nprocs"] >= 1,
                f"{ctx}: bad nprocs")
        key = cell_key(cell)
        require(key not in seen, f"{ctx}: duplicate cell")
        seen.add(key)
        require(isinstance(cell.get("makespan_cycles"), int)
                and cell["makespan_cycles"] > 0,
                f"{ctx}: bad makespan_cycles")
        buckets = cell.get("buckets")
        require(isinstance(buckets, dict), f"{ctx}: missing buckets")
        for bkey in BUCKET_KEYS:
            require(isinstance(buckets.get(bkey), int) and buckets[bkey] >= 0,
                    f"{ctx}: bucket {bkey!r} must be a non-negative integer")
        # Per-processor buckets each sum to the makespan, so the totals sum
        # to nprocs * makespan.
        require(sum(buckets[k] for k in BUCKET_KEYS)
                == cell["nprocs"] * cell["makespan_cycles"],
                f"{ctx}: buckets don't sum to nprocs * makespan")
        require(isinstance(cell.get("counters"), dict),
                f"{ctx}: missing counters")
        require(isinstance(cell.get("miss_rate_percent"), (int, float)),
                f"{ctx}: missing miss_rate_percent")
        cp = cell.get("critical_path")
        if cp is not None:
            require(cp.get("total_cycles") == cell["makespan_cycles"],
                    f"{ctx}: critical path != makespan")
            attr = cp.get("attribution")
            require(isinstance(attr, dict), f"{ctx}: missing attribution")
            require(sum(attr.get(k, 0) for k in BUCKET_KEYS)
                    == cp["total_cycles"],
                    f"{ctx}: attribution doesn't sum to the path length")
    return len(cells)


def cell_key(cell):
    return (cell["benchmark"], cell["scheme"], cell["nprocs"])


def load(path):
    """Load and validate one BENCH file; SchemaError on anything unusable."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        raise SchemaError(f"{path}: cannot read file ({e.strerror})")
    if not text.strip():
        raise SchemaError(f"{path}: file is empty")
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        raise SchemaError(f"{path}: not valid JSON ({e.msg} at line "
                          f"{e.lineno})")
    check_document(doc, path)
    return doc


def parse_cell_selector(sel):
    """BENCHMARK/SCHEME/NPROCS -> cell key tuple, or None if malformed."""
    parts = sel.split("/")
    if len(parts) != 3 or not parts[0] or not parts[1]:
        return None
    try:
        nprocs = int(parts[2])
    except ValueError:
        return None
    return (parts[0], parts[1], nprocs)


def compare(old_doc, new_doc, threshold, only_cell=None):
    old = {cell_key(c): c for c in old_doc["cells"]}
    new = {cell_key(c): c for c in new_doc["cells"]}
    if only_cell is not None:
        old = {k: v for k, v in old.items() if k == only_cell}
        new = {k: v for k, v in new.items() if k == only_cell}
    regressions, improvements, drifts = [], [], []
    missing = sorted(set(old) - set(new))
    added = sorted(set(new) - set(old))
    for key in sorted(set(old) & set(new)):
        before = old[key]["makespan_cycles"]
        after = new[key]["makespan_cycles"]
        delta = 100.0 * (after - before) / before
        name = f"{key[0]}/{key[1]}/p={key[2]}"
        line = f"{name}: {before} -> {after} cycles ({delta:+.2f}%)"
        if delta > threshold:
            regressions.append(line)
        elif delta < -threshold:
            improvements.append(line)
        elif after != before:
            drifts.append(line)

    for title, lines in (("REGRESSION", regressions),
                         ("improvement", improvements),
                         ("drift (within threshold)", drifts)):
        for line in lines:
            print(f"{title:>24}  {line}")
    for key in missing:
        print(f"{'MISSING CELL':>24}  {key[0]}/{key[1]}/p={key[2]}")
    for key in added:
        print(f"{'new cell':>24}  {key[0]}/{key[1]}/p={key[2]}")

    total = len(set(old) & set(new))
    unchanged = total - len(regressions) - len(improvements) - len(drifts)
    print(f"compared {total} cells "
          f"({old_doc['revision']} -> {new_doc['revision']}): "
          f"{unchanged} unchanged, {len(drifts)} drifted, "
          f"{len(improvements)} improved, {len(regressions)} regressed, "
          f"{len(missing)} missing (threshold {threshold:g}%)")
    return not regressions and not missing


def main(argv):
    args = argv[1:]
    threshold = 5.0
    only_cell = None
    if "--check" in args:
        args.remove("--check")
        if len(args) != 1:
            print(__doc__.strip(), file=sys.stderr)
            return EXIT_USAGE
        try:
            doc = load(args[0])
        except SchemaError as e:
            print(f"FAIL: {e}", file=sys.stderr)
            return EXIT_BAD_INPUT
        print(f"OK   {args[0]}: {len(doc['cells'])} cells, "
              f"schema v{BENCH_SCHEMA_VERSION}")
        return EXIT_OK
    if "--threshold" in args:
        i = args.index("--threshold")
        try:
            threshold = float(args[i + 1])
        except (IndexError, ValueError):
            print(__doc__.strip(), file=sys.stderr)
            return EXIT_USAGE
        del args[i:i + 2]
    if "--cell" in args:
        i = args.index("--cell")
        if i + 1 >= len(args):
            print(__doc__.strip(), file=sys.stderr)
            return EXIT_USAGE
        only_cell = parse_cell_selector(args[i + 1])
        if only_cell is None:
            print(f"bench_compare: bad --cell {args[i + 1]!r} "
                  "(want BENCHMARK/SCHEME/NPROCS, e.g. TreeAdd/local/8)",
                  file=sys.stderr)
            return EXIT_USAGE
        del args[i:i + 2]
    if len(args) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return EXIT_USAGE
    try:
        old_doc = load(args[0])
        new_doc = load(args[1])
    except SchemaError as e:
        print(f"FAIL: {e}", file=sys.stderr)
        return EXIT_BAD_INPUT
    if old_doc["mode"] != new_doc["mode"]:
        print(f"FAIL: comparing a {old_doc['mode']!r}-size run against a "
              f"{new_doc['mode']!r}-size run is meaningless", file=sys.stderr)
        return EXIT_COMPARE_FAILED
    old_keys = {cell_key(c) for c in old_doc["cells"]}
    new_keys = {cell_key(c) for c in new_doc["cells"]}
    if only_cell is not None and only_cell not in old_keys | new_keys:
        name = f"{only_cell[0]}/{only_cell[1]}/p={only_cell[2]}"
        print(f"FAIL: cell {name} is absent from both files",
              file=sys.stderr)
        return EXIT_NO_SUCH_CELL
    if not old_keys & new_keys:
        print("FAIL: the two files share no cells — nothing to compare",
              file=sys.stderr)
        return EXIT_NO_SUCH_CELL
    ok = compare(old_doc, new_doc, threshold, only_cell)
    return EXIT_OK if ok else EXIT_COMPARE_FAILED


if __name__ == "__main__":
    sys.exit(main(sys.argv))
