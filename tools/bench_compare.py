#!/usr/bin/env python3
"""Compare two BENCH JSON files produced by tools/bench_runner.py.

Usage: bench_compare.py OLD.json NEW.json [--threshold PCT]
                        [--cell BENCHMARK/SCHEME/NPROCS] [--ci-gate]
                        [--traces-old DIR --traces-new DIR --analyze BIN]
                        [--diff-top K]
       bench_compare.py --check FILE.json

Cells are keyed by (benchmark, scheme, nprocs). The comparison FAILS
(exit 1) when a cell present in OLD is missing from NEW, or when a
cell's makespan regressed by more than --threshold percent (default 5).
Every regressed cell is reported — the comparison never stops at the
first one. Because the simulator is fully deterministic, any makespan
change at all is a real behavioral change; the threshold only decides
how large a slowdown blocks CI. Improvements and sub-threshold drifts
are reported but don't fail.

--cell restricts the comparison to one cell, e.g. --cell TreeAdd/local/8.

--traces-old/--traces-new name archives written by bench_runner.py
--keep-traces (one <benchmark>.trace.bin per benchmark). When both are
given along with --analyze (the olden-analyze binary), every regressed
cell whose traces exist on both sides is automatically attributed:
`olden-analyze --diff` decomposes the makespan delta and the top-K
responsible edges, sites and buckets are attached to the report
(--diff-top, default 5). A run that regressed *and* carries at least one
such attribution exits 5 instead of 1, so CI can tell "regression with a
named cause" from a bare failure. Attribution is strictly best-effort
per cell: an archive missing one cell's trace (an interrupted
--keep-traces run), an analyze binary that fails, or a diff document
with an unexpected shape degrades that one cell to a "trace
unavailable"/"no diff attribution" note — it never aborts the pass or
changes the exit-code contract below.

--check validates a single file's schema (structure, bucket arithmetic,
critical-path exactness) without comparing — used by CI on freshly
generated files before they're trusted as a comparison side.

Cells produced by bench_runner.py --sample carry "sampled": true and a
makespan_ci95 field (docs/SAMPLING.md). Comparing a sampled cell
against an exact one is refused by default with a structured
"SAMPLED MISMATCH" report and exit 6 — the sides measured different
things, and silently diffing an estimate against an exact value would
launder sampling error into a pass/fail verdict. Pass --ci-gate to
authorize the mix: gating then becomes CI-aware, flagging a regression
only when the makespans' 95% confidence intervals separate by more
than the threshold (exact cells have zero-width intervals, so
exact-vs-exact behavior is unchanged).

Exit codes are distinct so CI scripts can tell the failure modes apart:
  0  OK
  1  comparison failed (regression, or a baseline cell missing from NEW)
  2  usage error
  3  an input file is unusable (missing, unreadable, empty, not JSON, or
     schema-invalid) — always a one-line error, never a traceback
  4  the requested --cell is absent from both files, or the two files
     share no cells at all
  5  regression found AND at least one cell's diff attribution was
     attached (--traces-old/--traces-new/--analyze)
  6  a sampled cell was compared against an exact one without --ci-gate

Stdlib only, so it can run in any CI image.
"""

import json
import os
import subprocess
import sys

BENCH_SCHEMA_VERSION = 1

BUCKET_KEYS = ["compute", "migration", "cache_stall", "coherence", "idle"]

SCHEMES = {"local", "global", "bilateral", "adaptive"}


EXIT_OK = 0
EXIT_COMPARE_FAILED = 1
EXIT_USAGE = 2
EXIT_BAD_INPUT = 3
EXIT_NO_SUCH_CELL = 4
EXIT_REGRESSION_ATTRIBUTED = 5
EXIT_SAMPLED_MISMATCH = 6

DIFF_SCHEMA_VERSION = 1


class SchemaError(Exception):
    pass


def require(cond, msg):
    if not cond:
        raise SchemaError(msg)


def check_document(doc, path):
    require(isinstance(doc, dict), f"{path}: top level must be an object")
    require(doc.get("bench_schema_version") == BENCH_SCHEMA_VERSION,
            f"{path}: bench_schema_version must be {BENCH_SCHEMA_VERSION}, "
            f"got {doc.get('bench_schema_version')!r}")
    require(doc.get("generator") == "bench_runner",
            f"{path}: generator must be 'bench_runner'")
    require(isinstance(doc.get("revision"), str),
            f"{path}: missing revision")
    require(doc.get("mode") in ("tiny", "default", "paper"),
            f"{path}: mode must be 'tiny', 'default' or 'paper'")
    require(isinstance(doc.get("nprocs"), int) and doc["nprocs"] >= 1,
            f"{path}: nprocs must be a positive integer")
    cells = doc.get("cells")
    require(isinstance(cells, list) and cells, f"{path}: missing cells")
    sample = doc.get("sample")
    require(sample is None or (isinstance(sample, str) and sample),
            f"{path}: sample, when present, must be a W:D[:OFFSET] string")
    seen = set()
    for cell in cells:
        ctx = (f"{path} cell "
               f"{cell.get('benchmark')}/{cell.get('scheme')}")
        require(isinstance(cell.get("benchmark"), str) and cell["benchmark"],
                f"{ctx}: missing benchmark")
        require(cell.get("scheme") in SCHEMES,
                f"{ctx}: scheme must be one of {sorted(SCHEMES)}")
        require(isinstance(cell.get("nprocs"), int) and cell["nprocs"] >= 1,
                f"{ctx}: bad nprocs")
        key = cell_key(cell)
        require(key not in seen, f"{ctx}: duplicate cell")
        seen.add(key)
        require(isinstance(cell.get("makespan_cycles"), int)
                and cell["makespan_cycles"] > 0,
                f"{ctx}: bad makespan_cycles")
        buckets = cell.get("buckets")
        require(isinstance(buckets, dict), f"{ctx}: missing buckets")
        for bkey in BUCKET_KEYS:
            require(isinstance(buckets.get(bkey), int) and buckets[bkey] >= 0,
                    f"{ctx}: bucket {bkey!r} must be a non-negative integer")
        # Per-processor buckets each sum to the makespan, so the totals sum
        # to nprocs * makespan.
        require(sum(buckets[k] for k in BUCKET_KEYS)
                == cell["nprocs"] * cell["makespan_cycles"],
                f"{ctx}: buckets don't sum to nprocs * makespan")
        require(isinstance(cell.get("counters"), dict),
                f"{ctx}: missing counters")
        require(isinstance(cell.get("miss_rate_percent"), (int, float)),
                f"{ctx}: missing miss_rate_percent")
        if "sampled" in cell:
            require(cell["sampled"] is True,
                    f"{ctx}: sampled, when present, must be true")
            require(isinstance(cell.get("makespan_ci95"), int)
                    and cell["makespan_ci95"] >= 0,
                    f"{ctx}: sampled cells need a non-negative "
                    f"makespan_ci95")
            require(cell.get("critical_path") is None,
                    f"{ctx}: sampled cells cannot carry a critical path "
                    f"(per-event emission is suppressed)")
        else:
            require("makespan_ci95" not in cell,
                    f"{ctx}: makespan_ci95 on an exact cell")
        cp = cell.get("critical_path")
        if cp is not None:
            require(cp.get("total_cycles") == cell["makespan_cycles"],
                    f"{ctx}: critical path != makespan")
            attr = cp.get("attribution")
            require(isinstance(attr, dict), f"{ctx}: missing attribution")
            require(sum(attr.get(k, 0) for k in BUCKET_KEYS)
                    == cp["total_cycles"],
                    f"{ctx}: attribution doesn't sum to the path length")
        # A document generated under --sample marks every cell; the
        # reverse is tolerated (a hand-merged subset can mix modes, and
        # the comparison loop handles the mix per cell).
        if sample is not None:
            require("sampled" in cell,
                    f"{ctx}: document has a sample schedule but this "
                    f"cell is exact")
    return len(cells)


def cell_key(cell):
    return (cell["benchmark"], cell["scheme"], cell["nprocs"])


def load(path):
    """Load and validate one BENCH file; SchemaError on anything unusable."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        raise SchemaError(f"{path}: cannot read file ({e.strerror})")
    if not text.strip():
        raise SchemaError(f"{path}: file is empty")
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        raise SchemaError(f"{path}: not valid JSON ({e.msg} at line "
                          f"{e.lineno})")
    check_document(doc, path)
    return doc


def parse_cell_selector(sel):
    """BENCHMARK/SCHEME/NPROCS -> cell key tuple, or None if malformed."""
    parts = sel.split("/")
    if len(parts) != 3 or not parts[0] or not parts[1]:
        return None
    try:
        nprocs = int(parts[2])
    except ValueError:
        return None
    return (parts[0], parts[1], nprocs)


def compare(old_doc, new_doc, threshold, only_cell=None, ci_gate=False):
    """Print the comparison; return (ok, regressed_keys, mismatched)."""
    old = {cell_key(c): c for c in old_doc["cells"]}
    new = {cell_key(c): c for c in new_doc["cells"]}
    if only_cell is not None:
        old = {k: v for k, v in old.items() if k == only_cell}
        new = {k: v for k, v in new.items() if k == only_cell}
    regressions, improvements, drifts, mismatched = [], [], [], []
    regressed_keys = []
    missing = sorted(set(old) - set(new))
    added = sorted(set(new) - set(old))
    for key in sorted(set(old) & set(new)):
        name = f"{key[0]}/{key[1]}/p={key[2]}"
        old_sampled = old[key].get("sampled", False)
        new_sampled = new[key].get("sampled", False)
        if old_sampled != new_sampled and not ci_gate:
            # The sides measured different things; diffing an estimate
            # against an exact value without acknowledging it would
            # launder sampling error into a pass/fail verdict.
            mismatched.append(
                f"{name}: OLD is {'sampled' if old_sampled else 'exact'}, "
                f"NEW is {'sampled' if new_sampled else 'exact'} — rerun "
                f"with matching modes or pass --ci-gate")
            continue
        before = old[key]["makespan_cycles"]
        after = new[key]["makespan_cycles"]
        ci_before = old[key].get("makespan_ci95", 0)
        ci_after = new[key].get("makespan_ci95", 0)
        delta = 100.0 * (after - before) / before
        line = f"{name}: {before} -> {after} cycles ({delta:+.2f}%)"
        if old_sampled or new_sampled:
            line += f" [ci95 {ci_before} -> {ci_after}]"
        # CI-aware gating: a regression only counts when the intervals
        # separate — the worst-credible new makespan still exceeds the
        # best-credible old one. Exact cells have zero-width intervals,
        # so exact-vs-exact behavior is exactly the old threshold rule.
        separated = after - ci_after > before + ci_before
        if delta > threshold and separated:
            regressions.append(line)
            regressed_keys.append(key)
        elif delta < -threshold:
            improvements.append(line)
        elif after != before:
            drifts.append(line)

    for title, lines in (("SAMPLED MISMATCH", mismatched),
                         ("REGRESSION", regressions),
                         ("improvement", improvements),
                         ("drift (within threshold)", drifts)):
        for line in lines:
            print(f"{title:>24}  {line}")
    for key in missing:
        print(f"{'MISSING CELL':>24}  {key[0]}/{key[1]}/p={key[2]}")
    for key in added:
        print(f"{'new cell':>24}  {key[0]}/{key[1]}/p={key[2]}")

    total = len(set(old) & set(new))
    compared = total - len(mismatched)
    unchanged = compared - len(regressions) - len(improvements) - len(drifts)
    print(f"compared {compared} cells "
          f"({old_doc['revision']} -> {new_doc['revision']}): "
          f"{unchanged} unchanged, {len(drifts)} drifted, "
          f"{len(improvements)} improved, {len(regressions)} regressed, "
          f"{len(missing)} missing, {len(mismatched)} sampled-mismatched "
          f"(threshold {threshold:g}%)")
    ok = not regressions and not missing and not mismatched
    return ok, regressed_keys, bool(mismatched)


def describe_edge(edge):
    where = f" @ site {edge['site']}" if edge.get("site") is not None else ""
    return (f"{edge['delta']:+d} {edge['bucket']} "
            f"{edge['src']} -> {edge['dst']}{where} "
            f"({edge['a']} -> {edge['b']})")


def attribute_regression(key, diff_cfg):
    """Diff one regressed cell's archived traces; True if attached.

    A missing trace or a failing olden-analyze degrades to a note, never
    an error: attribution is best-effort garnish on an already-failing
    comparison."""
    bench, scheme, nprocs = key
    name = f"{bench}/{scheme}/p={nprocs}"
    old_trace = os.path.join(diff_cfg["traces_old"], f"{bench}.trace.bin")
    new_trace = os.path.join(diff_cfg["traces_new"], f"{bench}.trace.bin")
    missing = [p for p in (old_trace, new_trace) if not os.path.isfile(p)]
    if missing:
        # An interrupted --keep-traces run leaves a partial archive; the
        # cells it did capture still deserve attribution.
        print(f"  {name}: trace unavailable "
              f"({', '.join(missing)}) — skipping attribution")
        return False
    label = f"BENCH/{bench}/p={nprocs}/{scheme}"
    cmd = [diff_cfg["analyze"], "--diff", old_trace, new_trace,
           "--run", label, "--json", "--top", str(diff_cfg["top"])]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True)
    except OSError as e:
        print(f"  {name}: no diff attribution (cannot run "
              f"{diff_cfg['analyze']}: {e.strerror})")
        return False
    if proc.returncode != 0:
        print(f"  {name}: no diff attribution (olden-analyze exit "
              f"{proc.returncode}: {proc.stderr.strip()})")
        return False
    try:
        doc = json.loads(proc.stdout)
    except json.JSONDecodeError:
        print(f"  {name}: no diff attribution (unparseable diff JSON)")
        return False
    if doc.get("diff_schema_version") != DIFF_SCHEMA_VERSION or \
            not doc.get("diffs"):
        print(f"  {name}: no diff attribution (unexpected diff schema "
              f"{doc.get('diff_schema_version')!r})")
        return False
    try:
        d = doc["diffs"][0]
        print(f"  {name}: {d['makespan_delta_cycles']:+d} cycles "
              f"({d['makespan_delta_percent']:+.2f}%), attributed exactly:")
        moved = [b for b in d["buckets"] if b["delta"] != 0]
        moved.sort(key=lambda b: -abs(b["delta"]))
        print("    buckets: " + (", ".join(
            f"{b['bucket']} {b['delta']:+d}" for b in moved)
            or "(no movement)"))
        for edge in d["edges"]["top"]:
            print(f"    edge {describe_edge(edge)}")
        for site in d["sites"]["top"]:
            sname = ("(no site)" if site.get("site") is None
                     else f"site {site['site']}")
            print(f"    {sname}: {site['delta']:+d} "
                  f"({site['a']} -> {site['b']})")
    except (KeyError, IndexError, TypeError, ValueError) as e:
        # A malformed diff document from a mismatched analyze build must
        # not traceback out of the whole attribution pass.
        print(f"  {name}: no diff attribution "
              f"(diff JSON missing expected field: {e})")
        return False
    return True


def attribute_regressions(regressed_keys, diff_cfg):
    """Attach --diff attributions to every regressed cell; count attached."""
    print(f"diff attribution (top {diff_cfg['top']}, "
          f"{diff_cfg['traces_old']} -> {diff_cfg['traces_new']}):")
    return sum(1 for key in regressed_keys
               if attribute_regression(key, diff_cfg))


def main(argv):
    args = argv[1:]
    threshold = 5.0
    only_cell = None
    ci_gate = False
    if "--ci-gate" in args:
        args.remove("--ci-gate")
        ci_gate = True
    if "--check" in args:
        args.remove("--check")
        if len(args) != 1:
            print(__doc__.strip(), file=sys.stderr)
            return EXIT_USAGE
        try:
            doc = load(args[0])
        except SchemaError as e:
            print(f"FAIL: {e}", file=sys.stderr)
            return EXIT_BAD_INPUT
        print(f"OK   {args[0]}: {len(doc['cells'])} cells, "
              f"schema v{BENCH_SCHEMA_VERSION}")
        return EXIT_OK
    if "--threshold" in args:
        i = args.index("--threshold")
        try:
            threshold = float(args[i + 1])
        except (IndexError, ValueError):
            print(__doc__.strip(), file=sys.stderr)
            return EXIT_USAGE
        del args[i:i + 2]
    if "--cell" in args:
        i = args.index("--cell")
        if i + 1 >= len(args):
            print(__doc__.strip(), file=sys.stderr)
            return EXIT_USAGE
        only_cell = parse_cell_selector(args[i + 1])
        if only_cell is None:
            print(f"bench_compare: bad --cell {args[i + 1]!r} "
                  "(want BENCHMARK/SCHEME/NPROCS, e.g. TreeAdd/local/8)",
                  file=sys.stderr)
            return EXIT_USAGE
        del args[i:i + 2]
    diff_opts = {}
    for flag, dest in (("--traces-old", "traces_old"),
                       ("--traces-new", "traces_new"),
                       ("--analyze", "analyze"), ("--diff-top", "top")):
        if flag in args:
            i = args.index(flag)
            if i + 1 >= len(args):
                print(__doc__.strip(), file=sys.stderr)
                return EXIT_USAGE
            diff_opts[dest] = args[i + 1]
            del args[i:i + 2]
    diff_cfg = None
    if diff_opts:
        required = {"traces_old", "traces_new", "analyze"}
        missing = sorted(required - set(diff_opts))
        if missing:
            print("bench_compare: --traces-old, --traces-new and --analyze "
                  f"must be given together (missing {missing})",
                  file=sys.stderr)
            return EXIT_USAGE
        try:
            diff_opts["top"] = int(diff_opts.get("top", "5"))
        except ValueError:
            print(f"bench_compare: bad --diff-top {diff_opts['top']!r}",
                  file=sys.stderr)
            return EXIT_USAGE
        if diff_opts["top"] < 1:
            print("bench_compare: --diff-top must be >= 1", file=sys.stderr)
            return EXIT_USAGE
        diff_cfg = diff_opts
    if len(args) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return EXIT_USAGE
    try:
        old_doc = load(args[0])
        new_doc = load(args[1])
    except SchemaError as e:
        print(f"FAIL: {e}", file=sys.stderr)
        return EXIT_BAD_INPUT
    if old_doc["mode"] != new_doc["mode"]:
        print(f"FAIL: comparing a {old_doc['mode']!r}-size run against a "
              f"{new_doc['mode']!r}-size run is meaningless", file=sys.stderr)
        return EXIT_COMPARE_FAILED
    old_keys = {cell_key(c) for c in old_doc["cells"]}
    new_keys = {cell_key(c) for c in new_doc["cells"]}
    if only_cell is not None and only_cell not in old_keys | new_keys:
        name = f"{only_cell[0]}/{only_cell[1]}/p={only_cell[2]}"
        print(f"FAIL: cell {name} is absent from both files",
              file=sys.stderr)
        return EXIT_NO_SUCH_CELL
    if not old_keys & new_keys:
        print("FAIL: the two files share no cells — nothing to compare",
              file=sys.stderr)
        return EXIT_NO_SUCH_CELL
    ok, regressed_keys, mismatched = compare(old_doc, new_doc, threshold,
                                             only_cell, ci_gate)
    if ok:
        return EXIT_OK
    if mismatched:
        # The mismatch invalidates the comparison itself, so it outranks
        # any regression found among the cells that did line up.
        return EXIT_SAMPLED_MISMATCH
    if diff_cfg is not None and regressed_keys:
        attached = attribute_regressions(regressed_keys, diff_cfg)
        if attached > 0:
            return EXIT_REGRESSION_ATTRIBUTED
    return EXIT_COMPARE_FAILED


if __name__ == "__main__":
    sys.exit(main(sys.argv))
