#!/usr/bin/env python3
"""Run the Olden benchmark suite as a regression matrix and emit BENCH JSON.

Usage: bench_runner.py [--build-dir DIR] [--out FILE] [--tiny | --paper]
                       [--nprocs N] [--revision REV] [--benchmarks A,B,...]
                       [--jobs N] [--timeout SECS] [--keep-traces DIR]
                       [--keep-profiles DIR] [--sample W:D[:OFFSET]]

For every benchmark in the suite (or the --benchmarks subset) this runs
`bench_cell` across the three coherence schemes with --stats-json and
a binary trace enabled, feeds the trace through `olden-analyze --json`,
and merges the two documents into one cell per (benchmark, scheme):
makespan, per-bucket cycle totals, key counters, the remote-miss rate,
and the critical-path attribution. The result is written as a
deterministic, sorted JSON file (BENCH_<rev>.json by default) that
tools/bench_compare.py can diff against a committed baseline.

--jobs N runs up to N benchmarks' bench_cell processes concurrently;
each child stays serial internally, so every cell's simulated results,
traces and stats are identical to a serial run, and the output document
is assembled in suite order regardless of completion order.

--keep-traces DIR archives each benchmark's binary trace as
DIR/<benchmark>.trace.bin instead of deleting it after analysis. Paired
with a baseline's archive, tools/bench_compare.py --traces-old/--traces-new
can then attribute any regression with `olden-analyze --diff` (the runs
inside are labeled BENCH/<benchmark>/p=<nprocs>/<scheme>).

--keep-profiles DIR additionally runs every cell with --profile and
archives the interval-sampled profile JSON as
DIR/<benchmark>.profile.json (see docs/PROFILING.md). Profiling charges
zero virtual cycles, so every makespan, trace and stats byte in the
document is identical with or without this flag.

--paper selects the original paper problem sizes. Paper traces run to
hundreds of MB, so this tier streams them to disk (--trace-stream) and
analyzes them in bounded memory (olden-analyze --stream); the documents
produced are byte-identical to what the in-memory paths would emit.

--sample W:D[:OFFSET] runs every cell under SMARTS-style systematic
sampling (docs/SAMPLING.md): D detailed cycles measured out of every W,
with full functional warming in between. Sampled cells carry no trace
and no critical path (per-event emission is suppressed outside the
windows), so --keep-traces and --keep-profiles are rejected; their
bucket totals are the estimator's population estimates, marked with
"sampled": true and a makespan_ci95 field, and the document records the
schedule in a top-level "sample" key. Checksums and makespans are exact
regardless (warming never perturbs logical state), so a sampled tier is
directly comparable against an exact baseline with
bench_compare.py --ci-gate.

bench_cell validates every cell's checksum against the host-side
sequential reference, so a nonzero exit here means a *correctness*
regression, not just a slow one. A failing child's exit code is
propagated; a child exceeding --timeout is killed and reported with
exit 124.

Stdlib only, so it can run in any CI image.
"""

import argparse
import concurrent.futures
import json
import os
import shutil
import subprocess
import sys
import tempfile

# Cumulative per-process event budget for --paper. The limit spans all
# three scheme runs of one benchmark; the largest (Barnes-Hut, ~16M
# events per traced run) needs most of it. Raising it costs only disk:
# traces are streamed, never held in memory.
PAPER_TRACE_LIMIT = 60_000_000

BENCH_SCHEMA_VERSION = 1

SCHEMES = ["local", "global", "bilateral"]

BUCKET_KEYS = ["compute", "migration", "cache_stall", "coherence", "idle"]

# The counters worth tracking release-over-release; the full set lives in
# the stats JSON if a regression needs deeper digging.
COUNTER_KEYS = [
    "cache_hits", "cache_misses",
    "timestamp_checks", "timestamp_stalls",
    "cacheable_reads_remote", "cacheable_writes_remote",
    "migrations", "return_migrations",
    "futurecalls", "futures_inlined", "futures_stolen", "touches_blocked",
    "lines_invalidated", "pages_cached", "threads_created",
]


def fail(msg, code=1):
    print(f"bench_runner: {msg}", file=sys.stderr)
    sys.exit(code)


class CellError(Exception):
    """A child process failed; carries the exit code to propagate."""

    def __init__(self, msg, code):
        super().__init__(msg)
        self.code = code


def git_revision():
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True)
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def list_benchmarks(bench_cell):
    out = subprocess.run([bench_cell, "--list"],
                         capture_output=True, text=True)
    if out.returncode != 0:
        fail(f"{bench_cell} --list failed:\n{out.stderr}")
    return [line for line in out.stdout.splitlines() if line]


def miss_rate_percent(counters):
    """Mirror of MachineStats::remote_miss_percent() in support/stats.hpp."""
    remote = (counters["cacheable_reads_remote"]
              + counters["cacheable_writes_remote"])
    if remote == 0:
        return 0.0
    return 100.0 * (counters["cache_misses"]
                    + counters["timestamp_stalls"]) / remote


def run_child(cmd, what, timeout):
    """Run one child process; raise CellError on failure or timeout."""
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=timeout)
    except subprocess.TimeoutExpired as e:
        tail = (e.stdout or b"")[-2000:] if e.stdout else b""
        if isinstance(tail, bytes):
            tail = tail.decode("utf-8", "replace")
        raise CellError(
            f"{what} exceeded --timeout={timeout:g}s and was killed; "
            f"last output:\n{tail}", 124) from e
    if proc.returncode != 0:
        raise CellError(f"{what} failed (exit {proc.returncode}):\n"
                        f"{proc.stdout}{proc.stderr}", proc.returncode)
    return proc


def run_benchmark(bench_cell, analyze, name, nprocs, mode, timeout, tmpdir,
                  keep_traces=None, keep_profiles=None, sample=None):
    """Run one benchmark across all schemes; return its cells.

    Thread-safe: all paths under tmpdir are keyed by benchmark name and
    failures are raised as CellError, never sys.exit (which a worker
    thread could not deliver)."""
    paper = mode == "paper"
    stats_path = os.path.join(tmpdir, f"{name}.stats.json")
    trace_path = os.path.join(tmpdir, f"{name}.trace.bin")
    trace_flag = "--trace-stream" if paper else "--trace-bin"
    cmd = [bench_cell, f"--benchmark={name}", f"--nprocs={nprocs}",
           f"--schemes={','.join(SCHEMES)}",
           f"--stats-json={stats_path}"]
    if sample is not None:
        # Sampling suppresses per-event emission outside the measurement
        # windows, so there is no trace to collect or analyze.
        cmd.append(f"--sample={sample}")
    else:
        cmd.append(f"{trace_flag}={trace_path}")
    profile_path = os.path.join(tmpdir, f"{name}.profile.json")
    if keep_profiles is not None:
        cmd.append(f"--profile={profile_path}")
    if mode == "tiny":
        cmd.append("--tiny")
    elif paper:
        cmd.append("--paper-size")
        if sample is None:
            cmd.append(f"--trace-limit={PAPER_TRACE_LIMIT}")
    run_child(cmd, f"bench_cell for {name}", timeout)
    if keep_profiles is not None:
        shutil.move(profile_path,
                    os.path.join(keep_profiles, f"{name}.profile.json"))

    paths_by_label = {}
    if sample is None:
        analyze_cmd = [analyze, "--trace-bin", trace_path, "--json"]
        if paper:
            analyze_cmd.append("--stream")
        proc = run_child(analyze_cmd, f"olden-analyze for {name}", timeout)
        analysis = json.loads(proc.stdout)
        if keep_traces is not None:
            # Archive for later cross-run diffing (bench_compare.py
            # --traces-old/--traces-new); shutil.move survives tmpdir living
            # on a different filesystem than the archive.
            shutil.move(trace_path,
                        os.path.join(keep_traces, f"{name}.trace.bin"))
        else:
            os.unlink(trace_path)  # paper traces are large; drop eagerly
        paths_by_label = {run["label"]: run for run in analysis["runs"]}

    with open(stats_path, "r", encoding="utf-8") as f:
        stats = json.load(f)

    cells = []
    for run in stats["runs"]:
        cfg = run["config"]
        counters = run["counters"]
        if sample is not None:
            est = run["estimates"]["buckets"]
            # Fault-free cells never measure retry cycles, and the
            # estimator apportions remainders only to buckets with
            # nonzero remainders, so dropping "retry" keeps the 5-key
            # conservation invariant (sum == nprocs * makespan) intact.
            if est["retry"]["estimate"] != 0:
                raise CellError(
                    f"{run['label']}: sampled cell has nonzero retry-cycle "
                    f"estimate {est['retry']['estimate']} — the 5-bucket "
                    f"BENCH schema cannot represent it", 1)
            buckets = {key: est[key]["estimate"] for key in BUCKET_KEYS}
        else:
            buckets = {key: sum(row[key] for row in run["breakdown"])
                       for key in BUCKET_KEYS}
        cell = {
            "benchmark": cfg["benchmark"],
            "scheme": cfg["scheme"],
            "nprocs": cfg["nprocs"],
            "makespan_cycles": run["makespan_cycles"],
            "buckets": buckets,
            "counters": {key: counters[key] for key in COUNTER_KEYS},
            "miss_rate_percent": round(miss_rate_percent(counters), 4),
            "critical_path": None,
        }
        if sample is not None:
            cell["sampled"] = True
            cell["makespan_ci95"] = run["estimates"]["makespan"]["ci95"]
        arun = paths_by_label.get(run["label"])
        if arun is not None and not arun["truncated"]:
            path = arun["critical_path"]
            cell["critical_path"] = {
                "total_cycles": path["total_cycles"],
                "attribution": path["attribution"],
            }
            if path["total_cycles"] != run["makespan_cycles"]:
                raise CellError(
                    f"{run['label']}: critical path ({path['total_cycles']}"
                    f" cycles) != makespan ({run['makespan_cycles']})", 1)
        cells.append(cell)
    return cells


def run_matrix(bench_cell, analyze, names, args, mode, cells):
    """Run every benchmark, serially or on a --jobs thread pool."""
    with tempfile.TemporaryDirectory(prefix="olden-bench-") as tmpdir:
        if args.jobs == 1:
            for name in names:
                cells.extend(run_benchmark(bench_cell, analyze, name,
                                           args.nprocs, mode, args.timeout,
                                           tmpdir, args.keep_traces,
                                           args.keep_profiles, args.sample))
                print(f"  {name}: {len(SCHEMES)} cells ok")
            return
        # Completion order is nondeterministic; assembly order is not:
        # results are gathered per future and appended in suite order.
        with concurrent.futures.ThreadPoolExecutor(
                max_workers=args.jobs) as pool:
            futures = {
                name: pool.submit(run_benchmark, bench_cell, analyze, name,
                                  args.nprocs, mode, args.timeout, tmpdir,
                                  args.keep_traces, args.keep_profiles,
                                  args.sample)
                for name in names}
            for name in names:
                cells.extend(futures[name].result())
                print(f"  {name}: {len(SCHEMES)} cells ok")


def main(argv):
    ap = argparse.ArgumentParser(
        description="Run the benchmark regression matrix into BENCH JSON.")
    ap.add_argument("--build-dir", default="build",
                    help="CMake build directory (default: build)")
    ap.add_argument("--out", default=None,
                    help="output file (default: BENCH_<rev>.json)")
    size = ap.add_mutually_exclusive_group()
    size.add_argument("--tiny", action="store_true",
                      help="pinned tiny problem sizes (the CI configuration)")
    size.add_argument("--paper", action="store_true",
                      help="original paper problem sizes (streams traces, "
                      "analyzes in bounded memory)")
    ap.add_argument("--nprocs", type=int, default=8,
                    help="processors per cell (default: 8)")
    ap.add_argument("--jobs", type=int, default=1,
                    help="benchmarks to run concurrently (default: 1; "
                    "results identical to serial)")
    ap.add_argument("--timeout", type=float, default=None,
                    help="per-child timeout in seconds (default: none); "
                    "a killed child exits this runner with code 124")
    ap.add_argument("--keep-traces", default=None, metavar="DIR",
                    help="archive each benchmark's binary trace as "
                    "DIR/<benchmark>.trace.bin for later cross-run diffing "
                    "(default: traces are deleted after analysis)")
    ap.add_argument("--keep-profiles", default=None, metavar="DIR",
                    help="run every cell with --profile and archive the "
                    "profile JSON as DIR/<benchmark>.profile.json "
                    "(default: no profiling)")
    ap.add_argument("--sample", default=None, metavar="W:D[:OFFSET]",
                    help="run every cell under SMARTS-style sampling: D "
                    "detailed cycles measured out of every W (see "
                    "docs/SAMPLING.md); cells carry bucket estimates, no "
                    "trace and no critical path")
    ap.add_argument("--revision", default=None,
                    help="revision label (default: git rev-parse --short)")
    ap.add_argument("--benchmarks", default=None,
                    help="comma-separated subset (default: full suite)")
    args = ap.parse_args(argv[1:])
    if args.jobs < 1:
        ap.error("--jobs must be >= 1")
    if args.timeout is not None and args.timeout <= 0:
        ap.error("--timeout must be > 0")
    if args.sample is not None:
        if args.keep_traces is not None or args.keep_profiles is not None:
            ap.error("--sample suppresses per-event emission; it cannot be "
                     "combined with --keep-traces or --keep-profiles")
        fields = args.sample.split(":")
        if not (2 <= len(fields) <= 3 and all(f.isdigit() for f in fields)):
            ap.error(f"bad --sample {args.sample!r} (want W:D[:OFFSET], "
                     "decimal cycle counts); bench_cell validates the rest")

    bench_cell = os.path.join(args.build_dir, "bench", "bench_cell")
    analyze = os.path.join(args.build_dir, "tools", "olden-analyze")
    for binary in (bench_cell, analyze):
        if not os.access(binary, os.X_OK):
            fail(f"missing binary {binary} (build the repo first)")

    names = list_benchmarks(bench_cell)
    if args.benchmarks:
        wanted = args.benchmarks.split(",")
        unknown = [w for w in wanted if w not in names]
        if unknown:
            fail(f"unknown benchmark(s) {unknown}; suite has {names}")
        names = [n for n in names if n in wanted]

    revision = args.revision or git_revision()
    if args.keep_traces is not None:
        os.makedirs(args.keep_traces, exist_ok=True)
    if args.keep_profiles is not None:
        os.makedirs(args.keep_profiles, exist_ok=True)
    mode = "tiny" if args.tiny else "paper" if args.paper else "default"
    cells = []
    try:
        run_matrix(bench_cell, analyze, names, args, mode, cells)
    except CellError as e:
        fail(str(e), e.code)
    cells.sort(key=lambda c: (c["benchmark"], c["scheme"]))

    doc = {
        "bench_schema_version": BENCH_SCHEMA_VERSION,
        "generator": "bench_runner",
        "revision": revision,
        "mode": mode,
        "nprocs": args.nprocs,
        "cells": cells,
    }
    if args.sample is not None:
        doc["sample"] = args.sample
    out_path = args.out or f"BENCH_{revision}.json"
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=1, sort_keys=True)
        f.write("\n")
    sampled = f", sampled {args.sample}" if args.sample is not None else ""
    print(f"wrote {out_path}: {len(cells)} cells "
          f"({len(names)} benchmarks x {len(SCHEMES)} schemes, "
          f"p={args.nprocs}, {doc['mode']} size{sampled})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
