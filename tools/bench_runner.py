#!/usr/bin/env python3
"""Run the Olden benchmark suite as a regression matrix and emit BENCH JSON.

Usage: bench_runner.py [--build-dir DIR] [--out FILE] [--tiny]
                       [--nprocs N] [--revision REV] [--benchmarks A,B,...]

For every benchmark in the suite (or the --benchmarks subset) this runs
`bench_cell` across the three coherence schemes with --stats-json and
--trace-bin enabled, feeds the binary trace through `olden-analyze
--json`, and merges the two documents into one cell per
(benchmark, scheme): makespan, per-bucket cycle totals, key counters,
the remote-miss rate, and the critical-path attribution. The result is
written as a deterministic, sorted JSON file (BENCH_<rev>.json by
default) that tools/bench_compare.py can diff against a committed
baseline.

bench_cell validates every cell's checksum against the host-side
sequential reference, so a nonzero exit here means a *correctness*
regression, not just a slow one.

Stdlib only, so it can run in any CI image.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

BENCH_SCHEMA_VERSION = 1

SCHEMES = ["local", "global", "bilateral"]

BUCKET_KEYS = ["compute", "migration", "cache_stall", "coherence", "idle"]

# The counters worth tracking release-over-release; the full set lives in
# the stats JSON if a regression needs deeper digging.
COUNTER_KEYS = [
    "cache_hits", "cache_misses",
    "timestamp_checks", "timestamp_stalls",
    "cacheable_reads_remote", "cacheable_writes_remote",
    "migrations", "return_migrations",
    "futurecalls", "futures_inlined", "futures_stolen", "touches_blocked",
    "lines_invalidated", "pages_cached", "threads_created",
]


def fail(msg):
    print(f"bench_runner: {msg}", file=sys.stderr)
    sys.exit(1)


def git_revision():
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True)
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def list_benchmarks(bench_cell):
    out = subprocess.run([bench_cell, "--list"],
                         capture_output=True, text=True)
    if out.returncode != 0:
        fail(f"{bench_cell} --list failed:\n{out.stderr}")
    return [line for line in out.stdout.splitlines() if line]


def miss_rate_percent(counters):
    """Mirror of MachineStats::remote_miss_percent() in support/stats.hpp."""
    remote = (counters["cacheable_reads_remote"]
              + counters["cacheable_writes_remote"])
    if remote == 0:
        return 0.0
    return 100.0 * (counters["cache_misses"]
                    + counters["timestamp_stalls"]) / remote


def run_benchmark(bench_cell, analyze, name, nprocs, tiny, tmpdir):
    """Run one benchmark across all schemes; return its cells."""
    stats_path = os.path.join(tmpdir, f"{name}.stats.json")
    trace_path = os.path.join(tmpdir, f"{name}.trace.bin")
    cmd = [bench_cell, f"--benchmark={name}", f"--nprocs={nprocs}",
           f"--schemes={','.join(SCHEMES)}",
           f"--stats-json={stats_path}", f"--trace-bin={trace_path}"]
    if tiny:
        cmd.append("--tiny")
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        fail(f"bench_cell failed for {name} (exit {proc.returncode}):\n"
             f"{proc.stdout}{proc.stderr}")

    proc = subprocess.run([analyze, "--trace-bin", trace_path, "--json"],
                          capture_output=True, text=True)
    if proc.returncode != 0:
        fail(f"olden-analyze failed for {name} (exit {proc.returncode}):\n"
             f"{proc.stderr}")
    analysis = json.loads(proc.stdout)
    paths_by_label = {run["label"]: run for run in analysis["runs"]}

    with open(stats_path, "r", encoding="utf-8") as f:
        stats = json.load(f)

    cells = []
    for run in stats["runs"]:
        cfg = run["config"]
        counters = run["counters"]
        buckets = {key: sum(row[key] for row in run["breakdown"])
                   for key in BUCKET_KEYS}
        cell = {
            "benchmark": cfg["benchmark"],
            "scheme": cfg["scheme"],
            "nprocs": cfg["nprocs"],
            "makespan_cycles": run["makespan_cycles"],
            "buckets": buckets,
            "counters": {key: counters[key] for key in COUNTER_KEYS},
            "miss_rate_percent": round(miss_rate_percent(counters), 4),
            "critical_path": None,
        }
        arun = paths_by_label.get(run["label"])
        if arun is not None and not arun["truncated"]:
            path = arun["critical_path"]
            cell["critical_path"] = {
                "total_cycles": path["total_cycles"],
                "attribution": path["attribution"],
            }
            if path["total_cycles"] != run["makespan_cycles"]:
                fail(f"{run['label']}: critical path ({path['total_cycles']}"
                     f" cycles) != makespan ({run['makespan_cycles']})")
        cells.append(cell)
    return cells


def main(argv):
    ap = argparse.ArgumentParser(
        description="Run the benchmark regression matrix into BENCH JSON.")
    ap.add_argument("--build-dir", default="build",
                    help="CMake build directory (default: build)")
    ap.add_argument("--out", default=None,
                    help="output file (default: BENCH_<rev>.json)")
    ap.add_argument("--tiny", action="store_true",
                    help="pinned tiny problem sizes (the CI configuration)")
    ap.add_argument("--nprocs", type=int, default=8,
                    help="processors per cell (default: 8)")
    ap.add_argument("--revision", default=None,
                    help="revision label (default: git rev-parse --short)")
    ap.add_argument("--benchmarks", default=None,
                    help="comma-separated subset (default: full suite)")
    args = ap.parse_args(argv[1:])

    bench_cell = os.path.join(args.build_dir, "bench", "bench_cell")
    analyze = os.path.join(args.build_dir, "tools", "olden-analyze")
    for binary in (bench_cell, analyze):
        if not os.access(binary, os.X_OK):
            fail(f"missing binary {binary} (build the repo first)")

    names = list_benchmarks(bench_cell)
    if args.benchmarks:
        wanted = args.benchmarks.split(",")
        unknown = [w for w in wanted if w not in names]
        if unknown:
            fail(f"unknown benchmark(s) {unknown}; suite has {names}")
        names = [n for n in names if n in wanted]

    revision = args.revision or git_revision()
    cells = []
    with tempfile.TemporaryDirectory(prefix="olden-bench-") as tmpdir:
        for name in names:
            cells.extend(run_benchmark(bench_cell, analyze, name,
                                       args.nprocs, args.tiny, tmpdir))
            print(f"  {name}: {len(SCHEMES)} cells ok")
    cells.sort(key=lambda c: (c["benchmark"], c["scheme"]))

    doc = {
        "bench_schema_version": BENCH_SCHEMA_VERSION,
        "generator": "bench_runner",
        "revision": revision,
        "mode": "tiny" if args.tiny else "default",
        "nprocs": args.nprocs,
        "cells": cells,
    }
    out_path = args.out or f"BENCH_{revision}.json"
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {out_path}: {len(cells)} cells "
          f"({len(names)} benchmarks x {len(SCHEMES)} schemes, "
          f"p={args.nprocs}, {doc['mode']} size)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
