#!/usr/bin/env python3
"""Time the simulator's own hot paths and diff against the host baseline.

Usage: host_bench.py [--build-dir DIR] [--baseline FILE] [--out FILE]
                     [--repeat N] [--jobs N] [--max-regression X]
                     [--update-baseline]

Runs `bench/host_perf` (the wall-clock harness over the full --tiny
benchmark matrix), writes its schema-versioned JSON document, and
compares total and per-cell times against the committed baseline,
bench/baselines/HOST_seed.json by default.

Interpreting the numbers: host_perf reports best-of-N per cell, which
filters scheduler noise within one process, but *between* runs on a
shared machine the same binary can easily drift tens of percent. The
comparison therefore only FAILS when a cell (or the total) exceeds
--max-regression (default 2.0x) — a threshold chosen to catch "someone
made the simulator accidentally quadratic", not a noisy neighbor.
Speedups and small slowdowns are reported informationally. For a real
before/after measurement, build both revisions and interleave the
binaries; see docs/PERFORMANCE.md.

Exit codes: 0 ok, 1 regression above threshold / harness failure,
2 bad usage. Stdlib only, so it can run in any CI image.
"""

import argparse
import json
import os
import subprocess
import sys

HOST_BENCH_SCHEMA_VERSION = 1


def run_harness(build_dir: str, repeat: int, jobs: int,
                out_path: str) -> dict:
    exe = os.path.join(build_dir, "bench", "host_perf")
    if not os.path.exists(exe):
        print(f"host_bench: {exe} not found (build the repo first)",
              file=sys.stderr)
        sys.exit(1)
    cmd = [exe, f"--repeat={repeat}", f"--jobs={jobs}", f"--json={out_path}"]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    sys.stdout.write(proc.stdout)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        print(f"host_bench: harness failed with exit {proc.returncode}",
              file=sys.stderr)
        sys.exit(1)
    with open(out_path) as f:
        return json.load(f)


def check_schema(doc: dict, origin: str) -> None:
    version = doc.get("host_bench_schema_version")
    if version != HOST_BENCH_SCHEMA_VERSION:
        print(f"host_bench: {origin} has schema version {version!r}, "
              f"expected {HOST_BENCH_SCHEMA_VERSION}", file=sys.stderr)
        sys.exit(1)


def cell_map(doc: dict) -> dict:
    return {(c["benchmark"], c["scheme"]): c for c in doc["cells"]}


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--baseline", default=os.path.join(
        "bench", "baselines", "HOST_seed.json"))
    ap.add_argument("--out", default="HOST_current.json")
    ap.add_argument("--repeat", type=int, default=3)
    ap.add_argument("--jobs", type=int, default=1,
                    help="host threads for host_perf (default: 1; per-cell "
                    "ms is noisier under a loaded pool — keep 1 for "
                    "baseline comparisons)")
    ap.add_argument("--max-regression", type=float, default=2.0,
                    help="fail when current/baseline exceeds this ratio")
    ap.add_argument("--update-baseline", action="store_true",
                    help="overwrite the baseline with this run and exit 0")
    args = ap.parse_args()
    if args.repeat < 1 or args.max_regression <= 1.0:
        ap.error("--repeat must be >= 1 and --max-regression > 1.0")
    if args.jobs < 1:
        ap.error("--jobs must be >= 1")

    current = run_harness(args.build_dir, args.repeat, args.jobs, args.out)
    check_schema(current, args.out)
    print(f"wrote {args.out}")

    if args.update_baseline:
        os.makedirs(os.path.dirname(args.baseline), exist_ok=True)
        with open(args.baseline, "w") as f:
            json.dump(current, f, indent=1)
            f.write("\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    if not os.path.exists(args.baseline):
        print(f"host_bench: no baseline at {args.baseline}; "
              "run with --update-baseline to create one", file=sys.stderr)
        return 1
    with open(args.baseline) as f:
        baseline = json.load(f)
    check_schema(baseline, args.baseline)

    base_cells = cell_map(baseline)
    cur_cells = cell_map(current)
    failures = []
    print(f"{'cell':<24} {'base ms':>9} {'now ms':>9} {'ratio':>7}")
    for key in sorted(base_cells):
        if key not in cur_cells:
            failures.append(f"cell {key} missing from current run")
            continue
        base_ms = base_cells[key]["best_ms"]
        now_ms = cur_cells[key]["best_ms"]
        ratio = now_ms / base_ms if base_ms > 0 else float("inf")
        mark = ""
        if ratio > args.max_regression:
            failures.append(
                f"{key[0]}/{key[1]}: {now_ms:.2f} ms vs baseline "
                f"{base_ms:.2f} ms ({ratio:.2f}x > "
                f"{args.max_regression:.2f}x)")
            mark = "  <-- REGRESSION"
        print(f"{key[0] + '/' + key[1]:<24} {base_ms:9.2f} {now_ms:9.2f} "
              f"{ratio:7.2f}{mark}")

    base_total = baseline["total_best_ms"]
    now_total = current["total_best_ms"]
    total_ratio = now_total / base_total if base_total > 0 else float("inf")
    print(f"{'TOTAL':<24} {base_total:9.2f} {now_total:9.2f} "
          f"{total_ratio:7.2f}")
    if total_ratio > args.max_regression:
        failures.append(
            f"total: {now_total:.2f} ms vs baseline {base_total:.2f} ms "
            f"({total_ratio:.2f}x > {args.max_regression:.2f}x)")
    if total_ratio < 1.0:
        print(f"speedup vs baseline: {1.0 / total_ratio:.2f}x")

    if failures:
        print("\nhost_bench: wall-clock regressions above threshold:",
              file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
