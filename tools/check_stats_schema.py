#!/usr/bin/env python3
"""Validate a --stats-json document produced by the Olden bench binaries.

Usage: check_stats_schema.py STATS.json [STATS2.json ...]
       check_stats_schema.py --sample STATS.json [STATS2.json ...]
       check_stats_schema.py --diff DIFF.json [DIFF2.json ...]
       check_stats_schema.py --profile PROFILE.json [PROFILE2.json ...]

Default mode checks the structural schema (version 5, documented in
docs/OBSERVABILITY.md) and the arithmetic invariants the exporter
promises: per-processor cycle buckets sum to the makespan, histogram
bucket counts sum to the histogram count, event retention arithmetic is
consistent, the per-message-class fault decomposition sums exactly to
the aggregate fault counters, and the adaptive-scheme flip counters
conserve (flips_to_cache + flips_to_migrate == scheme_flips, with all
five flip counters zero on the three static schemes). Exits non-zero
with a message on the first violation.

Runs produced under --sample carry a sampled block (docs/SAMPLING.md)
and get its conservation rules instead of the per-proc breakdown ones:
the window count and measured-cycle total are re-derived from the
pinned schedule, in-window bucket cycles sum to nprocs x measured
cycles, the bucket estimates sum exactly to nprocs x makespan, the
makespan estimate equals the exact makespan with a zero-width CI, all
ci95 fields are non-negative, and the provenance lists partition the
counter set (exact == the machine counters, estimated == the cycle
buckets plus the window-measured event kinds, disjoint).

--sample validates the same schema but additionally requires every run
to be sampled — CI uses it to assert a sampled cell actually sampled.

--diff validates `olden-analyze --diff --json` documents instead
(diff_schema_version 1, documented in docs/ANALYSIS.md) and
independently re-verifies the exactness invariant: the bucket-row
deltas, and each partition's top rows plus "other" rollup, must sum
exactly to makespan_delta_cycles.

--profile validates `--profile` documents (profile_schema_version 1,
documented in docs/PROFILING.md) and re-derives their conservation
invariants: every site's counters sum to its access count, every site
timeline sums to the same, interval/site/total access counts agree,
migration and future-steal counts agree across the interval, per-proc
and totals views, and interval cycle buckets sum to nprocs x makespan.

Exit codes: 0 all documents valid, 1 schema or invariant violation,
2 usage error or unknown schema version (a reader that only speaks
version N must not guess at version N+1).

Stdlib only, so it can run in any CI image.
"""

import json
import sys

SCHEMA_VERSION = 5
DIFF_SCHEMA_VERSION = 1
PROFILE_SCHEMA_VERSION = 1

MSG_CLASSES = ["migration", "return_stub", "future_resolve", "fill",
               "invalidate", "ts_check"]

FAULT_CLASS_KEYS = ["sent", "drops", "dups", "delays", "retries"]

COUNTER_KEYS = {
    "local_reads", "local_writes",
    "cacheable_reads", "cacheable_writes",
    "cacheable_reads_remote", "cacheable_writes_remote",
    "cache_hits", "cache_misses",
    "timestamp_checks", "timestamp_stalls",
    "migrations", "return_migrations",
    "futurecalls", "futures_inlined", "futures_stolen", "touches_blocked",
    "cache_flushes", "lines_invalidated", "invalidation_messages",
    "tracked_writes", "pages_cached",
    "allocations", "bytes_allocated",
    "fault_messages", "fault_drops", "fault_duplicates", "fault_delays",
    "retransmissions", "duplicates_suppressed", "acks_sent",
    "hiccups_injected", "hiccup_cycles",
    "coherence_requests", "replies_ignored",
    "fills_retried", "invalidations_retried", "ts_checks_retried",
    "threads_created", "makespan_cycles",
    "scheme_flips", "flips_to_cache", "flips_to_migrate",
    "flip_drain_lines", "flip_drain_messages",
}

BUCKET_KEYS = ["compute", "migration", "cache_stall", "coherence", "idle",
               "retry"]

HIST_KEYS = {
    "migration_latency_cycles", "return_stub_latency_cycles",
    "miss_fill_cycles", "ready_queue_depth", "worklist_depth", "page_heat",
}

SCHEMES = {"local", "global", "bilateral", "adaptive"}


class SchemaError(Exception):
    pass


class VersionError(Exception):
    """Unknown schema version: exit 2, distinct from a validation failure."""


def require(cond, msg):
    if not cond:
        raise SchemaError(msg)


def check_counter(obj, key, ctx):
    require(key in obj, f"{ctx}: missing {key!r}")
    require(isinstance(obj[key], int) and obj[key] >= 0,
            f"{ctx}: {key!r} must be a non-negative integer")


def check_histogram(name, h, ctx):
    ctx = f"{ctx} histogram {name!r}"
    for key in ("count", "sum", "min", "max"):
        check_counter(h, key, ctx)
    require(isinstance(h.get("mean"), (int, float)), f"{ctx}: missing mean")
    require(isinstance(h.get("buckets"), list), f"{ctx}: missing buckets")
    total = 0
    prev_hi = -1
    for b in h["buckets"]:
        for key in ("lo", "hi", "count"):
            check_counter(b, key, ctx + " bucket")
        require(b["lo"] <= b["hi"], f"{ctx}: bucket lo > hi")
        require(b["lo"] > prev_hi, f"{ctx}: buckets overlap or out of order")
        prev_hi = b["hi"]
        total += b["count"]
    require(total == h["count"],
            f"{ctx}: bucket counts sum to {total}, header says {h['count']}")
    if h["count"] > 0:
        require(h["min"] <= h["max"], f"{ctx}: min > max")


def measured_before(window, detail, offset, t):
    """Cycles of detailed measurement in [0, t) under a W:D:offset schedule.

    Mirrors sample::measured_before in src/olden/sample/sample.hpp: full
    windows contribute D cycles each, the partial window min(x mod W, D).
    """
    if t <= offset:
        return 0
    x = t - offset
    return (x // window) * detail + min(x % window, detail)


def check_estimate(obj, key, ctx):
    """An {estimate, ci95} pair; both non-negative integers."""
    require(isinstance(obj.get(key), dict), f"{ctx}: missing {key!r}")
    est = obj[key]
    require(list(est.keys()) == ["estimate", "ci95"],
            f"{ctx}: {key!r} keys must be exactly ['estimate', 'ci95']")
    for field in ("estimate", "ci95"):
        check_counter(est, field, f"{ctx} {key!r}")
    return est


def check_sampled_run(run, counters, cfg, ctx):
    """The sampled block: schedule, measured sums, estimates, provenance."""
    require(run.get("sampled") is True, f"{ctx}: sampled must be true")

    sched = run.get("sample")
    require(isinstance(sched, dict), f"{ctx}: missing sample schedule")
    for key in ("window_cycles", "detail_cycles", "offset_cycles",
                "windows", "measured_cycles"):
        check_counter(sched, key, ctx + " sample")
    window = sched["window_cycles"]
    detail = sched["detail_cycles"]
    offset = sched["offset_cycles"]
    require(window >= 1, f"{ctx}: window_cycles must be >= 1")
    require(1 <= detail <= window,
            f"{ctx}: detail_cycles must be in [1, window_cycles]")
    makespan = run["makespan_cycles"]
    # Re-derive the schedule arithmetic from the pinned spec alone.
    want_windows = (max(0, makespan - offset) + window - 1) // window
    require(sched["windows"] == want_windows,
            f"{ctx}: schedule says {sched['windows']} windows, "
            f"ceil((makespan - offset) / window) is {want_windows}")
    want_measured = measured_before(window, detail, offset, makespan)
    require(sched["measured_cycles"] == want_measured,
            f"{ctx}: schedule says {sched['measured_cycles']} measured "
            f"cycles, the W:D:offset arithmetic gives {want_measured}")

    measured = run.get("measured")
    require(isinstance(measured, dict), f"{ctx}: missing measured")
    mbuckets = measured.get("bucket_cycles")
    require(isinstance(mbuckets, dict),
            f"{ctx}: missing measured.bucket_cycles")
    require(list(mbuckets.keys()) == BUCKET_KEYS,
            f"{ctx}: measured buckets must be exactly {BUCKET_KEYS}, "
            f"in order")
    in_window = 0
    for key in BUCKET_KEYS:
        check_counter(mbuckets, key, ctx + " measured buckets")
        in_window += mbuckets[key]
    want = cfg["nprocs"] * want_measured
    require(in_window == want,
            f"{ctx}: in-window bucket cycles sum to {in_window}, nprocs x "
            f"measured_cycles is {want} — conservation invariant violated")
    mevents = measured.get("event_counts")
    require(isinstance(mevents, dict),
            f"{ctx}: missing measured.event_counts")
    for key in mevents:
        check_counter(mevents, key, ctx + " measured events")

    est = run.get("estimates")
    require(isinstance(est, dict), f"{ctx}: missing estimates")
    # Virtual time is fully known even between windows, so the makespan
    # "estimate" is the exact value with a zero-width interval.
    mk = check_estimate(est, "makespan", ctx + " estimates")
    require(mk["estimate"] == makespan and mk["ci95"] == 0,
            f"{ctx}: makespan estimate must be exactly {makespan} with "
            f"ci95 0, got {mk['estimate']} +/- {mk['ci95']}")
    ebuckets = est.get("buckets")
    require(isinstance(ebuckets, dict), f"{ctx}: missing estimates.buckets")
    require(list(ebuckets.keys()) == BUCKET_KEYS,
            f"{ctx}: estimate buckets must be exactly {BUCKET_KEYS}, "
            f"in order")
    est_sum = 0
    for key in BUCKET_KEYS:
        est_sum += check_estimate(ebuckets, key, ctx + " estimates")[
            "estimate"]
    want = cfg["nprocs"] * makespan
    require(est_sum == want,
            f"{ctx}: bucket estimates sum to {est_sum}, nprocs x makespan "
            f"is {want} — apportionment invariant violated")
    eevents = est.get("event_counts")
    require(isinstance(eevents, dict),
            f"{ctx}: missing estimates.event_counts")
    require(list(eevents.keys()) == list(mevents.keys()),
            f"{ctx}: estimated event kinds disagree with measured kinds")
    for key in eevents:
        check_estimate(eevents, key, ctx + " estimates event_counts")

    prov = run.get("provenance")
    require(isinstance(prov, dict), f"{ctx}: missing provenance")
    for key in ("exact", "estimated"):
        require(isinstance(prov.get(key), list)
                and all(isinstance(s, str) for s in prov[key]),
                f"{ctx}: provenance.{key} must be a list of strings")
    require(prov["exact"] == sorted(counters.keys()),
            f"{ctx}: provenance.exact must list the machine counters")
    require(prov["estimated"] == BUCKET_KEYS + list(mevents.keys()),
            f"{ctx}: provenance.estimated must list the cycle buckets "
            f"then the measured event kinds")
    overlap = set(prov["exact"]) & set(prov["estimated"])
    require(not overlap,
            f"{ctx}: provenance lists overlap on {sorted(overlap)} — "
            f"each quantity is exact or estimated, never both")


def check_run(run, idx):
    ctx = f"run[{idx}]"
    require(isinstance(run.get("label"), str) and run["label"],
            f"{ctx}: missing label")
    ctx = f"run[{idx}] ({run['label']})"

    cfg = run.get("config")
    require(isinstance(cfg, dict), f"{ctx}: missing config")
    check_counter(cfg, "nprocs", ctx)
    require(cfg["nprocs"] >= 1, f"{ctx}: nprocs must be >= 1")
    require(cfg.get("scheme") in SCHEMES,
            f"{ctx}: scheme must be one of {sorted(SCHEMES)}")
    require(isinstance(cfg.get("sequential_baseline"), bool),
            f"{ctx}: missing sequential_baseline")

    check_counter(run, "makespan_cycles", ctx)
    require(isinstance(run.get("seconds"), (int, float)),
            f"{ctx}: missing seconds")

    counters = run.get("counters")
    require(isinstance(counters, dict), f"{ctx}: missing counters")
    for key in COUNTER_KEYS:
        check_counter(counters, key, ctx + " counters")
    require(counters["makespan_cycles"] == run["makespan_cycles"],
            f"{ctx}: counters.makespan_cycles disagrees with run")
    require(counters["cache_hits"] + counters["cache_misses"]
            == counters["cacheable_reads_remote"],
            f"{ctx}: hits + misses != remote cacheable reads")
    require(counters["timestamp_stalls"] <= counters["timestamp_checks"],
            f"{ctx}: timestamp_stalls > timestamp_checks")
    require(counters["duplicates_suppressed"]
            <= counters["fault_duplicates"] + counters["retransmissions"],
            f"{ctx}: more duplicates suppressed than were ever created")
    require(counters["coherence_requests"] <= counters["fault_messages"],
            f"{ctx}: more coherence requests than wire messages")
    # Flip-counter conservation: every flip went exactly one direction,
    # drains happen only on flips, and a static scheme never flips.
    require(counters["flips_to_cache"] + counters["flips_to_migrate"]
            == counters["scheme_flips"],
            f"{ctx}: flips_to_cache + flips_to_migrate != scheme_flips")
    if counters["scheme_flips"] == 0:
        for key in ("flip_drain_lines", "flip_drain_messages"):
            require(counters[key] == 0,
                    f"{ctx}: {key} nonzero without any scheme flip")
    if cfg.get("scheme") != "adaptive":
        require(counters["scheme_flips"] == 0,
                f"{ctx}: scheme_flips nonzero on static scheme "
                f"{cfg.get('scheme')!r}")

    classes = run.get("fault_classes")
    require(isinstance(classes, dict), f"{ctx}: missing fault_classes")
    require(list(classes.keys()) == MSG_CLASSES,
            f"{ctx}: fault_classes keys must be exactly {MSG_CLASSES}, "
            f"in order")
    agg = {key: 0 for key in FAULT_CLASS_KEYS}
    for cls, row in classes.items():
        cctx = f"{ctx} fault_classes[{cls!r}]"
        require(isinstance(row, dict), f"{cctx}: must be an object")
        require(list(row.keys()) == FAULT_CLASS_KEYS,
                f"{cctx}: keys must be exactly {FAULT_CLASS_KEYS}, in order")
        for key in FAULT_CLASS_KEYS:
            check_counter(row, key, cctx)
            agg[key] += row[key]
    # The per-class decomposition must sum exactly to the aggregates: a
    # message the injector touched belongs to exactly one class.
    for key, counter in (("sent", "fault_messages"), ("drops", "fault_drops"),
                         ("dups", "fault_duplicates"),
                         ("delays", "fault_delays"),
                         ("retries", "retransmissions")):
        require(agg[key] == counters[counter],
                f"{ctx}: fault_classes {key} sum to {agg[key]}, "
                f"{counter} says {counters[counter]}")
    for counter, cls in (("fills_retried", "fill"),
                         ("invalidations_retried", "invalidate"),
                         ("ts_checks_retried", "ts_check")):
        require(counters[counter] == classes[cls]["retries"],
                f"{ctx}: {counter} is {counters[counter]}, fault_classes "
                f"says {classes[cls]['retries']}")

    sampled = "sampled" in run
    if sampled:
        check_sampled_run(run, counters, cfg, ctx)

    hists = run.get("histograms")
    require(isinstance(hists, dict), f"{ctx}: missing histograms")
    if sampled:
        # Functional warming suppresses histogram inputs entirely rather
        # than recording a biased in-window subset.
        require(hists == {},
                f"{ctx}: sampled runs must not emit histograms")
    for name, h in hists.items():
        require(name in HIST_KEYS, f"{ctx}: unknown histogram {name!r}")
        check_histogram(name, h, ctx)

    breakdown = run.get("breakdown")
    require(isinstance(breakdown, list), f"{ctx}: missing breakdown")
    if sampled:
        # Per-proc rows would claim full-run bucket sums the windows never
        # observed; a sampled run reports window estimates instead.
        require(breakdown == [],
                f"{ctx}: sampled runs must not emit a per-proc breakdown")
    require(len(breakdown) == (0 if sampled else cfg["nprocs"]),
            f"{ctx}: breakdown has {len(breakdown)} rows, nprocs is "
            f"{cfg['nprocs']}")
    for row in breakdown:
        check_counter(row, "proc", ctx + " breakdown")
        check_counter(row, "clock", ctx + " breakdown")
        total = 0
        for key in BUCKET_KEYS:
            check_counter(row, key, ctx + " breakdown")
            total += row[key]
        require(total == run["makespan_cycles"],
                f"{ctx}: proc {row['proc']} buckets sum to {total}, "
                f"makespan is {run['makespan_cycles']}")
        require(row["clock"] <= run["makespan_cycles"],
                f"{ctx}: proc {row['proc']} clock exceeds makespan")

    events = run.get("events")
    require(isinstance(events, dict), f"{ctx}: missing events")
    require(isinstance(events.get("counts"), dict),
            f"{ctx}: missing events.counts")
    check_counter(events, "retained", ctx + " events")
    check_counter(events, "dropped", ctx + " events")
    if sampled:
        require(events["counts"] == {} and events["retained"] == 0
                and events["dropped"] == 0,
                f"{ctx}: sampled runs must not retain trace events")


def check_document(doc, path, require_sampled=False):
    require(isinstance(doc, dict), f"{path}: top level must be an object")
    version = doc.get("schema_version")
    require(isinstance(version, int), f"{path}: missing schema_version")
    if version != SCHEMA_VERSION:
        raise VersionError(
            f"{path}: unknown schema_version {version} (this checker "
            f"speaks {SCHEMA_VERSION})")
    require(doc.get("generator") == "olden-trace",
            f"{path}: generator must be 'olden-trace'")
    require(isinstance(doc.get("trace_truncated"), bool),
            f"{path}: missing trace_truncated flag")
    runs = doc.get("runs")
    require(isinstance(runs, list), f"{path}: missing runs array")
    for idx, run in enumerate(runs):
        check_run(run, idx)
        if require_sampled:
            require(run.get("sampled") is True,
                    f"run[{idx}]: --sample mode requires every run to be "
                    f"sampled, but this one is exact")
    any_dropped = any(run["events"]["dropped"] > 0 for run in runs)
    require(doc["trace_truncated"] == any_dropped,
            f"{path}: trace_truncated is {doc['trace_truncated']}, but "
            f"dropped-event counts say {any_dropped}")
    return len(runs), sum(1 for run in runs if "sampled" in run)


def check_delta_row(row, ctx):
    """A {a, b, delta} triple; returns the delta after checking b - a."""
    for key in ("a", "b"):
        check_counter(row, key, ctx)
    require(isinstance(row.get("delta"), int), f"{ctx}: missing delta")
    require(row["delta"] == row["b"] - row["a"],
            f"{ctx}: delta is {row['delta']}, b - a is "
            f"{row['b'] - row['a']}")
    return row["delta"]


def check_diff_side(side, ctx):
    require(isinstance(side, dict), f"{ctx}: missing side object")
    require(isinstance(side.get("path"), str) and side["path"],
            f"{ctx}: missing path")
    require(isinstance(side.get("label"), str) and side["label"],
            f"{ctx}: missing label")
    for key in ("nprocs", "makespan_cycles", "events"):
        check_counter(side, key, ctx)
    require(isinstance(side.get("truncated"), bool),
            f"{ctx}: missing truncated flag")


def check_partition(part, name, want_delta, key_field, ctx):
    """A sites/pages/edges object: delta_sum + top rows + other rollup.

    Re-derives the exactness invariant from the emitted rows alone: the
    top rows and the "other" rollup must sum to delta_sum, and delta_sum
    must equal the makespan delta.
    """
    ctx = f"{ctx} {name}"
    require(isinstance(part, dict), f"{ctx}: missing partition object")
    require(isinstance(part.get("delta_sum"), int),
            f"{ctx}: missing delta_sum")
    require(isinstance(part.get("top"), list), f"{ctx}: missing top")
    emitted = 0
    for i, row in enumerate(part["top"]):
        rctx = f"{ctx} top[{i}]"
        require(isinstance(row, dict), f"{rctx}: must be an object")
        if key_field == "edge":
            for key in ("src", "dst", "bucket"):
                require(isinstance(row.get(key), str) and row[key],
                        f"{rctx}: missing {key}")
            require(row["bucket"] in BUCKET_KEYS,
                    f"{rctx}: unknown bucket {row['bucket']!r}")
            require("site" in row, f"{rctx}: missing site")
            require(row["site"] is None or isinstance(row["site"], int),
                    f"{rctx}: site must be an integer or null")
        else:
            require(key_field in row, f"{rctx}: missing {key_field}")
            require(row[key_field] is None
                    or isinstance(row[key_field], int),
                    f"{rctx}: {key_field} must be an integer or null")
        emitted += check_delta_row(row, rctx)
    require(isinstance(part.get("other"), dict), f"{ctx}: missing other")
    emitted += check_delta_row(part["other"], ctx + " other")
    require(emitted == part["delta_sum"],
            f"{ctx}: top + other deltas sum to {emitted}, delta_sum says "
            f"{part['delta_sum']}")
    require(part["delta_sum"] == want_delta,
            f"{ctx}: delta_sum is {part['delta_sum']}, makespan delta is "
            f"{want_delta} — exactness invariant violated")


def check_diff(diff, idx):
    ctx = f"diff[{idx}]"
    for side in ("a", "b"):
        check_diff_side(diff.get(side), f"{ctx} side {side!r}")
    ctx = f"diff[{idx}] ({diff['a']['label']} vs {diff['b']['label']})"

    require(isinstance(diff.get("makespan_delta_cycles"), int),
            f"{ctx}: missing makespan_delta_cycles")
    delta = diff["makespan_delta_cycles"]
    require(delta == diff["b"]["makespan_cycles"]
            - diff["a"]["makespan_cycles"],
            f"{ctx}: makespan_delta_cycles disagrees with the sides")
    require(isinstance(diff.get("makespan_delta_percent"), (int, float)),
            f"{ctx}: missing makespan_delta_percent")
    require(diff.get("exact") is True, f"{ctx}: missing exact:true")

    buckets = diff.get("buckets")
    require(isinstance(buckets, list)
            and all(isinstance(b, dict) for b in buckets),
            f"{ctx}: missing buckets")
    require([b.get("bucket") for b in buckets] == BUCKET_KEYS,
            f"{ctx}: buckets must be exactly {BUCKET_KEYS}, in order")
    total = sum(check_delta_row(b, f"{ctx} bucket {b['bucket']!r}")
                for b in buckets)
    require(total == delta,
            f"{ctx}: bucket deltas sum to {total}, makespan delta is "
            f"{delta} — exactness invariant violated")

    check_partition(diff.get("sites"), "sites", delta, "site", ctx)
    check_partition(diff.get("pages"), "pages", delta, "page", ctx)
    check_partition(diff.get("edges"), "edges", delta, "edge", ctx)

    retries = diff.get("retries_by_class")
    require(isinstance(retries, dict), f"{ctx}: missing retries_by_class")
    require(list(retries.keys()) == MSG_CLASSES + ["unknown"],
            f"{ctx}: retries_by_class keys must be exactly "
            f"{MSG_CLASSES + ['unknown']}, in order")
    for cls, row in retries.items():
        rctx = f"{ctx} retries_by_class[{cls!r}]"
        require(isinstance(row, dict), f"{rctx}: must be an object")
        check_delta_row(row, rctx)

    chains = diff.get("chains")
    require(isinstance(chains, dict), f"{ctx}: missing chains")
    for key in ("a", "b", "aligned"):
        check_counter(chains, key, ctx + " chains")
    require(chains["aligned"] <= min(chains["a"], chains["b"]),
            f"{ctx}: more chains aligned than either side has")


def check_diff_document(doc, path):
    require(isinstance(doc, dict), f"{path}: top level must be an object")
    require(doc.get("diff_schema_version") == DIFF_SCHEMA_VERSION,
            f"{path}: diff_schema_version must be {DIFF_SCHEMA_VERSION}, "
            f"got {doc.get('diff_schema_version')!r}")
    require(doc.get("generator") == "olden-analyze",
            f"{path}: generator must be 'olden-analyze'")
    require(isinstance(doc.get("trace_version"), int),
            f"{path}: missing trace_version")
    diffs = doc.get("diffs")
    require(isinstance(diffs, list), f"{path}: missing diffs array")
    for idx, diff in enumerate(diffs):
        check_diff(diff, idx)
    return len(diffs)


SITE_COUNTER_KEYS = ["local_reads", "local_writes", "cache_hits",
                     "cache_misses", "write_throughs", "migrations"]

PAGE_COUNTER_KEYS = ["local_accesses", "cache_hits", "cache_misses",
                     "write_throughs", "line_fills", "lines_invalidated",
                     "timestamp_checks"]


def check_profile_site(site, ctx):
    check_counter(site, "site", ctx)
    total = 0
    for key in SITE_COUNTER_KEYS:
        check_counter(site, key, ctx)
        total += site[key]
    check_counter(site, "accesses", ctx)
    require(site["accesses"] == total,
            f"{ctx}: counters sum to {total}, accesses says "
            f"{site['accesses']}")
    require(isinstance(site.get("timeline"), list),
            f"{ctx}: missing timeline")
    timeline_total = 0
    prev = -1
    for entry in site["timeline"]:
        require(isinstance(entry, list) and len(entry) == 2
                and all(isinstance(v, int) and v >= 0 for v in entry),
                f"{ctx}: timeline entries must be [interval, accesses] "
                f"pairs")
        require(entry[0] > prev, f"{ctx}: timeline out of order")
        prev = entry[0]
        timeline_total += entry[1]
    require(timeline_total == site["accesses"],
            f"{ctx}: timeline sums to {timeline_total}, accesses says "
            f"{site['accesses']}")
    return site["accesses"], site["migrations"]


def check_profile_run(run, idx):
    ctx = f"run[{idx}]"
    require(isinstance(run.get("label"), str) and run["label"],
            f"{ctx}: missing label")
    ctx = f"run[{idx}] ({run['label']})"
    require(isinstance(run.get("benchmark"), str),
            f"{ctx}: missing benchmark")
    check_counter(run, "nprocs", ctx)
    require(run["nprocs"] >= 1, f"{ctx}: nprocs must be >= 1")
    require(run.get("scheme") in SCHEMES,
            f"{ctx}: scheme must be one of {sorted(SCHEMES)}")
    require(isinstance(run.get("sequential_baseline"), bool),
            f"{ctx}: missing sequential_baseline")
    check_counter(run, "makespan_cycles", ctx)
    check_counter(run, "interval_cycles", ctx)
    require(run["interval_cycles"] >= 1,
            f"{ctx}: interval_cycles must be >= 1")

    totals = run.get("totals")
    require(isinstance(totals, dict), f"{ctx}: missing totals")
    for key in ("accesses", "migrations", "future_steals"):
        check_counter(totals, key, ctx + " totals")

    require(isinstance(run.get("sites"), list), f"{ctx}: missing sites")
    site_accesses = 0
    site_migrations = 0
    for i, site in enumerate(run["sites"]):
        acc, mig = check_profile_site(site, f"{ctx} sites[{i}]")
        site_accesses += acc
        site_migrations += mig
    require(site_accesses == totals["accesses"],
            f"{ctx}: site accesses sum to {site_accesses}, totals say "
            f"{totals['accesses']}")
    # Site-attributed migrations can undercount (a depart without a site
    # id is charged machine-wide only), never overcount.
    require(site_migrations <= totals["migrations"],
            f"{ctx}: site migrations sum to {site_migrations}, exceeding "
            f"totals {totals['migrations']}")

    require(isinstance(run.get("pages"), list), f"{ctx}: missing pages")
    for i, page in enumerate(run["pages"]):
        pctx = f"{ctx} pages[{i}]"
        check_counter(page, "page", pctx)
        for key in PAGE_COUNTER_KEYS:
            check_counter(page, key, pctx)

    require(isinstance(run.get("procs"), list), f"{ctx}: missing procs")
    require(len(run["procs"]) == run["nprocs"],
            f"{ctx}: procs has {len(run['procs'])} rows, nprocs is "
            f"{run['nprocs']}")
    out_total = in_total = steal_total = 0
    for i, proc in enumerate(run["procs"]):
        pctx = f"{ctx} procs[{i}]"
        check_counter(proc, "proc", pctx)
        require(proc["proc"] == i, f"{pctx}: out of order")
        for key in ("migrations_out", "migrations_in", "future_steals"):
            check_counter(proc, key, pctx)
        out_total += proc["migrations_out"]
        in_total += proc["migrations_in"]
        steal_total += proc["future_steals"]
    require(out_total == totals["migrations"],
            f"{ctx}: proc migrations_out sum to {out_total}, totals say "
            f"{totals['migrations']}")
    require(in_total == totals["migrations"],
            f"{ctx}: proc migrations_in sum to {in_total}, totals say "
            f"{totals['migrations']}")
    require(steal_total == totals["future_steals"],
            f"{ctx}: proc future_steals sum to {steal_total}, totals say "
            f"{totals['future_steals']}")

    require(isinstance(run.get("intervals"), list),
            f"{ctx}: missing intervals")
    iv_accesses = iv_migrations = iv_steals = cycle_total = 0
    prev = -1
    for i, iv in enumerate(run["intervals"]):
        ictx = f"{ctx} intervals[{i}]"
        for key in ("interval", "start_cycle", "accesses", "migrations",
                    "future_steals"):
            check_counter(iv, key, ictx)
        require(iv["interval"] > prev, f"{ictx}: out of order")
        prev = iv["interval"]
        require(iv["start_cycle"] == iv["interval"] * run["interval_cycles"],
                f"{ictx}: start_cycle disagrees with interval index")
        require(iv["start_cycle"] <= run["makespan_cycles"],
                f"{ictx}: interval starts past the makespan")
        iv_accesses += iv["accesses"]
        iv_migrations += iv["migrations"]
        iv_steals += iv["future_steals"]
        cycles = iv.get("cycles")
        require(isinstance(cycles, dict), f"{ictx}: missing cycles")
        require(list(cycles.keys()) == BUCKET_KEYS,
                f"{ictx}: cycles must be exactly {BUCKET_KEYS}, in order")
        for key in BUCKET_KEYS:
            check_counter(cycles, key, ictx + " cycles")
            cycle_total += cycles[key]
    require(iv_accesses == totals["accesses"],
            f"{ctx}: interval accesses sum to {iv_accesses}, totals say "
            f"{totals['accesses']}")
    require(iv_migrations == totals["migrations"],
            f"{ctx}: interval migrations sum to {iv_migrations}, totals "
            f"say {totals['migrations']}")
    require(iv_steals == totals["future_steals"],
            f"{ctx}: interval future_steals sum to {iv_steals}, totals "
            f"say {totals['future_steals']}")
    want = run["nprocs"] * run["makespan_cycles"]
    require(cycle_total == want,
            f"{ctx}: interval cycle buckets sum to {cycle_total}, nprocs "
            f"x makespan is {want} — conservation invariant violated")


def check_profile_document(doc, path):
    require(isinstance(doc, dict), f"{path}: top level must be an object")
    version = doc.get("profile_schema_version")
    require(isinstance(version, int),
            f"{path}: missing profile_schema_version")
    if version != PROFILE_SCHEMA_VERSION:
        raise VersionError(
            f"{path}: unknown profile_schema_version {version} (this "
            f"checker speaks {PROFILE_SCHEMA_VERSION})")
    require(doc.get("generator") == "olden-profile",
            f"{path}: generator must be 'olden-profile'")
    runs = doc.get("runs")
    require(isinstance(runs, list), f"{path}: missing runs array")
    for idx, run in enumerate(runs):
        check_profile_run(run, idx)
    return len(runs)


def main(argv):
    args = argv[1:]
    mode = "stats"
    if args and args[0] == "--diff":
        mode = "diff"
        args = args[1:]
    elif args and args[0] == "--profile":
        mode = "profile"
        args = args[1:]
    elif args and args[0] == "--sample":
        mode = "sample"
        args = args[1:]
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in args:
        try:
            with open(path, "r", encoding="utf-8") as f:
                doc = json.load(f)
            if mode == "diff":
                n = check_diff_document(doc, path)
            elif mode == "profile":
                n = check_profile_document(doc, path)
            else:
                n, sampled = check_document(
                    doc, path, require_sampled=(mode == "sample"))
        except (OSError, json.JSONDecodeError, SchemaError) as e:
            print(f"FAIL {path}: {e}", file=sys.stderr)
            return 1
        except VersionError as e:
            print(f"FAIL {path}: {e}", file=sys.stderr)
            return 2
        if mode == "diff":
            print(f"OK   {path}: {n} diff(s), "
                  f"diff schema v{DIFF_SCHEMA_VERSION}, exactness verified")
        elif mode == "profile":
            print(f"OK   {path}: {n} run(s), profile schema "
                  f"v{PROFILE_SCHEMA_VERSION}, conservation verified")
        else:
            extra = f", {sampled} sampled" if sampled else ""
            print(f"OK   {path}: {n} run(s), schema "
                  f"v{SCHEMA_VERSION}{extra}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
