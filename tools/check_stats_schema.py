#!/usr/bin/env python3
"""Validate a --stats-json document produced by the Olden bench binaries.

Usage: check_stats_schema.py STATS.json [STATS2.json ...]

Checks the structural schema (version 2, documented in
docs/OBSERVABILITY.md) and the arithmetic invariants the exporter
promises: per-processor cycle buckets sum to the makespan, histogram
bucket counts sum to the histogram count, and event retention arithmetic
is consistent. Exits non-zero with a message on the first violation.

Stdlib only, so it can run in any CI image.
"""

import json
import sys

SCHEMA_VERSION = 2

COUNTER_KEYS = {
    "local_reads", "local_writes",
    "cacheable_reads", "cacheable_writes",
    "cacheable_reads_remote", "cacheable_writes_remote",
    "cache_hits", "cache_misses",
    "timestamp_checks", "timestamp_stalls",
    "migrations", "return_migrations",
    "futurecalls", "futures_inlined", "futures_stolen", "touches_blocked",
    "cache_flushes", "lines_invalidated", "invalidation_messages",
    "tracked_writes", "pages_cached",
    "allocations", "bytes_allocated",
    "fault_messages", "fault_drops", "fault_duplicates", "fault_delays",
    "retransmissions", "duplicates_suppressed", "acks_sent",
    "hiccups_injected", "hiccup_cycles",
    "threads_created", "makespan_cycles",
}

BUCKET_KEYS = ["compute", "migration", "cache_stall", "coherence", "idle",
               "retry"]

HIST_KEYS = {
    "migration_latency_cycles", "return_stub_latency_cycles",
    "miss_fill_cycles", "ready_queue_depth", "worklist_depth", "page_heat",
}

SCHEMES = {"local", "global", "bilateral"}


class SchemaError(Exception):
    pass


def require(cond, msg):
    if not cond:
        raise SchemaError(msg)


def check_counter(obj, key, ctx):
    require(key in obj, f"{ctx}: missing {key!r}")
    require(isinstance(obj[key], int) and obj[key] >= 0,
            f"{ctx}: {key!r} must be a non-negative integer")


def check_histogram(name, h, ctx):
    ctx = f"{ctx} histogram {name!r}"
    for key in ("count", "sum", "min", "max"):
        check_counter(h, key, ctx)
    require(isinstance(h.get("mean"), (int, float)), f"{ctx}: missing mean")
    require(isinstance(h.get("buckets"), list), f"{ctx}: missing buckets")
    total = 0
    prev_hi = -1
    for b in h["buckets"]:
        for key in ("lo", "hi", "count"):
            check_counter(b, key, ctx + " bucket")
        require(b["lo"] <= b["hi"], f"{ctx}: bucket lo > hi")
        require(b["lo"] > prev_hi, f"{ctx}: buckets overlap or out of order")
        prev_hi = b["hi"]
        total += b["count"]
    require(total == h["count"],
            f"{ctx}: bucket counts sum to {total}, header says {h['count']}")
    if h["count"] > 0:
        require(h["min"] <= h["max"], f"{ctx}: min > max")


def check_run(run, idx):
    ctx = f"run[{idx}]"
    require(isinstance(run.get("label"), str) and run["label"],
            f"{ctx}: missing label")
    ctx = f"run[{idx}] ({run['label']})"

    cfg = run.get("config")
    require(isinstance(cfg, dict), f"{ctx}: missing config")
    check_counter(cfg, "nprocs", ctx)
    require(cfg["nprocs"] >= 1, f"{ctx}: nprocs must be >= 1")
    require(cfg.get("scheme") in SCHEMES,
            f"{ctx}: scheme must be one of {sorted(SCHEMES)}")
    require(isinstance(cfg.get("sequential_baseline"), bool),
            f"{ctx}: missing sequential_baseline")

    check_counter(run, "makespan_cycles", ctx)
    require(isinstance(run.get("seconds"), (int, float)),
            f"{ctx}: missing seconds")

    counters = run.get("counters")
    require(isinstance(counters, dict), f"{ctx}: missing counters")
    for key in COUNTER_KEYS:
        check_counter(counters, key, ctx + " counters")
    require(counters["makespan_cycles"] == run["makespan_cycles"],
            f"{ctx}: counters.makespan_cycles disagrees with run")
    require(counters["cache_hits"] + counters["cache_misses"]
            == counters["cacheable_reads_remote"],
            f"{ctx}: hits + misses != remote cacheable reads")
    require(counters["timestamp_stalls"] <= counters["timestamp_checks"],
            f"{ctx}: timestamp_stalls > timestamp_checks")
    require(counters["duplicates_suppressed"]
            <= counters["fault_duplicates"] + counters["retransmissions"],
            f"{ctx}: more duplicates suppressed than were ever created")

    hists = run.get("histograms")
    require(isinstance(hists, dict), f"{ctx}: missing histograms")
    for name, h in hists.items():
        require(name in HIST_KEYS, f"{ctx}: unknown histogram {name!r}")
        check_histogram(name, h, ctx)

    breakdown = run.get("breakdown")
    require(isinstance(breakdown, list), f"{ctx}: missing breakdown")
    require(len(breakdown) == cfg["nprocs"],
            f"{ctx}: breakdown has {len(breakdown)} rows, nprocs is "
            f"{cfg['nprocs']}")
    for row in breakdown:
        check_counter(row, "proc", ctx + " breakdown")
        check_counter(row, "clock", ctx + " breakdown")
        total = 0
        for key in BUCKET_KEYS:
            check_counter(row, key, ctx + " breakdown")
            total += row[key]
        require(total == run["makespan_cycles"],
                f"{ctx}: proc {row['proc']} buckets sum to {total}, "
                f"makespan is {run['makespan_cycles']}")
        require(row["clock"] <= run["makespan_cycles"],
                f"{ctx}: proc {row['proc']} clock exceeds makespan")

    events = run.get("events")
    require(isinstance(events, dict), f"{ctx}: missing events")
    require(isinstance(events.get("counts"), dict),
            f"{ctx}: missing events.counts")
    check_counter(events, "retained", ctx + " events")
    check_counter(events, "dropped", ctx + " events")


def check_document(doc, path):
    require(isinstance(doc, dict), f"{path}: top level must be an object")
    require(doc.get("schema_version") == SCHEMA_VERSION,
            f"{path}: schema_version must be {SCHEMA_VERSION}, "
            f"got {doc.get('schema_version')!r}")
    require(doc.get("generator") == "olden-trace",
            f"{path}: generator must be 'olden-trace'")
    require(isinstance(doc.get("trace_truncated"), bool),
            f"{path}: missing trace_truncated flag")
    runs = doc.get("runs")
    require(isinstance(runs, list), f"{path}: missing runs array")
    for idx, run in enumerate(runs):
        check_run(run, idx)
    any_dropped = any(run["events"]["dropped"] > 0 for run in runs)
    require(doc["trace_truncated"] == any_dropped,
            f"{path}: trace_truncated is {doc['trace_truncated']}, but "
            f"dropped-event counts say {any_dropped}")
    return len(runs)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in argv[1:]:
        try:
            with open(path, "r", encoding="utf-8") as f:
                doc = json.load(f)
            n = check_document(doc, path)
        except (OSError, json.JSONDecodeError, SchemaError) as e:
            print(f"FAIL {path}: {e}", file=sys.stderr)
            return 1
        print(f"OK   {path}: {n} run(s), schema v{SCHEMA_VERSION}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
