#!/usr/bin/env python3
"""Regression tests for bench_compare.py's failure-mode contract.

The comparison half is exercised by CI end-to-end; what needs pinning
here is the degradation contract around --traces-old/--traces-new: an
archive missing one cell's trace (an interrupted --keep-traces run), an
analyze binary emitting garbage, or a malformed diff document must each
degrade to a per-cell note — never a traceback, never an abort of the
whole attribution pass — while the documented exit codes (1/3/4/5) stay
exactly as advertised.

Stdlib only; registered with ctest from tools/CMakeLists.txt.
"""

import json
import os
import stat
import subprocess
import sys
import tempfile
import unittest

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
BENCH_COMPARE = os.path.join(TOOLS_DIR, "bench_compare.py")


def bench_doc(revision, makespans, sample=None, ci95=0):
    """A schema-valid BENCH document: {benchmark: (scheme, makespan)}.

    With sample="W:D[:OFFSET]" every cell is marked sampled with the
    given makespan_ci95, mirroring bench_runner.py --sample output."""
    cells = []
    for bench, (scheme, makespan) in makespans.items():
        nprocs = 4
        cell = {
            "benchmark": bench,
            "scheme": scheme,
            "nprocs": nprocs,
            "makespan_cycles": makespan,
            "buckets": {
                "compute": nprocs * makespan,
                "migration": 0,
                "cache_stall": 0,
                "coherence": 0,
                "idle": 0,
            },
            "counters": {},
            "miss_rate_percent": 1.0,
        }
        if sample is not None:
            cell["sampled"] = True
            cell["makespan_ci95"] = ci95
            cell["critical_path"] = None
        cells.append(cell)
    doc = {
        "bench_schema_version": 1,
        "generator": "bench_runner",
        "revision": revision,
        "mode": "tiny",
        "nprocs": 4,
        "cells": cells,
    }
    if sample is not None:
        doc["sample"] = sample
    return doc


DIFF_OK = {
    "diff_schema_version": 1,
    "diffs": [{
        "makespan_delta_cycles": 500,
        "makespan_delta_percent": 50.0,
        "buckets": [{"bucket": "compute", "delta": 500, "a": 1000,
                     "b": 1500}],
        "edges": {"top": []},
        "sites": {"top": []},
    }],
}


class BenchCompareTracesTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory(prefix="bench_compare_test_")
        self.addCleanup(self.tmp.cleanup)
        self.dir = self.tmp.name

    def path(self, name):
        return os.path.join(self.dir, name)

    def write_json(self, name, doc):
        p = self.path(name)
        with open(p, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        return p

    def write_stub_analyze(self, stdout, returncode=0):
        """A fake olden-analyze that prints `stdout` and exits."""
        p = self.path("fake_analyze.py")
        with open(p, "w", encoding="utf-8") as f:
            f.write("#!%s\nimport sys\nsys.stdout.write(%r)\n"
                    "sys.exit(%d)\n" % (sys.executable, stdout, returncode))
        os.chmod(p, os.stat(p).st_mode | stat.S_IXUSR)
        return p

    def make_traces(self, dirname, benches):
        d = self.path(dirname)
        os.makedirs(d, exist_ok=True)
        for bench in benches:
            with open(os.path.join(d, bench + ".trace.bin"), "wb") as f:
                f.write(b"OLDNTRC2 stub")
        return d

    def run_compare(self, *extra):
        old = self.write_json("old.json", bench_doc("seed", {
            "TreeAdd": ("local", 1000), "MST": ("local", 1000)}))
        new = self.write_json("new.json", bench_doc("head", {
            "TreeAdd": ("local", 1500), "MST": ("local", 1500)}))
        return subprocess.run(
            [sys.executable, BENCH_COMPARE, old, new, *extra],
            capture_output=True, text=True)

    def assert_no_traceback(self, proc):
        self.assertNotIn("Traceback", proc.stderr, proc.stderr)
        self.assertNotIn("Traceback", proc.stdout, proc.stdout)

    def test_incomplete_archive_degrades_per_cell(self):
        # OLD has both traces, NEW lost MST's (interrupted --keep-traces):
        # TreeAdd still gets its attribution (exit 5), MST degrades to a
        # "trace unavailable" note instead of aborting the pass.
        traces_old = self.make_traces("traces_old", ["TreeAdd", "MST"])
        traces_new = self.make_traces("traces_new", ["TreeAdd"])
        analyze = self.write_stub_analyze(json.dumps(DIFF_OK))
        proc = self.run_compare("--traces-old", traces_old,
                                "--traces-new", traces_new,
                                "--analyze", analyze)
        self.assert_no_traceback(proc)
        self.assertEqual(proc.returncode, 5, proc.stdout + proc.stderr)
        self.assertIn("TreeAdd/local/p=4: +500 cycles", proc.stdout)
        self.assertIn("MST/local/p=4: trace unavailable", proc.stdout)

    def test_fully_missing_archive_still_reports_the_regression(self):
        # Neither side has any trace (or the directory doesn't exist at
        # all): every cell degrades, no attribution attaches, and the
        # plain regression exit code 1 is preserved — not 5, not a crash.
        analyze = self.write_stub_analyze(json.dumps(DIFF_OK))
        proc = self.run_compare("--traces-old", self.path("nonexistent_old"),
                                "--traces-new", self.path("nonexistent_new"),
                                "--analyze", analyze)
        self.assert_no_traceback(proc)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("trace unavailable", proc.stdout)

    def test_malformed_diff_document_degrades_not_tracebacks(self):
        # The analyze binary runs fine but emits a diff document missing
        # the fields the report renders — per-cell note, exit 1.
        traces_old = self.make_traces("traces_old", ["TreeAdd", "MST"])
        traces_new = self.make_traces("traces_new", ["TreeAdd", "MST"])
        analyze = self.write_stub_analyze(
            json.dumps({"diff_schema_version": 1, "diffs": [{}]}))
        proc = self.run_compare("--traces-old", traces_old,
                                "--traces-new", traces_new,
                                "--analyze", analyze)
        self.assert_no_traceback(proc)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("no diff attribution", proc.stdout)

    def test_failing_analyze_binary_degrades(self):
        traces_old = self.make_traces("traces_old", ["TreeAdd", "MST"])
        traces_new = self.make_traces("traces_new", ["TreeAdd", "MST"])
        analyze = self.write_stub_analyze("", returncode=7)
        proc = self.run_compare("--traces-old", traces_old,
                                "--traces-new", traces_new,
                                "--analyze", analyze)
        self.assert_no_traceback(proc)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("no diff attribution", proc.stdout)

    def test_bad_input_file_exits_3(self):
        bad = self.path("garbage.json")
        with open(bad, "w", encoding="utf-8") as f:
            f.write("not json at all")
        proc = subprocess.run(
            [sys.executable, BENCH_COMPARE, "--check", bad],
            capture_output=True, text=True)
        self.assert_no_traceback(proc)
        self.assertEqual(proc.returncode, 3, proc.stderr)

    def test_absent_cell_exits_4(self):
        proc = self.run_compare("--cell", "Power/bilateral/8")
        self.assert_no_traceback(proc)
        self.assertEqual(proc.returncode, 4, proc.stdout + proc.stderr)

    def test_adaptive_is_a_valid_scheme(self):
        doc = self.write_json("adaptive.json", bench_doc("head", {
            "TreeAdd": ("adaptive", 1000)}))
        proc = subprocess.run(
            [sys.executable, BENCH_COMPARE, "--check", doc],
            capture_output=True, text=True)
        self.assert_no_traceback(proc)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)


class BenchCompareSampledTest(unittest.TestCase):
    """The sampled-cell contract: schema, exit 6, and --ci-gate gating."""

    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory(prefix="bench_compare_test_")
        self.addCleanup(self.tmp.cleanup)
        self.dir = self.tmp.name

    def write_json(self, name, doc):
        p = os.path.join(self.dir, name)
        with open(p, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        return p

    def compare(self, old_doc, new_doc, *extra):
        old = self.write_json("old.json", old_doc)
        new = self.write_json("new.json", new_doc)
        return subprocess.run(
            [sys.executable, BENCH_COMPARE, old, new, *extra],
            capture_output=True, text=True)

    def test_sampled_document_passes_check(self):
        doc = self.write_json("sampled.json", bench_doc(
            "head", {"TreeAdd": ("local", 1000)}, sample="1024:256"))
        proc = subprocess.run(
            [sys.executable, BENCH_COMPARE, "--check", doc],
            capture_output=True, text=True)
        self.assertNotIn("Traceback", proc.stderr, proc.stderr)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_ci95_on_exact_cell_is_schema_invalid(self):
        doc = bench_doc("head", {"TreeAdd": ("local", 1000)})
        doc["cells"][0]["makespan_ci95"] = 3
        path = self.write_json("bad.json", doc)
        proc = subprocess.run(
            [sys.executable, BENCH_COMPARE, "--check", path],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 3, proc.stdout + proc.stderr)
        self.assertIn("makespan_ci95 on an exact cell", proc.stderr)

    def test_sampled_vs_exact_exits_6_with_structured_message(self):
        proc = self.compare(
            bench_doc("seed", {"TreeAdd": ("local", 1000)}),
            bench_doc("head", {"TreeAdd": ("local", 1000)},
                      sample="1024:256"))
        self.assertNotIn("Traceback", proc.stderr, proc.stderr)
        self.assertEqual(proc.returncode, 6, proc.stdout + proc.stderr)
        self.assertIn("SAMPLED MISMATCH", proc.stdout)
        self.assertIn("OLD is exact, NEW is sampled", proc.stdout)
        self.assertIn("--ci-gate", proc.stdout)

    def test_mismatch_outranks_a_regression_elsewhere(self):
        # MST regresses hard, but TreeAdd's sampled-vs-exact mismatch
        # invalidates the comparison as a whole: exit 6, not 1.
        proc = self.compare(
            bench_doc("seed", {"TreeAdd": ("local", 1000),
                               "MST": ("local", 1000)}),
            {**bench_doc("head", {"MST": ("local", 2000)}),
             "cells": bench_doc("head", {"MST": ("local", 2000)})["cells"]
             + bench_doc("head", {"TreeAdd": ("local", 1000)},
                         sample="64:16")["cells"]})
        self.assertEqual(proc.returncode, 6, proc.stdout + proc.stderr)

    def test_ci_gate_authorizes_the_mix_and_passes_when_equal(self):
        # Sampled makespans are exact (virtual time is fully known), so a
        # gated sampled-vs-exact comparison of identical runs is clean.
        proc = self.compare(
            bench_doc("seed", {"TreeAdd": ("local", 1000)}),
            bench_doc("head", {"TreeAdd": ("local", 1000)},
                      sample="1024:256"),
            "--ci-gate")
        self.assertNotIn("Traceback", proc.stderr, proc.stderr)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_ci_gate_forgives_regressions_inside_the_interval(self):
        # +50% drift, but the new cell's CI covers the old value: the
        # intervals don't separate, so no regression is flagged.
        proc = self.compare(
            bench_doc("seed", {"TreeAdd": ("local", 1000)}),
            bench_doc("head", {"TreeAdd": ("local", 1500)},
                      sample="1024:256", ci95=600),
            "--ci-gate")
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("drift", proc.stdout)

    def test_ci_gate_still_fails_when_intervals_separate(self):
        proc = self.compare(
            bench_doc("seed", {"TreeAdd": ("local", 1000)}),
            bench_doc("head", {"TreeAdd": ("local", 1500)},
                      sample="1024:256", ci95=100),
            "--ci-gate")
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("REGRESSION", proc.stdout)
        self.assertIn("[ci95 0 -> 100]", proc.stdout)


if __name__ == "__main__":
    unittest.main()
