// olden-analyze: offline trace analysis for Olden binary traces (v2).
//
//   olden-analyze --trace-bin FILE [--stream] [--json] [--json-out FILE]
//                 [--top N]
//
// Reads a binary trace produced by a bench binary's --trace-bin flag and
// reports, per run: the critical path (total weight always equals the
// traced makespan; per-edge attribution over compute / migration /
// cache_stall / coherence / idle), the hottest migration sites, and
// per-page heat with ping-pong (invalidate-then-refill) detection.
//
// --stream analyzes the trace in bounded memory (see streaming.hpp):
// events are never loaded as a whole, only ~18 packed bytes per event
// (peaking at ~43 during critical-path extraction) are retained, and the
// JSON report is byte-identical to the in-memory path. The human report
// is identical except that the per-edge "heaviest edges" detail is not
// reconstructed.
//
// Exit codes: 0 success, 1 unreadable/unsupported trace (including v1
// logs, which are named explicitly), 2 usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "olden/analyze/report.hpp"
#include "olden/analyze/streaming.hpp"
#include "olden/trace/observer.hpp"

namespace {

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: olden-analyze --trace-bin FILE [options]\n"
               "  --trace-bin FILE   binary trace to analyze (required)\n"
               "  --stream           single-pass bounded-memory analysis "
               "(identical JSON)\n"
               "  --json             print the JSON report to stdout\n"
               "  --json-out FILE    also write the JSON report to FILE\n"
               "  --top N            keep the N hottest sites/pages (default 10)\n"
               "  --version          print schema versions and exit\n"
               "  --help             this message\n");
}

void warn_truncated(const olden::analyze::TraceRun& run) {
  if (!run.truncated()) return;
  std::fprintf(stderr,
               "olden-analyze: warning: run '%s' dropped %llu events at "
               "the trace limit; analyses cover the retained prefix\n",
               run.label.c_str(),
               static_cast<unsigned long long>(run.events_dropped));
}

/// Streaming path: one pass per run, headers retained, events not.
bool analyze_streamed(const std::string& path, std::size_t top_n,
                      olden::analyze::TraceFile* file,
                      std::vector<olden::analyze::RunReport>* reports,
                      std::string* err) {
  olden::analyze::TraceStream ts;
  if (!ts.open(path, err)) return false;
  file->version = ts.version();
  std::vector<olden::trace::TraceEvent> batch;
  constexpr std::size_t kBatch = 1 << 16;
  olden::analyze::TraceRun run;
  while (ts.next_run(&run, err)) {
    warn_truncated(run);
    olden::analyze::StreamingRunAnalyzer an(run, top_n);
    while (ts.next_events(&batch, kBatch, err)) {
      for (const olden::trace::TraceEvent& e : batch) {
        if (!an.add(e)) break;
      }
      if (!an.error().empty()) break;
    }
    if (!err->empty()) return false;
    olden::analyze::RunReport rep;
    if (!an.finish(&rep, err)) {
      *err = path + ": run '" + run.label + "': " + *err;
      return false;
    }
    reports->push_back(std::move(rep));
    file->runs.push_back(run);  // header only; run.events is empty
  }
  return err->empty();
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string json_out;
  bool json_stdout = false;
  bool stream = false;
  std::size_t top_n = 10;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "olden-analyze: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(a, "--trace-bin") == 0) {
      trace_path = value("--trace-bin");
    } else if (std::strcmp(a, "--stream") == 0) {
      stream = true;
    } else if (std::strcmp(a, "--json") == 0) {
      json_stdout = true;
    } else if (std::strcmp(a, "--json-out") == 0) {
      json_out = value("--json-out");
    } else if (std::strcmp(a, "--top") == 0) {
      top_n = static_cast<std::size_t>(std::strtoull(value("--top"), nullptr, 10));
    } else if (std::strcmp(a, "--version") == 0) {
      std::printf("olden-analyze: analysis schema v%d, binary trace format v%d\n",
                  olden::analyze::kAnalysisSchemaVersion,
                  olden::trace::kBinaryTraceVersion);
      return 0;
    } else if (std::strcmp(a, "--help") == 0) {
      usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "olden-analyze: unknown argument '%s'\n", a);
      usage(stderr);
      return 2;
    }
  }
  if (trace_path.empty()) {
    std::fprintf(stderr, "olden-analyze: --trace-bin is required\n");
    usage(stderr);
    return 2;
  }

  olden::analyze::TraceFile file;
  std::vector<olden::analyze::RunReport> reports;
  std::string err;
  if (stream) {
    if (!analyze_streamed(trace_path, top_n, &file, &reports, &err)) {
      std::fprintf(stderr, "olden-analyze: %s\n", err.c_str());
      return 1;
    }
  } else {
    if (!olden::analyze::read_binary_trace(trace_path, &file, &err)) {
      std::fprintf(stderr, "olden-analyze: %s\n", err.c_str());
      return 1;
    }
    reports.reserve(file.runs.size());
    for (const olden::analyze::TraceRun& run : file.runs) {
      warn_truncated(run);
      reports.push_back(olden::analyze::analyze_run(run, top_n));
    }
  }

  if (json_stdout || !json_out.empty()) {
    const std::string json = olden::analyze::json_report(file, reports);
    if (json_stdout) std::fputs(json.c_str(), stdout);
    if (!json_out.empty()) {
      std::FILE* f = std::fopen(json_out.c_str(), "wb");
      if (f == nullptr) {
        std::fprintf(stderr, "olden-analyze: cannot open %s for writing\n",
                     json_out.c_str());
        return 1;
      }
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
    }
  }
  if (!json_stdout) {
    for (std::size_t r = 0; r < file.runs.size(); ++r) {
      if (r != 0) std::printf("\n");
      std::fputs(
          olden::analyze::human_report(file.runs[r], reports[r]).c_str(),
          stdout);
    }
  }
  return 0;
}
