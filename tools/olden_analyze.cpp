// olden-analyze: offline trace analysis for Olden binary traces (v2).
//
//   olden-analyze --trace-bin FILE [--stream] [--json] [--json-out FILE]
//                 [--top N]
//
// Reads a binary trace produced by a bench binary's --trace-bin flag and
// reports, per run: the critical path (total weight always equals the
// traced makespan; per-edge attribution over compute / migration /
// cache_stall / coherence / idle), the hottest migration sites, and
// per-page heat with ping-pong (invalidate-then-refill) detection.
//
// --stream analyzes the trace in bounded memory (see streaming.hpp):
// events are never loaded as a whole, only ~18 packed bytes per event
// (peaking at ~43 during critical-path extraction) are retained, and the
// JSON report is byte-identical to the in-memory path. The human report
// is identical except that the per-edge "heaviest edges" detail is not
// reconstructed.
//
//   olden-analyze --diff A B [--run LABEL | --run-a LA --run-b LB]
//                 [--stream] [--json] [--json-out FILE] [--top N]
//
// Diff mode (see diff.hpp) compares two traces of the same workload and
// decomposes the makespan delta into per-bucket, per-site, per-page and
// per-edge contributions, each summing exactly to the delta. Runs are
// paired index-wise by default, by label with --run, or asymmetrically
// with --run-a/--run-b (A and B may be the same file, e.g. to diff two
// schemes recorded in one suite trace). --stream applies to both sides
// and produces byte-identical output.
//
//   olden-analyze --profile FILE [--top N] [--feedback-out FILE]
//
// Profile mode (see profile_report.hpp) reads the interval-sampled
// profile JSON a bench binary's --profile flag wrote and reports, per
// run: phase changes over the interval timeline, the page-heat ranking,
// and the heuristic scoreboard grading each static migrate/cache decision
// against observed behaviour. --feedback-out emits the per-site feedback
// file bench binaries accept back via --heuristic=profile:FILE.
//
//   olden-analyze --sampled-stats FILE [--top N]
//
// Sampled-stats mode (see sample_report.hpp) reads a v5 stats JSON
// written by a --sample run and reports, per sampled run: the pinned
// window schedule and coverage, the cycle-bucket estimates with 95% CIs,
// and the largest event-count estimates. Exact runs in the document are
// counted and skipped.
//
// Exit codes: 0 success, 1 unreadable/unsupported trace, profile or stats
// document (including v1 logs and unknown schema versions, named
// explicitly), missing run labels, or a diff invariant violation, 2 usage
// error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "olden/analyze/diff.hpp"
#include "olden/analyze/profile_report.hpp"
#include "olden/analyze/report.hpp"
#include "olden/analyze/sample_report.hpp"
#include "olden/analyze/streaming.hpp"
#include "olden/profile/profile.hpp"
#include "olden/trace/observer.hpp"

namespace {

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: olden-analyze --trace-bin FILE [options]\n"
               "       olden-analyze --diff A B [pairing] [options]\n"
               "       olden-analyze --profile FILE [options]\n"
               "       olden-analyze --sampled-stats FILE [options]\n"
               "  --trace-bin FILE   binary trace to analyze\n"
               "  --diff A B         diff two traces of the same workload\n"
               "  --profile FILE     report on an interval-sampled profile "
               "JSON\n"
               "  --sampled-stats FILE\n"
               "                     report on a v5 stats JSON from a "
               "--sample run\n"
               "  --feedback-out FILE\n"
               "                     with --profile: write the per-site "
               "feedback\n"
               "                     file for --heuristic=profile:FILE\n"
               "  --run LABEL        diff the run labeled LABEL from each side\n"
               "  --run-a LABEL      A-side run label (with --run-b; A and B\n"
               "  --run-b LABEL      may then be the same file)\n"
               "  --stream           single-pass bounded-memory analysis "
               "(identical JSON)\n"
               "  --json             print the JSON report to stdout\n"
               "  --json-out FILE    also write the JSON report to FILE\n"
               "  --top N            keep the N hottest sites/pages/edges "
               "(default 10)\n"
               "  --version          print schema versions and exit\n"
               "  --help             this message\n");
}

void warn_truncated(const olden::analyze::TraceRun& run) {
  if (!run.truncated()) return;
  std::fprintf(stderr,
               "olden-analyze: warning: run '%s' dropped %llu events at "
               "the trace limit; analyses cover the retained prefix\n",
               run.label.c_str(),
               static_cast<unsigned long long>(run.events_dropped));
}

/// Streaming path: one pass per run, headers retained, events not.
bool analyze_streamed(const std::string& path, std::size_t top_n,
                      olden::analyze::TraceFile* file,
                      std::vector<olden::analyze::RunReport>* reports,
                      std::string* err) {
  olden::analyze::TraceStream ts;
  if (!ts.open(path, err)) return false;
  file->version = ts.version();
  std::vector<olden::trace::TraceEvent> batch;
  constexpr std::size_t kBatch = 1 << 16;
  olden::analyze::TraceRun run;
  while (ts.next_run(&run, err)) {
    warn_truncated(run);
    olden::analyze::StreamingRunAnalyzer an(run, top_n);
    while (ts.next_events(&batch, kBatch, err)) {
      for (const olden::trace::TraceEvent& e : batch) {
        if (!an.add(e)) break;
      }
      if (!an.error().empty()) break;
    }
    if (!err->empty()) return false;
    olden::analyze::RunReport rep;
    if (!an.finish(&rep, err)) {
      *err = path + ": run '" + run.label + "': " + *err;
      return false;
    }
    reports->push_back(std::move(rep));
    file->runs.push_back(run);  // header only; run.events is empty
  }
  return err->empty();
}

/// Build diff profiles for every run of one trace file, via either
/// pipeline. The two produce identical profiles (tests hold them to it).
bool collect_profiles(const std::string& path, bool stream,
                      std::vector<olden::analyze::DiffProfile>* out,
                      std::string* err) {
  if (!stream) {
    olden::analyze::TraceFile file;
    if (!olden::analyze::read_binary_trace(path, &file, err)) return false;
    for (const olden::analyze::TraceRun& run : file.runs) {
      warn_truncated(run);
      out->push_back(olden::analyze::diff_profile(run));
    }
    return true;
  }
  olden::analyze::TraceStream ts;
  if (!ts.open(path, err)) return false;
  std::vector<olden::trace::TraceEvent> batch;
  constexpr std::size_t kBatch = 1 << 16;
  olden::analyze::TraceRun run;
  while (ts.next_run(&run, err)) {
    warn_truncated(run);
    olden::analyze::StreamingRunAnalyzer an(run, /*top_n=*/0);
    an.enable_diff_profile();
    while (ts.next_events(&batch, kBatch, err)) {
      for (const olden::trace::TraceEvent& e : batch) {
        if (!an.add(e)) break;
      }
      if (!an.error().empty()) break;
    }
    if (!err->empty()) return false;
    olden::analyze::RunReport rep;
    olden::analyze::DiffProfile profile;
    if (!an.finish_diff(&rep, &profile, err)) {
      *err = path + ": run '" + run.label + "': " + *err;
      return false;
    }
    out->push_back(std::move(profile));
  }
  return err->empty();
}

const olden::analyze::DiffProfile* find_run(
    const std::vector<olden::analyze::DiffProfile>& profiles,
    const std::string& path, const std::string& label) {
  for (const olden::analyze::DiffProfile& p : profiles) {
    if (p.label == label) return &p;
  }
  std::fprintf(stderr, "olden-analyze: %s has no run labeled '%s'\n",
               path.c_str(), label.c_str());
  std::fprintf(stderr, "  runs present:\n");
  for (const olden::analyze::DiffProfile& p : profiles) {
    std::fprintf(stderr, "    %s\n", p.label.c_str());
  }
  return nullptr;
}

int run_diff(const std::string& path_a, const std::string& path_b,
             const std::string& run_label, const std::string& run_a,
             const std::string& run_b, bool stream, std::size_t top_n,
             bool json_stdout, const std::string& json_out) {
  std::vector<olden::analyze::DiffProfile> pa;
  std::vector<olden::analyze::DiffProfile> pb;
  std::string err;
  if (!collect_profiles(path_a, stream, &pa, &err)) {
    std::fprintf(stderr, "olden-analyze: %s\n", err.c_str());
    return 1;
  }
  if (!collect_profiles(path_b, stream, &pb, &err)) {
    std::fprintf(stderr, "olden-analyze: %s\n", err.c_str());
    return 1;
  }

  std::vector<std::pair<const olden::analyze::DiffProfile*,
                        const olden::analyze::DiffProfile*>>
      pairs;
  if (!run_a.empty() || !run_b.empty()) {
    const auto* a = find_run(pa, path_a, run_a);
    const auto* b = find_run(pb, path_b, run_b);
    if (a == nullptr || b == nullptr) return 1;
    pairs.emplace_back(a, b);
  } else if (!run_label.empty()) {
    const auto* a = find_run(pa, path_a, run_label);
    const auto* b = find_run(pb, path_b, run_label);
    if (a == nullptr || b == nullptr) return 1;
    pairs.emplace_back(a, b);
  } else {
    if (pa.size() != pb.size()) {
      std::fprintf(stderr,
                   "olden-analyze: cannot pair runs: %s has %zu, %s has %zu "
                   "(use --run / --run-a / --run-b to select)\n",
                   path_a.c_str(), pa.size(), path_b.c_str(), pb.size());
      return 1;
    }
    for (std::size_t i = 0; i < pa.size(); ++i) {
      pairs.emplace_back(&pa[i], &pb[i]);
    }
  }

  std::vector<olden::analyze::DiffReport> reports;
  reports.reserve(pairs.size());
  for (const auto& [a, b] : pairs) {
    olden::analyze::DiffReport rep;
    if (!olden::analyze::diff_runs(*a, *b, top_n, &rep, &err)) {
      std::fprintf(stderr, "olden-analyze: %s\n", err.c_str());
      return 1;
    }
    rep.a.path = path_a;
    rep.b.path = path_b;
    reports.push_back(std::move(rep));
  }

  if (json_stdout || !json_out.empty()) {
    const std::string json = olden::analyze::json_diff(reports);
    if (json_stdout) std::fputs(json.c_str(), stdout);
    if (!json_out.empty()) {
      std::FILE* f = std::fopen(json_out.c_str(), "wb");
      if (f == nullptr) {
        std::fprintf(stderr, "olden-analyze: cannot open %s for writing\n",
                     json_out.c_str());
        return 1;
      }
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
    }
  }
  if (!json_stdout) {
    for (std::size_t r = 0; r < reports.size(); ++r) {
      if (r != 0) std::printf("\n");
      std::fputs(olden::analyze::human_diff(reports[r]).c_str(), stdout);
    }
  }
  return 0;
}

int run_sampled_stats(const std::string& path, std::size_t top_n) {
  olden::analyze::SampledStatsDoc doc;
  std::string err;
  if (!olden::analyze::load_sampled_stats(path, &doc, &err)) {
    std::fprintf(stderr, "olden-analyze: %s: %s\n", path.c_str(),
                 err.c_str());
    return 1;
  }
  std::fputs(olden::analyze::sample_human_report(doc, top_n).c_str(),
             stdout);
  return 0;
}

int run_profile(const std::string& path, std::size_t top_n,
                const std::string& feedback_out) {
  olden::profile::ProfileDoc doc;
  std::string err;
  if (!olden::profile::load_profile_file(path, &doc, &err)) {
    std::fprintf(stderr, "olden-analyze: %s: %s\n", path.c_str(),
                 err.c_str());
    return 1;
  }
  std::fputs(olden::analyze::profile_human_report(doc, top_n).c_str(),
             stdout);
  if (!feedback_out.empty()) {
    const std::string fb = olden::analyze::feedback_from_profile(doc);
    std::FILE* f = std::fopen(feedback_out.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "olden-analyze: cannot open %s for writing\n",
                   feedback_out.c_str());
      return 1;
    }
    std::fwrite(fb.data(), 1, fb.size(), f);
    std::fclose(f);
    std::printf("wrote feedback: %s\n", feedback_out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string diff_a;
  std::string diff_b;
  std::string run_label;
  std::string run_a;
  std::string run_b;
  bool diff_mode = false;
  std::string json_out;
  bool json_stdout = false;
  bool stream = false;
  std::size_t top_n = 10;
  std::string profile_path;
  std::string feedback_out;
  std::string sampled_stats_path;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "olden-analyze: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(a, "--trace-bin") == 0) {
      trace_path = value("--trace-bin");
    } else if (std::strcmp(a, "--diff") == 0) {
      diff_mode = true;
      diff_a = value("--diff");
      diff_b = value("--diff");
    } else if (std::strcmp(a, "--profile") == 0) {
      profile_path = value("--profile");
    } else if (std::strcmp(a, "--sampled-stats") == 0) {
      sampled_stats_path = value("--sampled-stats");
    } else if (std::strcmp(a, "--feedback-out") == 0) {
      feedback_out = value("--feedback-out");
    } else if (std::strcmp(a, "--run") == 0) {
      run_label = value("--run");
    } else if (std::strcmp(a, "--run-a") == 0) {
      run_a = value("--run-a");
    } else if (std::strcmp(a, "--run-b") == 0) {
      run_b = value("--run-b");
    } else if (std::strcmp(a, "--stream") == 0) {
      stream = true;
    } else if (std::strcmp(a, "--json") == 0) {
      json_stdout = true;
    } else if (std::strcmp(a, "--json-out") == 0) {
      json_out = value("--json-out");
    } else if (std::strcmp(a, "--top") == 0) {
      top_n = static_cast<std::size_t>(std::strtoull(value("--top"), nullptr, 10));
    } else if (std::strcmp(a, "--version") == 0) {
      std::printf(
          "olden-analyze: analysis schema v%d, diff schema v%d, binary "
          "trace format v%d, profile schema v%d\n",
          olden::analyze::kAnalysisSchemaVersion,
          olden::analyze::kDiffSchemaVersion,
          olden::trace::kBinaryTraceVersion,
          olden::profile::kProfileSchemaVersion);
      return 0;
    } else if (std::strcmp(a, "--help") == 0) {
      usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "olden-analyze: unknown argument '%s'\n", a);
      usage(stderr);
      return 2;
    }
  }
  if (!sampled_stats_path.empty()) {
    if (diff_mode || !trace_path.empty() || !profile_path.empty()) {
      std::fprintf(stderr,
                   "olden-analyze: --sampled-stats is exclusive with "
                   "--trace-bin/--diff/--profile\n");
      return 2;
    }
    if (!run_label.empty() || !run_a.empty() || !run_b.empty() || stream ||
        json_stdout || !json_out.empty() || !feedback_out.empty()) {
      std::fprintf(stderr,
                   "olden-analyze: --sampled-stats supports only --top\n");
      return 2;
    }
    return run_sampled_stats(sampled_stats_path, top_n);
  }
  if (!profile_path.empty()) {
    if (diff_mode || !trace_path.empty()) {
      std::fprintf(
          stderr,
          "olden-analyze: --profile is exclusive with --trace-bin/--diff\n");
      return 2;
    }
    if (!run_label.empty() || !run_a.empty() || !run_b.empty() || stream ||
        json_stdout || !json_out.empty()) {
      std::fprintf(stderr,
                   "olden-analyze: --profile supports only --top and "
                   "--feedback-out\n");
      return 2;
    }
    return run_profile(profile_path, top_n, feedback_out);
  }
  if (!feedback_out.empty()) {
    std::fprintf(stderr, "olden-analyze: --feedback-out requires --profile\n");
    return 2;
  }
  if (diff_mode) {
    if (!trace_path.empty()) {
      std::fprintf(stderr,
                   "olden-analyze: --trace-bin and --diff are exclusive\n");
      return 2;
    }
    if (run_a.empty() != run_b.empty()) {
      std::fprintf(stderr,
                   "olden-analyze: --run-a and --run-b must be given "
                   "together\n");
      return 2;
    }
    if (!run_label.empty() && !run_a.empty()) {
      std::fprintf(stderr,
                   "olden-analyze: --run and --run-a/--run-b are "
                   "exclusive\n");
      return 2;
    }
    return run_diff(diff_a, diff_b, run_label, run_a, run_b, stream, top_n,
                    json_stdout, json_out);
  }
  if (!run_label.empty() || !run_a.empty() || !run_b.empty()) {
    std::fprintf(stderr,
                 "olden-analyze: --run/--run-a/--run-b require --diff\n");
    return 2;
  }
  if (trace_path.empty()) {
    std::fprintf(stderr, "olden-analyze: --trace-bin is required\n");
    usage(stderr);
    return 2;
  }

  olden::analyze::TraceFile file;
  std::vector<olden::analyze::RunReport> reports;
  std::string err;
  if (stream) {
    if (!analyze_streamed(trace_path, top_n, &file, &reports, &err)) {
      std::fprintf(stderr, "olden-analyze: %s\n", err.c_str());
      return 1;
    }
  } else {
    if (!olden::analyze::read_binary_trace(trace_path, &file, &err)) {
      std::fprintf(stderr, "olden-analyze: %s\n", err.c_str());
      return 1;
    }
    reports.reserve(file.runs.size());
    for (const olden::analyze::TraceRun& run : file.runs) {
      warn_truncated(run);
      reports.push_back(olden::analyze::analyze_run(run, top_n));
    }
  }

  if (json_stdout || !json_out.empty()) {
    const std::string json = olden::analyze::json_report(file, reports);
    if (json_stdout) std::fputs(json.c_str(), stdout);
    if (!json_out.empty()) {
      std::FILE* f = std::fopen(json_out.c_str(), "wb");
      if (f == nullptr) {
        std::fprintf(stderr, "olden-analyze: cannot open %s for writing\n",
                     json_out.c_str());
        return 1;
      }
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
    }
  }
  if (!json_stdout) {
    for (std::size_t r = 0; r < file.runs.size(); ++r) {
      if (r != 0) std::printf("\n");
      std::fputs(
          olden::analyze::human_report(file.runs[r], reports[r]).c_str(),
          stdout);
    }
  }
  return 0;
}
