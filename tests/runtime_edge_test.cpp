// Edge cases in the runtime: deep nesting, future/migration interleavings,
// multi-line object transfers, write-through visibility, and the
// accounting invariants DESIGN.md §7 promises.
#include <gtest/gtest.h>

#include <vector>

#include "olden/olden.hpp"

namespace olden {
namespace {

struct Big {
  // Spans three 64-byte lines; single accesses must fetch them all.
  std::int64_t words[20];
};

struct Node {
  std::int64_t val;
  GPtr<Node> next;
};

enum Site : SiteId { kCache0, kMig0, kNumSites };

std::vector<Mechanism> table() {
  return {Mechanism::kCache, Mechanism::kMigrate};
}

// --- multi-line cached transfers ----------------------------------------

Task<std::int64_t> big_roundtrip(Machine& m) {
  auto b = m.alloc<Big>(2);
  Big v{};
  for (int i = 0; i < 20; ++i) v.words[i] = 1000 + i;
  co_await wr_obj(b, v, kCache0);           // write-through, 3 lines
  const Big back = co_await rd_obj(b, kCache0);  // fetch 3 lines
  std::int64_t acc = 0;
  for (int i = 0; i < 20; ++i) acc += back.words[i] - v.words[i];
  co_return acc;
}

TEST(RuntimeEdge, MultiLineObjectTransfers) {
  Machine m({.nprocs = 4});
  m.set_site_mechanisms(table());
  EXPECT_EQ(run_program(m, big_roundtrip(m)), 0);
  // One logical read access, but the line-grain fetch moved 3 lines: the
  // miss counter is per access, pages per (proc, page).
  EXPECT_EQ(m.stats().cache_misses, 1u);
  EXPECT_GE(m.stats().pages_cached, 1u);
}

// --- write-through visibility --------------------------------------------

Task<std::int64_t> write_then_remote_read(Machine& m) {
  auto n = m.alloc<Node>(3);
  co_await wr(n, &Node::val, std::int64_t{41}, kCache0);  // write-through
  // Cached copy updated in place on a second write after a read:
  const auto v1 = co_await rd(n, &Node::val, kCache0);    // miss, caches
  co_await wr(n, &Node::val, v1 + 1, kCache0);            // updates both
  co_return co_await rd(n, &Node::val, kCache0);          // hit, current
}

TEST(RuntimeEdge, WriteThroughKeepsCachedCopyCurrent) {
  Machine m({.nprocs = 4});
  m.set_site_mechanisms(table());
  EXPECT_EQ(run_program(m, write_then_remote_read(m)), 42);
  EXPECT_EQ(m.stats().cache_misses, 1u);
  EXPECT_EQ(m.stats().cache_hits, 1u);
}

// --- deep call nesting across migrations ----------------------------------

Task<std::int64_t> bounce(Machine& m, const std::vector<GPtr<Node>>& ring,
                          std::size_t i) {
  if (i == ring.size()) co_return 0;
  // Each level migrates to a different processor, then returns through
  // the whole stub chain.
  const auto v = co_await rd(ring[i], &Node::val, kMig0);
  co_return v + co_await bounce(m, ring, i + 1);
}

Task<std::int64_t> bounce_root(Machine& m, int depth) {
  std::vector<GPtr<Node>> ring;
  for (int i = 0; i < depth; ++i) {
    auto n = m.alloc<Node>(static_cast<ProcId>(i % m.nprocs()));
    co_await wr(n, &Node::val, std::int64_t{1}, kCache0);
    ring.push_back(n);
  }
  const auto before = m.cur_proc();
  const auto sum = co_await bounce(m, ring, 0);
  EXPECT_EQ(m.cur_proc(), before);  // every stub unwound home
  co_return sum;
}

TEST(RuntimeEdge, DeepMigrationChainsUnwind) {
  Machine m({.nprocs = 8});
  m.set_site_mechanisms(table());
  const int depth = 500;
  EXPECT_EQ(run_program(m, bounce_root(m, depth)), depth);
  EXPECT_GT(m.stats().return_migrations, 0u);
}

// --- futures: many outstanding, touched in reverse ------------------------

Task<std::int64_t> leafwork(Machine& m, GPtr<Node> n) {
  co_return co_await rd(n, &Node::val, kMig0);  // migrates
}

Task<std::int64_t> reverse_touch(Machine& m, int count) {
  std::vector<GPtr<Node>> nodes;
  for (int i = 0; i < count; ++i) {
    auto n = m.alloc<Node>(static_cast<ProcId>(i % m.nprocs()));
    co_await wr(n, &Node::val, std::int64_t{i}, kCache0);
    nodes.push_back(n);
  }
  std::vector<Future<std::int64_t>> fs;
  for (int i = 0; i < count; ++i) {
    fs.push_back(co_await futurecall(leafwork(m, nodes[i])));
  }
  std::int64_t acc = 0;
  for (int i = count - 1; i >= 0; --i) {
    acc += co_await touch(fs[static_cast<std::size_t>(i)]);
  }
  co_return acc;
}

TEST(RuntimeEdge, OutstandingFuturesTouchedInAnyOrder) {
  Machine m({.nprocs = 8});
  m.set_site_mechanisms(table());
  const int n = 64;
  EXPECT_EQ(run_program(m, reverse_touch(m, n)), n * (n - 1) / 2);
  EXPECT_EQ(m.cells_live(), 0u);
  EXPECT_EQ(m.stats().futurecalls,
            m.stats().futures_inlined + m.stats().futures_stolen);
}

// --- nested futures: grandchildren write, grandparent reads ---------------

Task<std::int64_t> grandchild(Machine& m, GPtr<Node> n) {
  const auto v = co_await rd(n, &Node::val, kMig0);  // migrate + local write
  co_await wr(n, &Node::val, v * 2, kMig0);
  co_return 0;
}

Task<std::int64_t> child(Machine& m, GPtr<Node> a, GPtr<Node> b) {
  auto f1 = co_await futurecall(grandchild(m, a));
  auto f2 = co_await futurecall(grandchild(m, b));
  co_await touch(f1);
  co_await touch(f2);
  co_return 0;
}

Task<std::int64_t> grandparent(Machine& m) {
  auto a = m.alloc<Node>(2);
  auto b = m.alloc<Node>(3);
  co_await wr(a, &Node::val, std::int64_t{10}, kCache0);
  co_await wr(b, &Node::val, std::int64_t{20}, kCache0);
  // Prime this processor's cache with stale-to-be values.
  (void)co_await rd(a, &Node::val, kCache0);
  (void)co_await rd(b, &Node::val, kCache0);
  auto f = co_await futurecall(child(m, a, b));
  co_await touch(f);
  // The grandchildren's writes must be visible through our cache: the
  // written-set propagates through the nested touches (the coherence
  // hole a naive return-invalidation scheme would have).
  co_return co_await rd(a, &Node::val, kCache0) +
      co_await rd(b, &Node::val, kCache0);
}

class GrandchildVisibility
    : public ::testing::TestWithParam<Coherence> {};

TEST_P(GrandchildVisibility, WritesReachTheGrandparent) {
  Machine m({.nprocs = 6, .scheme = GetParam()});
  m.set_site_mechanisms(table());
  EXPECT_EQ(run_program(m, grandparent(m)), 60);
}

INSTANTIATE_TEST_SUITE_P(Schemes, GrandchildVisibility,
                         ::testing::Values(Coherence::kLocalKnowledge,
                                           Coherence::kEagerGlobal,
                                           Coherence::kBilateral));

// --- allocator exhaustion is a clean failure, not corruption --------------

TEST(RuntimeEdge, HeapSectionsAreBounded) {
  DistHeap h(1);
  // Fill most of the 64 MB section; the final over-size request dies via
  // OLDEN_REQUIRE (checked with EXPECT_DEATH to keep the harness alive).
  (void)h.allocate(0, kMaxLocalBytes - 4096, 8);
  EXPECT_DEATH((void)h.allocate(0, 8192, 8), "exhausted");
}

// --- machine accounting -----------------------------------------------------

Task<int> noop_root(Machine& m) {
  m.work(1);
  co_return 0;
}

TEST(RuntimeEdge, EmptyProgramTerminates) {
  Machine m({.nprocs = 32});
  m.set_site_mechanisms({});
  EXPECT_EQ(run_program(m, noop_root(m)), 0);
  EXPECT_EQ(m.makespan(), 1u);
  EXPECT_TRUE(m.root_done());
}

TEST(RuntimeEdge, ClocksAreMonotoneAcrossConfigs) {
  for (ProcId p : {1u, 3u, 32u}) {
    Machine m({.nprocs = p});
    m.set_site_mechanisms(table());
    run_program(m, reverse_touch(m, 32));
    Cycles max_clock = 0;
    for (ProcId q = 0; q < p; ++q) {
      max_clock = std::max(max_clock, m.proc_clock(q));
    }
    EXPECT_EQ(max_clock, m.makespan());
    EXPECT_GT(m.makespan(), 0u);
  }
}

}  // namespace
}  // namespace olden
