// A/B golden equivalence for the host-speed cache overhaul.
//
// Tuning::kOptimized (MRU fast path, move-to-front, frame recycling, flat
// coherence structures behind it) must be simulation-invisible next to
// Tuning::kReference, which walks hash chains physically in insertion
// order exactly like the pre-overhaul cache. The strongest statement we
// can make is byte equality: every benchmark in the suite, under every
// coherence scheme, produces a byte-identical binary trace and an
// identical stats JSON document whichever tuning is selected. Any
// divergence — one cycle, one counter, one event — fails here before it
// can reach a baseline diff.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "olden/bench/benchmark.hpp"
#include "olden/cache/software_cache.hpp"
#include "olden/fault/fault_spec.hpp"
#include "olden/support/rng.hpp"
#include "olden/trace/observer.hpp"

namespace olden::bench {
namespace {

/// Restores the process-wide tuning no matter how the test exits.
class TuningGuard {
 public:
  explicit TuningGuard(SoftwareCache::Tuning t) {
    SoftwareCache::set_default_tuning(t);
  }
  ~TuningGuard() {
    SoftwareCache::set_default_tuning(SoftwareCache::Tuning::kOptimized);
  }
};

struct Golden {
  std::string trace_bytes;
  std::string stats;
  std::uint64_t checksum = 0;
  std::uint64_t cycles = 0;
};

Golden run_with_tuning(const Benchmark& b, Coherence scheme,
                       SoftwareCache::Tuning tuning) {
  TuningGuard guard(tuning);
  trace::Observer obs;
  obs.set_trace_enabled(true);
  obs.begin_run(b.name() + "/equiv");
  BenchConfig cfg{.nprocs = 8, .scheme = scheme};
  cfg.tiny = true;
  cfg.observer = &obs;
  const BenchResult r = b.run(cfg);
  return {trace::binary_trace_bytes(obs), trace::stats_json(obs), r.checksum,
          r.total_cycles};
}

class CacheEquivalence
    : public ::testing::TestWithParam<std::tuple<std::string, Coherence>> {};

TEST_P(CacheEquivalence, OptimizedMatchesReferenceByteForByte) {
  const auto [name, scheme] = GetParam();
  const Benchmark* b = find_benchmark(name);
  ASSERT_NE(b, nullptr);

  const Golden ref =
      run_with_tuning(*b, scheme, SoftwareCache::Tuning::kReference);
  const Golden opt =
      run_with_tuning(*b, scheme, SoftwareCache::Tuning::kOptimized);

  EXPECT_EQ(opt.checksum, ref.checksum);
  EXPECT_EQ(opt.cycles, ref.cycles);
  EXPECT_EQ(opt.stats, ref.stats);
  // Compare sizes first so a mismatch prints something readable instead
  // of two megabytes of binary.
  ASSERT_EQ(opt.trace_bytes.size(), ref.trace_bytes.size());
  EXPECT_TRUE(opt.trace_bytes == ref.trace_bytes)
      << "binary traces differ for " << name;
}

std::vector<std::string> suite_names() {
  std::vector<std::string> names;
  for (const Benchmark* b : suite()) names.push_back(b->name());
  return names;
}

INSTANTIATE_TEST_SUITE_P(
    FullSuite, CacheEquivalence,
    ::testing::Combine(::testing::ValuesIn(suite_names()),
                       ::testing::Values(Coherence::kLocalKnowledge,
                                         Coherence::kEagerGlobal,
                                         Coherence::kBilateral)),
    [](const auto& info) {
      std::string s;
      for (char c : std::get<0>(info.param)) {
        // gtest names must be alphanumeric: "Barnes-Hut" -> "BarnesHut".
        if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
            (c >= '0' && c <= '9')) {
          s += c;
        }
      }
      switch (std::get<1>(info.param)) {
        case Coherence::kLocalKnowledge: s += "_local"; break;
        case Coherence::kEagerGlobal: s += "_global"; break;
        case Coherence::kBilateral: s += "_bilateral"; break;
      }
      return s;
    });

// The charged chain position must be identical under both tunings for
// arbitrary interleavings of inserts and lookups — move-to-front reorders
// the physical chain, so this fails if anyone ever charges from physical
// positions again. The bucket-population histogram is checked too: it
// feeds the Figure 1 claim and must not see host-side reordering.
TEST(CacheEquivalence, ChainAccountingMatchesPhysicalWalk) {
  SoftwareCache::set_default_tuning(SoftwareCache::Tuning::kOptimized);
  SoftwareCache opt;
  SoftwareCache::set_default_tuning(SoftwareCache::Tuning::kReference);
  SoftwareCache ref;
  SoftwareCache::set_default_tuning(SoftwareCache::Tuning::kOptimized);
  ASSERT_EQ(opt.tuning(), SoftwareCache::Tuning::kOptimized);
  ASSERT_EQ(ref.tuning(), SoftwareCache::Tuning::kReference);

  Rng rng(20260806);
  std::vector<std::uint32_t> pages;
  for (int step = 0; step < 20000; ++step) {
    const bool insert = pages.empty() || rng.next_below(4) == 0;
    if (insert) {
      // Clustered ids (runs per home processor) like a real heap, so
      // buckets actually grow chains.
      const std::uint32_t id =
          static_cast<std::uint32_t>(rng.next_below(40) << (kProcShift - 11)) +
          static_cast<std::uint32_t>(rng.next_below(96));
      bool co = false;
      bool cr = false;
      opt.ensure_page(id, co);
      ref.ensure_page(id, cr);
      ASSERT_EQ(co, cr) << "creation disagreement on page " << id;
      if (co) pages.push_back(id);
    } else {
      // Revisit a previously-seen page (exercises MRU + move-to-front) or
      // probe a likely-absent one (exercises miss accounting).
      const std::uint32_t id = rng.next_below(8) == 0
                                   ? static_cast<std::uint32_t>(
                                         1000000 + rng.next_below(100000))
                                   : pages[rng.next_below(pages.size())];
      const auto lo = opt.lookup(id);
      const auto lr = ref.lookup(id);
      ASSERT_EQ(lo.entry == nullptr, lr.entry == nullptr) << id;
      ASSERT_EQ(lo.chain_steps, lr.chain_steps)
          << "charged chain position diverged on page " << id;
    }
  }
  EXPECT_EQ(opt.chain_lengths(), ref.chain_lengths());
  EXPECT_EQ(opt.pages_created(), ref.pages_created());
  EXPECT_EQ(opt.pages_live(), ref.pages_live());
}

// --- adaptive scheme equivalence ------------------------------------------
//
// --scheme=adaptive with flips disabled (adapt.interval == 0) must be the
// seed scheme, byte for byte: no decision tick is ever scheduled, no
// sequence number is consumed, no counter is bumped, and the run record
// still reports the seed scheme's name. This is the contract that lets
// the adaptive machinery ride in every binary without perturbing the
// three static schemes.

Golden run_with_adapt(const Benchmark& b, Coherence scheme,
                      const AdaptiveConfig& adapt) {
  trace::Observer obs;
  obs.set_trace_enabled(true);
  obs.begin_run(b.name() + "/equiv");
  BenchConfig cfg{.nprocs = 8, .scheme = scheme};
  cfg.tiny = true;
  cfg.observer = &obs;
  cfg.adapt = adapt;
  const BenchResult r = b.run(cfg);
  return {trace::binary_trace_bytes(obs), trace::stats_json(obs), r.checksum,
          r.total_cycles};
}

TEST(AdaptiveEquivalence, IntervalZeroIsByteIdenticalToSeedScheme) {
  // Non-default hysteresis / min_samples prove the gate is the interval
  // alone — the other knobs must be inert while it is zero.
  AdaptiveConfig off;
  off.interval = 0;
  off.hysteresis = 7;
  off.min_samples = 1;
  for (const Benchmark* b : suite()) {
    const Golden plain = run_with_adapt(*b, Coherence::kEagerGlobal, {});
    const Golden adapt = run_with_adapt(*b, Coherence::kEagerGlobal, off);
    EXPECT_EQ(adapt.checksum, plain.checksum) << b->name();
    EXPECT_EQ(adapt.cycles, plain.cycles) << b->name();
    EXPECT_EQ(adapt.stats, plain.stats) << b->name();
    ASSERT_EQ(adapt.trace_bytes.size(), plain.trace_bytes.size()) << b->name();
    EXPECT_TRUE(adapt.trace_bytes == plain.trace_bytes)
        << "binary traces differ for " << b->name();
    // The run record must carry the seed scheme's name, not "adaptive".
    EXPECT_EQ(adapt.stats.find("\"adaptive\""), std::string::npos)
        << b->name();
  }
}

TEST(AdaptiveEquivalence, IntervalZeroNeedsNoParticularBaseScheme) {
  // The eager-global requirement only bites once ticks are scheduled;
  // a disabled adaptive config must not constrain the static schemes.
  const Benchmark* b = find_benchmark("TreeAdd");
  ASSERT_NE(b, nullptr);
  for (const Coherence scheme :
       {Coherence::kLocalKnowledge, Coherence::kBilateral}) {
    const Golden plain = run_with_adapt(*b, scheme, {});
    AdaptiveConfig off;
    off.interval = 0;
    off.hysteresis = 9;
    const Golden adapt = run_with_adapt(*b, scheme, off);
    EXPECT_EQ(adapt.stats, plain.stats);
    EXPECT_TRUE(adapt.trace_bytes == plain.trace_bytes);
  }
}

TEST(AdaptiveEquivalence, AdaptiveRunsAreByteIdenticalAcrossRepeats) {
  // Determinism with flips enabled: the decision ticks live on the same
  // (time, seq) heap as everything else, so repeats reproduce the same
  // flips at the same instants, byte for byte.
  const Benchmark* b = find_benchmark("EM3D");
  ASSERT_NE(b, nullptr);
  AdaptiveConfig storm;
  storm.interval = 256;
  storm.hysteresis = 1;
  storm.min_samples = 1;
  const Golden a = run_with_adapt(*b, Coherence::kEagerGlobal, storm);
  const Golden c = run_with_adapt(*b, Coherence::kEagerGlobal, storm);
  EXPECT_EQ(a.stats, c.stats);
  ASSERT_EQ(a.trace_bytes.size(), c.trace_bytes.size());
  EXPECT_TRUE(a.trace_bytes == c.trace_bytes);
}

TEST(AdaptiveEquivalence, FlipStormKeepsChecksumsInvariant) {
  // The soak: a tiny interval with hysteresis 1 flips sites as fast as
  // the decision table allows, on a lossy wire, across 8 fault seeds x 2
  // benchmarks. Whatever the flip storm does to performance, it must
  // never change what the program computes.
  fault::FaultSpec spec;
  std::string err;
  ASSERT_TRUE(
      fault::parse_fault_spec("drop=0.05,dup=0.02,delay=0.1:200", &spec, &err))
      << err;
  std::uint64_t total_flips = 0;
  for (const char* name : {"TreeAdd", "EM3D"}) {
    const Benchmark* b = find_benchmark(name);
    ASSERT_NE(b, nullptr);
    BenchConfig cfg{.nprocs = 8, .scheme = Coherence::kEagerGlobal};
    cfg.tiny = true;
    cfg.adapt.interval = 256;
    cfg.adapt.hysteresis = 1;
    cfg.adapt.min_samples = 1;
    const std::uint64_t want = b->reference_checksum(cfg);
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      cfg.faults = &spec;
      cfg.fault_seed = seed;
      const BenchResult r = b->run(cfg);
      EXPECT_EQ(r.checksum, want) << name << " seed " << seed;
      EXPECT_EQ(r.stats.flips_to_cache + r.stats.flips_to_migrate,
                r.stats.scheme_flips)
          << name << " seed " << seed;
      total_flips += r.stats.scheme_flips;
    }
  }
  // The storm must actually storm: if no site ever flips under these
  // settings the soak is vacuously green and the knobs need retuning.
  EXPECT_GT(total_flips, 0u);
}

}  // namespace
}  // namespace olden::bench
