// A/B golden equivalence for the host-speed cache overhaul.
//
// Tuning::kOptimized (MRU fast path, move-to-front, frame recycling, flat
// coherence structures behind it) must be simulation-invisible next to
// Tuning::kReference, which walks hash chains physically in insertion
// order exactly like the pre-overhaul cache. The strongest statement we
// can make is byte equality: every benchmark in the suite, under every
// coherence scheme, produces a byte-identical binary trace and an
// identical stats JSON document whichever tuning is selected. Any
// divergence — one cycle, one counter, one event — fails here before it
// can reach a baseline diff.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "olden/bench/benchmark.hpp"
#include "olden/cache/software_cache.hpp"
#include "olden/support/rng.hpp"
#include "olden/trace/observer.hpp"

namespace olden::bench {
namespace {

/// Restores the process-wide tuning no matter how the test exits.
class TuningGuard {
 public:
  explicit TuningGuard(SoftwareCache::Tuning t) {
    SoftwareCache::set_default_tuning(t);
  }
  ~TuningGuard() {
    SoftwareCache::set_default_tuning(SoftwareCache::Tuning::kOptimized);
  }
};

struct Golden {
  std::string trace_bytes;
  std::string stats;
  std::uint64_t checksum = 0;
  std::uint64_t cycles = 0;
};

Golden run_with_tuning(const Benchmark& b, Coherence scheme,
                       SoftwareCache::Tuning tuning) {
  TuningGuard guard(tuning);
  trace::Observer obs;
  obs.set_trace_enabled(true);
  obs.begin_run(b.name() + "/equiv");
  BenchConfig cfg{.nprocs = 8, .scheme = scheme};
  cfg.tiny = true;
  cfg.observer = &obs;
  const BenchResult r = b.run(cfg);
  return {trace::binary_trace_bytes(obs), trace::stats_json(obs), r.checksum,
          r.total_cycles};
}

class CacheEquivalence
    : public ::testing::TestWithParam<std::tuple<std::string, Coherence>> {};

TEST_P(CacheEquivalence, OptimizedMatchesReferenceByteForByte) {
  const auto [name, scheme] = GetParam();
  const Benchmark* b = find_benchmark(name);
  ASSERT_NE(b, nullptr);

  const Golden ref =
      run_with_tuning(*b, scheme, SoftwareCache::Tuning::kReference);
  const Golden opt =
      run_with_tuning(*b, scheme, SoftwareCache::Tuning::kOptimized);

  EXPECT_EQ(opt.checksum, ref.checksum);
  EXPECT_EQ(opt.cycles, ref.cycles);
  EXPECT_EQ(opt.stats, ref.stats);
  // Compare sizes first so a mismatch prints something readable instead
  // of two megabytes of binary.
  ASSERT_EQ(opt.trace_bytes.size(), ref.trace_bytes.size());
  EXPECT_TRUE(opt.trace_bytes == ref.trace_bytes)
      << "binary traces differ for " << name;
}

std::vector<std::string> suite_names() {
  std::vector<std::string> names;
  for (const Benchmark* b : suite()) names.push_back(b->name());
  return names;
}

INSTANTIATE_TEST_SUITE_P(
    FullSuite, CacheEquivalence,
    ::testing::Combine(::testing::ValuesIn(suite_names()),
                       ::testing::Values(Coherence::kLocalKnowledge,
                                         Coherence::kEagerGlobal,
                                         Coherence::kBilateral)),
    [](const auto& info) {
      std::string s;
      for (char c : std::get<0>(info.param)) {
        // gtest names must be alphanumeric: "Barnes-Hut" -> "BarnesHut".
        if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
            (c >= '0' && c <= '9')) {
          s += c;
        }
      }
      switch (std::get<1>(info.param)) {
        case Coherence::kLocalKnowledge: s += "_local"; break;
        case Coherence::kEagerGlobal: s += "_global"; break;
        case Coherence::kBilateral: s += "_bilateral"; break;
      }
      return s;
    });

// The charged chain position must be identical under both tunings for
// arbitrary interleavings of inserts and lookups — move-to-front reorders
// the physical chain, so this fails if anyone ever charges from physical
// positions again. The bucket-population histogram is checked too: it
// feeds the Figure 1 claim and must not see host-side reordering.
TEST(CacheEquivalence, ChainAccountingMatchesPhysicalWalk) {
  SoftwareCache::set_default_tuning(SoftwareCache::Tuning::kOptimized);
  SoftwareCache opt;
  SoftwareCache::set_default_tuning(SoftwareCache::Tuning::kReference);
  SoftwareCache ref;
  SoftwareCache::set_default_tuning(SoftwareCache::Tuning::kOptimized);
  ASSERT_EQ(opt.tuning(), SoftwareCache::Tuning::kOptimized);
  ASSERT_EQ(ref.tuning(), SoftwareCache::Tuning::kReference);

  Rng rng(20260806);
  std::vector<std::uint32_t> pages;
  for (int step = 0; step < 20000; ++step) {
    const bool insert = pages.empty() || rng.next_below(4) == 0;
    if (insert) {
      // Clustered ids (runs per home processor) like a real heap, so
      // buckets actually grow chains.
      const std::uint32_t id =
          static_cast<std::uint32_t>(rng.next_below(40) << (kProcShift - 11)) +
          static_cast<std::uint32_t>(rng.next_below(96));
      bool co = false;
      bool cr = false;
      opt.ensure_page(id, co);
      ref.ensure_page(id, cr);
      ASSERT_EQ(co, cr) << "creation disagreement on page " << id;
      if (co) pages.push_back(id);
    } else {
      // Revisit a previously-seen page (exercises MRU + move-to-front) or
      // probe a likely-absent one (exercises miss accounting).
      const std::uint32_t id = rng.next_below(8) == 0
                                   ? static_cast<std::uint32_t>(
                                         1000000 + rng.next_below(100000))
                                   : pages[rng.next_below(pages.size())];
      const auto lo = opt.lookup(id);
      const auto lr = ref.lookup(id);
      ASSERT_EQ(lo.entry == nullptr, lr.entry == nullptr) << id;
      ASSERT_EQ(lo.chain_steps, lr.chain_steps)
          << "charged chain position diverged on page " << id;
    }
  }
  EXPECT_EQ(opt.chain_lengths(), ref.chain_lengths());
  EXPECT_EQ(opt.pages_created(), ref.pages_created());
  EXPECT_EQ(opt.pages_live(), ref.pages_live());
}

}  // namespace
}  // namespace olden::bench
