// The mechanism-selection heuristic, pinned to the paper's own examples:
//  * Figure 3 — iterative loop with induction variables s and t,
//    non-induction u;
//  * Figure 4 — TreeAdd: recursion combine 90/70 -> 97, migrate;
//  * Figure 5 — WalkAndTraverse (bottleneck -> cache) vs TraverseAndWalk
//    (no bottleneck -> migrate);
//  * §4 list example — blocked layout migrates, cyclic layout caches;
//  * §4.3 defaults — list traversals cache, tree traversals migrate, tree
//    searches cache.
#include <gtest/gtest.h>

#include "olden/compiler/analysis.hpp"

namespace olden::ir {
namespace {

FieldRef F(std::string s, std::string f) { return {std::move(s), std::move(f)}; }

// --- Figure 3: a simple loop with induction variables --------------------
//
//   while (s) { s = s->left; t = t->right->left; u = s->right; }
//   (affinity of left 90, right 70)

Program figure3() {
  Program p;
  p.structs = {{"tree", {{"left", 0.90}, {"right", 0.70}}}};
  Procedure loop;
  loop.name = "main";
  loop.params = {"s", "t", "u"};
  While w;
  w.loop_id = 0;
  w.body.push_back(
      assign("t", "t", {F("tree", "right"), F("tree", "left")}, SiteId{1}));
  w.body.push_back(assign("u", "s", {F("tree", "right")}, SiteId{2}));
  w.body.push_back(assign("s", "s", {F("tree", "left")}, SiteId{0}));
  loop.body.push_back(w);
  p.procs.push_back(std::move(loop));
  return p;
}

TEST(Heuristic, Figure3UpdateMatrix) {
  const Selection sel = analyze(figure3(), 3);
  const LoopDecision* l = sel.loop(0);
  ASSERT_NE(l, nullptr);
  // s updated by itself along left: (s,s) = 90.
  EXPECT_DOUBLE_EQ(l->matrix.get("s", "s").value(), 0.90);
  // t updated by itself along right.left: 0.70 * 0.90 = 63.
  EXPECT_NEAR(l->matrix.get("t", "t").value(), 0.63, 1e-12);
  // u updated by s along right: (u,s) = 70 — off-diagonal, not induction.
  EXPECT_DOUBLE_EQ(l->matrix.get("u", "s").value(), 0.70);
  EXPECT_FALSE(l->matrix.get("u", "u").has_value());
}

TEST(Heuristic, Figure3SelectsStrongestInduction) {
  const Selection sel = analyze(figure3(), 3);
  const LoopDecision* l = sel.loop(0);
  ASSERT_NE(l, nullptr);
  EXPECT_EQ(l->selected, "s");  // 90 beats 63
  // 90 meets the 90% threshold: migrate s, cache everything else.
  EXPECT_EQ(l->selected_mech, Mechanism::kMigrate);
  EXPECT_EQ(sel.site(0), Mechanism::kMigrate);  // s->left deref
  EXPECT_EQ(sel.site(1), Mechanism::kCache);    // t->right->left deref
}

// Site 2 dereferences s, the selected variable, inside the same loop — the
// paper migrates all dereferences of the selected variable, so check that.
TEST(Heuristic, SelectedVariableDerefsAllMigrate) {
  const Selection sel = analyze(figure3(), 3);
  EXPECT_EQ(sel.site(2), Mechanism::kMigrate);
}

// --- Figure 4: TreeAdd -----------------------------------------------------

Program treeadd(std::optional<double> left_aff, std::optional<double> right_aff,
                bool parallel) {
  Program p;
  p.structs = {{"tree", {{"left", left_aff}, {"right", right_aff}}}};
  Procedure t;
  t.name = "TreeAdd";
  t.params = {"t"};
  t.rec_loop_id = 0;
  If branch;
  Call cl;
  cl.callee = "TreeAdd";
  cl.args = {{"t", {F("tree", "left")}}};
  cl.future = parallel;
  Call cr;
  cr.callee = "TreeAdd";
  cr.args = {{"t", {F("tree", "right")}}};
  branch.else_branch.push_back(cl);
  branch.else_branch.push_back(cr);
  branch.else_branch.push_back(deref("t", SiteId{0}));  // t->val
  t.body.push_back(branch);
  p.procs.push_back(std::move(t));
  return p;
}

TEST(Heuristic, Figure4RecursionCombine) {
  // Affinities 90/70: both remote with probability .1*.3 = 3%, so the
  // update affinity is 97% — the paper's exact number.
  const Selection sel = analyze(treeadd(0.90, 0.70, false), 1);
  const LoopDecision* l = sel.loop(0);
  ASSERT_NE(l, nullptr);
  EXPECT_TRUE(l->is_recursion);
  EXPECT_NEAR(l->matrix.get("t", "t").value(), 0.97, 1e-12);
  EXPECT_EQ(l->selected_mech, Mechanism::kMigrate);  // 97 >= 90
  EXPECT_EQ(sel.site(0), Mechanism::kMigrate);
}

TEST(Heuristic, DefaultAffinityTreeTraversalMigrates) {
  // Defaults (70/70): combine = 1 - .3*.3 = 91% >= 90 — by design, tree
  // traversals migrate with no hints at all (§4.3).
  const Selection sel = analyze(treeadd(std::nullopt, std::nullopt, false), 1);
  const LoopDecision* l = sel.loop(0);
  ASSERT_NE(l, nullptr);
  EXPECT_NEAR(l->matrix.get("t", "t").value(), 0.91, 1e-12);
  EXPECT_EQ(l->selected_mech, Mechanism::kMigrate);
}

// A tree *search* follows only one child per call: a single update at the
// default 70% stays below the threshold, so searches cache (§4.3).
TEST(Heuristic, TreeSearchCaches) {
  Program p;
  p.structs = {{"tree", {{"left", std::nullopt}, {"right", std::nullopt}}}};
  Procedure s;
  s.name = "Search";
  s.params = {"t"};
  s.rec_loop_id = 0;
  If branch;
  Call go_left;
  go_left.callee = "Search";
  go_left.args = {{"t", {F("tree", "left")}}};
  branch.then_branch.push_back(go_left);
  Call go_right;
  go_right.callee = "Search";
  go_right.args = {{"t", {F("tree", "right")}}};
  branch.else_branch.push_back(go_right);
  branch.else_branch.push_back(deref("t", SiteId{0}));
  s.body.push_back(branch);
  p.procs.push_back(std::move(s));

  const Selection sel = analyze(p, 1);
  const LoopDecision* l = sel.loop(0);
  ASSERT_NE(l, nullptr);
  // Each invocation takes exactly one of the two calls; the rec-binding
  // combine treats both as executed only when they are — here the combine
  // still merges both call sites, but a search annotated with the actual
  // branch structure... the paper's design point is the default: a 70%
  // single-path update caches. Both updates combine to 91 only when both
  // execute; a search's calls are in *different* branches, so at most one
  // executes. We model this by the affinity staying at the single-call
  // strength.
  EXPECT_LT(l->matrix.get("t", "t").value_or(0.0), 0.90);
  EXPECT_EQ(l->selected_mech, Mechanism::kCache);
  EXPECT_EQ(sel.site(0), Mechanism::kCache);
}

// List traversal at the default affinity: a single 70% update — cache.
TEST(Heuristic, ListTraversalCachesByDefault) {
  Program p;
  p.structs = {{"list", {{"next", std::nullopt}}}};
  Procedure w;
  w.name = "Walk";
  w.params = {"l"};
  While loop;
  loop.loop_id = 0;
  loop.body.push_back(deref("l", SiteId{0}));
  loop.body.push_back(assign("l", "l", {F("list", "next")}, SiteId{1}));
  w.body.push_back(loop);
  p.procs.push_back(std::move(w));

  const Selection sel = analyze(p, 2);
  EXPECT_EQ(sel.loop(0)->selected_mech, Mechanism::kCache);
  EXPECT_EQ(sel.site(0), Mechanism::kCache);
  EXPECT_EQ(sel.site(1), Mechanism::kCache);
}

// §4 / Figure 2: the same list code with layout-derived affinities. A
// blocked distribution of N items over P processors has next-affinity
// 1 - (P-1)/(N-1) ~ 1: migrate. A cyclic distribution has affinity 0: cache.
TEST(Heuristic, Figure2BlockedMigratesCyclicCaches) {
  auto walk_with_affinity = [](double aff) {
    Program p;
    p.structs = {{"list", {{"next", aff}}}};
    Procedure w;
    w.name = "Walk";
    w.params = {"l"};
    While loop;
    loop.loop_id = 0;
    loop.body.push_back(assign("l", "l", {F("list", "next")}, SiteId{0}));
    w.body.push_back(loop);
    p.procs.push_back(std::move(w));
    return analyze(p, 1);
  };
  const double blocked = 1.0 - 31.0 / 1023.0;  // P=32, N=1024
  EXPECT_EQ(walk_with_affinity(blocked).site(0), Mechanism::kMigrate);
  EXPECT_EQ(walk_with_affinity(0.0).site(0), Mechanism::kCache);
}

// A parallelizable loop below the threshold still migrates, because only
// migration lets the runtime generate new threads (§4.3).
TEST(Heuristic, ParallelizableLoopMigratesBelowThreshold) {
  const Selection sel = analyze(treeadd(0.5, 0.5, /*parallel=*/true), 1);
  const LoopDecision* l = sel.loop(0);
  ASSERT_NE(l, nullptr);
  EXPECT_LT(l->selected_affinity, 0.90);
  EXPECT_TRUE(l->parallelizable);
  EXPECT_EQ(l->selected_mech, Mechanism::kMigrate);
}

// --- Figure 5: bottleneck analysis -----------------------------------------

// WalkAndTraverse: for each body b in l, in parallel, Traverse(t) — every
// iteration passes the *same* tree root, so migrating the traversal would
// serialize all threads on the root's owner.
Program walk_and_traverse() {
  Program p;
  p.structs = {{"list", {{"next", std::nullopt}}},
               {"tree", {{"left", std::nullopt}, {"right", std::nullopt}}}};

  Procedure trav;
  trav.name = "Traverse";
  trav.params = {"t"};
  trav.rec_loop_id = 1;
  If br;
  Call cl;
  cl.callee = "Traverse";
  cl.args = {{"t", {F("tree", "left")}}};
  Call cr;
  cr.callee = "Traverse";
  cr.args = {{"t", {F("tree", "right")}}};
  br.else_branch.push_back(cl);
  br.else_branch.push_back(cr);
  br.else_branch.push_back(deref("t", SiteId{0}));
  trav.body.push_back(br);
  p.procs.push_back(std::move(trav));

  Procedure wat;
  wat.name = "WalkAndTraverse";
  wat.params = {"l", "t"};
  While loop;
  loop.loop_id = 0;
  Call visit;
  visit.callee = "Traverse";
  visit.args = {{"t", {}}};
  visit.future = true;  // do in parallel
  loop.body.push_back(visit);
  loop.body.push_back(assign("l", "l", {F("list", "next")}, SiteId{1}));
  wat.body.push_back(loop);
  p.procs.push_back(std::move(wat));
  return p;
}

TEST(Heuristic, Figure5WalkAndTraverseBottleneck) {
  const Selection sel = analyze(walk_and_traverse(), 2);
  const LoopDecision* rec = sel.loop(1);
  ASSERT_NE(rec, nullptr);
  // Pass 1 would migrate the tree traversal (91%), but t is not updated in
  // the parallel parent loop: bottleneck — force caching.
  EXPECT_TRUE(rec->bottleneck_forced);
  EXPECT_EQ(rec->selected_mech, Mechanism::kCache);
  EXPECT_EQ(sel.site(0), Mechanism::kCache);
}

// TraverseAndWalk: for each tree node, in parallel, walk the list stored
// at that node — t->list differs every iteration: no bottleneck.
Program traverse_and_walk() {
  Program p;
  p.structs = {{"tree",
                {{"left", std::nullopt},
                 {"right", std::nullopt},
                 {"list", 0.95}}},
               {"list", {{"next", 0.95}}}};

  Procedure walk;
  walk.name = "Walk";
  walk.params = {"l"};
  While loop;
  loop.loop_id = 2;
  loop.body.push_back(deref("l", SiteId{0}));
  loop.body.push_back(assign("l", "l", {F("list", "next")}, SiteId{1}));
  walk.body.push_back(loop);
  p.procs.push_back(std::move(walk));

  Procedure taw;
  taw.name = "TraverseAndWalk";
  taw.params = {"t"};
  taw.rec_loop_id = 3;
  If br;
  Call cl;
  cl.callee = "TraverseAndWalk";
  cl.args = {{"t", {F("tree", "left")}}};
  cl.future = true;
  Call cr;
  cr.callee = "TraverseAndWalk";
  cr.args = {{"t", {F("tree", "right")}}};
  cr.future = true;
  Call w;
  w.callee = "Walk";
  w.args = {{"t", {F("tree", "list")}}};
  br.else_branch.push_back(cl);
  br.else_branch.push_back(cr);
  br.else_branch.push_back(w);
  taw.body.push_back(br);
  p.procs.push_back(std::move(taw));
  return p;
}

TEST(Heuristic, Figure5TraverseAndWalkNoBottleneck) {
  const Selection sel = analyze(traverse_and_walk(), 2);
  const LoopDecision* rec = sel.loop(3);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->selected_mech, Mechanism::kMigrate);  // tree: 91 + parallel
  const LoopDecision* inner = sel.loop(2);
  ASSERT_NE(inner, nullptr);
  // The walk's induction variable originates from t, which *is* updated in
  // the parent (recursion) loop — no bottleneck, so pass 1's decision for
  // the 95%-affinity list stands: migrate.
  EXPECT_FALSE(inner->bottleneck_forced);
  EXPECT_EQ(inner->selected_mech, Mechanism::kMigrate);
}

// A loop with no induction variable inherits the parent's selection and
// migrates it (§4.3).
TEST(Heuristic, NoInductionVariableInheritsParent) {
  Program p;
  p.structs = {{"tree", {{"left", 0.95}, {"right", 0.95}}}};
  Procedure m;
  m.name = "main";
  m.params = {"t", "u"};
  While outer;
  outer.loop_id = 0;
  outer.body.push_back(assign("t", "t", {F("tree", "left")}, SiteId{0}));
  While inner;
  inner.loop_id = 1;
  // u jumps around unpredictably: assigned from a path off t each inner
  // iteration — (u,t) entries only, no diagonal.
  inner.body.push_back(assign("u", "t", {F("tree", "right")}, SiteId{1}));
  inner.body.push_back(deref("t", SiteId{2}));
  outer.body.push_back(inner);
  m.body.push_back(outer);
  p.procs.push_back(std::move(m));

  const Selection sel = analyze(p, 3);
  const LoopDecision* inner_d = sel.loop(1);
  ASSERT_NE(inner_d, nullptr);
  EXPECT_TRUE(inner_d->inherited);
  EXPECT_EQ(inner_d->selected, "t");
  EXPECT_EQ(inner_d->selected_mech, Mechanism::kMigrate);
  // Dereferences of t inside the inner loop follow the inherited choice —
  // including the one on the right-hand side of u's assignment.
  EXPECT_EQ(sel.site(2), Mechanism::kMigrate);
  EXPECT_EQ(sel.site(1), Mechanism::kMigrate);
}

// Join rule: update present in only one branch is omitted.
TEST(Heuristic, JoinOmitsOneSidedUpdates) {
  Program p;
  p.structs = {{"list", {{"next", 0.95}}}};
  Procedure m;
  m.name = "main";
  m.params = {"l"};
  While loop;
  loop.loop_id = 0;
  If br;
  br.then_branch.push_back(assign("l", "l", {F("list", "next")}, SiteId{0}));
  // else: l untouched
  loop.body.push_back(br);
  m.body.push_back(loop);
  p.procs.push_back(std::move(m));

  const Selection sel = analyze(p, 1);
  const LoopDecision* l = sel.loop(0);
  ASSERT_NE(l, nullptr);
  EXPECT_FALSE(l->matrix.get("l", "l").has_value());
  EXPECT_TRUE(l->selected.empty());
}

// Join rule: update present in both branches averages the affinities.
TEST(Heuristic, JoinAveragesTwoSidedUpdates) {
  Program p;
  p.structs = {{"tree", {{"left", 0.90}, {"right", 0.70}}}};
  Procedure m;
  m.name = "main";
  m.params = {"t"};
  While loop;
  loop.loop_id = 0;
  If br;
  br.then_branch.push_back(assign("t", "t", {F("tree", "left")}, SiteId{0}));
  br.else_branch.push_back(assign("t", "t", {F("tree", "right")}, SiteId{1}));
  loop.body.push_back(br);
  m.body.push_back(loop);
  p.procs.push_back(std::move(m));

  const Selection sel = analyze(p, 2);
  const LoopDecision* l = sel.loop(0);
  ASSERT_NE(l, nullptr);
  EXPECT_NEAR(l->matrix.get("t", "t").value(), 0.80, 1e-12);  // (90+70)/2
}

// --- RuntimeSelection: the adaptive scheme's mutable view ------------------

TEST(RuntimeSelection, ReplaysFlipsOverTheStaticPlan) {
  const Selection sel = analyze(figure3(), 3);
  // Static plan for Figure 3: s (site 0) migrates, t and u cache.
  ASSERT_EQ(sel.site(0), Mechanism::kMigrate);
  ASSERT_EQ(sel.site(1), Mechanism::kCache);

  RuntimeSelection rt(sel);
  EXPECT_EQ(rt.current(0), Mechanism::kMigrate);
  EXPECT_EQ(rt.current(1), Mechanism::kCache);
  EXPECT_TRUE(rt.diverged().empty());
  EXPECT_TRUE(rt.flips().empty());

  // Replay the shape of a Machine::scheme_flip_log(): site 0 demotes to
  // caching mid-run, site 1 promotes to migration, then site 1 flips back.
  rt.flip(0, Mechanism::kCache, 5000);
  rt.flip(1, Mechanism::kMigrate, 9000);
  EXPECT_EQ(rt.current(0), Mechanism::kCache);
  EXPECT_EQ(rt.current(1), Mechanism::kMigrate);
  EXPECT_EQ(rt.initial(0), Mechanism::kMigrate);  // static plan untouched
  EXPECT_EQ((std::vector<SiteId>{0, 1}), rt.diverged());

  rt.flip(1, Mechanism::kCache, 12000);
  EXPECT_EQ((std::vector<SiteId>{0}), rt.diverged());
  ASSERT_EQ(rt.flips().size(), 3u);
  EXPECT_EQ(rt.flips()[2].time, 12000u);
  EXPECT_EQ(rt.flips()[2].site, 1u);

  // A flip on a site the static plan never mentioned grows the view; the
  // gap fills with the default (cache), matching Selection::site.
  rt.flip(7, Mechanism::kMigrate, 15000);
  EXPECT_EQ(rt.current(7), Mechanism::kMigrate);
  EXPECT_EQ(rt.current(5), Mechanism::kCache);
  EXPECT_EQ(rt.initial(7), Mechanism::kCache);
}

}  // namespace
}  // namespace olden::ir
