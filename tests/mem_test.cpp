// Unit and property tests for the global address encoding (§2) and the
// distributed heap.
#include <gtest/gtest.h>

#include <cstring>

#include "olden/cache/software_cache.hpp"
#include "olden/mem/global_addr.hpp"
#include "olden/mem/heap.hpp"
#include "olden/support/rng.hpp"

namespace olden {
namespace {

TEST(GlobalAddr, RoundTripsProcAndLocal) {
  for (ProcId p : {0u, 1u, 31u, 63u}) {
    for (std::uint32_t l : {0u, 64u, kPageBytes, kMaxLocalBytes - 4}) {
      const GlobalAddr a = GlobalAddr::make(p, l);
      EXPECT_EQ(a.proc(), p);
      EXPECT_EQ(a.local(), l);
    }
  }
}

TEST(GlobalAddr, NullIsZeroAndOnlyZero) {
  EXPECT_TRUE(GlobalAddr{}.is_null());
  EXPECT_FALSE(GlobalAddr::make(0, 64).is_null());
  EXPECT_FALSE(GlobalAddr::make(1, 0).is_null());  // proc 1, offset 0
}

TEST(GlobalAddr, PageAndLineGeometry) {
  const GlobalAddr a = GlobalAddr::make(2, 3 * kPageBytes + 5 * kLineBytes + 7);
  EXPECT_EQ(a.offset_in_page(), 5 * kLineBytes + 7);
  EXPECT_EQ(a.line_in_page(), 5u);
  EXPECT_EQ(a.page_base().offset_in_page(), 0u);
  EXPECT_EQ(a.page_base().page_id(), a.page_id());
  // Page ids are globally unique: same local offset, different proc.
  EXPECT_NE(a.page_id(), GlobalAddr::make(3, 3 * kPageBytes).page_id());
}

TEST(GlobalAddr, PageHomeRecoversOwner) {
  for (ProcId p : {0u, 7u, 31u}) {
    const GlobalAddr a = GlobalAddr::make(p, 12345 * 8);
    EXPECT_EQ(page_home(a.page_id()), p);
  }
}

TEST(DistHeap, AllocationsAreDisjointAndAligned) {
  DistHeap h(4);
  Rng rng(1);
  struct Span {
    std::uint32_t lo, hi;
  };
  std::vector<Span> spans[4];
  for (int i = 0; i < 500; ++i) {
    const ProcId p = static_cast<ProcId>(rng.next_below(4));
    const auto size = static_cast<std::uint32_t>(1 + rng.next_below(200));
    const std::uint32_t align = 1u << rng.next_below(4);
    const GlobalAddr a = h.allocate(p, size, align);
    EXPECT_EQ(a.proc(), p);
    EXPECT_EQ(a.local() % align, 0u);
    EXPECT_FALSE(a.is_null());
    for (const Span& s : spans[p]) {
      EXPECT_TRUE(a.local() >= s.hi || a.local() + size <= s.lo)
          << "overlapping allocation";
    }
    spans[p].push_back({a.local(), a.local() + size});
  }
}

TEST(DistHeap, HomeMemoryHoldsWrites) {
  DistHeap h(2);
  const GlobalAddr a = h.allocate(1, 16, 8);
  std::int64_t v = 0x1122334455667788;
  std::memcpy(h.home_ptr(a, 8), &v, 8);
  std::int64_t out = 0;
  std::memcpy(&out, h.home_ptr(a, 8), 8);
  EXPECT_EQ(out, v);
}

TEST(DistHeap, LineReadsCoverAllocatedTails) {
  DistHeap h(1);
  // A 4-byte object at the start of a fresh line: fetching its whole line
  // must be legal even though only 4 bytes are allocated.
  const GlobalAddr a = h.allocate(0, 4, 4);
  const GlobalAddr base = GlobalAddr::make(0, a.local() & ~(kLineBytes - 1));
  EXPECT_NE(h.line_home(base), nullptr);
}

TEST(DistHeap, SectionsAreIndependent) {
  DistHeap h(3);
  const GlobalAddr a = h.allocate(0, 100, 8);
  const GlobalAddr b = h.allocate(2, 100, 8);
  EXPECT_EQ(h.bytes_used(1), kLineBytes);  // only the burned null line
  std::memset(h.home_ptr(a, 100), 0xaa, 100);
  std::memset(h.home_ptr(b, 100), 0x55, 100);
  EXPECT_EQ(static_cast<unsigned char>(*h.home_ptr(a, 1)), 0xaa);
  EXPECT_EQ(static_cast<unsigned char>(*h.home_ptr(b, 1)), 0x55);
}

TEST(GPtrT, TypedPointerAlgebra) {
  struct R {
    std::int64_t a, b;
  };
  DistHeap h(2);
  const GPtr<R> arr{h.allocate(1, 10 * sizeof(R), 8)};
  EXPECT_EQ(arr.at(3).addr().local() - arr.addr().local(), 3 * sizeof(R));
  EXPECT_EQ(arr.at(0), arr);
  EXPECT_NE(arr.at(1), arr);
  EXPECT_TRUE(arr);  // non-null
  EXPECT_FALSE(GPtr<R>{});
}

TEST(MemberOffset, MatchesLanguageLayout) {
  struct S {
    std::int32_t a;
    double b;
    GPtr<S> c;
  };
  EXPECT_EQ(member_offset(&S::a), offsetof(S, a));
  EXPECT_EQ(member_offset(&S::b), offsetof(S, b));
  EXPECT_EQ(member_offset(&S::c), offsetof(S, c));
}

}  // namespace
}  // namespace olden
