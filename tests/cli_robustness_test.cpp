// ObsCli flag robustness: malformed numeric values and unparsable fault
// specs must exit 2 with a one-line message — never be silently coerced
// to zero — and well-formed values must land in the parsed surface.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "olden/bench/obs_cli.hpp"

namespace olden::bench {
namespace {

/// Build a mutable argv (ObsCli::parse edits it in place).
struct Argv {
  explicit Argv(std::vector<std::string> args) : storage(std::move(args)) {
    ptrs.push_back(name.data());
    for (std::string& s : storage) ptrs.push_back(s.data());
    ptrs.push_back(nullptr);
    argc = static_cast<int>(ptrs.size()) - 1;
  }
  std::string name = "olden_tests";
  std::vector<std::string> storage;
  std::vector<char*> ptrs;
  int argc = 0;
};

void parse_args(std::vector<std::string> args) {
  Argv a(std::move(args));
  ObsCli cli;
  cli.parse(&a.argc, a.ptrs.data());
}

using CliDeath = ::testing::Test;

TEST(CliDeath, NonNumericTraceLimitExits2) {
  EXPECT_EXIT(parse_args({"--trace-limit=abc"}),
              ::testing::ExitedWithCode(2), "not a non-negative integer");
}

TEST(CliDeath, NegativeTraceLimitExits2) {
  EXPECT_EXIT(parse_args({"--trace-limit=-5"}),
              ::testing::ExitedWithCode(2), "not a non-negative integer");
}

TEST(CliDeath, EmptyTraceLimitExits2) {
  EXPECT_EXIT(parse_args({"--trace-limit="}),
              ::testing::ExitedWithCode(2), "not a non-negative integer");
}

TEST(CliDeath, OverflowingTraceLimitExits2) {
  EXPECT_EXIT(parse_args({"--trace-limit=99999999999999999999999"}),
              ::testing::ExitedWithCode(2), "not a non-negative integer");
}

TEST(CliDeath, NonNumericFaultSeedExits2) {
  EXPECT_EXIT(parse_args({"--fault-seed=xyz"}),
              ::testing::ExitedWithCode(2), "not a non-negative integer");
}

TEST(CliDeath, NegativeFaultSeedExits2) {
  EXPECT_EXIT(parse_args({"--fault-seed=-1"}),
              ::testing::ExitedWithCode(2), "not a non-negative integer");
}

TEST(CliDeath, MalformedFaultSpecExits2) {
  EXPECT_EXIT(parse_args({"--faults=drop=2.0"}),
              ::testing::ExitedWithCode(2), "--faults");
}

TEST(CliDeath, FaultSpecErrorNamesTheTokenWithoutStutter) {
  // The parser's own messages carry a "faults: " prefix; the flag handler
  // must strip it so the user sees "--faults: duplicate key 'drop'", not
  // "--faults: faults: duplicate key 'drop'". Anchoring the regex on the
  // program name proves the prefix appears exactly once.
  EXPECT_EXIT(parse_args({"--faults=drop=0.1,drop=0.2"}),
              ::testing::ExitedWithCode(2),
              "olden_tests: --faults: duplicate key 'drop'");
}

TEST(CliDeath, DuplicateFaultKeyExits2) {
  EXPECT_EXIT(parse_args({"--faults=timeout=100,timeout=200"}),
              ::testing::ExitedWithCode(2), "duplicate key 'timeout'");
}

TEST(CliDeath, OverflowingFaultTimeoutExits2) {
  EXPECT_EXIT(parse_args({"--faults=timeout=99999999999999999999"}),
              ::testing::ExitedWithCode(2), "positive integer");
}

TEST(CliDeath, EmptyFaultFieldExits2) {
  EXPECT_EXIT(parse_args({"--faults=drop=0.1,,dup=0.1"}),
              ::testing::ExitedWithCode(2), "expected key=value");
}

TEST(CliDeath, UnknownFaultClassExits2) {
  EXPECT_EXIT(parse_args({"--faults=drop=0.1,classes=fill:bogus"}),
              ::testing::ExitedWithCode(2), "unknown class 'bogus'");
}

TEST(CliDeath, DuplicateFaultClassExits2) {
  EXPECT_EXIT(parse_args({"--faults=drop=0.1,classes=fill:fill"}),
              ::testing::ExitedWithCode(2), "duplicate class 'fill'");
}

TEST(CliDeath, UnknownFlagExits2) {
  EXPECT_EXIT(parse_args({"--frobnicate"}), ::testing::ExitedWithCode(2),
              "unknown flag");
}

TEST(CliParse, WellFormedValuesLand) {
  Argv a({"--trace-limit=123", "--faults=drop=0.25,timeout=900",
          "--fault-seed=7"});
  ObsCli cli;
  cli.parse(&a.argc, a.ptrs.data());
  EXPECT_EQ(a.argc, 1);  // all three flags consumed
  ASSERT_NE(cli.faults(), nullptr);
  EXPECT_DOUBLE_EQ(cli.faults()->drop, 0.25);
  EXPECT_EQ(cli.faults()->ack_timeout, 900u);
  EXPECT_EQ(cli.fault_seed(), 7u);
}

TEST(CliParse, FaultClassSelectorLands) {
  Argv a({"--faults=drop=0.2,classes=fill:ts_check,timeout=900"});
  ObsCli cli;
  cli.parse(&a.argc, a.ptrs.data());
  ASSERT_NE(cli.faults(), nullptr);
  EXPECT_TRUE(cli.faults()->class_enabled(MsgClass::kFill));
  EXPECT_TRUE(cli.faults()->class_enabled(MsgClass::kTsCheck));
  EXPECT_FALSE(cli.faults()->class_enabled(MsgClass::kMigration));
  EXPECT_FALSE(cli.faults()->class_enabled(MsgClass::kInvalidate));
}

TEST(CliParse, FaultsNoneStaysDisabled) {
  Argv a({"--faults=none"});
  ObsCli cli;
  cli.parse(&a.argc, a.ptrs.data());
  EXPECT_EQ(cli.faults(), nullptr);
}

}  // namespace
}  // namespace olden::bench
