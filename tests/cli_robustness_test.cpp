// ObsCli flag robustness: malformed numeric values and unparsable fault
// specs must exit 2 with a one-line message — never be silently coerced
// to zero — and well-formed values must land in the parsed surface.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "olden/bench/obs_cli.hpp"

namespace olden::bench {
namespace {

/// Build a mutable argv (ObsCli::parse edits it in place).
struct Argv {
  explicit Argv(std::vector<std::string> args) : storage(std::move(args)) {
    ptrs.push_back(name.data());
    for (std::string& s : storage) ptrs.push_back(s.data());
    ptrs.push_back(nullptr);
    argc = static_cast<int>(ptrs.size()) - 1;
  }
  std::string name = "olden_tests";
  std::vector<std::string> storage;
  std::vector<char*> ptrs;
  int argc = 0;
};

void parse_args(std::vector<std::string> args) {
  Argv a(std::move(args));
  ObsCli cli;
  cli.parse(&a.argc, a.ptrs.data());
}

using CliDeath = ::testing::Test;

TEST(CliDeath, NonNumericTraceLimitExits2) {
  EXPECT_EXIT(parse_args({"--trace-limit=abc"}),
              ::testing::ExitedWithCode(2), "not a non-negative integer");
}

TEST(CliDeath, NegativeTraceLimitExits2) {
  EXPECT_EXIT(parse_args({"--trace-limit=-5"}),
              ::testing::ExitedWithCode(2), "not a non-negative integer");
}

TEST(CliDeath, EmptyTraceLimitExits2) {
  EXPECT_EXIT(parse_args({"--trace-limit="}),
              ::testing::ExitedWithCode(2), "not a non-negative integer");
}

TEST(CliDeath, OverflowingTraceLimitExits2) {
  EXPECT_EXIT(parse_args({"--trace-limit=99999999999999999999999"}),
              ::testing::ExitedWithCode(2), "not a non-negative integer");
}

TEST(CliDeath, NonNumericFaultSeedExits2) {
  EXPECT_EXIT(parse_args({"--fault-seed=xyz"}),
              ::testing::ExitedWithCode(2), "not a non-negative integer");
}

TEST(CliDeath, NegativeFaultSeedExits2) {
  EXPECT_EXIT(parse_args({"--fault-seed=-1"}),
              ::testing::ExitedWithCode(2), "not a non-negative integer");
}

TEST(CliDeath, MalformedFaultSpecExits2) {
  EXPECT_EXIT(parse_args({"--faults=drop=2.0"}),
              ::testing::ExitedWithCode(2), "--faults");
}

TEST(CliDeath, UnknownFlagExits2) {
  EXPECT_EXIT(parse_args({"--frobnicate"}), ::testing::ExitedWithCode(2),
              "unknown flag");
}

TEST(CliParse, WellFormedValuesLand) {
  Argv a({"--trace-limit=123", "--faults=drop=0.25,timeout=900",
          "--fault-seed=7"});
  ObsCli cli;
  cli.parse(&a.argc, a.ptrs.data());
  EXPECT_EQ(a.argc, 1);  // all three flags consumed
  ASSERT_NE(cli.faults(), nullptr);
  EXPECT_DOUBLE_EQ(cli.faults()->drop, 0.25);
  EXPECT_EQ(cli.faults()->ack_timeout, 900u);
  EXPECT_EQ(cli.fault_seed(), 7u);
}

TEST(CliParse, FaultsNoneStaysDisabled) {
  Argv a({"--faults=none"});
  ObsCli cli;
  cli.parse(&a.argc, a.ptrs.data());
  EXPECT_EQ(cli.faults(), nullptr);
}

}  // namespace
}  // namespace olden::bench
