// The interval-sampled profiling plane (src/olden/profile/): the
// zero-virtual-cycle invariant (profiling on/off yields byte-identical
// traces and equal makespans, with or without fault injection), profile
// determinism across repeats and across serial-vs-merged observers,
// interval splitting arithmetic, the feedback-file grammar and its
// application order in Benchmark::site_table, the profile JSON reader,
// and the scoreboard grading rules.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "olden/analyze/profile_report.hpp"
#include "olden/bench/benchmark.hpp"
#include "olden/fault/fault_spec.hpp"
#include "olden/profile/feedback.hpp"
#include "olden/profile/profile.hpp"
#include "olden/profile/profile_reader.hpp"
#include "olden/trace/observer.hpp"

namespace olden {
namespace {

using bench::BenchConfig;
using bench::BenchResult;
using bench::Benchmark;
using bench::find_benchmark;

// --- interval splitting ----------------------------------------------------

TEST(ProfileIntervals, CycleSpansSplitExactlyAcrossBoundaries) {
  profile::RunProfile rp;
  rp.enabled = true;
  rp.interval_cycles = 100;
  rp.add_cycles(95, 205, trace::CycleBucket::kCompute);
  const auto bi = static_cast<std::size_t>(trace::CycleBucket::kCompute);
  ASSERT_EQ(rp.intervals.size(), 3u);
  EXPECT_EQ(rp.intervals[0].cycles[bi], 5u);
  EXPECT_EQ(rp.intervals[1].cycles[bi], 100u);
  EXPECT_EQ(rp.intervals[2].cycles[bi], 5u);
}

TEST(ProfileIntervals, ExactBoundarySpansTouchOneInterval) {
  profile::RunProfile rp;
  rp.enabled = true;
  rp.interval_cycles = 100;
  rp.add_cycles(100, 200, trace::CycleBucket::kIdle);
  const auto bi = static_cast<std::size_t>(trace::CycleBucket::kIdle);
  ASSERT_EQ(rp.intervals.size(), 1u);
  EXPECT_EQ(rp.intervals.count(1), 1u);
  EXPECT_EQ(rp.intervals[1].cycles[bi], 100u);
}

TEST(ProfileIntervals, EmptySpansAreIgnored) {
  profile::RunProfile rp;
  rp.enabled = true;
  rp.interval_cycles = 100;
  rp.add_cycles(0, 0, trace::CycleBucket::kCompute);
  rp.add_cycles(42, 42, trace::CycleBucket::kCompute);
  EXPECT_TRUE(rp.intervals.empty());
}

TEST(ProfileIntervals, LastCycleBeforeBoundaryStaysInItsInterval) {
  profile::RunProfile rp;
  rp.enabled = true;
  rp.interval_cycles = 100;
  rp.add_cycles(99, 100, trace::CycleBucket::kRetry);
  const auto bi = static_cast<std::size_t>(trace::CycleBucket::kRetry);
  ASSERT_EQ(rp.intervals.size(), 1u);
  EXPECT_EQ(rp.intervals[0].cycles[bi], 1u);
}

TEST(ProfileIntervals, IntervalLargerThanSpanLandsEntirelyInIntervalZero) {
  // --profile-interval larger than the whole makespan: everything the run
  // did belongs to interval 0, and nothing is lost or double-counted.
  profile::RunProfile rp;
  rp.enabled = true;
  rp.interval_cycles = 1ull << 40;
  rp.add_cycles(0, 12345, trace::CycleBucket::kCompute);
  rp.add_cycles(12345, 20000, trace::CycleBucket::kIdle);
  const auto ci = static_cast<std::size_t>(trace::CycleBucket::kCompute);
  const auto ii = static_cast<std::size_t>(trace::CycleBucket::kIdle);
  ASSERT_EQ(rp.intervals.size(), 1u);
  ASSERT_EQ(rp.intervals.count(0), 1u);
  EXPECT_EQ(rp.intervals[0].cycles[ci], 12345u);
  EXPECT_EQ(rp.intervals[0].cycles[ii], 20000u - 12345u);
}

TEST(ProfileIntervals, SpanEndingExactlyOnBoundaryCreatesNoEmptyTail) {
  // A makespan that lands exactly on an interval boundary must not open
  // an empty trailing interval: cycle [199] is the last cycle of interval
  // 1, and interval 2 never exists.
  profile::RunProfile rp;
  rp.enabled = true;
  rp.interval_cycles = 100;
  rp.add_cycles(0, 200, trace::CycleBucket::kCompute);
  const auto bi = static_cast<std::size_t>(trace::CycleBucket::kCompute);
  ASSERT_EQ(rp.intervals.size(), 2u);
  EXPECT_EQ(rp.intervals[0].cycles[bi], 100u);
  EXPECT_EQ(rp.intervals[1].cycles[bi], 100u);
  EXPECT_EQ(rp.intervals.count(2), 0u);
}

TEST(ProfileIntervals, ZeroCycleTailAtExactBoundaryConservesTotals) {
  // Mirrors Observer::finish() when a processor's clock already equals
  // the makespan and both sit exactly on an interval boundary: the
  // trailing-idle add is a zero-cycle span, adds nothing, and the summed
  // interval cycles still equal nprocs * makespan.
  constexpr std::uint64_t kMakespan = 300;
  profile::RunProfile rp;
  rp.enabled = true;
  rp.interval_cycles = 100;
  rp.add_cycles(0, kMakespan, trace::CycleBucket::kCompute);  // proc A
  rp.add_cycles(0, 250, trace::CycleBucket::kCompute);        // proc B...
  rp.add_cycles(250, kMakespan, trace::CycleBucket::kIdle);   // ...then idle
  rp.add_cycles(kMakespan, kMakespan, trace::CycleBucket::kIdle);  // zero tail
  std::uint64_t sum = 0;
  for (const auto& [idx, iv] : rp.intervals) {
    for (std::size_t b = 0; b < trace::kNumBuckets; ++b) sum += iv.cycles[b];
  }
  EXPECT_EQ(sum, 2 * kMakespan);
  EXPECT_EQ(rp.intervals.count(3), 0u);  // boundary opened no new interval
}

// --- zero perturbation -----------------------------------------------------

TEST(ProfileZeroPerturbation, ProfilingChangesNoCycleOrTraceByte) {
  const Benchmark* b = find_benchmark("TreeAdd");
  ASSERT_NE(b, nullptr);
  BenchConfig cfg{.nprocs = 8};
  cfg.tiny = true;
  const BenchResult bare = b->run(cfg);

  // Traced, profiling off: the reference byte stream.
  trace::Observer off;
  off.set_trace_enabled(true);
  off.begin_run("ab");
  cfg.observer = &off;
  const BenchResult r_off = b->run(cfg);

  // Traced, profiling on (small interval: many boundary crossings).
  trace::Observer on;
  on.set_trace_enabled(true);
  on.enable_profile(1024);
  on.begin_run("ab");
  cfg.observer = &on;
  const BenchResult r_on = b->run(cfg);

  EXPECT_EQ(r_on.checksum, bare.checksum);
  EXPECT_EQ(r_on.total_cycles, bare.total_cycles);
  EXPECT_EQ(r_off.total_cycles, bare.total_cycles);
  EXPECT_EQ(trace::binary_trace_bytes(on), trace::binary_trace_bytes(off));

  // And the profile actually recorded the run.
  ASSERT_EQ(on.runs().size(), 1u);
  const profile::RunProfile& p = on.runs()[0].profile;
  EXPECT_TRUE(p.enabled);
  EXPECT_GT(p.total_accesses(), 0u);
  EXPECT_FALSE(p.intervals.empty());
}

TEST(ProfileZeroPerturbation, HoldsUnderFaultInjection) {
  const Benchmark* b = find_benchmark("EM3D");
  ASSERT_NE(b, nullptr);
  fault::FaultSpec spec;
  std::string err;
  ASSERT_TRUE(
      fault::parse_fault_spec("drop=0.05,dup=0.02,delay=0.1:200", &spec, &err))
      << err;

  BenchConfig cfg{.nprocs = 8, .scheme = Coherence::kBilateral};
  cfg.tiny = true;
  cfg.faults = &spec;
  const BenchResult bare = b->run(cfg);

  std::string profiles[2];
  for (int i = 0; i < 2; ++i) {
    trace::Observer obs;
    obs.enable_profile(4096);
    obs.begin_run("faulty", {{"benchmark", b->name()}});
    cfg.observer = &obs;
    const BenchResult r = b->run(cfg);
    EXPECT_EQ(r.checksum, bare.checksum);
    EXPECT_EQ(r.total_cycles, bare.total_cycles);
    profiles[i] = profile::profile_json(obs);
  }
  // The profile itself is as deterministic as the (seeded) fault plane.
  EXPECT_EQ(profiles[0], profiles[1]);
}

// --- determinism and merging ----------------------------------------------

TEST(ProfileDeterminism, RepeatedRunsProduceByteIdenticalProfiles) {
  const Benchmark* b = find_benchmark("MST");
  ASSERT_NE(b, nullptr);
  std::string profiles[2];
  for (int i = 0; i < 2; ++i) {
    trace::Observer obs;
    obs.enable_profile();
    obs.begin_run("repeat", {{"benchmark", b->name()}});
    BenchConfig cfg{.nprocs = 4};
    cfg.tiny = true;
    cfg.observer = &obs;
    (void)b->run(cfg);
    profiles[i] = profile::profile_json(obs);
  }
  EXPECT_EQ(profiles[0], profiles[1]);
}

TEST(ProfileDeterminism, AdoptedWorkerProfilesMatchSerial) {
  const Benchmark* b = find_benchmark("TreeAdd");
  ASSERT_NE(b, nullptr);
  const Coherence schemes[2] = {Coherence::kLocalKnowledge,
                                Coherence::kEagerGlobal};
  const char* labels[2] = {"cell/local", "cell/global"};

  trace::Observer serial;
  serial.enable_profile(8192);
  for (int i = 0; i < 2; ++i) {
    serial.begin_run(labels[i], {{"benchmark", b->name()}});
    BenchConfig cfg{.nprocs = 8, .scheme = schemes[i]};
    cfg.tiny = true;
    cfg.observer = &serial;
    (void)b->run(cfg);
  }

  // The bench_cell --jobs pattern: private observers, merged in cell order.
  trace::Observer main_obs;
  trace::Observer workers[2];
  for (int i = 0; i < 2; ++i) {
    workers[i].enable_profile(8192);
    workers[i].begin_run(labels[i], {{"benchmark", b->name()}});
    BenchConfig cfg{.nprocs = 8, .scheme = schemes[i]};
    cfg.tiny = true;
    cfg.observer = &workers[i];
    (void)b->run(cfg);
  }
  main_obs.adopt_runs_from(workers[0]);
  main_obs.adopt_runs_from(workers[1]);

  EXPECT_EQ(profile::profile_json(main_obs), profile::profile_json(serial));
}

// --- conservation ----------------------------------------------------------

TEST(ProfileConservation, IntervalCyclesSumToNprocsTimesMakespan) {
  const Benchmark* b = find_benchmark("Power");
  ASSERT_NE(b, nullptr);
  trace::Observer obs;
  obs.enable_profile(2048);
  obs.begin_run("conserve", {{"benchmark", b->name()}});
  BenchConfig cfg{.nprocs = 8};
  cfg.tiny = true;
  cfg.observer = &obs;
  (void)b->run(cfg);

  ASSERT_EQ(obs.runs().size(), 1u);
  const trace::RunRecord& run = obs.runs()[0];
  std::uint64_t cycle_sum = 0;
  std::uint64_t access_sum = 0;
  for (const auto& [idx, iv] : run.profile.intervals) {
    for (std::size_t bkt = 0; bkt < trace::kNumBuckets; ++bkt) {
      cycle_sum += iv.cycles[bkt];
    }
    access_sum += iv.accesses;
  }
  EXPECT_EQ(cycle_sum,
            static_cast<std::uint64_t>(run.nprocs) * run.makespan);
  EXPECT_EQ(access_sum, run.profile.total_accesses());
  std::uint64_t timeline_sum = 0;
  for (const auto& [site, s] : run.profile.sites) {
    std::uint64_t per_site = 0;
    for (const auto& [iv, n] : s.timeline) per_site += n;
    EXPECT_EQ(per_site, s.accesses()) << "site " << site;
    timeline_sum += per_site;
  }
  EXPECT_EQ(timeline_sum, access_sum);
}

TEST(ProfileConservation, HoldsWhenIntervalExceedsMakespan) {
  // End-to-end arm of the interval-larger-than-makespan case: one giant
  // interval absorbs the whole run and the conservation identity holds.
  const Benchmark* b = find_benchmark("TreeAdd");
  ASSERT_NE(b, nullptr);
  trace::Observer obs;
  obs.enable_profile(1ull << 40);
  obs.begin_run("one-interval", {{"benchmark", b->name()}});
  BenchConfig cfg{.nprocs = 8};
  cfg.tiny = true;
  cfg.observer = &obs;
  (void)b->run(cfg);

  ASSERT_EQ(obs.runs().size(), 1u);
  const trace::RunRecord& run = obs.runs()[0];
  ASSERT_EQ(run.profile.intervals.size(), 1u);
  ASSERT_EQ(run.profile.intervals.count(0), 1u);
  std::uint64_t cycle_sum = 0;
  for (const auto& [idx, iv] : run.profile.intervals) {
    for (std::size_t bkt = 0; bkt < trace::kNumBuckets; ++bkt) {
      cycle_sum += iv.cycles[bkt];
    }
  }
  EXPECT_EQ(cycle_sum,
            static_cast<std::uint64_t>(run.nprocs) * run.makespan);
}

// --- feedback file grammar -------------------------------------------------

TEST(Feedback, ParsesRowsAndComments) {
  profile::FeedbackTable t;
  std::string err;
  ASSERT_TRUE(t.parse("# olden-profile-feedback v1\n"
                      "# a comment\n"
                      "\n"
                      "TreeAdd 0 migrate\n"
                      "TreeAdd 1 cache\n",
                      &err))
      << err;
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.lookup("TreeAdd", 0), Mechanism::kMigrate);
  EXPECT_EQ(t.lookup("TreeAdd", 1), Mechanism::kCache);
  EXPECT_EQ(t.lookup("TreeAdd", 2), std::nullopt);
  EXPECT_EQ(t.lookup("MST", 0), std::nullopt);
}

TEST(Feedback, DuplicateRowIsAStructuredParseError) {
  // Two rows for one (benchmark, site) mean the file was merged or
  // hand-edited badly; the old behavior (silent last-wins) applied a
  // mechanism nobody reviewed. The error names both lines and the uid.
  profile::FeedbackTable t;
  std::string err;
  EXPECT_FALSE(t.parse("# olden-profile-feedback v1\n"
                       "TreeAdd 0 migrate\n"
                       "TreeAdd 1 cache\n"
                       "TreeAdd 0 cache\n",
                       &err));
  EXPECT_NE(err.find("line 4"), std::string::npos) << err;
  EXPECT_NE(err.find("duplicate"), std::string::npos) << err;
  EXPECT_NE(err.find("TreeAdd#0"), std::string::npos) << err;
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
  EXPECT_TRUE(t.empty());  // failed parses leave the table unchanged

  // Same site index under different benchmarks is not a duplicate.
  ASSERT_TRUE(t.parse("# olden-profile-feedback v1\n"
                      "TreeAdd 0 migrate\n"
                      "MST 0 cache\n",
                      &err))
      << err;
  EXPECT_EQ(t.size(), 2u);
}

TEST(Feedback, StaleSiteUidsAreReportedByName) {
  // A row whose site index falls outside the benchmark's table is stale
  // (written against an older build). stale_uids names the exact tokens
  // so the consumer's warning tells the user what to regenerate.
  profile::FeedbackTable t;
  std::string err;
  ASSERT_TRUE(t.parse("# olden-profile-feedback v1\n"
                      "TreeAdd 0 migrate\n"
                      "TreeAdd 9 cache\n"
                      "MST 7 cache\n",
                      &err))
      << err;
  const std::vector<std::string> stale = t.stale_uids("TreeAdd", 8);
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0], "TreeAdd#9");
  // Site 9 would need a 10-site table; with one it is in range.
  EXPECT_TRUE(t.stale_uids("TreeAdd", 10).empty());
  // Other benchmarks' rows never leak into this benchmark's report.
  const std::vector<std::string> mst = t.stale_uids("MST", 4);
  ASSERT_EQ(mst.size(), 1u);
  EXPECT_EQ(mst[0], "MST#7");
}

TEST(Feedback, RejectsMissingOrUnknownVersionHeader) {
  profile::FeedbackTable t;
  std::string err;
  EXPECT_FALSE(t.parse("TreeAdd 0 migrate\n", &err));
  EXPECT_NE(err.find("header"), std::string::npos) << err;
  EXPECT_FALSE(t.parse("# olden-profile-feedback v2\nTreeAdd 0 cache\n",
                       &err));
  EXPECT_TRUE(t.empty());  // failed parses leave the table unchanged
}

TEST(Feedback, RejectsMalformedRows) {
  profile::FeedbackTable t;
  std::string err;
  EXPECT_FALSE(t.parse("# olden-profile-feedback v1\nTreeAdd 0\n", &err));
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
  EXPECT_FALSE(
      t.parse("# olden-profile-feedback v1\nTreeAdd x migrate\n", &err));
  EXPECT_FALSE(
      t.parse("# olden-profile-feedback v1\nTreeAdd 0 sideways\n", &err));
  EXPECT_TRUE(t.empty());
}

TEST(Feedback, HeuristicSpecStaticAndProfileFile) {
  profile::FeedbackTable t;
  bool use = true;
  std::string err;
  ASSERT_TRUE(profile::parse_heuristic_spec("static", &t, &use, &err));
  EXPECT_FALSE(use);

  const std::string path = ::testing::TempDir() + "profile_feedback_ok.txt";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("# olden-profile-feedback v1\nHealth 3 migrate\n", f);
  std::fclose(f);
  ASSERT_TRUE(profile::parse_heuristic_spec("profile:" + path, &t, &use,
                                            &err))
      << err;
  EXPECT_TRUE(use);
  EXPECT_EQ(t.lookup("Health", 3), Mechanism::kMigrate);

  EXPECT_FALSE(profile::parse_heuristic_spec("bogus", &t, &use, &err));
  EXPECT_FALSE(profile::parse_heuristic_spec(
      "profile:/nonexistent/feedback.txt", &t, &use, &err));
}

// --- feedback application order in site_table -----------------------------

TEST(Feedback, SiteTableAppliesFeedbackAfterHeuristicBeforeOverrides) {
  const Benchmark* b = find_benchmark("TreeAdd");
  ASSERT_NE(b, nullptr);
  BenchConfig cfg{.nprocs = 8};
  cfg.tiny = true;
  const std::vector<Mechanism> base = b->site_table(cfg, nullptr);

  profile::FeedbackTable t;
  for (std::size_t s = 0; s < b->num_sites(); ++s) {
    t.set(b->name(), static_cast<SiteId>(s), Mechanism::kCache);
  }
  cfg.feedback = &t;
  const std::vector<Mechanism> fed = b->site_table(cfg, nullptr);
  ASSERT_EQ(fed.size(), base.size());

  std::vector<bool> overridden(fed.size(), false);
  for (const auto& [site, mech] : b->site_overrides()) {
    ASSERT_LT(site, fed.size());
    overridden[site] = true;
    EXPECT_EQ(fed[site], mech) << "builder override lost at site " << site;
  }
  for (std::size_t s = 0; s < fed.size(); ++s) {
    if (!overridden[s]) {
      EXPECT_EQ(fed[s], Mechanism::kCache) << "feedback ignored at site " << s;
    }
  }

  // Feedback for another benchmark must not leak in.
  profile::FeedbackTable other;
  for (std::size_t s = 0; s < b->num_sites(); ++s) {
    other.set("NotTreeAdd", static_cast<SiteId>(s), Mechanism::kCache);
  }
  cfg.feedback = &other;
  EXPECT_EQ(b->site_table(cfg, nullptr), base);
}

TEST(Feedback, FeedbackRunStillValidatesChecksum) {
  const Benchmark* b = find_benchmark("TreeAdd");
  ASSERT_NE(b, nullptr);
  profile::FeedbackTable t;
  for (std::size_t s = 0; s < b->num_sites(); ++s) {
    t.set(b->name(), static_cast<SiteId>(s), Mechanism::kCache);
  }
  BenchConfig cfg{.nprocs = 8};
  cfg.tiny = true;
  cfg.feedback = &t;
  const BenchResult r = b->run(cfg);
  EXPECT_EQ(r.checksum, b->reference_checksum(cfg));
}

// --- profile JSON reader ---------------------------------------------------

TEST(ProfileReader, RoundTripsAnEmittedProfile) {
  const Benchmark* b = find_benchmark("Health");
  ASSERT_NE(b, nullptr);
  trace::Observer obs;
  obs.enable_profile();
  obs.begin_run("rt", {{"benchmark", b->name()}});
  BenchConfig cfg{.nprocs = 4};
  cfg.tiny = true;
  cfg.observer = &obs;
  (void)b->run(cfg);

  profile::ProfileDoc doc;
  std::string err;
  ASSERT_TRUE(profile::parse_profile_json(profile::profile_json(obs), &doc, &err))
      << err;
  EXPECT_EQ(doc.schema_version, profile::kProfileSchemaVersion);
  ASSERT_EQ(doc.runs.size(), 1u);
  const profile::ProfileRun& run = doc.runs[0];
  EXPECT_EQ(run.benchmark, b->name());
  EXPECT_EQ(run.total_accesses, obs.runs()[0].profile.total_accesses());
  EXPECT_EQ(run.sites.size(), obs.runs()[0].profile.sites.size());
  ASSERT_FALSE(run.sites.empty());
  EXPECT_EQ(run.sites[0].site_uid,
            b->name() + "#" + std::to_string(run.sites[0].site));
}

TEST(ProfileReader, RejectsCorruptAndWrongVersionDocuments) {
  profile::ProfileDoc doc;
  std::string err;
  EXPECT_FALSE(profile::parse_profile_json("{", &doc, &err));
  EXPECT_FALSE(profile::parse_profile_json("not json at all", &doc, &err));
  EXPECT_FALSE(profile::parse_profile_json(
      R"({"profile_schema_version":99,"generator":"olden-profile","runs":[]})",
      &doc, &err));
  EXPECT_NE(err.find("99"), std::string::npos) << err;
  EXPECT_EQ(doc.schema_version, 99);  // reported so callers can say why
  EXPECT_FALSE(profile::parse_profile_json(
      R"({"profile_schema_version":1,"generator":"other","runs":[]})", &doc,
      &err));
}

// --- scoreboard grading ----------------------------------------------------

profile::SiteRow site_row(const char* mech, std::uint64_t local_reads,
                          std::uint64_t hits, std::uint64_t misses,
                          std::uint64_t write_throughs,
                          std::uint64_t migrations) {
  profile::SiteRow s;
  s.mechanism = mech;
  s.local_reads = local_reads;
  s.cache_hits = hits;
  s.cache_misses = misses;
  s.write_throughs = write_throughs;
  s.migrations = migrations;
  s.accesses = local_reads + hits + misses + write_throughs + migrations;
  return s;
}

TEST(Scoreboard, MigrateSiteBelowAffinityBarFlipsToCache) {
  const auto g =
      analyze::grade_site(site_row("migrate", 50, 0, 0, 0, 50));
  EXPECT_FALSE(g.agree);
  EXPECT_EQ(g.recommended, Mechanism::kCache);

  const auto ok =
      analyze::grade_site(site_row("migrate", 95, 0, 0, 0, 5));
  EXPECT_TRUE(ok.agree);
}

TEST(Scoreboard, CacheSiteFlipsOnlyOnRemoteTrafficWithPoorReuse) {
  const auto bad = analyze::grade_site(site_row("cache", 0, 10, 90, 0, 0));
  EXPECT_FALSE(bad.agree);
  EXPECT_EQ(bad.recommended, Mechanism::kMigrate);

  const auto reuse = analyze::grade_site(site_row("cache", 0, 90, 10, 0, 0));
  EXPECT_TRUE(reuse.agree);

  // Write-only remote traffic: no reuse signal, never flipped.
  const auto writes = analyze::grade_site(site_row("cache", 0, 0, 0, 100, 0));
  EXPECT_TRUE(writes.agree);

  const auto idle = analyze::grade_site(site_row("cache", 0, 0, 0, 0, 0));
  EXPECT_TRUE(idle.agree);
}

}  // namespace
}  // namespace olden
