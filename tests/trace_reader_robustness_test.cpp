// Adversarial inputs for the binary-trace reader: truncations at every
// byte boundary, corrupt header lengths, absurd processor / run / event
// counts, wrong versions. Every case must fail with a descriptive error —
// never crash, over-read, or attempt a corrupt-count-sized allocation.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "olden/analyze/trace_reader.hpp"
#include "olden/bench/benchmark.hpp"
#include "olden/trace/observer.hpp"

namespace olden::analyze {
namespace {

/// A small but real trace: one TreeAdd run with events. The event limit
/// keeps the file a few KB so the every-prefix truncation sweep (O(n^2))
/// stays cheap even under sanitizers.
std::string valid_trace_bytes() {
  const bench::Benchmark* b = bench::find_benchmark("TreeAdd");
  EXPECT_NE(b, nullptr);
  trace::Observer obs;
  obs.set_trace_enabled(true);
  obs.set_event_limit(64);
  obs.begin_run("adv");
  bench::BenchConfig cfg{.nprocs = 2};
  cfg.tiny = true;
  cfg.observer = &obs;
  (void)b->run(cfg);
  return trace::binary_trace_bytes(obs);
}

void poke_u32(std::string* bytes, std::size_t off, std::uint32_t v) {
  ASSERT_LE(off + 4, bytes->size());
  for (int i = 0; i < 4; ++i) {
    (*bytes)[off + i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

void poke_u64(std::string* bytes, std::size_t off, std::uint64_t v) {
  ASSERT_LE(off + 8, bytes->size());
  for (int i = 0; i < 8; ++i) {
    (*bytes)[off + i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

// Layout after the 8-byte magic: version u32 @8, nruns u32 @12, then per
// run: label_len u32 @16, label bytes, nprocs u32, makespan u64,
// dropped u64, nevents u64, then fixed-size event records
// (trace::kBinaryRecordBytes each).
constexpr std::size_t kVersionOff = 8;
constexpr std::size_t kNrunsOff = 12;
constexpr std::size_t kLabelLenOff = 16;
constexpr std::size_t kLabelLen = 3;  // "adv"
constexpr std::size_t kNprocsOff = kLabelLenOff + 4 + kLabelLen;
constexpr std::size_t kNeventsOff = kNprocsOff + 4 + 8 + 8;

TEST(TraceReaderRobustness, ParsesItsOwnOutput) {
  const std::string bytes = valid_trace_bytes();
  TraceFile f;
  std::string err;
  ASSERT_TRUE(parse_binary_trace(bytes, &f, &err)) << err;
  ASSERT_EQ(f.runs.size(), 1u);
  EXPECT_EQ(f.runs[0].label, "adv");
  EXPECT_EQ(f.runs[0].nprocs, 2u);
  EXPECT_FALSE(f.runs[0].events.empty());
}

TEST(TraceReaderRobustness, EveryTruncationFailsCleanly) {
  const std::string bytes = valid_trace_bytes();
  ASSERT_GT(bytes.size(), 64u);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    TraceFile f;
    std::string err;
    EXPECT_FALSE(parse_binary_trace(bytes.substr(0, len), &f, &err))
        << "a " << len << "-byte prefix parsed as complete";
    EXPECT_FALSE(err.empty()) << len;
  }
}

TEST(TraceReaderRobustness, AbsurdRunCountIsRejectedBeforeAllocating) {
  std::string bytes = valid_trace_bytes();
  poke_u32(&bytes, kNrunsOff, 0xffffffffu);
  TraceFile f;
  std::string err;
  EXPECT_FALSE(parse_binary_trace(bytes, &f, &err));
  EXPECT_NE(err.find("run count"), std::string::npos) << err;
  EXPECT_NE(err.find("exceeds file size"), std::string::npos) << err;
}

TEST(TraceReaderRobustness, CorruptLabelLengthIsRejected) {
  std::string bytes = valid_trace_bytes();
  poke_u32(&bytes, kLabelLenOff, 0xfffffff0u);
  TraceFile f;
  std::string err;
  EXPECT_FALSE(parse_binary_trace(bytes, &f, &err));
  EXPECT_NE(err.find("label length"), std::string::npos) << err;
}

TEST(TraceReaderRobustness, AbsurdProcessorCountIsRejected) {
  for (std::uint32_t nprocs : {0u, 65u, 0xffffffffu}) {
    std::string bytes = valid_trace_bytes();
    poke_u32(&bytes, kNprocsOff, nprocs);
    TraceFile f;
    std::string err;
    EXPECT_FALSE(parse_binary_trace(bytes, &f, &err)) << nprocs;
    EXPECT_NE(err.find("processor count"), std::string::npos) << err;
  }
}

TEST(TraceReaderRobustness, AbsurdEventCountIsRejected) {
  std::string bytes = valid_trace_bytes();
  poke_u64(&bytes, kNeventsOff, 0xffffffffffffffffULL);
  TraceFile f;
  std::string err;
  EXPECT_FALSE(parse_binary_trace(bytes, &f, &err));
  EXPECT_NE(err.find("event count exceeds file size"), std::string::npos)
      << err;
}

TEST(TraceReaderRobustness, WrongVersionNamesBothVersions) {
  std::string bytes = valid_trace_bytes();
  poke_u32(&bytes, kVersionOff, 99);
  TraceFile f;
  std::string err;
  EXPECT_FALSE(parse_binary_trace(bytes, &f, &err));
  EXPECT_NE(err.find("99"), std::string::npos) << err;
  EXPECT_NE(err.find(std::to_string(trace::kBinaryTraceVersion)),
            std::string::npos)
      << err;
}

TEST(TraceReaderRobustness, V1MagicGetsTheMigrationHint) {
  std::string bytes = valid_trace_bytes();
  std::memcpy(bytes.data(), trace::kBinaryTraceMagicV1, 8);
  TraceFile f;
  std::string err;
  EXPECT_FALSE(parse_binary_trace(bytes, &f, &err));
  EXPECT_NE(err.find("OLDNTRC2"), std::string::npos) << err;
}

TEST(TraceReaderRobustness, GarbageMagicIsRejected) {
  TraceFile f;
  std::string err;
  EXPECT_FALSE(parse_binary_trace("GARBAGE!plus some trailing bytes", &f,
                                  &err));
  EXPECT_NE(err.find("bad magic"), std::string::npos) << err;
}

TEST(TraceReaderRobustness, OutOfRangeEventKindIsRejected) {
  std::string bytes = valid_trace_bytes();
  // First event record starts right after the run header; kind is the
  // 13th byte of the record (time u64 + proc u32 precede it... time u64,
  // proc u32, thread u64, then kind u8).
  const std::size_t first_record = kNeventsOff + 8;
  const std::size_t kind_off = first_record + 8 + 4 + 8;
  ASSERT_LT(kind_off, bytes.size());
  bytes[kind_off] = static_cast<char>(0xff);
  TraceFile f;
  std::string err;
  EXPECT_FALSE(parse_binary_trace(bytes, &f, &err));
  EXPECT_NE(err.find("out-of-range kind"), std::string::npos) << err;
}

}  // namespace
}  // namespace olden::analyze
