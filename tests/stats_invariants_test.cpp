// MachineStats structural invariants: unit tests for the counter
// relations, the Table-3 remote-miss percentage (which must not
// double-count an access that both revalidated and fetched), and
// whole-run checks that real machine runs keep the invariants.
#include <gtest/gtest.h>

#include "olden/olden.hpp"

namespace olden {
namespace {

MachineStats consistent_stats() {
  MachineStats s;
  s.cacheable_reads = 100;
  s.cacheable_reads_remote = 40;
  s.cache_hits = 30;
  s.cache_misses = 10;
  s.cacheable_writes = 50;
  s.cacheable_writes_remote = 20;
  s.timestamp_checks = 8;
  s.timestamp_stalls = 5;
  s.futurecalls = 6;
  s.futures_inlined = 4;
  s.futures_stolen = 2;
  s.touches_blocked = 3;
  return s;
}

TEST(StatsInvariants, ConsistentCountersPass) {
  consistent_stats().check_invariants();  // must not abort
}

TEST(StatsInvariants, EmptyStatsPass) {
  MachineStats{}.check_invariants();
}

// OLDEN_REQUIRE aborts with a diagnostic on stderr; each violated relation
// must be caught, not silently folded into a percentage.

using StatsInvariantsDeath = ::testing::Test;

TEST(StatsInvariantsDeath, HitMissPartitionViolated) {
  MachineStats s = consistent_stats();
  s.cache_hits += 1;  // hits + misses no longer equals remote reads
  EXPECT_DEATH(s.check_invariants(), "hit xor a miss");
}

TEST(StatsInvariantsDeath, RemoteReadsExceedTotal) {
  MachineStats s = consistent_stats();
  s.cacheable_reads_remote = s.cacheable_reads + 1;
  s.cache_hits = s.cacheable_reads_remote - s.cache_misses;
  EXPECT_DEATH(s.check_invariants(), "remote cacheable reads exceed");
}

TEST(StatsInvariantsDeath, RemoteWritesExceedTotal) {
  MachineStats s = consistent_stats();
  s.cacheable_writes_remote = s.cacheable_writes + 1;
  EXPECT_DEATH(s.check_invariants(), "remote cacheable writes exceed");
}

TEST(StatsInvariantsDeath, MoreStallsThanChecks) {
  MachineStats s = consistent_stats();
  s.timestamp_stalls = s.timestamp_checks + 1;
  EXPECT_DEATH(s.check_invariants(), "more stalled accesses");
}

TEST(StatsInvariantsDeath, FutureConsumedTwice) {
  MachineStats s = consistent_stats();
  s.futures_inlined = s.futurecalls;
  s.futures_stolen = 1;
  EXPECT_DEATH(s.check_invariants(), "consumed both inline and by stealing");
}

TEST(StatsInvariantsDeath, MoreBlockedTouchesThanFutures) {
  MachineStats s = consistent_stats();
  s.touches_blocked = s.futurecalls + 1;
  EXPECT_DEATH(s.check_invariants(), "more blocked touches");
}

TEST(StatsInvariantsDeath, ClassLedgerMustSumToAggregates) {
  MachineStats s = consistent_stats();
  s.fault_messages = 5;
  s.class_sent[static_cast<std::size_t>(MsgClass::kFill)] = 4;  // 4 != 5
  EXPECT_DEATH(s.check_invariants(), "per-class sends do not sum");
}

TEST(StatsInvariantsDeath, ClassRetriesMustSumToRetransmissions) {
  MachineStats s = consistent_stats();
  s.retransmissions = 2;
  s.class_retries[static_cast<std::size_t>(MsgClass::kTsCheck)] = 1;
  EXPECT_DEATH(s.check_invariants(), "per-class retries do not sum");
}

// --- remote_miss_percent -------------------------------------------------

TEST(StatsInvariants, RemoteMissPercentCountsStallsOnce) {
  MachineStats s;
  s.cacheable_reads = 100;
  s.cacheable_reads_remote = 50;
  s.cacheable_writes = 60;
  s.cacheable_writes_remote = 30;
  s.cache_hits = 40;
  s.cache_misses = 10;
  s.timestamp_checks = 20;
  // 6 accesses revalidated without fetching a line. Because stalls are
  // disjoint from misses by construction, the percentage is (10 + 6) / 80,
  // not (10 + 16) / 80 as the old double-counting formula produced.
  s.timestamp_stalls = 6;
  s.check_invariants();
  EXPECT_DOUBLE_EQ(s.remote_miss_percent(), 100.0 * 16.0 / 80.0);
}

TEST(StatsInvariants, RemoteMissPercentZeroWhenNoRemoteTraffic) {
  MachineStats s;
  s.cache_misses = 0;
  EXPECT_DOUBLE_EQ(s.remote_miss_percent(), 0.0);
}

// --- whole-run invariant checks ------------------------------------------

struct TNode {
  std::int64_t val;
  GPtr<TNode> left, right;
};
enum TSite : SiteId { kTVal, kTLeft, kTRight };

Task<GPtr<TNode>> build_tree(Machine& m, int depth, ProcId proc) {
  if (depth == 0) co_return GPtr<TNode>{};
  auto n = m.alloc<TNode>(proc);
  co_await wr(n, &TNode::val, std::int64_t{1}, kTVal);
  auto l = co_await build_tree(
      m, depth - 1, static_cast<ProcId>((proc * 2 + 1) % m.nprocs()));
  auto r = co_await build_tree(
      m, depth - 1, static_cast<ProcId>((proc * 2 + 2) % m.nprocs()));
  co_await wr(n, &TNode::left, l, kTLeft);
  co_await wr(n, &TNode::right, r, kTRight);
  co_return n;
}

Task<std::int64_t> tree_sum(Machine& m, GPtr<TNode> t) {
  if (!t) co_return 0;
  auto l = co_await rd(t, &TNode::left, kTLeft);
  auto r = co_await rd(t, &TNode::right, kTRight);
  auto fl = co_await futurecall(tree_sum(m, l));
  std::int64_t rs = co_await tree_sum(m, r);
  std::int64_t ls = co_await touch(fl);
  m.work(6);
  co_return ls + rs + co_await rd(t, &TNode::val, kTVal);
}

Task<std::int64_t> tree_root(Machine& m, int depth) {
  auto t = co_await build_tree(m, depth, 0);
  co_return co_await tree_sum(m, t);
}

class RunInvariants
    : public ::testing::TestWithParam<std::tuple<Coherence, Mechanism>> {};

TEST_P(RunInvariants, HoldAtQuiescence) {
  const auto [scheme, mech] = GetParam();
  Machine m({.nprocs = 8, .scheme = scheme});
  m.set_site_mechanisms({mech, mech, mech});
  auto r = run_program(m, tree_root(m, 9));
  EXPECT_EQ(r, (1 << 9) - 1);
  const MachineStats& s = m.stats();
  s.check_invariants();
  // At quiescence every future has been consumed exactly once.
  EXPECT_EQ(s.futures_inlined + s.futures_stolen, s.futurecalls);
  if (mech == Mechanism::kCache) {
    // A pure-caching program never migrates, so the remote-miss percentage
    // is meaningful and bounded.
    EXPECT_EQ(s.migrations, 0u);
    EXPECT_LE(s.remote_miss_percent(), 100.0);
  }
  if (scheme != Coherence::kBilateral) {
    // Timestamps exist only under the bilateral protocol.
    EXPECT_EQ(s.timestamp_checks, 0u);
    EXPECT_EQ(s.timestamp_stalls, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndMechanisms, RunInvariants,
    ::testing::Combine(::testing::Values(Coherence::kLocalKnowledge,
                                         Coherence::kEagerGlobal,
                                         Coherence::kBilateral),
                       ::testing::Values(Mechanism::kCache,
                                         Mechanism::kMigrate)));

}  // namespace
}  // namespace olden
