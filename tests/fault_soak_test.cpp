// Fault soak: sweep seeded fault schedules across every coherence scheme
// on two benchmarks and hold the plane to its two contracts —
//  * correctness: the checksum under any fault schedule equals the
//    fault-free checksum (the protocol recovers everything it loses),
//  * determinism: re-running the same (spec, seed) produces a
//    byte-identical binary trace, faults and retransmissions included.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "olden/bench/benchmark.hpp"
#include "olden/fault/fault_spec.hpp"
#include "olden/trace/observer.hpp"

namespace olden::bench {
namespace {

constexpr std::uint64_t kFaultSeeds[] = {1, 2, 3, 5, 8, 13, 21, 34};

class FaultSoak : public ::testing::TestWithParam<
                      std::tuple<const char*, Coherence>> {};

TEST_P(FaultSoak, ChecksumsAndTracesAreStableAcrossSeeds) {
  const auto [name, scheme] = GetParam();
  const Benchmark* b = find_benchmark(name);
  ASSERT_NE(b, nullptr);

  fault::FaultSpec spec;
  std::string err;
  ASSERT_TRUE(fault::parse_fault_spec(
      "drop=0.1,dup=0.05,delay=0.15:300,hiccup=0.02:150,timeout=4000", &spec,
      &err))
      << err;

  BenchConfig clean_cfg{.nprocs = 4, .scheme = scheme};
  clean_cfg.tiny = true;
  const BenchResult clean = b->run(clean_cfg);

  for (std::uint64_t seed : kFaultSeeds) {
    std::string bytes[2];
    for (int rerun = 0; rerun < 2; ++rerun) {
      trace::Observer obs;
      obs.set_trace_enabled(true);
      obs.begin_run("soak");
      BenchConfig cfg = clean_cfg;
      cfg.observer = &obs;
      cfg.faults = &spec;
      cfg.fault_seed = seed;
      const BenchResult r = b->run(cfg);
      EXPECT_EQ(r.checksum, clean.checksum)
          << name << " seed " << seed << " rerun " << rerun;
      bytes[rerun] = trace::binary_trace_bytes(obs);
    }
    EXPECT_EQ(bytes[0], bytes[1]) << name << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    TreeAddAndEm3d, FaultSoak,
    ::testing::Combine(::testing::Values("TreeAdd", "EM3D"),
                       ::testing::Values(Coherence::kLocalKnowledge,
                                         Coherence::kEagerGlobal,
                                         Coherence::kBilateral)));

// --- coherence-class soak --------------------------------------------------
//
// Same sweep, but the injector is restricted to the coherence message
// classes (fill, invalidate, ts_check): migrations and return stubs ride
// a perfect wire while every cache fill, invalidation push and timestamp
// round trip can drop, duplicate or straggle. The contracts are the same
// — fault-free checksums, and a clean drain (no pending protocol state
// left behind) after every seed.

class CoherenceFaultSoak : public ::testing::TestWithParam<
                               std::tuple<const char*, Coherence>> {};

TEST_P(CoherenceFaultSoak, ChecksumsInvariantAndProtocolDrainsClean) {
  const auto [name, scheme] = GetParam();
  const Benchmark* b = find_benchmark(name);
  ASSERT_NE(b, nullptr);

  fault::FaultSpec spec;
  std::string err;
  // The timeout must exceed the slowest fault-free round trip (a
  // migration ack, ~1770 cycles), or classes riding the perfect wire
  // would retransmit spuriously and trip the migration rows below.
  ASSERT_TRUE(fault::parse_fault_spec(
      "drop=0.15,dup=0.1,delay=0.25:700,timeout=2500,"
      "classes=fill:invalidate:ts_check",
      &spec, &err))
      << err;

  BenchConfig clean_cfg{.nprocs = 4, .scheme = scheme};
  clean_cfg.tiny = true;
  const BenchResult clean = b->run(clean_cfg);

  for (std::uint64_t seed : kFaultSeeds) {
    BenchConfig cfg = clean_cfg;
    cfg.faults = &spec;
    cfg.fault_seed = seed;
    const BenchResult r = b->run(cfg);
    EXPECT_EQ(r.checksum, clean.checksum) << name << " seed " << seed;
    // A run that terminates drained its protocol state (the machine
    // asserts this internally); the per-class ledger must agree that only
    // coherence classes were ever touched.
    const auto idx = [](MsgClass c) { return static_cast<std::size_t>(c); };
    EXPECT_EQ(r.stats.class_drops[idx(MsgClass::kMigration)], 0u);
    EXPECT_EQ(r.stats.class_dups[idx(MsgClass::kMigration)], 0u);
    EXPECT_EQ(r.stats.class_retries[idx(MsgClass::kMigration)], 0u);
    EXPECT_EQ(r.stats.class_drops[idx(MsgClass::kReturnStub)], 0u);
    EXPECT_EQ(r.stats.class_retries[idx(MsgClass::kReturnStub)], 0u);
    const std::uint64_t coherence_drops =
        r.stats.class_drops[idx(MsgClass::kFill)] +
        r.stats.class_drops[idx(MsgClass::kInvalidate)] +
        r.stats.class_drops[idx(MsgClass::kTsCheck)];
    EXPECT_EQ(r.stats.fault_drops, coherence_drops)
        << name << " seed " << seed;
    EXPECT_EQ(r.stats.class_retries[idx(MsgClass::kFill)] +
                  r.stats.class_retries[idx(MsgClass::kInvalidate)] +
                  r.stats.class_retries[idx(MsgClass::kTsCheck)],
              r.stats.retransmissions)
        << name << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    TreeAddAndEm3d, CoherenceFaultSoak,
    ::testing::Combine(::testing::Values("TreeAdd", "EM3D"),
                       ::testing::Values(Coherence::kLocalKnowledge,
                                         Coherence::kEagerGlobal,
                                         Coherence::kBilateral)));

// Breadth over depth: every benchmark in the suite, every scheme, one
// coherence-fault schedule — each cell's checksum must match the
// fault-free run and reproduce exactly on a rerun.
TEST(CoherenceFaultSuite, AllBenchmarksAllSchemesStayCorrect) {
  fault::FaultSpec spec;
  std::string err;
  ASSERT_TRUE(fault::parse_fault_spec(
      "drop=0.1,dup=0.05,delay=0.2:500,timeout=1200,"
      "classes=fill:invalidate:ts_check",
      &spec, &err))
      << err;
  for (const Benchmark* b : suite()) {
    for (Coherence scheme : {Coherence::kLocalKnowledge,
                             Coherence::kEagerGlobal, Coherence::kBilateral}) {
      BenchConfig cfg{.nprocs = 4, .scheme = scheme};
      cfg.tiny = true;
      const BenchResult clean = b->run(cfg);
      cfg.faults = &spec;
      cfg.fault_seed = 21;
      const BenchResult faulty = b->run(cfg);
      const BenchResult again = b->run(cfg);
      EXPECT_EQ(faulty.checksum, clean.checksum)
          << b->name() << " scheme " << static_cast<int>(scheme);
      EXPECT_EQ(again.checksum, faulty.checksum) << b->name();
      EXPECT_EQ(again.total_cycles, faulty.total_cycles)
          << b->name() << " scheme " << static_cast<int>(scheme);
    }
  }
}

}  // namespace
}  // namespace olden::bench
