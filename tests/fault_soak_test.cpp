// Fault soak: sweep seeded fault schedules across every coherence scheme
// on two benchmarks and hold the plane to its two contracts —
//  * correctness: the checksum under any fault schedule equals the
//    fault-free checksum (the protocol recovers everything it loses),
//  * determinism: re-running the same (spec, seed) produces a
//    byte-identical binary trace, faults and retransmissions included.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "olden/bench/benchmark.hpp"
#include "olden/fault/fault_spec.hpp"
#include "olden/trace/observer.hpp"

namespace olden::bench {
namespace {

constexpr std::uint64_t kFaultSeeds[] = {1, 2, 3, 5, 8, 13, 21, 34};

class FaultSoak : public ::testing::TestWithParam<
                      std::tuple<const char*, Coherence>> {};

TEST_P(FaultSoak, ChecksumsAndTracesAreStableAcrossSeeds) {
  const auto [name, scheme] = GetParam();
  const Benchmark* b = find_benchmark(name);
  ASSERT_NE(b, nullptr);

  fault::FaultSpec spec;
  std::string err;
  ASSERT_TRUE(fault::parse_fault_spec(
      "drop=0.1,dup=0.05,delay=0.15:300,hiccup=0.02:150,timeout=4000", &spec,
      &err))
      << err;

  BenchConfig clean_cfg{.nprocs = 4, .scheme = scheme};
  clean_cfg.tiny = true;
  const BenchResult clean = b->run(clean_cfg);

  for (std::uint64_t seed : kFaultSeeds) {
    std::string bytes[2];
    for (int rerun = 0; rerun < 2; ++rerun) {
      trace::Observer obs;
      obs.set_trace_enabled(true);
      obs.begin_run("soak");
      BenchConfig cfg = clean_cfg;
      cfg.observer = &obs;
      cfg.faults = &spec;
      cfg.fault_seed = seed;
      const BenchResult r = b->run(cfg);
      EXPECT_EQ(r.checksum, clean.checksum)
          << name << " seed " << seed << " rerun " << rerun;
      bytes[rerun] = trace::binary_trace_bytes(obs);
    }
    EXPECT_EQ(bytes[0], bytes[1]) << name << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    TreeAddAndEm3d, FaultSoak,
    ::testing::Combine(::testing::Values("TreeAdd", "EM3D"),
                       ::testing::Values(Coherence::kLocalKnowledge,
                                         Coherence::kEagerGlobal,
                                         Coherence::kBilateral)));

}  // namespace
}  // namespace olden::bench
