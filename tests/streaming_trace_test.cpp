// Equivalence guarantees for the streaming trace plane.
//
// Three promises are tested to the byte, because every downstream
// consumer (baseline diffs, olden-analyze, the schema checker) depends on
// streamed output being indistinguishable from the in-memory path:
//
//   * StreamingTraceSink writes the exact bytes binary_trace_bytes()
//     would have produced — including multi-run files and dropped-event
//     accounting at the retention limit — while the stats JSON document
//     is unchanged,
//   * Observer::adopt_runs_from reconstructs the serial record from
//     host-parallel worker observers (the bench_cell --jobs merge),
//     including when the cross-run retention limit truncates mid-suite,
//   * the streaming analyzer (TraceStream + StreamingRunAnalyzer)
//     produces a json_report byte-identical to read_binary_trace +
//     analyze_run, for healthy, truncated and fault-injected runs —
//     and fails loudly, never silently diverging, on streams that break
//     its invariants.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "olden/analyze/report.hpp"
#include "olden/analyze/streaming.hpp"
#include "olden/analyze/trace_reader.hpp"
#include "olden/bench/benchmark.hpp"
#include "olden/fault/fault_spec.hpp"
#include "olden/trace/observer.hpp"
#include "olden/trace/streaming_sink.hpp"

namespace olden::bench {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "olden_streaming_" + name;
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return {};
  std::string body;
  char buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) body.append(buf, got);
  std::fclose(f);
  return body;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
}

/// One (benchmark, scheme) cell into `obs`, the way bench_cell labels it.
void run_cell(trace::Observer& obs, const std::string& name, Coherence scheme,
              const fault::FaultSpec* faults = nullptr) {
  const Benchmark* b = find_benchmark(name);
  ASSERT_NE(b, nullptr) << name;
  obs.begin_run(name + "/stream-equiv");
  BenchConfig cfg{.nprocs = 4, .scheme = scheme};
  cfg.tiny = true;
  cfg.observer = &obs;
  cfg.faults = faults;
  (void)b->run(cfg);
}

struct Golden {
  std::string trace_bytes;
  std::string stats;
};

Golden run_in_memory(const std::vector<std::pair<std::string, Coherence>>& cells,
                     std::uint64_t limit) {
  trace::Observer obs;
  obs.set_trace_enabled(true);
  obs.set_event_limit(limit);
  for (const auto& [name, scheme] : cells) run_cell(obs, name, scheme);
  return {trace::binary_trace_bytes(obs), trace::stats_json(obs)};
}

Golden run_streamed(const std::vector<std::pair<std::string, Coherence>>& cells,
                    std::uint64_t limit, const std::string& path) {
  trace::Observer obs;
  obs.set_trace_enabled(true);
  obs.set_event_limit(limit);
  trace::StreamingTraceSink sink(path);
  EXPECT_TRUE(sink.ok()) << sink.error();
  obs.set_sink(&sink);
  for (const auto& [name, scheme] : cells) run_cell(obs, name, scheme);
  std::string err;
  EXPECT_TRUE(sink.finalize(&err)) << err;
  return {read_file(path), trace::stats_json(obs)};
}

class StreamingSinkEquivalence
    : public ::testing::TestWithParam<std::tuple<std::string, Coherence>> {};

TEST_P(StreamingSinkEquivalence, SinkBytesMatchInMemoryExport) {
  const auto [name, scheme] = GetParam();
  const std::vector<std::pair<std::string, Coherence>> cells = {{name, scheme}};
  const Golden mem = run_in_memory(cells, 1'000'000);
  // The sink path must be unique per (benchmark, scheme) cell: ctest -j
  // runs the parameterized cells concurrently, and two cells sharing a
  // file race each other's writes.
  const Golden str = run_streamed(
      cells, 1'000'000,
      temp_path("sink_" + name + "_" +
                std::to_string(static_cast<int>(scheme)) + ".bin"));

  EXPECT_EQ(mem.stats, str.stats);
  ASSERT_EQ(mem.trace_bytes.size(), str.trace_bytes.size());
  EXPECT_TRUE(mem.trace_bytes == str.trace_bytes)
      << "streamed trace bytes differ for " << name;
}

INSTANTIATE_TEST_SUITE_P(
    Cells, StreamingSinkEquivalence,
    ::testing::Combine(::testing::Values("TreeAdd", "MST", "Health"),
                       ::testing::Values(Coherence::kLocalKnowledge,
                                         Coherence::kEagerGlobal,
                                         Coherence::kBilateral)),
    [](const auto& info) {
      const Coherence scheme = std::get<1>(info.param);
      const char* s = scheme == Coherence::kLocalKnowledge ? "local"
                      : scheme == Coherence::kEagerGlobal  ? "global"
                                                           : "bilateral";
      return std::get<0>(info.param) + "_" + s;
    });

TEST(StreamingSink, MultiRunFileWithCrossRunTruncationMatches) {
  // A limit small enough that the suite runs dry mid-file: the first run
  // retains a prefix, later runs drop everything. The sink must write the
  // same retained events and the same events_dropped headers.
  const std::vector<std::pair<std::string, Coherence>> cells = {
      {"TreeAdd", Coherence::kLocalKnowledge},
      {"MST", Coherence::kEagerGlobal},
      {"Health", Coherence::kBilateral}};
  const Golden mem = run_in_memory(cells, 2'000);
  const Golden str = run_streamed(cells, 2'000, temp_path("trunc.bin"));

  EXPECT_EQ(mem.stats, str.stats);
  ASSERT_EQ(mem.trace_bytes.size(), str.trace_bytes.size());
  EXPECT_TRUE(mem.trace_bytes == str.trace_bytes);
}

/// The bench_cell --jobs merge: workers record into private observers
/// with the full retention limit, the main observer re-applies the
/// cross-run budget at adopt time. Byte equality with the serial record
/// is what makes --jobs output-invisible.
TEST(AdoptRuns, MergeReconstructsSerialRecord) {
  const std::vector<std::pair<std::string, Coherence>> cells = {
      {"TreeAdd", Coherence::kLocalKnowledge},
      {"MST", Coherence::kLocalKnowledge},
      {"Health", Coherence::kLocalKnowledge}};
  for (const std::uint64_t limit : {std::uint64_t{1'000'000},
                                    std::uint64_t{2'500}}) {
    const Golden serial = run_in_memory(cells, limit);

    trace::Observer main_obs;
    main_obs.set_trace_enabled(true);
    main_obs.set_event_limit(limit);
    for (const auto& [name, scheme] : cells) {
      trace::Observer worker;
      worker.set_trace_enabled(true);
      worker.set_event_limit(limit);  // full budget: superset of serial
      run_cell(worker, name, scheme);
      main_obs.adopt_runs_from(worker);
    }
    EXPECT_EQ(trace::stats_json(main_obs), serial.stats) << "limit " << limit;
    const std::string merged = trace::binary_trace_bytes(main_obs);
    ASSERT_EQ(merged.size(), serial.trace_bytes.size()) << "limit " << limit;
    EXPECT_TRUE(merged == serial.trace_bytes) << "limit " << limit;
  }
}

TEST(AdoptRuns, MergeIntoSinkMatchesSerialBytes) {
  // --jobs combined with --trace-stream: adopted runs are streamed at
  // merge time, so the file must still match the serial in-memory export.
  const std::vector<std::pair<std::string, Coherence>> cells = {
      {"TreeAdd", Coherence::kBilateral}, {"MST", Coherence::kBilateral}};
  const Golden serial = run_in_memory(cells, 3'000);

  const std::string path = temp_path("adopt_sink.bin");
  trace::Observer main_obs;
  main_obs.set_trace_enabled(true);
  main_obs.set_event_limit(3'000);
  trace::StreamingTraceSink sink(path);
  ASSERT_TRUE(sink.ok()) << sink.error();
  main_obs.set_sink(&sink);
  for (const auto& [name, scheme] : cells) {
    trace::Observer worker;
    worker.set_trace_enabled(true);
    worker.set_event_limit(3'000);
    run_cell(worker, name, scheme);
    main_obs.adopt_runs_from(worker);
  }
  std::string err;
  ASSERT_TRUE(sink.finalize(&err)) << err;
  EXPECT_EQ(trace::stats_json(main_obs), serial.stats);
  const std::string streamed = read_file(path);
  ASSERT_EQ(streamed.size(), serial.trace_bytes.size());
  EXPECT_TRUE(streamed == serial.trace_bytes);
}

/// End-to-end analyzer parity: the streaming pipeline's JSON document
/// must be byte-identical to the in-memory pipeline's, across a healthy
/// run, a truncated run, and a fault-injected run (which exercises the
/// retry buckets and the fault summary).
TEST(StreamingAnalyzer, JsonReportByteIdentical) {
  fault::FaultSpec spec;
  std::string err;
  ASSERT_TRUE(
      fault::parse_fault_spec("drop=0.05,dup=0.02,delay=0.1:800", &spec, &err))
      << err;

  trace::Observer obs;
  obs.set_trace_enabled(true);
  obs.set_event_limit(20'000);  // truncates the middle run
  run_cell(obs, "TreeAdd", Coherence::kLocalKnowledge);
  run_cell(obs, "MST", Coherence::kEagerGlobal);
  {
    const Benchmark* b = find_benchmark("TreeAdd");
    ASSERT_NE(b, nullptr);
    obs.begin_run("TreeAdd/faulty");
    BenchConfig cfg{.nprocs = 4, .scheme = Coherence::kBilateral};
    cfg.tiny = true;
    cfg.observer = &obs;
    cfg.faults = &spec;
    (void)b->run(cfg);
  }
  const std::string path = temp_path("analyze.bin");
  write_file(path, trace::binary_trace_bytes(obs));

  constexpr std::size_t kTopN = 10;
  analyze::TraceFile mem_file;
  ASSERT_TRUE(analyze::read_binary_trace(path, &mem_file, &err)) << err;
  std::vector<analyze::RunReport> mem_reports;
  for (const analyze::TraceRun& run : mem_file.runs) {
    mem_reports.push_back(analyze::analyze_run(run, kTopN));
  }
  const std::string mem_json = analyze::json_report(mem_file, mem_reports);

  analyze::TraceStream ts;
  ASSERT_TRUE(ts.open(path, &err)) << err;
  analyze::TraceFile str_file;
  str_file.version = ts.version();
  std::vector<analyze::RunReport> str_reports;
  analyze::TraceRun run;
  std::vector<trace::TraceEvent> batch;
  while (ts.next_run(&run, &err)) {
    analyze::StreamingRunAnalyzer an(run, kTopN);
    while (ts.next_events(&batch, 4'096, &err)) {
      for (const trace::TraceEvent& e : batch) ASSERT_TRUE(an.add(e))
          << an.error();
    }
    ASSERT_TRUE(err.empty()) << err;
    analyze::RunReport rep;
    ASSERT_TRUE(an.finish(&rep, &err)) << err;
    str_reports.push_back(std::move(rep));
    str_file.runs.push_back(run);  // header only, events empty
  }
  ASSERT_TRUE(err.empty()) << err;
  ASSERT_EQ(str_file.runs.size(), mem_file.runs.size());
  EXPECT_TRUE(mem_file.runs[1].truncated());  // the limit actually bit

  const std::string str_json = analyze::json_report(str_file, str_reports);
  EXPECT_EQ(mem_json, str_json);
}

TEST(TraceStream, RejectsCorruptInput) {
  std::string err;
  // Build one small valid file to corrupt.
  trace::Observer obs;
  obs.set_trace_enabled(true);
  obs.set_event_limit(64);
  run_cell(obs, "TreeAdd", Coherence::kLocalKnowledge);
  const std::string good = trace::binary_trace_bytes(obs);

  {
    analyze::TraceStream ts;
    EXPECT_FALSE(ts.open(temp_path("missing.bin"), &err));
    EXPECT_NE(err.find("cannot open"), std::string::npos) << err;
  }
  {
    const std::string path = temp_path("badmagic.bin");
    std::string bad = good;
    bad[0] = 'X';
    write_file(path, bad);
    analyze::TraceStream ts;
    EXPECT_FALSE(ts.open(path, &err));
    EXPECT_NE(err.find("bad magic"), std::string::npos) << err;
  }
  {
    const std::string path = temp_path("v1.bin");
    std::string v1 = good;
    std::memcpy(v1.data(), trace::kBinaryTraceMagicV1, 8);
    write_file(path, v1);
    analyze::TraceStream ts;
    EXPECT_FALSE(ts.open(path, &err));
    EXPECT_NE(err.find("OLDNTRC1"), std::string::npos) << err;
  }
  {
    // Chop the file mid-events: the per-run plausibility bound must
    // refuse the run instead of crashing or spinning.
    const std::string path = temp_path("chopped.bin");
    write_file(path, good.substr(0, good.size() - 10));
    analyze::TraceStream ts;
    ASSERT_TRUE(ts.open(path, &err)) << err;
    analyze::TraceRun run;
    EXPECT_FALSE(ts.next_run(&run, &err));
    EXPECT_NE(err.find("exceeds file size"), std::string::npos) << err;
  }
  {
    // Corrupt one event's kind byte past kNumEventKinds: next_events must
    // reject the record. Record layout: header(16) + label_len(4) + label
    // + run tail(28), then 68-byte records with the kind byte at +20.
    const std::string path = temp_path("badkind.bin");
    std::string bad = good;
    const std::uint32_t label_len =
        static_cast<std::uint8_t>(bad[16]) |
        static_cast<std::uint32_t>(static_cast<std::uint8_t>(bad[17])) << 8 |
        static_cast<std::uint32_t>(static_cast<std::uint8_t>(bad[18])) << 16 |
        static_cast<std::uint32_t>(static_cast<std::uint8_t>(bad[19])) << 24;
    const std::size_t first_record = 16 + 4 + label_len + 28;
    ASSERT_LT(first_record + 68, bad.size());
    bad[first_record + 20] = static_cast<char>(0xEE);
    write_file(path, bad);
    analyze::TraceStream ts;
    ASSERT_TRUE(ts.open(path, &err)) << err;
    analyze::TraceRun run;
    ASSERT_TRUE(ts.next_run(&run, &err)) << err;
    std::vector<trace::TraceEvent> batch;
    EXPECT_FALSE(ts.next_events(&batch, 4'096, &err));
    EXPECT_NE(err.find("out-of-range kind"), std::string::npos) << err;
  }
}

/// A streaming sink that dies (or a file copied mid-write) leaves the
/// back-patched header placeholders zeroed while the event records are
/// already on disk. Both readers must reject the disagreement instead of
/// silently analyzing the declared (empty or partial) prefix.
TEST(TraceReader, RejectsBackPatchedHeaderDisagreement) {
  std::string err;
  trace::Observer obs;
  obs.set_trace_enabled(true);
  obs.set_event_limit(64);
  run_cell(obs, "TreeAdd", Coherence::kLocalKnowledge);
  const std::string good = trace::binary_trace_bytes(obs);

  // File layout: magic(8) + version(4) + num_runs(4), then per run
  // label_len(4) + label + nprocs(4) + makespan(8) + dropped(8) +
  // nevents(8) + 68-byte records.
  const std::uint32_t label_len =
      static_cast<std::uint8_t>(good[16]) |
      static_cast<std::uint32_t>(static_cast<std::uint8_t>(good[17])) << 8 |
      static_cast<std::uint32_t>(static_cast<std::uint8_t>(good[18])) << 16 |
      static_cast<std::uint32_t>(static_cast<std::uint8_t>(good[19])) << 24;
  const std::size_t nevents_off = 16 + 4 + label_len + 4 + 8 + 8;

  const auto expect_rejected_by_both = [&](const std::string& name,
                                           const std::string& bytes) {
    const std::string path = temp_path(name);
    write_file(path, bytes);
    analyze::TraceFile file;
    EXPECT_FALSE(analyze::read_binary_trace(path, &file, &err)) << name;
    EXPECT_NE(err.find("disagree"), std::string::npos) << name << ": " << err;
    EXPECT_NE(err.find("v2"), std::string::npos) << name << ": " << err;

    analyze::TraceStream ts;
    ASSERT_TRUE(ts.open(path, &err)) << name << ": " << err;
    analyze::TraceRun run;
    std::vector<trace::TraceEvent> batch;
    bool stream_rejected = false;
    while (ts.next_run(&run, &err)) {
      while (ts.next_events(&batch, 4'096, &err)) {
      }
      if (!err.empty()) break;
    }
    stream_rejected = !err.empty();
    EXPECT_TRUE(stream_rejected) << name;
    EXPECT_NE(err.find("disagree"), std::string::npos) << name << ": " << err;
  };

  {
    // Unfinalized run header: nevents still holds the zero placeholder,
    // but the records were written. The old readers parsed "0 events" and
    // ignored the rest of the file.
    std::string bad = good;
    for (std::size_t i = 0; i < 8; ++i) bad[nevents_off + i] = 0;
    expect_rejected_by_both("zeroed_nevents.bin", bad);
  }
  {
    // Unfinalized file header: num_runs still zero, every run unclaimed.
    std::string bad = good;
    for (std::size_t i = 12; i < 16; ++i) bad[i] = 0;
    expect_rejected_by_both("zeroed_nruns.bin", bad);
  }
  {
    // Garbage appended past a perfectly finalized file.
    expect_rejected_by_both("appended.bin", good + std::string(13, '\xAB'));
  }

  // Control: the untouched bytes still parse in both pipelines.
  const std::string path = temp_path("backpatch_good.bin");
  write_file(path, good);
  analyze::TraceFile file;
  EXPECT_TRUE(analyze::read_binary_trace(path, &file, &err)) << err;
  analyze::TraceStream ts;
  ASSERT_TRUE(ts.open(path, &err)) << err;
  analyze::TraceRun run;
  std::vector<trace::TraceEvent> batch;
  while (ts.next_run(&run, &err)) {
    while (ts.next_events(&batch, 4'096, &err)) {
    }
    ASSERT_TRUE(err.empty()) << err;
  }
  EXPECT_TRUE(err.empty()) << err;
}

TEST(StreamingAnalyzer, RejectsInvariantViolations) {
  analyze::TraceRun header;
  header.label = "synthetic";
  header.nprocs = 2;
  header.makespan = 100;
  header.num_events = 2;

  auto event = [](std::uint64_t id, std::uint64_t parent) {
    trace::TraceEvent e;
    e.time = 10 * (id + 1);
    e.proc = 0;
    e.kind = trace::EventKind::kCacheMiss;
    e.id = id;
    e.parent = parent;
    return e;
  };

  {
    // Non-dense ids: record 0 claims id 5.
    analyze::StreamingRunAnalyzer an(header, 10);
    EXPECT_FALSE(an.add(event(5, trace::kNoEvent)));
    EXPECT_NE(an.error().find("dense"), std::string::npos) << an.error();
  }
  {
    // Forward parent link: event 0 points at event 1.
    analyze::StreamingRunAnalyzer an(header, 10);
    EXPECT_FALSE(an.add(event(0, 1)));
    EXPECT_NE(an.error().find("forward parent"), std::string::npos)
        << an.error();
  }
  {
    // Stream ends short of the header's event count.
    analyze::StreamingRunAnalyzer an(header, 10);
    EXPECT_TRUE(an.add(event(0, trace::kNoEvent)));
    analyze::RunReport rep;
    std::string err;
    EXPECT_FALSE(an.finish(&rep, &err));
    EXPECT_NE(err.find("ended at 1 of 2"), std::string::npos) << err;
  }
}

}  // namespace
}  // namespace olden::bench
