// The adaptive scheme's runtime machinery (--scheme=adaptive).
//
// Covers the pieces the equivalence suite cannot see: that the decision
// table actually flips a site whose windowed access mix fails the paper's
// bars, that hysteresis delays a flip by the configured number of voting
// windows, that every flip lands in the trace as a kSchemeFlip event whose
// causal links chain the run's flips together and parent the drain's
// invalidations, and that the flip counters exported to stats agree with
// the event stream and with Machine::scheme_flip_log().
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "olden/bench/benchmark.hpp"
#include "olden/olden.hpp"
#include "olden/trace/observer.hpp"

namespace olden {
namespace {

struct Node {
  std::int64_t val;
  GPtr<Node> next;
  /// Pads each node past a cache line so consecutive list nodes never
  /// share one: without this, four nodes pack per line and the walk's
  /// line reuse keeps the hit rate above the 0.50 floor — no site votes.
  std::int64_t pad[30];
};
enum Site : SiteId { kVal, kNext, kHop, kNumSites };

/// Builds an n-node list striped round-robin over the processors, then
/// walks it once. From the walker's seat on proc 0, 1/nprocs of the
/// dereferences are local and (first walk) every cached read of a fresh
/// line misses — exactly the mix the decision table must catch: low
/// affinity and a hit rate below the 0.50 floor.
Task<std::int64_t> cold_walk(Machine& m, int n) {
  GPtr<Node> head, tail;
  for (int i = 0; i < n; ++i) {
    auto node = m.alloc<Node>(static_cast<ProcId>(i % m.nprocs()));
    co_await wr(node, &Node::val, std::int64_t{i}, kVal);
    if (tail) {
      co_await wr(tail, &Node::next, node, kNext);
    } else {
      head = node;
    }
    tail = node;
  }
  std::int64_t acc = 0;
  GPtr<Node> l = head;
  while (l) {
    acc += co_await rd(l, &Node::val, kVal);
    l = co_await rd(l, &Node::next, kNext);
    m.work(10);
  }
  co_return acc;
}

TEST(AdaptiveRuntime, ColdRemoteWalkFlipsACacheSiteToMigration) {
  RunConfig cfg{.nprocs = 4, .scheme = Coherence::kEagerGlobal};
  cfg.adapt.interval = 2048;
  cfg.adapt.hysteresis = 1;
  cfg.adapt.min_samples = 8;
  Machine m(cfg);
  m.set_site_mechanisms({Mechanism::kCache, Mechanism::kCache});
  const int n = 256;
  EXPECT_EQ(run_program(m, cold_walk(m, n)),
            static_cast<std::int64_t>(n) * (n - 1) / 2);

  const MachineStats& s = m.stats();
  EXPECT_GT(s.flips_to_migrate, 0u);
  EXPECT_EQ(s.flips_to_cache + s.flips_to_migrate, s.scheme_flips);
  // The flip log mirrors the counters, in time order.
  ASSERT_EQ(m.scheme_flip_log().size(), s.scheme_flips);
  std::uint64_t to_migrate = 0;
  Cycles prev = 0;
  for (const Machine::FlipRecord& f : m.scheme_flip_log()) {
    EXPECT_GE(f.time, prev);
    prev = f.time;
    if (f.to == Mechanism::kMigrate) ++to_migrate;
    // A flipped site's mechanism table reflects its latest flip... unless
    // a later flip reversed it, which the log replay would show; with
    // hysteresis 1 and a one-way workload no site flips back here.
    EXPECT_EQ(m.mechanism(f.site), f.to);
  }
  EXPECT_EQ(to_migrate, s.flips_to_migrate);
}

/// Like cold_walk, but the walker bounces between two anchor objects on
/// distinct processors through a migrate-mechanism site before every list
/// step. Each hop suspends the coroutine, so the event heap — and the
/// adapt tick riding it — keeps pace with the processor clocks instead of
/// the whole walk collapsing into one stale end-of-run window. (cold_walk
/// never suspends: cache-site accesses complete synchronously fault-free,
/// so exactly one tick ever fires there.)
Task<std::int64_t> hop_walk(Machine& m, int n) {
  auto a0 = m.alloc<Node>(0);
  auto a1 = m.alloc<Node>(static_cast<ProcId>(1 % m.nprocs()));
  co_await wr(a0, &Node::val, std::int64_t{0}, kHop);
  co_await wr(a1, &Node::val, std::int64_t{0}, kHop);
  GPtr<Node> head, tail;
  for (int i = 0; i < n; ++i) {
    auto node = m.alloc<Node>(static_cast<ProcId>(i % m.nprocs()));
    co_await wr(node, &Node::val, std::int64_t{i}, kVal);
    if (tail) {
      co_await wr(tail, &Node::next, node, kNext);
    } else {
      head = node;
    }
    tail = node;
  }
  std::int64_t acc = 0;
  GPtr<Node> l = head;
  bool odd = false;
  while (l) {
    (void)co_await rd(odd ? a1 : a0, &Node::val, kHop);
    odd = !odd;
    acc += co_await rd(l, &Node::val, kVal);
    l = co_await rd(l, &Node::next, kNext);
    m.work(10);
  }
  co_return acc;
}

TEST(AdaptiveRuntime, HysteresisDelaysTheFlipByWholeWindows) {
  // Same access mix, hysteresis 3: the earliest possible flip moves from
  // the first voting window to the third. Compare first-flip times. The
  // interval must be wide enough that every walk-phase window collects
  // min_samples accesses of the missing site — each step costs a whole
  // migration round trip (~2k cycles), so a 4096-cycle window would see
  // only 2-3 samples, never vote, and reset the streak every tick.
  constexpr Cycles kInterval = 32768;
  Cycles first_flip[2] = {0, 0};
  const std::uint32_t hysteresis[2] = {1, 3};
  for (int i = 0; i < 2; ++i) {
    RunConfig cfg{.nprocs = 4, .scheme = Coherence::kEagerGlobal};
    cfg.adapt.interval = kInterval;
    cfg.adapt.hysteresis = hysteresis[i];
    cfg.adapt.min_samples = 4;
    Machine m(cfg);
    m.set_site_mechanisms(
        {Mechanism::kCache, Mechanism::kCache, Mechanism::kMigrate});
    (void)run_program(m, hop_walk(m, 512));
    ASSERT_FALSE(m.scheme_flip_log().empty()) << "hysteresis " << hysteresis[i];
    first_flip[i] = m.scheme_flip_log().front().time;
  }
  // Two extra voting windows = two extra intervals, at minimum.
  EXPECT_GE(first_flip[1], first_flip[0] + 2 * kInterval);
}

TEST(AdaptiveRuntime, FlipEventsChainCausallyAndMatchCounters) {
  const bench::Benchmark* b = bench::find_benchmark("EM3D");
  ASSERT_NE(b, nullptr);
  trace::Observer obs;
  obs.set_trace_enabled(true);
  obs.begin_run("adaptive/em3d");
  bench::BenchConfig cfg{.nprocs = 8, .scheme = Coherence::kEagerGlobal};
  cfg.tiny = true;
  cfg.observer = &obs;
  cfg.adapt.interval = 256;
  cfg.adapt.hysteresis = 1;
  cfg.adapt.min_samples = 1;
  const bench::BenchResult r = b->run(cfg);
  ASSERT_GT(r.stats.scheme_flips, 0u);

  ASSERT_EQ(obs.runs().size(), 1u);
  const trace::RunRecord& run = obs.runs()[0];
  ASSERT_EQ(run.events_dropped, 0u);

  std::uint64_t flips = 0, to_cache = 0, to_migrate = 0;
  std::uint64_t drain_children = 0;
  std::uint64_t prev_flip = trace::kNoEvent;
  std::uint64_t flip_chain = trace::kNoChain;
  for (const trace::TraceEvent& e : run.events) {
    if (e.kind == trace::EventKind::kSchemeFlip) {
      ++flips;
      if (e.arg0 != 0) {
        ++to_cache;
      } else {
        ++to_migrate;
      }
      EXPECT_NE(e.site, trace::kNoSite);
      // Flips share one causal chain; each parents on its predecessor.
      EXPECT_EQ(e.parent, prev_flip);
      if (flip_chain == trace::kNoChain) {
        flip_chain = e.chain;
      } else {
        EXPECT_EQ(e.chain, flip_chain);
      }
      prev_flip = e.id;
    } else if (e.kind == trace::EventKind::kLineInvalidate &&
               e.parent != trace::kNoEvent &&
               run.events[e.parent].kind == trace::EventKind::kSchemeFlip) {
      // A flip drain's invalidations parent on the flip that caused them.
      ++drain_children;
      EXPECT_EQ(e.chain, flip_chain);
    }
  }
  EXPECT_EQ(flips, r.stats.scheme_flips);
  EXPECT_EQ(to_cache, r.stats.flips_to_cache);
  EXPECT_EQ(to_migrate, r.stats.flips_to_migrate);
  // The fault-free drain emits one kLineInvalidate per (page, sharer)
  // pair it invalidated, so the message counter bounds the child count.
  EXPECT_EQ(drain_children, r.stats.flip_drain_messages);
  if (r.stats.flip_drain_lines > 0) {
    EXPECT_GT(drain_children, 0u);
  }
  // The run record names the scheme the cells actually ran.
  EXPECT_EQ(run.scheme, "adaptive");
}

}  // namespace
}  // namespace olden
