// Table-driven coverage of the analyze/classify.hpp classifiers.
//
// The classifiers are the single point where both critical-path
// extractors (in-memory and streaming) and both diff-profile builders
// agree on what an edge or event means; a silent fall-through to the
// default case for a newly added EventKind would skew every report. The
// tables below therefore enumerate all kNumEventKinds kinds explicitly —
// adding a kind without deciding its classification fails these tests
// (kExpectations must grow), not just a code review.
#include <gtest/gtest.h>

#include <cstddef>

#include "olden/analyze/classify.hpp"
#include "olden/trace/trace.hpp"

namespace olden::analyze::classify {
namespace {

using trace::CycleBucket;
using trace::EventKind;

struct KindExpectation {
  EventKind kind;
  /// dst_bucket(kind, arg0 > 0) for both arg0 signs.
  CycleBucket dst_arg0_zero;
  CycleBucket dst_arg0_pos;
  /// Does page_of forward arg0 as a page id (vs kNoPage)?
  bool carries_page;
};

// One row per EventKind, in enum order. kNumEventKinds is re-checked
// below so the table cannot silently fall behind the enum.
constexpr KindExpectation kExpectations[] = {
    {EventKind::kMigrationDepart, CycleBucket::kCompute, CycleBucket::kCompute,
     false},
    {EventKind::kMigrationArrive, CycleBucket::kIdle, CycleBucket::kIdle,
     false},
    {EventKind::kReturnStubSend, CycleBucket::kCompute, CycleBucket::kCompute,
     false},
    {EventKind::kReturnStubArrive, CycleBucket::kIdle, CycleBucket::kIdle,
     false},
    {EventKind::kCacheHit, CycleBucket::kCompute, CycleBucket::kCompute,
     true},
    {EventKind::kCacheMiss, CycleBucket::kCacheStall,
     CycleBucket::kCacheStall, true},
    {EventKind::kCacheLineFill, CycleBucket::kCacheStall,
     CycleBucket::kCacheStall, true},
    {EventKind::kLineInvalidate, CycleBucket::kCoherence,
     CycleBucket::kCoherence, true},
    // arg0 = lines dropped: a flush that dropped nothing did no coherence
    // work, and its arg0 is a count, never a page id.
    {EventKind::kCacheFlush, CycleBucket::kCompute, CycleBucket::kCoherence,
     false},
    {EventKind::kMarkSuspect, CycleBucket::kCompute, CycleBucket::kCoherence,
     false},
    {EventKind::kTimestampCheck, CycleBucket::kCoherence,
     CycleBucket::kCoherence, true},
    {EventKind::kFutureCreate, CycleBucket::kCompute, CycleBucket::kCompute,
     false},
    {EventKind::kFutureSteal, CycleBucket::kIdle, CycleBucket::kIdle, false},
    {EventKind::kTouchBlock, CycleBucket::kCompute, CycleBucket::kCompute,
     false},
    {EventKind::kFutureResolve, CycleBucket::kCompute, CycleBucket::kCompute,
     false},
    // Fault plane: arg0 carries processor / cycle payloads, not pages.
    {EventKind::kFaultDrop, CycleBucket::kIdle, CycleBucket::kIdle, false},
    {EventKind::kFaultDelay, CycleBucket::kIdle, CycleBucket::kIdle, false},
    {EventKind::kFaultDuplicate, CycleBucket::kIdle, CycleBucket::kIdle,
     false},
    {EventKind::kRetransmit, CycleBucket::kRetry, CycleBucket::kRetry, false},
    {EventKind::kDupSuppressed, CycleBucket::kIdle, CycleBucket::kIdle,
     false},
    {EventKind::kHiccup, CycleBucket::kIdle, CycleBucket::kIdle, false},
    // Coherence wire messages: all carry the page in arg0. Fills are part
    // of servicing a miss; invalidations and timestamp checks are
    // coherence work; the ack closing a push is protocol overhead.
    {EventKind::kFillRequest, CycleBucket::kCacheStall,
     CycleBucket::kCacheStall, true},
    {EventKind::kFillReply, CycleBucket::kCacheStall,
     CycleBucket::kCacheStall, true},
    {EventKind::kInvalidatePush, CycleBucket::kCoherence,
     CycleBucket::kCoherence, true},
    {EventKind::kInvalidateAck, CycleBucket::kRetry, CycleBucket::kRetry,
     true},
    {EventKind::kTsCheckRequest, CycleBucket::kCoherence,
     CycleBucket::kCoherence, true},
    {EventKind::kTsCheckReply, CycleBucket::kCoherence,
     CycleBucket::kCoherence, true},
    // An adaptive flip's cost is its drain — coherence work. arg0 is the
    // flip direction flag, never a page id.
    {EventKind::kSchemeFlip, CycleBucket::kCoherence, CycleBucket::kCoherence,
     false},
};

// The compile-time guard: a new EventKind fails the build here until a
// row is added above.
static_assert(std::size(kExpectations) == trace::kNumEventKinds,
              "every EventKind needs a classification expectation — "
              "extend kExpectations (and classify.hpp, if the default "
              "case is wrong for the new kind)");

TEST(Classify, EveryKindHasTheExpectedDstBucket) {
  for (std::size_t i = 0; i < std::size(kExpectations); ++i) {
    const KindExpectation& e = kExpectations[i];
    // The table must stay in enum order, or a misaligned row would make
    // two kinds vouch for each other.
    ASSERT_EQ(static_cast<std::size_t>(e.kind), i);
    EXPECT_EQ(dst_bucket(e.kind, false), e.dst_arg0_zero)
        << trace::to_string(e.kind);
    EXPECT_EQ(dst_bucket(e.kind, true), e.dst_arg0_pos)
        << trace::to_string(e.kind);
  }
}

TEST(Classify, EveryKindHasTheExpectedPageAttribution) {
  constexpr std::uint64_t kPage = 0x1234;
  for (const KindExpectation& e : kExpectations) {
    EXPECT_EQ(page_of(e.kind, kPage), e.carries_page ? kPage : kNoPage)
        << trace::to_string(e.kind);
  }
  // The sentinel round-trips: an unpaged kind returns kNoPage whatever
  // arg0 holds, including kNoPage itself on a paged kind.
  EXPECT_EQ(page_of(EventKind::kCacheFlush, kNoPage), kNoPage);
  EXPECT_EQ(page_of(EventKind::kCacheHit, 0), 0u);
}

TEST(Classify, ChainBucketSourceOverridesDestination) {
  // After an event that removed the running thread from the processor,
  // the gap to whatever follows is idle no matter the destination.
  constexpr EventKind kDeschedulers[] = {EventKind::kTouchBlock,
                                         EventKind::kMigrationDepart,
                                         EventKind::kReturnStubSend};
  for (const EventKind src : kDeschedulers) {
    for (const KindExpectation& e : kExpectations) {
      EXPECT_EQ(chain_bucket(src, e.kind, true), CycleBucket::kIdle)
          << trace::to_string(src) << " -> " << trace::to_string(e.kind);
    }
  }
  // Any other source defers to the destination's own bucket.
  for (const KindExpectation& e : kExpectations) {
    EXPECT_EQ(chain_bucket(EventKind::kCacheHit, e.kind, false),
              e.dst_arg0_zero)
        << trace::to_string(e.kind);
    EXPECT_EQ(chain_bucket(EventKind::kCacheHit, e.kind, true), e.dst_arg0_pos)
        << trace::to_string(e.kind);
  }
}

TEST(Classify, CausalBucketCoversEveryDestinationKind) {
  for (const KindExpectation& e : kExpectations) {
    const CycleBucket from_create =
        causal_bucket(EventKind::kFutureCreate, e.kind, false);
    switch (e.kind) {
      // Transit edges: depart -> arrive is migration regardless of source.
      case EventKind::kMigrationArrive:
      case EventKind::kReturnStubArrive:
        EXPECT_EQ(from_create, CycleBucket::kMigration)
            << trace::to_string(e.kind);
        break;
      // Wire-fighting edges are retry time.
      case EventKind::kRetransmit:
      case EventKind::kFaultDrop:
      case EventKind::kFaultDelay:
      case EventKind::kFaultDuplicate:
      case EventKind::kDupSuppressed:
        EXPECT_EQ(from_create, CycleBucket::kRetry)
            << trace::to_string(e.kind);
        break;
      // An idle steal waited for the continuation to age in the list.
      case EventKind::kFutureSteal:
        EXPECT_EQ(from_create, CycleBucket::kIdle);
        break;
      default:
        EXPECT_EQ(from_create, e.dst_arg0_zero) << trace::to_string(e.kind);
        break;
    }
  }
  // The resolve-source overrides: a wake-up waited on the resolution
  // message; a resolve-created steal likewise.
  EXPECT_EQ(causal_bucket(EventKind::kFutureResolve, EventKind::kCacheHit,
                          false),
            CycleBucket::kMigration);
  EXPECT_EQ(causal_bucket(EventKind::kFutureResolve, EventKind::kFutureSteal,
                          false),
            CycleBucket::kMigration);
  EXPECT_EQ(causal_bucket(EventKind::kFutureCreate, EventKind::kFutureSteal,
                          false),
            CycleBucket::kIdle);
}

}  // namespace
}  // namespace olden::analyze::classify
