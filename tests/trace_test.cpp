// Unit tests for the observability layer: histogram bucketing edges, the
// Chrome trace_event JSON export (parsed back by a strict JSON checker),
// the binary event log framing, the stats document, and the exhaustiveness
// of the per-processor cycle accounting.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>

#include "olden/olden.hpp"
#include "olden/trace/observer.hpp"

namespace olden {
namespace {

using trace::Histogram;

// --- histogram bucketing -----------------------------------------------

TEST(Histogram, ZeroGoesToBucketZeroOnly) {
  Histogram h;
  h.record(0);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, PowerOfTwoBoundaries) {
  // Bucket b >= 1 holds [2^(b-1), 2^b): 1 -> bucket 1, 2..3 -> bucket 2,
  // 4..7 -> bucket 3, and a value on a power of two starts a new bucket.
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(7), 3u);
  EXPECT_EQ(Histogram::bucket_of(8), 4u);
  EXPECT_EQ(Histogram::bucket_of((1ull << 32) - 1), 32u);
  EXPECT_EQ(Histogram::bucket_of(1ull << 32), 33u);
}

TEST(Histogram, MaxValueLandsInLastBucket) {
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(Histogram::bucket_of(kMax), Histogram::kBucketCount - 1);
  Histogram h;
  h.record(kMax);
  EXPECT_EQ(h.bucket_count(Histogram::kBucketCount - 1), 1u);
  EXPECT_EQ(h.max(), kMax);
  EXPECT_EQ(h.sum(), kMax);
}

TEST(Histogram, BucketBoundsAreConsistent) {
  // Every bucket's [lo, hi] range must map back to the same bucket, and
  // ranges must tile the u64 domain without gaps.
  for (std::size_t b = 0; b < Histogram::kBucketCount; ++b) {
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_lo(b)), b) << b;
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_hi(b)), b) << b;
    if (b + 1 < Histogram::kBucketCount) {
      EXPECT_EQ(Histogram::bucket_hi(b) + 1, Histogram::bucket_lo(b + 1)) << b;
    }
  }
  EXPECT_EQ(Histogram::bucket_hi(Histogram::kBucketCount - 1),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(Histogram, AggregatesTrackRecordedValues) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  for (std::uint64_t v : {5u, 9u, 1u, 100u}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 115u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 115.0 / 4.0);
}

// --- a strict JSON well-formedness checker ------------------------------
//
// Exports are consumed by Perfetto and external tooling, so the tests hold
// them to real JSON grammar, not substring checks. This is a minimal
// recursive-descent validator (objects, arrays, strings with escapes,
// numbers, true/false/null).

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(s_[pos_])) return false;
          }
        } else if (std::strchr("\"\\/bfnrt", e) == nullptr) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(peek())) ++pos_;
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(peek())) return false;
      while (std::isdigit(peek())) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(peek())) return false;
      while (std::isdigit(peek())) ++pos_;
    }
    return pos_ > start && s_[start] != '-' ? true : pos_ > start + 1;
  }

  bool literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n' ||
                                s_[pos_] == '\t' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// --- a small observed program -------------------------------------------

struct Node {
  std::int64_t val;
  GPtr<Node> next;
};
enum Site : SiteId { kVal, kNext, kNumSites };

Task<std::int64_t> walk_root(Machine& m, int n) {
  GPtr<Node> head, tail;
  for (int i = 0; i < n; ++i) {
    auto node = m.alloc<Node>(static_cast<ProcId>(i % m.nprocs()));
    co_await wr(node, &Node::val, std::int64_t{i}, kVal);
    if (tail) {
      co_await wr(tail, &Node::next, node, kNext);
    } else {
      head = node;
    }
    tail = node;
  }
  std::int64_t acc = 0;
  GPtr<Node> l = head;
  while (l) {
    acc += co_await rd(l, &Node::val, kVal);
    l = co_await rd(l, &Node::next, kNext);
    m.work(10);
  }
  co_return acc;
}

std::int64_t run_observed(trace::Observer& obs, ProcId procs,
                          Mechanism mech = Mechanism::kCache) {
  Machine m({.nprocs = procs, .observer = &obs});
  m.set_site_mechanisms({mech, mech});
  return run_program(m, walk_root(m, 64));
}

// --- exports -------------------------------------------------------------

TEST(TraceExport, ChromeTraceIsWellFormedJson) {
  trace::Observer obs;
  obs.set_trace_enabled(true);
  obs.begin_run("walk \"quoted\"\n");  // exercise string escaping
  run_observed(obs, 4);
  const std::string json = trace::chrome_trace_json(obs);
  EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);
  // One process per run, one named track per virtual processor.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"proc 3\""), std::string::npos);
  EXPECT_NE(json.find("\"cache_miss\""), std::string::npos);
}

TEST(TraceExport, ChromeTraceWithMigrationSlices) {
  trace::Observer obs;
  obs.set_trace_enabled(true);
  obs.begin_run("migrate-walk");
  run_observed(obs, 4, Mechanism::kMigrate);
  const std::string json = trace::chrome_trace_json(obs);
  EXPECT_TRUE(JsonChecker(json).valid());
  // Migration transit renders as "X" duration slices.
  EXPECT_NE(json.find("\"migration\",\"ph\":\"X\""), std::string::npos);
}

TEST(TraceExport, ChromeTraceEmitsCausalFlowArrows) {
  trace::Observer obs;
  obs.set_trace_enabled(true);
  obs.begin_run("flow-walk");
  run_observed(obs, 4, Mechanism::kMigrate);
  const std::string json = trace::chrome_trace_json(obs);
  EXPECT_TRUE(JsonChecker(json).valid());
  // Cross-processor parent links render as Perfetto flow pairs: an "s"
  // (start) half at the parent and an "f" half bound to the child.
  EXPECT_NE(json.find("\"cat\":\"causal\",\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"causal\",\"ph\":\"f\",\"bp\":\"e\""),
            std::string::npos);
}

TEST(TraceEvents, CausalFieldsThreadTheRun) {
  trace::Observer obs;
  obs.set_trace_enabled(true);
  obs.begin_run("causal-walk");
  run_observed(obs, 4, Mechanism::kMigrate);
  ASSERT_EQ(obs.runs().size(), 1u);
  const trace::RunRecord& run = obs.runs()[0];
  ASSERT_GT(run.events.size(), 2u);
  // Emission-order ids: strictly increasing, and with nothing dropped,
  // dense from zero.
  for (std::size_t i = 0; i < run.events.size(); ++i) {
    EXPECT_EQ(run.events[i].id, i);
  }
  // Every migration arrival parents on a migration departure, and the
  // link carries the chain across processors.
  std::size_t arrivals = 0;
  for (const trace::TraceEvent& e : run.events) {
    EXPECT_NE(e.chain, trace::kNoChain);
    if (e.kind != trace::EventKind::kMigrationArrive) continue;
    ++arrivals;
    ASSERT_NE(e.parent, trace::kNoEvent);
    const trace::TraceEvent& dep = run.events[e.parent];
    EXPECT_EQ(dep.kind, trace::EventKind::kMigrationDepart);
    EXPECT_EQ(dep.chain, e.chain);
    EXPECT_NE(dep.proc, e.proc);
  }
  EXPECT_GT(arrivals, 0u);
}

TEST(TraceExport, EmptyObserverStillExportsValidDocuments) {
  trace::Observer obs;
  EXPECT_TRUE(JsonChecker(trace::chrome_trace_json(obs)).valid());
  EXPECT_TRUE(JsonChecker(trace::stats_json(obs)).valid());
}

TEST(TraceExport, StatsJsonIsWellFormedAndCarriesSchema) {
  trace::Observer obs;
  obs.begin_run("walk/p=4", {{"benchmark", "walk"}});
  run_observed(obs, 4);
  const std::string json = trace::stats_json(obs);
  EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"schema_version\":5"), std::string::npos);
  EXPECT_NE(json.find("\"fault_classes\""), std::string::npos);
  EXPECT_NE(json.find("\"scheme_flips\""), std::string::npos);
  EXPECT_NE(json.find("\"coherence_requests\""), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"walk/p=4\""), std::string::npos);
  EXPECT_NE(json.find("\"benchmark\":\"walk\""), std::string::npos);
  EXPECT_NE(json.find("\"makespan_cycles\""), std::string::npos);
  EXPECT_NE(json.find("\"timestamp_stalls\""), std::string::npos);
  EXPECT_NE(json.find("\"breakdown\""), std::string::npos);
}

TEST(TraceExport, BinaryLogFraming) {
  trace::Observer obs;
  obs.set_trace_enabled(true);
  obs.begin_run("bin");
  run_observed(obs, 2);
  ASSERT_EQ(obs.runs().size(), 1u);
  const std::size_t n_events = obs.runs()[0].events.size();
  ASSERT_GT(n_events, 0u);

  const std::string path = ::testing::TempDir() + "olden_trace_test.bin";
  std::string err;
  ASSERT_TRUE(trace::write_binary_trace(obs, path, &err)) << err;

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string body;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) body.append(buf, got);
  std::fclose(f);
  std::remove(path.c_str());

  // magic + u32 version + u32 run count + (u32 label len + label +
  // u32 nprocs + u64 makespan + u64 dropped + u64 event count + records).
  ASSERT_GE(body.size(), 16u);
  EXPECT_EQ(std::memcmp(body.data(), trace::kBinaryTraceMagic, 8), 0);
  const std::size_t expect = 16 + 4 + 3 /* "bin" */ + 4 + 8 + 8 + 8 +
                             n_events * trace::kBinaryRecordBytes;
  EXPECT_EQ(body.size(), expect);
  // The on-disk bytes are exactly what binary_trace_bytes returns.
  EXPECT_EQ(body, trace::binary_trace_bytes(obs));
}

TEST(TraceExport, EventLimitCountsDrops) {
  trace::Observer obs;
  obs.set_trace_enabled(true);
  obs.set_event_limit(10);
  obs.begin_run("limited");
  run_observed(obs, 4);
  ASSERT_EQ(obs.runs().size(), 1u);
  EXPECT_EQ(obs.runs()[0].events.size(), 10u);
  EXPECT_GT(obs.runs()[0].events_dropped, 0u);
  // Per-kind counts keep counting past the retention limit.
  std::uint64_t counted = 0;
  for (std::uint64_t c : obs.runs()[0].event_counts) counted += c;
  EXPECT_EQ(counted, 10u + obs.runs()[0].events_dropped);
  // The stats document surfaces the truncation at top level.
  EXPECT_NE(trace::stats_json(obs).find("\"trace_truncated\":true"),
            std::string::npos);
}

TEST(TraceExport, StatsJsonReportsNoTruncationWhenNothingDropped) {
  trace::Observer obs;
  obs.set_trace_enabled(true);
  obs.begin_run("unlimited");
  run_observed(obs, 4);
  ASSERT_EQ(obs.runs().at(0).events_dropped, 0u);
  EXPECT_NE(trace::stats_json(obs).find("\"trace_truncated\":false"),
            std::string::npos);
}

// --- cycle accounting ----------------------------------------------------

TEST(CycleAccounting, BucketsAreExhaustive) {
  // Every clock increment goes through a bucket, and finish() adds each
  // processor's trailing idle, so per-processor buckets must sum exactly
  // to the makespan.
  trace::Observer obs;
  obs.begin_run("exhaustive");
  run_observed(obs, 4, Mechanism::kMigrate);
  ASSERT_EQ(obs.runs().size(), 1u);
  const trace::RunRecord& run = obs.runs()[0];
  ASSERT_EQ(run.breakdown.size(), 4u);
  for (ProcId p = 0; p < 4; ++p) {
    std::uint64_t sum = 0;
    for (std::uint64_t b : run.breakdown[p]) sum += b;
    EXPECT_EQ(sum, run.makespan) << "proc " << p;
    EXPECT_LE(run.proc_clock[p], run.makespan);
  }
}

TEST(CycleAccounting, SequentialRunIsAllCompute) {
  trace::Observer obs;
  obs.begin_run("seq");
  Machine m({.nprocs = 1,
             .costs = {.sequential_baseline = true},
             .observer = &obs});
  m.set_site_mechanisms({Mechanism::kCache, Mechanism::kCache});
  run_program(m, walk_root(m, 32));
  const trace::RunRecord& run = obs.runs().at(0);
  using trace::CycleBucket;
  EXPECT_GT(run.breakdown[0][static_cast<int>(CycleBucket::kCompute)], 0u);
  EXPECT_EQ(run.breakdown[0][static_cast<int>(CycleBucket::kMigration)], 0u);
  EXPECT_EQ(run.breakdown[0][static_cast<int>(CycleBucket::kCacheStall)], 0u);
  EXPECT_EQ(run.breakdown[0][static_cast<int>(CycleBucket::kCoherence)], 0u);
}

TEST(CycleAccounting, MultipleRunsAccumulateSeparately) {
  trace::Observer obs;
  obs.begin_run("first");
  run_observed(obs, 2);
  obs.begin_run("second");
  run_observed(obs, 4);
  ASSERT_EQ(obs.runs().size(), 2u);
  EXPECT_EQ(obs.runs()[0].label, "first");
  EXPECT_EQ(obs.runs()[1].label, "second");
  EXPECT_EQ(obs.runs()[0].nprocs, 2u);
  EXPECT_EQ(obs.runs()[1].nprocs, 4u);
}

}  // namespace
}  // namespace olden
