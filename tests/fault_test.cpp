// Fault plane unit + property tests: spec parsing, the checksum-preserving
// contract of the reliable-delivery protocol, retry-bucket accounting,
// hiccup injection, zero-cost-when-disabled, and the hang watchdog.
#include <gtest/gtest.h>

#include <string>

#include "olden/bench/benchmark.hpp"
#include "olden/fault/fault_plane.hpp"
#include "olden/fault/fault_spec.hpp"
#include "olden/olden.hpp"
#include "olden/profile/profile.hpp"
#include "olden/trace/observer.hpp"

namespace olden {
namespace {

using fault::FaultSpec;
using fault::parse_fault_spec;

// --- spec grammar ----------------------------------------------------------

TEST(FaultSpecParse, FullGrammarRoundTrips) {
  FaultSpec s;
  std::string err;
  ASSERT_TRUE(parse_fault_spec(
      "drop=0.1,dup=0.05,delay=0.2:300,burst=20000:2000:4,"
      "hiccup=0.01:500,timeout=6000,retries=10",
      &s, &err))
      << err;
  EXPECT_TRUE(s.enabled);
  EXPECT_DOUBLE_EQ(s.drop, 0.1);
  EXPECT_DOUBLE_EQ(s.dup, 0.05);
  EXPECT_DOUBLE_EQ(s.delay, 0.2);
  EXPECT_EQ(s.delay_cycles, 300u);
  EXPECT_EQ(s.burst_period, 20000u);
  EXPECT_EQ(s.burst_len, 2000u);
  EXPECT_DOUBLE_EQ(s.burst_factor, 4.0);
  EXPECT_DOUBLE_EQ(s.hiccup, 0.01);
  EXPECT_EQ(s.hiccup_cycles, 500u);
  EXPECT_EQ(s.ack_timeout, 6000u);
  EXPECT_EQ(s.max_retries, 10u);

  // The canonical rendering parses back to the same spec.
  FaultSpec s2;
  ASSERT_TRUE(parse_fault_spec(fault::to_string(s), &s2, &err)) << err;
  EXPECT_DOUBLE_EQ(s2.drop, s.drop);
  EXPECT_EQ(s2.burst_period, s.burst_period);
  EXPECT_EQ(s2.max_retries, s.max_retries);
}

TEST(FaultSpecParse, DisabledSpellings) {
  for (const char* text : {"", "none", "off"}) {
    FaultSpec s;
    std::string err;
    ASSERT_TRUE(parse_fault_spec(text, &s, &err)) << text << ": " << err;
    EXPECT_FALSE(s.enabled) << text;
  }
}

TEST(FaultSpecParse, RejectsMalformedSpecs) {
  const char* bad[] = {
      "drop",                 // no value
      "drop=",                // empty value
      "drop=abc",             // not a number
      "drop=1.5",             // probability out of range
      "drop=-0.1",            // negative probability
      "delay=0.5",            // missing :CYCLES
      "delay=0.5:0",          // zero delay cycles with positive probability
      "burst=100:200:2",      // LEN > PERIOD
      "burst=0:0:2",          // zero period
      "hiccup=0.5",           // missing :CYCLES
      "timeout=0",            // protocol needs a positive timeout
      "retries=0",            // zero retries can never deliver through a drop
      "retries=100000",       // past the documented cap
      "frobnicate=1",         // unknown key
      "drop=0.1,,dup=0.1",    // empty field
      "drop=0.1,drop=0.2",    // duplicate key (last-wins would hide typos)
      "timeout=99999999999999999999",  // overflows uint64
      "burst=100:50:inf",     // non-finite burst factor
      "burst=100:50:nan",     // non-finite burst factor
      "classes=",             // empty class mask
      "classes=fill:fill",    // duplicate class
      "classes=fill:frobs",   // unknown class
  };
  for (const char* text : bad) {
    FaultSpec s;
    std::string err;
    EXPECT_FALSE(parse_fault_spec(text, &s, &err)) << text;
    EXPECT_FALSE(err.empty()) << text;
  }
}

TEST(FaultSpecParse, ErrorsNameTheOffendingToken) {
  // A spec error in a long CI invocation is only actionable if the
  // message points at the exact token that failed.
  const struct {
    const char* text;
    const char* token;
  } cases[] = {
      {"drop=0.1,drop=0.2", "duplicate key 'drop'"},
      {"timeout=99999999999999999999", "99999999999999999999"},
      {"burst=100:50:inf", "burst factor"},
      {"classes=fill:frobs", "unknown class 'frobs'"},
      {"classes=fill:fill", "duplicate class 'fill'"},
      {"classes=", "unknown class ''"},
      {"drop=0.1,,dup=0.1", "expected key=value"},
      {"warble=1", "unknown key 'warble'"},
  };
  for (const auto& c : cases) {
    FaultSpec s;
    std::string err;
    ASSERT_FALSE(parse_fault_spec(c.text, &s, &err)) << c.text;
    EXPECT_NE(err.find(c.token), std::string::npos)
        << c.text << " -> " << err;
  }
}

TEST(FaultSpecParse, ClassMaskRoundTripsAndGates) {
  FaultSpec s;
  std::string err;
  ASSERT_TRUE(
      parse_fault_spec("drop=0.5,classes=fill:ts_check,timeout=900", &s, &err))
      << err;
  EXPECT_TRUE(s.class_enabled(MsgClass::kFill));
  EXPECT_TRUE(s.class_enabled(MsgClass::kTsCheck));
  EXPECT_FALSE(s.class_enabled(MsgClass::kMigration));
  EXPECT_FALSE(s.class_enabled(MsgClass::kInvalidate));

  // The canonical rendering re-parses to the same mask; an omitted
  // classes key means every class.
  FaultSpec s2;
  ASSERT_TRUE(parse_fault_spec(fault::to_string(s), &s2, &err)) << err;
  EXPECT_EQ(s2.class_mask, s.class_mask);
  FaultSpec all;
  ASSERT_TRUE(parse_fault_spec("drop=0.1", &all, &err)) << err;
  EXPECT_EQ(all.class_mask, FaultSpec::kAllClasses);
}

// --- protocol correctness --------------------------------------------------

FaultSpec moderate_spec() {
  FaultSpec s;
  std::string err;
  EXPECT_TRUE(parse_fault_spec(
      "drop=0.15,dup=0.1,delay=0.2:400,hiccup=0.05:200,timeout=4000", &s,
      &err))
      << err;
  return s;
}

TEST(FaultPlane, ChecksumsSurviveFaultsAcrossSchemes) {
  const bench::Benchmark* b = bench::find_benchmark("TreeAdd");
  ASSERT_NE(b, nullptr);
  const FaultSpec spec = moderate_spec();
  for (Coherence scheme : {Coherence::kLocalKnowledge, Coherence::kEagerGlobal,
                           Coherence::kBilateral}) {
    bench::BenchConfig cfg{.nprocs = 4, .scheme = scheme};
    cfg.tiny = true;
    const bench::BenchResult clean = b->run(cfg);

    cfg.faults = &spec;
    cfg.fault_seed = 42;
    const bench::BenchResult faulty = b->run(cfg);

    EXPECT_EQ(faulty.checksum, clean.checksum);
    // The wire actually misbehaved and the protocol actually recovered.
    EXPECT_GT(faulty.stats.fault_messages, 0u);
    EXPECT_GT(faulty.stats.fault_drops, 0u);
    EXPECT_GT(faulty.stats.retransmissions, 0u);
    EXPECT_GT(faulty.stats.acks_sent, 0u);
    // Recovery costs time; it must never cost correctness.
    EXPECT_GE(faulty.total_cycles, clean.total_cycles);
  }
}

TEST(FaultPlane, SameSeedReproducesByteIdenticalTraces) {
  const bench::Benchmark* b = bench::find_benchmark("TreeAdd");
  ASSERT_NE(b, nullptr);
  const FaultSpec spec = moderate_spec();
  std::string bytes[2];
  for (int i = 0; i < 2; ++i) {
    trace::Observer obs;
    obs.set_trace_enabled(true);
    obs.begin_run("fault-repeat");
    bench::BenchConfig cfg{.nprocs = 4};
    cfg.tiny = true;
    cfg.observer = &obs;
    cfg.faults = &spec;
    cfg.fault_seed = 7;
    (void)b->run(cfg);
    bytes[i] = trace::binary_trace_bytes(obs);
  }
  EXPECT_EQ(bytes[0], bytes[1]);
}

TEST(FaultPlane, RetryBucketChargedAndAccountingStaysExhaustive) {
  const bench::Benchmark* b = bench::find_benchmark("TreeAdd");
  ASSERT_NE(b, nullptr);
  const FaultSpec spec = moderate_spec();
  trace::Observer obs;
  obs.begin_run("fault-buckets");
  bench::BenchConfig cfg{.nprocs = 4};
  cfg.tiny = true;
  cfg.observer = &obs;
  cfg.faults = &spec;
  cfg.fault_seed = 3;
  const bench::BenchResult r = b->run(cfg);

  ASSERT_EQ(obs.runs().size(), 1u);
  const trace::RunRecord& run = obs.runs()[0];
  const auto retry =
      static_cast<std::size_t>(trace::CycleBucket::kRetry);
  std::uint64_t retry_total = 0;
  for (const trace::BucketCycles& row : run.breakdown) {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < trace::kNumBuckets; ++i) sum += row[i];
    // Exhaustive accounting: every processor's buckets tile the makespan
    // exactly, protocol overhead included.
    EXPECT_EQ(sum, run.makespan);
    retry_total += row[retry];
  }
  EXPECT_GT(retry_total, 0u);
  EXPECT_EQ(run.makespan, r.total_cycles);
}

TEST(FaultPlane, HiccupsStallAndAreCounted) {
  const bench::Benchmark* b = bench::find_benchmark("TreeAdd");
  ASSERT_NE(b, nullptr);
  FaultSpec spec;
  std::string err;
  ASSERT_TRUE(parse_fault_spec("hiccup=1.0:50", &spec, &err)) << err;
  bench::BenchConfig cfg{.nprocs = 4};
  cfg.tiny = true;
  cfg.faults = &spec;
  const bench::BenchResult r = b->run(cfg);

  EXPECT_GT(r.stats.hiccups_injected, 0u);
  // hiccup=1.0:50 stalls every delivery by exactly [1,50] cycles.
  EXPECT_GE(r.stats.hiccup_cycles, r.stats.hiccups_injected);
  EXPECT_LE(r.stats.hiccup_cycles, r.stats.hiccups_injected * 50);
  EXPECT_EQ(r.checksum, b->run({.nprocs = 4, .tiny = true}).checksum);
}

TEST(FaultPlane, DisabledSpecIsByteIdenticalToNoSpec) {
  const bench::Benchmark* b = bench::find_benchmark("TreeAdd");
  ASSERT_NE(b, nullptr);
  FaultSpec disabled;
  std::string err;
  ASSERT_TRUE(parse_fault_spec("none", &disabled, &err)) << err;

  // The A/B covers every observability artifact — trace, stats document,
  // profile — under every coherence scheme: installing a disabled plane
  // must not perturb a single byte anywhere.
  for (Coherence scheme : {Coherence::kLocalKnowledge, Coherence::kEagerGlobal,
                           Coherence::kBilateral}) {
    std::string traces[2], stats[2], profiles[2];
    const FaultSpec* specs[2] = {nullptr, &disabled};
    for (int i = 0; i < 2; ++i) {
      trace::Observer obs;
      obs.set_trace_enabled(true);
      obs.enable_profile();
      obs.begin_run("disabled-ab");
      bench::BenchConfig cfg{.nprocs = 4, .scheme = scheme};
      cfg.tiny = true;
      cfg.observer = &obs;
      cfg.faults = specs[i];
      (void)b->run(cfg);
      traces[i] = trace::binary_trace_bytes(obs);
      stats[i] = trace::stats_json(obs);
      profiles[i] = profile::profile_json(obs);
    }
    EXPECT_EQ(traces[0], traces[1]) << static_cast<int>(scheme);
    EXPECT_EQ(stats[0], stats[1]) << static_cast<int>(scheme);
    EXPECT_EQ(profiles[0], profiles[1]) << static_cast<int>(scheme);
  }
}

// --- coherence traffic on the lossy wire -----------------------------------

/// A spec that only faults coherence classes, aggressively enough that
/// fills retransmit while late replies are still in flight (timeout well
/// under the max injected delay), forcing duplicate replies.
FaultSpec coherence_spec() {
  FaultSpec s;
  std::string err;
  EXPECT_TRUE(parse_fault_spec(
      "drop=0.25,dup=0.4,delay=0.3:900,timeout=600,"
      "classes=fill:invalidate:ts_check",
      &s, &err))
      << err;
  return s;
}

TEST(FaultPlane, CoherenceChecksumsSurviveFaultsAcrossSchemes) {
  // EM3D is an "M+C" benchmark: the heuristic picks cached sites, so the
  // kernel actually generates fill (and, per scheme, invalidate/ts-check)
  // traffic for the injector to chew on.
  const bench::Benchmark* b = bench::find_benchmark("EM3D");
  ASSERT_NE(b, nullptr);
  const FaultSpec spec = coherence_spec();
  for (Coherence scheme : {Coherence::kLocalKnowledge, Coherence::kEagerGlobal,
                           Coherence::kBilateral}) {
    bench::BenchConfig cfg{.nprocs = 4, .scheme = scheme};
    cfg.tiny = true;
    const bench::BenchResult clean = b->run(cfg);

    cfg.faults = &spec;
    cfg.fault_seed = 9;
    const bench::BenchResult faulty = b->run(cfg);

    EXPECT_EQ(faulty.checksum, clean.checksum) << static_cast<int>(scheme);
    // Coherence traffic actually rode the lossy wire...
    EXPECT_GT(faulty.stats.coherence_requests, 0u);
    EXPECT_GT(
        faulty.stats.class_sent[static_cast<std::size_t>(MsgClass::kFill)],
        0u);
    // ...and the excluded migration class never lost a message.
    EXPECT_EQ(
        faulty.stats
            .class_drops[static_cast<std::size_t>(MsgClass::kMigration)],
        0u);
    EXPECT_EQ(
        faulty.stats
            .class_dups[static_cast<std::size_t>(MsgClass::kMigration)],
        0u);
  }
}

TEST(FaultPlane, DuplicatedRepliesAreIdempotent) {
  // Timeout far below the delay ceiling: requests retransmit while the
  // original (delayed) reply is still in flight, so the requester sees
  // surplus replies. They must be counted and discarded, never
  // double-applied — the checksum is the witness.
  const bench::Benchmark* b = bench::find_benchmark("EM3D");
  ASSERT_NE(b, nullptr);
  const FaultSpec spec = coherence_spec();
  for (Coherence scheme :
       {Coherence::kLocalKnowledge, Coherence::kBilateral}) {
    bench::BenchConfig cfg{.nprocs = 4, .scheme = scheme};
    cfg.tiny = true;
    const bench::BenchResult clean = b->run(cfg);

    bool saw_surplus = false;
    for (std::uint64_t seed : {3u, 11u, 27u}) {
      cfg.faults = &spec;
      cfg.fault_seed = seed;
      const bench::BenchResult faulty = b->run(cfg);
      EXPECT_EQ(faulty.checksum, clean.checksum)
          << static_cast<int>(scheme) << " seed " << seed;
      saw_surplus = saw_surplus || faulty.stats.replies_ignored > 0;
    }
    // At least one schedule per scheme actually produced a surplus reply;
    // otherwise this test proves nothing about idempotency.
    EXPECT_TRUE(saw_surplus) << static_cast<int>(scheme);
  }
}

// --- watchdog --------------------------------------------------------------

struct Node {
  std::int64_t val;
};

Task<std::int64_t> watchdog_root(Machine& m) {
  auto n = m.alloc<Node>(1);
  co_await wr(n, &Node::val, std::int64_t{41}, SiteId{0});
  co_return co_await rd(n, &Node::val, SiteId{0}) + 1;
}

TEST(FaultWatchdog, TotalDropBecomesStructuredDiagnostic) {
  FaultSpec spec;
  std::string err;
  // Every transmission attempt is dropped: no message can ever deliver,
  // so the first migration exhausts its retransmit budget.
  ASSERT_TRUE(
      parse_fault_spec("drop=1.0,timeout=200,retries=3", &spec, &err))
      << err;
  Machine m({.nprocs = 2, .faults = &spec, .fault_seed = 1});
  m.set_site_mechanisms({Mechanism::kMigrate});
  try {
    (void)run_program(m, watchdog_root(m));
    FAIL() << "a 100%-drop schedule must not terminate normally";
  } catch (const fault::WatchdogError& e) {
    const fault::WatchdogDiagnostic& d = e.diagnostic();
    EXPECT_EQ(d.reason, "retry-cap-exceeded");
    EXPECT_EQ(d.retries, 3u);
    EXPECT_GT(d.sim_time, 0u);
    EXPECT_GE(d.pending_messages, 1u);
    EXPECT_STREQ(d.payload, "migration");
    EXPECT_STREQ(d.msg_class, "migration");
    EXPECT_EQ(d.src, 0u);
    EXPECT_EQ(d.dst, 1u);
    // The per-channel load map points at the congested wire.
    ASSERT_FALSE(d.channels.empty());
    bool saw_stuck_channel = false;
    for (const auto& ch : d.channels) {
      if (ch.src == 0u && ch.dst == 1u && ch.unacked >= 1u) {
        saw_stuck_channel = true;
      }
    }
    EXPECT_TRUE(saw_stuck_channel);
    const std::string what = e.what();
    EXPECT_NE(what.find("watchdog"), std::string::npos) << what;
    EXPECT_NE(what.find("retry-cap-exceeded"), std::string::npos) << what;
    EXPECT_NE(what.find("class migration"), std::string::npos) << what;
    EXPECT_NE(what.find("unacked per channel"), std::string::npos) << what;
  }
}

Task<std::int64_t> cached_read_root(Machine& m) {
  auto n = m.alloc<Node>(1);
  co_return co_await rd(n, &Node::val, SiteId{0});
}

TEST(FaultWatchdog, CoherenceRetryStormNamesTheMessageClass) {
  FaultSpec spec;
  std::string err;
  // Only fill traffic is lossy — and 100% lossy, so the very first cache
  // miss retransmits its fill request into the cap. The diagnostic must
  // say so in coherence terms, not just "a message got stuck".
  ASSERT_TRUE(parse_fault_spec(
      "drop=1.0,timeout=200,retries=3,classes=fill", &spec, &err))
      << err;
  Machine m({.nprocs = 2, .faults = &spec, .fault_seed = 1});
  m.set_site_mechanisms({Mechanism::kCache});
  try {
    (void)run_program(m, cached_read_root(m));
    FAIL() << "a 100%-drop fill schedule must not terminate normally";
  } catch (const fault::WatchdogError& e) {
    const fault::WatchdogDiagnostic& d = e.diagnostic();
    EXPECT_EQ(d.reason, "retry-cap-exceeded");
    EXPECT_EQ(d.retries, 3u);
    EXPECT_STREQ(d.payload, "fill_request");
    EXPECT_STREQ(d.msg_class, "fill");
    ASSERT_FALSE(d.channels.empty());
    std::uint64_t unacked = 0;
    for (const auto& ch : d.channels) unacked += ch.unacked;
    EXPECT_GE(unacked, 1u);
    const std::string what = e.what();
    EXPECT_NE(what.find("class fill"), std::string::npos) << what;
  }
}

TEST(FaultWatchdog, RecoverableDropRateStillCompletes) {
  FaultSpec spec;
  std::string err;
  // Half the attempts drop, but 24 retries make delivery all but certain:
  // the watchdog must stay quiet and the answer must be right.
  ASSERT_TRUE(parse_fault_spec("drop=0.5,timeout=500", &spec, &err)) << err;
  Machine m({.nprocs = 2, .faults = &spec, .fault_seed = 5});
  m.set_site_mechanisms({Mechanism::kMigrate});
  EXPECT_EQ(run_program(m, watchdog_root(m)), 42);
  EXPECT_GT(m.stats().retransmissions, 0u);
}

}  // namespace
}  // namespace olden
