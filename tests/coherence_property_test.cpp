// Property tests on the runtime's coherence and scheduling invariants,
// driven by randomized workloads (seeds swept via TEST_P).
//
// The central property is Appendix A's theorem: an Olden program run under
// any of the three coherence protocols computes what a sequentially
// consistent machine would — here checked against the baseline (pure
// compute, no caches) run of the same seed.
#include <gtest/gtest.h>

#include <vector>

#include "olden/olden.hpp"
#include "olden/support/rng.hpp"

namespace olden {
namespace {

struct Node {
  std::int64_t val;
  GPtr<Node> left, right;
};

enum Site : SiteId { kVal, kLeft, kRight, kValCached, kInit, kNumSites };

// A randomized mixed workload: build a random-shaped tree with random
// placement, then run phases that alternately (a) rewrite a random
// subtree's values via migrating recursion and (b) sum random subtrees
// via cached reads — writers and readers of each phase are disjoint, as
// Olden's future semantics require.
Task<GPtr<Node>> build(Machine& m, Rng& rng, int depth) {
  if (depth == 0 || rng.next_below(8) == 0) co_return GPtr<Node>{};
  auto n = m.alloc<Node>(static_cast<ProcId>(rng.next_below(m.nprocs())));
  co_await wr(n, &Node::val, static_cast<std::int64_t>(rng.next_below(1000)),
              kInit);
  auto l = co_await build(m, rng, depth - 1);
  auto r = co_await build(m, rng, depth - 1);
  co_await wr(n, &Node::left, l, kInit);
  co_await wr(n, &Node::right, r, kInit);
  co_return n;
}

Task<int> rewrite(Machine& m, GPtr<Node> t, std::int64_t delta) {
  if (!t) co_return 0;
  const auto v = co_await rd(t, &Node::val, kVal);
  co_await wr(t, &Node::val, v + delta, kVal);
  m.work(5);
  const auto l = co_await rd(t, &Node::left, kLeft);
  const auto r = co_await rd(t, &Node::right, kRight);
  auto f = co_await futurecall(rewrite(m, l, delta));
  co_await rewrite(m, r, delta);
  co_await touch(f);
  co_return 0;
}

Task<std::int64_t> cached_sum(Machine& m, GPtr<Node> t) {
  if (!t) co_return 0;
  const auto v = co_await rd(t, &Node::val, kValCached);
  const auto l = co_await rd(t, &Node::left, kValCached);
  const auto r = co_await rd(t, &Node::right, kValCached);
  m.work(5);
  co_return v + co_await cached_sum(m, l) + co_await cached_sum(m, r);
}

Task<std::uint64_t> workload(Machine& m, std::uint64_t seed) {
  Rng rng(seed);
  auto root = co_await build(m, rng, 9);
  std::uint64_t acc = 0;
  for (int phase = 0; phase < 6; ++phase) {
    co_await rewrite(m, root, static_cast<std::int64_t>(phase + 1));
    acc = acc * 31 + static_cast<std::uint64_t>(
                         co_await cached_sum(m, root));
  }
  co_return acc;
}

std::uint64_t run_once(std::uint64_t seed, ProcId procs, Coherence scheme,
                       bool baseline, MachineStats* stats = nullptr) {
  Machine m({.nprocs = procs,
             .scheme = scheme,
             .costs = {.sequential_baseline = baseline}});
  m.set_site_mechanisms({Mechanism::kMigrate, Mechanism::kMigrate,
                         Mechanism::kMigrate, Mechanism::kCache,
                         Mechanism::kMigrate});
  const std::uint64_t r = run_program(m, workload(m, seed));
  if (stats != nullptr) *stats = m.stats();
  EXPECT_EQ(m.cells_live(), 0u) << "leaked future cells";
  return r;
}

class CoherenceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoherenceProperty, AllSchemesMatchSequentialSemantics) {
  const std::uint64_t seed = GetParam();
  const std::uint64_t expected =
      run_once(seed, 1, Coherence::kLocalKnowledge, /*baseline=*/true);
  for (Coherence scheme : {Coherence::kLocalKnowledge,
                           Coherence::kEagerGlobal, Coherence::kBilateral}) {
    for (ProcId procs : {2u, 5u, 16u, 32u}) {
      EXPECT_EQ(run_once(seed, procs, scheme, false), expected)
          << "seed " << seed << " scheme " << to_string(scheme) << " P="
          << procs;
    }
  }
}

TEST_P(CoherenceProperty, ClocksAndCountersAreSane) {
  const std::uint64_t seed = GetParam();
  MachineStats st;
  run_once(seed, 8, Coherence::kEagerGlobal, false, &st);
  // Every futurecall either completed inline or was stolen — no third way.
  EXPECT_EQ(st.futurecalls, st.futures_inlined + st.futures_stolen);
  // Cache accounting: every remote cacheable read hit or missed.
  EXPECT_EQ(st.cacheable_reads_remote, st.cache_hits + st.cache_misses);
  // Under the eager scheme every invalidated line was announced.
  if (st.lines_invalidated > 0) {
    EXPECT_GT(st.invalidation_messages + st.cache_flushes, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoherenceProperty,
                         ::testing::Values(1, 7, 42, 1234, 777777));

// Determinism across repeated runs, including all statistics that feed
// the paper's tables.
TEST(Determinism, StatsAreBitIdentical) {
  MachineStats a, b;
  const auto ra = run_once(99, 16, Coherence::kBilateral, false, &a);
  const auto rb = run_once(99, 16, Coherence::kBilateral, false, &b);
  EXPECT_EQ(ra, rb);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.cache_misses, b.cache_misses);
  EXPECT_EQ(a.timestamp_checks, b.timestamp_checks);
  EXPECT_EQ(a.futures_stolen, b.futures_stolen);
  EXPECT_EQ(a.lines_invalidated, b.lines_invalidated);
}

// The sequential baseline is a lower bound: adding Olden's overheads can
// only slow a one-processor run down (speedup at P=1 is < 1, Table 2).
TEST(Baseline, OneProcessorOverheadIsNonNegative) {
  for (std::uint64_t seed : {3u, 11u}) {
    Machine base({.nprocs = 1, .costs = {.sequential_baseline = true}});
    base.set_site_mechanisms({Mechanism::kMigrate, Mechanism::kMigrate,
                              Mechanism::kMigrate, Mechanism::kCache,
                              Mechanism::kMigrate});
    run_program(base, workload(base, seed));
    Machine full({.nprocs = 1});
    full.set_site_mechanisms({Mechanism::kMigrate, Mechanism::kMigrate,
                              Mechanism::kMigrate, Mechanism::kCache,
                              Mechanism::kMigrate});
    run_program(full, workload(full, seed));
    EXPECT_GE(full.makespan(), base.makespan());
  }
}

}  // namespace
}  // namespace olden
