// MinHeap is the event queue under the whole simulator: it replaced
// std::priority_queue so drain() can move events out and reserve storage.
// The simulation's determinism rests on it popping exactly the same
// sequence the old queue did, so check it against std::priority_queue on
// randomized interleavings of pushes and pops, with (time, seq) keys that
// collide on time the way real events do.
#include <gtest/gtest.h>

#include <queue>
#include <vector>

#include "olden/support/min_heap.hpp"
#include "olden/support/rng.hpp"

namespace olden {
namespace {

struct Key {
  std::uint64_t time = 0;
  std::uint64_t seq = 0;
  bool operator>(const Key& o) const {
    if (time != o.time) return time > o.time;
    return seq > o.seq;
  }
  bool operator==(const Key& o) const {
    return time == o.time && seq == o.seq;
  }
};

TEST(MinHeap, MatchesPriorityQueueOnRandomInterleavings) {
  Rng rng(42);
  MinHeap<Key> mine;
  std::priority_queue<Key, std::vector<Key>, std::greater<Key>> ref;
  std::uint64_t seq = 0;
  for (int step = 0; step < 50000; ++step) {
    const bool push = ref.empty() || rng.next_below(3) != 0;
    if (push) {
      // Few distinct times, so seq ordering under collisions is exercised.
      const Key k{rng.next_below(64), seq++};
      mine.push(k);
      ref.push(k);
    } else {
      ASSERT_FALSE(mine.empty());
      const Key expect = ref.top();
      ref.pop();
      ASSERT_EQ(mine.pop_min(), expect) << "diverged at step " << step;
    }
    ASSERT_EQ(mine.size(), ref.size());
  }
  while (!ref.empty()) {
    const Key expect = ref.top();
    ref.pop();
    ASSERT_EQ(mine.pop_min(), expect);
  }
  EXPECT_TRUE(mine.empty());
}

TEST(MinHeap, ReserveDoesNotDisturbContents) {
  MinHeap<Key> h;
  for (std::uint64_t i = 0; i < 100; ++i) h.push({100 - i, i});
  h.reserve(4096);
  std::uint64_t last = 0;
  for (int i = 0; i < 100; ++i) {
    const Key k = h.pop_min();
    EXPECT_GE(k.time, last);
    last = k.time;
  }
}

}  // namespace
}  // namespace olden
