// Unit tests for the software cache (§3.2, Figure 1) and the coherence
// bookkeeping structures (Appendix A).
#include <gtest/gtest.h>

#include <set>

#include "olden/cache/coherence.hpp"
#include "olden/cache/software_cache.hpp"
#include "olden/support/rng.hpp"

namespace olden {
namespace {

TEST(SoftwareCache, LookupMissesUntilEnsured) {
  SoftwareCache c;
  EXPECT_EQ(c.lookup(42).entry, nullptr);
  bool created = false;
  auto& e = c.ensure_page(42, created);
  EXPECT_TRUE(created);
  EXPECT_EQ(e.page_id, 42u);
  EXPECT_EQ(e.valid, 0u);
  EXPECT_EQ(c.lookup(42).entry, &e);
  c.ensure_page(42, created);
  EXPECT_FALSE(created);
  EXPECT_EQ(c.pages_created(), 1u);
  EXPECT_EQ(c.pages_live(), 1u);
}

TEST(SoftwareCache, FramesAreWholePagesAndDistinct) {
  SoftwareCache c;
  bool created = false;
  auto& a = c.ensure_page(1, created);
  auto& b = c.ensure_page(2, created);
  ASSERT_NE(a.frame, nullptr);
  ASSERT_NE(b.frame, nullptr);
  EXPECT_NE(a.frame, b.frame);
  a.frame[kPageBytes - 1] = std::byte{0x5a};  // last byte is addressable
  EXPECT_EQ(a.frame[kPageBytes - 1], std::byte{0x5a});
}

TEST(SoftwareCache, InvalidateAllClearsLinesNotEntries) {
  SoftwareCache c;
  bool created = false;
  for (std::uint32_t id = 0; id < 100; ++id) {
    c.ensure_page(id, created).valid = 0xffffffffu;
  }
  EXPECT_EQ(c.invalidate_all(), 100u * kLinesPerPage);
  EXPECT_EQ(c.pages_live(), 100u);  // entries survive, lines do not
  EXPECT_EQ(c.lookup(7).entry->valid, 0u);
  EXPECT_EQ(c.invalidate_all(), 0u);  // idempotent on an empty cache
}

TEST(SoftwareCache, InvalidateFromProcsIsSelective) {
  SoftwareCache c;
  bool created = false;
  // Page ids encode their home in the top bits (page_home).
  const std::uint32_t home3 = 3u << (kProcShift - 11);
  const std::uint32_t home5 = 5u << (kProcShift - 11);
  c.ensure_page(home3 + 1, created).valid = 0xf;
  c.ensure_page(home5 + 1, created).valid = 0xf0;
  ProcSet victims;
  victims.add(3);
  EXPECT_EQ(c.invalidate_from_procs(victims), 4u);
  EXPECT_EQ(c.lookup(home3 + 1).entry->valid, 0u);
  EXPECT_EQ(c.lookup(home5 + 1).entry->valid, 0xf0u);
}

TEST(SoftwareCache, InvalidateLinesByMask) {
  SoftwareCache c;
  bool created = false;
  c.ensure_page(9, created).valid = 0b1111;
  auto r = c.invalidate_lines(9, 0b0110);
  EXPECT_EQ(r.dropped, 2u);
  EXPECT_EQ(r.remaining, 2u);
  EXPECT_EQ(c.lookup(9).entry->valid, 0b1001u);
  r = c.invalidate_lines(9, 0b0110);  // already gone
  EXPECT_EQ(r.dropped, 0u);
  EXPECT_EQ(r.remaining, 2u);
  r = c.invalidate_lines(9, 0b1111);  // drops the rest of the page
  EXPECT_EQ(r.dropped, 2u);
  EXPECT_EQ(r.remaining, 0u);
  r = c.invalidate_lines(77, 0xff);   // absent page
  EXPECT_EQ(r.dropped, 0u);
  EXPECT_EQ(r.remaining, 0u);
}

TEST(SoftwareCache, SuspectMarking) {
  SoftwareCache c;
  bool created = false;
  auto& e = c.ensure_page(4, created);
  EXPECT_FALSE(e.suspect);
  c.mark_all_suspect();
  EXPECT_TRUE(e.suspect);
}

// Figure 1's claim: average chain length ~ 1 at realistic occupancies.
// Property-style sweep over page populations shaped like real heaps
// (contiguous runs per home processor).
class ChainLength : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChainLength, AverageNearOne) {
  const std::size_t pages = GetParam();
  SoftwareCache c;
  Rng rng(pages);
  bool created = false;
  std::size_t added = 0;
  for (ProcId h = 0; h < 31 && added < pages; ++h) {
    const std::uint32_t base =
        (static_cast<std::uint32_t>(h) << (kProcShift - 11)) +
        static_cast<std::uint32_t>(rng.next_below(32));
    for (std::size_t i = 0; i < pages / 31 + 1 && added < pages; ++i) {
      c.ensure_page(base + static_cast<std::uint32_t>(i), created);
      ++added;
    }
  }
  const auto chains = c.chain_lengths();
  std::uint64_t total = 0;
  for (auto n : chains) total += n;
  EXPECT_EQ(total, added);
  const double avg =
      static_cast<double>(total) / static_cast<double>(chains.size());
  // "In our experience, the average chain length is approximately one."
  EXPECT_LT(avg, pages <= 1024 ? 1.7 : 1.0 + static_cast<double>(pages) / 1024);
}

INSTANTIATE_TEST_SUITE_P(Occupancies, ChainLength,
                         ::testing::Values(64, 163, 502, 1024, 2982));

// --- coherence bookkeeping -------------------------------------------------

TEST(WriteLog, RecordsAndMergesLineMasks) {
  WriteLog log;
  EXPECT_TRUE(log.empty());
  log.record(10, 0b01);
  log.record(10, 0b10);
  log.record(11, 0b100);
  int seen = 0;
  log.for_each([&](std::uint32_t page, std::uint32_t mask) {
    ++seen;
    if (page == 10) {
      EXPECT_EQ(mask, 0b11u);
    }
    if (page == 11) {
      EXPECT_EQ(mask, 0b100u);
    }
  });
  EXPECT_EQ(seen, 2);
  log.clear();
  EXPECT_TRUE(log.empty());
}

TEST(CoherenceDirectory, PagesMaterializeOnDemand) {
  CoherenceDirectory dir;
  EXPECT_EQ(dir.find(5), nullptr);
  dir.page(5).sharers.add(3);
  ASSERT_NE(dir.find(5), nullptr);
  EXPECT_TRUE(dir.find(5)->sharers.contains(3));
  EXPECT_EQ(dir.tracked_pages(), 1u);
}

TEST(ProcSetOps, BasicSetAlgebra) {
  ProcSet s;
  EXPECT_TRUE(s.empty());
  s.add(0);
  s.add(63);
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.contains(63));
  EXPECT_FALSE(s.contains(31));
  EXPECT_EQ(s.count(), 2);
  std::set<ProcId> seen;
  s.for_each([&](ProcId p) { seen.insert(p); });
  EXPECT_EQ(seen, (std::set<ProcId>{0, 63}));
  s.remove(0);
  EXPECT_FALSE(s.contains(0));
  s.clear();
  EXPECT_TRUE(s.empty());
}

}  // namespace
}  // namespace olden
