// Satellite validation sweep: sampled TreeAdd and MST at --tiny across
// three (W, D) settings, for the three static schemes plus adaptive.
// Holds the sampling plane to its contract against the exact run:
//
//   * functional warming never perturbs the simulation (checksums,
//     makespans and every machine counter identical),
//   * the makespan estimate is the exact value with a zero-width CI
//     (virtual time is fully known even between windows), so the exact
//     makespan trivially falls inside the reported 95% CI with relative
//     error 0 < 5%,
//   * bucket estimates conserve total cycles (sum == nprocs * makespan)
//     and the in-window sums tile measured time,
//   * the dominant cycle bucket's estimate lands within 5% of the exact
//     value — the substantive accuracy check, deterministic per schedule.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <tuple>

#include "olden/bench/benchmark.hpp"
#include "olden/sample/estimator.hpp"
#include "olden/sample/sample.hpp"
#include "olden/trace/observer.hpp"

namespace olden::bench {
namespace {

struct SchemeUnderTest {
  const char* name;
  Coherence scheme;
  bool adaptive;
};

const SchemeUnderTest kSchemes[] = {
    {"local", Coherence::kLocalKnowledge, false},
    {"global", Coherence::kEagerGlobal, false},
    {"bilateral", Coherence::kBilateral, false},
    {"adaptive", Coherence::kEagerGlobal, true},
};

// Schedules are scaled to the --tiny makespans (TreeAdd ~140k cycles,
// MST ~8M): even the sparsest setting leaves TreeAdd with dozens of
// windows, which systematic sampling needs for the accuracy gate below.
const sample::Spec kSettings[] = {
    {.window = 1024, .detail = 256, .offset = 0},   // 25% duty
    {.window = 4096, .detail = 512, .offset = 128}, // 12.5%, phase-shifted
    {.window = 2048, .detail = 256, .offset = 0},   // 12.5%, denser windows
};

BenchConfig make_config(const SchemeUnderTest& s, trace::Observer* obs) {
  BenchConfig cfg{.nprocs = 8, .scheme = s.scheme};
  cfg.tiny = true;
  cfg.observer = obs;
  if (s.adaptive) {
    cfg.adapt.interval = 2048;
    cfg.adapt.hysteresis = 1;
    cfg.adapt.min_samples = 8;
  }
  return cfg;
}

class SampleValidation
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(SampleValidation, SampledRunMatchesExactWithinCI) {
  const auto [bench_name, setting] = GetParam();
  const sample::Spec spec = kSettings[setting];
  const Benchmark* b = find_benchmark(bench_name);
  ASSERT_NE(b, nullptr);

  for (const SchemeUnderTest& s : kSchemes) {
    SCOPED_TRACE(s.name);

    trace::Observer exact;
    exact.begin_run("validate/exact");
    BenchConfig cfg = make_config(s, &exact);
    const BenchResult r_exact = b->run(cfg);
    ASSERT_EQ(exact.runs().size(), 1u);
    const trace::RunRecord& re = exact.runs()[0];

    trace::Observer sampled;
    sampled.set_sample(spec);
    sampled.begin_run("validate/sampled");
    cfg = make_config(s, &sampled);
    const BenchResult r_sampled = b->run(cfg);
    ASSERT_EQ(sampled.runs().size(), 1u);
    const trace::RunRecord& rs = sampled.runs()[0];

    // Functional warming never perturbs logical state.
    EXPECT_EQ(r_sampled.checksum, r_exact.checksum);
    EXPECT_EQ(r_sampled.total_cycles, r_exact.total_cycles);
    EXPECT_EQ(rs.makespan, re.makespan);
    EXPECT_EQ(rs.counters, re.counters);

    const sample::RunEstimates est =
        sample::estimate(rs.sample, rs.nprocs, rs.makespan);

    // The exact makespan falls inside the reported 95% CI, with relative
    // error under 5% (both hold exactly: virtual time is fully known).
    EXPECT_GE(re.makespan, est.makespan.value - est.makespan.ci95);
    EXPECT_LE(re.makespan, est.makespan.value + est.makespan.ci95);
    const double makespan_rel_err =
        re.makespan == 0
            ? 0.0
            : std::abs(static_cast<double>(est.makespan.value) -
                       static_cast<double>(re.makespan)) /
                  static_cast<double>(re.makespan);
    EXPECT_LT(makespan_rel_err, 0.05);

    // Conservation: in-window sums tile measured time; estimates tile
    // the whole run.
    std::uint64_t in_window = 0;
    for (const sample::WindowCounts& w : rs.sample.windows) {
      for (std::uint64_t c : w.buckets) in_window += c;
    }
    EXPECT_EQ(in_window, rs.nprocs * rs.sample.measured_cycles);
    std::uint64_t est_sum = 0;
    for (const sample::Estimate& e : est.buckets) est_sum += e.value;
    EXPECT_EQ(est_sum, static_cast<std::uint64_t>(rs.nprocs) * rs.makespan);

    // Accuracy on the dominant bucket: systematic sampling across many
    // windows must land within 5% of the exact value (deterministic for
    // a pinned schedule, so this is a regression gate, not a coin flip).
    const trace::BucketCycles exact_buckets = re.bucket_totals();
    std::size_t dominant = 0;
    for (std::size_t i = 1; i < trace::kNumBuckets; ++i) {
      if (exact_buckets[i] > exact_buckets[dominant]) dominant = i;
    }
    ASSERT_GT(exact_buckets[dominant], 0u);
    const double rel_err =
        std::abs(static_cast<double>(est.buckets[dominant].value) -
                 static_cast<double>(exact_buckets[dominant])) /
        static_cast<double>(exact_buckets[dominant]);
    EXPECT_LT(rel_err, 0.05)
        << to_string(static_cast<trace::CycleBucket>(dominant)) << " exact "
        << exact_buckets[dominant] << " est " << est.buckets[dominant].value;
  }
}

INSTANTIATE_TEST_SUITE_P(
    TreeAddAndMst, SampleValidation,
    ::testing::Combine(::testing::Values("TreeAdd", "MST"),
                       ::testing::Values(0, 1, 2)));

}  // namespace
}  // namespace olden::bench
