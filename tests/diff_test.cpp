// Cross-run trace diffing (src/olden/analyze/diff.hpp).
//
// The load-bearing property is exactness: the per-bucket, per-site,
// per-page and per-edge delta attributions must each sum to precisely the
// makespan delta — no residuals, no double counting — because a report
// that "roughly" explains a regression cannot be trusted to name its
// cause. That invariant is held here across benchmarks x scheme pairs,
// with and without fault injection, through the top-N/other rollup, and
// for both profile pipelines (in-memory diff_profile and the streaming
// analyzer's diff-detail mode), whose outputs must be byte-identical —
// including when the traces were produced by the host-parallel
// adopt_runs_from merge instead of serially.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "olden/analyze/diff.hpp"
#include "olden/analyze/streaming.hpp"
#include "olden/analyze/trace_reader.hpp"
#include "olden/bench/benchmark.hpp"
#include "olden/fault/fault_spec.hpp"
#include "olden/trace/observer.hpp"

namespace olden::bench {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "olden_diff_" + name;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
}

void run_cell(trace::Observer& obs, const std::string& name, Coherence scheme,
              const fault::FaultSpec* faults = nullptr) {
  const Benchmark* b = find_benchmark(name);
  ASSERT_NE(b, nullptr) << name;
  obs.begin_run(name + "/diff");
  BenchConfig cfg{.nprocs = 4, .scheme = scheme};
  cfg.tiny = true;
  cfg.observer = &obs;
  cfg.faults = faults;
  (void)b->run(cfg);
}

/// Trace one cell and return its diff profile via the in-memory pipeline.
analyze::DiffProfile profile_cell(const std::string& name, Coherence scheme,
                                  const fault::FaultSpec* faults = nullptr) {
  trace::Observer obs;
  obs.set_trace_enabled(true);
  run_cell(obs, name, scheme, faults);
  analyze::TraceFile file;
  std::string err;
  EXPECT_TRUE(analyze::parse_binary_trace(trace::binary_trace_bytes(obs),
                                          &file, &err))
      << err;
  EXPECT_EQ(file.runs.size(), 1u);
  return analyze::diff_profile(file.runs[0]);
}

/// Every partition of the report — including the emitted top rows plus
/// their other-rollup — must balance to the makespan delta.
void expect_exact(const analyze::DiffReport& rep) {
  EXPECT_EQ(rep.makespan_delta, static_cast<std::int64_t>(rep.b.makespan) -
                                    static_cast<std::int64_t>(rep.a.makespan));
  EXPECT_EQ(rep.bucket_delta_sum, rep.makespan_delta);
  EXPECT_EQ(rep.site_delta_sum, rep.makespan_delta);
  EXPECT_EQ(rep.page_delta_sum, rep.makespan_delta);
  EXPECT_EQ(rep.edge_delta_sum, rep.makespan_delta);

  std::int64_t buckets = 0;
  for (const analyze::DiffRow& row : rep.buckets) buckets += row.delta;
  EXPECT_EQ(buckets, rep.makespan_delta);

  std::int64_t sites = rep.sites_other.delta;
  for (const analyze::SiteDiff& s : rep.sites) sites += s.row.delta;
  EXPECT_EQ(sites, rep.makespan_delta);

  std::int64_t pages = rep.pages_other.delta;
  for (const analyze::PageDiff& p : rep.pages) pages += p.row.delta;
  EXPECT_EQ(pages, rep.makespan_delta);

  std::int64_t edges = rep.edges_other.delta;
  for (const analyze::EdgeDiff& e : rep.edges) edges += e.row.delta;
  EXPECT_EQ(edges, rep.makespan_delta);
}

class DiffExactness
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::pair<Coherence, Coherence>>> {};

TEST_P(DiffExactness, EveryPartitionSumsToTheMakespanDelta) {
  const auto& [name, schemes] = GetParam();
  const analyze::DiffProfile a = profile_cell(name, schemes.first);
  const analyze::DiffProfile b = profile_cell(name, schemes.second);

  // Per-run exactness first: each profile's partitions sum to its own
  // makespan (the critical-path telescoping property the diff builds on).
  for (const analyze::DiffProfile* p : {&a, &b}) {
    std::uint64_t total = 0;
    for (const std::uint64_t c : p->buckets) total += c;
    EXPECT_EQ(total, p->makespan) << p->label;
    std::uint64_t site_total = 0;
    for (const auto& [site, c] : p->site_cycles) site_total += c;
    EXPECT_EQ(site_total, p->makespan) << p->label;
    std::uint64_t edge_total = 0;
    for (const auto& [key, c] : p->edge_cycles) edge_total += c;
    EXPECT_EQ(edge_total, p->makespan) << p->label;
  }

  // A small top_n forces the other-rollup path; exactness must survive it.
  for (const std::size_t top_n : {std::size_t{100}, std::size_t{2}}) {
    analyze::DiffReport rep;
    std::string err;
    ASSERT_TRUE(analyze::diff_runs(a, b, top_n, &rep, &err)) << err;
    expect_exact(rep);
    EXPECT_LE(rep.sites.size(), top_n);
    EXPECT_LE(rep.pages.size(), top_n);
    EXPECT_LE(rep.edges.size(), top_n);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cells, DiffExactness,
    ::testing::Combine(
        ::testing::Values("TreeAdd", "MST", "Health"),
        ::testing::Values(
            std::pair{Coherence::kLocalKnowledge, Coherence::kEagerGlobal},
            std::pair{Coherence::kLocalKnowledge, Coherence::kBilateral},
            std::pair{Coherence::kEagerGlobal, Coherence::kBilateral})),
    [](const auto& info) {
      auto s = [](Coherence c) {
        return c == Coherence::kLocalKnowledge ? "local"
               : c == Coherence::kEagerGlobal  ? "global"
                                               : "bilateral";
      };
      return std::get<0>(info.param) + "_" + s(std::get<1>(info.param).first) +
             "_vs_" + s(std::get<1>(info.param).second);
    });

TEST(Diff, SelfDiffIsZeroEverywhereAndFullyAligned) {
  const analyze::DiffProfile p =
      profile_cell("TreeAdd", Coherence::kLocalKnowledge);
  analyze::DiffReport rep;
  std::string err;
  ASSERT_TRUE(analyze::diff_runs(p, p, 1000, &rep, &err)) << err;
  expect_exact(rep);
  EXPECT_EQ(rep.makespan_delta, 0);
  for (const analyze::DiffRow& row : rep.buckets) EXPECT_EQ(row.delta, 0);
  for (const analyze::SiteDiff& s : rep.sites) EXPECT_EQ(s.row.delta, 0);
  for (const analyze::PageDiff& g : rep.pages) EXPECT_EQ(g.row.delta, 0);
  for (const analyze::EdgeDiff& e : rep.edges) EXPECT_EQ(e.row.delta, 0);
  EXPECT_EQ(rep.chains_a, rep.chains_b);
  EXPECT_EQ(rep.chains_aligned, rep.chains_a);
  EXPECT_GT(rep.chains_a, 0u);
}

TEST(Diff, ExactnessHoldsUnderFaultInjection) {
  fault::FaultSpec spec;
  std::string err;
  ASSERT_TRUE(
      fault::parse_fault_spec("drop=0.05,dup=0.02,delay=0.1:800", &spec, &err))
      << err;
  const analyze::DiffProfile clean =
      profile_cell("TreeAdd", Coherence::kBilateral);
  const analyze::DiffProfile faulty =
      profile_cell("TreeAdd", Coherence::kBilateral, &spec);
  analyze::DiffReport rep;
  ASSERT_TRUE(analyze::diff_runs(clean, faulty, 10, &rep, &err)) << err;
  expect_exact(rep);
}

void expect_profiles_equal(const analyze::DiffProfile& mem,
                           const analyze::DiffProfile& str) {
  EXPECT_EQ(mem.label, str.label);
  EXPECT_EQ(mem.nprocs, str.nprocs);
  EXPECT_EQ(mem.makespan, str.makespan);
  EXPECT_EQ(mem.events, str.events);
  EXPECT_EQ(mem.truncated, str.truncated);
  EXPECT_EQ(mem.buckets, str.buckets);
  EXPECT_EQ(mem.site_cycles, str.site_cycles) << mem.label;
  EXPECT_EQ(mem.page_cycles, str.page_cycles) << mem.label;
  EXPECT_TRUE(mem.edge_cycles == str.edge_cycles) << mem.label;
  EXPECT_TRUE(mem.chain_counts == str.chain_counts) << mem.label;
  EXPECT_EQ(mem.chains, str.chains);
}

/// The streaming analyzer's diff-detail mode must reproduce diff_profile
/// exactly — healthy, truncated, and fault-injected runs alike — which is
/// what makes --diff --stream byte-identical to the in-memory path.
TEST(Diff, StreamingProfileMatchesInMemory) {
  fault::FaultSpec spec;
  std::string err;
  ASSERT_TRUE(
      fault::parse_fault_spec("drop=0.05,dup=0.02,delay=0.1:800", &spec, &err))
      << err;
  trace::Observer obs;
  obs.set_trace_enabled(true);
  obs.set_event_limit(20'000);  // truncates the middle run
  run_cell(obs, "TreeAdd", Coherence::kLocalKnowledge);
  run_cell(obs, "MST", Coherence::kEagerGlobal);
  run_cell(obs, "Health", Coherence::kBilateral, &spec);
  const std::string path = temp_path("stream_parity.bin");
  write_file(path, trace::binary_trace_bytes(obs));

  analyze::TraceFile file;
  ASSERT_TRUE(analyze::read_binary_trace(path, &file, &err)) << err;
  std::vector<analyze::DiffProfile> mem;
  for (const analyze::TraceRun& run : file.runs) {
    mem.push_back(analyze::diff_profile(run));
  }

  analyze::TraceStream ts;
  ASSERT_TRUE(ts.open(path, &err)) << err;
  std::vector<analyze::DiffProfile> str;
  analyze::TraceRun run;
  std::vector<trace::TraceEvent> batch;
  while (ts.next_run(&run, &err)) {
    analyze::StreamingRunAnalyzer an(run, 10);
    an.enable_diff_profile();
    while (ts.next_events(&batch, 4'096, &err)) {
      for (const trace::TraceEvent& e : batch) {
        ASSERT_TRUE(an.add(e)) << an.error();
      }
    }
    ASSERT_TRUE(err.empty()) << err;
    analyze::RunReport rep;
    analyze::DiffProfile profile;
    ASSERT_TRUE(an.finish_diff(&rep, &profile, &err)) << err;
    str.push_back(std::move(profile));
  }
  ASSERT_TRUE(err.empty()) << err;
  ASSERT_EQ(str.size(), mem.size());
  EXPECT_TRUE(file.runs[1].truncated());  // the limit actually bit
  for (std::size_t i = 0; i < mem.size(); ++i) {
    expect_profiles_equal(mem[i], str[i]);
  }

  // And the rendered documents — human and JSON — are byte-identical.
  for (std::size_t i = 0; i + 1 < mem.size(); ++i) {
    analyze::DiffReport rm;
    analyze::DiffReport rs;
    ASSERT_TRUE(analyze::diff_runs(mem[i], mem[i + 1], 10, &rm, &err)) << err;
    ASSERT_TRUE(analyze::diff_runs(str[i], str[i + 1], 10, &rs, &err)) << err;
    EXPECT_EQ(analyze::human_diff(rm), analyze::human_diff(rs));
    EXPECT_EQ(analyze::json_diff({rm}), analyze::json_diff({rs}));
  }
}

/// A clean run diffed against a coherence-faulted run attributes the new
/// retransmissions to the coherence classes — never to migration, never
/// to "unknown" (the encoding is present in freshly produced traces).
TEST(Diff, RetryAttributionSplitsByMessageClass) {
  fault::FaultSpec spec;
  std::string err;
  ASSERT_TRUE(fault::parse_fault_spec(
      "drop=0.3,dup=0.2,timeout=2500,classes=fill:invalidate:ts_check", &spec,
      &err))
      << err;
  const analyze::DiffProfile clean =
      profile_cell("EM3D", Coherence::kLocalKnowledge);
  const analyze::DiffProfile faulty =
      profile_cell("EM3D", Coherence::kLocalKnowledge, &spec);

  const auto idx = [](MsgClass c) { return static_cast<std::size_t>(c); };
  EXPECT_EQ(clean.retries_by_class, decltype(clean.retries_by_class){});
  EXPECT_GT(faulty.retries_by_class[idx(MsgClass::kFill)], 0u);
  EXPECT_EQ(faulty.retries_by_class[idx(MsgClass::kMigration)], 0u);
  EXPECT_EQ(faulty.retries_by_class[kNumMsgClasses], 0u);  // no "unknown"

  analyze::DiffReport rep;
  ASSERT_TRUE(analyze::diff_runs(clean, faulty, 10, &rep, &err)) << err;
  const analyze::DiffRow& fill = rep.retries_by_class[idx(MsgClass::kFill)];
  EXPECT_EQ(fill.a, 0u);
  EXPECT_EQ(fill.b, faulty.retries_by_class[idx(MsgClass::kFill)]);
  EXPECT_EQ(fill.delta, static_cast<std::int64_t>(fill.b));

  const std::string json = analyze::json_diff({rep});
  EXPECT_NE(json.find("\"retries_by_class\""), std::string::npos);
  EXPECT_NE(json.find("\"unknown\""), std::string::npos);
  const std::string human = analyze::human_diff(rep);
  EXPECT_NE(human.find("retransmits by message class"), std::string::npos)
      << human;
  EXPECT_NE(human.find("fill"), std::string::npos) << human;
}

/// Determinism: the same workload pair diffed twice — and diffed from
/// traces produced by the host-parallel adopt_runs_from merge instead of
/// serially — yields byte-identical documents.
TEST(Diff, OutputBytesInvariantAcrossRepeatsAndTraceProduction) {
  const std::vector<std::pair<std::string, Coherence>> cells = {
      {"TreeAdd", Coherence::kLocalKnowledge},
      {"TreeAdd", Coherence::kEagerGlobal}};

  fault::FaultSpec spec;
  {
    std::string err;
    ASSERT_TRUE(fault::parse_fault_spec("drop=0.05,delay=0.1:800", &spec, &err))
        << err;
  }
  auto diff_json_serial = [&]() {
    trace::Observer obs;
    obs.set_trace_enabled(true);
    for (const auto& [name, scheme] : cells) run_cell(obs, name, scheme);
    // A fault-injected third run: deterministic replay of the fault plane
    // is part of the byte-identity promise.
    run_cell(obs, "TreeAdd", Coherence::kEagerGlobal, &spec);
    analyze::TraceFile file;
    std::string err;
    EXPECT_TRUE(analyze::parse_binary_trace(trace::binary_trace_bytes(obs),
                                            &file, &err))
        << err;
    EXPECT_EQ(file.runs.size(), 3u);
    analyze::DiffReport rep;
    EXPECT_TRUE(analyze::diff_runs(analyze::diff_profile(file.runs[0]),
                                   analyze::diff_profile(file.runs[1]), 10,
                                   &rep, &err))
        << err;
    analyze::DiffReport faulty;
    EXPECT_TRUE(analyze::diff_runs(analyze::diff_profile(file.runs[1]),
                                   analyze::diff_profile(file.runs[2]), 10,
                                   &faulty, &err))
        << err;
    return analyze::json_diff({rep, faulty}) + analyze::human_diff(rep) +
           analyze::human_diff(faulty);
  };
  const std::string first = diff_json_serial();
  const std::string second = diff_json_serial();
  EXPECT_EQ(first, second);

  // The --jobs production path: workers record into private observers,
  // the main observer adopts. Trace bytes are documented identical, so
  // the diff must be too.
  trace::Observer main_obs;
  main_obs.set_trace_enabled(true);
  for (const auto& [name, scheme] : cells) {
    trace::Observer worker;
    worker.set_trace_enabled(true);
    run_cell(worker, name, scheme);
    main_obs.adopt_runs_from(worker);
  }
  {
    trace::Observer worker;
    worker.set_trace_enabled(true);
    run_cell(worker, "TreeAdd", Coherence::kEagerGlobal, &spec);
    main_obs.adopt_runs_from(worker);
  }
  analyze::TraceFile file;
  std::string err;
  ASSERT_TRUE(analyze::parse_binary_trace(trace::binary_trace_bytes(main_obs),
                                          &file, &err))
      << err;
  ASSERT_EQ(file.runs.size(), 3u);
  analyze::DiffReport rep;
  ASSERT_TRUE(analyze::diff_runs(analyze::diff_profile(file.runs[0]),
                                 analyze::diff_profile(file.runs[1]), 10,
                                 &rep, &err))
      << err;
  analyze::DiffReport faulty;
  ASSERT_TRUE(analyze::diff_runs(analyze::diff_profile(file.runs[1]),
                                 analyze::diff_profile(file.runs[2]), 10,
                                 &faulty, &err))
      << err;
  EXPECT_EQ(analyze::json_diff({rep, faulty}) + analyze::human_diff(rep) +
                analyze::human_diff(faulty),
            first);
}

}  // namespace
}  // namespace olden::bench
