// End-to-end smoke tests of the runtime core: allocation, local and remote
// access under both mechanisms, migration with return stubs, futures with
// lazy task creation, and basic determinism.
#include <gtest/gtest.h>

#include "olden/olden.hpp"

namespace olden {
namespace {

struct Node {
  std::int64_t val;
  GPtr<Node> next;
};

enum Site : SiteId { kSiteVal, kSiteNext, kNumSites };

std::vector<Mechanism> all_cache() {
  return {Mechanism::kCache, Mechanism::kCache};
}
std::vector<Mechanism> all_migrate() {
  return {Mechanism::kMigrate, Mechanism::kMigrate};
}

/// Builds an N-element list with values 1..n, element i on proc
/// owner(i); returns the head.
Task<GPtr<Node>> build_list(Machine& m, int n,
                            std::function<ProcId(int)> owner) {
  GPtr<Node> head;
  GPtr<Node> tail;
  for (int i = 0; i < n; ++i) {
    auto node = m.alloc<Node>(owner(i));
    co_await wr(node, &Node::val, std::int64_t{i + 1}, kSiteVal);
    co_await wr(node, &Node::next, GPtr<Node>{}, kSiteNext);
    if (!head) {
      head = node;
    } else {
      co_await wr(tail, &Node::next, node, kSiteNext);
    }
    tail = node;
  }
  co_return head;
}

Task<std::int64_t> sum_list(Machine& m, GPtr<Node> l) {
  std::int64_t acc = 0;
  while (l) {
    acc += co_await rd(l, &Node::val, kSiteVal);
    l = co_await rd(l, &Node::next, kSiteNext);
    m.work(4);
  }
  co_return acc;
}

Task<std::int64_t> list_root(Machine& m, int n,
                             std::function<ProcId(int)> owner) {
  GPtr<Node> head = co_await build_list(m, n, owner);
  co_return co_await sum_list(m, head);
}

TEST(RuntimeSmoke, SingleProcLocalList) {
  Machine m({.nprocs = 1});
  m.set_site_mechanisms(all_cache());
  auto r = run_program(m, list_root(m, 100, [](int) { return ProcId{0}; }));
  EXPECT_EQ(r, 100 * 101 / 2);
  EXPECT_EQ(m.stats().migrations, 0u);
  EXPECT_EQ(m.stats().cache_misses, 0u);
  EXPECT_GT(m.makespan(), 0u);
}

TEST(RuntimeSmoke, CachedCyclicList) {
  Machine m({.nprocs = 4});
  m.set_site_mechanisms(all_cache());
  auto r = run_program(m, list_root(m, 100, [](int i) {
                         return static_cast<ProcId>(i % 4);
                       }));
  EXPECT_EQ(r, 100 * 101 / 2);
  EXPECT_EQ(m.stats().migrations, 0u);
  EXPECT_GT(m.stats().cache_misses, 0u);
  EXPECT_GT(m.stats().cacheable_reads_remote, 0u);
}

TEST(RuntimeSmoke, MigratedBlockedList) {
  Machine m({.nprocs = 4});
  m.set_site_mechanisms(all_migrate());
  auto r = run_program(m, list_root(m, 100, [](int i) {
                         return static_cast<ProcId>(i / 25);
                       }));
  EXPECT_EQ(r, 100 * 101 / 2);
  // Build phase writes remotely (one migration per element placement off
  // the current processor); the traversal adds only P-1 = 3 forward moves.
  EXPECT_GT(m.stats().migrations, 0u);
  EXPECT_EQ(m.stats().cache_misses, 0u);
}

// --- migration + return stub -------------------------------------------

// A dedicated migrate site for the helper's read, so the test can pin the
// setup writes to caching (which do not move the thread) and the kernel
// read to migration (which does).
enum StubSite : SiteId { kStubCacheVal = 0, kStubMigrateVal = 1 };

Task<std::int64_t> read_remote_then_return(Machine& m, GPtr<Node> far) {
  // This dereference migrates us to far's processor...
  std::int64_t v = co_await rd(far, &Node::val, kStubMigrateVal);
  m.work(10);
  co_return v;  // ...and the return stub must bring control back.
}

Task<std::int64_t> stub_root(Machine& m) {
  auto far = m.alloc<Node>(3);
  // Cache site: write-through, the root thread stays on processor 0.
  co_await wr(far, &Node::val, std::int64_t{77}, kStubCacheVal);
  const auto before = m.cur_proc();
  std::int64_t v = co_await read_remote_then_return(m, far);
  // After the call returns we are back on the caller's processor.
  EXPECT_EQ(m.cur_proc(), before);
  co_return v;
}

TEST(RuntimeSmoke, ReturnStubRestoresProcessor) {
  Machine m({.nprocs = 4});
  m.set_site_mechanisms({Mechanism::kCache, Mechanism::kMigrate});
  auto r = run_program(m, stub_root(m));
  EXPECT_EQ(r, 77);
  EXPECT_EQ(m.stats().migrations, 1u);
  EXPECT_EQ(m.stats().return_migrations, 1u);
}

// --- futures -------------------------------------------------------------

Task<std::int64_t> local_work(Machine& m, std::int64_t x) {
  m.work(50);
  co_return x * 2;
}

Task<std::int64_t> inline_future_root(Machine& m) {
  auto f = co_await futurecall(local_work(m, 21));
  std::int64_t v = co_await touch(f);
  co_return v;
}

TEST(RuntimeSmoke, FutureWithoutMigrationCreatesNoThread) {
  Machine m({.nprocs = 4});
  m.set_site_mechanisms(all_cache());
  auto r = run_program(m, inline_future_root(m));
  EXPECT_EQ(r, 42);
  EXPECT_EQ(m.stats().futurecalls, 1u);
  EXPECT_EQ(m.stats().futures_inlined, 1u);
  EXPECT_EQ(m.stats().futures_stolen, 0u);
  EXPECT_EQ(m.threads_created(), 1u);  // just the root
  EXPECT_EQ(m.cells_live(), 0u);
}

Task<std::int64_t> remote_work(Machine& m, GPtr<Node> far) {
  std::int64_t v = co_await rd(far, &Node::val, kStubMigrateVal);  // migrates
  m.work(500);
  co_return v;
}

Task<std::int64_t> stolen_future_root(Machine& m) {
  auto far = m.alloc<Node>(2);
  co_await wr(far, &Node::val, std::int64_t{5}, kStubCacheVal);
  auto f = co_await futurecall(remote_work(m, far));
  m.work(100);  // runs in parallel with the body, on proc 0
  std::int64_t v = co_await touch(f);
  co_return v;
}

TEST(RuntimeSmoke, FutureStealingAfterMigration) {
  Machine m({.nprocs = 4});
  m.set_site_mechanisms({Mechanism::kCache, Mechanism::kMigrate});
  auto r = run_program(m, stolen_future_root(m));
  EXPECT_EQ(r, 5);
  EXPECT_EQ(m.stats().futurecalls, 1u);
  EXPECT_EQ(m.stats().futures_stolen, 1u);
  EXPECT_EQ(m.cells_live(), 0u);
}

// Recursive parallel sum over a tree distributed across processors: the
// canonical Olden pattern (TreeAdd in miniature).
struct TNode {
  std::int64_t val;
  GPtr<TNode> left, right;
};
enum TSite : SiteId { kTVal, kTLeft, kTRight };

Task<GPtr<TNode>> build_tree(Machine& m, int depth, int cut, ProcId proc) {
  if (depth == 0) co_return GPtr<TNode>{};
  auto n = m.alloc<TNode>(proc);
  co_await wr(n, &TNode::val, std::int64_t{1}, kTVal);
  // Below the cut depth children stay with the parent; above it they are
  // scattered round-robin.
  const ProcId lp =
      cut > 0 ? static_cast<ProcId>((proc * 2 + 1) % m.nprocs()) : proc;
  const ProcId rp =
      cut > 0 ? static_cast<ProcId>((proc * 2 + 2) % m.nprocs()) : proc;
  auto l = co_await build_tree(m, depth - 1, cut - 1, lp);
  auto r = co_await build_tree(m, depth - 1, cut - 1, rp);
  co_await wr(n, &TNode::left, l, kTLeft);
  co_await wr(n, &TNode::right, r, kTRight);
  co_return n;
}

Task<std::int64_t> tree_sum(Machine& m, GPtr<TNode> t) {
  if (!t) co_return 0;
  auto l = co_await rd(t, &TNode::left, kTLeft);
  auto r = co_await rd(t, &TNode::right, kTRight);
  auto fl = co_await futurecall(tree_sum(m, l));
  std::int64_t rs = co_await tree_sum(m, r);
  std::int64_t ls = co_await touch(fl);
  m.work(6);
  co_return ls + rs + co_await rd(t, &TNode::val, kTVal);
}

Task<std::int64_t> tree_root(Machine& m, int depth) {
  auto t = co_await build_tree(m, depth, 3, 0);
  co_return co_await tree_sum(m, t);
}

class TreeSumAllSchemes
    : public ::testing::TestWithParam<std::tuple<Coherence, ProcId>> {};

TEST_P(TreeSumAllSchemes, CorrectUnderEverySchemeAndSize) {
  const auto [scheme, nprocs] = GetParam();
  Machine m({.nprocs = nprocs, .scheme = scheme});
  m.set_site_mechanisms(
      {Mechanism::kMigrate, Mechanism::kMigrate, Mechanism::kMigrate});
  auto r = run_program(m, tree_root(m, 10));
  EXPECT_EQ(r, (1 << 10) - 1);
  EXPECT_EQ(m.cells_live(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, TreeSumAllSchemes,
    ::testing::Combine(::testing::Values(Coherence::kLocalKnowledge,
                                         Coherence::kEagerGlobal,
                                         Coherence::kBilateral),
                       ::testing::Values(ProcId{1}, ProcId{2}, ProcId{4},
                                         ProcId{8}, ProcId{16}, ProcId{32})));

TEST(RuntimeSmoke, ParallelTreeBeatsSerialAtScale) {
  auto run_at = [](ProcId n) {
    Machine m({.nprocs = n});
    m.set_site_mechanisms(
        {Mechanism::kMigrate, Mechanism::kMigrate, Mechanism::kMigrate});
    auto r = run_program(m, tree_root(m, 14));
    EXPECT_EQ(r, (1 << 14) - 1);
    return m.makespan();
  };
  const Cycles t1 = run_at(1);
  const Cycles t8 = run_at(8);
  EXPECT_LT(t8, t1);  // real parallelism, not just bookkeeping
}

TEST(RuntimeSmoke, Deterministic) {
  auto run_once = [] {
    Machine m({.nprocs = 8});
    m.set_site_mechanisms(
        {Mechanism::kMigrate, Mechanism::kMigrate, Mechanism::kMigrate});
    auto r = run_program(m, tree_root(m, 10));
    return std::pair{r, m.makespan()};
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace olden
