// Tests for the offline trace-analysis engine: binary-log v2 parsing
// (including rejection of v1 logs and malformed framing), the
// exact-makespan critical-path invariant on real traces, min-idle path
// selection and hot-site / ping-pong detection on synthetic DAGs.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "olden/analyze/report.hpp"
#include "olden/bench/benchmark.hpp"
#include "olden/trace/observer.hpp"

namespace olden::analyze {
namespace {

using trace::EventKind;
using trace::TraceEvent;

// --- helpers -------------------------------------------------------------

void append_u64le(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out += static_cast<char>((v >> (8 * i)) & 0xff);
}
void append_u32le(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out += static_cast<char>((v >> (8 * i)) & 0xff);
}

/// Serialize one hand-built v2 record (must mirror export.cpp's layout).
void append_record(std::string& out, const TraceEvent& e) {
  append_u64le(out, e.time);
  append_u32le(out, e.proc);
  append_u64le(out, e.thread);
  out += static_cast<char>(e.kind);
  out.append(3, '\0');
  append_u32le(out, e.site);
  append_u64le(out, e.arg0);
  append_u64le(out, e.arg1);
  append_u64le(out, e.id);
  append_u64le(out, e.chain);
  append_u64le(out, e.parent);
}

/// A traced tiny TreeAdd run through the real machine.
trace::Observer observed_treeadd(ProcId nprocs, std::uint64_t* makespan) {
  trace::Observer obs;
  obs.set_trace_enabled(true);
  const bench::Benchmark* b = bench::find_benchmark("TreeAdd");
  bench::BenchConfig cfg;
  cfg.nprocs = nprocs;
  cfg.tiny = true;
  cfg.observer = &obs;
  obs.begin_run("analyze-test/TreeAdd");
  const bench::BenchResult r = b->run(cfg);
  if (makespan != nullptr) *makespan = r.total_cycles;
  return obs;
}

TraceEvent make_event(std::uint64_t id, Cycles time, ProcId proc,
                      EventKind kind, std::uint64_t arg0 = 0,
                      std::uint64_t arg1 = 0,
                      std::uint64_t parent = trace::kNoEvent) {
  TraceEvent e;
  e.id = id;
  e.time = time;
  e.proc = proc;
  e.kind = kind;
  e.arg0 = arg0;
  e.arg1 = arg1;
  e.parent = parent;
  e.chain = 0;
  return e;
}

// --- reader --------------------------------------------------------------

TEST(TraceReader, RejectsV1LogsWithVersionedError) {
  std::string blob = "OLDNTRC1";
  append_u32le(blob, 1);
  append_u32le(blob, 0);
  TraceFile file;
  std::string err;
  EXPECT_FALSE(parse_binary_trace(blob, &file, &err));
  EXPECT_NE(err.find("v1"), std::string::npos) << err;
  EXPECT_NE(err.find("OLDNTRC2"), std::string::npos) << err;
}

TEST(TraceReader, RejectsUnknownMagic) {
  TraceFile file;
  std::string err;
  EXPECT_FALSE(parse_binary_trace("not a trace at all", &file, &err));
  EXPECT_FALSE(err.empty());
}

TEST(TraceReader, RejectsTruncatedFraming) {
  const trace::Observer obs = observed_treeadd(2, nullptr);
  const std::string bytes = trace::binary_trace_bytes(obs);
  ASSERT_GT(bytes.size(), 100u);
  TraceFile file;
  std::string err;
  // Cut mid-record and mid-header; both must fail cleanly.
  EXPECT_FALSE(parse_binary_trace(
      std::string_view(bytes).substr(0, bytes.size() - 7), &file, &err));
  EXPECT_FALSE(parse_binary_trace(std::string_view(bytes).substr(0, 18),
                                  &file, &err));
}

TEST(TraceReader, RejectsOutOfRangeEventKind) {
  std::string blob = "OLDNTRC2";
  append_u32le(blob, 2);  // version
  append_u32le(blob, 1);  // one run
  append_u32le(blob, 1);  // label "x"
  blob += "x";
  append_u32le(blob, 1);   // nprocs
  append_u64le(blob, 10);  // makespan
  append_u64le(blob, 0);   // dropped
  append_u64le(blob, 1);   // one event
  TraceEvent e = make_event(0, 5, 0, EventKind::kCacheHit);
  e.kind = static_cast<EventKind>(200);
  append_record(blob, e);
  TraceFile file;
  std::string err;
  EXPECT_FALSE(parse_binary_trace(blob, &file, &err));
  EXPECT_NE(err.find("kind"), std::string::npos) << err;
}

TEST(TraceReader, RoundTripsV2IncludingCausalFields) {
  const trace::Observer obs = observed_treeadd(4, nullptr);
  ASSERT_EQ(obs.runs().size(), 1u);
  const trace::RunRecord& rec = obs.runs()[0];
  ASSERT_GT(rec.events.size(), 0u);

  TraceFile file;
  std::string err;
  ASSERT_TRUE(parse_binary_trace(trace::binary_trace_bytes(obs), &file, &err))
      << err;
  EXPECT_EQ(file.version, trace::kBinaryTraceVersion);
  ASSERT_EQ(file.runs.size(), 1u);
  const TraceRun& run = file.runs[0];
  EXPECT_EQ(run.label, rec.label);
  EXPECT_EQ(run.nprocs, rec.nprocs);
  EXPECT_EQ(run.makespan, rec.makespan);
  EXPECT_EQ(run.events_dropped, rec.events_dropped);
  ASSERT_EQ(run.events.size(), rec.events.size());
  bool any_parent = false;
  bool any_chain = false;
  for (std::size_t i = 0; i < run.events.size(); ++i) {
    const TraceEvent& got = run.events[i];
    const TraceEvent& want = rec.events[i];
    EXPECT_EQ(got.time, want.time) << i;
    EXPECT_EQ(got.proc, want.proc) << i;
    EXPECT_EQ(got.thread, want.thread) << i;
    EXPECT_EQ(got.kind, want.kind) << i;
    EXPECT_EQ(got.site, want.site) << i;
    EXPECT_EQ(got.arg0, want.arg0) << i;
    EXPECT_EQ(got.arg1, want.arg1) << i;
    EXPECT_EQ(got.id, want.id) << i;
    EXPECT_EQ(got.chain, want.chain) << i;
    EXPECT_EQ(got.parent, want.parent) << i;
    any_parent = any_parent || got.parent != trace::kNoEvent;
    any_chain = any_chain || got.chain != trace::kNoChain;
  }
  // A multi-processor TreeAdd definitely produced causal links and chains.
  EXPECT_TRUE(any_parent);
  EXPECT_TRUE(any_chain);
}

// --- critical path -------------------------------------------------------

TEST(CriticalPathTest, TotalEqualsMakespanOnRealTrace) {
  // The acceptance invariant: on a real 8-processor TreeAdd trace the
  // extracted path's weight is the traced makespan, exactly, and the
  // per-bucket attribution tiles it with no remainder.
  std::uint64_t makespan = 0;
  const trace::Observer obs = observed_treeadd(8, &makespan);
  TraceFile file;
  std::string err;
  ASSERT_TRUE(parse_binary_trace(trace::binary_trace_bytes(obs), &file, &err))
      << err;
  const TraceRun& run = file.runs.at(0);
  ASSERT_EQ(run.makespan, makespan);
  ASSERT_FALSE(run.truncated());

  const CriticalPath path = critical_path(run);
  EXPECT_EQ(path.total_cycles, makespan);
  std::uint64_t attributed = 0;
  for (std::uint64_t w : path.attribution) attributed += w;
  EXPECT_EQ(attributed, path.total_cycles);
  ASSERT_FALSE(path.steps.empty());
  EXPECT_EQ(path.steps.front().src, PathStep::kSourceStep);
  EXPECT_EQ(path.steps.back().event, PathStep::kSinkStep);
  std::uint64_t step_sum = 0;
  for (const PathStep& s : path.steps) step_sum += s.weight;
  EXPECT_EQ(step_sum, path.total_cycles);
}

TEST(CriticalPathTest, EmptyRunIsOneOpaqueEdge) {
  TraceRun run;
  run.nprocs = 2;
  run.makespan = 100;
  const CriticalPath path = critical_path(run);
  EXPECT_EQ(path.total_cycles, 100u);
  EXPECT_EQ(path.attribution[static_cast<int>(trace::CycleBucket::kIdle)],
            100u);
  EXPECT_EQ(path.steps.size(), 1u);
}

TEST(CriticalPathTest, PrefersThePathWithLeastIdle) {
  // Two routes to the sink: straight up proc 1 (idle until its only event
  // at t=90), or through proc 0's work at t=50 and the causal edge to
  // proc 1. Both telescope to the makespan; the extractor must take the
  // one that works longer.
  TraceRun run;
  run.nprocs = 2;
  run.makespan = 100;
  run.events.push_back(make_event(0, 50, 0, EventKind::kCacheHit, 7));
  run.events.push_back(
      make_event(1, 90, 1, EventKind::kCacheHit, 7, 0, /*parent=*/0));
  const CriticalPath path = critical_path(run);
  EXPECT_EQ(path.total_cycles, 100u);
  // SOURCE -> e0 (50 compute) -> e1 (40 causal compute) -> SINK (10 idle).
  EXPECT_EQ(path.attribution[static_cast<int>(trace::CycleBucket::kIdle)],
            10u);
  EXPECT_EQ(path.attribution[static_cast<int>(trace::CycleBucket::kCompute)],
            90u);
  ASSERT_EQ(path.steps.size(), 3u);
  EXPECT_EQ(path.steps[0].event, 0u);
  EXPECT_EQ(path.steps[1].event, 1u);
}

TEST(CriticalPathTest, MigrationTransitIsAttributedToMigration) {
  TraceRun run;
  run.nprocs = 2;
  run.makespan = 60;
  run.events.push_back(
      make_event(0, 10, 0, EventKind::kMigrationDepart, /*target=*/1));
  run.events.push_back(make_event(1, 40, 1, EventKind::kMigrationArrive,
                                  /*src=*/0, /*transit=*/30, /*parent=*/0));
  const CriticalPath path = critical_path(run);
  EXPECT_EQ(path.total_cycles, 60u);
  EXPECT_EQ(
      path.attribution[static_cast<int>(trace::CycleBucket::kMigration)], 30u);
}

// --- run reports ---------------------------------------------------------

TEST(AnalyzeReport, HotSitesMatchArrivalsToDepartures) {
  TraceRun run;
  run.nprocs = 2;
  run.makespan = 100;
  TraceEvent dep = make_event(0, 10, 0, EventKind::kMigrationDepart, 1);
  dep.site = 7;
  run.events.push_back(dep);
  run.events.push_back(make_event(1, 35, 1, EventKind::kMigrationArrive,
                                  /*src=*/0, /*transit=*/25, /*parent=*/0));
  TraceEvent dep2 = make_event(2, 40, 1, EventKind::kMigrationDepart, 0);
  dep2.site = 7;
  run.events.push_back(dep2);
  // Second arrival's depart was dropped at the trace limit: unmatched.
  run.events.push_back(make_event(3, 70, 0, EventKind::kMigrationArrive,
                                  /*src=*/1, /*transit=*/30, /*parent=*/99));

  const RunReport rep = analyze_run(run, 10);
  ASSERT_EQ(rep.hot_sites.size(), 1u);
  EXPECT_EQ(rep.hot_sites[0].site, 7u);
  EXPECT_EQ(rep.hot_sites[0].departs, 2u);
  EXPECT_EQ(rep.hot_sites[0].arrives_matched, 1u);
  EXPECT_EQ(rep.hot_sites[0].transit_cycles, 25u);
}

TEST(AnalyzeReport, DetectsPingPongAndFalseSharing) {
  TraceRun run;
  run.nprocs = 2;
  run.makespan = 100;
  const std::uint64_t page = 5;
  // Proc 0 and proc 1 both fill the page; proc 1 is invalidated and then
  // refills: one ping-pong with two sharers = false-sharing suspect.
  run.events.push_back(
      make_event(0, 10, 0, EventKind::kCacheLineFill, page, 0));
  run.events.push_back(
      make_event(1, 20, 1, EventKind::kCacheLineFill, page, 1));
  run.events.push_back(
      make_event(2, 30, 1, EventKind::kLineInvalidate, page, /*dropped=*/2));
  run.events.push_back(
      make_event(3, 40, 1, EventKind::kCacheLineFill, page, 1));
  // An invalidate that dropped nothing must not arm ping-pong detection.
  run.events.push_back(
      make_event(4, 50, 0, EventKind::kLineInvalidate, page, /*dropped=*/0));
  run.events.push_back(
      make_event(5, 60, 0, EventKind::kCacheHit, page));

  const RunReport rep = analyze_run(run, 10);
  EXPECT_EQ(rep.pages_tracked, 1u);
  EXPECT_EQ(rep.ping_pong_total, 1u);
  ASSERT_EQ(rep.hot_pages.size(), 1u);
  const PageStats& p = rep.hot_pages[0];
  EXPECT_EQ(p.page, page);
  EXPECT_EQ(p.heat, 1u);
  EXPECT_EQ(p.fills, 3u);
  EXPECT_EQ(p.invalidates, 1u);
  EXPECT_EQ(p.ping_pongs, 1u);
  EXPECT_EQ(p.sharers, 2u);
  EXPECT_TRUE(p.false_sharing_suspect);
}

TEST(AnalyzeReport, JsonReportIsSchemaVersioned) {
  const trace::Observer obs = observed_treeadd(4, nullptr);
  TraceFile file;
  std::string err;
  ASSERT_TRUE(parse_binary_trace(trace::binary_trace_bytes(obs), &file, &err))
      << err;
  std::vector<RunReport> reports;
  for (const TraceRun& run : file.runs) reports.push_back(analyze_run(run, 5));
  const std::string json = json_report(file, reports);
  EXPECT_NE(json.find("\"analysis_schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"generator\":\"olden-analyze\""), std::string::npos);
  EXPECT_NE(json.find("\"critical_path\""), std::string::npos);
  EXPECT_NE(json.find("\"hot_sites\""), std::string::npos);
  const std::string human = human_report(file.runs[0], reports[0]);
  EXPECT_NE(human.find("critical path:"), std::string::npos);
}

}  // namespace
}  // namespace olden::analyze
