// Machine construction contract and teardown hygiene.
//
// A RunConfig with a machine size outside [1, kMaxProcs] must be rejected
// at construction with a structured ConfigError (the CLIs translate it to
// exit code 2), not discovered later as a shift past the ProcSet word or
// an out-of-range vector index. And a Machine must tear down leak-free no
// matter how the program ended — including futures that were created but
// never touched, whose cells nothing but the machine's registry still
// references. The leak half of this file is only conclusive under the
// OLDEN_SANITIZE=ON build, where ASan turns a dropped cell into a test
// failure; the plain build still checks the observable counters.
#include <gtest/gtest.h>

#include <vector>

#include "olden/olden.hpp"

namespace olden {
namespace {

enum Site : SiteId { kCache0, kNumSites };

std::vector<Mechanism> table() { return {Mechanism::kCache}; }

// --- construction validation ---------------------------------------------

TEST(ConfigValidation, RejectsZeroProcessors) {
  EXPECT_THROW(Machine({.nprocs = 0}), ConfigError);
}

TEST(ConfigValidation, RejectsOversizedMachine) {
  EXPECT_THROW(Machine({.nprocs = kMaxProcs + 1}), ConfigError);
}

TEST(ConfigValidation, ErrorMessageNamesTheBounds) {
  try {
    Machine m({.nprocs = 65});
    FAIL() << "construction should have thrown";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("nprocs"), std::string::npos) << msg;
    EXPECT_NE(msg.find("65"), std::string::npos) << msg;
  }
}

TEST(ConfigValidation, AcceptsTheFullValidRange) {
  EXPECT_NO_THROW(Machine({.nprocs = 1}));
  EXPECT_NO_THROW(Machine({.nprocs = kMaxProcs}));
}

TEST(ConfigValidation, AdaptiveRequiresEagerGlobalCoherence) {
  // The flip drain walks the directory's sharer sets, which only the
  // eager-global protocol maintains; an enabled adaptive config on any
  // other base is a configuration error, not a silent no-op drain.
  RunConfig cfg{.nprocs = 4};
  cfg.adapt.interval = 1024;
  cfg.scheme = Coherence::kLocalKnowledge;
  EXPECT_THROW(Machine{cfg}, ConfigError);
  cfg.scheme = Coherence::kBilateral;
  EXPECT_THROW(Machine{cfg}, ConfigError);
  cfg.scheme = Coherence::kEagerGlobal;
  EXPECT_NO_THROW(Machine{cfg});
  // interval == 0 is "adaptive off": any base scheme is fine.
  cfg.adapt.interval = 0;
  cfg.scheme = Coherence::kLocalKnowledge;
  EXPECT_NO_THROW(Machine{cfg});
}

TEST(ConfigValidation, AdaptiveHysteresisZeroIsNormalizedToOne) {
  RunConfig cfg{.nprocs = 2, .scheme = Coherence::kEagerGlobal};
  cfg.adapt.interval = 4096;
  cfg.adapt.hysteresis = 0;
  Machine m{cfg};
  EXPECT_EQ(m.config().adapt.hysteresis, 1u);
}

// --- leak-free teardown ---------------------------------------------------

Task<std::int64_t> idle_body(Machine&) { co_return 7; }

// Creates `n` futures and touches none of them. Their cells stay resolved
// and unconsumed; only the machine's live-cell registry can free them.
Task<std::int64_t> abandon_futures(Machine& m, int n) {
  for (int i = 0; i < n; ++i) {
    auto f = co_await futurecall(idle_body(m));
    (void)f;  // deliberately never touched
  }
  co_return 1;
}

TEST(MachineTeardown, AbandonedFuturesAreFreedByTheMachine) {
  {
    Machine m({.nprocs = 4});
    m.set_site_mechanisms(table());
    EXPECT_EQ(run_program(m, abandon_futures(m, 64)), 1);
    EXPECT_EQ(m.stats().futurecalls, 64u);
    // ~Machine destroys the 64 never-touched cells (and their body
    // frames) here; ASan fails the test if any survive.
  }
  SUCCEED();
}

Task<std::int64_t> touch_some(Machine& m, int total, int touched) {
  std::int64_t acc = 0;
  for (int i = 0; i < total; ++i) {
    auto f = co_await futurecall(idle_body(m));
    if (i < touched) acc += co_await touch(f);
  }
  co_return acc;
}

TEST(MachineTeardown, MixOfTouchedAndAbandonedFutures) {
  {
    Machine m({.nprocs = 4});
    m.set_site_mechanisms(table());
    EXPECT_EQ(run_program(m, touch_some(m, 32, 10)), 70);
  }
  SUCCEED();
}

}  // namespace
}  // namespace olden
