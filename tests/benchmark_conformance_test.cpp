// Suite-wide conformance: every benchmark must produce its host-reference
// checksum under every machine size, coherence scheme, and mechanism mode.
// This is the repository's strongest correctness net: a stale cache line,
// a mis-routed migration, or a broken coherence protocol shows up here as
// a checksum mismatch, not just as odd statistics.
#include <gtest/gtest.h>

#include "olden/bench/benchmark.hpp"

namespace olden::bench {
namespace {

struct Case {
  const char* name;
  ProcId nprocs;
  Coherence scheme;
  bool migrate_only;
};

std::string case_name(const ::testing::TestParamInfo<
                      std::tuple<const Benchmark*, Case>>& info) {
  const auto& [b, c] = info.param;
  std::string n = b->name() + std::string("_") + c.name;
  for (char& ch : n) {
    if (!isalnum(static_cast<unsigned char>(ch))) ch = '_';
  }
  return n;
}

class Conformance
    : public ::testing::TestWithParam<std::tuple<const Benchmark*, Case>> {};

TEST_P(Conformance, MatchesHostReference) {
  const auto& [b, c] = GetParam();
  BenchConfig cfg;
  cfg.nprocs = c.nprocs;
  cfg.scheme = c.scheme;
  cfg.migrate_only = c.migrate_only;
  const BenchResult res = b->run(cfg);
  EXPECT_EQ(res.checksum, b->reference_checksum(cfg))
      << b->name() << " diverged at P=" << c.nprocs << " scheme "
      << to_string(c.scheme) << (c.migrate_only ? " (migrate-only)" : "");
  EXPECT_GT(res.total_cycles, 0u);
}

const Case kCases[] = {
    {"seq1", 1, Coherence::kLocalKnowledge, false},
    {"local4", 4, Coherence::kLocalKnowledge, false},
    {"local32", 32, Coherence::kLocalKnowledge, false},
    {"global32", 32, Coherence::kEagerGlobal, false},
    {"bilateral32", 32, Coherence::kBilateral, false},
    {"migonly8", 8, Coherence::kLocalKnowledge, true},
};

INSTANTIATE_TEST_SUITE_P(
    Suite, Conformance,
    ::testing::Combine(::testing::ValuesIn(suite()),
                       ::testing::ValuesIn(kCases)),
    case_name);

// The heuristic must land on the choice column of Table 2: benchmarks the
// paper lists as "M" satisfy all remote references by migration alone.
TEST(SuiteShape, HeuristicChoiceMatchesTable2) {
  BenchConfig cfg;
  cfg.nprocs = 32;
  for (const Benchmark* b : suite()) {
    const BenchResult res = b->run(cfg);
    const bool uses_remote_caching = res.stats.remote_cacheable() > 0;
    if (b->heuristic_choice() == "M") {
      EXPECT_EQ(res.stats.remote_cacheable(), 0u)
          << b->name() << " should satisfy remote references by migration";
    } else {
      EXPECT_TRUE(uses_remote_caching)
          << b->name() << " should use software caching for remote data";
      EXPECT_GT(res.stats.migrations, 0u)
          << b->name() << " should also migrate";
    }
  }
}

}  // namespace
}  // namespace olden::bench
