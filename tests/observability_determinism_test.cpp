// The zero-overhead contract: attaching an observer — even with full event
// tracing and an event limit small enough to exercise the drop path — must
// not change a single virtual cycle or checksum. TreeAdd and EM3D are run
// A/B (observer off vs on) across processor counts and all three coherence
// schemes; any drift means an instrumentation hook touched the clocks.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "olden/bench/benchmark.hpp"
#include "olden/trace/observer.hpp"

namespace olden::bench {
namespace {

class ObservabilityAB
    : public ::testing::TestWithParam<
          std::tuple<const char*, ProcId, Coherence>> {};

TEST_P(ObservabilityAB, TracingDoesNotPerturbTheRun) {
  const auto [name, nprocs, scheme] = GetParam();
  const Benchmark* b = find_benchmark(name);
  ASSERT_NE(b, nullptr);

  BenchConfig cfg{.nprocs = nprocs, .scheme = scheme};
  const BenchResult off = b->run(cfg);

  trace::Observer obs;
  obs.set_trace_enabled(true);
  obs.set_event_limit(1000);  // small: force the drop path mid-run
  obs.begin_run(std::string(name) + "/ab");
  cfg.observer = &obs;
  const BenchResult on = b->run(cfg);

  EXPECT_EQ(on.checksum, off.checksum);
  EXPECT_EQ(on.total_cycles, off.total_cycles);
  EXPECT_EQ(on.kernel_cycles, off.kernel_cycles);
  EXPECT_EQ(on.build_cycles, off.build_cycles);
  EXPECT_EQ(on.stats.migrations, off.stats.migrations);
  EXPECT_EQ(on.stats.cache_misses, off.stats.cache_misses);
  EXPECT_EQ(on.stats.futurecalls, off.stats.futurecalls);

  // The observed run actually observed something.
  ASSERT_GE(obs.runs().size(), 1u);
  std::uint64_t events = 0;
  for (const auto& r : obs.runs()) {
    EXPECT_TRUE(r.counters.contains("makespan_cycles")) << r.label;
    events += r.events.size() + r.events_dropped;
  }
  EXPECT_GT(events, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    TreeAddAndEm3d, ObservabilityAB,
    ::testing::Combine(::testing::Values("TreeAdd", "EM3D"),
                       ::testing::Values(ProcId{1}, ProcId{4}, ProcId{8}),
                       ::testing::Values(Coherence::kLocalKnowledge,
                                         Coherence::kEagerGlobal,
                                         Coherence::kBilateral)));

}  // namespace
}  // namespace olden::bench
