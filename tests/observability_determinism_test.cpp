// The zero-overhead contract: attaching an observer — even with full event
// tracing and an event limit small enough to exercise the drop path — must
// not change a single virtual cycle or checksum. TreeAdd and EM3D are run
// A/B (observer off vs on) across processor counts and all three coherence
// schemes; any drift means an instrumentation hook touched the clocks.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "olden/bench/benchmark.hpp"
#include "olden/trace/observer.hpp"

namespace olden::bench {
namespace {

class ObservabilityAB
    : public ::testing::TestWithParam<
          std::tuple<const char*, ProcId, Coherence>> {};

TEST_P(ObservabilityAB, TracingDoesNotPerturbTheRun) {
  const auto [name, nprocs, scheme] = GetParam();
  const Benchmark* b = find_benchmark(name);
  ASSERT_NE(b, nullptr);

  BenchConfig cfg{.nprocs = nprocs, .scheme = scheme};
  const BenchResult off = b->run(cfg);

  trace::Observer obs;
  obs.set_trace_enabled(true);
  obs.set_event_limit(1000);  // small: force the drop path mid-run
  obs.begin_run(std::string(name) + "/ab");
  cfg.observer = &obs;
  const BenchResult on = b->run(cfg);

  EXPECT_EQ(on.checksum, off.checksum);
  EXPECT_EQ(on.total_cycles, off.total_cycles);
  EXPECT_EQ(on.kernel_cycles, off.kernel_cycles);
  EXPECT_EQ(on.build_cycles, off.build_cycles);
  EXPECT_EQ(on.stats.migrations, off.stats.migrations);
  EXPECT_EQ(on.stats.cache_misses, off.stats.cache_misses);
  EXPECT_EQ(on.stats.futurecalls, off.stats.futurecalls);

  // The observed run actually observed something.
  ASSERT_GE(obs.runs().size(), 1u);
  std::uint64_t events = 0;
  for (const auto& r : obs.runs()) {
    EXPECT_TRUE(r.counters.contains("makespan_cycles")) << r.label;
    events += r.events.size() + r.events_dropped;
  }
  EXPECT_GT(events, 0u);

  // Third arm: tracing plus the profiling plane. Profiling hooks charge
  // zero virtual cycles, so the run and even the trace byte stream must
  // match the profile-off traced run exactly.
  trace::Observer obs_prof;
  obs_prof.set_trace_enabled(true);
  obs_prof.set_event_limit(1000);
  obs_prof.enable_profile(4096);  // small interval: many boundary slices
  obs_prof.begin_run(std::string(name) + "/ab");
  cfg.observer = &obs_prof;
  const BenchResult prof = b->run(cfg);

  EXPECT_EQ(prof.checksum, off.checksum);
  EXPECT_EQ(prof.total_cycles, off.total_cycles);
  EXPECT_EQ(prof.kernel_cycles, off.kernel_cycles);
  EXPECT_EQ(trace::binary_trace_bytes(obs_prof), trace::binary_trace_bytes(obs));
  ASSERT_GE(obs_prof.runs().size(), 1u);
  EXPECT_GT(obs_prof.runs().back().profile.total_accesses(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    TreeAddAndEm3d, ObservabilityAB,
    ::testing::Combine(::testing::Values("TreeAdd", "EM3D"),
                       ::testing::Values(ProcId{1}, ProcId{4}, ProcId{8}),
                       ::testing::Values(Coherence::kLocalKnowledge,
                                         Coherence::kEagerGlobal,
                                         Coherence::kBilateral)));

// Causal-chain assignment (chain ids, event ids, parent links) must be as
// deterministic as the run itself: two identical runs produce
// byte-identical binary traces, so a committed trace diff is always a
// behavioral diff, never id-assignment noise.
TEST(ObservabilityDeterminism, RepeatedRunsProduceByteIdenticalTraces) {
  const Benchmark* b = find_benchmark("TreeAdd");
  ASSERT_NE(b, nullptr);
  std::string bytes[2];
  std::uint64_t cycles[2] = {0, 0};
  for (int i = 0; i < 2; ++i) {
    trace::Observer obs;
    obs.set_trace_enabled(true);
    obs.begin_run("repeat");
    BenchConfig cfg{.nprocs = 4};
    cfg.tiny = true;
    cfg.observer = &obs;
    const BenchResult r = b->run(cfg);
    cycles[i] = r.total_cycles;
    bytes[i] = trace::binary_trace_bytes(obs);
  }
  EXPECT_EQ(cycles[0], cycles[1]);
  EXPECT_EQ(bytes[0], bytes[1]);
}

// Chain bookkeeping must never leak into the simulation: a run traced
// with a tight retention limit (different drop pattern, same events
// emitted) costs exactly the same virtual cycles as an untraced run —
// new_chain() and id assignment read the clocks, they never advance them
// or consume simulation RNG.
TEST(ObservabilityDeterminism, ChainAssignmentIsFreeUnderAnyRetention) {
  const Benchmark* b = find_benchmark("TreeAdd");
  ASSERT_NE(b, nullptr);
  BenchConfig cfg{.nprocs = 8};
  cfg.tiny = true;
  const BenchResult off = b->run(cfg);
  for (std::uint64_t limit : {std::uint64_t{1}, std::uint64_t{1000000}}) {
    trace::Observer obs;
    obs.set_trace_enabled(true);
    obs.set_event_limit(limit);
    obs.begin_run("limit=" + std::to_string(limit));
    cfg.observer = &obs;
    const BenchResult on = b->run(cfg);
    EXPECT_EQ(on.total_cycles, off.total_cycles) << limit;
    EXPECT_EQ(on.checksum, off.checksum) << limit;
  }
}

}  // namespace
}  // namespace olden::bench
