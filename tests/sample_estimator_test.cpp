// Satellite unit tests for the sampling plane's arithmetic, in isolation
// from the runtime: the W:D[:offset] grammar, integer-exact window
// splitting, the estimator's conservation laws, and the degenerate
// schedules (W == D fully measured, offset past the makespan).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "olden/bench/benchmark.hpp"
#include "olden/sample/estimator.hpp"
#include "olden/sample/sample.hpp"
#include "olden/trace/observer.hpp"

namespace olden::sample {
namespace {

TEST(SampleSpec, ParsesTwoAndThreeFieldForms) {
  Spec s;
  std::string err;
  ASSERT_TRUE(parse_spec("1000:100", &s, &err)) << err;
  EXPECT_EQ(s.window, 1000u);
  EXPECT_EQ(s.detail, 100u);
  EXPECT_EQ(s.offset, 0u);
  ASSERT_TRUE(parse_spec("1000:100:37", &s, &err)) << err;
  EXPECT_EQ(s.offset, 37u);
  ASSERT_TRUE(parse_spec("1:1", &s, &err)) << err;  // W == D is legal
  EXPECT_EQ(to_string(s), "1:1:0");
}

TEST(SampleSpec, RejectsMalformedSchedules) {
  Spec s;
  std::string err;
  for (const char* bad : {"", "100", "abc", "100:", ":100", "100:0", "0:0",
                          "0:100", "100:200", "1e3:100", "100:50:",
                          "100:50:-1", "-100:50", "100:50:1:2"}) {
    EXPECT_FALSE(parse_spec(bad, &s, &err)) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
}

TEST(SampleSchedule, MeasuredBeforeCountsWindowOverlap) {
  const Spec s{.window = 100, .detail = 30, .offset = 5};
  EXPECT_EQ(measured_before(s, 0), 0u);
  EXPECT_EQ(measured_before(s, 5), 0u);    // window 0 starts at 5
  EXPECT_EQ(measured_before(s, 6), 1u);
  EXPECT_EQ(measured_before(s, 35), 30u);  // window 0 fully measured
  EXPECT_EQ(measured_before(s, 104), 30u); // warming gap
  EXPECT_EQ(measured_before(s, 105), 30u);
  EXPECT_EQ(measured_before(s, 106), 31u); // window 1 opened
  EXPECT_EQ(measured_before(s, 1005), 300u);
}

TEST(SampleSchedule, InDetailMatchesMeasuredBeforeDerivative) {
  const Spec s{.window = 64, .detail = 17, .offset = 3};
  for (Cycles t = 0; t < 1000; ++t) {
    EXPECT_EQ(in_detail(s, t), measured_before(s, t + 1) != measured_before(s, t))
        << t;
  }
}

// The accumulator splits any span integer-exactly: the cycles a span
// deposits across all windows equal its schedule overlap F(b) - F(a).
TEST(SampleAccumulator, SpanSplittingIsIntegerExact) {
  const Spec s{.window = 100, .detail = 30, .offset = 5};
  const struct { Cycles a, b; } spans[] = {
      {0, 4},      // entirely before the first window
      {0, 5},      // touches the boundary, zero overlap
      {0, 50},     // crosses into window 0
      {10, 20},    // inside window 0
      {20, 140},   // window 0 tail + warming gap + window 1 head
      {35, 105},   // exactly one warming gap
      {0, 1000},   // many windows
      {777, 778},  // single cycle
  };
  for (const auto& sp : spans) {
    RunSample rs;
    rs.reset(s);
    rs.add_span(sp.a, sp.b, trace::CycleBucket::kCompute);
    std::uint64_t total = 0;
    for (const WindowCounts& w : rs.windows) {
      total += w.buckets[static_cast<std::size_t>(trace::CycleBucket::kCompute)];
    }
    EXPECT_EQ(total, measured_before(s, sp.b) - measured_before(s, sp.a))
        << sp.a << ".." << sp.b;
  }
}

// Many adjacent spans deposit exactly what one covering span would:
// window attribution is additive with no boundary double-count.
TEST(SampleAccumulator, AdjacentSpansTileWithoutDoubleCounting) {
  const Spec s{.window = 97, .detail = 31, .offset = 11};
  RunSample pieces;
  pieces.reset(s);
  Cycles t = 0;
  int step = 1;
  while (t < 2000) {
    const Cycles next = t + static_cast<Cycles>(step);
    pieces.add_span(t, next, trace::CycleBucket::kMigration);
    t = next;
    step = step % 7 + 1;
  }
  RunSample whole;
  whole.reset(s);
  whole.add_span(0, t, trace::CycleBucket::kMigration);
  ASSERT_EQ(pieces.windows.size(), whole.windows.size());
  for (std::size_t k = 0; k < whole.windows.size(); ++k) {
    EXPECT_EQ(pieces.windows[k].buckets, whole.windows[k].buckets) << k;
  }
}

TEST(SampleAccumulator, FinalizeFoldsMakespanStampedEvents) {
  // With (makespan - offset) divisible by W, an event at t == makespan
  // would open a zero-length trailing window; finalize folds it back.
  const Spec s{.window = 100, .detail = 100, .offset = 0};
  RunSample rs;
  rs.reset(s);
  rs.add_event(200, trace::EventKind::kCacheHit);  // t == makespan
  rs.add_event(42, trace::EventKind::kCacheHit);
  rs.finalize(200);
  ASSERT_EQ(rs.windows.size(), 2u);
  EXPECT_EQ(rs.windows[0].events[static_cast<std::size_t>(
                trace::EventKind::kCacheHit)],
            1u);
  EXPECT_EQ(rs.windows[1].events[static_cast<std::size_t>(
                trace::EventKind::kCacheHit)],
            1u);
  EXPECT_EQ(rs.measured_cycles, 200u);
}

// A fully-measured schedule (W == D) is exact simulation with extra
// steps: estimates equal the in-window sums and every CI is zero.
TEST(SampleEstimator, FullyMeasuredScheduleHasZeroWidthCIs) {
  const Spec s{.window = 1000, .detail = 1000, .offset = 0};
  RunSample rs;
  rs.reset(s);
  const std::uint32_t nprocs = 2;
  // Two procs, makespan 2500: proc 0 computes throughout, proc 1 idles.
  rs.add_span(0, 2500, trace::CycleBucket::kCompute);
  rs.add_span(0, 2500, trace::CycleBucket::kIdle);
  rs.add_event(0, trace::EventKind::kMigrationDepart);
  rs.add_event(2499, trace::EventKind::kCacheHit);
  rs.finalize(2500);
  EXPECT_EQ(rs.measured_cycles, 2500u);
  const RunEstimates est = estimate(rs, nprocs, 2500);
  EXPECT_EQ(est.makespan.value, 2500u);
  EXPECT_EQ(est.makespan.ci95, 0u);
  const auto compute = static_cast<std::size_t>(trace::CycleBucket::kCompute);
  const auto idle = static_cast<std::size_t>(trace::CycleBucket::kIdle);
  EXPECT_EQ(est.buckets[compute].value, 2500u);
  EXPECT_EQ(est.buckets[idle].value, 2500u);
  for (const Estimate& e : est.buckets) EXPECT_EQ(e.ci95, 0u);
  for (const Estimate& e : est.event_counts) EXPECT_EQ(e.ci95, 0u);
  EXPECT_EQ(
      est.event_counts[static_cast<std::size_t>(trace::EventKind::kMigrationDepart)]
          .value,
      1u);
}

// Bucket estimates are apportioned so their sum is exactly
// nprocs * makespan, whatever the schedule measured.
TEST(SampleEstimator, BucketEstimatesConserveTotalCycles) {
  const Spec s{.window = 1000, .detail = 137, .offset = 41};
  RunSample rs;
  rs.reset(s);
  const std::uint32_t nprocs = 3;
  const Cycles makespan = 12345;
  // Three procs with interleaved bucket stripes, then idle-padding, so
  // the windows tile measured time exactly as Observer::finish arranges.
  for (std::uint32_t p = 0; p < nprocs; ++p) {
    Cycles t = 0;
    int b = static_cast<int>(p);
    while (t < makespan) {
      Cycles len = 200 + 37 * static_cast<Cycles>(b);
      if (t + len > makespan) len = makespan - t;
      rs.add_span(t, t + len, static_cast<trace::CycleBucket>(b % 5));
      t += len;
      b = (b + 1) % 5;
    }
  }
  rs.finalize(makespan);
  // Windows must tile: sum of all bucket cycles == nprocs * measured.
  std::uint64_t in_window = 0;
  for (const WindowCounts& w : rs.windows) {
    for (std::uint64_t c : w.buckets) in_window += c;
  }
  EXPECT_EQ(in_window, nprocs * rs.measured_cycles);
  const RunEstimates est = estimate(rs, nprocs, makespan);
  std::uint64_t est_sum = 0;
  for (const Estimate& e : est.buckets) est_sum += e.value;
  EXPECT_EQ(est_sum, static_cast<std::uint64_t>(nprocs) * makespan);
}

TEST(SampleEstimator, OffsetPastMakespanYieldsIdleOnlyVacuousEstimates) {
  const Spec s{.window = 100, .detail = 10, .offset = 1 << 20};
  RunSample rs;
  rs.reset(s);
  rs.add_span(0, 500, trace::CycleBucket::kCompute);
  rs.finalize(500);
  EXPECT_EQ(rs.measured_cycles, 0u);
  EXPECT_TRUE(rs.windows.empty());
  const RunEstimates est = estimate(rs, 1, 500);
  const auto idle = static_cast<std::size_t>(trace::CycleBucket::kIdle);
  EXPECT_EQ(est.buckets[idle].value, 500u);
  EXPECT_EQ(est.buckets[idle].ci95, 500u);  // vacuous
}

// --- the W == D contract against a real run -------------------------------

bench::BenchResult run_sampled(const bench::Benchmark* b, const Spec& spec,
                               trace::Observer* obs) {
  obs->set_sample(spec);
  obs->begin_run("sample-test");
  bench::BenchConfig cfg{.nprocs = 4};
  cfg.tiny = true;
  cfg.observer = obs;
  return b->run(cfg);
}

TEST(SampleEstimator, FullyMeasuredRealRunReproducesExactCounters) {
  const bench::Benchmark* b = bench::find_benchmark("TreeAdd");
  ASSERT_NE(b, nullptr);

  trace::Observer exact;
  exact.begin_run("sample-test");
  bench::BenchConfig cfg{.nprocs = 4};
  cfg.tiny = true;
  cfg.observer = &exact;
  const bench::BenchResult r_exact = b->run(cfg);
  ASSERT_EQ(exact.runs().size(), 1u);
  const trace::RunRecord& re = exact.runs()[0];

  trace::Observer sampled;
  const bench::BenchResult r_sampled =
      run_sampled(b, Spec{.window = 4096, .detail = 4096, .offset = 0},
                  &sampled);
  ASSERT_EQ(sampled.runs().size(), 1u);
  const trace::RunRecord& rs = sampled.runs()[0];

  // Sampling never perturbs the simulation.
  EXPECT_EQ(r_sampled.checksum, r_exact.checksum);
  EXPECT_EQ(r_sampled.total_cycles, r_exact.total_cycles);
  EXPECT_EQ(rs.makespan, re.makespan);
  EXPECT_EQ(rs.counters, re.counters);  // machine counters stay exact

  // W == D: estimates reproduce the exact run, CIs are all zero.
  const RunEstimates est = estimate(rs.sample, rs.nprocs, rs.makespan);
  const trace::BucketCycles exact_buckets = re.bucket_totals();
  for (std::size_t i = 0; i < trace::kNumBuckets; ++i) {
    EXPECT_EQ(est.buckets[i].value, exact_buckets[i]) << i;
    EXPECT_EQ(est.buckets[i].ci95, 0u) << i;
  }
  for (std::size_t k = 0; k < trace::kNumEventKinds; ++k) {
    EXPECT_EQ(est.event_counts[k].value, re.event_counts[k]) << k;
    EXPECT_EQ(est.event_counts[k].ci95, 0u) << k;
  }
}

// --- schedule/byte determinism --------------------------------------------

TEST(SampleDeterminism, RepeatedSampledRunsProduceByteIdenticalStats) {
  const bench::Benchmark* b = bench::find_benchmark("MST");
  ASSERT_NE(b, nullptr);
  std::string bytes[2];
  for (int i = 0; i < 2; ++i) {
    trace::Observer obs;
    run_sampled(b, Spec{.window = 8192, .detail = 1024, .offset = 0}, &obs);
    bytes[i] = trace::stats_json(obs);
  }
  EXPECT_EQ(bytes[0], bytes[1]);
  EXPECT_NE(bytes[0].find("\"sampled\":true"), std::string::npos);
}

// adopt_runs_from (the --jobs merge path) must reproduce the serial
// record byte for byte, sample windows included.
TEST(SampleDeterminism, WorkerMergeMatchesSerialByteForByte) {
  const bench::Benchmark* b = bench::find_benchmark("TreeAdd");
  ASSERT_NE(b, nullptr);
  const Spec spec{.window = 8192, .detail = 1024, .offset = 16};

  trace::Observer serial;
  run_sampled(b, spec, &serial);

  trace::Observer worker;
  run_sampled(b, spec, &worker);
  trace::Observer main_obs;
  main_obs.set_sample(spec);
  main_obs.adopt_runs_from(worker);

  EXPECT_EQ(trace::stats_json(main_obs), trace::stats_json(serial));
}

}  // namespace
}  // namespace olden::sample
