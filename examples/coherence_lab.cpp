// Coherence lab: one workload under the three coherence schemes of
// Appendix A, with enough shared read-mostly data that the schemes
// actually diverge.
//
// The workload: a master table of configuration records (read by
// everyone, written rarely) plus per-processor work queues. Each round,
// workers migrate to their queue, read a handful of config records
// through the software cache, and combine them with their local items;
// every few rounds the coordinator rewrites a small part of the table.
//
//  * local knowledge  — every migration arrival flushes the whole cache,
//    so even unchanged config lines are refetched each round;
//  * eager release ("global") — only the rewritten lines are invalidated,
//    at the writer's release: misses collapse;
//  * bilateral — pays a timestamp check per suspect page instead of
//    refetching, landing in between.
//
//   $ build/examples/coherence_lab
#include <cstdio>
#include <vector>

#include "olden/olden.hpp"
#include "olden/support/rng.hpp"

using namespace olden;

struct Config {
  std::int64_t coeff;
  std::int64_t version;
};

struct Item {
  std::int64_t key;
  GPtr<Item> next;
};

enum Site : SiteId { kCfg, kItemKey, kItemNext, kQueueHead, kInit, kNumSites };

constexpr int kConfigs = 256;
constexpr int kItemsPerProc = 64;
constexpr int kRounds = 40;
constexpr int kRewriteEvery = 8;

struct Queue {
  GPtr<Item> head;
  GPtr<Queue> next;
};

Task<std::int64_t> worker(Machine& m, GPtr<Queue> q, GPtr<Config> cfgs,
                          int round) {
  std::int64_t acc = 0;
  GPtr<Item> it = co_await rd(q, &Queue::head, kQueueHead);  // migrates
  Rng pick(static_cast<std::uint64_t>(round) * 977 + q.addr().raw());
  while (it) {
    const auto key = co_await rd(it, &Item::key, kItemKey);
    // Read a few config records through the cache.
    for (int k = 0; k < 4; ++k) {
      const auto c = cfgs.at(static_cast<std::uint32_t>(
          pick.next_below(kConfigs)));
      acc += key * co_await rd(c, &Config::coeff, kCfg);
      m.work(25);
    }
    it = co_await rd(it, &Item::next, kItemNext);
  }
  co_return acc;
}

Task<std::int64_t> program(Machine& m) {
  // Config table on processor 0; queues one per processor.
  auto cfgs = m.alloc_array<Config>(0, kConfigs);
  for (int i = 0; i < kConfigs; ++i) {
    co_await wr(cfgs.at(static_cast<std::uint32_t>(i)), &Config::coeff,
                std::int64_t{i % 7 + 1}, kInit);
  }
  std::vector<GPtr<Queue>> queues;
  for (ProcId p = 0; p < m.nprocs(); ++p) {
    GPtr<Item> chain;
    for (int i = 0; i < kItemsPerProc; ++i) {
      auto it = m.alloc<Item>(p);
      co_await wr(it, &Item::key, std::int64_t{p * 100 + i}, kInit);
      co_await wr(it, &Item::next, chain, kInit);
      chain = it;
    }
    auto q = m.alloc<Queue>(0);
    co_await wr(q, &Queue::head, chain, kInit);
    queues.push_back(q);
  }

  std::int64_t total = 0;
  for (int round = 0; round < kRounds; ++round) {
    if (round % kRewriteEvery == 0) {
      // The coordinator rewrites 8 of the 256 records.
      for (int i = 0; i < 8; ++i) {
        const auto c = cfgs.at(static_cast<std::uint32_t>(
            (round * 31 + i * 17) % kConfigs));
        co_await wr(c, &Config::coeff, std::int64_t{round % 5 + 1}, kCfg);
      }
    }
    std::vector<Future<std::int64_t>> fs;
    for (const auto& q : queues) {
      fs.push_back(co_await futurecall(worker(m, q, cfgs, round)));
    }
    for (auto& f : fs) total += co_await touch(f);
  }
  co_return total;
}

int main() {
  std::printf("%-10s %12s %10s %12s %14s %12s\n", "scheme", "sim ms",
              "misses", "ts checks", "invalidations", "result");
  std::int64_t expected = 0;
  bool first = true;
  for (Coherence scheme : {Coherence::kLocalKnowledge,
                           Coherence::kEagerGlobal, Coherence::kBilateral}) {
    Machine m({.nprocs = 16, .scheme = scheme});
    std::vector<Mechanism> table(kNumSites, Mechanism::kCache);
    table[kQueueHead] = Mechanism::kMigrate;
    table[kItemKey] = Mechanism::kMigrate;
    table[kItemNext] = Mechanism::kMigrate;
    table[kInit] = Mechanism::kMigrate;
    m.set_site_mechanisms(table);
    const std::int64_t r = run_program(m, program(m));
    if (first) {
      expected = r;
      first = false;
    } else if (r != expected) {
      std::printf("COHERENCE BUG: results differ between schemes!\n");
      return 1;
    }
    std::printf("%-10s %12.3f %10llu %12llu %14llu %12lld\n",
                to_string(scheme), m.seconds() * 1e3,
                static_cast<unsigned long long>(m.stats().cache_misses),
                static_cast<unsigned long long>(m.stats().timestamp_checks),
                static_cast<unsigned long long>(m.stats().lines_invalidated),
                static_cast<long long>(r));
  }
  std::printf(
      "\nAll three schemes compute the same result (release consistency\n"
      "w.r.t. migration virtual locks — Appendix A); they differ only in\n"
      "how much traffic keeping the caches honest costs.\n");
  return 0;
}
