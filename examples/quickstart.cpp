// Quickstart: a complete Olden program in ~120 lines.
//
// Builds a binary tree distributed over 8 simulated processors, sums it
// with a parallel recursion, and lets the mechanism-selection heuristic
// decide — from the program's IR — that the traversal should migrate
// (two recursive calls at the default 70% affinity combine to 91%).
//
//   $ build/examples/quickstart
#include <cstdio>

#include "olden/compiler/analysis.hpp"
#include "olden/olden.hpp"

using namespace olden;

// 1. A heap structure. Pointer fields are GPtr<T> (global <proc, local>
//    addresses); records must be trivially copyable, like restricted C.
struct Tree {
  std::int64_t val;
  GPtr<Tree> left, right;
};

// 2. Dereference sites. The compiler would number these; here they are an
//    enum, and the heuristic fills the machine's decision table for them.
enum Site : SiteId { kVal, kLeft, kRight, kInit, kNumSites };

// 3. The annotated program: Task coroutines, rd/wr for every heap access,
//    futurecall/touch for parallelism, explicit ALLOC placement (§2 of
//    the paper: "the computation will tend to follow the data").
Task<GPtr<Tree>> build(Machine& m, int depth, ProcId lo, ProcId hi) {
  if (depth == 0) co_return GPtr<Tree>{};
  auto t = m.alloc<Tree>(lo);  // ALLOC(lo, sizeof(Tree))
  co_await wr(t, &Tree::val, std::int64_t{depth}, kInit);
  const ProcId mid = hi - lo > 1 ? static_cast<ProcId>(lo + (hi - lo) / 2) : lo;
  auto fl = co_await futurecall(
      build(m, depth - 1, mid, hi > mid ? hi : mid + 1));
  auto r = co_await build(m, depth - 1, lo, mid > lo ? mid : hi);
  auto l = co_await touch(fl);
  co_await wr(t, &Tree::left, l, kInit);
  co_await wr(t, &Tree::right, r, kInit);
  co_return t;
}

Task<std::int64_t> sum(Machine& m, GPtr<Tree> t) {
  if (!t) co_return 0;
  const auto l = co_await rd(t, &Tree::left, kLeft);    // may migrate
  const auto r = co_await rd(t, &Tree::right, kRight);
  auto fl = co_await futurecall(sum(m, l));             // parallel child
  const std::int64_t rs = co_await sum(m, r);
  const std::int64_t v = co_await rd(t, &Tree::val, kVal);
  m.work(50);  // the "real" computation at this node
  co_return co_await touch(fl) + rs + v;
}

Task<std::int64_t> program(Machine& m, int depth) {
  auto t = co_await build(m, depth, 0, m.nprocs());
  co_return co_await sum(m, t);
}

// 4. The program's shape as IR, from which the heuristic derives each
//    site's mechanism — exactly the analysis the Olden compiler runs.
ir::Program program_ir() {
  using namespace ir;
  Program p;
  p.structs = {{"tree", {{"left", std::nullopt}, {"right", std::nullopt}}}};
  Procedure sum;
  sum.name = "sum";
  sum.params = {"t"};
  sum.rec_loop_id = 0;
  If branch;
  Call cl;
  cl.callee = "sum";
  cl.args = {{"t", {{"tree", "left"}}}};
  cl.future = true;
  Call cr;
  cr.callee = "sum";
  cr.args = {{"t", {{"tree", "right"}}}};
  branch.else_branch.push_back(deref("t", kLeft));
  branch.else_branch.push_back(deref("t", kRight));
  branch.else_branch.push_back(cl);
  branch.else_branch.push_back(cr);
  branch.else_branch.push_back(deref("t", kVal));
  sum.body.push_back(std::move(branch));
  p.procs.push_back(std::move(sum));
  return p;
}

int main() {
  // Ask the heuristic for the decision table.
  const ir::Selection sel = ir::analyze(program_ir(), kNumSites);
  std::printf("heuristic decisions:\n%s\n", sel.report().c_str());

  // Run the same program at several machine sizes.
  std::printf("%-6s %12s %12s %10s\n", "procs", "result", "sim seconds",
              "migrations");
  for (ProcId procs : {1u, 2u, 4u, 8u, 16u, 32u}) {
    Machine m({.nprocs = procs});
    std::vector<Mechanism> table = sel.site_table;
    table.resize(kNumSites, Mechanism::kCache);
    table[kInit] = Mechanism::kMigrate;  // builder follows its allocations
    m.set_site_mechanisms(table);
    const std::int64_t result = run_program(m, program(m, 16));
    std::printf("%-6u %12lld %12.4f %10llu\n", procs,
                static_cast<long long>(result), m.seconds(),
                static_cast<unsigned long long>(m.stats().migrations));
  }
  return 0;
}
