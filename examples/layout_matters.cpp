// Layout matters: the same program under different data layouts and
// mechanisms (the paper's §2 point that "the programmer must place related
// pieces of data on the same processor explicitly", and §4's Figure 2).
//
// A two-level structure: a directory of buckets, each with a chain of
// records. We lay the chains out three ways — co-located with their
// bucket, striped round-robin, and random — and time a parallel
// per-bucket aggregation under both mechanisms for the chain walk.
//
//   $ build/examples/layout_matters
#include <cstdio>
#include <vector>

#include "olden/olden.hpp"
#include "olden/support/rng.hpp"

using namespace olden;

struct Record {
  std::int64_t key;
  GPtr<Record> next;
};

struct Bucket {
  GPtr<Record> chain;
};

enum Site : SiteId {
  kBucketChain,
  kBucketNext,
  kRecKey,
  kRecNext,
  kInit,
  kNumSites
};

enum class Layout { kCoLocated, kStriped, kRandom };

constexpr int kBuckets = 64;
constexpr int kRecordsPerBucket = 128;

Task<std::vector<GPtr<Bucket>>> build(Machine& m, Layout layout,
                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<GPtr<Bucket>> dir;
  for (int b = 0; b < kBuckets; ++b) {
    const ProcId bproc = static_cast<ProcId>(
        static_cast<std::uint64_t>(b) * m.nprocs() / kBuckets);
    // The bucket record lives with its data: the futurecalled walker's
    // first dereference migrates it there, which is what makes the
    // dispatch parallel (caching alone cannot create threads).
    auto bucket = m.alloc<Bucket>(bproc);
    GPtr<Record> chain;
    for (int r = kRecordsPerBucket - 1; r >= 0; --r) {
      ProcId rproc = bproc;
      if (layout == Layout::kStriped) {
        rproc = static_cast<ProcId>(r % m.nprocs());
      } else if (layout == Layout::kRandom) {
        rproc = static_cast<ProcId>(rng.next_below(m.nprocs()));
      }
      auto rec = m.alloc<Record>(rproc);
      co_await wr(rec, &Record::key, std::int64_t{b * 1000 + r}, kInit);
      co_await wr(rec, &Record::next, chain, kInit);
      chain = rec;
    }
    co_await wr(bucket, &Bucket::chain, chain, kInit);
    dir.push_back(bucket);
  }
  co_return dir;
}

Task<std::int64_t> sum_chain(Machine& m, GPtr<Bucket> b) {
  std::int64_t acc = 0;
  GPtr<Record> r = co_await rd(b, &Bucket::chain, kBucketChain);
  while (r) {
    acc += co_await rd(r, &Record::key, kRecKey);
    r = co_await rd(r, &Record::next, kRecNext);
    m.work(30);
  }
  co_return acc;
}

struct Out {
  std::int64_t total = 0;
  Cycles build_end = 0;
};

Task<Out> program(Machine& m, Layout layout) {
  Out out;
  const std::vector<GPtr<Bucket>> dir = co_await build(m, layout, 99);
  out.build_end = m.now_max();
  std::vector<Future<std::int64_t>> fs;
  for (const auto& b : dir) {
    fs.push_back(co_await futurecall(sum_chain(m, b)));
  }
  for (auto& f : fs) out.total += co_await touch(f);
  co_return out;
}

int main() {
  constexpr ProcId kProcs = 16;
  std::printf(
      "64 buckets x 128 records, %u processors; chain-walk mechanism vs "
      "layout\n",
      kProcs);
  std::printf("%-12s %14s %14s %s\n", "layout", "migrate (ms)", "cache (ms)",
              "better");
  const char* names[] = {"co-located", "striped", "random"};
  for (Layout layout :
       {Layout::kCoLocated, Layout::kStriped, Layout::kRandom}) {
    double ms[2];
    for (int mi = 0; mi < 2; ++mi) {
      Machine m({.nprocs = kProcs});
      std::vector<Mechanism> table(kNumSites, Mechanism::kCache);
      const Mechanism mech =
          mi == 0 ? Mechanism::kMigrate : Mechanism::kCache;
      table[kBucketChain] = Mechanism::kMigrate;  // move body to the bucket
      table[kRecKey] = mech;
      table[kRecNext] = mech;
      m.set_site_mechanisms(table);
      const Out out = run_program(m, program(m, layout));
      if (out.total == 0) return 1;
      ms[mi] = cycles_to_seconds(m.makespan() - out.build_end) * 1e3;
    }
    std::printf("%-12s %14.3f %14.3f %s\n", names[static_cast<int>(layout)],
                ms[0], ms[1], ms[0] < ms[1] ? "migrate" : "cache");
  }
  std::printf(
      "\nCo-located chains favour migration (one hop, then everything is\n"
      "local); striped and random layouts favour caching — the Figure 2\n"
      "tradeoff, on a structure you might actually write.\n");
  return 0;
}
