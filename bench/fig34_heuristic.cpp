// Regenerates Figures 3 and 4: the update matrices and heuristic
// selections for the paper's two worked examples.
//
//  Figure 3: while (s) { t = t->right->left; u = s->right; s = s->left; }
//            with affinity(left)=90, affinity(right)=70.
//  Figure 4: TreeAdd — two recursive calls combine 90/70 -> 97.
#include <cstdio>

#include "olden/bench/obs_cli.hpp"
#include "olden/compiler/analysis.hpp"

using namespace olden;
using namespace olden::ir;

namespace {

FieldRef F(const char* s, const char* f) { return {s, f}; }

void dump(const char* title, const Program& p, std::size_t sites) {
  const Selection sel = analyze(p, sites);
  std::printf("=== %s ===\n%s\n", title, sel.report().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  // No Machine runs here (pure compiler analysis) — the observability
  // flags are still accepted for surface uniformity and produce valid
  // documents with zero runs.
  olden::bench::ObsCli obs;
  obs.parse(&argc, argv);
  if (argc > 1) {
    std::fprintf(stderr, "usage: fig34_heuristic\n%s",
                 olden::bench::ObsCli::usage());
    return 2;
  }
  {
    Program p;
    p.name = "Figure3";
    p.structs = {{"tree", {{"left", 0.90}, {"right", 0.70}}}};
    Procedure loop;
    loop.name = "main";
    loop.params = {"s", "t", "u"};
    While w;
    w.loop_id = 0;
    w.body.push_back(assign("t", "t", {F("tree", "right"), F("tree", "left")},
                            SiteId{1}));
    w.body.push_back(assign("u", "s", {F("tree", "right")}, SiteId{2}));
    w.body.push_back(assign("s", "s", {F("tree", "left")}, SiteId{0}));
    loop.body.push_back(std::move(w));
    p.procs.push_back(std::move(loop));
    dump("Figure 3: induction variables s (90) and t (63); u updated by s",
         p, 3);
  }
  {
    Program p;
    p.name = "TreeAdd";
    p.structs = {{"tree", {{"left", 0.90}, {"right", 0.70}}}};
    Procedure ta;
    ta.name = "TreeAdd";
    ta.params = {"t"};
    ta.rec_loop_id = 0;
    If br;
    Call cl;
    cl.callee = "TreeAdd";
    cl.args = {{"t", {F("tree", "left")}}};
    Call cr;
    cr.callee = "TreeAdd";
    cr.args = {{"t", {F("tree", "right")}}};
    br.else_branch.push_back(cl);
    br.else_branch.push_back(cr);
    br.else_branch.push_back(deref("t", SiteId{0}));
    ta.body.push_back(std::move(br));
    p.procs.push_back(std::move(ta));
    dump("Figure 4: TreeAdd recursion, 1-(1-.9)(1-.7) = 97% -> migrate", p, 1);
  }
  {
    // The same TreeAdd with no hints: defaults (70/70) combine to 91%,
    // still above the 90% threshold — tree traversals migrate by default
    // (the design point of §4.3).
    Program p;
    p.name = "TreeAdd";
    p.structs = {{"tree", {{"left", std::nullopt}, {"right", std::nullopt}}}};
    Procedure ta;
    ta.name = "TreeAdd";
    ta.params = {"t"};
    ta.rec_loop_id = 0;
    If br;
    Call cl;
    cl.callee = "TreeAdd";
    cl.args = {{"t", {F("tree", "left")}}};
    Call cr;
    cr.callee = "TreeAdd";
    cr.args = {{"t", {F("tree", "right")}}};
    br.else_branch.push_back(cl);
    br.else_branch.push_back(cr);
    br.else_branch.push_back(deref("t", SiteId{0}));
    ta.body.push_back(std::move(br));
    p.procs.push_back(std::move(ta));
    dump("Defaults: TreeAdd with no hints, 1-(.3)^2 = 91% -> migrate", p, 1);
  }
  return obs.finish() ? 0 : 1;
}
