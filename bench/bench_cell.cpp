// bench_cell: run individual (benchmark x coherence-scheme) cells with
// checksum validation — the execution backend of the regression harness
// (tools/bench_runner.py).
//
//   bench_cell --benchmark=TreeAdd[,MST,...] [--schemes=local,global,bilateral]
//              [--nprocs=8] [--tiny | --paper-size] [--jobs=N] [--list]
//
// Each cell runs the simulated machine at a deterministic pinned size,
// validates the result checksum against the host-side sequential
// reference, and labels the observer run "BENCH/<name>/p=N/<scheme>" so
// the stats / binary-trace exports carry one run per cell. Exits 1 on any
// checksum mismatch (a correctness regression is worse than a slow one).
//
// --jobs=N runs the cells on a pool of N host threads. Every cell is an
// independent deterministic Machine (runtime state is per-Machine or
// thread_local), so parallel cells compute exactly the serial results;
// each worker records into a private Observer and the main thread merges
// the records in serial cell order (Observer::adopt_runs_from), so stdout,
// traces and stats are byte-identical to --jobs=1 no matter which cell
// finishes first.
#include <atomic>
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "olden/bench/benchmark.hpp"
#include "olden/bench/obs_cli.hpp"
#include "olden/profile/feedback.hpp"

namespace {

using namespace olden;
using namespace olden::bench;

/// Maps a --schemes token to its base coherence protocol. "adaptive" is
/// the eager-global protocol plus the runtime decision table; *adaptive
/// tells the caller to enable it on the cell's AdaptiveConfig.
bool scheme_from_name(const std::string& name, Coherence* out,
                      bool* adaptive) {
  *adaptive = false;
  if (name == "local") { *out = Coherence::kLocalKnowledge; return true; }
  if (name == "global") { *out = Coherence::kEagerGlobal; return true; }
  if (name == "bilateral") { *out = Coherence::kBilateral; return true; }
  if (name == "adaptive") {
    *out = Coherence::kEagerGlobal;
    *adaptive = true;
    return true;
  }
  return false;
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

bool flag_value(const char* arg, const char* name, std::string* out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

bool parse_uint(const std::string& s, unsigned long* out) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
  }
  *out = std::strtoul(s.c_str(), nullptr, 10);
  return true;
}

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: bench_cell --benchmark=NAME[,NAME...] [options]\n"
               "  --benchmark=A,B    suite benchmarks to run (see --list)\n"
               "  --schemes=A,B      coherence schemes (default "
               "local,global,bilateral;\n"
               "                     'adaptive' = global + the runtime "
               "decision table,\n"
               "                     see --adapt-interval)\n"
               "  --nprocs=N         processors per cell (default 8)\n"
               "  --tiny             pinned tiny size (regression harness)\n"
               "  --paper-size       original paper problem size\n"
               "  --jobs=N           run cells on N host threads (default 1;\n"
               "                     output identical to serial)\n"
               "  --heuristic=SPEC   'static' (default) or 'profile:FILE' to\n"
               "                     apply per-site feedback from olden-analyze\n"
               "                     --feedback-out (see docs/PROFILING.md)\n"
               "  --list             print suite benchmark names and exit\n"
               "%s",
               ObsCli::usage());
}

struct Cell {
  const Benchmark* b = nullptr;
  Coherence scheme = Coherence::kLocalKnowledge;
  bool adaptive = false;
  std::string sname;
};

struct CellOutcome {
  std::string line;  ///< stdout row, printed in serial cell order
  std::string err;   ///< stderr diagnostics (mismatch / exception)
  bool ok = true;
  trace::Observer obs;  ///< worker-private record (merged by adopt_runs_from)
};

/// Runs one cell; used verbatim by the serial path (recording straight
/// into the main observer) and the pool (recording into `out->obs`).
void run_cell(const Cell& c, const BenchConfig& base, ObsCli& cli,
              trace::Observer* rec, CellOutcome* out) {
  BenchConfig cfg = base;
  cfg.scheme = c.scheme;
  if (c.adaptive) {
    cfg.adapt.interval = cli.adapt_interval_set()
                             ? cli.adapt_interval()
                             : kDefaultAdaptInterval;
    cfg.adapt.hysteresis = cli.adapt_hysteresis();
  }
  cfg.observer = rec;
  const std::string label = "BENCH/" + c.b->name() + "/p=" +
                            std::to_string(cfg.nprocs) + "/" + c.sname;
  const std::map<std::string, std::string> meta = {
      {"benchmark", c.b->name()},
      {"scheme", c.sname},
      {"size",
       cfg.tiny ? "tiny" : (cfg.paper_size ? "paper" : "default")}};
  if (rec == cli.observer()) {
    cli.begin_run(label, meta);
  } else if (rec != nullptr) {
    rec->begin_run(label, meta);
  }
  const BenchResult r = c.b->run(cfg);
  const std::uint64_t want = c.b->reference_checksum(cfg);
  out->ok = r.checksum == want;
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "%-12s %-9s p=%-2u makespan %12llu cycles  checksum %s\n",
                c.b->name().c_str(), c.sname.c_str(), cfg.nprocs,
                static_cast<unsigned long long>(r.total_cycles),
                out->ok ? "ok" : "MISMATCH");
  out->line = buf;
  if (!out->ok) {
    std::snprintf(buf, sizeof buf,
                  "bench_cell: %s/%s checksum mismatch: got %llu, want %llu\n",
                  c.b->name().c_str(), c.sname.c_str(),
                  static_cast<unsigned long long>(r.checksum),
                  static_cast<unsigned long long>(want));
    out->err = buf;
  }
}

}  // namespace

int main(int argc, char** argv) {
  ObsCli obs;
  obs.parse(&argc, argv,
            {"--benchmark", "--schemes", "--nprocs", "--tiny", "--paper-size",
             "--jobs", "--heuristic", "--list"});

  std::string bench_str;
  std::string schemes_str = "local,global,bilateral";
  unsigned long nprocs = 8;
  unsigned long jobs = 1;
  bool tiny = false;
  bool paper_size = false;
  profile::FeedbackTable feedback;
  bool use_feedback = false;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (flag_value(argv[i], "--benchmark", &v)) {
      bench_str = v;
    } else if (flag_value(argv[i], "--heuristic", &v)) {
      std::string err;
      if (!profile::parse_heuristic_spec(v, &feedback, &use_feedback, &err)) {
        std::fprintf(stderr, "bench_cell: --heuristic: %s\n", err.c_str());
        return 2;
      }
    } else if (flag_value(argv[i], "--schemes", &v)) {
      schemes_str = v;
    } else if (flag_value(argv[i], "--nprocs", &v)) {
      if (!parse_uint(v, &nprocs) || nprocs == 0 || nprocs > kMaxProcs) {
        std::fprintf(stderr, "bench_cell: --nprocs must be in [1, %u]\n",
                     static_cast<unsigned>(kMaxProcs));
        return 2;
      }
    } else if (flag_value(argv[i], "--jobs", &v)) {
      if (!parse_uint(v, &jobs) || jobs == 0) {
        std::fprintf(stderr, "bench_cell: --jobs must be a positive integer\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--tiny") == 0) {
      tiny = true;
    } else if (std::strcmp(argv[i], "--paper-size") == 0) {
      paper_size = true;
    } else if (std::strcmp(argv[i], "--list") == 0) {
      for (const Benchmark* b : suite()) std::printf("%s\n", b->name().c_str());
      return 0;
    } else {
      usage(stderr);
      return 2;
    }
  }
  if (bench_str.empty()) {
    usage(stderr);
    return 2;
  }

  std::vector<Cell> cells;
  for (const std::string& name : split_commas(bench_str)) {
    const Benchmark* b = find_benchmark(name);
    if (b == nullptr) {
      std::fprintf(stderr, "bench_cell: unknown benchmark '%s' (try --list)\n",
                   name.c_str());
      return 2;
    }
    for (const std::string& sname : split_commas(schemes_str)) {
      Cell c;
      c.b = b;
      if (!scheme_from_name(sname, &c.scheme, &c.adaptive)) {
        std::fprintf(stderr,
                     "bench_cell: unknown scheme '%s' (local, global, "
                     "bilateral, adaptive)\n",
                     sname.c_str());
        return 2;
      }
      c.sname = sname;
      cells.push_back(std::move(c));
    }
  }

  BenchConfig base;
  base.nprocs = static_cast<ProcId>(nprocs);
  base.tiny = tiny;
  base.paper_size = paper_size;
  base.faults = obs.faults();
  base.fault_seed = obs.fault_seed();
  if (use_feedback) base.feedback = &feedback;

  bool ok = true;
  if (jobs <= 1 || cells.size() <= 1) {
    for (const Cell& c : cells) {
      CellOutcome out;
      run_cell(c, base, obs, obs.observer(), &out);
      std::fputs(out.line.c_str(), stdout);
      if (!out.err.empty()) std::fputs(out.err.c_str(), stderr);
      ok = ok && out.ok;
    }
  } else {
    trace::Observer* main_obs = obs.observer();
    std::vector<CellOutcome> outs(cells.size());
    if (main_obs != nullptr) {
      // Workers record into private observers configured like the main
      // one. Each starts from the full retention limit — a superset of
      // whatever budget the serial run would have left for that cell —
      // and adopt_runs_from re-applies the cross-run limit at merge time.
      for (CellOutcome& o : outs) {
        o.obs.set_trace_enabled(main_obs->trace_enabled());
        o.obs.set_event_limit(main_obs->event_limit());
        if (main_obs->profile_enabled()) {
          o.obs.enable_profile(main_obs->profile_interval());
        }
        if (main_obs->sample_enabled()) {
          o.obs.set_sample(main_obs->sample_spec());
        }
      }
    }
    std::atomic<std::size_t> next{0};
    const std::size_t nworkers =
        jobs < cells.size() ? static_cast<std::size_t>(jobs) : cells.size();
    std::vector<std::thread> pool;
    pool.reserve(nworkers);
    for (std::size_t w = 0; w < nworkers; ++w) {
      pool.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1); i < cells.size();
             i = next.fetch_add(1)) {
          try {
            run_cell(cells[i], base, obs,
                     main_obs != nullptr ? &outs[i].obs : nullptr, &outs[i]);
          } catch (const std::exception& e) {
            outs[i].ok = false;
            outs[i].err = "bench_cell: " + cells[i].b->name() + "/" +
                          cells[i].sname + " failed: " + e.what() + "\n";
          }
        }
      });
    }
    for (std::thread& t : pool) t.join();
    for (std::size_t i = 0; i < cells.size(); ++i) {
      std::fputs(outs[i].line.c_str(), stdout);
      if (!outs[i].err.empty()) std::fputs(outs[i].err.c_str(), stderr);
      ok = ok && outs[i].ok;
      if (main_obs != nullptr) main_obs->adopt_runs_from(outs[i].obs);
    }
  }
  if (!obs.finish()) ok = false;
  return ok ? 0 : 1;
}
