// bench_cell: run individual (benchmark x coherence-scheme) cells with
// checksum validation — the execution backend of the regression harness
// (tools/bench_runner.py).
//
//   bench_cell --benchmark=TreeAdd [--schemes=local,global,bilateral]
//              [--nprocs=8] [--tiny | --paper-size] [--list]
//
// Each cell runs the simulated machine at a deterministic pinned size,
// validates the result checksum against the host-side sequential
// reference, and labels the observer run "BENCH/<name>/p=N/<scheme>" so
// the stats / binary-trace exports carry one run per cell. Exits 1 on any
// checksum mismatch (a correctness regression is worse than a slow one).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "olden/bench/benchmark.hpp"
#include "olden/bench/obs_cli.hpp"

namespace {

using namespace olden;
using namespace olden::bench;

bool scheme_from_name(const std::string& name, Coherence* out) {
  if (name == "local") { *out = Coherence::kLocalKnowledge; return true; }
  if (name == "global") { *out = Coherence::kEagerGlobal; return true; }
  if (name == "bilateral") { *out = Coherence::kBilateral; return true; }
  return false;
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

bool flag_value(const char* arg, const char* name, std::string* out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: bench_cell --benchmark=NAME [options]\n"
               "  --benchmark=NAME   suite benchmark to run (see --list)\n"
               "  --schemes=A,B      coherence schemes (default "
               "local,global,bilateral)\n"
               "  --nprocs=N         processors per cell (default 8)\n"
               "  --tiny             pinned tiny size (regression harness)\n"
               "  --paper-size       original paper problem size\n"
               "  --list             print suite benchmark names and exit\n"
               "%s",
               ObsCli::usage());
}

}  // namespace

int main(int argc, char** argv) {
  ObsCli obs;
  obs.parse(&argc, argv,
            {"--benchmark", "--schemes", "--nprocs", "--tiny", "--paper-size",
             "--list"});

  std::string bench_name;
  std::string schemes_str = "local,global,bilateral";
  unsigned nprocs = 8;
  bool tiny = false;
  bool paper_size = false;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (flag_value(argv[i], "--benchmark", &v)) {
      bench_name = v;
    } else if (flag_value(argv[i], "--schemes", &v)) {
      schemes_str = v;
    } else if (flag_value(argv[i], "--nprocs", &v)) {
      nprocs = static_cast<unsigned>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--tiny") == 0) {
      tiny = true;
    } else if (std::strcmp(argv[i], "--paper-size") == 0) {
      paper_size = true;
    } else if (std::strcmp(argv[i], "--list") == 0) {
      for (const Benchmark* b : suite()) std::printf("%s\n", b->name().c_str());
      return 0;
    } else {
      usage(stderr);
      return 2;
    }
  }
  if (bench_name.empty()) {
    usage(stderr);
    return 2;
  }
  const Benchmark* b = find_benchmark(bench_name);
  if (b == nullptr) {
    std::fprintf(stderr, "bench_cell: unknown benchmark '%s' (try --list)\n",
                 bench_name.c_str());
    return 2;
  }
  if (nprocs == 0 || nprocs > kMaxProcs) {
    std::fprintf(stderr, "bench_cell: --nprocs must be in [1, %u]\n",
                 static_cast<unsigned>(kMaxProcs));
    return 2;
  }

  bool ok = true;
  for (const std::string& sname : split_commas(schemes_str)) {
    Coherence scheme;
    if (!scheme_from_name(sname, &scheme)) {
      std::fprintf(stderr,
                   "bench_cell: unknown scheme '%s' (local, global, "
                   "bilateral)\n",
                   sname.c_str());
      return 2;
    }
    BenchConfig cfg;
    cfg.nprocs = nprocs;
    cfg.scheme = scheme;
    cfg.tiny = tiny;
    cfg.paper_size = paper_size;
    cfg.observer = obs.observer();
    cfg.faults = obs.faults();
    cfg.fault_seed = obs.fault_seed();
    obs.begin_run("BENCH/" + b->name() + "/p=" + std::to_string(nprocs) + "/" +
                      sname,
                  {{"benchmark", b->name()},
                   {"scheme", sname},
                   {"size", tiny ? "tiny" : (paper_size ? "paper" : "default")}});
    const BenchResult r = b->run(cfg);
    const std::uint64_t want = b->reference_checksum(cfg);
    const bool match = r.checksum == want;
    ok = ok && match;
    std::printf("%-12s %-9s p=%-2u makespan %12llu cycles  checksum %s\n",
                b->name().c_str(), sname.c_str(), nprocs,
                static_cast<unsigned long long>(r.total_cycles),
                match ? "ok" : "MISMATCH");
    if (!match) {
      std::fprintf(stderr,
                   "bench_cell: %s/%s checksum mismatch: got %llu, want "
                   "%llu\n",
                   b->name().c_str(), sname.c_str(),
                   static_cast<unsigned long long>(r.checksum),
                   static_cast<unsigned long long>(want));
    }
  }
  if (!obs.finish()) ok = false;
  return ok ? 0 : 1;
}
