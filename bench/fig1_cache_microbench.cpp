// Figure 1's structural claim: Olden's software cache is a 1024-bucket
// hash of 2 KB pages, and at real occupancies "the average chain length is
// approximately one."
//
// This binary (google-benchmark) measures the host cost of the lookup and
// fill paths, and prints the chain-length distribution at the page
// populations each benchmark actually reaches (Table 3's "pages cached").
#include <benchmark/benchmark.h>

#include <cstdio>

#include "olden/bench/obs_cli.hpp"
#include "olden/cache/software_cache.hpp"
#include "olden/support/rng.hpp"

namespace {

using namespace olden;

/// Page ids as a benchmark would produce: per-processor heaps allocate
/// consecutively, so each remote home contributes a contiguous run.
std::vector<std::uint32_t> page_population(std::size_t pages,
                                           std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint32_t> ids;
  ids.reserve(pages);
  const std::uint32_t homes = 31;
  for (std::uint32_t h = 0; h < homes; ++h) {
    const auto share = pages / homes + (h < pages % homes ? 1 : 0);
    const std::uint32_t base =
        (h << (kProcShift - 11)) + static_cast<std::uint32_t>(
                                       rng.next_below(64));
    for (std::uint32_t i = 0; i < share; ++i) ids.push_back(base + i);
  }
  return ids;
}

void BM_LookupHit(benchmark::State& state) {
  SoftwareCache cache;
  const auto ids = page_population(static_cast<std::size_t>(state.range(0)),
                                   1234);
  bool created = false;
  for (auto id : ids) cache.ensure_page(id, created);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(ids[i]).entry);
    i = (i + 1) % ids.size();
  }
}
BENCHMARK(BM_LookupHit)->Arg(163)->Arg(1604)->Arg(2982)->Arg(21749);

void BM_LookupMiss(benchmark::State& state) {
  SoftwareCache cache;
  const auto ids = page_population(2000, 99);
  bool created = false;
  for (auto id : ids) cache.ensure_page(id, created);
  std::uint32_t probe = 0x03c00000;  // a home no population uses
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(probe).entry);
    ++probe;
  }
}
BENCHMARK(BM_LookupMiss);

void BM_PageFill(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    SoftwareCache cache;
    state.ResumeTiming();
    bool created = false;
    for (std::uint32_t id = 0; id < 1024; ++id) {
      benchmark::DoNotOptimize(&cache.ensure_page(id * 7 + 1, created));
    }
  }
}
BENCHMARK(BM_PageFill);

void BM_InvalidateAll(benchmark::State& state) {
  SoftwareCache cache;
  const auto ids = page_population(2000, 5);
  bool created = false;
  for (auto id : ids) {
    cache.ensure_page(id, created).valid = 0xffffffffu;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.invalidate_all());
    for (auto id : ids) cache.lookup(id).entry->valid = 0xffffffffu;
  }
}
BENCHMARK(BM_InvalidateAll);

void report_chains() {
  std::printf(
      "\nFigure 1 claim: average chain length ~ 1 at benchmark "
      "occupancies (Table 3 page counts):\n");
  for (std::size_t pages : {163u, 502u, 1604u, 1995u, 2982u, 21749u}) {
    SoftwareCache cache;
    bool created = false;
    for (auto id : page_population(pages, pages)) {
      cache.ensure_page(id, created);
    }
    const auto chains = cache.chain_lengths();
    std::uint64_t total = 0;
    std::uint32_t longest = 0;
    for (auto c : chains) {
      total += c;
      longest = std::max(longest, c);
    }
    std::printf(
        "  %6zu pages: %4zu nonempty buckets, avg chain %.2f, max %u\n",
        pages, chains.size(),
        static_cast<double>(total) / static_cast<double>(chains.size()),
        longest);
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Host-time microbenchmark: no simulated Machine runs, so the uniform
  // observability flags are accepted (and stripped before google-benchmark
  // sees argv) but produce documents with zero runs.
  olden::bench::ObsCli obs;
  obs.parse(&argc, argv, {"--benchmark_"});
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  report_chains();
  return obs.finish() ? 0 : 1;
}
