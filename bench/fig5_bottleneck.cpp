// Regenerates Figure 5: the bottleneck analysis on the paper's two code
// sketches, then *measures* the bottleneck on the simulated machine.
//
// WalkAndTraverse: every iteration of a parallel list loop traverses the
// same tree. Migration for the traversal serializes all threads on the
// tree root's owner; the heuristic's pass 2 detects that the traversal's
// induction variable is not updated in the parent loop and forces caching.
// TraverseAndWalk walks a different list per tree node: no bottleneck.
//
// The measurement runs WalkAndTraverse both ways and reports makespans:
// the forced-migration version collapses to near-serial.
#include <cstdio>
#include <vector>

#include "olden/bench/obs_cli.hpp"
#include "olden/compiler/analysis.hpp"
#include "olden/olden.hpp"

namespace {

using namespace olden;

struct LNode {
  std::int64_t val;
  GPtr<LNode> next;
};
struct TNode {
  std::int64_t val;
  GPtr<TNode> left, right;
};

enum Site : SiteId { kLVal, kLNext, kTLeft, kTRight, kTVal, kInit, kNumSites };

Task<GPtr<TNode>> build_tree(Machine& m, int depth, ProcId lo, ProcId hi) {
  if (depth == 0) co_return GPtr<TNode>{};
  auto n = m.alloc<TNode>(lo);
  co_await wr(n, &TNode::val, std::int64_t{1}, kInit);
  const auto lr = hi - lo > 1 ? ProcId(lo + (hi - lo) / 2) : lo;
  auto l = co_await build_tree(m, depth - 1, lr, hi > lr ? hi : lr + 1);
  auto r = co_await build_tree(m, depth - 1, lo, lr > lo ? lr : hi);
  co_await wr(n, &TNode::left, l, kInit);
  co_await wr(n, &TNode::right, r, kInit);
  co_return n;
}

/// One parallel iteration: visit the list item (migrating to its owner —
/// this is where the parallelism comes from; caching alone cannot create
/// threads), then traverse the shared tree with the mechanism under test.
Task<std::int64_t> visit_and_traverse(Machine& m, GPtr<LNode> l,
                                      GPtr<TNode> t);

Task<std::int64_t> traverse(Machine& m, GPtr<TNode> t) {
  if (!t) co_return 0;
  const auto l = co_await rd(t, &TNode::left, kTLeft);
  const auto r = co_await rd(t, &TNode::right, kTRight);
  const std::int64_t a = co_await traverse(m, l);
  const std::int64_t b = co_await traverse(m, r);
  m.work(25);
  co_return a + b + co_await rd(t, &TNode::val, kTVal);
}

struct Out {
  std::int64_t sum = 0;
  Cycles build_end = 0;
};

Task<Out> walk_and_traverse(Machine& m, int list_len, int depth) {
  Out out;
  // A list item per processor block.
  GPtr<LNode> head, tail;
  for (int i = 0; i < list_len; ++i) {
    auto n = m.alloc<LNode>(static_cast<ProcId>(
        static_cast<std::uint64_t>(i) * m.nprocs() / list_len));
    co_await wr(n, &LNode::val, std::int64_t{i}, kInit);
    if (tail) {
      co_await wr(tail, &LNode::next, n, kInit);
    } else {
      head = n;
    }
    tail = n;
  }
  // The shared tree lives on one processor — the hot-root situation the
  // bottleneck rule exists for (cf. Barnes-Hut's top cells).
  auto tree = co_await build_tree(m, depth, 0, 1);
  out.build_end = m.now_max();

  std::vector<Future<std::int64_t>> fs;
  GPtr<LNode> l = head;
  while (l) {
    fs.push_back(co_await futurecall(visit_and_traverse(m, l, tree)));
    l = co_await rd(l, &LNode::next, kLNext);
  }
  for (auto& f : fs) out.sum += co_await touch(f);
  co_return out;
}

Task<std::int64_t> visit_and_traverse(Machine& m, GPtr<LNode> l,
                                      GPtr<TNode> t) {
  const auto v = co_await rd(l, &LNode::val, kLVal);  // migrate to the item
  (void)v;
  m.work(50);
  co_return co_await traverse(m, t);
}

double run_wat(ProcId procs, Mechanism tree_mech, std::uint64_t* migrations,
               olden::bench::ObsCli& cli) {
  Machine m({.nprocs = procs,
             .observer = cli.observer(),
             .faults = cli.faults(),
             .fault_seed = cli.fault_seed()});
  std::vector<Mechanism> table(kNumSites, Mechanism::kCache);
  table[kTLeft] = tree_mech;
  table[kTRight] = tree_mech;
  table[kTVal] = tree_mech;
  table[kLVal] = Mechanism::kMigrate;  // bodies migrate to their items
  table[kLNext] = Mechanism::kCache;   // the dispatcher stays put
  table[kInit] = Mechanism::kMigrate;
  m.set_site_mechanisms(table);
  const Out out = run_program(m, walk_and_traverse(m, 64, 10));
  OLDEN_REQUIRE(out.sum == 64 * ((1 << 10) - 1), "bad traversal sum");
  *migrations = m.stats().migrations;
  return cycles_to_seconds(m.makespan() - out.build_end) * 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  olden::bench::ObsCli obs;
  obs.parse(&argc, argv);
  if (argc > 1) {
    std::fprintf(stderr, "usage: fig5_bottleneck\n%s",
                 olden::bench::ObsCli::usage());
    return 2;
  }
  using namespace olden::ir;
  // --- the heuristic's verdicts (Figure 5) -------------------------------
  {
    Program p;
    p.structs = {{"list", {{"next", std::nullopt}}},
                 {"tree", {{"left", std::nullopt}, {"right", std::nullopt}}}};
    Procedure trav;
    trav.name = "Traverse";
    trav.params = {"t"};
    trav.rec_loop_id = 1;
    If br;
    Call cl;
    cl.callee = "Traverse";
    cl.args = {{"t", {{"tree", "left"}}}};
    Call cr;
    cr.callee = "Traverse";
    cr.args = {{"t", {{"tree", "right"}}}};
    br.else_branch.push_back(cl);
    br.else_branch.push_back(cr);
    br.else_branch.push_back(deref("t", SiteId{0}));
    trav.body.push_back(std::move(br));
    p.procs.push_back(std::move(trav));

    Procedure wat;
    wat.name = "WalkAndTraverse";
    wat.params = {"l", "t"};
    While loop;
    loop.loop_id = 0;
    Call visit;
    visit.callee = "Traverse";
    visit.args = {{"t", {}}};
    visit.future = true;
    loop.body.push_back(visit);
    loop.body.push_back(assign("l", "l", {{"list", "next"}}, SiteId{1}));
    wat.body.push_back(std::move(loop));
    p.procs.push_back(std::move(wat));

    const Selection sel = analyze(p, 2);
    std::printf("=== Figure 5a: WalkAndTraverse ===\n%s\n",
                sel.report().c_str());
  }
  {
    Program p;
    p.structs = {
        {"tree",
         {{"left", std::nullopt}, {"right", std::nullopt}, {"list", 0.95}}},
        {"list", {{"next", 0.95}}}};
    Procedure walk;
    walk.name = "Walk";
    walk.params = {"l"};
    While loop;
    loop.loop_id = 2;
    loop.body.push_back(deref("l", SiteId{0}));
    loop.body.push_back(assign("l", "l", {{"list", "next"}}, SiteId{1}));
    walk.body.push_back(std::move(loop));
    p.procs.push_back(std::move(walk));

    Procedure taw;
    taw.name = "TraverseAndWalk";
    taw.params = {"t"};
    taw.rec_loop_id = 3;
    If br;
    Call cl;
    cl.callee = "TraverseAndWalk";
    cl.args = {{"t", {{"tree", "left"}}}};
    cl.future = true;
    Call cr;
    cr.callee = "TraverseAndWalk";
    cr.args = {{"t", {{"tree", "right"}}}};
    cr.future = true;
    Call w;
    w.callee = "Walk";
    w.args = {{"t", {{"tree", "list"}}}};
    br.else_branch.push_back(cl);
    br.else_branch.push_back(cr);
    br.else_branch.push_back(w);
    taw.body.push_back(std::move(br));
    p.procs.push_back(std::move(taw));

    const Selection sel = analyze(p, 2);
    std::printf("=== Figure 5b: TraverseAndWalk ===\n%s\n",
                sel.report().c_str());
  }

  // --- measuring the bottleneck -----------------------------------------
  std::printf(
      "=== WalkAndTraverse measured (64 parallel traversals of one tree, "
      "32 procs) ===\n");
  std::uint64_t mig_m = 0, mig_c = 0;
  obs.begin_run("WalkAndTraverse/tree=migrate");
  const double t_mig =
      run_wat(32, olden::Mechanism::kMigrate, &mig_m, obs);
  obs.begin_run("WalkAndTraverse/tree=cache");
  const double t_cache =
      run_wat(32, olden::Mechanism::kCache, &mig_c, obs);
  std::printf("tree via migration: %8.2f ms  (%llu migrations — serialized "
              "on the root's owner)\n",
              t_mig, static_cast<unsigned long long>(mig_m));
  std::printf("tree via caching:   %8.2f ms  (%llu migrations)\n", t_cache,
              static_cast<unsigned long long>(mig_c));
  std::printf("caching wins by %.1fx, as pass 2 predicts.\n", t_mig / t_cache);
  return obs.finish() ? 0 : 1;
}
