// Host-side micro-benchmarks of the runtime primitives (google-benchmark):
// what one simulated heap access, migration, futurecall, or heuristic
// analysis costs the *simulator*. These bound how large a machine/problem
// the tables can sweep.
#include <benchmark/benchmark.h>

#include "olden/bench/obs_cli.hpp"
#include "olden/compiler/analysis.hpp"
#include "olden/olden.hpp"

namespace {

using namespace olden;

struct Node {
  std::int64_t val;
  GPtr<Node> next;
};
enum Site : SiteId { kVal, kNext, kNumSites };

/// Drive one walk over a pre-built ring; `iters` accesses per program run.
Task<std::int64_t> ring_walk(Machine& m, GPtr<Node> head, std::int64_t iters) {
  std::int64_t acc = 0;
  GPtr<Node> p = head;
  for (std::int64_t i = 0; i < iters; ++i) {
    acc += co_await rd(p, &Node::val, kVal);
    p = co_await rd(p, &Node::next, kNext);
  }
  co_return acc;
}

Task<GPtr<Node>> build_ring(Machine& m, int n, bool spread) {
  GPtr<Node> head, tail;
  for (int i = 0; i < n; ++i) {
    const ProcId owner =
        spread ? static_cast<ProcId>(i % m.nprocs()) : ProcId{0};
    auto node = m.alloc<Node>(owner);
    co_await wr(node, &Node::val, std::int64_t{1}, kVal);
    if (tail) {
      co_await wr(tail, &Node::next, node, kNext);
    } else {
      head = node;
    }
    tail = node;
  }
  co_await wr(tail, &Node::next, head, kNext);
  co_return head;
}

Task<std::int64_t> walk_root(Machine& m, int n, bool spread,
                             std::int64_t iters) {
  auto head = co_await build_ring(m, n, spread);
  co_return co_await ring_walk(m, head, iters);
}

void BM_LocalAccess(benchmark::State& state) {
  for (auto _ : state) {
    Machine m({.nprocs = 1});
    m.set_site_mechanisms({Mechanism::kCache, Mechanism::kCache});
    benchmark::DoNotOptimize(run_program(m, walk_root(m, 64, false, 100000)));
  }
  state.SetItemsProcessed(state.iterations() * 200000);
}
BENCHMARK(BM_LocalAccess);

void BM_CachedRemoteAccess(benchmark::State& state) {
  for (auto _ : state) {
    Machine m({.nprocs = 8});
    m.set_site_mechanisms({Mechanism::kCache, Mechanism::kCache});
    benchmark::DoNotOptimize(run_program(m, walk_root(m, 64, true, 100000)));
  }
  state.SetItemsProcessed(state.iterations() * 200000);
}
BENCHMARK(BM_CachedRemoteAccess);

void BM_Migration(benchmark::State& state) {
  for (auto _ : state) {
    Machine m({.nprocs = 8});
    m.set_site_mechanisms({Mechanism::kMigrate, Mechanism::kMigrate});
    benchmark::DoNotOptimize(run_program(m, walk_root(m, 8, true, 20000)));
  }
  // Every hop in an 8-ring over 8 procs migrates: ~2 accesses, 1 migration.
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_Migration);

Task<std::int64_t> leaf(Machine& m) {
  m.work(1);
  co_return 1;
}

Task<std::int64_t> future_storm(Machine& m, int n) {
  std::int64_t acc = 0;
  for (int i = 0; i < n; ++i) {
    auto f = co_await futurecall(leaf(m));
    acc += co_await touch(f);
  }
  co_return acc;
}

void BM_FuturecallInline(benchmark::State& state) {
  for (auto _ : state) {
    Machine m({.nprocs = 4});
    m.set_site_mechanisms({});
    benchmark::DoNotOptimize(run_program(m, future_storm(m, 50000)));
  }
  state.SetItemsProcessed(state.iterations() * 50000);
}
BENCHMARK(BM_FuturecallInline);

void BM_HeuristicAnalysis(benchmark::State& state) {
  using namespace olden::ir;
  Program p;
  p.structs = {{"tree", {{"left", 0.9}, {"right", 0.7}}}};
  Procedure ta;
  ta.name = "TreeAdd";
  ta.params = {"t"};
  ta.rec_loop_id = 0;
  If br;
  Call cl;
  cl.callee = "TreeAdd";
  cl.args = {{"t", {{"tree", "left"}}}};
  cl.future = true;
  Call cr;
  cr.callee = "TreeAdd";
  cr.args = {{"t", {{"tree", "right"}}}};
  br.else_branch.push_back(cl);
  br.else_branch.push_back(cr);
  br.else_branch.push_back(deref("t", SiteId{0}));
  ta.body.push_back(std::move(br));
  p.procs.push_back(std::move(ta));
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze(p, 1));
  }
}
BENCHMARK(BM_HeuristicAnalysis);

}  // namespace

int main(int argc, char** argv) {
  // Host-time microbenchmarks create thousands of short-lived Machines;
  // observing them would distort what is being measured, so the uniform
  // observability flags are accepted (and stripped before google-benchmark
  // parses argv) but produce documents with zero runs.
  olden::bench::ObsCli obs;
  obs.parse(&argc, argv, {"--benchmark_"});
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return obs.finish() ? 0 : 1;
}
