// Ablation: how the migration/miss cost ratio moves the migrate-vs-cache
// break-even, and what the heuristic's 90% threshold implies on other
// machines (§7: "Implementations of Olden for such machines would use
// different thresholds — a network of workstations would favor computation
// migration ... machines with extensive hardware support would favor
// caching").
//
// We sweep the migration cost (holding the miss cost fixed) and traverse
// affinity-controlled lists under both mechanisms, reporting the empirical
// break-even affinity next to the analytic one. The second section runs
// the Voronoi ablation the paper discusses (§5): heuristic choice vs.
// migrate-only.
#include <cstdio>
#include <vector>

#include "olden/bench/benchmark.hpp"
#include "olden/bench/obs_cli.hpp"
#include "olden/olden.hpp"
#include "olden/support/rng.hpp"

namespace {

using namespace olden;

struct Node {
  std::int64_t val;
  GPtr<Node> next;
};
enum Site : SiteId { kVal, kNext, kInit, kNumSites };

Task<std::int64_t> walk_root(Machine& m, const std::vector<ProcId>& owners,
                             Cycles* build_end) {
  GPtr<Node> head, tail;
  for (std::size_t i = 0; i < owners.size(); ++i) {
    auto node = m.alloc<Node>(owners[i]);
    co_await wr(node, &Node::val, static_cast<std::int64_t>(i), kInit);
    if (tail) {
      co_await wr(tail, &Node::next, node, kInit);
    } else {
      head = node;
    }
    tail = node;
  }
  *build_end = m.now_max();
  std::int64_t acc = 0;
  GPtr<Node> l = head;
  while (l) {
    acc += co_await rd(l, &Node::val, kVal);
    l = co_await rd(l, &Node::next, kNext);
    m.work(20);
  }
  co_return acc;
}

double walk_ms(const std::vector<ProcId>& owners, ProcId procs,
               Mechanism mech, Cycles migration_cost) {
  CostModel costs;
  // Keep the ~30/70 send/wire split while scaling the total.
  costs.migration_send = migration_cost * 3 / 10;
  costs.migration_wire = migration_cost - costs.migration_send;
  Machine m({.nprocs = procs, .costs = costs});
  m.set_site_mechanisms({mech, mech, Mechanism::kCache});
  Cycles build_end = 0;
  run_program(m, walk_root(m, owners, &build_end));
  return cycles_to_seconds(m.makespan() - build_end) * 1e3;
}

double find_breakeven(ProcId procs, Cycles migration_cost,
                      std::uint64_t seed) {
  // Scan affinities until caching stops winning.
  constexpr int kN = 4096;
  double last_cache_win = 0.0;
  for (double aff = 0.60; aff <= 0.995; aff += 0.01) {
    Rng rng(seed);
    std::vector<ProcId> owners(kN);
    ProcId cur = 0;
    for (auto& o : owners) {
      o = cur;
      if (rng.next_double() > aff) cur = static_cast<ProcId>((cur + 1) % procs);
    }
    const double tm = walk_ms(owners, procs, Mechanism::kMigrate,
                              migration_cost);
    const double tc = walk_ms(owners, procs, Mechanism::kCache,
                              migration_cost);
    if (tc < tm) last_cache_win = aff;
  }
  return last_cache_win;
}

}  // namespace

int main(int argc, char** argv) {
  // The break-even search below runs hundreds of probe machines; only the
  // Voronoi ablation runs are observed/labeled.
  olden::bench::ObsCli obs;
  obs.parse(&argc, argv);
  if (argc > 1) {
    std::fprintf(stderr, "usage: ablation_costmodel\n%s",
                 olden::bench::ObsCli::usage());
    return 2;
  }
  CostModel defaults;
  std::printf(
      "Break-even affinity vs. migration cost (miss fixed at %llu cycles).\n"
      "The CM-5 point (7x) sits near the paper's ~86%%; cheaper migration\n"
      "(network-of-workstations relative balance) moves it down, expensive\n"
      "migration (hardware-assisted caching) moves it toward 1.\n",
      static_cast<unsigned long long>(defaults.cache_miss));
  std::printf("%12s %8s %22s\n", "migration(cy)", "ratio",
              "empirical break-even");
  for (Cycles mig : {Cycles{640}, Cycles{1280}, Cycles{2240}, Cycles{4480},
                     Cycles{8960}}) {
    const double be = find_breakeven(32, mig, 42);
    std::printf("%12llu %7.1fx %21.0f%%\n",
                static_cast<unsigned long long>(mig),
                static_cast<double>(mig) / defaults.cache_miss, be * 100);
  }

  std::printf(
      "\nVoronoi mechanism ablation at 32 processors (§5: the heuristic "
      "pins the merge and caches; migrate-only thrashes):\n");
  const auto* v = olden::bench::find_benchmark("Voronoi");
  olden::bench::BenchConfig base;
  base.nprocs = 1;
  base.sequential_baseline = true;
  const double seq = v->run(base).kernel_seconds();
  for (bool migrate_only : {false, true}) {
    olden::bench::BenchConfig cfg;
    cfg.nprocs = 32;
    cfg.migrate_only = migrate_only;
    cfg.observer = obs.observer();
    cfg.faults = obs.faults();
    cfg.fault_seed = obs.fault_seed();
    obs.begin_run(migrate_only ? "Voronoi/p=32/migrate-only"
                               : "Voronoi/p=32/heuristic",
                  {{"benchmark", "Voronoi"}});
    const auto r = v->run(cfg);
    std::printf("  %-22s speedup %6.2f  (migrations %llu, misses %llu)\n",
                migrate_only ? "migrate-only" : "heuristic (pin+cache)",
                seq / r.kernel_seconds(),
                static_cast<unsigned long long>(r.stats.migrations),
                static_cast<unsigned long long>(r.stats.cache_misses));
  }
  return obs.finish() ? 0 : 1;
}
