// Regenerates Table 1: the benchmark suite inventory, with a quick
// correctness pass (each benchmark's simulated checksum vs. its host
// reference at 4 processors).
#include <cstdio>

#include "olden/bench/benchmark.hpp"

int main() {
  using namespace olden::bench;
  std::printf("Table 1: Benchmark Descriptions\n");
  std::printf("%-11s %-62s %-16s %s\n", "Benchmark", "Description",
              "Problem Size", "verified");
  for (const Benchmark* b : suite()) {
    BenchConfig cfg;
    cfg.nprocs = 4;
    const BenchResult r = b->run(cfg);
    const bool ok = r.checksum == b->reference_checksum(cfg);
    std::printf("%-11s %-62s %-16s %s\n", b->name().c_str(),
                b->description().c_str(), b->problem_size(true).c_str(),
                ok ? "ok" : "MISMATCH");
  }
  return 0;
}
