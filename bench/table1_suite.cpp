// Regenerates Table 1: the benchmark suite inventory, with a quick
// correctness pass (each benchmark's simulated checksum vs. its host
// reference at 4 processors).
#include <cstdio>

#include "olden/bench/benchmark.hpp"
#include "olden/bench/obs_cli.hpp"

int main(int argc, char** argv) {
  using namespace olden::bench;
  ObsCli obs;
  obs.parse(&argc, argv);
  if (argc > 1) {
    std::fprintf(stderr, "usage: table1_suite\n%s", ObsCli::usage());
    return 2;
  }
  std::printf("Table 1: Benchmark Descriptions\n");
  std::printf("%-11s %-62s %-16s %s\n", "Benchmark", "Description",
              "Problem Size", "verified");
  for (const Benchmark* b : suite()) {
    BenchConfig cfg;
    cfg.nprocs = 4;
    cfg.observer = obs.observer();
    cfg.faults = obs.faults();
    cfg.fault_seed = obs.fault_seed();
    obs.begin_run(b->name() + "/p=4", {{"benchmark", b->name()}});
    const BenchResult r = b->run(cfg);
    const bool ok = r.checksum == b->reference_checksum(cfg);
    std::printf("%-11s %-62s %-16s %s\n", b->name().c_str(),
                b->description().c_str(), b->problem_size(true).c_str(),
                ok ? "ok" : "MISMATCH");
  }
  return obs.finish() ? 0 : 1;
}
