// Regenerates Table 3 (Appendix A): caching statistics on 32 processors
// for the six migration+caching benchmarks, under the three coherence
// schemes — local knowledge, eager release ("global"), and bilateral.
//
// Columns mirror the paper: cacheable writes and reads (counts and the
// percentage that reference remote memory — identical across schemes), the
// percentage of remote references that miss under each scheme, and the
// total number of pages ever cached.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "olden/bench/benchmark.hpp"
#include "olden/bench/obs_cli.hpp"

namespace {

using namespace olden;
using namespace olden::bench;

struct PaperRow {
  double writes_k, writes_pct, reads_k, reads_pct;
  double miss_local, miss_global, miss_bilateral;
  unsigned pages;
};

// Table 3 of the paper, verbatim (counts in thousands).
const std::map<std::string, PaperRow> kPaper = {
    {"Bisort", {8208, 0.045, 32617, 0.054, 28.6, 24.9, 29.2, 1604}},
    {"Voronoi", {9825, 1.57, 42359, 1.26, 5.89, 5.89, 5.89, 2982}},
    {"EM3D", {0, 0, 839, 19.4, 6.18, 6.18, 6.18, 1995}},
    {"Barnes-Hut", {2707, 18.3, 73601, 55.6, 0.815, 0.563, 0.792, 21749}},
    {"Perimeter", {0, 0, 1018, 2.02, 8.80, 8.63, 8.80, 502}},
    {"Health", {8861, 0.063, 33405, 0.019, 87.0, 10.3, 87.0, 163}},
};

const char* kMCBenchmarks[] = {"Bisort",     "Voronoi",   "EM3D",
                               "Barnes-Hut", "Perimeter", "Health"};

}  // namespace

int main(int argc, char** argv) {
  ObsCli obs;
  obs.parse(&argc, argv, {"--paper-size"});
  bool paper_size = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--paper-size") == 0) {
      paper_size = true;
    } else {
      std::fprintf(stderr, "usage: table3_coherence [--paper-size]\n%s",
                   ObsCli::usage());
      return 2;
    }
  }

  std::printf("Table 3: caching statistics on 32 processors%s\n",
              paper_size ? "" : " (scaled problem sizes)");
  std::printf("%-11s | %13s | %13s | %26s | %10s\n", "", "Cacheable Wr",
              "Cacheable Rd", "%% of remote refs that miss", "Pages");
  std::printf("%-11s | %7s %5s | %7s %5s | %8s %8s %8s | %10s\n",
              "Benchmark", "(1000s)", "%rem", "(1000s)", "%rem", "local",
              "global", "bilat", "cached");

  for (const char* name : kMCBenchmarks) {
    const Benchmark* b = find_benchmark(name);
    double miss[3] = {0, 0, 0};
    MachineStats local_stats;
    std::uint64_t pages = 0;
    const Coherence schemes[3] = {Coherence::kLocalKnowledge,
                                  Coherence::kEagerGlobal,
                                  Coherence::kBilateral};
    for (int s = 0; s < 3; ++s) {
      BenchConfig cfg;
      cfg.paper_size = paper_size;
      cfg.nprocs = 32;
      cfg.scheme = schemes[s];
      cfg.observer = obs.observer();
      cfg.faults = obs.faults();
      cfg.fault_seed = obs.fault_seed();
      obs.begin_run(std::string(name) + "/p=32/" + to_string(schemes[s]),
                    {{"benchmark", name}});
      const BenchResult r = b->run(cfg);
      miss[s] = r.stats.remote_miss_percent();
      if (s == 0) {
        local_stats = r.stats;
        pages = r.stats.pages_cached;
      }
    }
    const PaperRow& pr = kPaper.at(name);
    std::printf("%-11s | %7.0f %5.2f | %7.0f %5.2f | %8.2f %8.2f %8.2f | %10llu\n",
                name, local_stats.cacheable_writes / 1000.0,
                local_stats.percent_writes_remote(),
                local_stats.cacheable_reads / 1000.0,
                local_stats.percent_reads_remote(), miss[0], miss[1], miss[2],
                static_cast<unsigned long long>(pages));
    std::printf("%-11s | %7.0f %5.2f | %7.0f %5.2f | %8.2f %8.2f %8.2f | %10u\n",
                "  (paper)", pr.writes_k, pr.writes_pct, pr.reads_k,
                pr.reads_pct, pr.miss_local, pr.miss_global,
                pr.miss_bilateral, pr.pages);
  }
  std::printf(
      "\nShape checks: the global scheme never misses more than local "
      "(line-precise invalidations); bilateral sits near local; Health's "
      "miss %% collapses under global knowledge; remote fractions are "
      "small everywhere but Barnes-Hut, whose cached tree dominates.\n");
  return obs.finish() ? 0 : 1;
}
