// Regenerates Table 2: sequential time, speedups at 1..32 processors under
// the heuristic's choices (local-knowledge coherence, as in the paper's
// runs), the migrate-only speedup at 32 processors, and the adaptive
// scheme's speedup at 32 processors (--scheme=adaptive semantics: eager-
// global base, runtime decision table; see docs/ADAPTIVE.md; tune with
// --adapt-interval/--adapt-hysteresis).
//
// The paper's numbers are printed alongside for shape comparison — who
// wins, by roughly what factor, where the M+C benchmarks beat migrate-only.
// Absolute values differ (our substrate is a calibrated simulator and the
// default problem sizes are scaled; pass --paper-size for the original
// sizes).
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "olden/bench/benchmark.hpp"
#include "olden/bench/obs_cli.hpp"
#include "olden/profile/feedback.hpp"

namespace {

using namespace olden;
using namespace olden::bench;

struct PaperRow {
  double seq;
  double speedup[6];  // P = 1 2 4 8 16 32
  double migrate_only32;  // < 0: not reported (M-only rows)
};

// Table 2 of the paper, verbatim.
const std::map<std::string, PaperRow> kPaper = {
    {"TreeAdd", {4.49, {0.73, 1.47, 2.93, 5.90, 11.81, 23.4}, -1}},
    {"Power", {286.59, {0.96, 1.94, 3.81, 6.92, 14.85, 27.5}, -1}},
    {"TSP", {43.35, {0.95, 1.92, 3.70, 6.70, 10.08, 15.8}, -1}},
    {"MST", {9.81, {0.96, 1.36, 2.20, 3.43, 4.56, 5.14}, -1}},
    {"Bisort", {31.41, {0.73, 1.35, 2.29, 3.52, 4.92, 6.33}, 6.13}},
    {"Voronoi", {49.73, {0.75, 1.38, 2.41, 4.23, 6.88, 8.76}, 0.47}},
    {"EM3D", {1.21, {0.86, 1.51, 2.69, 4.48, 6.72, 12.0}, 0.05}},
    {"Barnes-Hut", {555.79, {0.74, 1.42, 3.00, 5.29, 8.13, 11.2}, 0.01}},
    {"Perimeter", {2.47, {0.86, 1.70, 3.37, 6.09, 9.86, 14.1}, 2.96}},
    {"Health", {34.19, {0.73, 1.47, 2.93, 5.72, 11.09, 16.42}, 16.52}},
};

double timed_seconds(const Benchmark& b, const BenchResult& r) {
  return b.whole_program_timing() ? r.total_seconds() : r.kernel_seconds();
}

}  // namespace

int main(int argc, char** argv) {
  ObsCli obs;
  obs.parse(&argc, argv, {"--paper-size", "--heuristic"});
  bool paper_size = false;
  profile::FeedbackTable feedback;
  bool use_feedback = false;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (std::strcmp(argv[i], "--paper-size") == 0) {
      paper_size = true;
    } else if (std::strncmp(argv[i], "--heuristic=", 12) == 0) {
      v = argv[i] + 12;
      std::string err;
      if (!profile::parse_heuristic_spec(v, &feedback, &use_feedback, &err)) {
        std::fprintf(stderr, "table2_speedups: --heuristic: %s\n",
                     err.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: table2_speedups [--paper-size] "
                   "[--heuristic=static|profile:FILE]\n%s",
                   ObsCli::usage());
      return 2;
    }
  }

  std::printf(
      "Table 2: speedups (measured | paper). Sequential seconds are "
      "simulated 33 MHz-cycle time%s.\n",
      paper_size ? "" : "; default (scaled) problem sizes");
  std::printf(
      "%-11s %-4s %9s | %41s | %s | %s\n", "Benchmark", "Mech", "Seq(s)",
      "speedup at P = 1     2     4     8    16    32", "Migrate-only(32)",
      "Adaptive(32)");

  const ProcId kProcs[6] = {1, 2, 4, 8, 16, 32};
  for (const Benchmark* b : suite()) {
    BenchConfig base;
    base.paper_size = paper_size;
    base.sequential_baseline = true;
    base.nprocs = 1;
    base.observer = obs.observer();
    base.faults = obs.faults();
    base.fault_seed = obs.fault_seed();
    obs.begin_run(b->name() + "/seq", {{"benchmark", b->name()}});
    const BenchResult seq = b->run(base);
    const double seq_s = timed_seconds(*b, seq);

    double sp[6];
    std::string mech;
    for (int i = 0; i < 6; ++i) {
      BenchConfig cfg;
      cfg.paper_size = paper_size;
      cfg.nprocs = kProcs[i];
      cfg.observer = obs.observer();
      cfg.faults = obs.faults();
      cfg.fault_seed = obs.fault_seed();
      if (use_feedback) cfg.feedback = &feedback;
      obs.begin_run(b->name() + "/p=" + std::to_string(kProcs[i]),
                    {{"benchmark", b->name()}});
      const BenchResult r = b->run(cfg);
      sp[i] = seq_s / timed_seconds(*b, r);
      if (kProcs[i] == 32) {
        mech = r.stats.remote_cacheable() == 0 ? "M" : "M+C";
      }
    }
    BenchConfig mo;
    mo.paper_size = paper_size;
    mo.nprocs = 32;
    mo.migrate_only = true;
    mo.observer = obs.observer();
    mo.faults = obs.faults();
    mo.fault_seed = obs.fault_seed();
    obs.begin_run(b->name() + "/p=32/migrate-only",
                  {{"benchmark", b->name()}});
    const BenchResult rmo = b->run(mo);
    const double mo32 = seq_s / timed_seconds(*b, rmo);

    BenchConfig ad;
    ad.paper_size = paper_size;
    ad.nprocs = 32;
    ad.scheme = Coherence::kEagerGlobal;
    ad.observer = obs.observer();
    ad.faults = obs.faults();
    ad.fault_seed = obs.fault_seed();
    if (use_feedback) ad.feedback = &feedback;
    ad.adapt.interval = obs.adapt_interval_set() ? obs.adapt_interval()
                                                 : kDefaultAdaptInterval;
    ad.adapt.hysteresis = obs.adapt_hysteresis();
    obs.begin_run(b->name() + "/p=32/adaptive", {{"benchmark", b->name()}});
    const BenchResult rad = b->run(ad);
    const double ad32 = seq_s / timed_seconds(*b, rad);

    const PaperRow& pr = kPaper.at(b->name());
    std::printf("%-11s %-4s %8.2fs |", b->name().c_str(), mech.c_str(),
                seq_s);
    for (double v : sp) std::printf(" %5.2f", v);
    std::printf(" |");
    if (pr.migrate_only32 >= 0) {
      std::printf(" %5.2f (paper %.2f)", mo32, pr.migrate_only32);
    } else {
      std::printf("   n/a (M row)");
    }
    std::printf(" | %5.2f (%llu flips)", ad32,
                static_cast<unsigned long long>(rad.stats.scheme_flips));
    std::printf("\n%-11s %-4s %8.2fs |", "  (paper)", "", pr.seq);
    for (double v : pr.speedup) std::printf(" %5.2f", v);
    std::printf(" |\n");
  }
  std::printf(
      "\nShape checks: TreeAdd/Power scale best; MST degrades with P "
      "(O(N*P) synchronizing migrations); M+C rows beat their migrate-only "
      "column, dramatically for Voronoi/EM3D/Barnes-Hut; Health's M+C is "
      "within noise of migrate-only (too few remote patients to pay for "
      "caching).\n");
  return obs.finish() ? 0 : 1;
}
