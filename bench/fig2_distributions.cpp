// Regenerates the Figure 2 / §4 analysis: traversing an N-element list
// distributed blocked vs. cyclic, under each mechanism.
//
// The paper's counts: with P processors,
//   blocked + migration : P-1 migrations          <- winner
//   blocked + caching   : N(P-1)/P remote fetches
//   cyclic  + migration : N-1 migrations
//   cyclic  + caching   : N(P-1)/P remote fetches <- winner
//
// The second section sweeps the path-affinity of the next field and
// reports which mechanism is faster, locating the break-even point the
// paper puts near 86% for a 7x migration/miss cost ratio (§4.3 footnote).
#include <cstdio>
#include <functional>
#include <vector>

#include "olden/bench/obs_cli.hpp"
#include "olden/olden.hpp"
#include "olden/support/rng.hpp"

namespace {

using namespace olden;

struct Node {
  std::int64_t val;
  GPtr<Node> next;
};

enum Site : SiteId { kVal, kNext, kInit, kNumSites };

Task<GPtr<Node>> build_list(Machine& m, int n,
                            const std::function<ProcId(int)>& owner) {
  GPtr<Node> head, tail;
  for (int i = 0; i < n; ++i) {
    auto node = m.alloc<Node>(owner(i));
    co_await wr(node, &Node::val, std::int64_t{i}, kInit);
    if (tail) {
      co_await wr(tail, &Node::next, node, kInit);
    } else {
      head = node;
    }
    tail = node;
  }
  co_return head;
}

struct WalkOut {
  std::int64_t sum = 0;
  Cycles build_end = 0;
};

Task<WalkOut> walk_root(Machine& m, int n,
                        const std::function<ProcId(int)>& owner) {
  WalkOut out;
  auto head = co_await build_list(m, n, owner);
  out.build_end = m.now_max();
  GPtr<Node> l = head;
  while (l) {
    out.sum += co_await rd(l, &Node::val, kVal);
    l = co_await rd(l, &Node::next, kNext);
    m.work(20);
  }
  co_return out;
}

struct Run {
  std::uint64_t migrations;
  std::uint64_t remote_fetch;  // misses + remote write-throughs
  double kernel_ms;            // simulated milliseconds
};

Run run_walk(int n, ProcId procs, bool cyclic, Mechanism mech,
             olden::bench::ObsCli& cli) {
  Machine m({.nprocs = procs,
             .observer = cli.observer(),
             .faults = cli.faults(),
             .fault_seed = cli.fault_seed()});
  // Builder writes go through the cache (write-through, no thread motion)
  // so the reported migration counts are the walk's alone.
  m.set_site_mechanisms({mech, mech, Mechanism::kCache});
  auto owner = [=](int i) {
    return cyclic ? static_cast<ProcId>(i % procs)
                  : static_cast<ProcId>(
                        static_cast<std::uint64_t>(i) * procs / n);
  };
  const auto pre = [&] {  // builder traffic excluded via a fresh machine?
    return 0;
  };
  (void)pre;
  const MachineStats before{};
  (void)before;
  WalkOut out = run_program(m, walk_root(m, n, owner));
  OLDEN_REQUIRE(out.sum == static_cast<std::int64_t>(n) * (n - 1) / 2,
                "list traversal checksum");
  Run r{};
  r.migrations = m.stats().migrations;
  r.remote_fetch = m.stats().cache_misses;
  r.kernel_ms =
      cycles_to_seconds(m.makespan() - out.build_end) * 1e3;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  olden::bench::ObsCli obs;
  obs.parse(&argc, argv);
  if (argc > 1) {
    std::fprintf(stderr, "usage: fig2_distributions\n%s",
                 olden::bench::ObsCli::usage());
    return 2;
  }
  constexpr int kN = 4096;
  constexpr ProcId kP = 32;

  std::printf("Figure 2: %d-element list over %u processors\n", kN, kP);
  std::printf("%-22s %11s %14s %10s\n", "layout + mechanism", "migrations",
              "remote fetches", "kernel ms");
  struct Case {
    const char* name;
    bool cyclic;
    Mechanism mech;
  };
  const Case cases[] = {
      {"blocked + migration", false, Mechanism::kMigrate},
      {"blocked + caching", false, Mechanism::kCache},
      {"cyclic  + migration", true, Mechanism::kMigrate},
      {"cyclic  + caching", true, Mechanism::kCache},
  };
  double t_blocked_mig = 0, t_blocked_cache = 0, t_cyclic_mig = 0,
         t_cyclic_cache = 0;
  for (const Case& c : cases) {
    obs.begin_run(c.name);
    const Run r = run_walk(kN, kP, c.cyclic, c.mech, obs);
    std::printf("%-22s %11llu %14llu %10.3f\n", c.name,
                static_cast<unsigned long long>(r.migrations),
                static_cast<unsigned long long>(r.remote_fetch), r.kernel_ms);
    if (!c.cyclic && c.mech == Mechanism::kMigrate) t_blocked_mig = r.kernel_ms;
    if (!c.cyclic && c.mech == Mechanism::kCache) t_blocked_cache = r.kernel_ms;
    if (c.cyclic && c.mech == Mechanism::kMigrate) t_cyclic_mig = r.kernel_ms;
    if (c.cyclic && c.mech == Mechanism::kCache) t_cyclic_cache = r.kernel_ms;
  }
  std::printf(
      "paper expectations: blocked migration ~ P-1 = %u migrations; cyclic "
      "migration ~ N-1 = %d; caching ~ N(P-1)/P = %d remote accesses "
      "(line-grain fetching batches %d-byte nodes per 64-byte line).\n",
      kP - 1, kN - 1, kN * (kP - 1) / kP, (int)sizeof(Node));
  std::printf("winners: blocked -> %s, cyclic -> %s (paper: migration, caching)\n\n",
              t_blocked_mig < t_blocked_cache ? "migration" : "caching",
              t_cyclic_mig < t_cyclic_cache ? "migration" : "caching");

  // --- break-even sweep ----------------------------------------------------
  std::printf(
      "Break-even sweep: lists whose layout yields a given next-affinity;\n"
      "the mechanism flips where the curves cross (paper: ~86%% for a 7x\n"
      "migration/fetch cost ratio).\n");
  std::printf("%-9s %12s %12s %8s\n", "affinity", "migrate ms", "cache ms",
              "faster");
  Rng rng(7);
  for (double aff = 0.70; aff <= 0.985; aff += 0.02) {
    // Layout with the requested boundary-crossing probability.
    std::vector<ProcId> owners(kN);
    ProcId cur = 0;
    for (int i = 0; i < kN; ++i) {
      owners[static_cast<std::size_t>(i)] = cur;
      if (rng.next_double() > aff) cur = static_cast<ProcId>((cur + 1) % kP);
    }
    double t[2];
    for (int mi = 0; mi < 2; ++mi) {
      const Mechanism mech = mi == 0 ? Mechanism::kMigrate : Mechanism::kCache;
      Machine m({.nprocs = kP});
      m.set_site_mechanisms({mech, mech, Mechanism::kCache});
      WalkOut out = run_program(
          m, walk_root(m, kN, [&](int i) {
            return owners[static_cast<std::size_t>(i)];
          }));
      t[mi] = cycles_to_seconds(m.makespan() - out.build_end) * 1e3;
    }
    std::printf("%8.2f%% %12.3f %12.3f %8s\n", aff * 100, t[0], t[1],
                t[0] < t[1] ? "migrate" : "cache");
  }
  return obs.finish() ? 0 : 1;
}
