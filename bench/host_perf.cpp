// host_perf: wall-clock (host-time) benchmark of the simulator itself.
//
// Every other binary in bench/ reports *virtual* cycles — the machine being
// simulated. This one times the machine doing the simulating: it runs the
// full --tiny regression matrix (ten benchmarks x three coherence schemes,
// the exact cells tools/bench_runner.py pins) with no observer attached and
// reports host milliseconds per cell, best-of-N. The paper's makespans are
// untouched by any host-side optimization, so this is the number that
// measures "runs as fast as the hardware allows" for the simulator's own
// hot paths: cache translation, the coherence directory, write logs and the
// event wheel.
//
//   host_perf [--repeat=N] [--nprocs=N] [--benchmarks=A,B,...]
//             [--schemes=A,B] [--jobs=N] [--json=FILE]
//
// --jobs=N times the cells on a pool of N host threads (cells are
// independent deterministic Machines). Per-cell wall times measured under
// a loaded pool are noisier than serial ones — use --jobs for throughput
// (total suite wall-clock), --jobs=1 when comparing per-cell numbers.
//
// The JSON document is schema-versioned (host_bench_schema_version) and is
// what tools/host_bench.py diffs against bench/baselines/HOST_seed.json.
// Checksums are validated against the sequential reference on every run, so
// a fast-but-wrong simulator fails here too (exit 1); bad flags exit 2.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "olden/bench/benchmark.hpp"

namespace {

using namespace olden;
using namespace olden::bench;

constexpr int kHostBenchSchemaVersion = 1;

struct SchemeName {
  Coherence scheme;
  const char* name;
};
constexpr SchemeName kAllSchemes[] = {
    {Coherence::kLocalKnowledge, "local"},
    {Coherence::kEagerGlobal, "global"},
    {Coherence::kBilateral, "bilateral"},
};

struct CellTiming {
  std::string benchmark;
  std::string scheme;
  double best_ms = 0.0;
  std::uint64_t makespan_cycles = 0;
  std::string error;
};

bool flag_value(const char* arg, const char* name, std::string* out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

bool parse_uint(const std::string& s, unsigned long* out) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
  }
  *out = std::strtoul(s.c_str(), nullptr, 10);
  return true;
}

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: host_perf [options]\n"
               "  --repeat=N         timing repetitions per cell, best "
               "reported (default 3)\n"
               "  --nprocs=N         processors per cell (default 8)\n"
               "  --benchmarks=A,B   subset of the suite (default: all ten)\n"
               "  --schemes=A,B      coherence schemes (default "
               "local,global,bilateral)\n"
               "  --jobs=N           time cells on N host threads (default 1; "
               "per-cell ms\n"
               "                     is noisier under a loaded pool)\n"
               "  --json=FILE        write the schema-versioned timing "
               "document\n");
}

std::string json_escape_nothing_needed(const std::string& s) {
  // Benchmark and scheme names are [A-Za-z0-9]; keep the writer honest.
  for (char c : s) {
    if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20) {
      std::fprintf(stderr, "host_perf: unexpected character in label\n");
      std::exit(1);
    }
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned long repeat = 3;
  unsigned long nprocs = 8;
  unsigned long jobs = 1;
  std::string benchmarks_str;
  std::string schemes_str = "local,global,bilateral";
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (flag_value(argv[i], "--repeat", &v)) {
      if (!parse_uint(v, &repeat) || repeat == 0) {
        std::fprintf(stderr, "host_perf: --repeat must be a positive integer\n");
        return 2;
      }
    } else if (flag_value(argv[i], "--nprocs", &v)) {
      if (!parse_uint(v, &nprocs) || nprocs == 0 || nprocs > kMaxProcs) {
        std::fprintf(stderr, "host_perf: --nprocs must be in [1, %u]\n",
                     static_cast<unsigned>(kMaxProcs));
        return 2;
      }
    } else if (flag_value(argv[i], "--jobs", &v)) {
      if (!parse_uint(v, &jobs) || jobs == 0) {
        std::fprintf(stderr, "host_perf: --jobs must be a positive integer\n");
        return 2;
      }
    } else if (flag_value(argv[i], "--benchmarks", &v)) {
      benchmarks_str = v;
    } else if (flag_value(argv[i], "--schemes", &v)) {
      schemes_str = v;
    } else if (flag_value(argv[i], "--json", &v)) {
      json_path = v;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      usage(stdout);
      return 0;
    } else {
      usage(stderr);
      return 2;
    }
  }

  std::vector<const Benchmark*> benches;
  if (benchmarks_str.empty()) {
    benches = suite();
  } else {
    for (const std::string& name : split_commas(benchmarks_str)) {
      const Benchmark* b = find_benchmark(name);
      if (b == nullptr) {
        std::fprintf(stderr, "host_perf: unknown benchmark '%s'\n",
                     name.c_str());
        return 2;
      }
      benches.push_back(b);
    }
  }
  std::vector<SchemeName> schemes;
  for (const std::string& name : split_commas(schemes_str)) {
    bool found = false;
    for (const SchemeName& s : kAllSchemes) {
      if (name == s.name) {
        schemes.push_back(s);
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr,
                   "host_perf: unknown scheme '%s' (local, global, "
                   "bilateral)\n",
                   name.c_str());
      return 2;
    }
  }

  using Clock = std::chrono::steady_clock;
  struct CellSpec {
    const Benchmark* b;
    SchemeName s;
  };
  std::vector<CellSpec> specs;
  for (const Benchmark* b : benches) {
    for (const SchemeName& s : schemes) specs.push_back({b, s});
  }
  std::vector<CellTiming> cells(specs.size());
  const bool serial = jobs <= 1 || specs.size() <= 1;
  auto time_cell = [&](std::size_t i) {
    const Benchmark* b = specs[i].b;
    const SchemeName& s = specs[i].s;
    BenchConfig cfg;
    cfg.nprocs = static_cast<ProcId>(nprocs);
    cfg.scheme = s.scheme;
    cfg.tiny = true;
    CellTiming& cell = cells[i];
    cell.benchmark = b->name();
    cell.scheme = s.name;
    cell.best_ms = -1.0;
    for (unsigned long r = 0; r < repeat; ++r) {
      const auto t0 = Clock::now();
      const BenchResult res = b->run(cfg);
      const auto t1 = Clock::now();
      if (res.checksum != b->reference_checksum(cfg)) {
        cell.error = "host_perf: " + b->name() + "/" + s.name +
                     " checksum mismatch\n";
        return;
      }
      cell.makespan_cycles = res.total_cycles;
      const double ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      if (cell.best_ms < 0.0 || ms < cell.best_ms) cell.best_ms = ms;
    }
    if (serial) {
      std::printf("%-12s %-9s %8.2f ms\n", cell.benchmark.c_str(),
                  cell.scheme.c_str(), cell.best_ms);
      std::fflush(stdout);
    }
  };
  if (serial) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      time_cell(i);
      if (!cells[i].error.empty()) {
        std::fputs(cells[i].error.c_str(), stderr);
        return 1;
      }
    }
  } else {
    std::atomic<std::size_t> next{0};
    const std::size_t nworkers =
        jobs < specs.size() ? static_cast<std::size_t>(jobs) : specs.size();
    std::vector<std::thread> pool;
    pool.reserve(nworkers);
    for (std::size_t w = 0; w < nworkers; ++w) {
      pool.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1); i < specs.size();
             i = next.fetch_add(1)) {
          try {
            time_cell(i);
          } catch (const std::exception& e) {
            cells[i].error = "host_perf: " + specs[i].b->name() + "/" +
                             specs[i].s.name + " failed: " + e.what() + "\n";
          }
        }
      });
    }
    for (std::thread& t : pool) t.join();
    bool failed = false;
    for (const CellTiming& c : cells) {
      if (!c.error.empty()) {
        std::fputs(c.error.c_str(), stderr);
        failed = true;
      } else {
        std::printf("%-12s %-9s %8.2f ms\n", c.benchmark.c_str(),
                    c.scheme.c_str(), c.best_ms);
      }
    }
    if (failed) return 1;
  }
  double total_best_ms = 0.0;
  for (const CellTiming& c : cells) total_best_ms += c.best_ms;
  std::printf("%-12s %-9s %8.2f ms  (%zu cells, best of %lu, p=%lu, tiny)\n",
              "TOTAL", "", total_best_ms, cells.size(), repeat, nprocs);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "host_perf: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n \"host_bench_schema_version\": %d,\n"
                 " \"generator\": \"host_perf\",\n"
                 " \"mode\": \"tiny\",\n"
                 " \"nprocs\": %lu,\n \"repeat\": %lu,\n \"jobs\": %lu,\n"
                 " \"cells\": [\n",
                 kHostBenchSchemaVersion, nprocs, repeat, jobs);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const CellTiming& c = cells[i];
      std::fprintf(f,
                   "  {\"benchmark\": \"%s\", \"scheme\": \"%s\", "
                   "\"best_ms\": %.3f, \"makespan_cycles\": %llu}%s\n",
                   json_escape_nothing_needed(c.benchmark).c_str(),
                   json_escape_nothing_needed(c.scheme).c_str(), c.best_ms,
                   static_cast<unsigned long long>(c.makespan_cycles),
                   i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, " ],\n \"total_best_ms\": %.3f\n}\n", total_best_ms);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
