# Empty compiler generated dependencies file for table3_coherence.
# This may be replaced when dependencies are built.
