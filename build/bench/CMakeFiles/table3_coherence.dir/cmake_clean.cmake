file(REMOVE_RECURSE
  "CMakeFiles/table3_coherence.dir/table3_coherence.cpp.o"
  "CMakeFiles/table3_coherence.dir/table3_coherence.cpp.o.d"
  "table3_coherence"
  "table3_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
