# Empty compiler generated dependencies file for fig5_bottleneck.
# This may be replaced when dependencies are built.
