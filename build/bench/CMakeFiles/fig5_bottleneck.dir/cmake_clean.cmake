file(REMOVE_RECURSE
  "CMakeFiles/fig5_bottleneck.dir/fig5_bottleneck.cpp.o"
  "CMakeFiles/fig5_bottleneck.dir/fig5_bottleneck.cpp.o.d"
  "fig5_bottleneck"
  "fig5_bottleneck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_bottleneck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
