# Empty dependencies file for fig1_cache_microbench.
# This may be replaced when dependencies are built.
