file(REMOVE_RECURSE
  "CMakeFiles/fig1_cache_microbench.dir/fig1_cache_microbench.cpp.o"
  "CMakeFiles/fig1_cache_microbench.dir/fig1_cache_microbench.cpp.o.d"
  "fig1_cache_microbench"
  "fig1_cache_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_cache_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
