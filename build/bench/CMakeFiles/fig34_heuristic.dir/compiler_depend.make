# Empty compiler generated dependencies file for fig34_heuristic.
# This may be replaced when dependencies are built.
