file(REMOVE_RECURSE
  "CMakeFiles/fig34_heuristic.dir/fig34_heuristic.cpp.o"
  "CMakeFiles/fig34_heuristic.dir/fig34_heuristic.cpp.o.d"
  "fig34_heuristic"
  "fig34_heuristic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig34_heuristic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
