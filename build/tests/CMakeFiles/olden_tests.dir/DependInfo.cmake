
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/benchmark_conformance_test.cpp" "tests/CMakeFiles/olden_tests.dir/benchmark_conformance_test.cpp.o" "gcc" "tests/CMakeFiles/olden_tests.dir/benchmark_conformance_test.cpp.o.d"
  "/root/repo/tests/cache_test.cpp" "tests/CMakeFiles/olden_tests.dir/cache_test.cpp.o" "gcc" "tests/CMakeFiles/olden_tests.dir/cache_test.cpp.o.d"
  "/root/repo/tests/coherence_property_test.cpp" "tests/CMakeFiles/olden_tests.dir/coherence_property_test.cpp.o" "gcc" "tests/CMakeFiles/olden_tests.dir/coherence_property_test.cpp.o.d"
  "/root/repo/tests/heuristic_test.cpp" "tests/CMakeFiles/olden_tests.dir/heuristic_test.cpp.o" "gcc" "tests/CMakeFiles/olden_tests.dir/heuristic_test.cpp.o.d"
  "/root/repo/tests/mem_test.cpp" "tests/CMakeFiles/olden_tests.dir/mem_test.cpp.o" "gcc" "tests/CMakeFiles/olden_tests.dir/mem_test.cpp.o.d"
  "/root/repo/tests/runtime_edge_test.cpp" "tests/CMakeFiles/olden_tests.dir/runtime_edge_test.cpp.o" "gcc" "tests/CMakeFiles/olden_tests.dir/runtime_edge_test.cpp.o.d"
  "/root/repo/tests/runtime_smoke_test.cpp" "tests/CMakeFiles/olden_tests.dir/runtime_smoke_test.cpp.o" "gcc" "tests/CMakeFiles/olden_tests.dir/runtime_smoke_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/olden.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/olden_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/olden_bench_suite.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
