# Empty dependencies file for olden_tests.
# This may be replaced when dependencies are built.
