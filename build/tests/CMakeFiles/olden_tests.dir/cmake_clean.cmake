file(REMOVE_RECURSE
  "CMakeFiles/olden_tests.dir/benchmark_conformance_test.cpp.o"
  "CMakeFiles/olden_tests.dir/benchmark_conformance_test.cpp.o.d"
  "CMakeFiles/olden_tests.dir/cache_test.cpp.o"
  "CMakeFiles/olden_tests.dir/cache_test.cpp.o.d"
  "CMakeFiles/olden_tests.dir/coherence_property_test.cpp.o"
  "CMakeFiles/olden_tests.dir/coherence_property_test.cpp.o.d"
  "CMakeFiles/olden_tests.dir/heuristic_test.cpp.o"
  "CMakeFiles/olden_tests.dir/heuristic_test.cpp.o.d"
  "CMakeFiles/olden_tests.dir/mem_test.cpp.o"
  "CMakeFiles/olden_tests.dir/mem_test.cpp.o.d"
  "CMakeFiles/olden_tests.dir/runtime_edge_test.cpp.o"
  "CMakeFiles/olden_tests.dir/runtime_edge_test.cpp.o.d"
  "CMakeFiles/olden_tests.dir/runtime_smoke_test.cpp.o"
  "CMakeFiles/olden_tests.dir/runtime_smoke_test.cpp.o.d"
  "olden_tests"
  "olden_tests.pdb"
  "olden_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olden_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
