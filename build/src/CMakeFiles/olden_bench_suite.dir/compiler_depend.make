# Empty compiler generated dependencies file for olden_bench_suite.
# This may be replaced when dependencies are built.
