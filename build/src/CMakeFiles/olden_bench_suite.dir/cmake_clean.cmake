file(REMOVE_RECURSE
  "CMakeFiles/olden_bench_suite.dir/olden/bench/barnes.cpp.o"
  "CMakeFiles/olden_bench_suite.dir/olden/bench/barnes.cpp.o.d"
  "CMakeFiles/olden_bench_suite.dir/olden/bench/bisort.cpp.o"
  "CMakeFiles/olden_bench_suite.dir/olden/bench/bisort.cpp.o.d"
  "CMakeFiles/olden_bench_suite.dir/olden/bench/em3d.cpp.o"
  "CMakeFiles/olden_bench_suite.dir/olden/bench/em3d.cpp.o.d"
  "CMakeFiles/olden_bench_suite.dir/olden/bench/health.cpp.o"
  "CMakeFiles/olden_bench_suite.dir/olden/bench/health.cpp.o.d"
  "CMakeFiles/olden_bench_suite.dir/olden/bench/mst.cpp.o"
  "CMakeFiles/olden_bench_suite.dir/olden/bench/mst.cpp.o.d"
  "CMakeFiles/olden_bench_suite.dir/olden/bench/perimeter.cpp.o"
  "CMakeFiles/olden_bench_suite.dir/olden/bench/perimeter.cpp.o.d"
  "CMakeFiles/olden_bench_suite.dir/olden/bench/power.cpp.o"
  "CMakeFiles/olden_bench_suite.dir/olden/bench/power.cpp.o.d"
  "CMakeFiles/olden_bench_suite.dir/olden/bench/suite.cpp.o"
  "CMakeFiles/olden_bench_suite.dir/olden/bench/suite.cpp.o.d"
  "CMakeFiles/olden_bench_suite.dir/olden/bench/treeadd.cpp.o"
  "CMakeFiles/olden_bench_suite.dir/olden/bench/treeadd.cpp.o.d"
  "CMakeFiles/olden_bench_suite.dir/olden/bench/tsp.cpp.o"
  "CMakeFiles/olden_bench_suite.dir/olden/bench/tsp.cpp.o.d"
  "CMakeFiles/olden_bench_suite.dir/olden/bench/voronoi.cpp.o"
  "CMakeFiles/olden_bench_suite.dir/olden/bench/voronoi.cpp.o.d"
  "libolden_bench_suite.a"
  "libolden_bench_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olden_bench_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
