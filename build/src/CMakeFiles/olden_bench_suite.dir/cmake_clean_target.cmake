file(REMOVE_RECURSE
  "libolden_bench_suite.a"
)
