
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/olden/bench/barnes.cpp" "src/CMakeFiles/olden_bench_suite.dir/olden/bench/barnes.cpp.o" "gcc" "src/CMakeFiles/olden_bench_suite.dir/olden/bench/barnes.cpp.o.d"
  "/root/repo/src/olden/bench/bisort.cpp" "src/CMakeFiles/olden_bench_suite.dir/olden/bench/bisort.cpp.o" "gcc" "src/CMakeFiles/olden_bench_suite.dir/olden/bench/bisort.cpp.o.d"
  "/root/repo/src/olden/bench/em3d.cpp" "src/CMakeFiles/olden_bench_suite.dir/olden/bench/em3d.cpp.o" "gcc" "src/CMakeFiles/olden_bench_suite.dir/olden/bench/em3d.cpp.o.d"
  "/root/repo/src/olden/bench/health.cpp" "src/CMakeFiles/olden_bench_suite.dir/olden/bench/health.cpp.o" "gcc" "src/CMakeFiles/olden_bench_suite.dir/olden/bench/health.cpp.o.d"
  "/root/repo/src/olden/bench/mst.cpp" "src/CMakeFiles/olden_bench_suite.dir/olden/bench/mst.cpp.o" "gcc" "src/CMakeFiles/olden_bench_suite.dir/olden/bench/mst.cpp.o.d"
  "/root/repo/src/olden/bench/perimeter.cpp" "src/CMakeFiles/olden_bench_suite.dir/olden/bench/perimeter.cpp.o" "gcc" "src/CMakeFiles/olden_bench_suite.dir/olden/bench/perimeter.cpp.o.d"
  "/root/repo/src/olden/bench/power.cpp" "src/CMakeFiles/olden_bench_suite.dir/olden/bench/power.cpp.o" "gcc" "src/CMakeFiles/olden_bench_suite.dir/olden/bench/power.cpp.o.d"
  "/root/repo/src/olden/bench/suite.cpp" "src/CMakeFiles/olden_bench_suite.dir/olden/bench/suite.cpp.o" "gcc" "src/CMakeFiles/olden_bench_suite.dir/olden/bench/suite.cpp.o.d"
  "/root/repo/src/olden/bench/treeadd.cpp" "src/CMakeFiles/olden_bench_suite.dir/olden/bench/treeadd.cpp.o" "gcc" "src/CMakeFiles/olden_bench_suite.dir/olden/bench/treeadd.cpp.o.d"
  "/root/repo/src/olden/bench/tsp.cpp" "src/CMakeFiles/olden_bench_suite.dir/olden/bench/tsp.cpp.o" "gcc" "src/CMakeFiles/olden_bench_suite.dir/olden/bench/tsp.cpp.o.d"
  "/root/repo/src/olden/bench/voronoi.cpp" "src/CMakeFiles/olden_bench_suite.dir/olden/bench/voronoi.cpp.o" "gcc" "src/CMakeFiles/olden_bench_suite.dir/olden/bench/voronoi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/olden.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/olden_compiler.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
