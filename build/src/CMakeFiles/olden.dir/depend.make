# Empty dependencies file for olden.
# This may be replaced when dependencies are built.
