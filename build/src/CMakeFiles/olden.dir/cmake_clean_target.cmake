file(REMOVE_RECURSE
  "libolden.a"
)
