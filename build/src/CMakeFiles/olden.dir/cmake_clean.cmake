file(REMOVE_RECURSE
  "CMakeFiles/olden.dir/olden/cache/software_cache.cpp.o"
  "CMakeFiles/olden.dir/olden/cache/software_cache.cpp.o.d"
  "CMakeFiles/olden.dir/olden/mem/heap.cpp.o"
  "CMakeFiles/olden.dir/olden/mem/heap.cpp.o.d"
  "CMakeFiles/olden.dir/olden/runtime/machine.cpp.o"
  "CMakeFiles/olden.dir/olden/runtime/machine.cpp.o.d"
  "libolden.a"
  "libolden.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
