
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/olden/cache/software_cache.cpp" "src/CMakeFiles/olden.dir/olden/cache/software_cache.cpp.o" "gcc" "src/CMakeFiles/olden.dir/olden/cache/software_cache.cpp.o.d"
  "/root/repo/src/olden/mem/heap.cpp" "src/CMakeFiles/olden.dir/olden/mem/heap.cpp.o" "gcc" "src/CMakeFiles/olden.dir/olden/mem/heap.cpp.o.d"
  "/root/repo/src/olden/runtime/machine.cpp" "src/CMakeFiles/olden.dir/olden/runtime/machine.cpp.o" "gcc" "src/CMakeFiles/olden.dir/olden/runtime/machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
