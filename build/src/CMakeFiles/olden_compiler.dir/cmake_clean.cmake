file(REMOVE_RECURSE
  "CMakeFiles/olden_compiler.dir/olden/compiler/analysis.cpp.o"
  "CMakeFiles/olden_compiler.dir/olden/compiler/analysis.cpp.o.d"
  "libolden_compiler.a"
  "libolden_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olden_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
