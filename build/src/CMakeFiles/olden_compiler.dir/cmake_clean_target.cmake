file(REMOVE_RECURSE
  "libolden_compiler.a"
)
