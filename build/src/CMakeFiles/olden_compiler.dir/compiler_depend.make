# Empty compiler generated dependencies file for olden_compiler.
# This may be replaced when dependencies are built.
