file(REMOVE_RECURSE
  "CMakeFiles/coherence_lab.dir/coherence_lab.cpp.o"
  "CMakeFiles/coherence_lab.dir/coherence_lab.cpp.o.d"
  "coherence_lab"
  "coherence_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coherence_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
