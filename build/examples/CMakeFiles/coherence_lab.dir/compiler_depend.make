# Empty compiler generated dependencies file for coherence_lab.
# This may be replaced when dependencies are built.
