file(REMOVE_RECURSE
  "CMakeFiles/layout_matters.dir/layout_matters.cpp.o"
  "CMakeFiles/layout_matters.dir/layout_matters.cpp.o.d"
  "layout_matters"
  "layout_matters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layout_matters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
