# Empty dependencies file for layout_matters.
# This may be replaced when dependencies are built.
