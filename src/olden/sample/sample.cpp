#include "olden/sample/sample.hpp"

#include <cstdio>

namespace olden::sample {

namespace {

// Strict non-negative decimal parse, same grammar as ObsCli's numeric
// flags: digits only, no sign, no leading '+', value must fit uint64.
bool parse_field(const std::string& s, std::size_t begin, std::size_t end,
                 Cycles* out) {
  if (begin >= end) return false;
  Cycles v = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const char c = s[i];
    if (c < '0' || c > '9') return false;
    if (v > (UINT64_MAX - static_cast<Cycles>(c - '0')) / 10) return false;
    v = v * 10 + static_cast<Cycles>(c - '0');
  }
  *out = v;
  return true;
}

}  // namespace

bool parse_spec(const std::string& s, Spec* out, std::string* err) {
  const std::size_t c1 = s.find(':');
  if (c1 == std::string::npos) {
    if (err) *err = "expected W:D[:offset], got '" + s + "'";
    return false;
  }
  const std::size_t c2 = s.find(':', c1 + 1);
  Spec spec;
  const bool ok =
      parse_field(s, 0, c1, &spec.window) &&
      parse_field(s, c1 + 1, c2 == std::string::npos ? s.size() : c2,
                  &spec.detail) &&
      (c2 == std::string::npos ||
       parse_field(s, c2 + 1, s.size(), &spec.offset));
  if (!ok) {
    if (err) *err = "expected W:D[:offset] as decimal cycles, got '" + s + "'";
    return false;
  }
  if (spec.window == 0 || spec.detail == 0) {
    if (err) *err = "sample window and detail must be positive";
    return false;
  }
  if (spec.detail > spec.window) {
    if (err) *err = "sample detail D must not exceed window W";
    return false;
  }
  *out = spec;
  return true;
}

std::string to_string(const Spec& spec) {
  char buf[72];
  std::snprintf(buf, sizeof buf, "%llu:%llu:%llu",
                static_cast<unsigned long long>(spec.window),
                static_cast<unsigned long long>(spec.detail),
                static_cast<unsigned long long>(spec.offset));
  return buf;
}

void RunSample::finalize(Cycles run_makespan) {
  makespan = run_makespan;
  measured_cycles = measured_before(spec, makespan);
  // Number of windows that genuinely overlap [0, makespan): windows start
  // at offset + kW, so k ranges over [0, ceil((makespan - offset) / W)).
  std::size_t n = 0;
  if (makespan > spec.offset) {
    const Cycles x = makespan - spec.offset;
    n = static_cast<std::size_t>((x + spec.window - 1) / spec.window);
  }
  // An event stamped exactly at the makespan can land in window n (which
  // starts at the makespan and has zero measured length). Fold any such
  // trailing tallies into the last real window so event counts over a
  // fully-measured schedule (W == D) match the exact run; spans can never
  // land there (overlap needs window start < span end <= makespan).
  while (windows.size() > n && n > 0) {
    const WindowCounts& extra = windows.back();
    for (std::size_t k = 0; k < extra.events.size(); ++k)
      windows[n - 1].events[k] += extra.events[k];
    windows.pop_back();
  }
  windows.resize(n);
}

}  // namespace olden::sample
