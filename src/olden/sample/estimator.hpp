// Extrapolation from measured windows to whole-run population estimates.
//
// For each cycle bucket b the windows hold an integer-exact sum S_b of
// bucket cycles inside the measured fraction of the run; the estimator
// scales it to the full run by the exact rational makespan/measured using
// 128-bit intermediates, then applies largest-remainder apportionment so
// the six bucket estimates sum to exactly nprocs x makespan — the same
// conservation law exact runs obey (check_stats_schema.py enforces it on
// both). Event-kind counts are scaled the same way, unapportioned.
//
// The makespan itself is NOT estimated: unlike hardware SMARTS, the
// functional-warming fast-forward still advances full virtual time, so
// the population total is known exactly. Its "estimate" is the exact
// value with a zero-width CI; the sampling uncertainty lives entirely in
// the bucket and event-kind estimates.
//
// CIs are classic systematic-sampling standard errors with finite-
// population correction: with n windows of length L_k, tallies x_k,
// overall rate r = S/measured and sampled fraction f = measured/makespan,
//   s^2   = sum((x_k - r*L_k)^2) / (n - 1)
//   ci95  = 1.96 * sqrt(n * s^2) * sqrt(1 - f) / f
// A fully measured run has f == 1 and therefore ci95 == 0 exactly; n < 2
// or measured == 0 yields the maximal (vacuous) CI. Double math uses a
// fixed summation order, so CIs are bit-deterministic.
#pragma once

#include <array>
#include <cstdint>

#include "olden/sample/sample.hpp"
#include "olden/trace/trace.hpp"

namespace olden::sample {

/// A population estimate with a symmetric 95% confidence half-width.
/// ci95 is ceil'd to an integer so JSON stays float-free.
struct Estimate {
  std::uint64_t value = 0;
  std::uint64_t ci95 = 0;
};

/// Everything the v5 stats JSON reports for one sampled run.
struct RunEstimates {
  Estimate makespan;  ///< exact value, ci95 == 0 (see file comment)
  std::array<Estimate, trace::kNumBuckets> buckets{};
  std::array<Estimate, trace::kNumEventKinds> event_counts{};
  /// Integer-exact in-window sums the estimates were scaled from.
  trace::BucketCycles measured_buckets{};
  std::array<std::uint64_t, trace::kNumEventKinds> measured_events{};
};

/// Compute estimates for a finalized RunSample. nprocs and makespan come
/// from the run record; sample.finalize() must have run already.
[[nodiscard]] RunEstimates estimate(const RunSample& sample,
                                    std::uint32_t nprocs, Cycles makespan);

}  // namespace olden::sample
