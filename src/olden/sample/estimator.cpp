#include "olden/sample/estimator.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace olden::sample {

namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

// floor(s * makespan / measured) with 128-bit intermediates, plus the
// remainder for largest-remainder apportionment. measured > 0.
struct Scaled {
  u64 quotient;
  u64 remainder;  // of s * makespan mod measured, in [0, measured)
};

Scaled scale(u64 s, u64 makespan, u64 measured) {
  const u128 num = static_cast<u128>(s) * makespan;
  return {static_cast<u64>(num / measured), static_cast<u64>(num % measured)};
}

// 95% half-width for one tallied quantity. windows/lens give the n
// per-window tallies and window lengths; total is the in-window sum,
// measured/makespan define the sampled fraction. cap is the population
// total the CI is clamped to (a CI wider than "anything possible" carries
// no information). Summation order is fixed, so the result is
// bit-deterministic for a given schedule.
u64 ci95(const std::vector<double>& tallies, const std::vector<double>& lens,
         u64 total, u64 measured, u64 makespan, u64 cap) {
  if (measured == makespan) return 0;  // fully measured: no sampling error
  const std::size_t n = tallies.size();
  if (n < 2 || measured == 0) return cap;  // vacuous
  const double rate = static_cast<double>(total) / static_cast<double>(measured);
  double ss = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double e = tallies[k] - rate * lens[k];
    ss += e * e;
  }
  const double s2 = ss / static_cast<double>(n - 1);
  const double f =
      static_cast<double>(measured) / static_cast<double>(makespan);
  const double fpc = std::sqrt(std::max(0.0, 1.0 - f));
  const double half =
      1.96 * std::sqrt(static_cast<double>(n) * s2) * fpc / f;
  if (!(half >= 0.0)) return cap;
  if (half >= static_cast<double>(cap)) return cap;
  return static_cast<u64>(std::ceil(half));
}

}  // namespace

RunEstimates estimate(const RunSample& sample, std::uint32_t nprocs,
                      Cycles makespan) {
  RunEstimates out;
  out.makespan = {makespan, 0};

  const u64 measured = sample.measured_cycles;
  const std::size_t n = sample.windows.size();

  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t b = 0; b < trace::kNumBuckets; ++b)
      out.measured_buckets[b] += sample.windows[k].buckets[b];
    for (std::size_t e = 0; e < trace::kNumEventKinds; ++e)
      out.measured_events[e] += sample.windows[k].events[e];
  }

  const u64 target = static_cast<u64>(nprocs) * makespan;
  if (measured == 0) {
    // Degenerate schedule (offset beyond the makespan): nothing was
    // measured, so report idle-only apportionment with vacuous CIs.
    for (std::size_t b = 0; b < trace::kNumBuckets; ++b)
      out.buckets[b] = {0, target};
    out.buckets[static_cast<std::size_t>(trace::CycleBucket::kIdle)].value =
        target;
    for (std::size_t e = 0; e < trace::kNumEventKinds; ++e)
      out.event_counts[e] = {0, 0};
    return out;
  }

  // Bucket estimates: floor-scale each sum, then hand out the shortfall
  // against target = nprocs * makespan by largest remainder (ties to the
  // lower bucket index). Since the in-window bucket sums tile measured
  // time (sum_b S_b == nprocs * measured after idle padding), the
  // shortfall is at most kNumBuckets - 1 cycles.
  std::array<Scaled, trace::kNumBuckets> scaled{};
  u64 floor_sum = 0;
  for (std::size_t b = 0; b < trace::kNumBuckets; ++b) {
    scaled[b] = scale(out.measured_buckets[b], makespan, measured);
    floor_sum += scaled[b].quotient;
  }
  u64 shortfall = target > floor_sum ? target - floor_sum : 0;
  std::array<std::size_t, trace::kNumBuckets> order{};
  for (std::size_t b = 0; b < trace::kNumBuckets; ++b) order[b] = b;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) {
                     return scaled[x].remainder > scaled[y].remainder;
                   });
  for (std::size_t i = 0; i < order.size() && shortfall > 0; ++i) {
    if (scaled[order[i]].remainder == 0) break;  // exact multiples stay put
    ++scaled[order[i]].quotient;
    --shortfall;
  }

  // Per-window tallies for the CI formula, in fixed window order.
  std::vector<double> lens(n);
  for (std::size_t k = 0; k < n; ++k)
    lens[k] = static_cast<double>(sample.window_len(k));
  std::vector<double> tallies(n);

  for (std::size_t b = 0; b < trace::kNumBuckets; ++b) {
    for (std::size_t k = 0; k < n; ++k)
      tallies[k] = static_cast<double>(sample.windows[k].buckets[b]);
    out.buckets[b] = {scaled[b].quotient,
                      ci95(tallies, lens, out.measured_buckets[b], measured,
                           makespan, target)};
  }

  for (std::size_t e = 0; e < trace::kNumEventKinds; ++e) {
    const u64 est = scale(out.measured_events[e], makespan, measured).quotient;
    if (out.measured_events[e] == 0) {
      out.event_counts[e] = {0, 0};
      continue;
    }
    for (std::size_t k = 0; k < n; ++k)
      tallies[k] = static_cast<double>(sample.windows[k].events[e]);
    // Unlike cycle buckets, event counts have no conserved population
    // total to clamp against, so the cap is vacuous.
    out.event_counts[e] = {est, ci95(tallies, lens, out.measured_events[e],
                                     measured, makespan, UINT64_MAX)};
  }

  return out;
}

}  // namespace olden::sample
