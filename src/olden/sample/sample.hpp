// SMARTS-style systematic sampling: the schedule grammar and the per-run
// window accumulator.
//
// A sampled run alternates between *functional warming* — the Machine
// advances with full logical fidelity (threads, futures, cache/directory/
// write-log state, the fault plane), but per-event and per-cycle
// observability bookkeeping is suppressed — and *detailed measurement
// windows* of D virtual cycles every W cycles, where cycle-bucket
// attribution and event-kind counting run in full. The schedule is a pure
// function of (W, D, offset) and virtual time, so it is deterministic and
// reproducible by construction: the same spec always measures exactly the
// same virtual-time windows, regardless of host parallelism or repeats.
//
// Sampling lives entirely on the observer side of the Machine/Observer
// boundary. The runtime has no warming/detail mode switch — processors
// advance their clocks independently (one can be millions of cycles ahead
// of another), so a global mode flip is not even well defined; instead
// every hook checks the *timestamp it was called with* against the
// periodic schedule. Because hooks never touch virtual time, a sampled
// run's checksums, makespan and machine counters are identical to an
// exact run's by construction (tests/sample_validation_test.cpp holds the
// runtime to that).
//
// What stays exact under sampling: every MachineStats counter (the
// machine maintains them itself), the makespan, per-proc final clocks,
// and the fault-class ledger. What is window-measured and extrapolated
// (src/olden/sample/estimator.hpp): cycle buckets and event-kind counts.
// Histograms, page heat, traces and profiles are suppressed entirely —
// --sample excludes --trace*/--profile at the CLI.
//
// See docs/SAMPLING.md for schedule semantics and how to choose W:D.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "olden/support/types.hpp"
#include "olden/trace/trace.hpp"

namespace olden::sample {

/// A sampling schedule "W:D[:offset]": detail windows of `detail` cycles
/// start at offset, offset+W, offset+2W, ...; everything else is warming.
struct Spec {
  Cycles window = 0;  ///< W, the schedule period; 0 disables sampling
  Cycles detail = 0;  ///< D, measured cycles per period (0 < D <= W)
  Cycles offset = 0;  ///< virtual-cycle phase of the first window

  [[nodiscard]] bool enabled() const { return window > 0; }
};

/// Parse "W:D[:offset]" (strict non-negative decimal integers; W > 0,
/// 0 < D <= W). Returns false with a one-line message in *err.
bool parse_spec(const std::string& s, Spec* out, std::string* err);

/// Canonical "W:D:offset" rendering (always three fields, so the schedule
/// pinned in the stats JSON is unambiguous).
[[nodiscard]] std::string to_string(const Spec& spec);

/// Measured virtual time in [0, t) under the schedule: the total overlap
/// of [0, t) with the detail windows. Integer-exact.
[[nodiscard]] inline Cycles measured_before(const Spec& s, Cycles t) {
  if (t <= s.offset) return 0;
  const Cycles x = t - s.offset;
  return (x / s.window) * s.detail +
         (x % s.window < s.detail ? x % s.window : s.detail);
}

/// True when virtual time t falls inside a detail window.
[[nodiscard]] inline bool in_detail(const Spec& s, Cycles t) {
  return t >= s.offset && (t - s.offset) % s.window < s.detail;
}

/// In-window tallies for one detail window.
struct WindowCounts {
  trace::BucketCycles buckets{};
  std::array<std::uint64_t, trace::kNumEventKinds> events{};
};

/// The per-run accumulator. Rides in trace::RunRecord so that
/// Observer::adopt_runs_from merges host-parallel worker records
/// byte-identically to a serial run — the same trick RunProfile uses.
///
/// Memory is one WindowCounts (~272 bytes) per detail window, i.e.
/// ~makespan/W entries; choose W so makespan/W stays in the thousands.
struct RunSample {
  bool enabled = false;
  Spec spec;
  std::vector<WindowCounts> windows;  ///< indexed by window number k
  /// Set by finalize():
  Cycles makespan = 0;
  Cycles measured_cycles = 0;  ///< measured_before(spec, makespan)

  void reset(const Spec& s) {
    enabled = s.enabled();
    spec = s;
    windows.clear();
    makespan = 0;
    measured_cycles = 0;
  }

  /// Count one event stamped at virtual time t. Warming-phase events are
  /// dropped (their ids were still assigned by the observer, so causal id
  /// stability is unaffected).
  void add_event(Cycles t, trace::EventKind k) {
    if (t < spec.offset) return;
    const Cycles x = t - spec.offset;
    if (x % spec.window >= spec.detail) return;
    const std::size_t w = static_cast<std::size_t>(x / spec.window);
    if (w >= windows.size()) windows.resize(w + 1);
    ++windows[w].events[static_cast<std::size_t>(k)];
  }

  /// Attribute the cycle span [a, b) on one processor to bucket `bkt`,
  /// split integer-exactly across every detail window it overlaps. A span
  /// entirely inside a warming gap adds nothing.
  void add_span(Cycles a, Cycles b, trace::CycleBucket bkt) {
    if (b <= spec.offset || b <= a) return;
    if (a < spec.offset) a = spec.offset;
    for (Cycles k = (a - spec.offset) / spec.window;; ++k) {
      const Cycles ws = spec.offset + k * spec.window;
      if (ws >= b) break;
      const Cycles we = ws + spec.detail;
      const Cycles lo = a > ws ? a : ws;
      const Cycles hi = b < we ? b : we;
      if (hi > lo) {
        const std::size_t w = static_cast<std::size_t>(k);
        if (w >= windows.size()) windows.resize(w + 1);
        windows[w].buckets[static_cast<std::size_t>(bkt)] += hi - lo;
      }
    }
  }

  /// Close the run: record the makespan, clamp the window list to the
  /// windows that start before it (an event stamped exactly at the
  /// makespan can open a zero-length trailing window; its counts are
  /// folded into the last real window), and compute measured_cycles.
  /// Callers must already have padded every processor's trailing idle
  /// span [final clock, makespan) via add_span, so that each window's
  /// bucket cycles sum to nprocs x its length (the conservation rule
  /// check_stats_schema.py re-verifies).
  void finalize(Cycles run_makespan);

  /// Length of window k under the finalized makespan (the last window may
  /// be truncated).
  [[nodiscard]] Cycles window_len(std::size_t k) const {
    const Cycles ws = spec.offset + static_cast<Cycles>(k) * spec.window;
    const Cycles we = ws + spec.detail;
    return (we < makespan ? we : makespan) - ws;
  }
};

}  // namespace olden::sample
