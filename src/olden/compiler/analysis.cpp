#include "olden/compiler/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "olden/support/require.hpp"

namespace olden::ir {

namespace {

/// Symbolic value of a pointer variable relative to the start of the
/// current iteration: origin variable plus accumulated path affinity.
struct SymVal {
  std::string origin;
  Affinity aff = 1.0;

  friend bool operator==(const SymVal& a, const SymVal& b) {
    return a.origin == b.origin && a.aff == b.aff;
  }
};

/// Environment: absent key = untouched this iteration (identity);
/// present nullopt = assigned something with no expressible update path.
using Env = std::map<std::string, std::optional<SymVal>>;

std::optional<SymVal> resolve(const Env& env, const std::string& var) {
  auto it = env.find(var);
  if (it == env.end()) return SymVal{var, 1.0};
  return it->second;
}

/// A call site observed during evaluation, for interprocedural linking and
/// the pass-2 bottleneck test.
struct CallContext {
  int enclosing_loop = -1;
  std::string callee;
  /// Base variable of each actual (empty string if inexpressible).
  std::vector<std::string> arg_bases;
  bool future = false;
};

/// An inner loop observed directly inside another loop's body: records how
/// each variable resolved at the inner loop's entry.
struct LoopEntrySnapshot {
  int loop_id = -1;
  int enclosing_loop = -1;
  std::map<std::string, std::string> origin_at_entry;  // var -> base var
};

/// Where a dereference site lives: innermost control loop + variable
/// (plus the owning procedure, for sites outside any intraprocedural loop).
struct SiteInfo {
  int loop_id = -1;
  std::string var;
  std::string proc;
};

class Analyzer {
 public:
  Analyzer(const Program& program, std::size_t num_sites)
      : prog_(program), num_sites_(num_sites) {}

  Selection run() {
    for (const Procedure& p : prog_.procs) analyze_procedure(p);
    link_interprocedural();
    pass1_select();
    pass2_bottlenecks();
    return build_selection();
  }

 private:
  // --- dataflow ---------------------------------------------------------

  /// Accumulated recursive-call updates along the current execution path.
  ///
  /// §4.2's two combining rules coexist here:
  ///  * calls on the same path ("both are going to be executed", Figure 4)
  ///    compose as a miss-probability product — 1 - prod(1 - a_i);
  ///  * calls in mutually exclusive if-branches are alternative
  ///    iterations, so they merge by the join rule (average if the update
  ///    appears in both recursing branches, omit otherwise). A branch with
  ///    no recursive call at all is a loop *exit* (the base case) and does
  ///    not participate in merging — this is why TreeAdd's two same-branch
  ///    calls give 97% while a tree search's either-or calls give 70%.
  struct RecAccum {
    bool any_call = false;
    /// (param, origin) -> prod(1 - a_i) along this path
    std::map<std::pair<std::string, std::string>, double> miss;
  };

  static RecAccum merge_rec(const RecAccum& a, const RecAccum& b) {
    if (!a.any_call) return b;
    if (!b.any_call) return a;
    RecAccum m;
    m.any_call = true;
    for (const auto& [key, miss_a] : a.miss) {
      auto it = b.miss.find(key);
      if (it == b.miss.end()) continue;  // one-sided: omitted
      const double aff = ((1.0 - miss_a) + (1.0 - it->second)) / 2.0;
      m.miss[key] = 1.0 - aff;
    }
    return m;
  }

  static void fold_rec(RecAccum& dst, const RecAccum& src) {
    dst.any_call |= src.any_call;
    for (const auto& [key, miss] : src.miss) {
      auto [it, fresh] = dst.miss.try_emplace(key, 1.0);
      (void)fresh;
      it->second *= miss;
    }
  }

  struct ProcScratch {
    const Procedure* proc = nullptr;
    bool rec_parallel = false;
    bool has_rec_call = false;
  };

  void analyze_procedure(const Procedure& p) {
    ProcScratch scratch;
    scratch.proc = &p;
    Env env;
    RecAccum rec;
    // The procedure body may itself be a control loop (recursion).
    const int rec_loop = p.rec_loop_id;
    eval_list(p.body, env, rec_loop, p, scratch, rec);

    if (scratch.has_rec_call) {
      OLDEN_REQUIRE(rec_loop >= 0,
                    "recursive procedure needs a rec_loop_id");
      LoopDecision d;
      d.loop_id = rec_loop;
      d.proc = p.name;
      d.is_recursion = true;
      d.parallelizable = scratch.rec_parallel;
      for (const auto& [key, miss] : rec.miss) {
        d.matrix.set(key.first, key.second, 1.0 - miss);
      }
      loops_.push_back(std::move(d));
    }
  }

  /// Evaluate a statement list. `loop` is the innermost enclosing control
  /// loop id (or the recursion loop for a top-level procedure body).
  void eval_list(const StmtList& body, Env& env, int loop,
                 const Procedure& proc, ProcScratch& scratch, RecAccum& rec) {
    for (const Stmt& s : body) {
      std::visit(
          [&](const auto& node) { eval(node, env, loop, proc, scratch, rec); },
          s);
    }
  }

  void eval(const Assign& a, Env& env, int loop, const Procedure& proc,
            ProcScratch&, RecAccum&) {
    if (!a.path.empty() && a.site.has_value()) {
      note_site(*a.site, loop, a.source, proc.name);
    }
    const auto src = resolve(env, a.source);
    if (!src.has_value()) {
      env[a.target] = std::nullopt;
      return;
    }
    env[a.target] = SymVal{src->origin, src->aff * prog_.path_affinity(a.path)};
  }

  void eval(const Deref& d, Env&, int loop, const Procedure& proc,
            ProcScratch&, RecAccum&) {
    note_site(d.site, loop, d.var, proc.name);
  }

  void eval(const Call& c, Env& env, int loop, const Procedure& proc,
            ProcScratch& scratch, RecAccum& rec) {
    if (c.callee == proc.name) {
      // Recursive call: parameter rebindings feed the recursion loop's
      // update matrix (combining rules documented on RecAccum).
      scratch.has_rec_call = true;
      rec.any_call = true;
      if (c.future) scratch.rec_parallel = true;
      OLDEN_REQUIRE(c.args.size() == proc.params.size(),
                    "recursive call arity mismatch");
      for (std::size_t i = 0; i < c.args.size(); ++i) {
        const auto v = resolve(env, c.args[i].var);
        if (!v.has_value()) continue;
        const double aff = v->aff * prog_.path_affinity(c.args[i].path);
        auto [it, fresh] =
            rec.miss.try_emplace({proc.params[i], v->origin}, 1.0);
        (void)fresh;
        it->second *= (1.0 - aff);
      }
      return;
    }
    CallContext ctx;
    ctx.enclosing_loop = loop;
    ctx.callee = c.callee;
    ctx.future = c.future;
    for (const Call::Arg& a : c.args) {
      const auto v = resolve(env, a.var);
      // The bottleneck test only needs the base variable; a nonempty path
      // (t->list) still "updates" per parent iteration iff its base does.
      ctx.arg_bases.push_back(v.has_value() ? v->origin : std::string{});
    }
    calls_.push_back(std::move(ctx));
  }

  void eval(const If& node, Env& env, int loop, const Procedure& proc,
            ProcScratch& scratch, RecAccum& rec) {
    Env then_env = env;
    Env else_env = env;
    RecAccum rec_then;
    RecAccum rec_else;
    eval_list(node.then_branch, then_env, loop, proc, scratch, rec_then);
    eval_list(node.else_branch, else_env, loop, proc, scratch, rec_else);
    fold_rec(rec, merge_rec(rec_then, rec_else));
    // Join rule (§4.2): average updates appearing in both branches with
    // the same origin; omit updates appearing in only one branch (they do
    // not happen every iteration, so the variable is not guaranteed to be
    // traversing the structure).
    std::vector<std::string> candidates;
    auto add = [&candidates](const std::string& v) {
      if (std::find(candidates.begin(), candidates.end(), v) ==
          candidates.end()) {
        candidates.push_back(v);
      }
    };
    for (const auto& [v, val] : then_env) {
      (void)val;
      add(v);
    }
    for (const auto& [v, val] : else_env) {
      (void)val;
      add(v);
    }
    for (const std::string& v : candidates) {
      const bool in_then = differs(then_env, env, v);
      const bool in_else = differs(else_env, env, v);
      if (!in_then && !in_else) continue;  // untouched: identity carries
      if (in_then && in_else) {
        const auto a = env_at(then_env, v);
        const auto b = env_at(else_env, v);
        if (a.has_value() && b.has_value() && a->origin == b->origin) {
          env[v] = SymVal{a->origin, (a->aff + b->aff) / 2.0};
        } else {
          env[v] = std::nullopt;
        }
      } else {
        env[v] = std::nullopt;  // update omitted
      }
    }
  }

  void eval(const While& node, Env& env, int loop, const Procedure& proc,
            ProcScratch& scratch, RecAccum& rec) {
    // Record how each variable resolves at the inner loop's entry, for the
    // pass-2 bottleneck test.
    LoopEntrySnapshot snap;
    snap.loop_id = node.loop_id;
    snap.enclosing_loop = loop;
    for (const std::string& v : vars_used(node.body)) {
      const auto r = resolve(env, v);
      if (r.has_value()) snap.origin_at_entry[v] = r->origin;
    }
    snapshots_.push_back(std::move(snap));

    // Analyze the inner loop in its own iteration frame. (Recursive calls
    // found inside still accumulate into the procedure's scratch; the
    // paper's prototype likewise does not analyze loops spanning
    // procedures, so bindings resolved against inner-loop locals simply
    // contribute nothing.)
    LoopDecision d;
    d.loop_id = node.loop_id;
    d.parent_id = loop;
    d.proc = proc.name;
    Env inner;
    const std::size_t call_mark = calls_.size();
    eval_list(node.body, inner, node.loop_id, proc, scratch, rec);
    for (const auto& [v, val] : inner) {
      if (val.has_value()) d.matrix.set(v, val->origin, val->aff);
    }
    // Parallelizable if the loop body futurecalls directly.
    for (std::size_t i = call_mark; i < calls_.size(); ++i) {
      if (calls_[i].enclosing_loop == node.loop_id && calls_[i].future) {
        d.parallelizable = true;
      }
    }
    loops_.push_back(std::move(d));

    // In the enclosing frame, everything the inner loop assigns has no
    // expressible per-outer-iteration update.
    for (const auto& [v, val] : inner) {
      (void)val;
      env[v] = std::nullopt;
    }
  }

  static std::optional<SymVal> env_at(const Env& env, const std::string& v) {
    auto it = env.find(v);
    if (it == env.end()) return SymVal{v, 1.0};
    return it->second;
  }

  static bool differs(const Env& branch, const Env& base,
                      const std::string& v) {
    return env_at(branch, v) != env_at(base, v);
  }

  /// All variables mentioned in a statement list (shallow + nested).
  static std::vector<std::string> vars_used(const StmtList& body) {
    std::vector<std::string> out;
    auto add = [&out](const std::string& v) {
      if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
    };
    for (const Stmt& s : body) {
      std::visit(
          [&](const auto& node) {
            using T = std::decay_t<decltype(node)>;
            if constexpr (std::is_same_v<T, Assign>) {
              add(node.target);
              add(node.source);
            } else if constexpr (std::is_same_v<T, Deref>) {
              add(node.var);
            } else if constexpr (std::is_same_v<T, Call>) {
              for (const auto& a : node.args) add(a.var);
            } else if constexpr (std::is_same_v<T, If>) {
              for (const auto& v : vars_used(node.then_branch)) add(v);
              for (const auto& v : vars_used(node.else_branch)) add(v);
            } else if constexpr (std::is_same_v<T, While>) {
              for (const auto& v : vars_used(node.body)) add(v);
            }
          },
          s);
    }
    return out;
  }

  void note_site(SiteId site, int loop, const std::string& var,
                 const std::string& proc) {
    if (sites_.size() <= site) sites_.resize(site + 1);
    sites_[site] = SiteInfo{loop, var, proc};
  }

  // --- interprocedural linking --------------------------------------------

  LoopDecision* find_loop(int id) {
    for (auto& l : loops_) {
      if (l.loop_id == id) return &l;
    }
    return nullptr;
  }

  void link_interprocedural() {
    // Outermost loops of a procedure called from inside a loop get that
    // call's enclosing loop as parent (limited interprocedural analysis:
    // single-call-site linking, as in the paper's prototype).
    for (const CallContext& c : calls_) {
      if (c.enclosing_loop < 0) continue;
      const Procedure* callee = prog_.find_proc(c.callee);
      if (callee == nullptr) continue;
      for (auto& l : loops_) {
        if (l.proc == callee->name && l.parent_id < 0) {
          l.parent_id = c.enclosing_loop;
        }
      }
    }
  }

  // --- pass 1: per-loop selection ----------------------------------------

  void pass1_select() {
    // Parents first, so inheritance sees the parent's choice.
    std::vector<LoopDecision*> order;
    for (auto& l : loops_) order.push_back(&l);
    std::sort(order.begin(), order.end(),
              [](const LoopDecision* a, const LoopDecision* b) {
                return a->parent_id < b->parent_id;
              });
    // (parent ids always precede children after interprocedural linking in
    // the benchmarks' DAG-shaped call structure; iterate to a fixed point
    // to be safe.)
    for (int round = 0; round < 4; ++round) {
      for (LoopDecision* l : order) select_one(*l);
    }
  }

  void select_one(LoopDecision& l) {
    std::string best;
    Affinity best_aff = -1.0;
    for (const auto& [key, aff] : l.matrix.entries()) {
      if (key.first != key.second) continue;  // induction = diagonal
      if (aff > best_aff) {
        best = key.first;
        best_aff = aff;
      }
    }
    if (best.empty()) {
      // No induction variable: migrate the parent's selection (§4.3).
      const LoopDecision* parent = nullptr;
      for (const auto& p : loops_) {
        if (p.loop_id == l.parent_id) parent = &p;
      }
      if (parent != nullptr && !parent->selected.empty()) {
        l.selected = parent->selected;
        l.selected_affinity = parent->selected_affinity;
        l.selected_mech = Mechanism::kMigrate;
        l.inherited = true;
      }
      return;
    }
    l.selected = best;
    l.selected_affinity = best_aff;
    l.inherited = false;
    const bool migrate =
        best_aff >= prog_.threshold - 1e-12 || l.parallelizable;
    l.selected_mech = migrate ? Mechanism::kMigrate : Mechanism::kCache;
  }

  // --- pass 2: bottleneck analysis ---------------------------------------

  void pass2_bottlenecks() {
    // Case A: a procedure with a migrate-selected recursion loop, called
    // from inside a parallel loop whose iterations pass the same actual.
    for (const CallContext& c : calls_) {
      const LoopDecision* encl = find_loop(c.enclosing_loop);
      if (encl == nullptr || !encl->parallelizable) continue;
      const Procedure* callee = prog_.find_proc(c.callee);
      if (callee == nullptr) continue;
      LoopDecision* rec = find_loop(callee->rec_loop_id);
      if (rec == nullptr || rec->selected_mech != Mechanism::kMigrate) {
        continue;
      }
      // Which actual feeds the selected induction parameter?
      std::string base;
      for (std::size_t i = 0; i < callee->params.size(); ++i) {
        if (callee->params[i] == rec->selected && i < c.arg_bases.size()) {
          base = c.arg_bases[i];
        }
      }
      if (base.empty() || !encl->matrix.updates_target(base)) {
        rec->selected_mech = Mechanism::kCache;
        rec->bottleneck_forced = true;
      }
    }
    // Case B: a while loop directly inside a parallel loop.
    for (const LoopEntrySnapshot& s : snapshots_) {
      const LoopDecision* encl = find_loop(s.enclosing_loop);
      if (encl == nullptr || !encl->parallelizable) continue;
      LoopDecision* inner = find_loop(s.loop_id);
      if (inner == nullptr || inner->selected_mech != Mechanism::kMigrate ||
          inner->selected.empty()) {
        continue;
      }
      auto it = s.origin_at_entry.find(inner->selected);
      const std::string base = it == s.origin_at_entry.end() ? "" : it->second;
      if (base.empty() || !encl->matrix.updates_target(base)) {
        inner->selected_mech = Mechanism::kCache;
        inner->bottleneck_forced = true;
      }
    }
  }

  // --- output ---------------------------------------------------------------

  Selection build_selection() {
    Selection sel;
    sel.program_name = prog_.name;
    sel.loops = loops_;
    sel.site_table.assign(std::max(num_sites_, sites_.size()),
                          Mechanism::kCache);
    for (std::size_t i = 0; i < sites_.size(); ++i) {
      const SiteInfo& si = sites_[i];
      if (si.loop_id >= 0) {
        const LoopDecision* l = sel.loop(si.loop_id);
        if (l != nullptr && l->selected == si.var &&
            l->selected_mech == Mechanism::kMigrate) {
          sel.site_table[i] = Mechanism::kMigrate;
        }
        continue;
      }
      // A site outside every intraprocedural loop: the enclosing control
      // loop may span the call (the paper's loops are interprocedural even
      // though its prototype analysis is not). If the owning procedure is
      // invoked from a loop whose *selected* variable feeds the parameter
      // this site dereferences, the dereference inherits that migration —
      // e.g. the first deref of a future body's parameter, which is what
      // moves the body to its data.
      if (si.proc.empty() || si.var.empty()) continue;
      const Procedure* q = prog_.find_proc(si.proc);
      if (q == nullptr) continue;
      for (const CallContext& c : calls_) {
        if (c.callee != si.proc || c.enclosing_loop < 0) continue;
        const LoopDecision* l = sel.loop(c.enclosing_loop);
        if (l == nullptr || l->selected_mech != Mechanism::kMigrate) continue;
        for (std::size_t a = 0;
             a < q->params.size() && a < c.arg_bases.size(); ++a) {
          if (q->params[a] == si.var && c.arg_bases[a] == l->selected) {
            sel.site_table[i] = Mechanism::kMigrate;
          }
        }
      }
    }
    return sel;
  }

  const Program& prog_;
  std::size_t num_sites_;
  std::vector<LoopDecision> loops_;
  std::vector<CallContext> calls_;
  std::vector<LoopEntrySnapshot> snapshots_;
  std::vector<SiteInfo> sites_;
};

}  // namespace

Selection analyze(const Program& program, std::size_t num_sites) {
  return Analyzer(program, num_sites).run();
}

std::string Selection::report() const {
  std::ostringstream os;
  for (const LoopDecision& l : loops) {
    os << "loop " << l.loop_id << " (" << l.proc
       << (l.is_recursion ? ", recursion" : "")
       << (l.parallelizable ? ", parallel" : "") << ")\n";
    for (const auto& [key, aff] : l.matrix.entries()) {
      os << "  update (" << key.first << " <- " << key.second
         << ") affinity " << aff << "\n";
    }
    if (!l.selected.empty()) {
      os << "  selected " << l.selected << " @ " << l.selected_affinity
         << " -> " << to_string(l.selected_mech)
         << (l.inherited ? " (inherited)" : "")
         << (l.bottleneck_forced ? " (bottleneck)" : "") << "\n";
    } else {
      os << "  no induction variable\n";
    }
  }
  os << "sites:";
  for (std::size_t i = 0; i < site_table.size(); ++i) {
    os << " ";
    if (!program_name.empty()) os << program_name << "#";
    os << i << "=" << to_string(site_table[i]);
  }
  os << "\n";
  return os.str();
}

}  // namespace olden::ir
