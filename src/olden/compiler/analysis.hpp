// Update matrices and the two-pass mechanism-selection heuristic (§4.2-4.3).
//
// Step 1 (dataflow): for every control loop — iterative While or recursive
// procedure — compute its update matrix. Entry (s, t) holds the
// path-affinity of the update if `s` at the end of an iteration equals `t`
// from the beginning of the iteration dereferenced through some field path.
// Merge rules, exactly as in the paper:
//   * straight-line composition multiplies affinities along the path;
//   * an if-then-else join averages the two branches' updates, and omits
//     the update entirely if it does not appear in both branches;
//   * multiple recursive call sites combine as 1 - prod(1 - a_i) ("the
//     probability that at least one will be local"), and are not subject
//     to the join rule because the calls occur before the branch ends;
//   * variables assigned inside a nested loop have no expressible update
//     in the enclosing loop (bottom).
//
// Step 2 (pass 1): per loop, select the induction variable (diagonal
// entry) with the strongest update affinity. Migrate it if the affinity
// reaches the threshold or the loop is parallelizable; otherwise cache it.
// Every other variable's dereferences are cached. A loop with no induction
// variable inherits its parent's selection.
//
// Step 3 (pass 2): bottleneck analysis. Inside a parallel loop, if an
// inner loop's induction variable is not updated by the parent loop, its
// initial value repeats across parent iterations and migration would
// serialize every thread on one processor — force caching for it.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "olden/compiler/ir.hpp"
#include "olden/support/types.hpp"

namespace olden::ir {

/// One control loop's update matrix: (target, source) -> affinity.
class UpdateMatrix {
 public:
  void set(const std::string& target, const std::string& source, Affinity a) {
    entries_[{target, source}] = a;
  }
  [[nodiscard]] std::optional<Affinity> get(const std::string& target,
                                            const std::string& source) const {
    auto it = entries_.find({target, source});
    if (it == entries_.end()) return std::nullopt;
    return it->second;
  }
  [[nodiscard]] std::optional<Affinity> diagonal(const std::string& v) const {
    return get(v, v);
  }
  /// True if `v` is the target of any update in this loop.
  [[nodiscard]] bool updates_target(const std::string& v) const {
    for (const auto& [key, a] : entries_) {
      (void)a;
      if (key.first == v) return true;
    }
    return false;
  }
  [[nodiscard]] const auto& entries() const { return entries_; }

 private:
  std::map<std::pair<std::string, std::string>, Affinity> entries_;
};

/// Result of analyzing one control loop.
struct LoopDecision {
  int loop_id = -1;
  int parent_id = -1;  ///< smallest enclosing control loop, or -1
  std::string proc;    ///< owning procedure
  bool is_recursion = false;
  bool parallelizable = false;  ///< contains futurecalls (§4.3)
  UpdateMatrix matrix;

  std::string selected;  ///< induction variable chosen (may be empty)
  Affinity selected_affinity = 0.0;
  Mechanism selected_mech = Mechanism::kCache;
  bool inherited = false;         ///< took the parent's selection
  bool bottleneck_forced = false; ///< pass 2 demoted migration to caching
};

struct Selection {
  /// Program::name, carried through so report() and consumers can print
  /// stable "<program>#<site>" uids.
  std::string program_name;
  std::vector<LoopDecision> loops;
  /// Mechanism per dereference site, ready for
  /// Machine::set_site_mechanisms. Sites the program never mentions
  /// default to caching.
  std::vector<Mechanism> site_table;

  [[nodiscard]] const LoopDecision* loop(int id) const {
    for (const auto& l : loops) {
      if (l.loop_id == id) return &l;
    }
    return nullptr;
  }
  [[nodiscard]] Mechanism site(SiteId s) const {
    return s < site_table.size() ? site_table[s] : Mechanism::kCache;
  }

  /// Human-readable dump (used by bench/fig34_heuristic and debugging).
  [[nodiscard]] std::string report() const;
};

/// Run the full analysis. `num_sites` sizes the site table.
Selection analyze(const Program& program, std::size_t num_sites);

}  // namespace olden::ir
