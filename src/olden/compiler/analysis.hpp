// Update matrices and the two-pass mechanism-selection heuristic (§4.2-4.3).
//
// Step 1 (dataflow): for every control loop — iterative While or recursive
// procedure — compute its update matrix. Entry (s, t) holds the
// path-affinity of the update if `s` at the end of an iteration equals `t`
// from the beginning of the iteration dereferenced through some field path.
// Merge rules, exactly as in the paper:
//   * straight-line composition multiplies affinities along the path;
//   * an if-then-else join averages the two branches' updates, and omits
//     the update entirely if it does not appear in both branches;
//   * multiple recursive call sites combine as 1 - prod(1 - a_i) ("the
//     probability that at least one will be local"), and are not subject
//     to the join rule because the calls occur before the branch ends;
//   * variables assigned inside a nested loop have no expressible update
//     in the enclosing loop (bottom).
//
// Step 2 (pass 1): per loop, select the induction variable (diagonal
// entry) with the strongest update affinity. Migrate it if the affinity
// reaches the threshold or the loop is parallelizable; otherwise cache it.
// Every other variable's dereferences are cached. A loop with no induction
// variable inherits its parent's selection.
//
// Step 3 (pass 2): bottleneck analysis. Inside a parallel loop, if an
// inner loop's induction variable is not updated by the parent loop, its
// initial value repeats across parent iterations and migration would
// serialize every thread on one processor — force caching for it.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "olden/compiler/ir.hpp"
#include "olden/support/types.hpp"

namespace olden::ir {

/// One control loop's update matrix: (target, source) -> affinity.
class UpdateMatrix {
 public:
  void set(const std::string& target, const std::string& source, Affinity a) {
    entries_[{target, source}] = a;
  }
  [[nodiscard]] std::optional<Affinity> get(const std::string& target,
                                            const std::string& source) const {
    auto it = entries_.find({target, source});
    if (it == entries_.end()) return std::nullopt;
    return it->second;
  }
  [[nodiscard]] std::optional<Affinity> diagonal(const std::string& v) const {
    return get(v, v);
  }
  /// True if `v` is the target of any update in this loop.
  [[nodiscard]] bool updates_target(const std::string& v) const {
    for (const auto& [key, a] : entries_) {
      (void)a;
      if (key.first == v) return true;
    }
    return false;
  }
  [[nodiscard]] const auto& entries() const { return entries_; }

 private:
  std::map<std::pair<std::string, std::string>, Affinity> entries_;
};

/// Result of analyzing one control loop.
struct LoopDecision {
  int loop_id = -1;
  int parent_id = -1;  ///< smallest enclosing control loop, or -1
  std::string proc;    ///< owning procedure
  bool is_recursion = false;
  bool parallelizable = false;  ///< contains futurecalls (§4.3)
  UpdateMatrix matrix;

  std::string selected;  ///< induction variable chosen (may be empty)
  Affinity selected_affinity = 0.0;
  Mechanism selected_mech = Mechanism::kCache;
  bool inherited = false;         ///< took the parent's selection
  bool bottleneck_forced = false; ///< pass 2 demoted migration to caching
};

struct Selection {
  /// Program::name, carried through so report() and consumers can print
  /// stable "<program>#<site>" uids.
  std::string program_name;
  std::vector<LoopDecision> loops;
  /// Mechanism per dereference site, ready for
  /// Machine::set_site_mechanisms. Sites the program never mentions
  /// default to caching.
  std::vector<Mechanism> site_table;

  [[nodiscard]] const LoopDecision* loop(int id) const {
    for (const auto& l : loops) {
      if (l.loop_id == id) return &l;
    }
    return nullptr;
  }
  [[nodiscard]] Mechanism site(SiteId s) const {
    return s < site_table.size() ? site_table[s] : Mechanism::kCache;
  }

  /// Human-readable dump (used by bench/fig34_heuristic and debugging).
  [[nodiscard]] std::string report() const;
};

/// A mutable runtime view over a static Selection.
///
/// The adaptive scheme (--scheme=adaptive) flips sites between caching and
/// migration mid-run, so "what mechanism does site s use?" stops having a
/// single compile-time answer. This view keeps the static plan intact and
/// layers the runtime's flips on top: seed it from a Selection, then replay
/// Machine::scheme_flip_log() through flip() to reconstruct the state the
/// run ended in. Kept free of runtime headers on purpose — the compiler
/// layer never includes the machine; callers hand the flip log across.
class RuntimeSelection {
 public:
  /// One replayed mid-run transition (mirrors Machine::FlipRecord minus
  /// the drain accounting, which is a runtime concern).
  struct Flip {
    Cycles time = 0;
    SiteId site = 0;
    Mechanism to = Mechanism::kCache;
  };

  explicit RuntimeSelection(const Selection& base)
      : base_(&base), table_(base.site_table) {}

  /// The mechanism currently in force for `s` (after any replayed flips).
  [[nodiscard]] Mechanism current(SiteId s) const {
    return s < table_.size() ? table_[s] : Mechanism::kCache;
  }
  /// The compile-time decision for `s`, untouched by flips.
  [[nodiscard]] Mechanism initial(SiteId s) const { return base_->site(s); }

  /// Record one mid-run flip, growing the table if the runtime touched a
  /// site the static plan never mentioned.
  void flip(SiteId site, Mechanism to, Cycles time) {
    if (site >= table_.size()) table_.resize(site + 1, Mechanism::kCache);
    table_[site] = to;
    flips_.push_back(Flip{.time = time, .site = site, .to = to});
  }

  /// Every replayed flip, in replay order.
  [[nodiscard]] const std::vector<Flip>& flips() const { return flips_; }

  /// Sites whose current mechanism differs from the compile-time plan.
  /// Empty when no flips happened (or they all flipped back).
  [[nodiscard]] std::vector<SiteId> diverged() const {
    std::vector<SiteId> out;
    for (SiteId s = 0; s < table_.size(); ++s) {
      if (table_[s] != base_->site(s)) out.push_back(s);
    }
    return out;
  }

 private:
  const Selection* base_;
  std::vector<Mechanism> table_;
  std::vector<Flip> flips_;
};

/// Run the full analysis. `num_sites` sizes the site table.
Selection analyze(const Program& program, std::size_t num_sites);

}  // namespace olden::ir
