// The mini-IR the mechanism-selection heuristic operates on (§4).
//
// The real Olden compiler is an lcc adaptation; its analysis, however, is
// defined entirely on the structure this IR captures: structure types with
// path-affinity hints on pointer fields, procedures, control loops
// (iterative loops and recursive procedures), how pointer variables are
// updated each iteration, which calls are futurecalls, and where the
// pointer-dereference sites are. Each benchmark carries an IR description
// of its annotated-C source; the Analyzer (analysis.hpp) reproduces the
// paper's three-step selection process on it, and the resulting decision
// table drives the runtime.
#pragma once

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "olden/support/types.hpp"

namespace olden::ir {

/// Probability (0..1) that a path along a pointer field stays on the same
/// processor (§4.1). The programmer may hint it; omitted fields use the
/// program default.
using Affinity = double;

inline constexpr Affinity kDefaultAffinity = 0.70;
/// Updates at or above this affinity choose computation migration (§4.3).
inline constexpr Affinity kMigrateThreshold = 0.90;

struct FieldRef {
  std::string strct;
  std::string field;
};

struct FieldDecl {
  std::string name;
  std::optional<Affinity> affinity;  ///< programmer hint, if any
};

struct StructDecl {
  std::string name;
  std::vector<FieldDecl> fields;
};

// --- statements ------------------------------------------------------------

struct Assign;
struct Deref;
struct Call;
struct If;
struct While;

using Stmt = std::variant<Assign, Deref, Call, If, While>;
using StmtList = std::vector<Stmt>;

/// target = source->f1->...->fn   (empty path: a plain pointer copy)
struct Assign {
  std::string target;
  std::string source;
  std::vector<FieldRef> path;
  std::optional<SiteId> site;  ///< dereference site when path is nonempty
};

/// A value-producing dereference: ... = var->field (or *var). These are
/// the program points the heuristic labels migrate-vs-cache.
struct Deref {
  std::string var;
  SiteId site;
};

/// A procedure call. A self-call makes the enclosing procedure a control
/// loop; `future` marks the futurecall annotation.
struct Call {
  struct Arg {
    std::string var;            ///< base variable of the actual
    std::vector<FieldRef> path; ///< e.g. t->list passes {t, [list]}
  };
  std::string callee;
  std::vector<Arg> args;
  bool future = false;
};

struct If {
  StmtList then_branch;
  StmtList else_branch;
};

/// An iterative control loop. `loop_id` must be unique program-wide.
struct While {
  int loop_id = -1;
  StmtList body;
};

// helpers so StmtList literals stay readable in benchmark descriptions
inline Stmt assign(std::string t, std::string s, std::vector<FieldRef> p = {},
                   std::optional<SiteId> site = std::nullopt) {
  return Assign{std::move(t), std::move(s), std::move(p), site};
}
inline Stmt deref(std::string v, SiteId site) {
  return Deref{std::move(v), site};
}

// --- procedures and programs --------------------------------------------

struct Procedure {
  std::string name;
  std::vector<std::string> params;  ///< pointer parameters
  StmtList body;
  /// Control-loop id for this procedure's recursion; required if the body
  /// (self-)recurses, ignored otherwise.
  int rec_loop_id = -1;
};

struct Program {
  /// Stable program identifier ("TreeAdd", ...). Joined with a site index
  /// it forms the site uid ("TreeAdd#0") that heuristic dumps, profile
  /// rows and feedback files all share, so decisions can be correlated
  /// across tools without guessing at numbering.
  std::string name;
  std::vector<StructDecl> structs;
  std::vector<Procedure> procs;
  Affinity default_affinity = kDefaultAffinity;
  Affinity threshold = kMigrateThreshold;

  [[nodiscard]] Affinity field_affinity(const FieldRef& f) const {
    for (const StructDecl& s : structs) {
      if (s.name != f.strct) continue;
      for (const FieldDecl& fd : s.fields) {
        if (fd.name == f.field) {
          return fd.affinity.value_or(default_affinity);
        }
      }
    }
    return default_affinity;
  }

  [[nodiscard]] Affinity path_affinity(
      const std::vector<FieldRef>& path) const {
    Affinity a = 1.0;
    for (const FieldRef& f : path) a *= field_affinity(f);
    return a;
  }

  [[nodiscard]] const Procedure* find_proc(const std::string& name) const {
    for (const Procedure& p : procs) {
      if (p.name == name) return &p;
    }
    return nullptr;
  }
};

}  // namespace olden::ir
