// FaultPlane: deterministic fault injection plus the reliable-delivery
// protocol that lets the Olden runtime run correctly through it.
//
// The plane sits between the runtime's message producers (migrations,
// return stubs, remote future resolutions) and the discrete-event queue.
// Every payload message gets a per-(src,dst) sequence number and an entry
// in the sender's pending table; each transmission attempt is then
// subjected to the configured drop/duplicate/delay faults. Receivers
// acknowledge every accepted or duplicate arrival and suppress replays
// through a per-channel dedup window; senders retransmit on an ack
// timeout with capped exponential backoff. Protocol overhead (acks,
// retransmit marshalling) is charged to the kRetry cycle bucket so the
// exhaustive per-processor accounting stays exhaustive.
//
// Determinism: all fault randomness comes from one olden::Rng seeded with
// RunConfig::fault_seed, drawn at simulation-deterministic points (each
// transmission attempt, each arrival); burst windows are a pure function
// of virtual send time. The same (spec, seed) therefore reproduces the
// same faults — and the same binary trace — on every run. Because the
// benchmarks' data values never depend on timing, checksums under any
// fault schedule equal the fault-free checksums (the soak test enforces
// this).
//
// Liveness: if a message exhausts its retransmit budget, or the event
// horizon keeps advancing with no thread making progress, the watchdog
// throws WatchdogError with a structured diagnostic naming the stuck
// message instead of spinning forever.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "olden/fault/fault_spec.hpp"
#include "olden/runtime/machine.hpp"
#include "olden/support/rng.hpp"
#include "olden/support/types.hpp"
#include "olden/trace/trace.hpp"

namespace olden::fault {

/// What the watchdog saw when it declared the machine stuck.
struct WatchdogDiagnostic {
  std::string reason;            ///< "retry-cap-exceeded" | "no-thread-progress"
  Cycles sim_time = 0;           ///< virtual time of the detection
  std::uint64_t msg_id = 0;      ///< the stuck message
  ProcId src = 0;                ///< its sender
  ProcId dst = 0;                ///< its destination
  std::uint64_t chan_seq = 0;    ///< its per-channel sequence number
  std::uint32_t retries = 0;     ///< retransmissions already attempted
  /// Payload kind name, e.g. "migration" or "fill_request".
  const char* payload = "";
  /// Message class of the stuck payload: "migration" | "return_stub" |
  /// "future_resolve" | "fill" | "invalidate" | "ts_check".
  const char* msg_class = "";
  std::size_t pending_messages = 0;  ///< unacked messages machine-wide
  /// Per-(src,dst) unacknowledged message counts at detection time, in
  /// deterministic (src,dst) order — which channels the storm saturates.
  struct ChannelLoad {
    ProcId src = 0;
    ProcId dst = 0;
    std::uint64_t unacked = 0;
  };
  std::vector<ChannelLoad> channels;
};

/// Thrown (never OLDEN_REQUIRE-aborted) so harnesses and tests can catch
/// non-quiescence and inspect the diagnostic.
class WatchdogError : public std::runtime_error {
 public:
  explicit WatchdogError(WatchdogDiagnostic diag);
  [[nodiscard]] const WatchdogDiagnostic& diagnostic() const { return diag_; }

 private:
  WatchdogDiagnostic diag_;
};

class FaultPlane {
 public:
  FaultPlane(const FaultSpec& spec, std::uint64_t seed);

  FaultPlane(const FaultPlane&) = delete;
  FaultPlane& operator=(const FaultPlane&) = delete;

  /// Sender side: enter `payload` (arrival time already stamped at
  /// send_time + wire) into the protocol and put the first transmission
  /// attempt on the wire.
  void send(Machine& m, ProcId src, Cycles wire, const Machine::Event& payload);

  /// Coherence request (kFillRequest / kTsCheckRequest): like send(), but
  /// ack-free — the reply is the implicit acknowledgement. The request
  /// retransmits on timeout until consume_reply() tombstones it.
  void send_request(Machine& m, ProcId src, Cycles wire,
                    const Machine::Event& payload);

  /// Coherence reply (kFillReply / kTsCheckReply): fire-and-forget on the
  /// lossy wire — no retry timer; a lost reply is regenerated when the
  /// requester's retransmitted request gets re-serviced.
  void send_reply(Machine& m, ProcId src, Cycles wire,
                  const Machine::Event& payload);

  /// Requester side, called by the reply appliers BEFORE touching the
  /// op pointer: retire request `request_id`. Returns false if it was
  /// already retired — the reply is surplus and must be discarded (its op
  /// pointer may reference a recycled CoherenceOp).
  bool consume_reply(std::uint64_t request_id);

  // Event-queue handlers, dispatched from Machine::apply().
  void on_wire_deliver(Machine& m, const Machine::Event& e);
  void on_ack_deliver(Machine& m, const Machine::Event& e);
  void on_retry_timer(Machine& m, const Machine::Event& e);

  /// Watchdog backstop driven by drain(): `applied` events have been
  /// processed since a thread last ran. Throws WatchdogError past the
  /// budget.
  void check_progress(const Machine& m, std::uint64_t applied) const;

  [[nodiscard]] std::size_t pending_messages() const {
    return pending_.size() + rr_pending_.size() + reply_pending_.size();
  }
  [[nodiscard]] const FaultSpec& spec() const { return spec_; }

  /// Events drain() may apply without any thread progressing before the
  /// no-progress watchdog trips. Generous: the retry-cap watchdog fires
  /// first on any realistic schedule; this catches protocol bugs.
  static constexpr std::uint64_t kProgressBudget = 200000;

 private:
  struct Pending {
    Machine::Event payload;        ///< original message (kind, target, h, ...)
    ProcId src = 0;
    ProcId dst = 0;
    Cycles wire = 0;               ///< fault-free transit latency
    std::uint64_t chan_seq = 0;
    std::uint32_t retries = 0;     ///< timeout-driven retransmissions so far
    Cycles backoff = 0;            ///< next timeout interval
    /// Replies only: wire copies still scheduled for delivery; the entry
    /// is erased when the count hits zero (so a fully-dropped reply does
    /// not leak into the diagnostics forever).
    std::uint32_t copies_in_flight = 0;
    // Causal attribution for trace events about this message.
    ThreadId thread_id = trace::kNoThread;
    std::uint64_t chain = trace::kNoChain;
    std::uint64_t parent = trace::kNoEvent;
  };

  /// Receiver-side dedup window for one (src,dst) channel: a contiguous
  /// high-water mark plus the out-of-order accepted set above it, so
  /// memory stays proportional to reordering depth, not message count.
  struct DedupWindow {
    std::uint64_t contig = 0;           ///< all seqs <= contig accepted
    std::set<std::uint64_t> ahead;      ///< accepted seqs > contig
    bool accept(std::uint64_t seq);     ///< false iff already accepted
  };

  static std::uint64_t chan_key(ProcId src, ProcId dst) {
    return (static_cast<std::uint64_t>(src) << 32) | dst;
  }
  static const char* payload_name(Machine::MsgKind k);
  /// Message class of a payload kind (wrapper kinds never reach this).
  static MsgClass class_of(Machine::MsgKind k);
  /// Fault trace events encode the message class in arg0's upper bits —
  /// `(class + 1) << 32 | low` — so analyzers can split retry storms by
  /// class; 0 up top means "unknown" (traces from before the encoding).
  static std::uint64_t class_arg(MsgClass cls, std::uint64_t low) {
    return ((static_cast<std::uint64_t>(cls) + 1) << 32) |
           (low & 0xffffffffu);
  }

  /// Current drop probability: base rate times the burst multiplier when
  /// `now` falls inside a burst window (pure function of virtual time).
  [[nodiscard]] double drop_probability(Cycles now) const;

  /// One transmission attempt for `p` at virtual time `now`: draw drop /
  /// delay / duplicate fates and schedule the surviving copies. Returns
  /// how many copies went on the wire (0 when everything dropped).
  /// Messages of a class outside spec_.class_mask skip every draw (and
  /// consume no randomness): a perfect wire for excluded classes.
  int transmit(Machine& m, std::uint64_t id, Pending& p, Cycles now);
  /// Draw the optional injected delay for one wire copy.
  Cycles draw_delay(Machine& m, const Pending& p, Cycles now);
  void send_ack(Machine& m, MsgClass cls, ProcId data_src, ProcId data_dst,
                std::uint64_t msg_id, std::uint64_t chan_seq, Cycles now);
  void note(Machine& m, trace::EventKind k, Cycles time, ProcId proc,
            const Pending* p, std::uint64_t a0, std::uint64_t a1);
  /// In-flight record for `id` in any of the three tables (attribution).
  [[nodiscard]] const Pending* find_in_flight(std::uint64_t id) const;
  /// One reply copy left the wire (delivered or suppressed); erase the
  /// record once none remain.
  void dec_reply_copies(std::uint64_t id);
  [[noreturn]] void throw_watchdog(std::string reason, Cycles now,
                                   std::uint64_t id, const Pending& p) const;
  /// Current per-channel unacked counts across all in-flight tables.
  [[nodiscard]] std::vector<WatchdogDiagnostic::ChannelLoad> channel_loads()
      const;

  FaultSpec spec_;
  Rng rng_;
  std::uint64_t next_msg_id_ = 0;
  /// Sender-side sequence counters and in-flight tables. std::map keeps
  /// iteration (used by watchdog diagnostics) deterministic. Message ids
  /// are unique across all three tables (one shared counter).
  std::map<std::uint64_t, std::uint64_t> chan_next_seq_;
  std::map<std::uint64_t, Pending> pending_;      ///< ack/retransmit protocol
  std::map<std::uint64_t, Pending> rr_pending_;   ///< coherence requests
  std::map<std::uint64_t, Pending> reply_pending_;  ///< coherence replies
  /// Receiver-side dedup windows, also keyed by (src,dst).
  std::map<std::uint64_t, DedupWindow> dedup_;
};

}  // namespace olden::fault
