// FaultSpec: the declarative description of a fault schedule.
//
// A spec is pure data — probabilities, windows, and protocol knobs. The
// FaultPlane (fault_plane.hpp) combines a spec with a seed to produce a
// deterministic stream of injected faults: the same (spec, seed) pair
// reproduces the same drops, duplicates, delays and hiccups byte-for-byte
// on every run (see docs/ROBUSTNESS.md for the determinism argument).
//
// Specs are written on the command line as a comma-separated key=value
// list (the `--faults=` flag every bench binary accepts):
//
//   drop=P            per-attempt drop probability, P in [0,1]
//   dup=P             per-attempt duplicate probability
//   delay=P:CYCLES    with probability P add uniform [1,CYCLES] wire latency
//   burst=PER:LEN:F   every PER cycles, the first LEN cycles multiply the
//                     drop probability by F (clamped to 1.0)
//   hiccup=P:CYCLES   per-arrival probability of stalling the receiving
//                     processor for CYCLES extra cycles
//   timeout=CYCLES    ack timeout before the first retransmit
//   retries=N         retransmit cap; exceeding it trips the watchdog
//   classes=A:B:...   restrict injection to the named message classes
//                     (migration, return_stub, future_resolve, fill,
//                     invalidate, ts_check); default is every class
//
// e.g. --faults=drop=0.1,dup=0.05,delay=0.2:300,burst=20000:2000:4
//      --faults=drop=0.2,classes=fill:invalidate:ts_check
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "olden/support/stats.hpp"
#include "olden/support/types.hpp"

namespace olden::fault {

struct FaultSpec {
  /// Master switch. parse_fault_spec sets it for any non-empty spec; a
  /// null/disabled spec leaves the wire perfectly reliable and the
  /// machine cycle-for-cycle identical to a build without the fault plane.
  bool enabled = false;

  // --- injector ----------------------------------------------------------
  double drop = 0.0;        ///< per-transmission-attempt drop probability
  double dup = 0.0;         ///< per-data-attempt duplicate probability
  double delay = 0.0;       ///< per-attempt extra-latency probability
  Cycles delay_cycles = 0;  ///< max extra wire cycles (uniform in [1, max])

  /// Burst windows: purely a function of virtual send time (no RNG), so
  /// bursts line up identically across reruns. burst_period == 0 disables.
  Cycles burst_period = 0;
  Cycles burst_len = 0;
  double burst_factor = 1.0;  ///< drop multiplier inside a burst window

  double hiccup = 0.0;       ///< per-arrival receiver-stall probability
  Cycles hiccup_cycles = 0;  ///< stall length per hiccup

  // --- reliable-delivery protocol ----------------------------------------
  /// Cycles a sender waits for an ack before the first retransmit. Doubles
  /// per retry (capped at 32x). The default clears the slowest round trip
  /// in the cost model (migration_wire + recv + return path) with margin.
  Cycles ack_timeout = 8000;
  /// Retransmit attempts per message before the watchdog declares the
  /// machine stuck.
  std::uint32_t max_retries = 24;

  // --- class selection -----------------------------------------------------
  /// Bitmask over MsgClass: the injector only draws faults for messages
  /// whose class bit is set (excluded classes still ride the wire, they
  /// just never lose). Default: every class. Purely a function of the
  /// spec, so determinism per (spec, seed) is unaffected.
  static constexpr std::uint32_t kAllClasses = (1u << kNumMsgClasses) - 1;
  std::uint32_t class_mask = kAllClasses;

  [[nodiscard]] bool class_enabled(MsgClass c) const {
    return ((class_mask >> static_cast<unsigned>(c)) & 1u) != 0;
  }
};

/// Parse the `--faults=` grammar above into `out`. Returns true on
/// success; on failure returns false and describes the problem in `err`
/// (one line, no trailing newline). "none", "off" and the empty string
/// parse to a disabled spec.
bool parse_fault_spec(std::string_view text, FaultSpec* out, std::string* err);

/// Render a spec back into canonical `--faults=` syntax (for diagnostics).
std::string to_string(const FaultSpec& spec);

}  // namespace olden::fault
