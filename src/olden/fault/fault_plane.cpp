#include "olden/fault/fault_plane.hpp"

#include <algorithm>

namespace olden::fault {

using trace::CycleBucket;
using trace::EventKind;

namespace {

std::string describe(const WatchdogDiagnostic& d) {
  std::string s = "watchdog: " + d.reason + " at t=" +
                  std::to_string(d.sim_time) + ": " + d.payload + " msg #" +
                  std::to_string(d.msg_id) + " proc " +
                  std::to_string(d.src) + " -> " + std::to_string(d.dst) +
                  " (channel seq " + std::to_string(d.chan_seq) + ", " +
                  std::to_string(d.retries) + " retransmissions), " +
                  std::to_string(d.pending_messages) +
                  " message(s) still unacknowledged";
  if (d.msg_class[0] != '\0') {
    s += "; class ";
    s += d.msg_class;
  }
  if (!d.channels.empty()) {
    s += "; unacked per channel:";
    for (const auto& c : d.channels) {
      s += " " + std::to_string(c.src) + "->" + std::to_string(c.dst) + ":" +
           std::to_string(c.unacked);
    }
  }
  return s;
}

}  // namespace

WatchdogError::WatchdogError(WatchdogDiagnostic diag)
    : std::runtime_error(describe(diag)), diag_(std::move(diag)) {}

FaultPlane::FaultPlane(const FaultSpec& spec, std::uint64_t seed)
    : spec_(spec), rng_(seed) {}

bool FaultPlane::DedupWindow::accept(std::uint64_t seq) {
  if (seq <= contig) return false;
  if (!ahead.insert(seq).second) return false;
  while (!ahead.empty() && *ahead.begin() == contig + 1) {
    ahead.erase(ahead.begin());
    ++contig;
  }
  return true;
}

const char* FaultPlane::payload_name(Machine::MsgKind k) {
  switch (k) {
    case Machine::MsgKind::kMigrationArrive: return "migration";
    case Machine::MsgKind::kReturnArrive: return "return_stub";
    case Machine::MsgKind::kResolveFuture: return "future_resolve";
    case Machine::MsgKind::kFillRequest: return "fill_request";
    case Machine::MsgKind::kFillReply: return "fill_reply";
    case Machine::MsgKind::kInvalidatePush: return "invalidate_push";
    case Machine::MsgKind::kTsCheckRequest: return "ts_check_request";
    case Machine::MsgKind::kTsCheckReply: return "ts_check_reply";
    default: return "?";
  }
}

MsgClass FaultPlane::class_of(Machine::MsgKind k) {
  switch (k) {
    case Machine::MsgKind::kReturnArrive: return MsgClass::kReturnStub;
    case Machine::MsgKind::kResolveFuture: return MsgClass::kFutureResolve;
    case Machine::MsgKind::kFillRequest:
    case Machine::MsgKind::kFillReply: return MsgClass::kFill;
    case Machine::MsgKind::kInvalidatePush: return MsgClass::kInvalidate;
    case Machine::MsgKind::kTsCheckRequest:
    case Machine::MsgKind::kTsCheckReply: return MsgClass::kTsCheck;
    case Machine::MsgKind::kMigrationArrive:
    default: return MsgClass::kMigration;
  }
}

double FaultPlane::drop_probability(Cycles now) const {
  double p = spec_.drop;
  if (spec_.burst_period > 0 && now % spec_.burst_period < spec_.burst_len) {
    p *= spec_.burst_factor;
  }
  return std::min(p, 1.0);
}

void FaultPlane::note(Machine& m, EventKind k, Cycles time, ProcId proc,
                      const Pending* p, std::uint64_t a0, std::uint64_t a1) {
  if (m.obs_ == nullptr) return;
  m.obs_->event(k, time, proc, p != nullptr ? p->thread_id : trace::kNoThread,
                trace::kNoSite, a0, a1,
                p != nullptr ? p->chain : trace::kNoChain,
                p != nullptr ? p->parent : trace::kNoEvent);
}

const FaultPlane::Pending* FaultPlane::find_in_flight(std::uint64_t id) const {
  if (auto it = pending_.find(id); it != pending_.end()) return &it->second;
  if (auto it = rr_pending_.find(id); it != rr_pending_.end()) {
    return &it->second;
  }
  if (auto it = reply_pending_.find(id); it != reply_pending_.end()) {
    return &it->second;
  }
  return nullptr;
}

void FaultPlane::dec_reply_copies(std::uint64_t id) {
  auto it = reply_pending_.find(id);
  if (it == reply_pending_.end()) return;
  if (it->second.copies_in_flight <= 1) {
    reply_pending_.erase(it);
  } else {
    --it->second.copies_in_flight;
  }
}

std::vector<WatchdogDiagnostic::ChannelLoad> FaultPlane::channel_loads()
    const {
  std::map<std::uint64_t, std::uint64_t> counts;
  for (const auto* table : {&pending_, &rr_pending_, &reply_pending_}) {
    for (const auto& [id, p] : *table) ++counts[chan_key(p.src, p.dst)];
  }
  std::vector<WatchdogDiagnostic::ChannelLoad> out;
  out.reserve(counts.size());
  for (const auto& [key, n] : counts) {
    out.push_back({static_cast<ProcId>(key >> 32),
                   static_cast<ProcId>(key & 0xffffffffu), n});
  }
  return out;
}

void FaultPlane::throw_watchdog(std::string reason, Cycles now,
                                std::uint64_t id, const Pending& p) const {
  WatchdogDiagnostic d;
  d.reason = std::move(reason);
  d.sim_time = now;
  d.msg_id = id;
  d.src = p.src;
  d.dst = p.dst;
  d.chan_seq = p.chan_seq;
  d.retries = p.retries;
  d.payload = payload_name(p.payload.kind);
  d.msg_class = to_string(class_of(p.payload.kind));
  d.pending_messages = pending_messages();
  d.channels = channel_loads();
  throw WatchdogError(std::move(d));
}

void FaultPlane::check_progress(const Machine& m, std::uint64_t applied) const {
  if (applied <= kProgressBudget) return;
  // Name the most-retried in-flight message — the likeliest culprit —
  // considering both retransmitting tables (ack/retransmit payloads and
  // coherence requests; replies never retry and cannot wedge on their own).
  const Pending* worst = nullptr;
  std::uint64_t worst_id = 0;
  Cycles now = 0;
  for (ProcId p = 0; p < m.nprocs(); ++p) now = std::max(now, m.proc_clock(p));
  for (const auto* table : {&pending_, &rr_pending_}) {
    for (const auto& [id, p] : *table) {
      if (worst == nullptr || p.retries > worst->retries) {
        worst = &p;
        worst_id = id;
      }
    }
  }
  if (worst != nullptr) {
    throw_watchdog("no-thread-progress", now, worst_id, *worst);
  }
  WatchdogDiagnostic d;
  d.reason = "no-thread-progress";
  d.sim_time = now;
  d.payload = "?";
  d.pending_messages = 0;
  throw WatchdogError(std::move(d));
}

void FaultPlane::send(Machine& m, ProcId src, Cycles wire,
                      const Machine::Event& payload) {
  const std::uint64_t id = ++next_msg_id_;
  Pending& p = pending_[id];
  p.payload = payload;
  p.src = src;
  p.dst = payload.target;
  p.wire = wire;
  p.chan_seq = ++chan_next_seq_[chan_key(src, payload.target)];
  p.backoff = spec_.ack_timeout;
  if (payload.thread != nullptr) {
    p.thread_id = payload.thread->id;
    p.chain = payload.thread->obs_chain;
    p.parent = payload.thread->obs_depart_event;
  } else if (payload.cell != nullptr) {
    p.parent = payload.cell->obs_resolve_event;
  }
  // A payload carrying its own send-side event (invalidation pushes) gets
  // that as the causal parent instead of the thread's departure.
  if (payload.obs_parent != trace::kNoEvent) p.parent = payload.obs_parent;
  ++m.stats_.fault_messages;
  ++m.stats_.class_sent[static_cast<std::size_t>(class_of(payload.kind))];
  const Cycles send_time = payload.time - wire;
  transmit(m, id, p, send_time);
  m.schedule(Machine::Event{.time = send_time + p.backoff,
                            .seq = m.next_seq_++,
                            .kind = Machine::MsgKind::kRetryTimer,
                            .target = src,
                            .src = src,
                            .msg_id = id});
}

void FaultPlane::send_request(Machine& m, ProcId src, Cycles wire,
                              const Machine::Event& payload) {
  const std::uint64_t id = ++next_msg_id_;
  Pending& p = rr_pending_[id];
  p.payload = payload;
  p.src = src;
  p.dst = payload.target;
  p.wire = wire;
  p.chan_seq = ++chan_next_seq_[chan_key(src, payload.target)];
  p.backoff = spec_.ack_timeout;
  if (payload.thread != nullptr) {
    p.thread_id = payload.thread->id;
    p.chain = payload.thread->obs_chain;
  }
  p.parent = payload.obs_parent;
  ++m.stats_.fault_messages;
  ++m.stats_.coherence_requests;
  ++m.stats_.class_sent[static_cast<std::size_t>(class_of(payload.kind))];
  const Cycles send_time = payload.time - wire;
  transmit(m, id, p, send_time);
  // Ack-free: the reply retires the request (consume_reply). Until then
  // the request retransmits on the same timer machinery as PR 3 payloads.
  m.schedule(Machine::Event{.time = send_time + p.backoff,
                            .seq = m.next_seq_++,
                            .kind = Machine::MsgKind::kRetryTimer,
                            .target = src,
                            .src = src,
                            .msg_id = id});
}

void FaultPlane::send_reply(Machine& m, ProcId src, Cycles wire,
                            const Machine::Event& payload) {
  const std::uint64_t id = ++next_msg_id_;
  Pending p;
  p.payload = payload;
  p.src = src;
  p.dst = payload.target;
  p.wire = wire;
  p.chan_seq = ++chan_next_seq_[chan_key(src, payload.target)];
  if (payload.thread != nullptr) {
    p.thread_id = payload.thread->id;
    p.chain = payload.thread->obs_chain;
  }
  p.parent = payload.obs_parent;
  ++m.stats_.fault_messages;
  ++m.stats_.class_sent[static_cast<std::size_t>(class_of(payload.kind))];
  // Reply marshalling is ack-sized work on the home processor.
  m.charge_to(src, m.cfg_.costs.ack_send, CycleBucket::kRetry);
  const Cycles send_time = payload.time - wire;
  const int copies = transmit(m, id, p, send_time);
  if (copies > 0) {
    // No retry timer: a lost reply is regenerated when the requester's
    // retransmitted request is re-serviced. Track only the copies still
    // on the wire so delivery can find the payload.
    p.copies_in_flight = static_cast<std::uint32_t>(copies);
    reply_pending_[id] = p;
  }
}

bool FaultPlane::consume_reply(std::uint64_t request_id) {
  return rr_pending_.erase(request_id) > 0;
}

Cycles FaultPlane::draw_delay(Machine& m, const Pending& p, Cycles now) {
  if (spec_.delay <= 0.0 || rng_.next_double() >= spec_.delay) return 0;
  const MsgClass cls = class_of(p.payload.kind);
  const Cycles extra = 1 + rng_.next_below(spec_.delay_cycles);
  ++m.stats_.fault_delays;
  ++m.stats_.class_delays[static_cast<std::size_t>(cls)];
  note(m, EventKind::kFaultDelay, now, p.src, &p, class_arg(cls, p.dst),
       extra);
  return extra;
}

int FaultPlane::transmit(Machine& m, std::uint64_t id, Pending& p,
                         Cycles now) {
  const MsgClass cls = class_of(p.payload.kind);
  if (!spec_.class_enabled(cls)) {
    // Excluded class: a perfect wire, and no randomness consumed, so the
    // fault schedule of the enabled classes is independent of this one.
    m.schedule(Machine::Event{.time = now + p.wire,
                              .seq = m.next_seq_++,
                              .kind = Machine::MsgKind::kWireDeliver,
                              .target = p.dst,
                              .src = p.src,
                              .msg_id = id,
                              .chan_seq = p.chan_seq,
                              .payload_kind = p.payload.kind});
    return 1;
  }
  int copies = 0;
  const double pd = drop_probability(now);
  if (pd > 0.0 && rng_.next_double() < pd) {
    ++m.stats_.fault_drops;
    ++m.stats_.class_drops[static_cast<std::size_t>(cls)];
    note(m, EventKind::kFaultDrop, now, p.src, &p, class_arg(cls, p.dst),
         p.chan_seq);
  } else {
    const Cycles extra = draw_delay(m, p, now);
    m.schedule(Machine::Event{.time = now + p.wire + extra,
                              .seq = m.next_seq_++,
                              .kind = Machine::MsgKind::kWireDeliver,
                              .target = p.dst,
                              .src = p.src,
                              .msg_id = id,
                              .chan_seq = p.chan_seq,
                              .payload_kind = p.payload.kind});
    ++copies;
  }
  if (spec_.dup > 0.0 && rng_.next_double() < spec_.dup) {
    ++m.stats_.fault_duplicates;
    ++m.stats_.class_dups[static_cast<std::size_t>(cls)];
    note(m, EventKind::kFaultDuplicate, now, p.src, &p, class_arg(cls, p.dst),
         p.chan_seq);
    const Cycles extra = draw_delay(m, p, now);
    m.schedule(Machine::Event{.time = now + p.wire + extra,
                              .seq = m.next_seq_++,
                              .kind = Machine::MsgKind::kWireDeliver,
                              .target = p.dst,
                              .src = p.src,
                              .msg_id = id,
                              .chan_seq = p.chan_seq,
                              .payload_kind = p.payload.kind});
    ++copies;
  }
  return copies;
}

void FaultPlane::send_ack(Machine& m, MsgClass cls, ProcId data_src,
                          ProcId data_dst, std::uint64_t msg_id,
                          std::uint64_t chan_seq, Cycles now) {
  ++m.stats_.acks_sent;
  m.charge_to(data_dst, m.cfg_.costs.ack_send, CycleBucket::kRetry);
  if (!spec_.class_enabled(cls)) {
    m.schedule(Machine::Event{.time = now + m.cfg_.costs.ack_wire,
                              .seq = m.next_seq_++,
                              .kind = Machine::MsgKind::kAckDeliver,
                              .target = data_src,
                              .src = data_dst,
                              .msg_id = msg_id,
                              .chan_seq = chan_seq});
    return;
  }
  const double pd = drop_probability(now);
  if (pd > 0.0 && rng_.next_double() < pd) {
    ++m.stats_.fault_drops;
    ++m.stats_.class_drops[static_cast<std::size_t>(cls)];
    note(m, EventKind::kFaultDrop, now, data_dst, find_in_flight(msg_id),
         class_arg(cls, data_src), chan_seq);
    return;
  }
  Cycles extra = 0;
  if (spec_.delay > 0.0 && rng_.next_double() < spec_.delay) {
    extra = 1 + rng_.next_below(spec_.delay_cycles);
    ++m.stats_.fault_delays;
    ++m.stats_.class_delays[static_cast<std::size_t>(cls)];
  }
  m.schedule(Machine::Event{.time = now + m.cfg_.costs.ack_wire + extra,
                            .seq = m.next_seq_++,
                            .kind = Machine::MsgKind::kAckDeliver,
                            .target = data_src,
                            .src = data_dst,
                            .msg_id = msg_id,
                            .chan_seq = chan_seq});
}

void FaultPlane::on_wire_deliver(Machine& m, const Machine::Event& e) {
  const Machine::MsgKind pk = e.payload_kind;
  const MsgClass cls = class_of(pk);
  const bool is_request = pk == Machine::MsgKind::kFillRequest ||
                          pk == Machine::MsgKind::kTsCheckRequest;
  const bool is_reply = pk == Machine::MsgKind::kFillReply ||
                        pk == Machine::MsgKind::kTsCheckReply;
  const Pending* attribution = find_in_flight(e.msg_id);
  // A transient receiver slowdown can hit on any arrival, duplicate or not.
  if (spec_.class_enabled(cls) && spec_.hiccup > 0.0 &&
      rng_.next_double() < spec_.hiccup) {
    ++m.stats_.hiccups_injected;
    m.stats_.hiccup_cycles += spec_.hiccup_cycles;
    m.charge_to(e.target, spec_.hiccup_cycles, CycleBucket::kIdle);
    note(m, EventKind::kHiccup, e.time, e.target, attribution,
         spec_.hiccup_cycles, 0);
  }
  DedupWindow& win = dedup_[chan_key(e.src, e.target)];
  if (!win.accept(e.chan_seq)) {
    // Replay: an injected duplicate, a retransmit racing its own ack, or a
    // retransmitted request whose reply got lost.
    ++m.stats_.duplicates_suppressed;
    note(m, EventKind::kDupSuppressed, e.time, e.target, attribution,
         class_arg(cls, e.src), e.chan_seq);
    if (is_request) {
      // Still unanswered at the requester (the reply was dropped, or is
      // still in flight): re-service it. The coherence handlers are
      // stateless at the home, so a surplus reply is harmless — the
      // requester discards it via the consume_reply tombstone.
      auto it = rr_pending_.find(e.msg_id);
      if (it != rr_pending_.end()) {
        Machine::Event payload = it->second.payload;
        payload.time = e.time;
        payload.seq = e.seq;
        payload.msg_id = e.msg_id;
        m.apply(payload);
      }
    } else if (is_reply) {
      dec_reply_copies(e.msg_id);
    } else {
      // Re-ack so the sender can stop retransmitting.
      send_ack(m, cls, e.src, e.target, e.msg_id, e.chan_seq, e.time);
    }
    return;
  }
  if (is_request) {
    // First acceptance of this channel seq: the request cannot have been
    // answered yet (every copy shares one seq, and replies only exist once
    // a copy has been serviced).
    auto it = rr_pending_.find(e.msg_id);
    OLDEN_REQUIRE(it != rr_pending_.end(),
                  "accepted a coherence request already retired");
    Machine::Event payload = it->second.payload;
    payload.time = e.time;
    payload.seq = e.seq;
    payload.msg_id = e.msg_id;  // the reply answers this id
    m.apply(payload);
    return;
  }
  if (is_reply) {
    auto it = reply_pending_.find(e.msg_id);
    OLDEN_REQUIRE(it != reply_pending_.end(),
                  "accepted a coherence reply with no sender state");
    Machine::Event payload = it->second.payload;
    payload.time = e.time;
    payload.seq = e.seq;
    dec_reply_copies(e.msg_id);
    m.apply(payload);
    return;
  }
  // First acceptance: the pending entry must still exist — it is erased
  // only once an ack arrives, and acks are only sent for arrivals.
  auto pit = pending_.find(e.msg_id);
  OLDEN_REQUIRE(pit != pending_.end(),
                "accepted a message with no sender state");
  Machine::Event payload = pit->second.payload;
  payload.time = e.time;  // the payload lands when the surviving copy does
  payload.seq = e.seq;
  send_ack(m, cls, e.src, e.target, e.msg_id, e.chan_seq, e.time);
  m.apply(payload);
}

void FaultPlane::on_ack_deliver(Machine& m, const Machine::Event& e) {
  m.charge_to(e.target, m.cfg_.costs.ack_recv, CycleBucket::kRetry);
  auto it = pending_.find(e.msg_id);
  if (it == pending_.end()) return;  // duplicate acks are no-ops
  const Pending& p = it->second;
  if (p.payload.kind == Machine::MsgKind::kInvalidatePush) {
    // The sharer's ack closes the line-invalidation push; record it so
    // invalidation storms are attributable push by push.
    note(m, EventKind::kInvalidateAck, e.time, p.src, &p, p.payload.parg0,
         p.dst);
  }
  pending_.erase(it);
}

void FaultPlane::on_retry_timer(Machine& m, const Machine::Event& e) {
  auto it = pending_.find(e.msg_id);
  if (it == pending_.end()) {
    it = rr_pending_.find(e.msg_id);
    if (it == rr_pending_.end()) return;  // acked/answered: a tombstone
  }
  Pending& p = it->second;
  const MsgClass cls = class_of(p.payload.kind);
  if (p.retries >= spec_.max_retries) {
    throw_watchdog("retry-cap-exceeded", e.time, e.msg_id, p);
  }
  ++p.retries;
  ++m.stats_.retransmissions;
  ++m.stats_.class_retries[static_cast<std::size_t>(cls)];
  m.charge_to(p.src, m.cfg_.costs.retransmit_send, CycleBucket::kRetry);
  note(m, EventKind::kRetransmit, e.time, p.src, &p, class_arg(cls, p.dst),
       p.retries);
  transmit(m, e.msg_id, p, e.time);
  p.backoff = std::min<Cycles>(p.backoff * 2, spec_.ack_timeout * 32);
  m.schedule(Machine::Event{.time = e.time + p.backoff,
                            .seq = m.next_seq_++,
                            .kind = Machine::MsgKind::kRetryTimer,
                            .target = p.src,
                            .src = p.src,
                            .msg_id = e.msg_id});
}

}  // namespace olden::fault
