#include "olden/fault/fault_plane.hpp"

#include <algorithm>

namespace olden::fault {

using trace::CycleBucket;
using trace::EventKind;

namespace {

std::string describe(const WatchdogDiagnostic& d) {
  std::string s = "watchdog: " + d.reason + " at t=" +
                  std::to_string(d.sim_time) + ": " + d.payload + " msg #" +
                  std::to_string(d.msg_id) + " proc " +
                  std::to_string(d.src) + " -> " + std::to_string(d.dst) +
                  " (channel seq " + std::to_string(d.chan_seq) + ", " +
                  std::to_string(d.retries) + " retransmissions), " +
                  std::to_string(d.pending_messages) +
                  " message(s) still unacknowledged";
  return s;
}

}  // namespace

WatchdogError::WatchdogError(WatchdogDiagnostic diag)
    : std::runtime_error(describe(diag)), diag_(std::move(diag)) {}

FaultPlane::FaultPlane(const FaultSpec& spec, std::uint64_t seed)
    : spec_(spec), rng_(seed) {}

bool FaultPlane::DedupWindow::accept(std::uint64_t seq) {
  if (seq <= contig) return false;
  if (!ahead.insert(seq).second) return false;
  while (!ahead.empty() && *ahead.begin() == contig + 1) {
    ahead.erase(ahead.begin());
    ++contig;
  }
  return true;
}

const char* FaultPlane::payload_name(Machine::MsgKind k) {
  switch (k) {
    case Machine::MsgKind::kMigrationArrive: return "migration";
    case Machine::MsgKind::kReturnArrive: return "return_stub";
    case Machine::MsgKind::kResolveFuture: return "future_resolve";
    default: return "?";
  }
}

double FaultPlane::drop_probability(Cycles now) const {
  double p = spec_.drop;
  if (spec_.burst_period > 0 && now % spec_.burst_period < spec_.burst_len) {
    p *= spec_.burst_factor;
  }
  return std::min(p, 1.0);
}

void FaultPlane::note(Machine& m, EventKind k, Cycles time, ProcId proc,
                      const Pending* p, std::uint64_t a0, std::uint64_t a1) {
  if (m.obs_ == nullptr) return;
  m.obs_->event(k, time, proc, p != nullptr ? p->thread_id : trace::kNoThread,
                trace::kNoSite, a0, a1,
                p != nullptr ? p->chain : trace::kNoChain,
                p != nullptr ? p->parent : trace::kNoEvent);
}

void FaultPlane::throw_watchdog(std::string reason, Cycles now,
                                std::uint64_t id, const Pending& p) const {
  WatchdogDiagnostic d;
  d.reason = std::move(reason);
  d.sim_time = now;
  d.msg_id = id;
  d.src = p.src;
  d.dst = p.dst;
  d.chan_seq = p.chan_seq;
  d.retries = p.retries;
  d.payload = payload_name(p.payload.kind);
  d.pending_messages = pending_.size();
  throw WatchdogError(std::move(d));
}

void FaultPlane::check_progress(const Machine& m, std::uint64_t applied) const {
  if (applied <= kProgressBudget) return;
  // Name the most-retried pending message — the likeliest culprit. The
  // pending table can legitimately be empty only if events were applied
  // that need no ack, which payload/ack/timer events all are not.
  const Pending* worst = nullptr;
  std::uint64_t worst_id = 0;
  Cycles now = 0;
  for (ProcId p = 0; p < m.nprocs(); ++p) now = std::max(now, m.proc_clock(p));
  for (const auto& [id, p] : pending_) {
    if (worst == nullptr || p.retries > worst->retries) {
      worst = &p;
      worst_id = id;
    }
  }
  if (worst != nullptr) {
    throw_watchdog("no-thread-progress", now, worst_id, *worst);
  }
  WatchdogDiagnostic d;
  d.reason = "no-thread-progress";
  d.sim_time = now;
  d.payload = "?";
  d.pending_messages = 0;
  throw WatchdogError(std::move(d));
}

void FaultPlane::send(Machine& m, ProcId src, Cycles wire,
                      const Machine::Event& payload) {
  const std::uint64_t id = ++next_msg_id_;
  Pending& p = pending_[id];
  p.payload = payload;
  p.src = src;
  p.dst = payload.target;
  p.wire = wire;
  p.chan_seq = ++chan_next_seq_[chan_key(src, payload.target)];
  p.backoff = spec_.ack_timeout;
  if (payload.thread != nullptr) {
    p.thread_id = payload.thread->id;
    p.chain = payload.thread->obs_chain;
    p.parent = payload.thread->obs_depart_event;
  } else if (payload.cell != nullptr) {
    p.parent = payload.cell->obs_resolve_event;
  }
  ++m.stats_.fault_messages;
  const Cycles send_time = payload.time - wire;
  transmit(m, id, p, send_time);
  m.schedule(Machine::Event{.time = send_time + p.backoff,
                            .seq = m.next_seq_++,
                            .kind = Machine::MsgKind::kRetryTimer,
                            .target = src,
                            .src = src,
                            .msg_id = id});
}

Cycles FaultPlane::draw_delay(Machine& m, const Pending& p, Cycles now) {
  if (spec_.delay <= 0.0 || rng_.next_double() >= spec_.delay) return 0;
  const Cycles extra = 1 + rng_.next_below(spec_.delay_cycles);
  ++m.stats_.fault_delays;
  note(m, EventKind::kFaultDelay, now, p.src, &p, p.dst, extra);
  return extra;
}

void FaultPlane::transmit(Machine& m, std::uint64_t id, Pending& p,
                          Cycles now) {
  const double pd = drop_probability(now);
  if (pd > 0.0 && rng_.next_double() < pd) {
    ++m.stats_.fault_drops;
    note(m, EventKind::kFaultDrop, now, p.src, &p, p.dst, p.chan_seq);
  } else {
    const Cycles extra = draw_delay(m, p, now);
    m.schedule(Machine::Event{.time = now + p.wire + extra,
                              .seq = m.next_seq_++,
                              .kind = Machine::MsgKind::kWireDeliver,
                              .target = p.dst,
                              .src = p.src,
                              .msg_id = id,
                              .chan_seq = p.chan_seq});
  }
  if (spec_.dup > 0.0 && rng_.next_double() < spec_.dup) {
    ++m.stats_.fault_duplicates;
    note(m, EventKind::kFaultDuplicate, now, p.src, &p, p.dst, p.chan_seq);
    const Cycles extra = draw_delay(m, p, now);
    m.schedule(Machine::Event{.time = now + p.wire + extra,
                              .seq = m.next_seq_++,
                              .kind = Machine::MsgKind::kWireDeliver,
                              .target = p.dst,
                              .src = p.src,
                              .msg_id = id,
                              .chan_seq = p.chan_seq});
  }
}

void FaultPlane::send_ack(Machine& m, ProcId data_src, ProcId data_dst,
                          std::uint64_t msg_id, std::uint64_t chan_seq,
                          Cycles now) {
  ++m.stats_.acks_sent;
  m.charge_to(data_dst, m.cfg_.costs.ack_send, CycleBucket::kRetry);
  const double pd = drop_probability(now);
  if (pd > 0.0 && rng_.next_double() < pd) {
    ++m.stats_.fault_drops;
    auto it = pending_.find(msg_id);
    note(m, EventKind::kFaultDrop, now, data_dst,
         it != pending_.end() ? &it->second : nullptr, data_src, chan_seq);
    return;
  }
  Cycles extra = 0;
  if (spec_.delay > 0.0 && rng_.next_double() < spec_.delay) {
    extra = 1 + rng_.next_below(spec_.delay_cycles);
    ++m.stats_.fault_delays;
  }
  m.schedule(Machine::Event{.time = now + m.cfg_.costs.ack_wire + extra,
                            .seq = m.next_seq_++,
                            .kind = Machine::MsgKind::kAckDeliver,
                            .target = data_src,
                            .src = data_dst,
                            .msg_id = msg_id,
                            .chan_seq = chan_seq});
}

void FaultPlane::on_wire_deliver(Machine& m, const Machine::Event& e) {
  auto pit = pending_.find(e.msg_id);
  const Pending* attribution = pit != pending_.end() ? &pit->second : nullptr;
  // A transient receiver slowdown can hit on any arrival, duplicate or not.
  if (spec_.hiccup > 0.0 && rng_.next_double() < spec_.hiccup) {
    ++m.stats_.hiccups_injected;
    m.stats_.hiccup_cycles += spec_.hiccup_cycles;
    m.charge_to(e.target, spec_.hiccup_cycles, CycleBucket::kIdle);
    note(m, EventKind::kHiccup, e.time, e.target, attribution,
         spec_.hiccup_cycles, 0);
  }
  DedupWindow& win = dedup_[chan_key(e.src, e.target)];
  if (!win.accept(e.chan_seq)) {
    // Replay (injected duplicate, or a retransmit racing its own ack):
    // suppress, but re-ack so the sender can stop retransmitting.
    ++m.stats_.duplicates_suppressed;
    note(m, EventKind::kDupSuppressed, e.time, e.target, attribution, e.src,
         e.chan_seq);
    send_ack(m, e.src, e.target, e.msg_id, e.chan_seq, e.time);
    return;
  }
  // First acceptance: the pending entry must still exist — it is erased
  // only once an ack arrives, and acks are only sent for arrivals.
  OLDEN_REQUIRE(pit != pending_.end(), "accepted a message with no sender state");
  Machine::Event payload = pit->second.payload;
  payload.time = e.time;  // the payload lands when the surviving copy does
  payload.seq = e.seq;
  send_ack(m, e.src, e.target, e.msg_id, e.chan_seq, e.time);
  m.apply(payload);
}

void FaultPlane::on_ack_deliver(Machine& m, const Machine::Event& e) {
  m.charge_to(e.target, m.cfg_.costs.ack_recv, CycleBucket::kRetry);
  pending_.erase(e.msg_id);  // duplicate acks are no-ops
}

void FaultPlane::on_retry_timer(Machine& m, const Machine::Event& e) {
  auto it = pending_.find(e.msg_id);
  if (it == pending_.end()) return;  // acked: the timer is a tombstone
  Pending& p = it->second;
  if (p.retries >= spec_.max_retries) {
    throw_watchdog("retry-cap-exceeded", e.time, e.msg_id, p);
  }
  ++p.retries;
  ++m.stats_.retransmissions;
  m.charge_to(p.src, m.cfg_.costs.retransmit_send, CycleBucket::kRetry);
  note(m, EventKind::kRetransmit, e.time, p.src, &p, p.dst, p.retries);
  transmit(m, e.msg_id, p, e.time);
  p.backoff = std::min<Cycles>(p.backoff * 2, spec_.ack_timeout * 32);
  m.schedule(Machine::Event{.time = e.time + p.backoff,
                            .seq = m.next_seq_++,
                            .kind = Machine::MsgKind::kRetryTimer,
                            .target = p.src,
                            .src = p.src,
                            .msg_id = e.msg_id});
}

}  // namespace olden::fault
