#include "olden/fault/fault_spec.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <vector>

namespace olden::fault {
namespace {

bool fail(std::string* err, std::string msg) {
  if (err != nullptr) *err = std::move(msg);
  return false;
}

/// Split `text` on `sep`, keeping empty fields (so "drop=" is detectably
/// malformed rather than silently ignored).
std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool parse_prob(std::string_view field, std::string_view key, double* out,
                std::string* err) {
  if (field.empty()) {
    return fail(err, "faults: empty probability for '" + std::string(key) + "'");
  }
  const std::string buf(field);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size() || v < 0.0 || v > 1.0) {
    return fail(err, "faults: '" + std::string(key) + "' needs a probability in [0,1], got '" +
                         buf + "'");
  }
  *out = v;
  return true;
}

bool parse_count(std::string_view field, std::string_view key,
                 std::uint64_t* out, std::string* err) {
  if (field.empty() || field.size() > 18) {
    return fail(err, "faults: '" + std::string(key) +
                         "' needs a positive integer, got '" +
                         std::string(field) + "'");
  }
  std::uint64_t v = 0;
  for (char c : field) {
    if (c < '0' || c > '9') {
      return fail(err, "faults: '" + std::string(key) +
                           "' needs a positive integer, got '" +
                           std::string(field) + "'");
    }
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

}  // namespace

bool parse_fault_spec(std::string_view text, FaultSpec* out,
                      std::string* err) {
  FaultSpec spec;
  if (text.empty() || text == "none" || text == "off") {
    *out = spec;
    return true;
  }
  spec.enabled = true;
  std::vector<std::string> seen_keys;
  for (std::string_view item : split(text, ',')) {
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return fail(err, "faults: expected key=value, got '" + std::string(item) + "'");
    }
    const std::string_view key = item.substr(0, eq);
    const std::string_view val = item.substr(eq + 1);
    // Each key may appear once: silently letting the last occurrence win
    // hides typos in long specs.
    for (const std::string& prev : seen_keys) {
      if (prev == key) {
        return fail(err, "faults: duplicate key '" + std::string(key) + "'");
      }
    }
    seen_keys.emplace_back(key);
    const std::vector<std::string_view> parts = split(val, ':');
    if (key == "drop") {
      if (parts.size() != 1) return fail(err, "faults: drop takes one field (drop=P)");
      if (!parse_prob(parts[0], key, &spec.drop, err)) return false;
    } else if (key == "dup") {
      if (parts.size() != 1) return fail(err, "faults: dup takes one field (dup=P)");
      if (!parse_prob(parts[0], key, &spec.dup, err)) return false;
    } else if (key == "delay") {
      if (parts.size() != 2) {
        return fail(err, "faults: delay takes two fields (delay=P:CYCLES)");
      }
      if (!parse_prob(parts[0], key, &spec.delay, err)) return false;
      if (!parse_count(parts[1], "delay cycles", &spec.delay_cycles, err)) {
        return false;
      }
      if (spec.delay > 0.0 && spec.delay_cycles == 0) {
        return fail(err, "faults: delay cycles must be >= 1");
      }
    } else if (key == "burst") {
      if (parts.size() != 3) {
        return fail(err, "faults: burst takes three fields (burst=PERIOD:LEN:FACTOR)");
      }
      if (!parse_count(parts[0], "burst period", &spec.burst_period, err) ||
          !parse_count(parts[1], "burst len", &spec.burst_len, err)) {
        return false;
      }
      const std::string fbuf(parts[2]);
      errno = 0;
      char* end = nullptr;
      const double f = std::strtod(fbuf.c_str(), &end);
      if (errno != 0 || end != fbuf.c_str() + fbuf.size() || f < 0.0 ||
          !std::isfinite(f)) {
        return fail(err, "faults: burst factor must be a finite number >= 0, got '" + fbuf + "'");
      }
      spec.burst_factor = f;
      if (spec.burst_period == 0 || spec.burst_len == 0 ||
          spec.burst_len > spec.burst_period) {
        return fail(err, "faults: burst needs 0 < LEN <= PERIOD");
      }
    } else if (key == "hiccup") {
      if (parts.size() != 2) {
        return fail(err, "faults: hiccup takes two fields (hiccup=P:CYCLES)");
      }
      if (!parse_prob(parts[0], key, &spec.hiccup, err)) return false;
      if (!parse_count(parts[1], "hiccup cycles", &spec.hiccup_cycles, err)) {
        return false;
      }
      if (spec.hiccup > 0.0 && spec.hiccup_cycles == 0) {
        return fail(err, "faults: hiccup cycles must be >= 1");
      }
    } else if (key == "timeout") {
      if (parts.size() != 1 ||
          !parse_count(parts[0], key, &spec.ack_timeout, err)) {
        return parts.size() == 1
                   ? false
                   : fail(err, "faults: timeout takes one field (timeout=CYCLES)");
      }
      if (spec.ack_timeout == 0) {
        return fail(err, "faults: timeout must be >= 1 cycle");
      }
    } else if (key == "retries") {
      std::uint64_t n = 0;
      if (parts.size() != 1 || !parse_count(parts[0], key, &n, err)) {
        return parts.size() == 1
                   ? false
                   : fail(err, "faults: retries takes one field (retries=N)");
      }
      if (n == 0 || n > 1000) {
        return fail(err, "faults: retries must be in [1, 1000]");
      }
      spec.max_retries = static_cast<std::uint32_t>(n);
    } else if (key == "classes") {
      std::uint32_t mask = 0;
      for (std::string_view name : parts) {
        bool known = false;
        for (std::size_t c = 0; c < kNumMsgClasses; ++c) {
          if (name == to_string(static_cast<MsgClass>(c))) {
            const std::uint32_t bit = 1u << c;
            if ((mask & bit) != 0) {
              return fail(err, "faults: duplicate class '" + std::string(name) +
                                   "'");
            }
            mask |= bit;
            known = true;
            break;
          }
        }
        if (!known) {
          return fail(err,
                      "faults: unknown class '" + std::string(name) +
                          "' (known: migration return_stub future_resolve "
                          "fill invalidate ts_check)");
        }
      }
      if (mask == 0) {
        return fail(err, "faults: classes needs at least one class name");
      }
      spec.class_mask = mask;
    } else {
      return fail(err,
                  "faults: unknown key '" + std::string(key) +
                      "' (known: drop dup delay burst hiccup timeout retries "
                      "classes)");
    }
  }
  *out = spec;
  return true;
}

std::string to_string(const FaultSpec& spec) {
  if (!spec.enabled) return "none";
  std::string s;
  auto add = [&s](const std::string& piece) {
    if (!s.empty()) s += ',';
    s += piece;
  };
  if (spec.drop > 0.0) add("drop=" + std::to_string(spec.drop));
  if (spec.dup > 0.0) add("dup=" + std::to_string(spec.dup));
  if (spec.delay > 0.0) {
    add("delay=" + std::to_string(spec.delay) + ":" +
        std::to_string(spec.delay_cycles));
  }
  if (spec.burst_period > 0) {
    add("burst=" + std::to_string(spec.burst_period) + ":" +
        std::to_string(spec.burst_len) + ":" +
        std::to_string(spec.burst_factor));
  }
  if (spec.hiccup > 0.0) {
    add("hiccup=" + std::to_string(spec.hiccup) + ":" +
        std::to_string(spec.hiccup_cycles));
  }
  if (spec.class_mask != FaultSpec::kAllClasses) {
    std::string classes;
    for (std::size_t c = 0; c < kNumMsgClasses; ++c) {
      if (((spec.class_mask >> c) & 1u) == 0) continue;
      if (!classes.empty()) classes += ':';
      classes += to_string(static_cast<MsgClass>(c));
    }
    add("classes=" + classes);
  }
  add("timeout=" + std::to_string(spec.ack_timeout));
  add("retries=" + std::to_string(spec.max_retries));
  return s;
}

}  // namespace olden::fault
