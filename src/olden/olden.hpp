// Umbrella header: the whole Olden public API.
//
// Quickstart:
//
//   #include "olden/olden.hpp"
//   using namespace olden;
//
//   struct Node { std::int64_t val; GPtr<Node> next; };
//   enum Site : SiteId { kNext, kVal, kNumSites };
//
//   Task<std::int64_t> sum(Machine& m, GPtr<Node> l) {
//     std::int64_t acc = 0;
//     while (l) {
//       acc += co_await rd(l, &Node::val, kVal);
//       l = co_await rd(l, &Node::next, kNext);
//       m.work(8);
//     }
//     co_return acc;
//   }
//
//   Machine m({.nprocs = 8});
//   m.set_site_mechanisms({Mechanism::kCache, Mechanism::kCache});
//   // ... build the list with m.alloc<Node>(proc) inside a root Task ...
//   auto total = run_program(m, root(m));
//
// See examples/ for complete programs and src/olden/compiler for the
// heuristic that fills the mechanism table automatically.
#pragma once

#include "olden/cache/coherence.hpp"
#include "olden/cache/software_cache.hpp"
#include "olden/mem/global_addr.hpp"
#include "olden/mem/heap.hpp"
#include "olden/runtime/api.hpp"
#include "olden/runtime/machine.hpp"
#include "olden/runtime/task.hpp"
#include "olden/support/cost_model.hpp"
#include "olden/support/rng.hpp"
#include "olden/support/stats.hpp"
#include "olden/support/types.hpp"
