// Machine: the simulated distributed-memory SPMD machine plus the Olden
// runtime system, in one deterministic discrete-event simulator.
//
// This stands in for the Thinking Machines CM-5 of the paper (see
// DESIGN.md §2 for the substitution argument). Each virtual processor has
// a cycle clock, a software cache, a ready queue of runnable threads and a
// work list of stealable future continuations. Communication — thread
// migrations, cache-line fetches, write-throughs, invalidations, future
// resolutions — is modelled as timestamped events with CM-5-calibrated
// costs from CostModel.
//
// Execution model: Olden threads are chains of C++20 coroutine frames.
// The host runs one coroutine at a time; resuming a thread executes it
// synchronously until it suspends (migration, blocked touch, procedure
// return-stub, or completion), advancing its processor's virtual clock as
// it goes. Processors are non-preemptive, as on the CM-5. Determinism:
// events are ordered by (time, sequence number), and all workload
// randomness comes from seeded olden::Rng.
#pragma once

#include <algorithm>
#include <coroutine>
#include <cstring>
#include <deque>
#include <memory>
#include <type_traits>
#include <vector>

#include "olden/cache/coherence.hpp"
#include "olden/cache/software_cache.hpp"
#include "olden/mem/global_addr.hpp"
#include "olden/mem/heap.hpp"
#include "olden/runtime/future_cell.hpp"
#include "olden/runtime/thread.hpp"
#include "olden/support/cost_model.hpp"
#include "olden/support/min_heap.hpp"
#include "olden/support/require.hpp"
#include "olden/support/stats.hpp"
#include "olden/support/types.hpp"
#include "olden/trace/observer.hpp"

// Symmetric transfer relies on the guaranteed tail call from
// await_suspend; sanitizer instrumentation defeats that call, so every
// transfer would leave a host frame behind and unbounded call/return
// chains would overflow the host stack. Sanitized builds route those
// resumptions through the front of the ready queue instead (the original
// trampoline scheduling — identical virtual behavior, flat host stack).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define OLDEN_SYMMETRIC_TRANSFER 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define OLDEN_SYMMETRIC_TRANSFER 0
#else
#define OLDEN_SYMMETRIC_TRANSFER 1
#endif
#else
#define OLDEN_SYMMETRIC_TRANSFER 1
#endif

namespace olden {

namespace fault {
struct FaultSpec;
class FaultPlane;
}  // namespace fault

/// The adaptive scheme's knobs (--scheme=adaptive). The run starts from
/// the static (or profile-seeded) per-site decision table; every
/// `interval` virtual cycles a decision tick re-grades each site's
/// windowed access mix against the paper's bars (0.90 local-affinity,
/// 0.50 hit-rate floor — the same rule the offline scoreboard applies)
/// and, after `hysteresis` consecutive windows voting the same way, flips
/// the site between caching and migration mid-run. interval == 0 never
/// schedules a tick: the run is byte-identical to its seed scheme.
struct AdaptiveConfig {
  Cycles interval = 0;             ///< tick period in virtual cycles; 0 = off
  std::uint32_t hysteresis = 2;    ///< consecutive voting windows per flip
  std::uint64_t min_samples = 16;  ///< window accesses below this: no vote
};

/// Interval the bench CLIs use for --scheme=adaptive when --adapt-interval
/// is absent: long enough that a window sees a meaningful access mix at the
/// harness's tiny sizes, short enough that the tiny runs still get several
/// decision ticks.
inline constexpr Cycles kDefaultAdaptInterval = 8192;

struct RunConfig {
  ProcId nprocs = 1;
  Coherence scheme = Coherence::kLocalKnowledge;
  CostModel costs;
  /// Optional observability sink (tracing, metrics, cycle accounting).
  /// Instrumentation hooks are no-ops when null, and never perturb
  /// virtual time either way.
  trace::Observer* observer = nullptr;
  /// Optional fault schedule (src/olden/fault/). Null — or a spec whose
  /// `enabled` is false — leaves the wire perfectly reliable and the run
  /// cycle-for-cycle identical to a machine with no fault plane at all.
  /// The spec is copied at construction; the pointer need not outlive it.
  const fault::FaultSpec* faults = nullptr;
  /// Seed for the fault plane's private RNG stream. Workload RNG streams
  /// are separate, so the same program data is computed under any seed.
  std::uint64_t fault_seed = 1;
  /// Adaptive-scheme machinery. Requires scheme == kEagerGlobal when
  /// enabled (the flip drain walks the directory's sharer sets, which
  /// only that protocol maintains).
  AdaptiveConfig adapt;
};

class Machine {
 public:
  /// Throws ConfigError unless `1 <= cfg.nprocs <= kMaxProcs`: nprocs = 0
  /// has no processor 0 to post the root thread on, and anything past
  /// kMaxProcs overflows ProcSet's 64-bit masks and GlobalAddr's 6-bit
  /// processor field.
  explicit Machine(RunConfig cfg);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  /// The machine the currently-running coroutine belongs to. Coroutine
  /// promises and awaiters reach the runtime through this, the same way an
  /// executor is ambient in most coroutine runtimes.
  ///
  /// Sanitized builds route the thread_local read through a noinline
  /// out-of-line accessor: when the inline TLS load lands inside an
  /// optimized coroutine body, GCC's ASan instrumentation can cache the
  /// address computation across suspension points in the coroutine frame,
  /// and the resumed frame then loads through a junk address (observed as
  /// a UBSan null-load in any -O2 sanitized build). A regular function
  /// re-derives the TLS address on every call, which sidesteps the hazard;
  /// unsanitized builds keep the zero-cost inline read.
  static Machine& current() {
#if OLDEN_SYMMETRIC_TRANSFER
    OLDEN_REQUIRE(current_ != nullptr, "no Machine is live");
    return *current_;
#else
    return current_outofline();
#endif
  }
#if !OLDEN_SYMMETRIC_TRANSFER
  static Machine& current_outofline();
#endif

  // --- program construction --------------------------------------------

  /// Install the mechanism decision table produced by the heuristic
  /// (indexed by SiteId). Sites not covered default to kCache. Under the
  /// adaptive scheme this is only the *initial* table: decision ticks
  /// mutate it at run time (see scheme_flip_log()).
  void set_site_mechanisms(std::vector<Mechanism> table) {
    site_mech_ = std::move(table);
    if (adapt_on_ && adapt_sites_.size() < site_mech_.size()) {
      adapt_sites_.resize(site_mech_.size());
    }
  }
  [[nodiscard]] Mechanism mechanism(SiteId s) const {
    return s < site_mech_.size() ? site_mech_[s] : Mechanism::kCache;
  }

  /// One runtime mechanism flip the adaptive scheme performed, in the
  /// order it happened. `pages_drained` is nonzero only for flips to
  /// migration (the drain that invalidated the site's cached lines).
  struct FlipRecord {
    Cycles time = 0;
    SiteId site = trace::kNoSite;
    Mechanism to = Mechanism::kCache;
    std::uint64_t pages_drained = 0;
  };
  /// Every flip this run performed (empty unless --scheme=adaptive with a
  /// nonzero interval). Together with the initial table this is the
  /// machine's side of the compiler's mutable runtime view
  /// (ir::RuntimeSelection replays it over a static Selection).
  [[nodiscard]] const std::vector<FlipRecord>& scheme_flip_log() const {
    return adapt_flips_;
  }

  /// ALLOC: allocate one T on processor `home` (§2). T must be a
  /// trivially-copyable aggregate — the restricted-C object model.
  template <class T>
  GPtr<T> alloc(ProcId home) {
    return alloc_array<T>(home, 1);
  }

  template <class T>
  GPtr<T> alloc_array(ProcId home, std::uint32_t n) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "heap structures must be trivially copyable");
    static_assert(alignof(T) <= kLineBytes);
    const GlobalAddr a = alloc_raw(
        home, n * static_cast<std::uint32_t>(sizeof(T)), alignof(T));
    return GPtr<T>(a);
  }

  GlobalAddr alloc_raw(ProcId home, std::uint32_t size, std::uint32_t align);

  // --- in-thread services (called from coroutines via awaiters) ---------

  /// Charge `c` cycles of computation to the current processor.
  void work(Cycles c) {
    charge_to(cur_proc(), c, trace::CycleBucket::kCompute);
  }

  [[nodiscard]] ProcId cur_proc() const {
    OLDEN_REQUIRE(cur_thread_ != nullptr, "no thread is running");
    return cur_thread_->proc;
  }
  [[nodiscard]] ThreadState* cur_thread() const { return cur_thread_; }
  [[nodiscard]] ProcId nprocs() const { return cfg_.nprocs; }
  [[nodiscard]] const RunConfig& config() const { return cfg_; }
  [[nodiscard]] bool baseline() const { return cfg_.costs.sequential_baseline; }

  /// One heap access at a dereference site. Fills/consumes `buf` (size
  /// bytes). Returns true if the access completed (local, or satisfied via
  /// the software cache); false means the caller must suspend and the
  /// machine will migrate the thread to `a`'s owner (call
  /// `migrate_to(...)` from await_suspend, then `finish_access_local`
  /// from await_resume). Inline: this runs once per rd/wr in every
  /// simulated program, and the local fast path is a handful of branches.
  bool access(GlobalAddr a, void* buf, std::uint32_t size, bool is_write,
              SiteId site) {
    OLDEN_REQUIRE(!a.is_null(), "dereference of a null global pointer");
    if (baseline()) {
      charge(1, trace::CycleBucket::kCompute);
      home_copy(a, buf, size, is_write);
      return true;
    }
    charge(cfg_.costs.pointer_test, trace::CycleBucket::kCompute);
    const bool local = a.proc() == cur_proc();
    const Mechanism mech = mechanism(site);

    if (mech == Mechanism::kCache) {
      if (is_write) {
        ++stats_.cacheable_writes;
      } else {
        ++stats_.cacheable_reads;
      }
      if (local) {
        charge(cfg_.costs.local_access, trace::CycleBucket::kCompute);
        home_copy(a, buf, size, is_write);
        if (is_write) track_write(a, size);
        if (obs_ != nullptr) {
          obs_->profile_access(procs_[cur_proc()].clock, site, a.page_id(),
                               is_write ? profile::AccessClass::kLocalWrite
                                        : profile::AccessClass::kLocalRead);
        }
        if (adapt_on_) adapt_note_access(site, /*local=*/true);
        return true;
      }
      if (is_write) {
        ++stats_.cacheable_writes_remote;
      } else {
        ++stats_.cacheable_reads_remote;
      }
      if (adapt_on_) adapt_note_remote(site, a.page_id());
      if (!cached_access_fast(cur_proc(), a, buf, size, is_write, site)) {
        if (fault_ != nullptr &&
            coherence_needs_wire(cur_proc(), a, size, is_write)) {
          // Under a fault plane, coherence round trips (line fills,
          // bilateral timestamp checks) become explicit request/reply
          // messages on the lossy wire: the thread suspends and a
          // CoherenceOp drives the access from the event queue. The
          // awaiter sees false, asks take_coherent_suspend(), and calls
          // begin_coherent_access instead of migrate_to.
          coherent_suspend_ = true;
          return false;
        }
        cached_access(cur_proc(), a, buf, size, is_write, site);
      }
      return true;
    }

    // Migration mechanism.
    if (local) {
      if (is_write) {
        ++stats_.local_writes;
      } else {
        ++stats_.local_reads;
      }
      charge(cfg_.costs.local_access, trace::CycleBucket::kCompute);
      home_copy(a, buf, size, is_write);
      if (is_write) track_write(a, size);
      if (obs_ != nullptr) {
        obs_->profile_access(procs_[cur_proc()].clock, site, a.page_id(),
                             is_write ? profile::AccessClass::kLocalWrite
                                      : profile::AccessClass::kLocalRead);
      }
      if (adapt_on_) adapt_note_access(site, /*local=*/true);
      return true;
    }
    if (adapt_on_) adapt_note_access(site, /*local=*/false);
    return false;  // the awaiter suspends and calls migrate_to()
  }

  /// Begin a forward computation migration of the current thread to
  /// `target`; `h` resumes on arrival. `site` is the dereference site
  /// that forced the move (trace attribution only).
  void migrate_to(ProcId target, std::coroutine_handle<> h,
                  SiteId site = trace::kNoSite);

  /// Complete the access that triggered a migration (now local).
  void finish_access_local(GlobalAddr a, void* buf, std::uint32_t size,
                           bool is_write);

  /// True exactly once after access() returned false because the access
  /// must ride the coherence request/reply protocol rather than migrate.
  /// The awaiter consumes the flag to pick begin_coherent_access over
  /// migrate_to.
  [[nodiscard]] bool take_coherent_suspend() {
    const bool s = coherent_suspend_;
    coherent_suspend_ = false;
    return s;
  }

  /// Start a suspended cached access (fault plane only): allocates a
  /// CoherenceOp for the current thread and advances it until it parks on
  /// its first wire round trip. `h` resumes when the whole access is done.
  void begin_coherent_access(GlobalAddr a, void* buf, std::uint32_t size,
                             bool is_write, SiteId site,
                             std::coroutine_handle<> h);

  // --- hooks used by Task / future awaiters ------------------------------

  /// A procedure finished. Routes control onward and returns the handle
  /// the final-suspend awaiter must symmetric-transfer into: the caller
  /// continuation or an inlined future continuation resumes directly
  /// (tail-call, so unbounded call/return chains still keep a flat host
  /// stack), return stubs and remote resolutions go through the event
  /// queue, and the thread retires when nothing continues it — the latter
  /// cases return std::noop_coroutine() to unwind to the scheduler.
  [[nodiscard]] std::coroutine_handle<> on_task_final(
      std::coroutine_handle<> cont, ProcId call_proc, FutureCell* cell);

  /// The observer-side twin of the push_ready a symmetric transfer
  /// bypasses: the handle resumes directly (same processor, same thread,
  /// same clock), but the ready-queue-depth histogram still receives
  /// exactly the sample the queued round trip would have recorded.
  void note_bypassed_push(ProcId p) {
    if (obs_ != nullptr) {
      obs_->record(trace::Hist::kReadyQueueDepth, procs_[p].ready.size() + 1);
    }
  }

  /// Resume `h` next, on this processor, as this thread. Normal builds
  /// symmetric-transfer (return `h` from await_suspend — the tail call
  /// keeps the host stack flat); sanitized builds, where that tail call
  /// is defeated by instrumentation, queue it at the front of the ready
  /// queue instead (see OLDEN_SYMMETRIC_TRANSFER above). The two are
  /// virtually indistinguishable: same processor, same thread, same
  /// clock, and the same ready-queue-depth histogram sample.
  [[nodiscard]] std::coroutine_handle<> transfer_to(std::coroutine_handle<> h) {
    const ProcId p = cur_proc();
#if OLDEN_SYMMETRIC_TRANSFER
    note_bypassed_push(p);
    return h;
#else
    push_ready(p, ReadyItem{h, cur_thread_, procs_[p].clock}, /*front=*/true);
    return std::noop_coroutine();
#endif
  }

  /// futurecall bookkeeping: make a cell, park the caller continuation on
  /// the work list. The caller then symmetric-transfers into `body`.
  FutureCell* make_future_cell(std::coroutine_handle<> caller_cont,
                               std::coroutine_handle<> body);

  /// touch support.
  bool future_ready(FutureCell* cell);  ///< also charges the touch cost
  void block_on_future(FutureCell* cell, std::coroutine_handle<> h);
  /// Called when a touch consumes the value: if the body resolved on a
  /// remote processor, the consuming processor performs an acquire
  /// (coherence event) here.
  void on_touch_consume(FutureCell* cell);
  void destroy_cell(FutureCell* cell);

  /// Subprocedure-call bookkeeping (cheap; charged per call).
  void charge_call() {
    if (!baseline()) charge_to(cur_proc(), 2, trace::CycleBucket::kCompute);
  }

  // --- driving ------------------------------------------------------------

  /// Run the machine until quiescent. The root coroutine must already have
  /// been posted via `post_root` (done by run_program(), see task.hpp).
  void drain();
  void post_root(std::coroutine_handle<> h);
  void note_root_done() { root_done_ = true; }
  [[nodiscard]] bool root_done() const { return root_done_; }

  // --- results -------------------------------------------------------------

  [[nodiscard]] const MachineStats& stats() const { return stats_; }
  [[nodiscard]] Cycles makespan() const;
  [[nodiscard]] double seconds() const { return cycles_to_seconds(makespan()); }
  [[nodiscard]] Cycles proc_clock(ProcId p) const { return procs_[p].clock; }
  [[nodiscard]] const SoftwareCache& cache_of(ProcId p) const {
    return procs_[p].cache;
  }
  [[nodiscard]] std::uint64_t threads_created() const { return next_thread_id_; }
  [[nodiscard]] std::uint64_t cells_live() const { return cells_live_; }

  /// A timing checkpoint: makespan so far. Benchmarks call this between
  /// their build and kernel phases so Table 2 can report kernel-only times.
  [[nodiscard]] Cycles now_max() const { return makespan(); }

 private:
  struct ReadyItem {
    std::coroutine_handle<> h;
    ThreadState* thread = nullptr;
    Cycles time = 0;
  };

  struct Proc {
    Cycles clock = 0;
    SoftwareCache cache;
    std::deque<ReadyItem> ready;
    std::deque<WorkItem*> worklist;
  };

  /// Inter-processor message kinds on the discrete-event wire (distinct
  /// from trace::EventKind, the observability vocabulary). The first
  /// three are payload messages; the rest exist only when a fault plane
  /// is installed: the reliable-delivery machinery plus the coherence
  /// request/reply messages that then ride it (a fault-free machine
  /// services fills, push invalidations and timestamp checks
  /// synchronously and never creates these events).
  enum class MsgKind : std::uint8_t {
    kMigrationArrive,
    kReturnArrive,
    kResolveFuture,
    kWireDeliver,      ///< a (possibly faulty) transmission attempt arriving
    kAckDeliver,       ///< an acknowledgement arriving back at the sender
    kRetryTimer,       ///< sender-side ack timeout check (no-op once acked)
    kFillRequest,      ///< cache-miss line fetch request, requester -> home
    kFillReply,        ///< line-fetch reply (doubles as the request's ack)
    kInvalidatePush,   ///< eager-release line invalidation, writer -> sharer
    kTsCheckRequest,   ///< bilateral timestamp check, requester -> home
    kTsCheckReply,     ///< timestamp reply (doubles as the request's ack)
    kAdaptTick,        ///< adaptive-scheme decision tick (self-scheduled;
                       ///< never enters the fault plane)
  };

  /// One suspended cached access riding the coherence request/reply
  /// protocol (fault plane only). Mirrors `cached_access`'s chunk loop as
  /// a resumable state machine: each wire round trip (line fill,
  /// timestamp check) parks the op here, the reply's requester-side apply
  /// mutates cache/directory state and re-advances the loop. Ops pool in
  /// a deque for stable addresses; a freed op is only ever reached again
  /// through the fault plane's request table, whose tombstones keep stale
  /// replies from touching a recycled op.
  struct CoherenceOp {
    std::coroutine_handle<> h;       ///< resumes when the access completes
    ThreadState* thread = nullptr;
    GlobalAddr addr{};
    void* buf = nullptr;             ///< awaiter-owned; stable while suspended
    std::uint32_t size = 0;
    bool is_write = false;
    SiteId site = trace::kNoSite;
    std::uint32_t done = 0;          ///< bytes completed
    bool chunk_charged = false;      ///< current chunk's lookup already charged
    SoftwareCache::PageEntry* entry = nullptr;  ///< current chunk's page
    bool any_miss = false;
    bool any_check = false;
    std::uint64_t lines_fetched = 0;
    Cycles stall_cycles = 0;         ///< actual wire-wait cycles (histogram)
    Cycles wait_started = 0;         ///< clock when the pending wait began
  };

  struct Event {
    Cycles time = 0;
    std::uint64_t seq = 0;
    MsgKind kind = MsgKind::kMigrationArrive;
    ProcId target = 0;
    std::coroutine_handle<> h;
    ThreadState* thread = nullptr;
    FutureCell* cell = nullptr;
    // Fault-plane routing (unused on the reliable fast path).
    ProcId src = 0;               ///< sending processor
    std::uint64_t msg_id = 0;     ///< fault-plane message id
    std::uint64_t chan_seq = 0;   ///< per-(src,dst) sequence number
    /// Wrapper events (kWireDeliver) carry the wrapped payload's kind so
    /// the fault plane can classify without a table lookup.
    MsgKind payload_kind = MsgKind::kMigrationArrive;
    // Coherence request/reply payloads (fault plane only).
    CoherenceOp* op = nullptr;      ///< requesting access, dereferenced only
                                    ///< after the reply-table tombstone check
    std::uint64_t parg0 = 0;        ///< page id
    std::uint64_t parg1 = 0;        ///< line index / dropped-line count
    std::uint64_t obs_parent = trace::kNoEvent;  ///< causal parent event id
    std::uint64_t answer_to = 0;    ///< replies: msg id of the request served

    friend bool operator>(const Event& a, const Event& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// RunConfig sanity gate, run before any member that sizes itself by
  /// nprocs is constructed. Throws ConfigError on violation.
  static RunConfig validated(RunConfig cfg);

  /// Unregister `cell` from the live-cell registry and delete it.
  void free_cell(FutureCell* cell);

  void schedule(Event e);
  void apply(const Event& e);
  /// Route a payload message onto the wire. With no fault plane this is
  /// exactly `schedule(e)`; with one, the message enters the reliable
  /// delivery protocol (sequence number, ack/retransmit, injected
  /// faults). `wire` is the fault-free transit latency already folded
  /// into `e.time`; `src` is the sending processor.
  void send_message(ProcId src, Cycles wire, Event e);
  void run_ready(ProcId p);
  void resume_on(ProcId p, std::coroutine_handle<> h, ThreadState* t);

  ThreadState* new_thread(ProcId p);

  /// Advance processor `p`'s clock, attributing the cycles to an
  /// accounting bucket when an observer is installed. Every clock
  /// increment the machine makes goes through here (or the `charge`
  /// current-processor shorthand), so the per-processor breakdown is
  /// exhaustive by construction.
  void charge_to(ProcId p, Cycles c, trace::CycleBucket b) {
    procs_[p].clock += c;
    if (obs_ != nullptr) obs_->account(p, c, b, procs_[p].clock);
  }
  void charge(Cycles c, trace::CycleBucket b) { charge_to(cur_proc(), c, b); }

  /// Bring processor `p`'s clock up to an arrival time `t`, accounting
  /// the wait as idle (the event-context twin of run_ready's gap
  /// accounting). Used by coherence message appliers so the events and
  /// charges they produce are stamped at or after the arrival — keeping
  /// per-processor trace times causally monotonic across the wire.
  void advance_clock_to(ProcId p, Cycles t) {
    Proc& pr = procs_[p];
    if (pr.clock >= t) return;
    if (obs_ != nullptr) {
      obs_->account(p, t - pr.clock, trace::CycleBucket::kIdle, t);
    }
    pr.clock = t;
  }

  /// Emit a trace event stamped with processor `p`'s current clock,
  /// threaded into thread `t`'s causal chain: the event's parent is the
  /// thread's previous event (or a one-shot override installed by whatever
  /// woke the thread), and the thread's chain cursor advances to the new
  /// event. Returns the event id (trace::kNoEvent with no observer), so
  /// call sites can store it as a future parent (departures, future
  /// creation/resolution).
  std::uint64_t note_event(trace::EventKind k, ProcId p, ThreadState* t,
                           SiteId site = trace::kNoSite, std::uint64_t a0 = 0,
                           std::uint64_t a1 = 0) {
    if (obs_ == nullptr) return trace::kNoEvent;
    std::uint64_t chain = trace::kNoChain;
    std::uint64_t parent = trace::kNoEvent;
    if (t != nullptr) {
      chain = t->obs_chain;
      parent = t->obs_last_event;
      if (t->obs_next_parent != trace::kNoEvent) {
        parent = t->obs_next_parent;
        t->obs_next_parent = trace::kNoEvent;
      }
    }
    const std::uint64_t id =
        obs_->event(k, procs_[p].clock, p, t != nullptr ? t->id : trace::kNoThread,
                    site, a0, a1, chain, parent);
    if (t != nullptr) t->obs_last_event = id;
    return id;
  }

  /// Emit a trace event on processor `p` that is *attributed* to thread
  /// `t`'s chain without advancing its cursor — used for side effects a
  /// thread causes on other processors (invalidations pushed at a
  /// release), which hang off the thread's current event as siblings
  /// rather than extending its chain.
  std::uint64_t note_side_event(trace::EventKind k, ProcId p,
                                const ThreadState* t,
                                SiteId site = trace::kNoSite,
                                std::uint64_t a0 = 0, std::uint64_t a1 = 0) {
    if (obs_ == nullptr) return trace::kNoEvent;
    return obs_->event(k, procs_[p].clock, p,
                       t != nullptr ? t->id : trace::kNoThread, site, a0, a1,
                       t != nullptr ? t->obs_chain : trace::kNoChain,
                       t != nullptr ? t->obs_last_event : trace::kNoEvent);
  }

  void unlink_item(WorkItem* w);

  /// Enqueue a runnable item, sampling the ready-queue depth.
  void push_ready(ProcId p, ReadyItem it, bool front = false) {
    auto& q = procs_[p].ready;
    if (front) {
      q.push_front(it);
    } else {
      q.push_back(it);
    }
    if (obs_ != nullptr) {
      obs_->record(trace::Hist::kReadyQueueDepth, q.size());
    }
  }

  // coherence protocol actions
  void on_release(ThreadState& t);  ///< departing migration / remote resolve
  /// Acquire on `p` for thread `t` (trace attribution; may be null).
  /// writers == null => full flush.
  void on_acquire(ProcId p, const ProcSet* writers, ThreadState* t);
  /// Compiler-inserted write tracking (Appendix A): log the dirtied lines
  /// and charge 7 or 23 instructions depending on whether the page is
  /// shared. The home's directory entry also learns the dirty lines (the
  /// write-through message carries them). Inline: runs on every tracked
  /// write, and the common case is a single line.
  void track_write(GlobalAddr a, std::uint32_t size) {
    track_write_for(*cur_thread_, a, size);
  }
  /// The same, for an explicit thread: coherence-op completions run in
  /// event context where no thread is "current".
  void track_write_for(ThreadState& t, GlobalAddr a, std::uint32_t size) {
    t.written.add(a.proc());
    if (!tracks_writes(cfg_.scheme)) return;
    std::uint32_t done = 0;
    while (done < size) {
      const GlobalAddr cur = a.plus(done);
      const std::uint32_t line_off = cur.raw() % kLineBytes;
      const std::uint32_t chunk = std::min(size - done, kLineBytes - line_off);
      HomePageInfo& info = directory_.page(cur.page_id());
      charge_to(t.proc,
                info.shared ? cfg_.costs.write_track_shared
                            : cfg_.costs.write_track_unshared,
                trace::CycleBucket::kCoherence);
      ++stats_.tracked_writes;
      const std::uint32_t mask = 1u << cur.line_in_page();
      t.write_log.record(cur.page_id(), mask);
      info.dirty_since_bump |= mask;
      done += chunk;
    }
  }

  // --- adaptive scheme (cfg_.adapt; see docs/ADAPTIVE.md) ----------------
  //
  // The decision data is Machine-owned and deterministic: ticks read only
  // these windowed counters, never the Observer or RunProfile (those are
  // observation-only by contract and may be absent). Counters are bumped
  // on the access hot paths, gated on adapt_on_ so the three static
  // schemes pay one predictable untaken branch.

  /// One site's row in the runtime decision table: this window's access
  /// mix, the hysteresis streak, and the sorted set of pages the site's
  /// cached accesses touched since its last drain.
  struct AdaptSite {
    std::uint64_t total = 0;   ///< accesses executed at the site this window
    std::uint64_t local = 0;   ///< of those, home-local
    std::uint64_t reads = 0;   ///< remote cacheable reads resolved this window
    std::uint64_t hits = 0;    ///< of those, cache hits
    std::uint32_t streak = 0;  ///< consecutive windows voting to flip
    std::uint32_t last_page = 0xffffffffu;  ///< MRU filter for `pages`
    std::vector<std::uint32_t> pages;       ///< sorted, deduplicated
  };

  /// The site's decision row, or null when the site is untracked
  /// (kNoSite). The table grows on first touch so compiler-unknown sites
  /// (tests drive the Machine directly) still participate.
  AdaptSite* adapt_site(SiteId s) {
    if (s == trace::kNoSite) return nullptr;
    if (s >= adapt_sites_.size()) adapt_sites_.resize(s + 1);
    return &adapt_sites_[s];
  }
  void adapt_note_access(SiteId s, bool local) {
    if (AdaptSite* a = adapt_site(s)) {
      ++a->total;
      if (local) ++a->local;
    }
  }
  /// A remote access through the caching mechanism: counts toward the
  /// window and registers the page for a future flip drain.
  void adapt_note_remote(SiteId s, std::uint32_t page) {
    AdaptSite* a = adapt_site(s);
    if (a == nullptr) return;
    ++a->total;
    if (a->last_page != page) {
      a->last_page = page;
      const auto it =
          std::lower_bound(a->pages.begin(), a->pages.end(), page);
      if (it == a->pages.end() || *it != page) a->pages.insert(it, page);
    }
  }
  /// A remote cacheable read resolved (hit or miss) — the hit-rate signal.
  void adapt_note_read(SiteId s, bool hit) {
    if (AdaptSite* a = adapt_site(s)) {
      ++a->reads;
      if (hit) ++a->hits;
    }
  }
  /// Evaluate every site against the paper's bars and flip the ones whose
  /// hysteresis streak matured; reschedules the next tick while the
  /// program is still running.
  void apply_adapt_tick(const Event& e);
  /// Perform one flip as a first-class runtime transition: emit the
  /// kSchemeFlip event (on the run's adaptation chain, parented on the
  /// previous flip), mutate the decision table, and for flips to
  /// migration drain the site's cached lines through the directory.
  void flip_site(SiteId site, Mechanism to, Cycles now);
  /// Invalidate the site's registered pages on every sharer, charged to
  /// the cost model (and riding the lossy wire as kInvalidatePush traffic
  /// under a fault plane). Returns the number of pages drained.
  std::uint64_t drain_site_pages(AdaptSite& a, std::uint64_t flip_ev);

  // cache data paths (charge as they go)
  void cached_access(ProcId p, GlobalAddr a, void* buf, std::uint32_t size,
                     bool is_write, SiteId site);

  /// Single-line cached access with the page already resident and not
  /// suspect: the overwhelmingly common case, handled inline. Charges,
  /// stats and events are byte-for-byte what `cached_access` produces for
  /// the same access; anything off the fast path (page fault, line miss
  /// on a read, suspect page, straddling access) returns false untouched
  /// — no cycles charged, no stats bumped — and the general path redoes
  /// the translation from scratch.
  bool cached_access_fast(ProcId p, GlobalAddr a, void* buf,
                          std::uint32_t size, bool is_write, SiteId site) {
    const std::uint32_t line_off = a.raw() % kLineBytes;
    if (line_off + size > kLineBytes) return false;  // straddles lines
    Proc& pr = procs_[p];
    const std::uint32_t page_id = a.page_id();
    const SoftwareCache::LookupResult lr = pr.cache.lookup(page_id);
    SoftwareCache::PageEntry* e = lr.entry;
    if (e == nullptr || e->suspect) return false;
    const std::uint32_t line = a.line_in_page();
    const std::uint32_t bit = 1u << line;
    if (!is_write && (e->valid & bit) == 0) return false;  // read miss

    charge_to(p, cfg_.costs.cache_lookup, trace::CycleBucket::kCacheStall);
    if (lr.chain_steps > 1) {
      charge_to(p, (lr.chain_steps - 1) * cfg_.costs.cache_chain_step,
                trace::CycleBucket::kCacheStall);
    }
    auto* user = static_cast<std::byte*>(buf);
    if (is_write) {
      // Write-through, no-allocate: the home always gets the bytes; a
      // valid cached line is updated in place.
      std::memcpy(heap_.home_ptr(a, size), user, size);
      if ((e->valid & bit) != 0) {
        std::memcpy(e->frame + line * kLineBytes + line_off, user, size);
      }
    } else {
      std::memcpy(user, e->frame + line * kLineBytes + line_off, size);
    }
    if (obs_ != nullptr) obs_->touch_page(p, page_id);
    if (is_write) {
      charge_to(p, cfg_.costs.remote_write, trace::CycleBucket::kCacheStall);
      charge_to(a.proc(), cfg_.costs.remote_handler,
                trace::CycleBucket::kCacheStall);
      track_write(a, size);
      if (obs_ != nullptr) {
        obs_->profile_access(procs_[p].clock, site, page_id,
                             profile::AccessClass::kWriteThrough);
      }
    } else {
      ++stats_.cache_hits;
      if (adapt_on_) adapt_note_read(site, /*hit=*/true);
      note_event(trace::EventKind::kCacheHit, p, cur_thread_, site, page_id);
    }
    return true;
  }
  /// Returns true if the page needed a timestamp round trip.
  bool revalidate_suspect_page(ProcId p, SoftwareCache::PageEntry& entry);

  /// Would this cached access need at least one wire round trip (a line
  /// fill or a bilateral timestamp check)? Pure probe: no charges, no MRU
  /// or chain perturbation — decides whether the access suspends onto the
  /// coherence request/reply protocol. Fault plane only.
  [[nodiscard]] bool coherence_needs_wire(ProcId p, GlobalAddr a,
                                          std::uint32_t size,
                                          bool is_write) const {
    const SoftwareCache& c = procs_[p].cache;
    std::uint32_t done = 0;
    while (done < size) {
      const GlobalAddr cur = a.plus(done);
      const std::uint32_t line_off = cur.raw() % kLineBytes;
      const std::uint32_t chunk = std::min(size - done, kLineBytes - line_off);
      const SoftwareCache::PageEntry* e = c.peek(cur.page_id());
      if (e == nullptr) {
        if (!is_write) return true;  // first touch: the read must fill
      } else {
        if (e->suspect && cfg_.scheme == Coherence::kBilateral) return true;
        if (!is_write && (e->valid & (1u << cur.line_in_page())) == 0) {
          return true;  // read miss
        }
      }
      done += chunk;
    }
    return false;
  }

  // Coherence request/reply protocol (fault plane only). Issue paths run
  // requester-side; apply paths run from the event queue. All cache and
  // directory mutation for fills and timestamp checks happens at
  // reply-apply time, host-atomic with the data copy, so duplicated
  // requests and replies are idempotent by construction.
  void advance_coherence_op(CoherenceOp* op, Cycles now);
  void finish_coherence_op(CoherenceOp* op, Cycles now);
  void issue_fill_request(CoherenceOp* op, std::uint32_t page_id,
                          std::uint32_t line);
  void issue_ts_check_request(CoherenceOp* op, std::uint32_t page_id);
  void apply_fill_request(const Event& e);     ///< home side (stateless)
  void apply_fill_reply(const Event& e);       ///< requester side
  void apply_ts_check_request(const Event& e); ///< home side (stateless)
  void apply_ts_check_reply(const Event& e);   ///< requester side
  void apply_invalidate_push(const Event& e);  ///< sharer side (timing only)
  CoherenceOp* alloc_coherence_op();
  void free_coherence_op(CoherenceOp* op);
  void home_copy(GlobalAddr a, void* buf, std::uint32_t size, bool is_write) {
    std::byte* home = heap_.home_ptr(a, size);
    if (is_write) {
      std::memcpy(home, buf, size);
    } else {
      std::memcpy(buf, home, size);
    }
  }
  void resolve_future_at_home(FutureCell* cell);

  RunConfig cfg_;
  DistHeap heap_;
  std::vector<Proc> procs_;
  CoherenceDirectory directory_;
  std::vector<Mechanism> site_mech_;

  MinHeap<Event> events_;
  std::uint64_t next_seq_ = 0;

  std::deque<ThreadState> threads_;  // stable addresses
  ThreadState* cur_thread_ = nullptr;
  ThreadId next_thread_id_ = 0;
  bool root_done_ = false;
  std::uint64_t cells_live_ = 0;
  std::uint64_t live_suspended_ = 0;
  /// Every FutureCell not yet freed, for leak-proof teardown: a program
  /// may end with resolved-but-never-touched cells (or unresolved ones,
  /// under fault injection), which no work list still references.
  /// Cells swap-pop out via `free_cell`; ~Machine frees the remainder.
  std::vector<FutureCell*> cells_;
  /// Retired cells held for reuse — futurecall is hot enough that one
  /// heap allocation per call shows up in host profiles.
  std::vector<FutureCell*> cell_pool_;

  MachineStats stats_;
  trace::Observer* obs_ = nullptr;
  /// Present only when RunConfig carried an enabled fault spec.
  std::unique_ptr<fault::FaultPlane> fault_;
  /// Coherence-op pool (stable addresses; in-flight replies hold raw
  /// pointers guarded by the fault plane's request-table tombstones).
  std::deque<CoherenceOp> coherence_ops_;
  std::vector<CoherenceOp*> coherence_op_free_;
  /// One-shot flag set by access() when the failed access should suspend
  /// onto the coherence protocol rather than migrate.
  bool coherent_suspend_ = false;

  /// Adaptive scheme (all empty/false unless cfg_.adapt.interval > 0).
  bool adapt_on_ = false;
  std::vector<AdaptSite> adapt_sites_;
  std::vector<FlipRecord> adapt_flips_;
  /// The run's adaptation chain: every kSchemeFlip rides it, each parented
  /// on the previous flip (opened lazily at the first flip).
  std::uint64_t adapt_chain_ = trace::kNoChain;
  std::uint64_t adapt_last_flip_ = trace::kNoEvent;

  Machine* prev_machine_ = nullptr;
  static thread_local Machine* current_;

  friend class fault::FaultPlane;
};

}  // namespace olden
