// Task<T>: an Olden procedure.
//
// Every Olden procedure that can touch the heap is a coroutine returning
// Task<T>. Calling convention mirrors the paper's §3.1:
//
//  * `co_await some_procedure(...)` is a plain call — the callee starts
//    immediately on the caller's processor (symmetric transfer) and returns
//    control the same way, *unless* it migrated during execution, in which
//    case a return-stub migration carries control back to the caller's
//    processor (the frame does not come back).
//  * `co_await futurecall(some_procedure(...))` (see api.hpp) parks the
//    caller's continuation on the work list and runs the body inline; a
//    thread is created only if the body migrates away.
//
// Task frames live on the host heap; only the thread's execution point
// moves between virtual processors, matching "we send only the portion of
// the thread's state necessary for the current procedure".
#pragma once

#include <coroutine>
#include <utility>

#include "olden/runtime/machine.hpp"

namespace olden {

namespace detail {

/// Holds the co_returned value; the void specialization swaps
/// return_value for return_void (a promise must declare exactly one).
template <class T>
struct PromiseStorage {
  T value{};
  void return_value(T v) { value = std::move(v); }
  T take() { return std::move(value); }
};

template <>
struct PromiseStorage<void> {
  void return_void() {}
  void take() {}
};

}  // namespace detail

template <class T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseStorage<T> {
    std::coroutine_handle<> cont;  ///< caller resumption (null for roots)
    ProcId call_proc = 0;          ///< caller's processor at invocation
    FutureCell* cell = nullptr;    ///< non-null for future bodies

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept {
        // Symmetric transfer into whatever continues (the local caller or
        // an inlined future continuation), or a noop handle to unwind to
        // the scheduler loop when control goes through the event queue.
        // Either way the host stack stays flat (see machine.hpp).
        promise_type& p = h.promise();
        return Machine::current().on_task_final(p.cont, p.call_proc, p.cell);
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void unhandled_exception() { std::terminate(); }
  };

  using handle_type = std::coroutine_handle<promise_type>;

  explicit Task(handle_type h) : h_(h) {}
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&&) = delete;
  ~Task() {
    if (h_) h_.destroy();
  }

  /// Plain procedure call: start the callee now, resume me when it
  /// returns (possibly via a return-stub migration).
  auto operator co_await() && {
    struct CallAwaiter {
      handle_type h;
      bool await_ready() { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> caller) {
        Machine& m = Machine::current();
        promise_type& p = h.promise();
        p.cont = caller;
        p.call_proc = m.cur_proc();
        m.charge_call();
        return h;
      }
      T await_resume() { return h.promise().take(); }
    };
    return CallAwaiter{h_};
  }

  /// Transfer frame ownership (futurecall moves it into the cell; roots
  /// move it to the driver).
  handle_type release() { return std::exchange(h_, {}); }
  [[nodiscard]] handle_type handle() const { return h_; }

 private:
  handle_type h_;
};

/// Run `root` as thread 0 on processor 0 and drive the machine to
/// quiescence; returns the program's result.
template <class T>
T run_program(Machine& m, Task<T> root) {
  auto h = root.handle();  // Task keeps ownership; frame alive through drain
  m.post_root(h);
  m.drain();
  return h.promise().take();
}

}  // namespace olden
