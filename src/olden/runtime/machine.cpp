#include "olden/runtime/machine.hpp"

#include <algorithm>
#include <bit>

#include "olden/fault/fault_plane.hpp"

namespace olden {

using trace::CycleBucket;
using trace::EventKind;

// thread_local so independent Machines can run on separate host threads
// (bench_cell/host_perf --jobs); the save/restore pair in the ctor/dtor
// still supports nested Machines within one thread.
thread_local Machine* Machine::current_ = nullptr;

#if !OLDEN_SYMMETRIC_TRANSFER
// See the header comment on current(): noinline keeps the TLS address
// computation out of coroutine frames in sanitized builds.
[[gnu::noinline]] Machine& Machine::current_outofline() {
  OLDEN_REQUIRE(current_ != nullptr, "no Machine is live");
  return *current_;
}
#endif

RunConfig Machine::validated(RunConfig cfg) {
  if (cfg.nprocs < 1 || cfg.nprocs > kMaxProcs) {
    throw ConfigError("nprocs must be in [1, " + std::to_string(kMaxProcs) +
                      "], got " + std::to_string(cfg.nprocs));
  }
  if (cfg.adapt.interval > 0) {
    // The flip drain walks the directory's per-page sharer sets, which
    // only the eager-global protocol maintains (local knowledge never
    // registers sharers; bilateral only version-stamps).
    if (cfg.scheme != Coherence::kEagerGlobal) {
      throw ConfigError(
          "the adaptive scheme requires global (eager) coherence as its "
          "base protocol");
    }
    // Hysteresis 0 and 1 are the same machine: a flip needs at least one
    // window voting for it.
    if (cfg.adapt.hysteresis == 0) cfg.adapt.hysteresis = 1;
  }
  return cfg;
}

Machine::Machine(RunConfig cfg)
    // validated() runs before heap_/procs_ size themselves by nprocs.
    : cfg_(validated(cfg)),
      heap_(cfg.nprocs),
      procs_(cfg.nprocs),
      obs_(cfg.observer) {
  prev_machine_ = current_;
  current_ = this;
  events_.reserve(256);
  if (cfg_.faults != nullptr && cfg_.faults->enabled) {
    fault_ = std::make_unique<fault::FaultPlane>(*cfg_.faults, cfg_.fault_seed);
  }
  if (cfg_.adapt.interval > 0) {
    adapt_on_ = true;
    // The first decision tick. Ticks self-schedule directly (never via
    // send_message), so they neither enter the fault plane nor perturb
    // its injection stream.
    schedule(Event{.time = cfg_.adapt.interval,
                   .seq = next_seq_++,
                   .kind = MsgKind::kAdaptTick});
  }
  if (obs_ != nullptr) obs_->attach(cfg_);
}

Machine::~Machine() {
  // Free every cell still registered: zombies pinned by work-list deques,
  // resolved-but-never-touched cells, and (under fault injection + watchdog
  // abort) unresolved cells whose body coroutine never finished.
  for (FutureCell* cell : cells_) {
    if (cell->body) cell->body.destroy();
    delete cell;
  }
  cells_.clear();
  for (FutureCell* cell : cell_pool_) delete cell;
  cell_pool_.clear();
  current_ = prev_machine_;
}

GlobalAddr Machine::alloc_raw(ProcId home, std::uint32_t size,
                              std::uint32_t align) {
  if (cur_thread_ != nullptr && !baseline()) {
    charge(home == cur_proc() ? cfg_.costs.alloc_local
                              : cfg_.costs.alloc_remote,
           CycleBucket::kCompute);
    if (home != cur_proc()) {
      charge_to(home, cfg_.costs.remote_handler, CycleBucket::kCompute);
    }
  }
  ++stats_.allocations;
  stats_.bytes_allocated += size;
  return heap_.allocate(home, size, align);
}

// ---------------------------------------------------------------------------
// Heap access
// ---------------------------------------------------------------------------

void Machine::finish_access_local(GlobalAddr a, void* buf, std::uint32_t size,
                                  bool is_write) {
  OLDEN_REQUIRE(a.proc() == cur_proc(), "migration landed on the wrong node");
  if (is_write) {
    ++stats_.local_writes;
  } else {
    ++stats_.local_reads;
  }
  charge(cfg_.costs.local_access, CycleBucket::kCompute);
  home_copy(a, buf, size, is_write);
  if (is_write) track_write(a, size);
}

void Machine::cached_access(ProcId p, GlobalAddr a, void* buf,
                            std::uint32_t size, bool is_write, SiteId site) {
  Proc& pr = procs_[p];
  auto* user = static_cast<std::byte*>(buf);
  std::uint32_t done = 0;
  bool any_miss = false;
  bool any_check = false;
  std::uint64_t lines_fetched = 0;
  Cycles stall_cycles = 0;
  while (done < size) {
    const GlobalAddr cur = a.plus(done);
    const std::uint32_t line_off = cur.raw() % kLineBytes;
    const std::uint32_t chunk = std::min(size - done, kLineBytes - line_off);
    const std::uint32_t page_id = cur.page_id();
    const std::uint32_t line = cur.line_in_page();
    const std::uint32_t bit = 1u << line;

    // Translation-table lookup (Figure 1).
    auto lr = pr.cache.lookup(page_id);
    charge_to(p, cfg_.costs.cache_lookup, CycleBucket::kCacheStall);
    if (lr.chain_steps > 1) {
      charge_to(p, (lr.chain_steps - 1) * cfg_.costs.cache_chain_step,
                CycleBucket::kCacheStall);
    }
    SoftwareCache::PageEntry* e = lr.entry;
    if (e == nullptr) {
      e = &pr.cache.create_page(page_id);  // the lookup just missed
      charge_to(p, cfg_.costs.page_alloc, CycleBucket::kCacheStall);
      ++stats_.pages_cached;
    }
    if (e->suspect) {
      if (cfg_.scheme == Coherence::kBilateral) {
        any_check |= revalidate_suspect_page(p, *e);
      } else {
        e->suspect = false;
      }
    }

    if (!is_write && (e->valid & bit) == 0) {
      // Line miss: fetch 64 bytes from the home (active-message round
      // trip; the home's handler steals cycles from its own thread).
      any_miss = true;
      ++lines_fetched;
      stall_cycles += cfg_.costs.cache_miss;
      charge_to(p, cfg_.costs.cache_miss, CycleBucket::kCacheStall);
      charge_to(page_home(page_id), cfg_.costs.remote_handler,
                CycleBucket::kCacheStall);
      const GlobalAddr line_base((cur.raw() / kLineBytes) * kLineBytes);
      std::memcpy(pr.cache.ensure_frame(*e) + line * kLineBytes,
                  heap_.line_home(line_base), kLineBytes);
      note_event(EventKind::kCacheLineFill, p, cur_thread_, site, page_id,
                 line);
      HomePageInfo& info = directory_.page(page_id);
      info.sharers.add(p);
      info.shared = true;
      if (cfg_.scheme == Coherence::kBilateral &&
          e->version != info.version) {
        // The fill reply carries the home's current timestamp. Before
        // adopting it, drop the lines the version advance invalidated —
        // stamping alone would hide genuinely stale lines from the next
        // suspect check (the page's version is page-grain, its lines are
        // not).
        const std::uint32_t stale =
            stale_line_mask(info, e->version, e->valid);
        e->valid &= ~stale;
        stats_.lines_invalidated +=
            static_cast<std::uint64_t>(std::popcount(stale));
        e->version = info.version;
      }
      e->valid |= bit;
    }

    if (is_write) {
      // Write-through, no-allocate: the home always gets the bytes; a
      // valid cached line is updated in place.
      std::memcpy(heap_.home_ptr(cur, chunk), user + done, chunk);
      if ((e->valid & bit) != 0) {  // valid line => frame present
        std::memcpy(e->frame + line * kLineBytes + line_off, user + done,
                    chunk);
      }
    } else {
      std::memcpy(user + done, e->frame + line * kLineBytes + line_off,
                  chunk);
    }
    done += chunk;
  }

  if (obs_ != nullptr) obs_->touch_page(p, a.page_id());
  if (is_write) {
    charge_to(p, cfg_.costs.remote_write, CycleBucket::kCacheStall);
    charge_to(a.proc(), cfg_.costs.remote_handler, CycleBucket::kCacheStall);
    if (any_check) ++stats_.timestamp_stalls;
    track_write(a, size);
    if (obs_ != nullptr) {
      obs_->profile_access(procs_[p].clock, site, a.page_id(),
                           profile::AccessClass::kWriteThrough);
    }
  } else if (any_miss) {
    ++stats_.cache_misses;
    if (adapt_on_) adapt_note_read(site, /*hit=*/false);
    note_event(EventKind::kCacheMiss, p, cur_thread_, site, a.page_id(),
               lines_fetched);
    if (obs_ != nullptr) {
      obs_->record(trace::Hist::kMissFillCycles, stall_cycles);
    }
  } else {
    ++stats_.cache_hits;
    if (adapt_on_) adapt_note_read(site, /*hit=*/true);
    if (any_check) ++stats_.timestamp_stalls;
    note_event(EventKind::kCacheHit, p, cur_thread_, site, a.page_id());
  }
}

bool Machine::revalidate_suspect_page(ProcId p,
                                      SoftwareCache::PageEntry& entry) {
  charge_to(p, cfg_.costs.timestamp_check, CycleBucket::kCoherence);
  charge_to(page_home(entry.page_id), cfg_.costs.remote_handler,
            CycleBucket::kCoherence);
  ++stats_.timestamp_checks;
  const HomePageInfo& info = directory_.page(entry.page_id);
  const std::uint32_t stale = stale_line_mask(info, entry.version, entry.valid);
  const std::uint64_t dropped =
      static_cast<std::uint64_t>(std::popcount(stale));
  entry.valid &= ~stale;
  stats_.lines_invalidated += dropped;
  entry.version = info.version;
  entry.suspect = false;
  note_event(EventKind::kTimestampCheck, p, cur_thread_, trace::kNoSite,
             entry.page_id, dropped);
  return true;
}

// ---------------------------------------------------------------------------
// Coherence request/reply protocol (fault plane only)
//
// A cached access that needs a wire round trip suspends its thread and
// becomes a CoherenceOp: a resumable copy of cached_access's chunk loop.
// Requests (kFillRequest, kTsCheckRequest) ride the lossy wire with
// retransmit timers; the reply is the implicit acknowledgement. Homes
// service requests statelessly — all cache and directory mutation happens
// requester-side when the reply lands, host-atomic with the data copy, so
// a duplicated request (re-serviced) or a surplus reply (tombstoned in
// the fault plane's request table) can never corrupt cache or directory
// state.
// ---------------------------------------------------------------------------

Machine::CoherenceOp* Machine::alloc_coherence_op() {
  if (!coherence_op_free_.empty()) {
    CoherenceOp* op = coherence_op_free_.back();
    coherence_op_free_.pop_back();
    *op = CoherenceOp{};
    return op;
  }
  coherence_ops_.emplace_back();
  return &coherence_ops_.back();
}

void Machine::free_coherence_op(CoherenceOp* op) {
  coherence_op_free_.push_back(op);
}

void Machine::begin_coherent_access(GlobalAddr a, void* buf,
                                    std::uint32_t size, bool is_write,
                                    SiteId site, std::coroutine_handle<> h) {
  OLDEN_REQUIRE(fault_ != nullptr, "coherent suspend without a fault plane");
  CoherenceOp* op = alloc_coherence_op();
  op->h = h;
  op->thread = cur_thread_;
  op->addr = a;
  op->buf = buf;
  op->size = size;
  op->is_write = is_write;
  op->site = site;
  // The probe (coherence_needs_wire) guaranteed at least one round trip,
  // so this always parks on a request before reaching the epilogue.
  advance_coherence_op(op, procs_[cur_proc()].clock);
}

void Machine::advance_coherence_op(CoherenceOp* op, Cycles now) {
  const ProcId p = op->thread->proc;
  Proc& pr = procs_[p];
  auto* user = static_cast<std::byte*>(op->buf);
  while (op->done < op->size) {
    const GlobalAddr cur = op->addr.plus(op->done);
    const std::uint32_t line_off = cur.raw() % kLineBytes;
    const std::uint32_t chunk =
        std::min(op->size - op->done, kLineBytes - line_off);
    const std::uint32_t page_id = cur.page_id();
    const std::uint32_t line = cur.line_in_page();
    const std::uint32_t bit = 1u << line;

    if (!op->chunk_charged) {
      // Translation-table lookup, charged once per chunk exactly as the
      // synchronous path does (a chunk resumed after a reply re-enters
      // the loop without paying again).
      auto lr = pr.cache.lookup(page_id);
      charge_to(p, cfg_.costs.cache_lookup, CycleBucket::kCacheStall);
      if (lr.chain_steps > 1) {
        charge_to(p, (lr.chain_steps - 1) * cfg_.costs.cache_chain_step,
                  CycleBucket::kCacheStall);
      }
      op->entry = lr.entry;
      if (op->entry == nullptr) {
        op->entry = &pr.cache.create_page(page_id);
        charge_to(p, cfg_.costs.page_alloc, CycleBucket::kCacheStall);
        ++stats_.pages_cached;
      }
      op->chunk_charged = true;
    }
    SoftwareCache::PageEntry* e = op->entry;

    if (e->suspect) {
      if (cfg_.scheme == Coherence::kBilateral) {
        ++stats_.timestamp_checks;
        op->any_check = true;
        op->wait_started = pr.clock;
        issue_ts_check_request(op, page_id);
        return;  // parked until the kTsCheckReply applies
      }
      e->suspect = false;
    }

    if (!op->is_write && (e->valid & bit) == 0) {
      op->any_miss = true;
      ++op->lines_fetched;
      op->wait_started = pr.clock;
      issue_fill_request(op, page_id, line);
      return;  // parked until the kFillReply applies
    }

    if (op->is_write) {
      // Write-through, no-allocate, host-synchronous: the home always
      // gets the bytes immediately (never rides the lossy wire), so
      // program data is identical to the fault-free run.
      std::memcpy(heap_.home_ptr(cur, chunk), user + op->done, chunk);
      if ((e->valid & bit) != 0) {  // valid line => frame present
        std::memcpy(e->frame + line * kLineBytes + line_off, user + op->done,
                    chunk);
      }
    } else {
      std::memcpy(user + op->done, e->frame + line * kLineBytes + line_off,
                  chunk);
    }
    op->done += chunk;
    op->chunk_charged = false;
    op->entry = nullptr;
  }
  finish_coherence_op(op, now);
}

void Machine::finish_coherence_op(CoherenceOp* op, Cycles now) {
  const ProcId p = op->thread->proc;
  const GlobalAddr a = op->addr;
  if (obs_ != nullptr) obs_->touch_page(p, a.page_id());
  if (op->is_write) {
    charge_to(p, cfg_.costs.remote_write, CycleBucket::kCacheStall);
    charge_to(a.proc(), cfg_.costs.remote_handler, CycleBucket::kCacheStall);
    if (op->any_check) ++stats_.timestamp_stalls;
    track_write_for(*op->thread, a, op->size);
    if (obs_ != nullptr) {
      obs_->profile_access(procs_[p].clock, op->site, a.page_id(),
                           profile::AccessClass::kWriteThrough);
    }
  } else if (op->any_miss) {
    ++stats_.cache_misses;
    if (adapt_on_) adapt_note_read(op->site, /*hit=*/false);
    note_event(EventKind::kCacheMiss, p, op->thread, op->site, a.page_id(),
               op->lines_fetched);
    if (obs_ != nullptr) {
      obs_->record(trace::Hist::kMissFillCycles, op->stall_cycles);
    }
  } else {
    ++stats_.cache_hits;
    if (adapt_on_) adapt_note_read(op->site, /*hit=*/true);
    if (op->any_check) ++stats_.timestamp_stalls;
    note_event(EventKind::kCacheHit, p, op->thread, op->site, a.page_id());
  }
  // Resume the thread; run_ready accounts any clock < now gap as idle,
  // exactly like a migration arrival.
  push_ready(p, ReadyItem{op->h, op->thread, now});
  free_coherence_op(op);
}

void Machine::issue_fill_request(CoherenceOp* op, std::uint32_t page_id,
                                 std::uint32_t line) {
  const ProcId p = op->thread->proc;
  const ProcId home = page_home(page_id);
  const std::uint64_t ev = note_event(EventKind::kFillRequest, p, op->thread,
                                      op->site, page_id, line);
  fault_->send_request(*this, p, cfg_.costs.coherence_wire,
                       Event{.time = procs_[p].clock +
                                     cfg_.costs.coherence_wire,
                             .seq = next_seq_++,
                             .kind = MsgKind::kFillRequest,
                             .target = home,
                             .thread = op->thread,
                             .src = p,
                             .op = op,
                             .parg0 = page_id,
                             .parg1 = line,
                             .obs_parent = ev});
}

void Machine::issue_ts_check_request(CoherenceOp* op, std::uint32_t page_id) {
  const ProcId p = op->thread->proc;
  const ProcId home = page_home(page_id);
  const std::uint64_t ev = note_event(EventKind::kTsCheckRequest, p,
                                      op->thread, op->site, page_id, home);
  fault_->send_request(*this, p, cfg_.costs.coherence_wire,
                       Event{.time = procs_[p].clock +
                                     cfg_.costs.coherence_wire,
                             .seq = next_seq_++,
                             .kind = MsgKind::kTsCheckRequest,
                             .target = home,
                             .thread = op->thread,
                             .src = p,
                             .op = op,
                             .parg0 = page_id,
                             .obs_parent = ev});
}

void Machine::apply_fill_request(const Event& e) {
  // Home-side service: charge the handler, emit the reply event, send the
  // reply. Stateless, so re-servicing a retransmitted request is harmless.
  // The reply departs at the request's ARRIVAL time, not the home's clock
  // — the handler is an active message that steals cycles, exactly like
  // the synchronous fill and the one-way protocol's acks. Anchoring it to
  // the home's clock instead couples reply latency to how far ahead the
  // home's own computation runs, and under a busy home every requester
  // times out, every retransmit is re-serviced (pushing the home's clock
  // further), and the protocol collapses into a retry storm.
  advance_clock_to(e.target, e.time);
  charge_to(e.target, cfg_.costs.remote_handler, CycleBucket::kCacheStall);
  std::uint64_t ev = trace::kNoEvent;
  if (obs_ != nullptr) {
    ev = obs_->event(EventKind::kFillReply, e.time, e.target,
                     e.thread != nullptr ? e.thread->id : trace::kNoThread,
                     trace::kNoSite, e.parg0, e.parg1,
                     e.thread != nullptr ? e.thread->obs_chain
                                         : trace::kNoChain,
                     e.obs_parent);
  }
  fault_->send_reply(*this, e.target, cfg_.costs.coherence_wire,
                     Event{.time = e.time + cfg_.costs.coherence_wire,
                           .seq = next_seq_++,
                           .kind = MsgKind::kFillReply,
                           .target = e.src,
                           .thread = e.thread,
                           .src = e.target,
                           .op = e.op,
                           .parg0 = e.parg0,
                           .parg1 = e.parg1,
                           .obs_parent = ev,
                           .answer_to = e.msg_id});
}

void Machine::apply_fill_reply(const Event& e) {
  advance_clock_to(e.target, e.time);
  charge_to(e.target, cfg_.costs.ack_recv, CycleBucket::kRetry);
  if (!fault_->consume_reply(e.answer_to)) {
    // The request this answers was already satisfied (a retransmitted
    // request got re-serviced after the first reply landed). The op
    // pointer may point at a recycled op — the tombstone check above is
    // what makes discarding safe.
    ++stats_.replies_ignored;
    return;
  }
  CoherenceOp* op = e.op;
  const ProcId p = op->thread->proc;
  Proc& pr = procs_[p];
  SoftwareCache::PageEntry* entry = op->entry;
  const GlobalAddr cur = op->addr.plus(op->done);
  const std::uint32_t line = cur.line_in_page();
  const GlobalAddr line_base(
      (cur.raw() / kLineBytes) * static_cast<std::uint32_t>(kLineBytes));
  // Requester-side apply: copy the line and register with the directory
  // in one host-atomic step, mirroring the synchronous fill.
  std::memcpy(pr.cache.ensure_frame(*entry) + line * kLineBytes,
              heap_.line_home(line_base), kLineBytes);
  HomePageInfo& info = directory_.page(cur.page_id());
  info.sharers.add(p);
  info.shared = true;
  if (cfg_.scheme == Coherence::kBilateral &&
      entry->version != info.version) {
    // As in the synchronous fill: the reply carries the home's current
    // timestamp, so the version advance's stale lines drop before the
    // stamp — critical here, where migrations can mark the page suspect
    // while this fill was in flight.
    const std::uint32_t stale =
        stale_line_mask(info, entry->version, entry->valid);
    entry->valid &= ~stale;
    stats_.lines_invalidated +=
        static_cast<std::uint64_t>(std::popcount(stale));
    entry->version = info.version;
  }
  entry->valid |= 1u << line;
  if (e.time > op->wait_started) op->stall_cycles += e.time - op->wait_started;
  op->thread->obs_next_parent = e.obs_parent;
  note_event(EventKind::kCacheLineFill, p, op->thread, op->site,
             cur.page_id(), line);
  advance_coherence_op(op, e.time);
}

void Machine::apply_ts_check_request(const Event& e) {
  // Arrival-anchored like apply_fill_request: the timestamp read is an
  // active-message handler, so the reply never waits on the home's clock.
  advance_clock_to(e.target, e.time);
  charge_to(e.target, cfg_.costs.remote_handler, CycleBucket::kCoherence);
  const std::uint32_t page_id = static_cast<std::uint32_t>(e.parg0);
  std::uint64_t ev = trace::kNoEvent;
  if (obs_ != nullptr) {
    ev = obs_->event(EventKind::kTsCheckReply, e.time, e.target,
                     e.thread != nullptr ? e.thread->id : trace::kNoThread,
                     trace::kNoSite, e.parg0,
                     directory_.page(page_id).version,
                     e.thread != nullptr ? e.thread->obs_chain
                                         : trace::kNoChain,
                     e.obs_parent);
  }
  fault_->send_reply(*this, e.target, cfg_.costs.coherence_wire,
                     Event{.time = e.time + cfg_.costs.coherence_wire,
                           .seq = next_seq_++,
                           .kind = MsgKind::kTsCheckReply,
                           .target = e.src,
                           .thread = e.thread,
                           .src = e.target,
                           .op = e.op,
                           .parg0 = e.parg0,
                           .obs_parent = ev,
                           .answer_to = e.msg_id});
}

void Machine::apply_ts_check_reply(const Event& e) {
  advance_clock_to(e.target, e.time);
  charge_to(e.target, cfg_.costs.ack_recv, CycleBucket::kRetry);
  if (!fault_->consume_reply(e.answer_to)) {
    ++stats_.replies_ignored;
    return;
  }
  CoherenceOp* op = e.op;
  const ProcId p = op->thread->proc;
  SoftwareCache::PageEntry& entry = *op->entry;
  // Validate against the directory as it stands when the reply lands —
  // the idempotent-apply twin of revalidate_suspect_page.
  const HomePageInfo& info = directory_.page(entry.page_id);
  const std::uint32_t stale = stale_line_mask(info, entry.version, entry.valid);
  const std::uint64_t dropped =
      static_cast<std::uint64_t>(std::popcount(stale));
  entry.valid &= ~stale;
  stats_.lines_invalidated += dropped;
  entry.version = info.version;
  entry.suspect = false;
  if (e.time > op->wait_started) op->stall_cycles += e.time - op->wait_started;
  op->thread->obs_next_parent = e.obs_parent;
  note_event(EventKind::kTimestampCheck, p, op->thread, trace::kNoSite,
             entry.page_id, dropped);
  advance_coherence_op(op, e.time);
}

void Machine::apply_invalidate_push(const Event& e) {
  // The sharer's cache and the directory were updated synchronously at
  // the release; this arrival carries the receive-side timing and the
  // trace event (parented to the kInvalidatePush emitted at the sender).
  advance_clock_to(e.target, e.time);
  charge_to(e.target, cfg_.costs.invalidate_recv, CycleBucket::kCoherence);
  if (obs_ != nullptr) {
    obs_->event(EventKind::kLineInvalidate, e.time, e.target,
                e.thread != nullptr ? e.thread->id : trace::kNoThread,
                trace::kNoSite, e.parg0, e.parg1,
                e.thread != nullptr ? e.thread->obs_chain : trace::kNoChain,
                e.obs_parent);
  }
}

// ---------------------------------------------------------------------------
// Coherence protocol events
// ---------------------------------------------------------------------------

void Machine::on_release(ThreadState& t) {
  if (!tracks_writes(cfg_.scheme) || t.write_log.empty()) {
    t.write_log.clear();
    return;
  }
  const ProcId src = t.proc;
  if (cfg_.scheme == Coherence::kEagerGlobal) {
    // Push line-grain invalidations to every sharer of each dirtied page
    // and collect (implicit) acknowledgements before the migration leaves.
    t.write_log.for_each([&](std::uint32_t page, std::uint32_t mask) {
      const ProcId home = page_home(page);
      if (home != src) {
        charge_to(src, cfg_.costs.invalidate_send, CycleBucket::kCoherence);
        charge_to(home, cfg_.costs.remote_handler, CycleBucket::kCoherence);
      }
      HomePageInfo& info = directory_.page(page);
      // for_each iterates a snapshot of the set, so pruning mid-loop is
      // safe.
      info.sharers.for_each([&](ProcId s) {
        if (s == src) return;  // the writer's own copy was updated in place
        ++stats_.invalidation_messages;
        charge_to(src, cfg_.costs.invalidate_send, CycleBucket::kCoherence);
        const SoftwareCache::InvalidateResult inv =
            procs_[s].cache.invalidate_lines(page, mask);
        stats_.lines_invalidated += inv.dropped;
        if (inv.remaining == 0) {
          // The sharer no longer holds a single valid line of this page
          // (or never cached it): stop pushing invalidations its way. It
          // re-registers on its next line fill. Without this, sharer sets
          // only grow and long runs invalidate fully-stale copies forever.
          info.sharers.remove(s);
        }
        if (fault_ == nullptr) {
          charge_to(s, cfg_.costs.invalidate_recv, CycleBucket::kCoherence);
          note_side_event(EventKind::kLineInvalidate, s, &t, trace::kNoSite,
                          page, inv.dropped);
        } else {
          // Under a fault plane the push becomes an explicit acked wire
          // message. The cache/directory mutation above stays synchronous
          // (host state identical to the fault-free path — checksums
          // cannot move); only timing, costs and trace events ride the
          // lossy wire, and the receive side lands at kInvalidatePush
          // delivery.
          const std::uint64_t push_ev = note_side_event(
              EventKind::kInvalidatePush, src, &t, trace::kNoSite, page, s);
          send_message(src, cfg_.costs.coherence_wire,
                       Event{.time = procs_[src].clock +
                                     cfg_.costs.coherence_wire,
                             .seq = next_seq_++,
                             .kind = MsgKind::kInvalidatePush,
                             .target = s,
                             .thread = &t,
                             .src = src,
                             .parg0 = page,
                             .parg1 = inv.dropped,
                             .obs_parent = push_ev});
        }
      });
      info.dirty_since_bump = 0;
    });
  } else {  // bilateral
    // Bump the home version of every written page; no sharer fan-out.
    t.write_log.for_each([&](std::uint32_t page, std::uint32_t mask) {
      const ProcId home = page_home(page);
      if (home != src) {
        charge_to(src, cfg_.costs.invalidate_send, CycleBucket::kCoherence);
        charge_to(home, cfg_.costs.remote_handler, CycleBucket::kCoherence);
      }
      HomePageInfo& info = directory_.page(page);
      info.version += 1;
      info.last_released = info.dirty_since_bump | mask;
      info.dirty_since_bump = 0;
    });
  }
  t.write_log.clear();
}

void Machine::on_acquire(ProcId p, const ProcSet* writers, ThreadState* t) {
  switch (cfg_.scheme) {
    case Coherence::kLocalKnowledge: {
      ++stats_.cache_flushes;
      std::uint64_t dropped = 0;
      if (writers != nullptr) {
        dropped = procs_[p].cache.invalidate_from_procs(*writers);
      } else {
        dropped = procs_[p].cache.invalidate_all();
      }
      stats_.lines_invalidated += dropped;
      note_event(EventKind::kCacheFlush, p, t, trace::kNoSite, dropped);
      break;
    }
    case Coherence::kEagerGlobal:
      break;  // invalidations were pushed at the matching release
    case Coherence::kBilateral:
      procs_[p].cache.mark_all_suspect();
      note_event(EventKind::kMarkSuspect, p, t, trace::kNoSite,
                 procs_[p].cache.pages_live());
      break;
  }
}

// ---------------------------------------------------------------------------
// Adaptive scheme (--scheme=adaptive; see docs/ADAPTIVE.md)
// ---------------------------------------------------------------------------

void Machine::apply_adapt_tick(const Event& e) {
  // Decision pass, in SiteId order (the only order that exists — flips
  // must be deterministic and independent of host iteration artifacts).
  // The bars are the integer-exact forms of the offline scoreboard's
  // rules: local/total < 0.90 and hits/reads < 0.50.
  for (SiteId s = 0; s < adapt_sites_.size(); ++s) {
    AdaptSite& a = adapt_sites_[s];
    bool vote = false;
    if (a.total >= cfg_.adapt.min_samples) {
      const bool low_affinity = a.local * 10 < a.total * 9;
      if (mechanism(s) == Mechanism::kMigrate) {
        // A bouncing migrate site: moving the thread on >10% of accesses
        // is costlier than caching the data.
        vote = low_affinity;
      } else {
        // A cache site flips only on positive evidence: mostly-remote
        // traffic whose reads mostly miss. Write-only windows (no reads)
        // carry no reuse signal and never vote.
        vote = low_affinity && a.reads > 0 && a.hits * 2 < a.reads;
      }
    }
    if (vote) {
      if (++a.streak >= cfg_.adapt.hysteresis) {
        a.streak = 0;
        flip_site(s,
                  mechanism(s) == Mechanism::kMigrate ? Mechanism::kCache
                                                      : Mechanism::kMigrate,
                  e.time);
      }
    } else {
      a.streak = 0;
    }
    // A fresh window every tick; the page set persists until a drain.
    a.total = a.local = a.reads = a.hits = 0;
  }
  if (!root_done_) {
    // A thread that never suspends runs its processor far ahead of the
    // event heap, so this tick may be dispatched "late" (e.time well
    // behind the clocks). Rescheduling blindly at e.time + interval would
    // then fire a burst of stale ticks over empty windows, resetting
    // every hysteresis streak; instead skip forward on the interval grid
    // past the fastest processor clock. Deterministic: processor clocks
    // are simulation state, identical on every run.
    Cycles horizon = 0;
    for (const Proc& p : procs_) horizon = std::max(horizon, p.clock);
    Cycles next = e.time + cfg_.adapt.interval;
    if (next <= horizon) {
      const Cycles k = (horizon - e.time) / cfg_.adapt.interval + 1;
      next = e.time + k * cfg_.adapt.interval;
    }
    schedule(
        Event{.time = next, .seq = next_seq_++, .kind = MsgKind::kAdaptTick});
  }
}

void Machine::flip_site(SiteId site, Mechanism to, Cycles now) {
  if (site >= site_mech_.size()) {
    site_mech_.resize(site + 1, Mechanism::kCache);
  }
  site_mech_[site] = to;
  ++stats_.scheme_flips;
  const bool to_cache = to == Mechanism::kCache;
  if (to_cache) {
    ++stats_.flips_to_cache;
  } else {
    ++stats_.flips_to_migrate;
  }

  // The flip is a first-class trace event on the run's adaptation chain,
  // parented on the previous flip so --diff and the analyzer can walk the
  // whole adaptation history as one causal thread. arg1 (pages drained)
  // is patched into the FlipRecord below; the event itself carries the
  // page count at emission time via the drain's own child events.
  std::uint64_t flip_ev = trace::kNoEvent;
  AdaptSite& a = adapt_sites_[site];
  if (obs_ != nullptr) {
    if (adapt_chain_ == trace::kNoChain) adapt_chain_ = obs_->new_chain();
    flip_ev = obs_->event(EventKind::kSchemeFlip, now, /*p=*/0,
                          trace::kNoThread, site, to_cache ? 1 : 0,
                          to_cache ? 0 : a.pages.size(), adapt_chain_,
                          adapt_last_flip_);
    adapt_last_flip_ = flip_ev;
  }

  std::uint64_t drained = 0;
  if (to_cache) {
    // Migration -> caching is a clean cold start: the site simply begins
    // filling lines again; there is no state to reconcile.
    a.pages.clear();
    a.last_page = 0xffffffffu;
  } else {
    // Caching -> migration must not strand cached lines: every page the
    // site pulled into a cache is invalidated through the directory,
    // charged to the cost model like any other eager invalidation round.
    drained = drain_site_pages(a, flip_ev);
  }
  adapt_flips_.push_back(FlipRecord{now, site, to, drained});
}

std::uint64_t Machine::drain_site_pages(AdaptSite& a, std::uint64_t flip_ev) {
  std::uint64_t drained = 0;
  for (const std::uint32_t page : a.pages) {
    HomePageInfo& info = directory_.page(page);
    if (info.sharers.empty()) continue;
    const ProcId home = page_home(page);
    ++drained;
    // for_each iterates a snapshot of the set, so pruning mid-loop is
    // safe (same contract as on_release).
    info.sharers.for_each([&](ProcId s) {
      ++stats_.invalidation_messages;
      ++stats_.flip_drain_messages;
      // No thread initiates this round: the home directory is the agent,
      // so it pays the send (on_release charges the releasing writer).
      charge_to(home, cfg_.costs.invalidate_send, CycleBucket::kCoherence);
      const SoftwareCache::InvalidateResult inv =
          procs_[s].cache.invalidate_lines(page, 0xffffffffu);
      stats_.lines_invalidated += inv.dropped;
      stats_.flip_drain_lines += inv.dropped;
      if (inv.remaining == 0) info.sharers.remove(s);
      if (fault_ == nullptr) {
        charge_to(s, cfg_.costs.invalidate_recv, CycleBucket::kCoherence);
        if (obs_ != nullptr) {
          obs_->event(EventKind::kLineInvalidate, procs_[s].clock, s,
                      trace::kNoThread, trace::kNoSite, page, inv.dropped,
                      adapt_chain_, flip_ev);
        }
      } else {
        // As at a release: the cache mutation above stays synchronous
        // (checksums cannot move); timing, costs and the receive-side
        // event ride the lossy wire as real invalidate-class traffic.
        std::uint64_t push_ev = trace::kNoEvent;
        if (obs_ != nullptr) {
          push_ev = obs_->event(EventKind::kInvalidatePush,
                                procs_[home].clock, home, trace::kNoThread,
                                trace::kNoSite, page, s, adapt_chain_,
                                flip_ev);
        }
        send_message(home, cfg_.costs.coherence_wire,
                     Event{.time = procs_[home].clock +
                                   cfg_.costs.coherence_wire,
                           .seq = next_seq_++,
                           .kind = MsgKind::kInvalidatePush,
                           .target = s,
                           .src = home,
                           .parg0 = page,
                           .parg1 = inv.dropped,
                           .obs_parent = push_ev});
      }
    });
  }
  a.pages.clear();
  a.last_page = 0xffffffffu;
  return drained;
}

// ---------------------------------------------------------------------------
// Migration
// ---------------------------------------------------------------------------

void Machine::migrate_to(ProcId target, std::coroutine_handle<> h,
                         SiteId site) {
  ThreadState* t = cur_thread_;
  OLDEN_REQUIRE(target != t->proc, "migration to the current processor");
  ++stats_.migrations;
  ++t->migrations;
  on_release(*t);
  Proc& src = procs_[t->proc];
  if (obs_ != nullptr) {
    t->obs_depart_time = src.clock;
    t->obs_depart_proc = t->proc;
  }
  charge_to(t->proc, cfg_.costs.migration_send, CycleBucket::kMigration);
  t->obs_depart_event =
      note_event(EventKind::kMigrationDepart, t->proc, t, site, target);
  send_message(t->proc, cfg_.costs.migration_wire,
               Event{.time = src.clock + cfg_.costs.migration_wire,
                     .seq = next_seq_++,
                     .kind = MsgKind::kMigrationArrive,
                     .target = target,
                     .h = h,
                     .thread = t});
}

std::coroutine_handle<> Machine::on_task_final(std::coroutine_handle<> cont,
                                               ProcId call_proc,
                                               FutureCell* cell) {
  ThreadState* t = cur_thread_;
  if (cell != nullptr) {
    // A future body finished.
    if (t->proc == cell->home) {
      if (!cell->item.taken) {
        // Lazy task creation pay-off: nothing migrated the body away from
        // this processor for long enough for the continuation to be
        // stolen — pop it and continue as the same thread, directly. The
        // write log stays with the thread: the continuation inherits it
        // and releases the merged log at its own next release point.
        cell->resolved = true;
        cell->writer_written = t->written;
        cell->obs_resolve_event = note_event(
            EventKind::kFutureResolve, t->proc, t, trace::kNoSite,
            cell->serial, 0);
        cell->item.taken = true;
        ++stats_.futures_inlined;
        return transfer_to(cell->item.cont);
      }
      // The body ran as its own thread (the continuation was stolen) and
      // retires here. Resolution is a release point: the waiter may be on
      // another processor, so the write log must be drained — eager pushes
      // / bilateral version bumps — before the resolve becomes visible.
      // Without this the log dies with the thread and remote caches keep
      // stale lines forever.
      on_release(*t);
      cell->resolved = true;
      cell->writer_written = t->written;
      cell->obs_resolve_event = note_event(EventKind::kFutureResolve, t->proc,
                                           t, trace::kNoSite, cell->serial, 0);
      if (cell->waiter) {
        const auto waiter = cell->waiter;
        cell->waiter = nullptr;
        // The wake crosses threads: the waiter's next event is caused by
        // this resolve, not by whatever the waiter last did.
        cell->waiter_thread->obs_next_parent = cell->obs_resolve_event;
        push_ready(cell->waiter_proc,
                   ReadyItem{waiter, cell->waiter_thread, procs_[t->proc].clock});
      }
      return std::noop_coroutine();  // this thread retires
    }
    // Remote completion: the resolution message is a release.
    on_release(*t);
    cell->resolved_remotely = true;
    cell->writer_written = t->written;
    Proc& src = procs_[t->proc];
    charge_to(t->proc, cfg_.costs.future_resolve_msg, CycleBucket::kMigration);
    cell->obs_resolve_event = note_event(EventKind::kFutureResolve, t->proc, t,
                                         trace::kNoSite, cell->serial, 1);
    send_message(t->proc, 0,
                 Event{.time = src.clock,
                       .seq = next_seq_++,
                       .kind = MsgKind::kResolveFuture,
                       .target = cell->home,
                       .h = nullptr,
                       .thread = nullptr,
                       .cell = cell});
    return std::noop_coroutine();  // this thread retires
  }

  if (cont == nullptr) {
    note_root_done();
    return std::noop_coroutine();
  }

  if (t->proc != call_proc) {
    // Return stub (§3.1): send registers + return address back to the
    // caller's processor; the frame stays behind.
    ++stats_.return_migrations;
    on_release(*t);
    Proc& src = procs_[t->proc];
    if (obs_ != nullptr) {
      t->obs_depart_time = src.clock;
      t->obs_depart_proc = t->proc;
    }
    charge_to(t->proc, cfg_.costs.return_send, CycleBucket::kMigration);
    t->obs_depart_event = note_event(EventKind::kReturnStubSend, t->proc, t,
                                     trace::kNoSite, call_proc);
    send_message(t->proc, cfg_.costs.return_wire,
                 Event{.time = src.clock + cfg_.costs.return_wire,
                       .seq = next_seq_++,
                       .kind = MsgKind::kReturnArrive,
                       .target = call_proc,
                       .h = cont,
                       .thread = t});
    return std::noop_coroutine();
  }
  // Plain local return: transfer straight into the caller (same processor,
  // same thread, same clock — the queued round trip would change nothing).
  return transfer_to(cont);
}

// ---------------------------------------------------------------------------
// Futures
// ---------------------------------------------------------------------------

FutureCell* Machine::make_future_cell(std::coroutine_handle<> caller_cont,
                                      std::coroutine_handle<> body) {
  ++stats_.futurecalls;
  charge(cfg_.costs.future_call, CycleBucket::kCompute);
  FutureCell* cell;
  if (cell_pool_.empty()) {
    cell = new FutureCell;
  } else {
    cell = cell_pool_.back();
    cell_pool_.pop_back();
    *cell = FutureCell{};  // reset a recycled cell to pristine state
  }
  cell->home = cur_proc();
  cell->serial = stats_.futurecalls;
  cell->body = body;
  cell->item = WorkItem{caller_cont, cell, false, true};
  cell->registry_slot = cells_.size();
  cells_.push_back(cell);
  procs_[cur_proc()].worklist.push_back(&cell->item);
  ++cells_live_;
  cell->obs_create_event = note_event(EventKind::kFutureCreate, cur_proc(),
                                      cur_thread_, trace::kNoSite, cell->serial);
  if (obs_ != nullptr) {
    obs_->record(trace::Hist::kWorklistDepth,
                 procs_[cur_proc()].worklist.size());
  }
  return cell;
}

bool Machine::future_ready(FutureCell* cell) {
  charge(cfg_.costs.future_touch, CycleBucket::kCompute);
  return cell->resolved;
}

void Machine::block_on_future(FutureCell* cell, std::coroutine_handle<> h) {
  OLDEN_REQUIRE(!cell->waiter, "a future may be touched only once");
  ++stats_.touches_blocked;
  cell->waiter = h;
  cell->waiter_thread = cur_thread_;
  cell->waiter_proc = cur_proc();
  note_event(EventKind::kTouchBlock, cur_proc(), cur_thread_,
             trace::kNoSite, cell->serial);
}

void Machine::on_touch_consume(FutureCell* cell) {
  if (baseline()) return;
  if (cell->resolved_remotely) {
    on_acquire(cur_proc(), &cell->writer_written, cur_thread_);
  }
  // The toucher now carries responsibility for the body's writes: its own
  // later return-stub / resolution invalidations must cover them, or a
  // grandparent could read stale lines the grandchild wrote.
  if (cur_thread() != nullptr) {
    ProcSet merged = cur_thread()->written;
    cell->writer_written.for_each([&](ProcId p) { merged.add(p); });
    cur_thread()->written = merged;
  }
}

void Machine::destroy_cell(FutureCell* cell) {
  OLDEN_REQUIRE(cell->resolved, "destroying an unresolved future");
  cell->body.destroy();
  cell->body = nullptr;
  --cells_live_;
  if (cell->item.in_worklist) {
    cell->zombie = true;  // the work-list pop frees it
  } else {
    free_cell(cell);
  }
}

void Machine::free_cell(FutureCell* cell) {
  FutureCell* moved = cells_.back();
  cells_[cell->registry_slot] = moved;
  moved->registry_slot = cell->registry_slot;
  cells_.pop_back();
  cell_pool_.push_back(cell);  // recycle: one futurecall, zero steady-state news
}

void Machine::unlink_item(WorkItem* w) {
  w->in_worklist = false;
  if (w->cell->zombie) free_cell(w->cell);
}

void Machine::resolve_future_at_home(FutureCell* cell) {
  const ProcId home = cell->home;
  charge_to(home, cfg_.costs.remote_handler, CycleBucket::kMigration);
  cell->resolved = true;
  if (!cell->item.taken) {
    // The continuation was never stolen (the processor had other work the
    // whole time); the resolution makes it runnable as a fresh thread.
    cell->item.taken = true;
    ThreadState* nt = new_thread(home);
    ++stats_.futures_stolen;
    // The steal exists because the resolution message arrived.
    nt->obs_next_parent = cell->obs_resolve_event;
    note_event(EventKind::kFutureSteal, home, nt, trace::kNoSite,
               cell->serial, 1);
    push_ready(home, ReadyItem{cell->item.cont, nt, procs_[home].clock});
    return;
  }
  if (cell->waiter) {
    const auto waiter = cell->waiter;
    cell->waiter = nullptr;
    cell->waiter_thread->obs_next_parent = cell->obs_resolve_event;
    push_ready(cell->waiter_proc,
               ReadyItem{waiter, cell->waiter_thread, procs_[home].clock});
  }
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

ThreadState* Machine::new_thread(ProcId p) {
  threads_.emplace_back();
  ThreadState& t = threads_.back();
  t.id = next_thread_id_++;
  t.proc = p;
  // Every thread opens a fresh causal chain (thread lineage). Observability
  // only: chain ids never feed back into scheduling or costs.
  if (obs_ != nullptr) t.obs_chain = obs_->new_chain();
  return &t;
}

void Machine::post_root(std::coroutine_handle<> h) {
  ThreadState* t = new_thread(0);
  push_ready(0, ReadyItem{h, t, 0});
}

void Machine::schedule(Event e) { events_.push(std::move(e)); }

void Machine::send_message(ProcId src, Cycles wire, Event e) {
  if (fault_ == nullptr) {
    // Reliable fast path: exactly the event stream a machine without a
    // fault plane produces, cycle for cycle and seq for seq.
    schedule(std::move(e));
    return;
  }
  fault_->send(*this, src, wire, e);
}

void Machine::apply(const Event& e) {
  switch (e.kind) {
    case MsgKind::kMigrationArrive: {
      e.thread->proc = e.target;
      charge_to(e.target, cfg_.costs.migration_recv, CycleBucket::kMigration);
      if (obs_ != nullptr) {
        const Cycles latency = e.time - e.thread->obs_depart_time;
        // The arrive's causal parent is the matching depart: that edge is
        // the migration transit the critical path charges to kMigration.
        e.thread->obs_last_event = obs_->event(
            EventKind::kMigrationArrive, e.time, e.target, e.thread->id,
            trace::kNoSite, e.thread->obs_depart_proc, latency,
            e.thread->obs_chain, e.thread->obs_depart_event);
        obs_->record(trace::Hist::kMigrationLatency, latency);
      }
      on_acquire(e.target, nullptr, e.thread);
      push_ready(e.target, ReadyItem{e.h, e.thread, e.time});
      break;
    }
    case MsgKind::kReturnArrive: {
      e.thread->proc = e.target;
      charge_to(e.target, cfg_.costs.return_recv, CycleBucket::kMigration);
      if (obs_ != nullptr) {
        const Cycles latency = e.time - e.thread->obs_depart_time;
        e.thread->obs_last_event = obs_->event(
            EventKind::kReturnStubArrive, e.time, e.target, e.thread->id,
            trace::kNoSite, e.thread->obs_depart_proc, latency,
            e.thread->obs_chain, e.thread->obs_depart_event);
        obs_->record(trace::Hist::kReturnLatency, latency);
      }
      on_acquire(e.target, &e.thread->written, e.thread);
      e.thread->written.clear();
      push_ready(e.target, ReadyItem{e.h, e.thread, e.time});
      break;
    }
    case MsgKind::kResolveFuture: {
      resolve_future_at_home(e.cell);
      break;
    }
    case MsgKind::kWireDeliver: {
      fault_->on_wire_deliver(*this, e);
      break;
    }
    case MsgKind::kAckDeliver: {
      fault_->on_ack_deliver(*this, e);
      break;
    }
    case MsgKind::kRetryTimer: {
      fault_->on_retry_timer(*this, e);
      break;
    }
    case MsgKind::kFillRequest: {
      apply_fill_request(e);
      break;
    }
    case MsgKind::kFillReply: {
      apply_fill_reply(e);
      break;
    }
    case MsgKind::kInvalidatePush: {
      apply_invalidate_push(e);
      break;
    }
    case MsgKind::kTsCheckRequest: {
      apply_ts_check_request(e);
      break;
    }
    case MsgKind::kTsCheckReply: {
      apply_ts_check_reply(e);
      break;
    }
    case MsgKind::kAdaptTick: {
      apply_adapt_tick(e);
      break;
    }
  }
}

void Machine::resume_on(ProcId p, std::coroutine_handle<> h, ThreadState* t) {
  OLDEN_REQUIRE(t->proc == p, "thread resumed on the wrong processor");
  ThreadState* prev = cur_thread_;
  cur_thread_ = t;
  h.resume();
  cur_thread_ = prev;
}

void Machine::run_ready(ProcId p) {
  Proc& pr = procs_[p];
  for (;;) {
    if (!pr.ready.empty()) {
      ReadyItem it = pr.ready.front();
      pr.ready.pop_front();
      if (it.time > pr.clock) {
        // The processor sat idle until the item's arrival time.
        if (obs_ != nullptr) {
          obs_->account(p, it.time - pr.clock, CycleBucket::kIdle, it.time);
        }
        pr.clock = it.time;
      }
      resume_on(p, it.h, it.thread);
      continue;
    }
    // Idle: future stealing — pop the oldest live continuation (oldest
    // first gives the largest-granularity task, as in lazy task creation).
    WorkItem* w = nullptr;
    while (!pr.worklist.empty()) {
      WorkItem* c = pr.worklist.front();
      pr.worklist.pop_front();
      if (c->taken) {
        unlink_item(c);
        continue;
      }
      w = c;
      unlink_item(c);
      break;
    }
    if (w == nullptr) break;
    w->taken = true;
    charge_to(p, cfg_.costs.future_steal, CycleBucket::kCompute);
    ThreadState* nt = new_thread(p);
    ++stats_.futures_stolen;
    // An idle steal is enabled by the futurecall that pushed the work item.
    nt->obs_next_parent = w->cell->obs_create_event;
    note_event(EventKind::kFutureSteal, p, nt, trace::kNoSite,
               w->cell->serial, 0);
    resume_on(p, w->cont, nt);
  }
}

void Machine::drain() {
  // Hang watchdog (fault plane only): events applied since a thread last
  // made progress. A healthy protocol always turns a bounded number of
  // wire/ack/timer events back into a runnable thread; see
  // FaultPlane::kProgressBudget.
  std::uint64_t applied_without_progress = 0;
  for (;;) {
    bool ran = false;
    for (ProcId p = 0; p < cfg_.nprocs; ++p) {
      Proc& pr = procs_[p];
      while (!pr.worklist.empty() && pr.worklist.front()->taken) {
        unlink_item(pr.worklist.front());
        pr.worklist.pop_front();
      }
      if (!pr.ready.empty() || !pr.worklist.empty()) {
        run_ready(p);
        ran = true;
      }
    }
    if (ran) applied_without_progress = 0;
    if (!events_.empty()) {
      const Event e = events_.pop_min();
      apply(e);
      if (fault_ != nullptr) {
        fault_->check_progress(*this, ++applied_without_progress);
      }
      continue;
    }
    if (!ran) break;
  }
  OLDEN_REQUIRE(root_done_, "machine quiescent before the program finished");
#ifndef NDEBUG
  stats_.check_invariants();
#endif
  if (obs_ != nullptr) obs_->finish(*this);
}

Cycles Machine::makespan() const {
  Cycles m = 0;
  for (const Proc& p : procs_) m = std::max(m, p.clock);
  return m;
}

}  // namespace olden
