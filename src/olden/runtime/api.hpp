// The annotated-C surface of Olden, as C++ awaitables.
//
// An Olden program is a set of Task coroutines that touch the distributed
// heap only through these operations:
//
//   T v  = co_await rd(p, &S::field, SITE);          // pointer dereference
//          co_await wr(p, &S::field, v, SITE);       // field assignment
//   T v  = co_await rd_elem(arr, i, SITE);           // array element read
//          co_await wr_elem(arr, i, v, SITE);        // array element write
//   auto f = co_await futurecall(Proc(args...));     // parallel call
//   T v  = co_await touch(f);                        // force the future
//
// SITE is the dereference-site identifier the mechanism-selection heuristic
// decided on (migrate vs. cache); the machine consults its decision table on
// every access, exactly as the compiler-inserted test code would.
#pragma once

#include "olden/mem/global_addr.hpp"
#include "olden/runtime/machine.hpp"
#include "olden/runtime/task.hpp"

namespace olden {

namespace detail {

template <class T>
struct ReadAwaiter {
  GlobalAddr addr;
  SiteId site;
  T value{};
  bool migrated = false;

  bool await_ready() {
    return Machine::current().access(addr, &value, sizeof(T), false, site);
  }
  void await_suspend(std::coroutine_handle<> h) {
    Machine& m = Machine::current();
    if (m.take_coherent_suspend()) {
      // Fault plane: the access rides the coherence request/reply wire;
      // `value` is filled by the op before `h` resumes, so await_resume
      // has nothing left to do (migrated stays false).
      m.begin_coherent_access(addr, &value, sizeof(T), false, site, h);
      return;
    }
    migrated = true;
    m.migrate_to(addr.proc(), h, site);
  }
  T await_resume() {
    if (migrated) {
      Machine::current().finish_access_local(addr, &value, sizeof(T), false);
    }
    return value;
  }
};

template <class T>
struct WriteAwaiter {
  GlobalAddr addr;
  SiteId site;
  T value;
  bool migrated = false;

  bool await_ready() {
    return Machine::current().access(addr, &value, sizeof(T), true, site);
  }
  void await_suspend(std::coroutine_handle<> h) {
    Machine& m = Machine::current();
    if (m.take_coherent_suspend()) {
      m.begin_coherent_access(addr, &value, sizeof(T), true, site, h);
      return;
    }
    migrated = true;
    m.migrate_to(addr.proc(), h, site);
  }
  void await_resume() {
    if (migrated) {
      Machine::current().finish_access_local(addr, &value, sizeof(T), true);
    }
  }
};

}  // namespace detail

template <class S, class T>
detail::ReadAwaiter<T> rd(GPtr<S> p, T S::* field, SiteId site) {
  return {p.addr().plus(member_offset(field)), site};
}

template <class S, class T>
detail::WriteAwaiter<T> wr(GPtr<S> p, T S::* field, T v, SiteId site) {
  return {p.addr().plus(member_offset(field)), site, std::move(v)};
}

/// Element read/write on a heap array of T.
template <class T>
detail::ReadAwaiter<T> rd_elem(GPtr<T> arr, std::uint32_t i, SiteId site) {
  return {arr.at(i).addr(), site};
}

template <class T>
detail::WriteAwaiter<T> wr_elem(GPtr<T> arr, std::uint32_t i, T v,
                                SiteId site) {
  return {arr.at(i).addr(), site, std::move(v)};
}

/// Whole-structure read/write: one access moving sizeof(S) bytes (a block
/// transfer — structure assignment in the annotated C source).
template <class S>
detail::ReadAwaiter<S> rd_obj(GPtr<S> p, SiteId site) {
  return {p.addr(), site};
}

template <class S>
detail::WriteAwaiter<S> wr_obj(GPtr<S> p, S v, SiteId site) {
  return {p.addr(), site, std::move(v)};
}

// ---------------------------------------------------------------------------
// Futures
// ---------------------------------------------------------------------------

/// The programmer-visible future handle returned by futurecall. Must be
/// touched exactly once; the touch yields the body's return value.
template <class T>
class Future {
 public:
  Future() = default;
  explicit Future(FutureCell* c) : cell_(c) {}
  [[nodiscard]] FutureCell* cell() const { return cell_; }
  [[nodiscard]] bool valid() const { return cell_ != nullptr; }

 private:
  FutureCell* cell_ = nullptr;
};

namespace detail {

template <class T>
struct FuturecallAwaiter {
  typename Task<T>::handle_type body;
  FutureCell* cell = nullptr;

  bool await_ready() { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> caller) {
    Machine& m = Machine::current();
    cell = m.make_future_cell(caller, body);
    body.promise().cell = cell;
    // The body runs next, on this processor, as this thread — symmetric
    // transfer where the host supports it, so loops of futurecalls keep a
    // flat host stack.
    return m.transfer_to(body);
  }
  Future<T> await_resume() { return Future<T>(cell); }
};

template <class T>
struct TouchAwaiter {
  FutureCell* cell;

  bool await_ready() { return Machine::current().future_ready(cell); }
  void await_suspend(std::coroutine_handle<> h) {
    Machine::current().block_on_future(cell, h);
  }
  T await_resume() {
    Machine& m = Machine::current();
    m.on_touch_consume(cell);
    auto body = Task<T>::handle_type::from_address(cell->body.address());
    if constexpr (std::is_void_v<T>) {
      m.destroy_cell(cell);
    } else {
      T v = body.promise().take();
      m.destroy_cell(cell);
      return v;
    }
  }
};

}  // namespace detail

/// Annotate a call as safe to evaluate in parallel with its parent (§2).
template <class T>
detail::FuturecallAwaiter<T> futurecall(Task<T> body) {
  return {body.release()};
}

/// Force a future; must appear before the value is used (§2).
template <class T>
detail::TouchAwaiter<T> touch(Future<T> f) {
  OLDEN_REQUIRE(f.valid(), "touch of an empty future");
  return {f.cell()};
}

}  // namespace olden
