// ThreadState: the runtime identity of one Olden thread.
//
// A thread is a chain of coroutine frames (the "stack"). Migration moves
// only the thread's execution point between processors — frames stay in
// host memory, exactly as only the current stack frame moved on the CM-5.
// A fresh thread comes into being in two ways: the program's root, and
// future stealing (an idle processor popping a saved continuation).
#pragma once

#include "olden/cache/coherence.hpp"
#include "olden/support/types.hpp"
#include "olden/trace/trace.hpp"

namespace olden {

struct ThreadState {
  ThreadId id = 0;
  /// Processor the thread is currently executing on (updated on migration
  /// arrival, including return-stub migrations).
  ProcId proc = 0;
  /// Processors whose memories this thread has written since it last
  /// returned home: the return-stub invalidation optimization of §3.2
  /// invalidates only cached lines homed on these.
  ProcSet written;
  /// Pages/lines written since the last migration — the compiler-inserted
  /// write tracking of Appendix A (eager-release and bilateral schemes).
  WriteLog write_log;
  /// Number of forward migrations this thread has performed (statistics).
  std::uint64_t migrations = 0;
  /// Departure bookkeeping for trace latency attribution (observability
  /// only; written when an observer is installed, never read by the
  /// runtime's own logic).
  Cycles obs_depart_time = 0;
  ProcId obs_depart_proc = 0;
  /// Causal-chain bookkeeping (observability only, like the fields above):
  /// the chain this thread's events belong to, the id of the thread's most
  /// recent event (the default parent of its next one), an explicit
  /// one-shot parent override (set when something on another processor —
  /// a future resolution, a steal trigger — causes this thread's next
  /// event), and the id of the in-flight migration/return-stub departure.
  std::uint64_t obs_chain = trace::kNoChain;
  std::uint64_t obs_last_event = trace::kNoEvent;
  std::uint64_t obs_next_parent = trace::kNoEvent;
  std::uint64_t obs_depart_event = trace::kNoEvent;
};

}  // namespace olden
