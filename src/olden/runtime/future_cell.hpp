// FutureCell and WorkItem: the runtime side of Olden's futures (§2).
//
// futurecall saves the caller's continuation on the local work list and
// runs the body directly. Only if the body migrates away does the (now
// idle) processor pop a continuation and start executing it — "future
// stealing" — which is the only point where a new thread is created. If no
// migration occurs the body completes inline, the continuation is popped
// unexecuted, and no thread was ever made (lazy task creation).
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstdint>

#include "olden/support/types.hpp"
#include "olden/trace/trace.hpp"

namespace olden {

struct ThreadState;
struct FutureCell;

/// A stealable continuation on a processor's work list.
struct WorkItem {
  std::coroutine_handle<> cont;   ///< caller resumption point
  FutureCell* cell = nullptr;
  bool taken = false;  ///< popped (stolen, or consumed by inline return)
  /// Still referenced by a work-list deque. The cell cannot be freed while
  /// true (the lazy pruning there must be able to read `taken`); touch
  /// marks the cell a zombie instead and the pop frees it.
  bool in_worklist = false;
};

/// One outstanding future. Lives on the host heap; logically resides on the
/// processor that executed the futurecall (`home`). The body's coroutine
/// frame is owned by the cell so its promise (which holds the return value)
/// survives until the touch consumes it.
struct FutureCell {
  ProcId home = 0;
  bool resolved = false;
  /// Creation serial (1-based futurecall count), for trace attribution.
  std::uint64_t serial = 0;

  /// The future body's root coroutine; destroyed with the cell.
  std::coroutine_handle<> body;

  /// The saved caller continuation (null once taken and retired).
  WorkItem item;

  /// A thread blocked in touch, if any.
  std::coroutine_handle<> waiter;
  ThreadState* waiter_thread = nullptr;
  ProcId waiter_proc = 0;

  /// Set when the body completed on a processor other than `home`: the
  /// resolution message is then a release, and the touch that consumes the
  /// value performs the matching acquire (coherence event).
  bool resolved_remotely = false;
  /// Processors the body's thread wrote — the acquire invalidates only
  /// lines homed there (the same precision as the return-stub
  /// optimization of §3.2).
  ProcSet writer_written;

  /// Touched (value consumed, body frame destroyed) but still pinned by
  /// item.in_worklist; freed when the work list lets go.
  bool zombie = false;

  /// Index into Machine::cells_, the live-cell registry that makes
  /// teardown leak-free (cells swap-pop out when freed).
  std::size_t registry_slot = 0;

  /// Causal-chain bookkeeping (observability only): the ids of this cell's
  /// future_create and future_resolve events. A steal of the saved
  /// continuation parents on the create (idle steal) or the resolve
  /// (resolve-created steal); a blocked toucher's wake parents on the
  /// resolve.
  std::uint64_t obs_create_event = trace::kNoEvent;
  std::uint64_t obs_resolve_event = trace::kNoEvent;
};

}  // namespace olden
