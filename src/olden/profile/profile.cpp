// RunProfile accumulation + the schema-versioned profile JSON exporter.
#include "olden/profile/profile.hpp"

#include <cinttypes>
#include <cstdio>

#include "olden/trace/observer.hpp"

namespace olden::profile {

void RunProfile::count_site_access(Cycles t, SiteId site) {
  ++sites[site].timeline[interval_of(t)];
  ++intervals[interval_of(t)].accesses;
}

void RunProfile::add_access(Cycles t, SiteId site, std::uint64_t page,
                            AccessClass cls) {
  SiteProfile& s = sites[site];
  PageProfile& pg = pages[page];
  switch (cls) {
    case AccessClass::kLocalRead:
      ++s.local_reads;
      ++pg.local_accesses;
      break;
    case AccessClass::kLocalWrite:
      ++s.local_writes;
      ++pg.local_accesses;
      break;
    case AccessClass::kWriteThrough:
      ++s.write_throughs;
      ++pg.write_throughs;
      break;
  }
  count_site_access(t, site);
}

void RunProfile::add_cycles(Cycles start, Cycles end, trace::CycleBucket b) {
  if (end <= start) return;
  const std::size_t bi = static_cast<std::size_t>(b);
  const Cycles w = interval_cycles;
  for (std::uint64_t i = start / w; i <= (end - 1) / w; ++i) {
    const Cycles lo = i * w;
    const Cycles hi = lo + w;
    const Cycles slice = (end < hi ? end : hi) - (start > lo ? start : lo);
    intervals[i].cycles[bi] += slice;
  }
}

void RunProfile::on_event(trace::EventKind k, Cycles t, ProcId p, SiteId site,
                          std::uint64_t a0, std::uint64_t a1) {
  using trace::EventKind;
  switch (k) {
    case EventKind::kMigrationDepart:
      // One dereference that moved the computation to the data. arg0 is
      // the target processor; the post-migration local completion is not
      // re-counted, so the access is charged here, at departure time.
      if (site != trace::kNoSite) {
        ++sites[site].migrations;
        count_site_access(t, site);
      }
      ++intervals[interval_of(t)].migrations;
      if (p < procs.size()) ++procs[p].migrations_out;
      if (a0 < procs.size()) ++procs[a0].migrations_in;
      break;
    case EventKind::kCacheHit:
      if (site != trace::kNoSite) {
        ++sites[site].cache_hits;
        count_site_access(t, site);
      }
      ++pages[a0].cache_hits;
      break;
    case EventKind::kCacheMiss:
      if (site != trace::kNoSite) {
        ++sites[site].cache_misses;
        count_site_access(t, site);
      }
      ++pages[a0].cache_misses;
      break;
    case EventKind::kCacheLineFill:
      ++pages[a0].line_fills;
      break;
    case EventKind::kLineInvalidate:
      pages[a0].lines_invalidated += a1;
      break;
    case EventKind::kTimestampCheck:
      ++pages[a0].timestamp_checks;
      pages[a0].lines_invalidated += a1;
      break;
    case EventKind::kFutureSteal:
      ++intervals[interval_of(t)].future_steals;
      if (p < procs.size()) ++procs[p].future_steals;
      break;
    default:
      break;
  }
}

std::uint64_t RunProfile::total_accesses() const {
  std::uint64_t n = 0;
  for (const auto& [site, s] : sites) n += s.accesses();
  return n;
}

std::uint64_t RunProfile::total_migrations() const {
  std::uint64_t n = 0;
  for (const auto& [i, s] : intervals) n += s.migrations;
  return n;
}

std::uint64_t RunProfile::total_future_steals() const {
  std::uint64_t n = 0;
  for (const auto& [i, s] : intervals) n += s.future_steals;
  return n;
}

// --- profile JSON exporter --------------------------------------------------

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
}

void append_kv(std::string& out, const char* key, std::uint64_t v,
               bool comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "\"%s\":%" PRIu64 "%s", key, v,
                comma ? "," : "");
  out += buf;
}

bool write_file(const std::string& path, const std::string& body,
                std::string* err) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (err != nullptr) *err = "cannot open " + path + " for writing";
    return false;
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  if (!ok && err != nullptr) *err = "short write to " + path;
  return ok;
}

void append_site(std::string& out, const std::string& benchmark, SiteId site,
                 const SiteProfile& s) {
  out += "    {";
  append_kv(out, "site", site);
  if (!benchmark.empty()) {
    out += "\"site_uid\":\"";
    append_escaped(out, benchmark);
    char buf[32];
    std::snprintf(buf, sizeof buf, "#%u\",", site);
    out += buf;
  }
  out += "\"mechanism\":\"";
  out += to_string(s.mechanism);
  out += "\",";
  append_kv(out, "local_reads", s.local_reads);
  append_kv(out, "local_writes", s.local_writes);
  append_kv(out, "cache_hits", s.cache_hits);
  append_kv(out, "cache_misses", s.cache_misses);
  append_kv(out, "write_throughs", s.write_throughs);
  append_kv(out, "migrations", s.migrations);
  append_kv(out, "accesses", s.accesses());
  out += "\"timeline\":[";
  bool first = true;
  for (const auto& [interval, n] : s.timeline) {
    if (!first) out += ",";
    first = false;
    char buf[64];
    std::snprintf(buf, sizeof buf, "[%" PRIu64 ",%" PRIu64 "]", interval, n);
    out += buf;
  }
  out += "]}";
}

void append_run(std::string& out, const trace::RunRecord& run) {
  const RunProfile& p = run.profile;
  const auto bench_it = run.meta.find("benchmark");
  const std::string benchmark =
      bench_it == run.meta.end() ? std::string{} : bench_it->second;

  out += "  {\"label\":\"";
  append_escaped(out, run.label);
  out += "\",\"benchmark\":\"";
  append_escaped(out, benchmark);
  out += "\",";
  append_kv(out, "nprocs", run.nprocs);
  out += "\"scheme\":\"";
  append_escaped(out, run.scheme);
  out += "\",";
  out += "\"sequential_baseline\":";
  out += run.sequential_baseline ? "true," : "false,";
  append_kv(out, "makespan_cycles", run.makespan);
  append_kv(out, "interval_cycles", p.interval_cycles);
  out += "\"totals\":{";
  append_kv(out, "accesses", p.total_accesses());
  append_kv(out, "migrations", p.total_migrations());
  append_kv(out, "future_steals", p.total_future_steals(), /*comma=*/false);
  out += "},\n  \"sites\":[\n";
  bool first = true;
  for (const auto& [site, s] : p.sites) {
    if (!first) out += ",\n";
    first = false;
    append_site(out, benchmark, site, s);
  }
  out += "\n  ],\n  \"pages\":[\n";
  first = true;
  for (const auto& [page, pg] : p.pages) {
    if (!first) out += ",\n";
    first = false;
    out += "    {";
    append_kv(out, "page", page);
    append_kv(out, "local_accesses", pg.local_accesses);
    append_kv(out, "cache_hits", pg.cache_hits);
    append_kv(out, "cache_misses", pg.cache_misses);
    append_kv(out, "write_throughs", pg.write_throughs);
    append_kv(out, "line_fills", pg.line_fills);
    append_kv(out, "lines_invalidated", pg.lines_invalidated);
    append_kv(out, "timestamp_checks", pg.timestamp_checks, /*comma=*/false);
    out += "}";
  }
  out += "\n  ],\n  \"procs\":[\n";
  for (std::size_t i = 0; i < p.procs.size(); ++i) {
    if (i != 0) out += ",\n";
    out += "    {";
    append_kv(out, "proc", i);
    append_kv(out, "migrations_out", p.procs[i].migrations_out);
    append_kv(out, "migrations_in", p.procs[i].migrations_in);
    append_kv(out, "future_steals", p.procs[i].future_steals,
              /*comma=*/false);
    out += "}";
  }
  out += "\n  ],\n  \"intervals\":[\n";
  first = true;
  for (const auto& [interval, s] : p.intervals) {
    if (!first) out += ",\n";
    first = false;
    out += "    {";
    append_kv(out, "interval", interval);
    append_kv(out, "start_cycle", interval * p.interval_cycles);
    append_kv(out, "accesses", s.accesses);
    append_kv(out, "migrations", s.migrations);
    append_kv(out, "future_steals", s.future_steals);
    out += "\"cycles\":{";
    for (std::size_t b = 0; b < trace::kNumBuckets; ++b) {
      append_kv(out, to_string(static_cast<trace::CycleBucket>(b)),
                s.cycles[b], /*comma=*/b + 1 < trace::kNumBuckets);
    }
    out += "}}";
  }
  out += "\n  ]}";
}

}  // namespace

std::string profile_json(const trace::Observer& obs) {
  std::string out;
  out += "{\n";
  append_kv(out, "profile_schema_version", kProfileSchemaVersion);
  out += "\"generator\":\"olden-profile\",\n\"runs\":[\n";
  bool first = true;
  for (const trace::RunRecord& run : obs.runs()) {
    if (!first) out += ",\n";
    first = false;
    append_run(out, run);
  }
  out += "\n]}\n";
  return out;
}

bool write_profile_json(const trace::Observer& obs, const std::string& path,
                        std::string* err) {
  return write_file(path, profile_json(obs), err);
}

}  // namespace olden::profile
