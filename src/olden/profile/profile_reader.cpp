#include "olden/profile/profile_reader.hpp"

#include <cstdio>
#include <map>
#include <memory>

#include "olden/profile/profile.hpp"

namespace olden::profile {

namespace {

bool set_err(std::string* err, const std::string& msg) {
  if (err != nullptr) *err = msg;
  return false;
}

// --- a restricted JSON value + recursive-descent parser ---------------------
// Supports exactly what the profile exporter emits: objects, arrays,
// strings with the exporter's escape set, unsigned integers, true/false.
// (No floats, no null, no \uXXXX beyond control characters — the
// exporter never produces them, and rejecting the rest keeps the parser
// small and the error surface explicit.)

struct Value {
  enum class Kind { kObject, kArray, kString, kUint, kBool } kind;
  std::map<std::string, Value> object;
  std::vector<Value> array;
  std::string string;
  std::uint64_t uint = 0;
  bool boolean = false;
};

class Parser {
 public:
  Parser(const std::string& text, std::string* err)
      : text_(text), err_(err) {}

  bool parse(Value* out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing bytes after document");
    return true;
  }

 private:
  bool fail(const std::string& msg) {
    return set_err(err_, "profile JSON byte " + std::to_string(pos_) + ": " +
                             msg);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool expect(char ch) {
    if (pos_ >= text_.size() || text_[pos_] != ch) {
      return fail(std::string("expected '") + ch + "'");
    }
    ++pos_;
    return true;
  }

  bool parse_value(Value* out) {
    if (pos_ >= text_.size()) return fail("unexpected end of document");
    const char ch = text_[pos_];
    if (ch == '{') return parse_object(out);
    if (ch == '[') return parse_array(out);
    if (ch == '"') return parse_string(out);
    if (ch >= '0' && ch <= '9') return parse_uint(out);
    if (ch == 't' || ch == 'f') return parse_bool(out);
    return fail(std::string("unexpected character '") + ch + "'");
  }

  bool parse_object(Value* out) {
    out->kind = Value::Kind::kObject;
    if (!expect('{')) return false;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      Value key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      Value val;
      if (!parse_value(&val)) return false;
      out->object.emplace(std::move(key.string), std::move(val));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return expect('}');
    }
  }

  bool parse_array(Value* out) {
    out->kind = Value::Kind::kArray;
    if (!expect('[')) return false;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      Value val;
      if (!parse_value(&val)) return false;
      out->array.push_back(std::move(val));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return expect(']');
    }
  }

  bool parse_string(Value* out) {
    out->kind = Value::Kind::kString;
    if (!expect('"')) return false;
    while (pos_ < text_.size()) {
      const char ch = text_[pos_++];
      if (ch == '"') return true;
      if (ch == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out->string += '"'; break;
          case '\\': out->string += '\\'; break;
          case 'n': out->string += '\n'; break;
          case 't': out->string += '\t'; break;
          case 'r': out->string += '\r'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else
                return fail("bad \\u escape digit");
            }
            if (code > 0x7f) return fail("non-ASCII \\u escape unsupported");
            out->string += static_cast<char>(code);
            break;
          }
          default:
            return fail(std::string("unsupported escape '\\") + esc + "'");
        }
      } else {
        out->string += ch;
      }
    }
    return fail("unterminated string");
  }

  bool parse_uint(Value* out) {
    out->kind = Value::Kind::kUint;
    std::uint64_t v = 0;
    std::size_t digits = 0;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      const std::uint64_t d = static_cast<std::uint64_t>(text_[pos_] - '0');
      if (v > (~std::uint64_t{0} - d) / 10) return fail("integer overflow");
      v = v * 10 + d;
      ++pos_;
      ++digits;
    }
    if (digits == 0) return fail("expected digits");
    if (pos_ < text_.size() &&
        (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
      return fail("floating-point numbers unsupported");
    }
    out->uint = v;
    return true;
  }

  bool parse_bool(Value* out) {
    out->kind = Value::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->boolean = false;
      pos_ += 5;
      return true;
    }
    return fail("expected true/false");
  }

  const std::string& text_;
  std::string* err_;
  std::size_t pos_ = 0;
};

// --- mapping the parsed tree onto the document structs ----------------------

bool get_field(const Value& obj, const char* key, const Value** out,
               std::string* err, const char* where) {
  const auto it = obj.object.find(key);
  if (it == obj.object.end()) {
    return set_err(err, std::string(where) + ": missing field \"" + key +
                            "\"");
  }
  *out = &it->second;
  return true;
}

bool get_uint(const Value& obj, const char* key, std::uint64_t* out,
              std::string* err, const char* where) {
  const Value* v = nullptr;
  if (!get_field(obj, key, &v, err, where)) return false;
  if (v->kind != Value::Kind::kUint) {
    return set_err(err, std::string(where) + ": field \"" + key +
                            "\" is not an unsigned integer");
  }
  *out = v->uint;
  return true;
}

bool get_string(const Value& obj, const char* key, std::string* out,
                std::string* err, const char* where) {
  const Value* v = nullptr;
  if (!get_field(obj, key, &v, err, where)) return false;
  if (v->kind != Value::Kind::kString) {
    return set_err(err,
                   std::string(where) + ": field \"" + key + "\" is not a "
                                                             "string");
  }
  *out = v->string;
  return true;
}

/// Optional string field (site_uid is omitted for unattributed runs).
void get_string_opt(const Value& obj, const char* key, std::string* out) {
  const auto it = obj.object.find(key);
  if (it != obj.object.end() && it->second.kind == Value::Kind::kString) {
    *out = it->second.string;
  }
}

bool get_array(const Value& obj, const char* key, const Value** out,
               std::string* err, const char* where) {
  if (!get_field(obj, key, out, err, where)) return false;
  if ((*out)->kind != Value::Kind::kArray) {
    return set_err(err, std::string(where) + ": field \"" + key +
                            "\" is not an array");
  }
  return true;
}

bool map_site(const Value& v, SiteRow* out, std::string* err) {
  if (v.kind != Value::Kind::kObject) {
    return set_err(err, "site row is not an object");
  }
  std::uint64_t site = 0;
  if (!get_uint(v, "site", &site, err, "site row") ||
      !get_uint(v, "local_reads", &out->local_reads, err, "site row") ||
      !get_uint(v, "local_writes", &out->local_writes, err, "site row") ||
      !get_uint(v, "cache_hits", &out->cache_hits, err, "site row") ||
      !get_uint(v, "cache_misses", &out->cache_misses, err, "site row") ||
      !get_uint(v, "write_throughs", &out->write_throughs, err, "site row") ||
      !get_uint(v, "migrations", &out->migrations, err, "site row") ||
      !get_uint(v, "accesses", &out->accesses, err, "site row") ||
      !get_string(v, "mechanism", &out->mechanism, err, "site row")) {
    return false;
  }
  out->site = static_cast<SiteId>(site);
  get_string_opt(v, "site_uid", &out->site_uid);
  if (out->mechanism != "migrate" && out->mechanism != "cache") {
    return set_err(err, "site row: bad mechanism \"" + out->mechanism + "\"");
  }
  const Value* tl = nullptr;
  if (!get_array(v, "timeline", &tl, err, "site row")) return false;
  for (const Value& pair : tl->array) {
    if (pair.kind != Value::Kind::kArray || pair.array.size() != 2 ||
        pair.array[0].kind != Value::Kind::kUint ||
        pair.array[1].kind != Value::Kind::kUint) {
      return set_err(err, "site row: timeline entries must be "
                          "[interval, accesses] integer pairs");
    }
    out->timeline.emplace_back(pair.array[0].uint, pair.array[1].uint);
  }
  return true;
}

bool map_page(const Value& v, PageRow* out, std::string* err) {
  if (v.kind != Value::Kind::kObject) {
    return set_err(err, "page row is not an object");
  }
  return get_uint(v, "page", &out->page, err, "page row") &&
         get_uint(v, "local_accesses", &out->local_accesses, err,
                  "page row") &&
         get_uint(v, "cache_hits", &out->cache_hits, err, "page row") &&
         get_uint(v, "cache_misses", &out->cache_misses, err, "page row") &&
         get_uint(v, "write_throughs", &out->write_throughs, err,
                  "page row") &&
         get_uint(v, "line_fills", &out->line_fills, err, "page row") &&
         get_uint(v, "lines_invalidated", &out->lines_invalidated, err,
                  "page row") &&
         get_uint(v, "timestamp_checks", &out->timestamp_checks, err,
                  "page row");
}

bool map_proc(const Value& v, ProcRow* out, std::string* err) {
  if (v.kind != Value::Kind::kObject) {
    return set_err(err, "proc row is not an object");
  }
  return get_uint(v, "proc", &out->proc, err, "proc row") &&
         get_uint(v, "migrations_out", &out->migrations_out, err,
                  "proc row") &&
         get_uint(v, "migrations_in", &out->migrations_in, err, "proc row") &&
         get_uint(v, "future_steals", &out->future_steals, err, "proc row");
}

bool map_interval(const Value& v, IntervalRow* out, std::string* err) {
  if (v.kind != Value::Kind::kObject) {
    return set_err(err, "interval row is not an object");
  }
  if (!get_uint(v, "interval", &out->interval, err, "interval row") ||
      !get_uint(v, "start_cycle", &out->start_cycle, err, "interval row") ||
      !get_uint(v, "accesses", &out->accesses, err, "interval row") ||
      !get_uint(v, "migrations", &out->migrations, err, "interval row") ||
      !get_uint(v, "future_steals", &out->future_steals, err,
                "interval row")) {
    return false;
  }
  const Value* cyc = nullptr;
  if (!get_field(v, "cycles", &cyc, err, "interval row")) return false;
  if (cyc->kind != Value::Kind::kObject) {
    return set_err(err, "interval row: \"cycles\" is not an object");
  }
  for (std::size_t b = 0; b < trace::kNumBuckets; ++b) {
    if (!get_uint(*cyc, to_string(static_cast<trace::CycleBucket>(b)),
                  &out->cycles[b], err, "interval cycles")) {
      return false;
    }
  }
  return true;
}

bool map_run(const Value& v, ProfileRun* out, std::string* err) {
  if (v.kind != Value::Kind::kObject) {
    return set_err(err, "run entry is not an object");
  }
  std::uint64_t nprocs = 0;
  if (!get_string(v, "label", &out->label, err, "run") ||
      !get_string(v, "benchmark", &out->benchmark, err, "run") ||
      !get_string(v, "scheme", &out->scheme, err, "run") ||
      !get_uint(v, "nprocs", &nprocs, err, "run") ||
      !get_uint(v, "makespan_cycles", &out->makespan_cycles, err, "run") ||
      !get_uint(v, "interval_cycles", &out->interval_cycles, err, "run")) {
    return false;
  }
  out->nprocs = static_cast<std::uint32_t>(nprocs);
  const Value* base = nullptr;
  if (!get_field(v, "sequential_baseline", &base, err, "run")) return false;
  if (base->kind != Value::Kind::kBool) {
    return set_err(err, "run: \"sequential_baseline\" is not a bool");
  }
  out->sequential_baseline = base->boolean;
  if (out->interval_cycles == 0) {
    return set_err(err, "run " + out->label + ": interval_cycles must be > 0");
  }
  const Value* totals = nullptr;
  if (!get_field(v, "totals", &totals, err, "run")) return false;
  if (totals->kind != Value::Kind::kObject) {
    return set_err(err, "run: \"totals\" is not an object");
  }
  if (!get_uint(*totals, "accesses", &out->total_accesses, err, "totals") ||
      !get_uint(*totals, "migrations", &out->total_migrations, err,
                "totals") ||
      !get_uint(*totals, "future_steals", &out->total_future_steals, err,
                "totals")) {
    return false;
  }
  const Value* arr = nullptr;
  if (!get_array(v, "sites", &arr, err, "run")) return false;
  for (const Value& e : arr->array) {
    SiteRow row;
    if (!map_site(e, &row, err)) return false;
    out->sites.push_back(std::move(row));
  }
  if (!get_array(v, "pages", &arr, err, "run")) return false;
  for (const Value& e : arr->array) {
    PageRow row;
    if (!map_page(e, &row, err)) return false;
    out->pages.push_back(row);
  }
  if (!get_array(v, "procs", &arr, err, "run")) return false;
  for (const Value& e : arr->array) {
    ProcRow row;
    if (!map_proc(e, &row, err)) return false;
    out->procs.push_back(row);
  }
  if (!get_array(v, "intervals", &arr, err, "run")) return false;
  for (const Value& e : arr->array) {
    IntervalRow row;
    if (!map_interval(e, &row, err)) return false;
    out->intervals.push_back(row);
  }
  return true;
}

}  // namespace

bool parse_profile_json(const std::string& text, ProfileDoc* doc,
                        std::string* err) {
  // The tree is heap-allocated child-by-child, but depth is bounded by the
  // parser's recursion; profile documents nest at most 5 deep.
  auto root = std::make_unique<Value>();
  Parser parser(text, err);
  if (!parser.parse(root.get())) return false;
  if (root->kind != Value::Kind::kObject) {
    return set_err(err, "profile document is not a JSON object");
  }
  std::uint64_t version = 0;
  if (!get_uint(*root, "profile_schema_version", &version, err, "document")) {
    return false;
  }
  doc->schema_version = static_cast<int>(version);
  if (version != static_cast<std::uint64_t>(kProfileSchemaVersion)) {
    return set_err(err, "unsupported profile_schema_version " +
                            std::to_string(version) + " (this reader speaks " +
                            std::to_string(kProfileSchemaVersion) + ")");
  }
  std::string generator;
  if (!get_string(*root, "generator", &generator, err, "document")) {
    return false;
  }
  if (generator != "olden-profile") {
    return set_err(err, "document generator \"" + generator +
                            "\" is not olden-profile");
  }
  const Value* runs = nullptr;
  if (!get_array(*root, "runs", &runs, err, "document")) return false;
  for (const Value& e : runs->array) {
    ProfileRun run;
    if (!map_run(e, &run, err)) return false;
    doc->runs.push_back(std::move(run));
  }
  return true;
}

bool load_profile_file(const std::string& path, ProfileDoc* doc,
                       std::string* err) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return set_err(err, "cannot open " + path);
  std::string text;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) return set_err(err, "read error on " + path);
  std::string perr;
  if (!parse_profile_json(text, doc, &perr)) {
    return set_err(err, path + ": " + perr);
  }
  return true;
}

}  // namespace olden::profile
