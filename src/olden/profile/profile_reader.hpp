// Reader for the profile JSON documents profile_json() emits, used by
// `olden-analyze --profile`. A small recursive-descent JSON parser
// (objects, arrays, strings, unsigned integers, bools) maps the document
// onto plain structs; anything malformed — bad JSON, a missing field, a
// wrong type, an unknown profile_schema_version — is rejected with a
// descriptive error, never a crash (mirroring the adversarial posture of
// the binary-trace reader).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "olden/support/types.hpp"
#include "olden/trace/trace.hpp"

namespace olden::profile {

struct SiteRow {
  SiteId site = 0;
  std::string site_uid;  ///< "<benchmark>#<site>"; empty if unattributed
  std::string mechanism;  ///< "migrate" or "cache"
  std::uint64_t local_reads = 0;
  std::uint64_t local_writes = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t write_throughs = 0;
  std::uint64_t migrations = 0;
  std::uint64_t accesses = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> timeline;
};

struct PageRow {
  std::uint64_t page = 0;
  std::uint64_t local_accesses = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t write_throughs = 0;
  std::uint64_t line_fills = 0;
  std::uint64_t lines_invalidated = 0;
  std::uint64_t timestamp_checks = 0;

  [[nodiscard]] std::uint64_t remote_accesses() const {
    return cache_hits + cache_misses + write_throughs;
  }
};

struct ProcRow {
  std::uint64_t proc = 0;
  std::uint64_t migrations_out = 0;
  std::uint64_t migrations_in = 0;
  std::uint64_t future_steals = 0;
};

struct IntervalRow {
  std::uint64_t interval = 0;
  std::uint64_t start_cycle = 0;
  std::uint64_t accesses = 0;
  std::uint64_t migrations = 0;
  std::uint64_t future_steals = 0;
  std::array<std::uint64_t, trace::kNumBuckets> cycles{};
};

struct ProfileRun {
  std::string label;
  std::string benchmark;
  std::string scheme;
  std::uint32_t nprocs = 0;
  bool sequential_baseline = false;
  std::uint64_t makespan_cycles = 0;
  std::uint64_t interval_cycles = 0;
  std::uint64_t total_accesses = 0;
  std::uint64_t total_migrations = 0;
  std::uint64_t total_future_steals = 0;
  std::vector<SiteRow> sites;
  std::vector<PageRow> pages;
  std::vector<ProcRow> procs;
  std::vector<IntervalRow> intervals;
};

struct ProfileDoc {
  int schema_version = 0;
  std::vector<ProfileRun> runs;
};

/// Parse a profile JSON document. Returns false with *err set on any
/// malformation; an unsupported profile_schema_version reports the version
/// it found and still fills doc->schema_version.
bool parse_profile_json(const std::string& text, ProfileDoc* doc,
                        std::string* err = nullptr);

/// parse_profile_json() for the contents of `path`.
bool load_profile_file(const std::string& path, ProfileDoc* doc,
                       std::string* err = nullptr);

}  // namespace olden::profile
