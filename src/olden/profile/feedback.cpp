#include "olden/profile/feedback.hpp"

#include <cstdio>
#include <sstream>
#include <vector>

namespace olden::profile {

namespace {

/// Split on runs of spaces/tabs; never returns empty tokens.
std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : line) {
    if (ch == ' ' || ch == '\t') {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += ch;
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

bool set_err(std::string* err, const std::string& msg) {
  if (err != nullptr) *err = msg;
  return false;
}

}  // namespace

bool FeedbackTable::parse(const std::string& text, std::string* err) {
  std::map<std::pair<std::string, SiteId>, Mechanism> rows;
  // First line number each (benchmark, site) key appeared on, so a
  // duplicate row can name both offending lines in its error.
  std::map<std::pair<std::string, SiteId>, int> first_line;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  bool saw_header = false;
  const std::string header =
      "# olden-profile-feedback v" + std::to_string(kFeedbackVersion);
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::string stripped = line;
    while (!stripped.empty() && (stripped.front() == ' ' ||
                                 stripped.front() == '\t')) {
      stripped.erase(stripped.begin());
    }
    if (stripped.empty()) continue;
    if (!saw_header) {
      // The first non-blank line names the format version; anything else
      // (including an unknown version) is rejected so stale files fail
      // loudly instead of silently changing mechanism tables.
      if (stripped != header) {
        return set_err(err, "feedback line " + std::to_string(lineno) +
                                ": expected header \"" + header + "\", got \"" +
                                stripped + "\"");
      }
      saw_header = true;
      continue;
    }
    if (stripped.front() == '#') continue;
    const std::vector<std::string> tok = split_ws(stripped);
    if (tok.size() != 3) {
      return set_err(err, "feedback line " + std::to_string(lineno) +
                              ": expected \"benchmark site mechanism\", got \"" +
                              stripped + "\"");
    }
    unsigned long long site = 0;
    char extra = 0;
    if (std::sscanf(tok[1].c_str(), "%llu%c", &site, &extra) != 1 ||
        site > 0xfffffffeull) {
      return set_err(err, "feedback line " + std::to_string(lineno) +
                              ": bad site index \"" + tok[1] + "\"");
    }
    Mechanism m;
    if (tok[2] == "migrate") {
      m = Mechanism::kMigrate;
    } else if (tok[2] == "cache") {
      m = Mechanism::kCache;
    } else {
      return set_err(err, "feedback line " + std::to_string(lineno) +
                              ": bad mechanism \"" + tok[2] +
                              "\" (want migrate|cache)");
    }
    const std::pair<std::string, SiteId> key{tok[0],
                                             static_cast<SiteId>(site)};
    // Two rows for one site mean the file was merged or hand-edited
    // badly; silently keeping either would apply a mechanism nobody
    // reviewed, so duplicates are a structured error, not last-wins.
    if (const auto dup = first_line.find(key); dup != first_line.end()) {
      return set_err(err, "feedback line " + std::to_string(lineno) +
                              ": duplicate row for " + tok[0] + "#" + tok[1] +
                              " (first defined on line " +
                              std::to_string(dup->second) + ")");
    }
    first_line[key] = lineno;
    rows[key] = m;
  }
  if (!saw_header) return set_err(err, "feedback file is empty (no header)");
  rows_ = std::move(rows);
  return true;
}

bool FeedbackTable::load(const std::string& path, std::string* err) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return set_err(err, "cannot open " + path);
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) return set_err(err, "read error on " + path);
  std::string perr;
  if (!parse(text, &perr)) return set_err(err, path + ": " + perr);
  return true;
}

bool parse_heuristic_spec(const std::string& spec, FeedbackTable* out,
                          bool* use_feedback, std::string* err) {
  *use_feedback = false;
  if (spec == "static") return true;
  const std::string prefix = "profile:";
  if (spec.rfind(prefix, 0) != 0) {
    return set_err(err, "bad --heuristic value \"" + spec +
                            "\" (want static or profile:FILE)");
  }
  const std::string path = spec.substr(prefix.size());
  if (path.empty()) {
    return set_err(err, "--heuristic=profile: needs a feedback file path");
  }
  if (!out->load(path, err)) return false;
  *use_feedback = true;
  return true;
}

}  // namespace olden::profile
