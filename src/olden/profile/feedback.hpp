// Profile-guided feedback: per-site mechanism overrides learned from a
// profiled run.
//
// `olden-analyze --profile P.json --feedback-out F.txt` emits a plain-text
// table of recommended mechanisms; bench binaries accept it back through
// `--heuristic=profile:F.txt`, overriding the static heuristic per
// (benchmark, site) — the minimal offline feedback loop (so Table 2 can be
// rerun with learned decisions against the paper's static ones).
//
// File format (docs/PROFILING.md):
//
//   # olden-profile-feedback v1
//   # benchmark site mechanism
//   TreeAdd 0 migrate
//   Health 2 cache
//
// The first non-blank line must be the version header. Later '#' lines
// are comments. Rows are whitespace-separated; a duplicate
// (benchmark, site) row is a parse error naming both lines — two rows
// for one site means the file was merged or hand-edited badly, and
// silently keeping either one would apply a mechanism nobody reviewed.
// Sites are joined by the stable (benchmark, site-index) identifiers
// that heuristic dumps and profile rows both carry (e.g. "TreeAdd#0");
// a row whose site index falls outside the benchmark's site table (a
// stale file from an older build) is reported as a warning by the
// consumer (Benchmark::site_table) and otherwise ignored.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "olden/support/types.hpp"

namespace olden::profile {

/// Version expected in the feedback-file header line.
inline constexpr int kFeedbackVersion = 1;

class FeedbackTable {
 public:
  /// Parse a feedback document; on failure returns false and leaves the
  /// table unchanged, describing the problem (with a line number) in *err.
  bool parse(const std::string& text, std::string* err = nullptr);
  /// parse() for the contents of `path`.
  bool load(const std::string& path, std::string* err = nullptr);

  void set(const std::string& benchmark, SiteId site, Mechanism m) {
    rows_[{benchmark, site}] = m;
  }

  /// The override for (benchmark, site), if the table has one.
  [[nodiscard]] std::optional<Mechanism> lookup(const std::string& benchmark,
                                                SiteId site) const {
    const auto it = rows_.find({benchmark, site});
    if (it == rows_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] std::size_t size() const { return rows_.size(); }
  [[nodiscard]] bool empty() const { return rows_.empty(); }

  /// "Benchmark#site" uids of rows for `benchmark` whose site index is
  /// >= num_sites — stale entries from a file generated against an older
  /// build of the benchmark. Consumers warn (naming the token) and skip
  /// them; lookup() never returns such a row a mechanism table would use,
  /// because callers only probe sites below num_sites.
  [[nodiscard]] std::vector<std::string> stale_uids(
      const std::string& benchmark, std::size_t num_sites) const {
    std::vector<std::string> out;
    for (const auto& [key, m] : rows_) {
      (void)m;
      if (key.first == benchmark && key.second >= num_sites) {
        out.push_back(key.first + "#" + std::to_string(key.second));
      }
    }
    return out;
  }

  [[nodiscard]] const std::map<std::pair<std::string, SiteId>, Mechanism>&
  rows() const {
    return rows_;
  }

 private:
  std::map<std::pair<std::string, SiteId>, Mechanism> rows_;
};

/// Parse a `--heuristic=SPEC` value: "static" leaves *use_feedback false;
/// "profile:FILE" loads FILE into *out and sets *use_feedback. Returns
/// false (with *err set) on an unknown spec or an unreadable/invalid file.
bool parse_heuristic_spec(const std::string& spec, FeedbackTable* out,
                          bool* use_feedback, std::string* err = nullptr);

}  // namespace olden::profile
