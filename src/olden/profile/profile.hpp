// profile — the interval-sampled profiling plane.
//
// A RunProfile accumulates per-dereference-site, per-page, per-processor
// and per-interval counters while a Machine runs, driven entirely from the
// trace::Observer hooks the runtime already calls. Nothing here touches
// virtual time: the profiler only *reads* the clocks the runtime advanced
// (the zero-perturbation A/B tests in tests/profile_test.cpp and
// tests/observability_determinism_test.cpp hold it to that — with
// profiling enabled, traces are byte-identical to profiling-off runs and
// every makespan/counter is unchanged).
//
// Time is divided into fixed-width intervals of `interval_cycles` virtual
// cycles; interval i covers [i*W, (i+1)*W). Discrete occurrences (an
// access, a migration, a steal) are binned at the virtual time they fire;
// cycle charges are split exactly across the interval boundaries they
// span, so per-interval bucket cycles always sum to nprocs * makespan.
//
// The output is schema-versioned profile JSON (profile_json() below,
// validated by `tools/check_stats_schema.py --profile`) which
// `olden-analyze --profile` turns into page-heat rankings, phase-change
// reports and the heuristic scoreboard. See docs/PROFILING.md.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "olden/support/types.hpp"
#include "olden/trace/trace.hpp"

namespace olden::trace {
class Observer;
}  // namespace olden::trace

namespace olden::profile {

/// Bumped whenever the profile JSON layout changes incompatibly.
/// `check_stats_schema.py --profile` rejects unknown versions with exit 2.
inline constexpr int kProfileSchemaVersion = 1;

/// Default sampling interval width, in virtual cycles. Tiny runs span a
/// handful of intervals; paper-size runs a few tens of thousands.
inline constexpr Cycles kDefaultIntervalCycles = 65536;

/// How one profiled access resolved. Local/write-through classes are fed
/// by dedicated Machine hooks (no trace event exists for them); hits,
/// misses and migrations are tapped off the event stream.
enum class AccessClass : std::uint8_t {
  kLocalRead,     ///< home-local dereference (no mechanism engaged)
  kLocalWrite,
  kWriteThrough,  ///< remote cached write (forwarded to the home copy)
};

/// Whole-run heat totals plus a sparse access timeline for one site.
/// `accesses()` counts every dereference executed at the site:
/// local + hits + misses + write-throughs + migrations. A migrated
/// access is counted once, at departure time on the source processor
/// (the post-migration local completion is not re-counted).
struct SiteProfile {
  std::uint64_t local_reads = 0;
  std::uint64_t local_writes = 0;
  std::uint64_t cache_hits = 0;      ///< remote reads served by the cache
  std::uint64_t cache_misses = 0;    ///< remote reads that fetched lines
  std::uint64_t write_throughs = 0;  ///< remote writes through the cache
  std::uint64_t migrations = 0;      ///< accesses that migrated the thread
  /// Mechanism the compile-time heuristic chose for this site (snapshotted
  /// from the Machine's decision table when the run finishes).
  Mechanism mechanism = Mechanism::kMigrate;
  /// interval index -> accesses binned in that interval. Sparse; entry
  /// values sum to accesses().
  std::map<std::uint64_t, std::uint64_t> timeline;

  [[nodiscard]] std::uint64_t accesses() const {
    return local_reads + local_writes + cache_hits + cache_misses +
           write_throughs + migrations;
  }
};

/// Whole-run heat totals for one global page.
struct PageProfile {
  std::uint64_t local_accesses = 0;  ///< home-local dereferences of the page
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t write_throughs = 0;
  std::uint64_t line_fills = 0;
  std::uint64_t lines_invalidated = 0;  ///< push-invalidated + stale-dropped
  std::uint64_t timestamp_checks = 0;   ///< bilateral revalidations

  [[nodiscard]] std::uint64_t remote_accesses() const {
    return cache_hits + cache_misses + write_throughs;
  }
};

/// Per-processor migration / steal totals.
struct ProcProfile {
  std::uint64_t migrations_out = 0;  ///< departures from this processor
  std::uint64_t migrations_in = 0;   ///< arrivals at this processor
  std::uint64_t future_steals = 0;   ///< futures stolen by this processor
};

/// One sampling interval's machine-wide activity.
struct IntervalSample {
  std::uint64_t accesses = 0;       ///< site accesses binned here
  std::uint64_t migrations = 0;     ///< departures binned here
  std::uint64_t future_steals = 0;
  /// Cycles charged inside this interval, per bucket, summed over all
  /// processors. Across all intervals these sum to nprocs * makespan.
  std::array<std::uint64_t, trace::kNumBuckets> cycles{};
};

/// Everything the profiling plane records about one Machine run. Lives
/// inside trace::RunRecord so Observer::adopt_run merges worker profiles
/// byte-identically to a serial run.
struct RunProfile {
  bool enabled = false;
  Cycles interval_cycles = kDefaultIntervalCycles;

  std::map<SiteId, SiteProfile> sites;
  std::map<std::uint64_t, PageProfile> pages;
  std::map<std::uint64_t, IntervalSample> intervals;
  std::vector<ProcProfile> procs;

  [[nodiscard]] std::uint64_t interval_of(Cycles t) const {
    return t / interval_cycles;
  }

  /// One local or write-through access at `site` touching `page`, binned
  /// at virtual time `t` (the post-charge clock, matching event stamps).
  void add_access(Cycles t, SiteId site, std::uint64_t page, AccessClass cls);

  /// Split `end - start` cycles of bucket `b` exactly across the
  /// intervals the span [start, end) overlaps.
  void add_cycles(Cycles start, Cycles end, trace::CycleBucket b);

  /// Event-stream tap: hits, misses, fills, invalidations, timestamp
  /// checks, migrations and future steals all ride on events the runtime
  /// already emits.
  void on_event(trace::EventKind k, Cycles t, ProcId p, SiteId site,
                std::uint64_t a0, std::uint64_t a1);

  /// Total site accesses (== every interval's accesses summed).
  [[nodiscard]] std::uint64_t total_accesses() const;
  [[nodiscard]] std::uint64_t total_migrations() const;
  [[nodiscard]] std::uint64_t total_future_steals() const;

 private:
  void count_site_access(Cycles t, SiteId site);
};

// --- exporter (profile.cpp) -------------------------------------------------

/// The schema-versioned profile JSON document for every run the observer
/// recorded (layout documented in docs/PROFILING.md). Deterministic:
/// integers only, map-ordered rows.
[[nodiscard]] std::string profile_json(const trace::Observer& obs);
bool write_profile_json(const trace::Observer& obs, const std::string& path,
                        std::string* err = nullptr);

}  // namespace olden::profile
