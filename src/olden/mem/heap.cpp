#include "olden/mem/heap.hpp"

namespace olden {

namespace {
// Sections grow in 1 MB steps so a 32-processor machine holding a small
// benchmark does not reserve 2 GB up front.
constexpr std::uint32_t kGrowChunk = 1u << 20;
}  // namespace

DistHeap::DistHeap(ProcId nprocs) : sections_(nprocs) {
  OLDEN_REQUIRE(nprocs >= 1 && nprocs <= kMaxProcs,
                "machine size out of range");
  // Local offset 0 on processor 0 would encode the null pointer; burn the
  // first line of every section so no allocation ever aliases null.
  for (auto& s : sections_) s.top = kLineBytes;
}

GlobalAddr DistHeap::allocate(ProcId proc, std::uint32_t size,
                              std::uint32_t align) {
  OLDEN_REQUIRE(proc < sections_.size(), "ALLOC on a nonexistent processor");
  OLDEN_REQUIRE(size > 0, "zero-byte allocation");
  OLDEN_REQUIRE(align > 0 && (align & (align - 1)) == 0 &&
                    align <= kLineBytes,
                "alignment must be a power of two no larger than a line");
  Section& s = sections_[proc];
  const std::uint32_t base = (s.top + align - 1) & ~(align - 1);
  const std::uint32_t end = base + size;
  OLDEN_REQUIRE(end <= kMaxLocalBytes, "processor heap section exhausted");
  if (end > s.storage.size()) {
    std::uint32_t want = static_cast<std::uint32_t>(s.storage.size());
    while (want < end) want += kGrowChunk;
    s.storage.resize(want);
  }
  s.top = end;
  return GlobalAddr::make(proc, base);
}

const std::byte* DistHeap::line_home(GlobalAddr line_base) const {
  const Section& s = sections_[line_base.proc()];
  OLDEN_REQUIRE(line_base.local() % kLineBytes == 0, "not a line base");
  OLDEN_REQUIRE(line_base.local() < s.top,
                "line fetch outside the owning heap section");
  OLDEN_REQUIRE(line_base.local() + kLineBytes <= s.storage.size(),
                "heap storage not line-padded");
  return s.storage.data() + line_base.local();
}

}  // namespace olden
