// The distributed heap: one section per processor, carved into 2 KB pages.
//
// This is the memory the paper's ALLOC library routine manages (§2): the
// caller names a processor, the allocator bumps that processor's section and
// returns a global address encoding <proc, local>. Home memory is the
// authoritative copy — the software cache is write-through, so a processor's
// section always holds the current value of every word it owns.
#pragma once

#include <cstddef>
#include <vector>

#include "olden/mem/global_addr.hpp"
#include "olden/support/require.hpp"
#include "olden/support/types.hpp"

namespace olden {

class DistHeap {
 public:
  explicit DistHeap(ProcId nprocs);

  /// Allocate `size` bytes on processor `proc`, aligned to `align`
  /// (a power of two, at most one line). Never returns a null address.
  GlobalAddr allocate(ProcId proc, std::uint32_t size, std::uint32_t align);

  /// Host pointer to the authoritative (home) copy of `a`. The `size`
  /// bytes starting at `a` must lie inside the owning section. Inline:
  /// every simulated heap access (millions per run) lands here.
  [[nodiscard]] std::byte* home_ptr(GlobalAddr a, std::uint32_t size) {
    Section& s = sections_[a.proc()];
    OLDEN_REQUIRE(!a.is_null(), "dereference of a null global pointer");
    OLDEN_REQUIRE(a.local() + size <= s.top,
                  "global address outside the owning heap section");
    return s.storage.data() + a.local();
  }
  [[nodiscard]] const std::byte* home_ptr(GlobalAddr a,
                                          std::uint32_t size) const {
    return const_cast<DistHeap*>(this)->home_ptr(a, size);
  }

  /// Host pointer to a whole 64-byte line for cache fills. Unlike
  /// home_ptr, the line's tail may extend past the bump pointer (a line
  /// fetch moves whole lines regardless of object boundaries); storage is
  /// always sized in line multiples, so the read stays in bounds.
  [[nodiscard]] const std::byte* line_home(GlobalAddr line_base) const;

  [[nodiscard]] ProcId nprocs() const {
    return static_cast<ProcId>(sections_.size());
  }
  [[nodiscard]] std::uint32_t bytes_used(ProcId proc) const {
    return sections_[proc].top;
  }

 private:
  struct Section {
    std::vector<std::byte> storage;
    std::uint32_t top = 0;  // bump pointer (local offset)
  };

  std::vector<Section> sections_;
};

}  // namespace olden
