// Global heap addresses: the <processor, local address> pair of the paper,
// encoded in a single 32-bit word (§2). The top 6 bits name the processor,
// the low 26 bits are a byte offset into that processor's heap section.
//
// Page and line geometry follow §3.2: allocation at 2 KB page granularity,
// transfers at 64-byte line granularity (32 lines per page).
#pragma once

#include <cstdint>

#include "olden/support/require.hpp"
#include "olden/support/types.hpp"

namespace olden {

inline constexpr std::uint32_t kPageBytes = 2048;
inline constexpr std::uint32_t kLineBytes = 64;
inline constexpr std::uint32_t kLinesPerPage = kPageBytes / kLineBytes;  // 32

inline constexpr int kProcShift = 26;
inline constexpr std::uint32_t kLocalMask = (1u << kProcShift) - 1;
inline constexpr std::uint32_t kMaxLocalBytes = 1u << kProcShift;  // 64 MB

/// A raw global heap address. Value 0 is the null pointer (processor 0's
/// heap never hands out offset 0).
class GlobalAddr {
 public:
  constexpr GlobalAddr() = default;
  constexpr explicit GlobalAddr(std::uint32_t raw) : raw_(raw) {}

  static constexpr GlobalAddr make(ProcId proc, std::uint32_t local) {
    return GlobalAddr((static_cast<std::uint32_t>(proc) << kProcShift) |
                      local);
  }

  [[nodiscard]] constexpr ProcId proc() const { return raw_ >> kProcShift; }
  [[nodiscard]] constexpr std::uint32_t local() const {
    return raw_ & kLocalMask;
  }
  [[nodiscard]] constexpr std::uint32_t raw() const { return raw_; }
  [[nodiscard]] constexpr bool is_null() const { return raw_ == 0; }

  /// Global page identifier (unique across processors).
  [[nodiscard]] constexpr std::uint32_t page_id() const {
    return raw_ / kPageBytes;
  }
  /// Line index within the page, 0..31.
  [[nodiscard]] constexpr std::uint32_t line_in_page() const {
    return (raw_ / kLineBytes) % kLinesPerPage;
  }
  /// Byte offset within the page.
  [[nodiscard]] constexpr std::uint32_t offset_in_page() const {
    return raw_ % kPageBytes;
  }
  /// Address of the start of the enclosing page.
  [[nodiscard]] constexpr GlobalAddr page_base() const {
    return GlobalAddr(raw_ - offset_in_page());
  }

  [[nodiscard]] constexpr GlobalAddr plus(std::uint32_t bytes) const {
    return GlobalAddr(raw_ + bytes);
  }

  friend constexpr bool operator==(GlobalAddr a, GlobalAddr b) {
    return a.raw_ == b.raw_;
  }
  friend constexpr bool operator!=(GlobalAddr a, GlobalAddr b) {
    return a.raw_ != b.raw_;
  }

 private:
  std::uint32_t raw_ = 0;
};

/// A typed global pointer: what an Olden program variable of pointer type
/// holds. sizeof(GPtr<T>) == 4, so pointer fields inside heap structures
/// cost the same four bytes they did on the CM-5.
template <class T>
class GPtr {
 public:
  constexpr GPtr() = default;
  constexpr explicit GPtr(GlobalAddr a) : addr_(a) {}

  [[nodiscard]] constexpr GlobalAddr addr() const { return addr_; }
  [[nodiscard]] constexpr ProcId proc() const { return addr_.proc(); }
  [[nodiscard]] constexpr bool is_null() const { return addr_.is_null(); }
  constexpr explicit operator bool() const { return !is_null(); }

  /// Array indexing: the address of element i of a T[] starting here.
  [[nodiscard]] constexpr GPtr<T> at(std::uint32_t i) const {
    return GPtr<T>(addr_.plus(i * static_cast<std::uint32_t>(sizeof(T))));
  }

  friend constexpr bool operator==(GPtr a, GPtr b) {
    return a.addr_ == b.addr_;
  }
  friend constexpr bool operator!=(GPtr a, GPtr b) {
    return a.addr_ != b.addr_;
  }

 private:
  GlobalAddr addr_;
};

/// Byte offset of member `field` within S, computed from a live object
/// (offsetof requires a literal member name, which the templated access
/// path does not have). S must be default-constructible.
template <class S, class T>
std::uint32_t member_offset(T S::* field) {
  static const S probe{};
  return static_cast<std::uint32_t>(
      reinterpret_cast<const char*>(&(probe.*field)) -
      reinterpret_cast<const char*>(&probe));
}

}  // namespace olden
