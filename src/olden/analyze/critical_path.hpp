// Critical-path extraction over the causal event DAG of one traced run.
//
// The DAG's nodes are the run's retained events plus a synthetic SOURCE
// (t = 0) and SINK (t = makespan). Every edge is "tight": its weight is
// exactly dst.time - src.time. Edges come from three places:
//
//   * per-processor order: consecutive events on the same processor
//     (sorted by (time, id)),
//   * causality: each event's recorded parent link, skipped when the
//     parent was dropped at the trace limit or timestamps would make the
//     edge negative (per-processor streams are not globally monotone:
//     arrivals are stamped with message delivery time while flush events
//     use the processor clock),
//   * boundaries: SOURCE -> first event on each processor, last event on
//     each processor -> SINK.
//
// Because every edge is tight, *any* SOURCE -> SINK path telescopes to
// exactly the makespan — the acceptance invariant "critical-path weight
// equals the traced makespan" holds by construction. What distinguishes
// the critical path is its attribution: each edge is classified into the
// runtime's CycleBucket vocabulary (compute / migration / cache_stall /
// coherence / idle) from its type and endpoint kinds, and the extractor
// picks the path that minimizes idle-attributed cycles — the chain of
// work that actually kept the makespan from shrinking.
#pragma once

#include <cstdint>
#include <vector>

#include "olden/analyze/trace_reader.hpp"
#include "olden/trace/trace.hpp"

namespace olden::analyze {

/// One edge of the chosen path, ending at `event` (index into
/// TraceRun::events, or kSinkStep for the final edge into SINK).
struct PathStep {
  static constexpr std::size_t kSinkStep = ~std::size_t{0};
  /// Index of the edge's tail event, or kSourceStep for SOURCE.
  static constexpr std::size_t kSourceStep = ~std::size_t{0} - 1;
  std::size_t src = kSourceStep;
  std::size_t event = kSinkStep;
  Cycles weight = 0;
  trace::CycleBucket bucket = trace::CycleBucket::kCompute;
  /// Dereference site of the edge's head event (kNoSite for SINK or
  /// unattributed events) — what the diff engine charges site deltas to.
  SiteId site = trace::kNoSite;
  /// Page the head event is about (classify::page_of), or
  /// classify::kNoPage. Diff engine input, like `site`.
  std::uint64_t page = ~std::uint64_t{0};
};

struct CriticalPath {
  /// Total path weight; equals the run's makespan whenever the run has at
  /// least one event (and the makespan alone when it has none).
  Cycles total_cycles = 0;
  /// Per-bucket attribution; sums to total_cycles.
  trace::BucketCycles attribution{};
  /// Number of edges on the chosen path. Equals steps.size() when the
  /// per-edge list is materialized; the streaming analyzer (streaming.hpp)
  /// fills only this count and leaves `steps` empty, so reports must read
  /// the edge count from here.
  std::uint64_t edges = 0;
  /// SOURCE -> SINK, in order. steps[i].event names the edge's head.
  /// Empty in streaming mode (see `edges`).
  std::vector<PathStep> steps;
};

/// Extract the minimum-idle critical path of one run.
[[nodiscard]] CriticalPath critical_path(const TraceRun& run);

}  // namespace olden::analyze
