// `olden-analyze --sampled-stats` report: load a v5 stats document
// produced by a `--sample` run and render the window schedule, sampling
// coverage, and per-bucket / per-event estimates with their confidence
// intervals in human form. The loader is deliberately restricted (like the
// profile reader's): it accepts exactly the JSON the exporters emit, plus
// the floating-point fields stats documents carry ("seconds", histogram
// means), and fails loudly on anything else.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "olden/support/types.hpp"

namespace olden::analyze {

/// One {estimate, ci95} pair from the v5 `estimates` object.
struct SampledEstimate {
  std::uint64_t estimate = 0;
  std::uint64_t ci95 = 0;
};

/// One run from a stats document, as far as the sampling report needs it.
struct SampledRun {
  std::string label;
  std::string scheme;
  std::string benchmark;  ///< config.benchmark when present
  std::uint32_t nprocs = 0;
  Cycles makespan = 0;
  bool sampled = false;

  // The pinned schedule (v5 `sample` object; zero when !sampled).
  Cycles window_cycles = 0;
  Cycles detail_cycles = 0;
  Cycles offset_cycles = 0;
  std::uint64_t windows = 0;
  Cycles measured_cycles = 0;

  std::map<std::string, std::uint64_t> measured_buckets;
  std::map<std::string, std::uint64_t> measured_events;
  SampledEstimate makespan_estimate;
  std::map<std::string, SampledEstimate> bucket_estimates;
  std::map<std::string, SampledEstimate> event_estimates;
};

struct SampledStatsDoc {
  int schema_version = 0;
  std::vector<SampledRun> runs;
};

/// Load a stats JSON file. Exact (non-sampled) runs load with
/// sampled == false; the report notes and skips them. Returns false with a
/// one-line message on malformed input or an unknown schema version.
bool load_sampled_stats(const std::string& path, SampledStatsDoc* out,
                        std::string* err);

/// The human report: schedule, coverage, bucket estimate table (with CI
/// as a percentage of the estimate) and the `top` largest event-count
/// estimates per sampled run.
[[nodiscard]] std::string sample_human_report(const SampledStatsDoc& doc,
                                              std::size_t top);

}  // namespace olden::analyze
