// Bounded-memory analysis of one traced run.
//
// The in-memory pipeline (read_binary_trace -> critical_path/analyze_run)
// keeps every event of every run resident — roughly 250 bytes per event
// across the parsed vector and the DP's adjacency lists — which rules out
// paper-scale traces (hundreds of MB to GB of log). This analyzer consumes
// the run as a stream, in file order, and retains only the packed
// per-event fields the critical-path DP needs later (time, kind + an
// arg0-sign bit, processor, parent: 18 bytes per event), feeding the
// hot-site / page / fault aggregations as events fly by; their maps scale
// with the footprint of the simulated heap, not the trace length.
//
// finish() then extracts the critical path over the packed arrays. It
// cannot run the DP online in file order — per-processor streams are not
// time-monotone (arrivals are stamped with message delivery time while
// flush events use the processor clock), so the per-processor chains only
// exist after the (time, id) sort the in-memory extractor performs. The
// extraction replicates that exactly: the same sort, the same edges (the
// per-processor chain or SOURCE boundary edge plus the causal parent
// edge), the same relaxation order and strict-improvement tie-breaks, the
// same SINK closure — evaluated per destination from the packed arrays
// instead of materialized adjacency lists. Peak memory is the packed 18
// bytes plus ~25 DP bytes per event, still an order of magnitude under the
// in-memory path, and the resulting attribution, total and edge count —
// and therefore the olden-analyze JSON document — are byte-identical.
//
// Two stream invariants are verified as the run is read (runtime traces
// satisfy them; synthetic ones that do not fail loudly instead of
// diverging silently):
//
//   * ids are dense: record i of a run carries id == i (the observer
//     numbers events per run and truncation only drops the tail),
//   * parent links point backwards (a parent is emitted before its child).
//
// The per-edge step list is the one thing not reconstructed (it would pin
// event details in memory); CriticalPath::edges carries the path length
// instead.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "olden/analyze/diff.hpp"
#include "olden/analyze/report.hpp"
#include "olden/analyze/trace_reader.hpp"

namespace olden::analyze {

class StreamingRunAnalyzer {
 public:
  /// `header` is the run as returned by TraceStream::next_run (events
  /// not yet read); top_n bounds the hot-site / hot-page lists exactly as
  /// in analyze_run.
  StreamingRunAnalyzer(const TraceRun& header, std::size_t top_n);

  /// Opt in to diff-profile retention before the first add(): keeps the
  /// head event's site and page per event (12 extra bytes each) and
  /// tracks chain spawn signatures incrementally, so finish_diff() can
  /// hand back the same DiffProfile diff_profile() builds in memory.
  void enable_diff_profile();

  /// Feed the run's events in file order. Returns false once a stream
  /// invariant is violated; the error latches (see error()) and further
  /// calls are no-ops.
  bool add(const trace::TraceEvent& e);

  /// Complete the analysis. Returns false (setting *err) if add() failed
  /// or the stream ended short of the header's event count.
  bool finish(RunReport* out, std::string* err);

  /// finish() plus the cross-run diff profile (diff.hpp), extracted in
  /// the same DP walk. Requires enable_diff_profile() before the first
  /// add(). The profile is identical to diff_profile() over the same run
  /// parsed in memory, so diff reports are byte-identical across modes.
  bool finish_diff(RunReport* out, DiffProfile* profile, std::string* err);

  [[nodiscard]] const std::string& error() const { return err_; }

 private:
  struct PageAcc {
    PageStats stats;
    std::set<ProcId> sharers;
    /// Processors holding a pending invalidate for this page: the next
    /// fill there completes an invalidate-then-refill round trip.
    std::unordered_set<ProcId> invalidated_on;
  };

  bool set_error(const std::string& msg);
  bool finish_impl(RunReport* out, DiffProfile* profile, std::string* err);
  /// `profile`, when non-null, receives the site/page/edge cycle charges
  /// of every walked edge (the diff-detail mode).
  void extract_critical_path(CriticalPath* path, DiffProfile* profile) const;

  std::string label_;
  bool run_truncated_ = false;
  ProcId nprocs_ = 0;
  Cycles makespan_ = 0;
  std::uint64_t expected_events_ = 0;
  std::size_t top_n_ = 10;
  std::string err_;
  std::uint64_t count_ = 0;  ///< events consumed so far == next expected id

  // Packed per-event fields, indexed by event id (dense, so id == index).
  std::vector<Cycles> time_;
  /// Event kind in the low 7 bits (kNumEventKinds < 0x80), arg0 > 0 in
  /// the top bit — everything the edge classifiers need of an endpoint.
  std::vector<std::uint8_t> kindbits_;
  /// Processor, or kProcNone for records whose proc is out of range
  /// (corrupt records get causal edges only, like in-memory).
  std::vector<std::uint8_t> proc_;
  /// Parent id, or kNoParent when absent / dropped at the trace limit.
  std::vector<std::uint64_t> parent_;

  // Diff-detail retention (populated only after enable_diff_profile()).
  bool diff_ = false;
  std::vector<SiteId> site_;          ///< head-event site per event
  std::vector<std::uint64_t> page_;   ///< classify::page_of per event
  std::unordered_set<std::uint64_t> chains_seen_;
  std::map<ChainSig, std::uint64_t> chain_counts_;
  std::uint64_t chains_ = 0;

  // Report aggregation (analyze_run's maps, fed incrementally).
  std::unordered_map<std::uint64_t, SiteId> depart_site_;  ///< depart id->site
  std::map<SiteId, SiteStats> sites_;
  std::map<std::uint64_t, PageAcc> pages_;
  FaultSummary faults_;
};

}  // namespace olden::analyze
