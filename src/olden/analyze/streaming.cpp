#include "olden/analyze/streaming.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "olden/analyze/classify.hpp"

namespace olden::analyze {

namespace {

using trace::CycleBucket;
using trace::EventKind;
using trace::TraceEvent;

constexpr Cycles kInf = std::numeric_limits<Cycles>::max();
/// pred sentinel for "reached straight from SOURCE".
constexpr std::uint64_t kFromSource = ~std::uint64_t{0};
/// last_on_proc sentinel for "no event on this processor yet".
constexpr std::uint64_t kNone = ~std::uint64_t{0};
/// parent_ sentinel: no parent, or parent dropped at the trace limit.
constexpr std::uint64_t kNoParent = ~std::uint64_t{0};
/// proc_ sentinel for out-of-range processor ids (corrupt records).
constexpr std::uint8_t kProcNone = 0xFF;

static_assert(trace::kNumEventKinds < 0x80,
              "kind must fit 7 bits next to the arg0-sign bit");
static_assert(kMaxProcs < kProcNone, "proc must fit a byte with a sentinel");

}  // namespace

StreamingRunAnalyzer::StreamingRunAnalyzer(const TraceRun& header,
                                           std::size_t top_n)
    : label_(header.label),
      run_truncated_(header.truncated()),
      nprocs_(header.nprocs),
      makespan_(header.makespan),
      expected_events_(header.num_events),
      top_n_(top_n) {
  time_.reserve(expected_events_);
  kindbits_.reserve(expected_events_);
  proc_.reserve(expected_events_);
  parent_.reserve(expected_events_);
}

void StreamingRunAnalyzer::enable_diff_profile() {
  diff_ = true;
  site_.reserve(expected_events_);
  page_.reserve(expected_events_);
}

bool StreamingRunAnalyzer::set_error(const std::string& msg) {
  if (err_.empty()) err_ = msg;
  return false;
}

bool StreamingRunAnalyzer::add(const TraceEvent& e) {
  if (!err_.empty()) return false;
  const std::uint64_t i = count_;
  if (e.id != i) {
    return set_error("event record " + std::to_string(i) + " carries id " +
                     std::to_string(e.id) +
                     " (streaming analysis requires the runtime's dense "
                     "per-run ids; re-analyze without --stream)");
  }
  std::uint64_t parent = kNoParent;
  if (e.parent != trace::kNoEvent && e.parent < expected_events_) {
    if (e.parent >= i) {
      return set_error("event " + std::to_string(i) +
                       " carries a forward parent link " +
                       std::to_string(e.parent) +
                       "; streaming analysis requires emission-order "
                       "traces — re-analyze without --stream");
    }
    parent = e.parent;
  }

  time_.push_back(e.time);
  kindbits_.push_back(static_cast<std::uint8_t>(e.kind) |
                      (e.arg0 > 0 ? std::uint8_t{0x80} : std::uint8_t{0}));
  proc_.push_back(e.proc < nprocs_ ? static_cast<std::uint8_t>(e.proc)
                                   : kProcNone);
  parent_.push_back(parent);
  if (diff_) {
    site_.push_back(e.site);
    page_.push_back(classify::page_of(e.kind, e.arg0));
    // First sighting of a chain in file order carries its spawn
    // signature — exactly how diff_profile() counts over run.events.
    if (e.chain != trace::kNoChain && chains_seen_.insert(e.chain).second) {
      ++chains_;
      ++chain_counts_[{static_cast<std::uint8_t>(e.kind), e.site}];
    }
  }

  // --- report aggregation (analyze_run, fed one event at a time) ---------
  switch (e.kind) {
    case EventKind::kMigrationDepart: {
      depart_site_.emplace(i, e.site);
      SiteStats& s = sites_[e.site];
      s.site = e.site;
      ++s.departs;
      break;
    }
    case EventKind::kMigrationArrive: {
      if (e.parent == trace::kNoEvent) break;
      const auto it = depart_site_.find(e.parent);
      if (it == depart_site_.end()) break;  // dropped, or not a depart
      SiteStats& s = sites_[it->second];
      s.site = it->second;
      ++s.arrives_matched;
      s.transit_cycles += e.arg1;
      break;
    }
    case EventKind::kCacheHit:
    case EventKind::kCacheMiss: {
      PageAcc& a = pages_[e.arg0];
      a.stats.page = e.arg0;
      ++a.stats.heat;
      break;
    }
    case EventKind::kCacheLineFill: {
      PageAcc& a = pages_[e.arg0];
      a.stats.page = e.arg0;
      ++a.stats.fills;
      a.sharers.insert(e.proc);
      if (a.invalidated_on.erase(e.proc) > 0) ++a.stats.ping_pongs;
      break;
    }
    case EventKind::kLineInvalidate:
    case EventKind::kTimestampCheck: {
      if (e.arg1 == 0) break;  // nothing was actually dropped
      PageAcc& a = pages_[e.arg0];
      a.stats.page = e.arg0;
      ++a.stats.invalidates;
      a.invalidated_on.insert(e.proc);
      break;
    }
    case EventKind::kFaultDrop:
      ++faults_.drops;
      break;
    case EventKind::kFaultDelay:
      ++faults_.delays;
      break;
    case EventKind::kFaultDuplicate:
      ++faults_.duplicates;
      break;
    case EventKind::kRetransmit:
      faults_.count_retransmit(e.arg0);
      break;
    case EventKind::kDupSuppressed:
      ++faults_.dup_suppressed;
      break;
    case EventKind::kHiccup:
      ++faults_.hiccups;
      faults_.hiccup_cycles += e.arg0;
      break;
    default:
      break;
  }

  ++count_;
  return true;
}

void StreamingRunAnalyzer::extract_critical_path(CriticalPath* path,
                                                 DiffProfile* profile) const {
  path->attribution.fill(0);
  const std::uint64_t n = count_;

  // Topological order: events by (time, id) — identical to the in-memory
  // extractor's sort, which is what makes the per-processor chains (and
  // therefore every tie-break downstream) come out the same.
  std::vector<std::uint64_t> order(n);
  std::iota(order.begin(), order.end(), std::uint64_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::uint64_t a, std::uint64_t b) {
              if (time_[a] != time_[b]) return time_[a] < time_[b];
              return a < b;
            });

  std::vector<Cycles> cost(n, kInf);
  std::vector<std::uint64_t> pred(n, kFromSource);
  std::vector<std::uint8_t> bucket(n, 0);
  std::vector<std::uint64_t> last_on_proc(nprocs_, kNone);

  // Min-idle DP. The in-memory extractor relaxes sources in topological
  // order (SOURCE, then `order`), each source's edges in insertion order
  // (chain edge before causal edge), improving on strict `<` only. Per
  // destination that is equivalent to evaluating its incoming candidates
  // ordered by source position — SOURCE first, then (time, id), chain
  // before causal on a shared source — which needs no adjacency lists.
  struct Cand {
    std::uint64_t src = kFromSource;  ///< kFromSource = synthetic SOURCE
    CycleBucket bucket = CycleBucket::kCompute;
    bool valid = false;
  };
  for (const std::uint64_t idx : order) {
    const EventKind dst_kind = static_cast<EventKind>(kindbits_[idx] & 0x7F);
    const bool dst_arg0_pos = (kindbits_[idx] & 0x80) != 0;

    Cand chain;
    Cand causal;
    if (proc_[idx] != kProcNone) {
      const std::uint64_t prev = last_on_proc[proc_[idx]];
      if (prev == kNone) {
        // Processor 0 runs the root from t = 0; every other processor is
        // idle until something reaches it.
        chain.src = kFromSource;
        chain.bucket = proc_[idx] == 0
                           ? classify::dst_bucket(dst_kind, dst_arg0_pos)
                           : CycleBucket::kIdle;
        chain.valid = true;
      } else {
        chain.src = prev;
        chain.bucket = classify::chain_bucket(
            static_cast<EventKind>(kindbits_[prev] & 0x7F), dst_kind,
            dst_arg0_pos);
        chain.valid = cost[prev] != kInf;
      }
      last_on_proc[proc_[idx]] = idx;
    }
    const std::uint64_t par = parent_[idx];
    // Skipped when the edge would be negative (arrivals are stamped with
    // delivery time) or the parent is unreachable — same as in-memory.
    if (par != kNoParent && time_[par] <= time_[idx] && cost[par] != kInf) {
      causal.src = par;
      causal.bucket = classify::causal_bucket(
          static_cast<EventKind>(kindbits_[par] & 0x7F), dst_kind,
          dst_arg0_pos);
      causal.valid = true;
    }

    Cycles best = kInf;
    std::uint64_t best_pred = kFromSource;
    CycleBucket best_bucket = CycleBucket::kCompute;
    auto consider = [&](const Cand& c) {
      if (!c.valid) return;
      const Cycles ts = c.src == kFromSource ? 0 : time_[c.src];
      const Cycles base = c.src == kFromSource ? 0 : cost[c.src];
      const Cycles add =
          c.bucket == CycleBucket::kIdle ? time_[idx] - ts : 0;
      const Cycles cand = base + add;
      if (cand < best) {
        best = cand;
        best_pred = c.src;
        best_bucket = c.bucket;
      }
    };
    const bool chain_first = [&] {
      if (!chain.valid || !causal.valid) return true;  // order irrelevant
      if (chain.src == kFromSource) return true;  // SOURCE relaxes first
      if (chain.src == causal.src) return true;   // chain edge pushed first
      if (time_[chain.src] != time_[causal.src]) {
        return time_[chain.src] < time_[causal.src];
      }
      return chain.src < causal.src;
    }();
    if (chain_first) {
      consider(chain);
      consider(causal);
    } else {
      consider(causal);
      consider(chain);
    }
    cost[idx] = best;
    pred[idx] = best_pred;
    bucket[idx] = static_cast<std::uint8_t>(best_bucket);
  }

  // Close the DP at SINK: candidates are the per-processor last events in
  // the same (time, id) relaxation order; when nothing was traced the
  // whole run is one SOURCE -> SINK idle edge.
  std::vector<std::uint64_t> lasts;
  for (ProcId p = 0; p < nprocs_; ++p) {
    if (last_on_proc[p] != kNone) lasts.push_back(last_on_proc[p]);
  }
  std::sort(lasts.begin(), lasts.end(),
            [&](std::uint64_t a, std::uint64_t b) {
              if (time_[a] != time_[b]) return time_[a] < time_[b];
              return a < b;
            });
  Cycles sink_cost = kInf;
  std::uint64_t sink_pred = kFromSource;
  if (lasts.empty()) {
    sink_cost = makespan_;  // SOURCE -> SINK, idle, weight = makespan
  } else {
    for (const std::uint64_t src : lasts) {
      if (cost[src] == kInf) continue;
      if (makespan_ < time_[src]) continue;  // negative edge: skipped
      const Cycles cand = cost[src] + (makespan_ - time_[src]);
      if (cand < sink_cost) {
        sink_cost = cand;
        sink_pred = src;
      }
    }
    if (sink_cost == kInf) return;  // unreachable: no edges at all
  }

  // Walk SINK -> SOURCE accumulating attribution; edge weights are tight,
  // so each is just the time gap to the predecessor. In diff mode the same
  // walk charges each edge's cycles to the profile's site / page / edge
  // partitions (zero-weight edges skipped, as in diff_profile()).
  const auto src_kind_of = [&](std::uint64_t src) {
    return src == kFromSource
               ? EdgeKey::kSourceKind
               : static_cast<std::uint8_t>(kindbits_[src] & 0x7F);
  };
  const Cycles sink_w =
      makespan_ - (sink_pred == kFromSource ? 0 : time_[sink_pred]);
  path->attribution[static_cast<std::size_t>(CycleBucket::kIdle)] += sink_w;
  path->total_cycles += sink_w;
  ++path->edges;
  if (profile != nullptr && sink_w > 0) {
    EdgeKey key;
    key.src_kind = src_kind_of(sink_pred);
    key.dst_kind = EdgeKey::kSinkKind;
    key.bucket = static_cast<std::uint8_t>(CycleBucket::kIdle);
    key.site = trace::kNoSite;
    profile->site_cycles[trace::kNoSite] += sink_w;
    profile->page_cycles[classify::kNoPage] += sink_w;
    profile->edge_cycles[key] += sink_w;
  }
  std::uint64_t cur = sink_pred;
  while (cur != kFromSource) {
    const std::uint64_t p = pred[cur];
    const Cycles ts = p == kFromSource ? 0 : time_[p];
    const Cycles w = time_[cur] - ts;
    path->attribution[bucket[cur]] += w;
    path->total_cycles += w;
    ++path->edges;
    if (profile != nullptr && w > 0) {
      EdgeKey key;
      key.src_kind = src_kind_of(p);
      key.dst_kind = static_cast<std::uint8_t>(kindbits_[cur] & 0x7F);
      key.bucket = bucket[cur];
      key.site = site_[cur];
      profile->site_cycles[site_[cur]] += w;
      profile->page_cycles[page_[cur]] += w;
      profile->edge_cycles[key] += w;
    }
    cur = p;
  }
}

bool StreamingRunAnalyzer::finish(RunReport* out, std::string* err) {
  return finish_impl(out, nullptr, err);
}

bool StreamingRunAnalyzer::finish_diff(RunReport* out, DiffProfile* profile,
                                       std::string* err) {
  *profile = DiffProfile{};
  if (!diff_) {
    if (err != nullptr) {
      *err = "finish_diff requires enable_diff_profile() before add()";
    }
    return false;
  }
  if (!finish_impl(out, profile, err)) return false;
  profile->label = label_;
  profile->nprocs = nprocs_;
  profile->makespan = makespan_;
  profile->events = count_;
  profile->truncated = run_truncated_;
  profile->buckets = out->path.attribution;
  profile->chain_counts = chain_counts_;
  profile->chains = chains_;
  profile->retries_by_class = faults_.retransmits_by_class;
  return true;
}

bool StreamingRunAnalyzer::finish_impl(RunReport* out, DiffProfile* profile,
                                       std::string* err) {
  if (err_.empty() && count_ != expected_events_) {
    set_error("run event stream ended at " + std::to_string(count_) + " of " +
              std::to_string(expected_events_) + " events");
  }
  if (!err_.empty()) {
    if (err != nullptr) *err = err_;
    return false;
  }
  RunReport rep;
  extract_critical_path(&rep.path, profile);

  // --- rank sites and pages (exactly analyze_run's ordering) -------------
  for (const auto& [site, s] : sites_) rep.hot_sites.push_back(s);
  std::stable_sort(rep.hot_sites.begin(), rep.hot_sites.end(),
                   [](const SiteStats& a, const SiteStats& b) {
                     return a.departs > b.departs;
                   });
  if (rep.hot_sites.size() > top_n_) rep.hot_sites.resize(top_n_);

  rep.pages_tracked = pages_.size();
  for (auto& [page, a] : pages_) {
    a.stats.sharers = static_cast<std::uint32_t>(a.sharers.size());
    a.stats.false_sharing_suspect =
        a.stats.ping_pongs > 0 && a.stats.sharers >= 2;
    rep.ping_pong_total += a.stats.ping_pongs;
    rep.hot_pages.push_back(a.stats);
  }
  std::stable_sort(rep.hot_pages.begin(), rep.hot_pages.end(),
                   [](const PageStats& a, const PageStats& b) {
                     return a.heat > b.heat;
                   });
  if (rep.hot_pages.size() > top_n_) rep.hot_pages.resize(top_n_);

  rep.faults = faults_;
  *out = std::move(rep);
  return true;
}

}  // namespace olden::analyze
