#include "olden/analyze/critical_path.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "olden/analyze/classify.hpp"

namespace olden::analyze {

namespace {

using trace::CycleBucket;
using trace::TraceEvent;

struct Edge {
  std::size_t dst;
  Cycles weight;
  CycleBucket bucket;
};

}  // namespace

CriticalPath critical_path(const TraceRun& run) {
  CriticalPath out;
  const std::size_t n = run.events.size();
  const std::size_t kSource = n;
  const std::size_t kSink = n + 1;

  // node time accessor (SOURCE = 0, SINK = makespan)
  auto time_of = [&](std::size_t node) -> Cycles {
    if (node == kSource) return 0;
    if (node == kSink) return run.makespan;
    return run.events[node].time;
  };

  // Topological order: SOURCE, events by (time, id), SINK. Parent links
  // always point at earlier-emitted (smaller-id) events, so (time, id)
  // sorts every retained edge source before its destination.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const TraceEvent& ea = run.events[a];
    const TraceEvent& eb = run.events[b];
    if (ea.time != eb.time) return ea.time < eb.time;
    return ea.id < eb.id;
  });

  std::vector<std::vector<Edge>> outgoing(n + 2);
  auto add_edge = [&](std::size_t src, std::size_t dst, CycleBucket bucket) {
    const Cycles ts = time_of(src);
    const Cycles td = time_of(dst);
    if (td < ts) return;  // would break the tight-edge invariant
    outgoing[src].push_back(Edge{dst, td - ts, bucket});
  };

  // Per-processor chains + boundary edges. `order` is already sorted by
  // (time, id), so walking it per processor yields each chain in order.
  std::vector<std::size_t> last_on_proc(run.nprocs, kSource);
  for (std::size_t idx : order) {
    const TraceEvent& e = run.events[idx];
    if (e.proc >= run.nprocs) continue;  // defensive: corrupt record
    const std::size_t prev = last_on_proc[e.proc];
    if (prev == kSource) {
      // Processor 0 runs the root from t = 0; every other processor is
      // idle until something reaches it.
      add_edge(kSource, idx,
               e.proc == 0 ? classify::dst_bucket(e.kind, e.arg0 > 0)
                           : CycleBucket::kIdle);
    } else {
      add_edge(prev, idx,
               classify::chain_bucket(run.events[prev].kind, e.kind,
                                      e.arg0 > 0));
    }
    last_on_proc[e.proc] = idx;
  }
  bool any_event = false;
  for (ProcId p = 0; p < run.nprocs; ++p) {
    if (last_on_proc[p] == kSource) continue;
    any_event = true;
    add_edge(last_on_proc[p], kSink, CycleBucket::kIdle);
  }
  if (!any_event) {
    // Nothing traced: the whole run is one opaque edge.
    add_edge(kSource, kSink, CycleBucket::kIdle);
  }

  // Causal edges from the recorded parent links.
  std::unordered_map<std::uint64_t, std::size_t> by_id;
  by_id.reserve(n);
  for (std::size_t i = 0; i < n; ++i) by_id.emplace(run.events[i].id, i);
  for (std::size_t i = 0; i < n; ++i) {
    const TraceEvent& e = run.events[i];
    if (e.parent == trace::kNoEvent) continue;
    const auto it = by_id.find(e.parent);
    if (it == by_id.end()) continue;  // parent dropped at the trace limit
    add_edge(it->second, i,
             classify::causal_bucket(run.events[it->second].kind, e.kind,
                                     e.arg0 > 0));
  }

  // DP: minimize idle-attributed cycles from SOURCE. Every path has the
  // same total weight (tight edges telescope), so "least idle" picks the
  // chain of work that actually determined the makespan.
  constexpr Cycles kInf = std::numeric_limits<Cycles>::max();
  std::vector<Cycles> idle_cost(n + 2, kInf);
  std::vector<std::size_t> pred(n + 2, kSource);
  std::vector<Edge> pred_edge(n + 2);
  idle_cost[kSource] = 0;

  auto relax_from = [&](std::size_t src) {
    if (idle_cost[src] == kInf) return;
    for (const Edge& e : outgoing[src]) {
      const Cycles add = e.bucket == CycleBucket::kIdle ? e.weight : 0;
      const Cycles cand = idle_cost[src] + add;
      if (cand < idle_cost[e.dst]) {
        idle_cost[e.dst] = cand;
        pred[e.dst] = src;
        pred_edge[e.dst] = e;
      }
    }
  };
  relax_from(kSource);
  for (std::size_t idx : order) relax_from(idx);

  // Reconstruct SINK -> SOURCE, then reverse.
  out.attribution.fill(0);
  if (idle_cost[kSink] == kInf) return out;  // unreachable: no edges at all
  std::size_t node = kSink;
  while (node != kSource) {
    const Edge& e = pred_edge[node];
    PathStep step;
    step.src = pred[node] == kSource ? PathStep::kSourceStep : pred[node];
    step.event = node == kSink ? PathStep::kSinkStep : node;
    step.weight = e.weight;
    step.bucket = e.bucket;
    if (node != kSink) {
      step.site = run.events[node].site;
      step.page = classify::page_of(run.events[node].kind,
                                    run.events[node].arg0);
    }
    out.steps.push_back(step);
    out.total_cycles += e.weight;
    out.attribution[static_cast<std::size_t>(e.bucket)] += e.weight;
    node = pred[node];
  }
  std::reverse(out.steps.begin(), out.steps.end());
  out.edges = out.steps.size();
  return out;
}

}  // namespace olden::analyze
