#include "olden/analyze/report.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace olden::analyze {

namespace jsonio {

void append_kv(std::string& out, const char* key, std::uint64_t v,
               bool comma) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "\"%s\":%" PRIu64 "%s", key, v,
                comma ? "," : "");
  out += buf;
}

void append_kv_i64(std::string& out, const char* key, std::int64_t v,
                   bool comma) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "\"%s\":%" PRId64 "%s", key, v,
                comma ? "," : "");
  out += buf;
}

void append_escaped(std::string& out, const std::string& s) {
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
}

}  // namespace jsonio

namespace {

using jsonio::append_escaped;
using jsonio::append_kv;
using trace::CycleBucket;
using trace::EventKind;
using trace::TraceEvent;

}  // namespace

RunReport analyze_run(const TraceRun& run, std::size_t top_n) {
  RunReport rep;
  rep.path = critical_path(run);

  // --- hottest migration sites -------------------------------------------
  std::unordered_map<std::uint64_t, std::size_t> by_id;
  by_id.reserve(run.events.size());
  for (std::size_t i = 0; i < run.events.size(); ++i) {
    by_id.emplace(run.events[i].id, i);
  }
  // Ordered map so ties rank deterministically by site id.
  std::map<SiteId, SiteStats> sites;
  for (const TraceEvent& e : run.events) {
    if (e.kind == EventKind::kMigrationDepart) {
      SiteStats& s = sites[e.site];
      s.site = e.site;
      ++s.departs;
    } else if (e.kind == EventKind::kMigrationArrive &&
               e.parent != trace::kNoEvent) {
      const auto it = by_id.find(e.parent);
      if (it == by_id.end()) continue;
      const TraceEvent& dep = run.events[it->second];
      if (dep.kind != EventKind::kMigrationDepart) continue;
      SiteStats& s = sites[dep.site];
      s.site = dep.site;
      ++s.arrives_matched;
      s.transit_cycles += e.arg1;
    }
  }
  for (const auto& [site, s] : sites) rep.hot_sites.push_back(s);
  std::stable_sort(rep.hot_sites.begin(), rep.hot_sites.end(),
                   [](const SiteStats& a, const SiteStats& b) {
                     return a.departs > b.departs;
                   });
  if (rep.hot_sites.size() > top_n) rep.hot_sites.resize(top_n);

  // --- page heat and ping-pong -------------------------------------------
  struct PageAcc {
    PageStats stats;
    std::set<ProcId> sharers;
    /// Processors holding a pending invalidate for this page: the next
    /// fill there completes an invalidate-then-refill round trip.
    std::unordered_set<ProcId> invalidated_on;
  };
  std::map<std::uint64_t, PageAcc> pages;
  for (const TraceEvent& e : run.events) {
    switch (e.kind) {
      case EventKind::kCacheHit:
      case EventKind::kCacheMiss: {
        PageAcc& a = pages[e.arg0];
        a.stats.page = e.arg0;
        ++a.stats.heat;
        break;
      }
      case EventKind::kCacheLineFill: {
        PageAcc& a = pages[e.arg0];
        a.stats.page = e.arg0;
        ++a.stats.fills;
        a.sharers.insert(e.proc);
        if (a.invalidated_on.erase(e.proc) > 0) ++a.stats.ping_pongs;
        break;
      }
      case EventKind::kLineInvalidate:
      case EventKind::kTimestampCheck: {
        if (e.arg1 == 0) break;  // nothing was actually dropped
        PageAcc& a = pages[e.arg0];
        a.stats.page = e.arg0;
        ++a.stats.invalidates;
        a.invalidated_on.insert(e.proc);
        break;
      }
      case EventKind::kFaultDrop:
        ++rep.faults.drops;
        break;
      case EventKind::kFaultDelay:
        ++rep.faults.delays;
        break;
      case EventKind::kFaultDuplicate:
        ++rep.faults.duplicates;
        break;
      case EventKind::kRetransmit:
        rep.faults.count_retransmit(e.arg0);
        break;
      case EventKind::kDupSuppressed:
        ++rep.faults.dup_suppressed;
        break;
      case EventKind::kHiccup:
        ++rep.faults.hiccups;
        rep.faults.hiccup_cycles += e.arg0;
        break;
      default:
        break;
    }
  }
  rep.pages_tracked = pages.size();
  for (auto& [page, a] : pages) {
    a.stats.sharers = static_cast<std::uint32_t>(a.sharers.size());
    a.stats.false_sharing_suspect =
        a.stats.ping_pongs > 0 && a.stats.sharers >= 2;
    rep.ping_pong_total += a.stats.ping_pongs;
    rep.hot_pages.push_back(a.stats);
  }
  std::stable_sort(rep.hot_pages.begin(), rep.hot_pages.end(),
                   [](const PageStats& a, const PageStats& b) {
                     return a.heat > b.heat;
                   });
  if (rep.hot_pages.size() > top_n) rep.hot_pages.resize(top_n);
  return rep;
}

std::string human_report(const TraceRun& run, const RunReport& rep) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "run: %s (%u procs, makespan %" PRIu64 " cycles, %" PRIu64
                " events%s)\n",
                run.label.c_str(), run.nprocs, run.makespan,
                run.event_count(), run.truncated() ? ", TRUNCATED" : "");
  out += buf;

  out += "critical path:\n";
  std::snprintf(buf, sizeof buf,
                "  total %" PRIu64 " cycles over %" PRIu64 " edges\n",
                rep.path.total_cycles, rep.path.edges);
  out += buf;
  for (std::size_t b = 0; b < trace::kNumBuckets; ++b) {
    const std::uint64_t w = rep.path.attribution[b];
    const double pct = rep.path.total_cycles == 0
                           ? 0.0
                           : 100.0 * static_cast<double>(w) /
                                 static_cast<double>(rep.path.total_cycles);
    std::snprintf(buf, sizeof buf, "  %-12s %12" PRIu64 "  %5.1f%%\n",
                  to_string(static_cast<CycleBucket>(b)), w, pct);
    out += buf;
  }

  // The handful of edges that dominate the path usually name the fix.
  std::vector<std::size_t> heavy(rep.path.steps.size());
  for (std::size_t i = 0; i < heavy.size(); ++i) heavy[i] = i;
  std::stable_sort(heavy.begin(), heavy.end(),
                   [&](std::size_t a, std::size_t b) {
                     return rep.path.steps[a].weight > rep.path.steps[b].weight;
                   });
  if (heavy.size() > 5) heavy.resize(5);
  out += "  heaviest edges:\n";
  if (rep.path.steps.empty() && rep.path.edges > 0) {
    out += "    (per-edge detail not retained in streaming mode)\n";
  }
  for (std::size_t i : heavy) {
    const PathStep& s = rep.path.steps[i];
    const char* src_name = "SOURCE";
    if (s.src != PathStep::kSourceStep) {
      src_name = to_string(run.events[s.src].kind);
    }
    const char* dst_name = "SINK";
    char where[64] = "";
    if (s.event != PathStep::kSinkStep) {
      const TraceEvent& e = run.events[s.event];
      dst_name = to_string(e.kind);
      std::snprintf(where, sizeof where, " @ proc %u t=%" PRIu64, e.proc,
                    e.time);
    }
    std::snprintf(buf, sizeof buf, "    %10" PRIu64 " %-12s %s -> %s%s\n",
                  s.weight, to_string(s.bucket), src_name, dst_name, where);
    out += buf;
  }

  out += "hottest migration sites:\n";
  if (rep.hot_sites.empty()) out += "  (no migrations traced)\n";
  for (const SiteStats& s : rep.hot_sites) {
    const double mean =
        s.arrives_matched == 0
            ? 0.0
            : static_cast<double>(s.transit_cycles) /
                  static_cast<double>(s.arrives_matched);
    char site_name[32];
    if (s.site == trace::kNoSite) {
      std::snprintf(site_name, sizeof site_name, "(no site)");
    } else {
      std::snprintf(site_name, sizeof site_name, "site %u", s.site);
    }
    std::snprintf(buf, sizeof buf,
                  "  %-12s %8" PRIu64 " departs, %8" PRIu64
                  " transit cycles (mean %.1f)\n",
                  site_name, s.departs, s.transit_cycles, mean);
    out += buf;
  }

  std::snprintf(buf, sizeof buf,
                "pages: %" PRIu64 " tracked, %" PRIu64 " ping-pongs\n",
                rep.pages_tracked, rep.ping_pong_total);
  out += buf;
  for (const PageStats& p : rep.hot_pages) {
    std::snprintf(buf, sizeof buf,
                  "  page %-8" PRIu64 " heat %8" PRIu64 " fills %6" PRIu64
                  " invals %6" PRIu64 " ping-pongs %4" PRIu64
                  " sharers %2u%s\n",
                  p.page, p.heat, p.fills, p.invalidates, p.ping_pongs,
                  p.sharers, p.false_sharing_suspect ? "  FALSE-SHARING?" : "");
    out += buf;
  }

  if (rep.faults.any()) {
    out += "fault plane:\n";
    std::snprintf(buf, sizeof buf,
                  "  %" PRIu64 " drops, %" PRIu64 " delays, %" PRIu64
                  " duplicates injected; %" PRIu64 " retransmits, %" PRIu64
                  " duplicates suppressed\n",
                  rep.faults.drops, rep.faults.delays, rep.faults.duplicates,
                  rep.faults.retransmits, rep.faults.dup_suppressed);
    out += buf;
    std::snprintf(buf, sizeof buf,
                  "  %" PRIu64 " hiccups (%" PRIu64 " stall cycles); %" PRIu64
                  " retry cycles on the critical path\n",
                  rep.faults.hiccups, rep.faults.hiccup_cycles,
                  rep.path.attribution[static_cast<std::size_t>(
                      CycleBucket::kRetry)]);
    out += buf;
    if (rep.faults.retransmits > 0) {
      out += "  retransmits by class:";
      bool first = true;
      for (std::size_t i = 0; i < rep.faults.retransmits_by_class.size();
           ++i) {
        const std::uint64_t n = rep.faults.retransmits_by_class[i];
        if (n == 0) continue;
        std::snprintf(buf, sizeof buf, "%s %s %" PRIu64, first ? "" : ",",
                      FaultSummary::class_label(i), n);
        first = false;
        out += buf;
      }
      out += "\n";
    }
  }
  return out;
}

std::string json_report(const TraceFile& file,
                        const std::vector<RunReport>& reports) {
  std::string out;
  out.reserve(1 << 14);
  out += "{\"analysis_schema_version\":";
  out += std::to_string(kAnalysisSchemaVersion);
  out += ",\"generator\":\"olden-analyze\",";
  append_kv(out, "trace_version", static_cast<std::uint64_t>(file.version));
  out += "\"runs\":[";
  for (std::size_t r = 0; r < file.runs.size() && r < reports.size(); ++r) {
    const TraceRun& run = file.runs[r];
    const RunReport& rep = reports[r];
    if (r != 0) out += ",";
    out += "\n{\"label\":\"";
    append_escaped(out, run.label);
    out += "\",";
    append_kv(out, "nprocs", run.nprocs);
    append_kv(out, "makespan_cycles", run.makespan);
    append_kv(out, "events", run.event_count());
    append_kv(out, "events_dropped", run.events_dropped);
    out += "\"truncated\":";
    out += run.truncated() ? "true" : "false";
    out += ",\"critical_path\":{";
    append_kv(out, "total_cycles", rep.path.total_cycles);
    append_kv(out, "edges", rep.path.edges);
    out += "\"attribution\":{";
    for (std::size_t b = 0; b < trace::kNumBuckets; ++b) {
      append_kv(out, to_string(static_cast<CycleBucket>(b)),
                rep.path.attribution[b], b + 1 < trace::kNumBuckets);
    }
    out += "}},\"hot_sites\":[";
    for (std::size_t i = 0; i < rep.hot_sites.size(); ++i) {
      const SiteStats& s = rep.hot_sites[i];
      if (i != 0) out += ",";
      out += "{";
      append_kv(out, "site", s.site);
      append_kv(out, "departs", s.departs);
      append_kv(out, "arrives_matched", s.arrives_matched);
      append_kv(out, "transit_cycles", s.transit_cycles, /*comma=*/false);
      out += "}";
    }
    out += "],\"faults\":{";
    append_kv(out, "drops", rep.faults.drops);
    append_kv(out, "delays", rep.faults.delays);
    append_kv(out, "duplicates", rep.faults.duplicates);
    append_kv(out, "retransmits", rep.faults.retransmits);
    append_kv(out, "dup_suppressed", rep.faults.dup_suppressed);
    append_kv(out, "hiccups", rep.faults.hiccups);
    append_kv(out, "hiccup_cycles", rep.faults.hiccup_cycles);
    out += "\"retransmits_by_class\":{";
    for (std::size_t i = 0; i < rep.faults.retransmits_by_class.size(); ++i) {
      append_kv(out, FaultSummary::class_label(i),
                rep.faults.retransmits_by_class[i],
                i + 1 < rep.faults.retransmits_by_class.size());
    }
    out += "}},\"pages\":{";
    append_kv(out, "tracked", rep.pages_tracked);
    append_kv(out, "ping_pong_total", rep.ping_pong_total);
    out += "\"top\":[";
    for (std::size_t i = 0; i < rep.hot_pages.size(); ++i) {
      const PageStats& p = rep.hot_pages[i];
      if (i != 0) out += ",";
      out += "{";
      append_kv(out, "page", p.page);
      append_kv(out, "heat", p.heat);
      append_kv(out, "fills", p.fills);
      append_kv(out, "invalidates", p.invalidates);
      append_kv(out, "ping_pongs", p.ping_pongs);
      append_kv(out, "sharers", p.sharers);
      out += "\"false_sharing_suspect\":";
      out += p.false_sharing_suspect ? "true" : "false";
      out += "}";
    }
    out += "]}}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace olden::analyze
