// Run-level analyses over a parsed trace, and their human/JSON renderings.
//
// Built on the causal fields of binary log v2:
//   * hottest migration sites — departures grouped by dereference site,
//     with transit cycles recovered by matching each arrival to its
//     departure through the parent link,
//   * per-page heat and ping-pong detection — a page that is invalidated
//     on a processor and later refilled there ping-ponged; pages that
//     ping-pong while multiple processors fill them are flagged as
//     false-sharing suspects,
//   * the critical path (see critical_path.hpp).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "olden/analyze/critical_path.hpp"
#include "olden/analyze/trace_reader.hpp"
#include "olden/support/stats.hpp"

namespace olden::analyze {

/// Schema version of the JSON document json_report() emits.
inline constexpr int kAnalysisSchemaVersion = 1;

/// Hand-rolled JSON emission shared by the per-run report (report.cpp)
/// and the cross-run diff report (diff.cpp). One implementation so the
/// two documents can never diverge on escaping or number formatting.
namespace jsonio {
void append_kv(std::string& out, const char* key, std::uint64_t v,
               bool comma = true);
/// Signed variant — diff deltas go negative.
void append_kv_i64(std::string& out, const char* key, std::int64_t v,
                   bool comma = true);
void append_escaped(std::string& out, const std::string& s);
}  // namespace jsonio

struct SiteStats {
  SiteId site = trace::kNoSite;
  std::uint64_t departs = 0;         ///< migration departures at this site
  std::uint64_t arrives_matched = 0; ///< arrivals whose depart was retained
  std::uint64_t transit_cycles = 0;  ///< summed transit of matched arrivals
};

struct PageStats {
  std::uint64_t page = 0;
  std::uint64_t heat = 0;         ///< cached accesses (hits + misses)
  std::uint64_t fills = 0;        ///< cache_line_fill events
  std::uint64_t invalidates = 0;  ///< line_invalidate events dropping lines
  /// invalidate-then-refill round trips (summed over processors).
  std::uint64_t ping_pongs = 0;
  std::uint32_t sharers = 0;  ///< distinct processors that filled the page
  bool false_sharing_suspect = false;
};

/// Index into a per-class retransmit array for a retransmit event's arg0:
/// the message class is encoded in the upper 32 bits as class + 1 (see
/// fault_plane.cpp); kNumMsgClasses means "unknown" (pre-encoding traces).
/// Shared by the in-memory and streaming analyzers and the diff profiler
/// so every consumer decodes identically.
[[nodiscard]] inline std::size_t retransmit_class_index(std::uint64_t arg0) {
  const std::uint64_t cls = arg0 >> 32;
  return cls >= 1 && cls <= kNumMsgClasses ? static_cast<std::size_t>(cls - 1)
                                           : kNumMsgClasses;
}

/// Fault-plane activity recovered from the trace (src/olden/fault/).
/// All zero for a fault-free run.
struct FaultSummary {
  std::uint64_t drops = 0;           ///< fault_drop events
  std::uint64_t delays = 0;          ///< fault_delay events
  std::uint64_t duplicates = 0;      ///< fault_duplicate events
  std::uint64_t retransmits = 0;     ///< retransmit events
  std::uint64_t dup_suppressed = 0;  ///< dup_suppressed events
  std::uint64_t hiccups = 0;         ///< hiccup events
  std::uint64_t hiccup_cycles = 0;   ///< summed injected stall cycles
  /// Retransmits split by the message class encoded in arg0's upper bits
  /// (see fault_plane.cpp). Index kNumMsgClasses counts events from
  /// traces predating the encoding ("unknown").
  std::array<std::uint64_t, kNumMsgClasses + 1> retransmits_by_class{};

  /// Count one retransmit event, attributing its encoded class.
  void count_retransmit(std::uint64_t arg0) {
    ++retransmits;
    ++retransmits_by_class[retransmit_class_index(arg0)];
  }

  /// Class label for an index into retransmits_by_class.
  [[nodiscard]] static const char* class_label(std::size_t i) {
    return i < kNumMsgClasses ? to_string(static_cast<MsgClass>(i))
                              : "unknown";
  }

  [[nodiscard]] bool any() const {
    return drops + delays + duplicates + retransmits + dup_suppressed +
               hiccups >
           0;
  }
};

struct RunReport {
  CriticalPath path;
  std::vector<SiteStats> hot_sites;  ///< sorted by departs, then site
  std::vector<PageStats> hot_pages;  ///< sorted by heat, then page
  std::uint64_t pages_tracked = 0;
  std::uint64_t ping_pong_total = 0;
  FaultSummary faults;
};

/// Analyze one run, keeping the top_n hottest sites and pages.
[[nodiscard]] RunReport analyze_run(const TraceRun& run, std::size_t top_n);

/// Human-readable report for one run.
[[nodiscard]] std::string human_report(const TraceRun& run,
                                       const RunReport& rep);

/// Schema-versioned JSON for a whole trace file (one entry per run).
[[nodiscard]] std::string json_report(const TraceFile& file,
                                      const std::vector<RunReport>& reports);

}  // namespace olden::analyze
