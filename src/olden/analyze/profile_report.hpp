// `olden-analyze --profile` report family: page-heat ranking, phase-change
// detection over the interval timelines, and the heuristic scoreboard that
// grades each static migrate/cache decision against the behaviour the
// profiling plane actually observed. Also emits the plain-text feedback
// file bench binaries accept back through `--heuristic=profile:FILE`.
#pragma once

#include <string>

#include "olden/profile/profile_reader.hpp"

namespace olden::analyze {

/// The affinity bar the paper's compile-time heuristic uses (§4: migrate
/// when following the pointer stays local at least 90% of the time). The
/// scoreboard holds observed behaviour to the same bar.
inline constexpr double kScoreboardAffinityThreshold = 0.90;

/// Below this hit rate a cache-mechanism site is judged to be mostly
/// fetching rather than reusing, so migration would colocate better.
inline constexpr double kScoreboardHitRateFloor = 0.50;

/// How one site's static decision scored against observed behaviour.
struct SiteGrade {
  Mechanism chosen = Mechanism::kMigrate;       ///< what the run used
  Mechanism recommended = Mechanism::kMigrate;  ///< what the profile says
  bool agree = true;
  double local_fraction = 1.0;  ///< accesses that needed no mechanism
  double hit_rate = 0.0;        ///< remote reads served by the cache
};

/// Grade one profiled site. Sites with no accesses trivially agree.
[[nodiscard]] SiteGrade grade_site(const profile::SiteRow& s);

/// The full human report for every run in the document: interval summary,
/// detected phase changes, top-`top` page-heat ranking, per-site
/// scoreboard, and a cross-run summary line
/// ("scoreboard: N sites, A agree, D disagree").
[[nodiscard]] std::string profile_human_report(const profile::ProfileDoc& doc,
                                               std::size_t top);

/// The feedback document (docs/PROFILING.md format): one recommended
/// mechanism per (benchmark, site), aggregated over every non-baseline run
/// of that benchmark in the document. Runs without a benchmark name are
/// skipped (there is no stable identifier to join on).
[[nodiscard]] std::string feedback_from_profile(const profile::ProfileDoc& doc);

}  // namespace olden::analyze
