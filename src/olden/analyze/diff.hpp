// Cross-run trace diffing: attribute a makespan delta to mechanisms.
//
// The paper's claim is a *comparison* — caching vs migration vs hybrid on
// the same workload — and a single-run report cannot answer "why is
// scheme B 12% slower than scheme A?". This engine takes two v2 traces of
// the same workload (different scheme, revision, or fault spec), aligns
// their causal structure, and decomposes the makespan delta along four
// independent axes, each of which sums *exactly* to the delta:
//
//   * cycle buckets  — compute / migration / cache_stall / coherence /
//                      idle / retry,
//   * dereference sites — which decision-table entry got slower,
//   * pages          — which heap pages the extra stall cycles hit,
//   * edge signatures — structurally aligned critical-path edges.
//
// Alignment is structural, never by event id: ids, times and chain
// numbers all differ across runs, so critical-path edges are keyed by
// (source kind, destination kind, bucket, destination site) and compared
// signature-against-signature. Causal chains are likewise matched by
// their spawn signature (first event's kind + site), giving a topology
// summary (chains in A, in B, aligned).
//
// The exactness invariant mirrors the critical-path-sums-to-makespan
// proof: each run's critical-path attribution telescopes to its makespan,
// so subtracting B's attribution from A's — along any partition of the
// path's edges — telescopes to makespan(B) - makespan(A). diff_runs()
// verifies all four partitions at runtime and refuses to emit a report
// that does not balance; tests/diff_test.cpp holds it to that across
// benchmarks x scheme pairs, and tools/check_stats_schema.py --diff
// re-checks the emitted JSON independently.
//
// Profiles come from either pipeline: diff_profile() over an in-memory
// TraceRun, or StreamingRunAnalyzer's diff-detail mode (streaming.hpp)
// for bounded-memory --stream analysis. Both produce identical profiles;
// the resulting human and JSON reports are byte-identical.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "olden/analyze/critical_path.hpp"
#include "olden/analyze/trace_reader.hpp"
#include "olden/support/stats.hpp"

namespace olden::analyze {

/// Schema version of the JSON document json_diff() emits.
inline constexpr int kDiffSchemaVersion = 1;

/// Structural identity of one critical-path edge — everything about the
/// edge that is stable across runs of the same workload (event ids,
/// times and chains are not).
struct EdgeKey {
  /// Sentinels for the synthetic DAG endpoints, chosen above every real
  /// EventKind value so they cannot collide.
  static constexpr std::uint8_t kSourceKind = 0xFE;
  static constexpr std::uint8_t kSinkKind = 0xFF;

  std::uint8_t src_kind = kSourceKind;  ///< EventKind of the tail, or SOURCE
  std::uint8_t dst_kind = kSinkKind;    ///< EventKind of the head, or SINK
  std::uint8_t bucket = 0;              ///< trace::CycleBucket of the edge
  SiteId site = trace::kNoSite;         ///< head event's dereference site

  friend bool operator<(const EdgeKey& a, const EdgeKey& b) {
    if (a.src_kind != b.src_kind) return a.src_kind < b.src_kind;
    if (a.dst_kind != b.dst_kind) return a.dst_kind < b.dst_kind;
    if (a.bucket != b.bucket) return a.bucket < b.bucket;
    return a.site < b.site;
  }
  friend bool operator==(const EdgeKey& a, const EdgeKey& b) {
    return a.src_kind == b.src_kind && a.dst_kind == b.dst_kind &&
           a.bucket == b.bucket && a.site == b.site;
  }
};

/// Spawn signature of a causal chain: kind + site of its first event.
/// Chains are matched across runs by signature multiset, never by id.
using ChainSig = std::pair<std::uint8_t, SiteId>;

/// Everything the diff needs to know about one run: header facts plus the
/// critical path's cycles partitioned four ways. Each partition's values
/// sum to `makespan` (the critical-path exactness invariant).
struct DiffProfile {
  std::string label;
  ProcId nprocs = 0;
  Cycles makespan = 0;
  std::uint64_t events = 0;
  bool truncated = false;

  trace::BucketCycles buckets{};                     ///< per-bucket cycles
  std::map<SiteId, std::uint64_t> site_cycles;       ///< incl. kNoSite
  std::map<std::uint64_t, std::uint64_t> page_cycles;///< incl. kNoPage
  std::map<EdgeKey, std::uint64_t> edge_cycles;      ///< aligned edges
  std::map<ChainSig, std::uint64_t> chain_counts;    ///< chains per signature
  std::uint64_t chains = 0;                          ///< distinct chains
  /// Retransmit event counts split by the message class encoded in
  /// retransmit arg0 (index kNumMsgClasses = unknown / pre-encoding
  /// traces). Counts, not cycles — informational, outside the exactness
  /// invariant.
  std::array<std::uint64_t, kNumMsgClasses + 1> retries_by_class{};
};

/// Build the diff profile of one in-memory run (extracts its critical
/// path; the streaming twin is StreamingRunAnalyzer::finish_diff).
[[nodiscard]] DiffProfile diff_profile(const TraceRun& run);

/// a/b cycle totals for one key of one partition, and their signed delta.
struct DiffRow {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::int64_t delta = 0;  ///< b - a
};

struct SiteDiff {
  SiteId site = trace::kNoSite;
  DiffRow row;
};

struct PageDiff {
  std::uint64_t page = 0;  ///< classify::kNoPage for unpaged cycles
  DiffRow row;
};

struct EdgeDiff {
  EdgeKey key;
  DiffRow row;
};

/// Header facts of one diff side as shown in reports.
struct DiffSide {
  std::string path;  ///< trace file the run came from (CLI fills this)
  std::string label;
  ProcId nprocs = 0;
  Cycles makespan = 0;
  std::uint64_t events = 0;
  bool truncated = false;
};

/// One A-vs-B comparison. Every `delta_sum` and the bucket-row deltas sum
/// exactly to `makespan_delta`; diff_runs() fails rather than produce a
/// report where they do not.
struct DiffReport {
  DiffSide a;
  DiffSide b;
  std::int64_t makespan_delta = 0;  ///< b.makespan - a.makespan
  double makespan_delta_percent = 0.0;

  /// Fixed order (CycleBucket), always all kNumBuckets rows.
  std::array<DiffRow, trace::kNumBuckets> buckets{};

  /// Top |delta| rows per partition; everything past top_n is rolled into
  /// the matching `*_other` row so the emitted document still balances.
  std::vector<SiteDiff> sites;
  DiffRow sites_other;
  std::vector<PageDiff> pages;
  DiffRow pages_other;
  std::vector<EdgeDiff> edges;
  DiffRow edges_other;

  /// Redundant with makespan_delta by the invariant; kept explicit so
  /// consumers (and the schema checker) can verify without trusting us.
  std::int64_t bucket_delta_sum = 0;
  std::int64_t site_delta_sum = 0;
  std::int64_t page_delta_sum = 0;
  std::int64_t edge_delta_sum = 0;

  std::uint64_t chains_a = 0;
  std::uint64_t chains_b = 0;
  /// Chains matched across runs by spawn signature: sum of
  /// min(count_a, count_b) over signatures.
  std::uint64_t chains_aligned = 0;

  /// Per-message-class retransmit counts, a vs b (last row = unknown).
  std::array<DiffRow, kNumMsgClasses + 1> retries_by_class{};
};

/// Compare two profiles. Returns false (setting *err) only when the
/// exactness invariant fails — which would mean a bug in profile
/// extraction, never a property of the traces. top_n bounds the per-site
/// / per-page / per-edge tables (the remainder is rolled into *_other).
[[nodiscard]] bool diff_runs(const DiffProfile& a, const DiffProfile& b,
                             std::size_t top_n, DiffReport* out,
                             std::string* err);

/// Human-readable rendering of one comparison.
[[nodiscard]] std::string human_diff(const DiffReport& rep);

/// Schema-versioned JSON for a set of comparisons (one document per
/// --diff invocation; multi-run files diff pairwise).
[[nodiscard]] std::string json_diff(const std::vector<DiffReport>& reps);

}  // namespace olden::analyze
