#include "olden/analyze/trace_reader.hpp"

#include <cstdio>
#include <cstring>

#include "olden/trace/observer.hpp"

namespace olden::analyze {

namespace {

/// Little-endian cursor over the raw bytes; every read is bounds-checked
/// so a truncated or corrupt log fails cleanly instead of reading past
/// the buffer.
class Cursor {
 public:
  explicit Cursor(std::string_view bytes) : bytes_(bytes) {}

  bool u8(std::uint8_t* v) {
    if (pos_ + 1 > bytes_.size()) return false;
    *v = static_cast<std::uint8_t>(bytes_[pos_++]);
    return true;
  }
  bool u32(std::uint32_t* v) {
    if (pos_ + 4 > bytes_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<std::uint32_t>(
                static_cast<std::uint8_t>(bytes_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 4;
    return true;
  }
  bool u64(std::uint64_t* v) {
    if (pos_ + 8 > bytes_.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<std::uint64_t>(
                static_cast<std::uint8_t>(bytes_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 8;
    return true;
  }
  bool skip(std::size_t n) {
    if (pos_ + n > bytes_.size()) return false;
    pos_ += n;
    return true;
  }
  bool str(std::size_t n, std::string* v) {
    if (pos_ + n > bytes_.size()) return false;
    v->assign(bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

bool fail(std::string* err, const std::string& msg) {
  if (err != nullptr) *err = msg;
  return false;
}

}  // namespace

bool parse_binary_trace(std::string_view bytes, TraceFile* out,
                        std::string* err) {
  if (bytes.size() < 8) return fail(err, "trace too short for magic");
  if (std::memcmp(bytes.data(), trace::kBinaryTraceMagicV1, 8) == 0) {
    return fail(err,
                "binary trace is format v1 (OLDNTRC1); this analyzer "
                "requires v2 (OLDNTRC2) — regenerate the trace with a "
                "current bench binary");
  }
  if (std::memcmp(bytes.data(), trace::kBinaryTraceMagic, 8) != 0) {
    return fail(err, "not an Olden binary trace (bad magic)");
  }

  Cursor c(bytes);
  (void)c.skip(8);
  std::uint32_t version = 0;
  std::uint32_t nruns = 0;
  if (!c.u32(&version) || !c.u32(&nruns)) {
    return fail(err, "truncated trace header");
  }
  if (version != static_cast<std::uint32_t>(trace::kBinaryTraceVersion)) {
    return fail(err, "unsupported binary trace version " +
                         std::to_string(version) + " (expected " +
                         std::to_string(trace::kBinaryTraceVersion) + ")");
  }

  // A run header is at least 32 bytes (label length + nprocs + makespan +
  // dropped + event count), so a claimed run count past this bound cannot
  // be satisfied by the bytes present — reject it before reserving
  // anything, or a corrupt count would turn into a giant allocation.
  if (nruns > c.remaining() / 32) {
    return fail(err, "run count " + std::to_string(nruns) +
                         " exceeds file size (v" + std::to_string(version) +
                         " header corrupt?)");
  }

  out->version = static_cast<int>(version);
  out->runs.clear();
  out->runs.reserve(nruns);
  for (std::uint32_t r = 0; r < nruns; ++r) {
    TraceRun run;
    std::uint32_t label_len = 0;
    if (!c.u32(&label_len)) {
      return fail(err, "truncated run header (run " + std::to_string(r) + ")");
    }
    if (label_len > c.remaining()) {
      return fail(err, "run label length " + std::to_string(label_len) +
                           " exceeds file size (run " + std::to_string(r) +
                           ")");
    }
    if (!c.str(label_len, &run.label)) {
      return fail(err, "truncated run header (run " + std::to_string(r) + ")");
    }
    std::uint32_t nprocs = 0;
    std::uint64_t nevents = 0;
    if (!c.u32(&nprocs) || !c.u64(&run.makespan) ||
        !c.u64(&run.events_dropped) || !c.u64(&nevents)) {
      return fail(err, "truncated run header (run " + std::to_string(r) + ")");
    }
    // The simulator never runs more than kMaxProcs processors; a larger
    // value is corruption, and passing it through would size analysis
    // arrays (per-processor chains) from attacker-controlled bytes.
    if (nprocs == 0 || nprocs > kMaxProcs) {
      return fail(err, "implausible processor count " +
                           std::to_string(nprocs) + " (run " +
                           std::to_string(r) + ", max " +
                           std::to_string(kMaxProcs) + ")");
    }
    run.nprocs = nprocs;
    if (nevents > c.remaining() / trace::kBinaryRecordBytes) {
      return fail(err, "event count exceeds file size (run " +
                           std::to_string(r) + ")");
    }
    run.events.reserve(nevents);
    for (std::uint64_t i = 0; i < nevents; ++i) {
      trace::TraceEvent e;
      std::uint32_t proc = 0;
      std::uint8_t kind = 0;
      std::uint32_t site = 0;
      const bool ok = c.u64(&e.time) && c.u32(&proc) && c.u64(&e.thread) &&
                      c.u8(&kind) && c.skip(3) && c.u32(&site) &&
                      c.u64(&e.arg0) && c.u64(&e.arg1) && c.u64(&e.id) &&
                      c.u64(&e.chain) && c.u64(&e.parent);
      if (!ok) return fail(err, "truncated event record");
      if (kind >= trace::kNumEventKinds) {
        return fail(err, "event record with out-of-range kind " +
                             std::to_string(kind));
      }
      e.proc = proc;
      e.kind = static_cast<trace::EventKind>(kind);
      e.site = site;
      run.events.push_back(e);
    }
    out->runs.push_back(std::move(run));
  }
  return true;
}

bool read_binary_trace(const std::string& path, TraceFile* out,
                       std::string* err) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return fail(err, "cannot open " + path);
  std::string body;
  char buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) body.append(buf, got);
  std::fclose(f);
  if (!parse_binary_trace(body, out, err)) {
    if (err != nullptr) *err = path + ": " + *err;
    return false;
  }
  return true;
}

}  // namespace olden::analyze
