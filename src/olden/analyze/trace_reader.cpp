#include "olden/analyze/trace_reader.hpp"

#include <cstdio>
#include <cstring>

#include "olden/trace/observer.hpp"

namespace olden::analyze {

namespace {

/// Little-endian cursor over the raw bytes; every read is bounds-checked
/// so a truncated or corrupt log fails cleanly instead of reading past
/// the buffer.
class Cursor {
 public:
  explicit Cursor(std::string_view bytes) : bytes_(bytes) {}

  bool u8(std::uint8_t* v) {
    if (pos_ + 1 > bytes_.size()) return false;
    *v = static_cast<std::uint8_t>(bytes_[pos_++]);
    return true;
  }
  bool u32(std::uint32_t* v) {
    if (pos_ + 4 > bytes_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<std::uint32_t>(
                static_cast<std::uint8_t>(bytes_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 4;
    return true;
  }
  bool u64(std::uint64_t* v) {
    if (pos_ + 8 > bytes_.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<std::uint64_t>(
                static_cast<std::uint8_t>(bytes_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 8;
    return true;
  }
  bool skip(std::size_t n) {
    if (pos_ + n > bytes_.size()) return false;
    pos_ += n;
    return true;
  }
  bool str(std::size_t n, std::string* v) {
    if (pos_ + n > bytes_.size()) return false;
    v->assign(bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

bool fail(std::string* err, const std::string& msg) {
  if (err != nullptr) *err = msg;
  return false;
}

}  // namespace

bool parse_binary_trace(std::string_view bytes, TraceFile* out,
                        std::string* err) {
  if (bytes.size() < 8) return fail(err, "trace too short for magic");
  if (std::memcmp(bytes.data(), trace::kBinaryTraceMagicV1, 8) == 0) {
    return fail(err,
                "binary trace is format v1 (OLDNTRC1); this analyzer "
                "requires v2 (OLDNTRC2) — regenerate the trace with a "
                "current bench binary");
  }
  if (std::memcmp(bytes.data(), trace::kBinaryTraceMagic, 8) != 0) {
    return fail(err, "not an Olden binary trace (bad magic)");
  }

  Cursor c(bytes);
  (void)c.skip(8);
  std::uint32_t version = 0;
  std::uint32_t nruns = 0;
  if (!c.u32(&version) || !c.u32(&nruns)) {
    return fail(err, "truncated trace header");
  }
  if (version != static_cast<std::uint32_t>(trace::kBinaryTraceVersion)) {
    return fail(err, "unsupported binary trace version " +
                         std::to_string(version) + " (expected " +
                         std::to_string(trace::kBinaryTraceVersion) + ")");
  }

  // A run header is at least 32 bytes (label length + nprocs + makespan +
  // dropped + event count), so a claimed run count past this bound cannot
  // be satisfied by the bytes present — reject it before reserving
  // anything, or a corrupt count would turn into a giant allocation.
  if (nruns > c.remaining() / 32) {
    return fail(err, "run count " + std::to_string(nruns) +
                         " exceeds file size (v" + std::to_string(version) +
                         " header corrupt?)");
  }

  out->version = static_cast<int>(version);
  out->runs.clear();
  out->runs.reserve(nruns);
  for (std::uint32_t r = 0; r < nruns; ++r) {
    TraceRun run;
    std::uint32_t label_len = 0;
    if (!c.u32(&label_len)) {
      return fail(err, "truncated run header (run " + std::to_string(r) + ")");
    }
    if (label_len > c.remaining()) {
      return fail(err, "run label length " + std::to_string(label_len) +
                           " exceeds file size (run " + std::to_string(r) +
                           ")");
    }
    if (!c.str(label_len, &run.label)) {
      return fail(err, "truncated run header (run " + std::to_string(r) + ")");
    }
    std::uint32_t nprocs = 0;
    std::uint64_t nevents = 0;
    if (!c.u32(&nprocs) || !c.u64(&run.makespan) ||
        !c.u64(&run.events_dropped) || !c.u64(&nevents)) {
      return fail(err, "truncated run header (run " + std::to_string(r) + ")");
    }
    // The simulator never runs more than kMaxProcs processors; a larger
    // value is corruption, and passing it through would size analysis
    // arrays (per-processor chains) from attacker-controlled bytes.
    if (nprocs == 0 || nprocs > kMaxProcs) {
      return fail(err, "implausible processor count " +
                           std::to_string(nprocs) + " (run " +
                           std::to_string(r) + ", max " +
                           std::to_string(kMaxProcs) + ")");
    }
    run.nprocs = nprocs;
    if (nevents > c.remaining() / trace::kBinaryRecordBytes) {
      return fail(err, "event count exceeds file size (run " +
                           std::to_string(r) + ")");
    }
    run.num_events = nevents;
    run.events.reserve(nevents);
    for (std::uint64_t i = 0; i < nevents; ++i) {
      trace::TraceEvent e;
      std::uint32_t proc = 0;
      std::uint8_t kind = 0;
      std::uint32_t site = 0;
      const bool ok = c.u64(&e.time) && c.u32(&proc) && c.u64(&e.thread) &&
                      c.u8(&kind) && c.skip(3) && c.u32(&site) &&
                      c.u64(&e.arg0) && c.u64(&e.arg1) && c.u64(&e.id) &&
                      c.u64(&e.chain) && c.u64(&e.parent);
      if (!ok) return fail(err, "truncated event record");
      if (kind >= trace::kNumEventKinds) {
        return fail(err, "event record with out-of-range kind " +
                             std::to_string(kind));
      }
      e.proc = proc;
      e.kind = static_cast<trace::EventKind>(kind);
      e.site = site;
      run.events.push_back(e);
    }
    out->runs.push_back(std::move(run));
  }
  // The streaming sink back-patches run/event counts at finalize; a crash
  // (or a copy taken mid-write) leaves zeroed counts with the records
  // still present. Accepting that would silently analyze an empty or
  // partial prefix, so any bytes past the declared runs are an error.
  if (c.remaining() > 0) {
    return fail(err, "v" + std::to_string(version) + " header declares " +
                         std::to_string(nruns) + " run(s) but " +
                         std::to_string(c.remaining()) +
                         " byte(s) follow the last declared record — "
                         "header counts disagree with records present "
                         "(unfinalized streaming trace?)");
  }
  return true;
}

bool read_binary_trace(const std::string& path, TraceFile* out,
                       std::string* err) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return fail(err, "cannot open " + path);
  std::string body;
  char buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) body.append(buf, got);
  std::fclose(f);
  if (!parse_binary_trace(body, out, err)) {
    if (err != nullptr) *err = path + ": " + *err;
    return false;
  }
  return true;
}

namespace {

bool read_exact(std::FILE* f, void* dst, std::size_t n) {
  return std::fread(dst, 1, n, f) == n;
}

std::uint32_t decode_u32le(const unsigned char* b) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
  return v;
}

std::uint64_t decode_u64le(const unsigned char* b) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  return v;
}

}  // namespace

TraceStream::~TraceStream() {
  if (file_ != nullptr) std::fclose(file_);
}

bool TraceStream::fail(std::string* err, const std::string& msg) {
  if (err != nullptr) *err = path_.empty() ? msg : path_ + ": " + msg;
  return false;
}

bool TraceStream::open(const std::string& path, std::string* err) {
  if (file_ != nullptr) return fail(err, "stream already open");
  path_ = path;
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    path_.clear();
    return fail(err, "cannot open " + path);
  }
  if (std::fseek(file_, 0, SEEK_END) != 0) return fail(err, "seek failed");
  const long end = std::ftell(file_);
  if (end < 0) return fail(err, "seek failed");
  file_size_ = static_cast<std::uint64_t>(end);
  if (std::fseek(file_, 0, SEEK_SET) != 0) return fail(err, "seek failed");

  unsigned char magic[8];
  if (file_size_ < 8 || !read_exact(file_, magic, 8)) {
    return fail(err, "trace too short for magic");
  }
  pos_ = 8;
  if (std::memcmp(magic, trace::kBinaryTraceMagicV1, 8) == 0) {
    return fail(err,
                "binary trace is format v1 (OLDNTRC1); this analyzer "
                "requires v2 (OLDNTRC2) — regenerate the trace with a "
                "current bench binary");
  }
  if (std::memcmp(magic, trace::kBinaryTraceMagic, 8) != 0) {
    return fail(err, "not an Olden binary trace (bad magic)");
  }
  unsigned char hdr[8];
  if (!read_exact(file_, hdr, 8)) return fail(err, "truncated trace header");
  pos_ += 8;
  const std::uint32_t version = decode_u32le(hdr);
  num_runs_ = decode_u32le(hdr + 4);
  if (version != static_cast<std::uint32_t>(trace::kBinaryTraceVersion)) {
    return fail(err, "unsupported binary trace version " +
                         std::to_string(version) + " (expected " +
                         std::to_string(trace::kBinaryTraceVersion) + ")");
  }
  // Same plausibility bound as parse_binary_trace: a run header is at
  // least 32 bytes, so a run count the file cannot hold is corruption.
  if (num_runs_ > (file_size_ - pos_) / 32) {
    return fail(err, "run count " + std::to_string(num_runs_) +
                         " exceeds file size (v" + std::to_string(version) +
                         " header corrupt?)");
  }
  version_ = static_cast<int>(version);
  return true;
}

bool TraceStream::next_run(TraceRun* run, std::string* err) {
  if (err != nullptr) err->clear();
  if (file_ == nullptr) return fail(err, "stream not open");
  if (run_events_left_ > 0) {
    // Caller moved on without draining the events: seek past them.
    const std::uint64_t skip = run_events_left_ * trace::kBinaryRecordBytes;
    if (std::fseek(file_, static_cast<long>(skip), SEEK_CUR) != 0) {
      return fail(err, "seek failed");
    }
    pos_ += skip;
    run_events_left_ = 0;
  }
  if (runs_delivered_ >= num_runs_) {
    // Same trailing-bytes rejection as parse_binary_trace: a clean end of
    // file must land exactly on the file size, or the back-patched header
    // under-claims what was written (unfinalized streaming trace).
    if (pos_ != file_size_) {
      return fail(err,
                  "v" + std::to_string(version_) + " header declares " +
                      std::to_string(num_runs_) + " run(s) but " +
                      std::to_string(file_size_ - pos_) +
                      " byte(s) follow the last declared record — header "
                      "counts disagree with records present (unfinalized "
                      "streaming trace?)");
    }
    return false;  // clean end of file
  }
  const std::string rno = std::to_string(runs_delivered_);

  unsigned char lenb[4];
  if (!read_exact(file_, lenb, 4)) {
    return fail(err, "truncated run header (run " + rno + ")");
  }
  pos_ += 4;
  const std::uint32_t label_len = decode_u32le(lenb);
  if (label_len > file_size_ - pos_) {
    return fail(err, "run label length " + std::to_string(label_len) +
                         " exceeds file size (run " + rno + ")");
  }
  run->label.resize(label_len);
  if (label_len > 0 && !read_exact(file_, run->label.data(), label_len)) {
    return fail(err, "truncated run header (run " + rno + ")");
  }
  pos_ += label_len;

  unsigned char tail[4 + 8 + 8 + 8];
  if (!read_exact(file_, tail, sizeof tail)) {
    return fail(err, "truncated run header (run " + rno + ")");
  }
  pos_ += sizeof tail;
  const std::uint32_t nprocs = decode_u32le(tail);
  run->makespan = decode_u64le(tail + 4);
  run->events_dropped = decode_u64le(tail + 12);
  const std::uint64_t nevents = decode_u64le(tail + 20);
  if (nprocs == 0 || nprocs > kMaxProcs) {
    return fail(err, "implausible processor count " + std::to_string(nprocs) +
                         " (run " + rno + ", max " + std::to_string(kMaxProcs) +
                         ")");
  }
  run->nprocs = static_cast<ProcId>(nprocs);
  if (nevents > (file_size_ - pos_) / trace::kBinaryRecordBytes) {
    return fail(err, "event count exceeds file size (run " + rno + ")");
  }
  run->num_events = nevents;
  run->events.clear();
  run_events_left_ = nevents;
  ++runs_delivered_;
  return true;
}

bool TraceStream::next_events(std::vector<trace::TraceEvent>* batch,
                              std::size_t max, std::string* err) {
  if (err != nullptr) err->clear();
  batch->clear();
  if (file_ == nullptr) return fail(err, "stream not open");
  if (run_events_left_ == 0 || max == 0) return false;  // run exhausted

  const std::uint64_t want =
      max < run_events_left_ ? max : run_events_left_;
  buf_.resize(static_cast<std::size_t>(want) * trace::kBinaryRecordBytes);
  if (!read_exact(file_, buf_.data(), buf_.size())) {
    return fail(err, "truncated event record");
  }
  pos_ += buf_.size();
  run_events_left_ -= want;

  batch->reserve(static_cast<std::size_t>(want));
  const auto* p = reinterpret_cast<const unsigned char*>(buf_.data());
  for (std::uint64_t i = 0; i < want; ++i, p += trace::kBinaryRecordBytes) {
    trace::TraceEvent e;
    e.time = decode_u64le(p);
    e.proc = decode_u32le(p + 8);
    e.thread = decode_u64le(p + 12);
    const std::uint8_t kind = p[20];  // 3 pad bytes follow
    e.site = decode_u32le(p + 24);
    e.arg0 = decode_u64le(p + 28);
    e.arg1 = decode_u64le(p + 36);
    e.id = decode_u64le(p + 44);
    e.chain = decode_u64le(p + 52);
    e.parent = decode_u64le(p + 60);
    if (kind >= trace::kNumEventKinds) {
      return fail(err, "event record with out-of-range kind " +
                           std::to_string(kind));
    }
    e.kind = static_cast<trace::EventKind>(kind);
    batch->push_back(e);
  }
  return true;
}

}  // namespace olden::analyze
