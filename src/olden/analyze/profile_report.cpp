#include "olden/analyze/profile_report.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <utility>
#include <vector>

#include "olden/profile/feedback.hpp"

namespace olden::analyze {

namespace {

void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

/// The bucket that dominated an interval (ties resolve to the lower
/// bucket index, deterministically).
std::size_t dominant_bucket(const profile::IntervalRow& iv) {
  std::size_t best = 0;
  for (std::size_t b = 1; b < trace::kNumBuckets; ++b) {
    if (iv.cycles[b] > iv.cycles[best]) best = b;
  }
  return best;
}

std::string site_name(const profile::SiteRow& s) {
  if (!s.site_uid.empty()) return s.site_uid;
  return "site " + std::to_string(s.site);
}

void append_scoreboard_row(std::string& out, const profile::SiteRow& s,
                           const SiteGrade& g) {
  appendf(out, "    %-16s %-7s acc=%-8" PRIu64 " local=%5.1f%%",
          site_name(s).c_str(), s.mechanism.c_str(), s.accesses,
          100.0 * g.local_fraction);
  if (s.cache_hits + s.cache_misses > 0) {
    appendf(out, " hit=%5.1f%%", 100.0 * g.hit_rate);
  } else {
    out += "           ";
  }
  appendf(out, " mig=%-6" PRIu64, s.migrations);
  if (g.agree) {
    out += " agree\n";
  } else {
    appendf(out, " DISAGREE (recommend %s)\n", to_string(g.recommended));
  }
}

void append_run_report(std::string& out, const profile::ProfileRun& run,
                       std::size_t top, std::uint64_t* sites_total,
                       std::uint64_t* agree_total,
                       std::uint64_t* disagree_total) {
  appendf(out, "run %s (scheme %s, p=%u%s)\n", run.label.c_str(),
          run.scheme.c_str(), run.nprocs,
          run.sequential_baseline ? ", sequential baseline" : "");
  appendf(out,
          "  makespan %" PRIu64 " cycles, %zu intervals x %" PRIu64
          " cycles, %" PRIu64 " accesses, %" PRIu64 " migrations, %" PRIu64
          " future steals\n",
          run.makespan_cycles, run.intervals.size(), run.interval_cycles,
          run.total_accesses, run.total_migrations, run.total_future_steals);

  // Phase changes: where the dominant cycle bucket shifts between
  // consecutive intervals (TSP's build -> tour boundary, Health's list
  // churn onset, ...).
  if (run.intervals.size() > 1) {
    std::string changes;
    std::size_t prev = dominant_bucket(run.intervals[0]);
    for (std::size_t i = 1; i < run.intervals.size(); ++i) {
      const std::size_t cur = dominant_bucket(run.intervals[i]);
      if (cur != prev) {
        appendf(changes, "    interval %" PRIu64 " (cycle %" PRIu64 "): %s -> %s\n",
                run.intervals[i].interval, run.intervals[i].start_cycle,
                to_string(static_cast<trace::CycleBucket>(prev)),
                to_string(static_cast<trace::CycleBucket>(cur)));
        prev = cur;
      }
    }
    if (changes.empty()) {
      out += "  phase changes: none (dominant bucket "
             "stable)\n";
    } else {
      out += "  phase changes (dominant cycle bucket):\n" + changes;
    }
  }

  // Page heat, ranked by remote accesses (what the caching mechanism and
  // the coherence protocol actually fight over), local as tiebreak.
  if (!run.pages.empty()) {
    std::vector<const profile::PageRow*> ranked;
    ranked.reserve(run.pages.size());
    for (const profile::PageRow& p : run.pages) ranked.push_back(&p);
    std::sort(ranked.begin(), ranked.end(),
              [](const profile::PageRow* a, const profile::PageRow* b) {
                if (a->remote_accesses() != b->remote_accesses()) {
                  return a->remote_accesses() > b->remote_accesses();
                }
                if (a->local_accesses != b->local_accesses) {
                  return a->local_accesses > b->local_accesses;
                }
                return a->page < b->page;
              });
    const std::size_t n = std::min(top, ranked.size());
    appendf(out, "  page heat (top %zu of %zu by remote accesses):\n", n,
            ranked.size());
    for (std::size_t i = 0; i < n; ++i) {
      const profile::PageRow& p = *ranked[i];
      appendf(out,
              "    page %-8" PRIu64 " remote=%-8" PRIu64 " local=%-8" PRIu64
              " fills=%-6" PRIu64 " invalidated=%-6" PRIu64
              " ts_checks=%" PRIu64 "\n",
              p.page, p.remote_accesses(), p.local_accesses, p.line_fills,
              p.lines_invalidated, p.timestamp_checks);
    }
  }

  // The heuristic scoreboard. Baseline runs never engage a mechanism, so
  // they have no sites to grade.
  if (run.sites.empty()) {
    out += "  scoreboard: no profiled sites\n";
  } else {
    out += "  heuristic scoreboard (static decision vs observed):\n";
    std::uint64_t agree = 0;
    for (const profile::SiteRow& s : run.sites) {
      const SiteGrade g = grade_site(s);
      append_scoreboard_row(out, s, g);
      if (g.agree) ++agree;
    }
    *sites_total += run.sites.size();
    *agree_total += agree;
    *disagree_total += run.sites.size() - agree;
    appendf(out, "  sites: %zu (agree %" PRIu64 ", disagree %" PRIu64 ")\n",
            run.sites.size(), agree,
            static_cast<std::uint64_t>(run.sites.size()) - agree);
  }
  out += "\n";
}

}  // namespace

SiteGrade grade_site(const profile::SiteRow& s) {
  SiteGrade g;
  g.chosen = s.mechanism == "cache" ? Mechanism::kCache : Mechanism::kMigrate;
  g.recommended = g.chosen;
  if (s.accesses == 0) return g;  // never exercised: nothing to grade

  const std::uint64_t local = s.local_reads + s.local_writes;
  g.local_fraction =
      static_cast<double>(local) / static_cast<double>(s.accesses);
  const std::uint64_t reads = s.cache_hits + s.cache_misses;
  g.hit_rate = reads == 0 ? 0.0
                          : static_cast<double>(s.cache_hits) /
                                static_cast<double>(reads);

  if (g.chosen == Mechanism::kMigrate) {
    // A migrate site pays off when, once moved, the thread keeps finding
    // its data local — the same >= 90% affinity bar the static heuristic
    // used. A site that migrates on more than 10% of its accesses is
    // bouncing, and caching the data would have been cheaper.
    if (g.local_fraction < kScoreboardAffinityThreshold) {
      g.recommended = Mechanism::kCache;
      g.agree = false;
    }
  } else {
    // A cache site pays off when remote reads mostly hit. Flip only on
    // positive evidence: mostly-remote traffic AND a hit rate below the
    // floor. Write-only sites (write-through traffic, no reads) stay as
    // chosen — there is no reuse signal to judge them by.
    if (g.local_fraction < kScoreboardAffinityThreshold && reads > 0 &&
        g.hit_rate < kScoreboardHitRateFloor) {
      g.recommended = Mechanism::kMigrate;
      g.agree = false;
    }
  }
  return g;
}

std::string profile_human_report(const profile::ProfileDoc& doc,
                                 std::size_t top) {
  std::string out;
  appendf(out, "profile: %zu run(s), schema v%d\n\n", doc.runs.size(),
          doc.schema_version);
  std::uint64_t sites = 0, agree = 0, disagree = 0;
  for (const profile::ProfileRun& run : doc.runs) {
    append_run_report(out, run, top, &sites, &agree, &disagree);
  }
  appendf(out,
          "scoreboard: %" PRIu64 " sites, %" PRIu64 " agree, %" PRIu64
          " disagree\n",
          sites, agree, disagree);
  return out;
}

std::string feedback_from_profile(const profile::ProfileDoc& doc) {
  // Aggregate observed behaviour per stable (benchmark, site) identifier
  // over every non-baseline run, so one recommendation covers all three
  // coherence schemes of a bench_cell profile.
  std::map<std::pair<std::string, SiteId>, profile::SiteRow> agg;
  for (const profile::ProfileRun& run : doc.runs) {
    if (run.sequential_baseline || run.benchmark.empty()) continue;
    for (const profile::SiteRow& s : run.sites) {
      auto [it, fresh] = agg.try_emplace({run.benchmark, s.site}, s);
      if (fresh) continue;
      profile::SiteRow& a = it->second;
      a.local_reads += s.local_reads;
      a.local_writes += s.local_writes;
      a.cache_hits += s.cache_hits;
      a.cache_misses += s.cache_misses;
      a.write_throughs += s.write_throughs;
      a.migrations += s.migrations;
      a.accesses += s.accesses;
    }
  }
  std::string out = "# olden-profile-feedback v" +
                    std::to_string(profile::kFeedbackVersion) + "\n";
  out += "# benchmark site mechanism (recommended by the profile "
         "scoreboard)\n";
  for (const auto& [key, row] : agg) {
    const SiteGrade g = grade_site(row);
    appendf(out, "%s %u %s\n", key.first.c_str(), key.second,
            to_string(g.recommended));
  }
  return out;
}

}  // namespace olden::analyze
