// Offline reader for the binary trace log (format v2, "OLDNTRC2").
//
// The reader is the bridge between the runtime's observability layer and
// the analysis engine: it parses the bytes write_binary_trace() produced
// back into TraceEvents plus the per-run header (nprocs, makespan,
// dropped-event count) the analyses need. v1 logs are detected by magic
// and rejected with a versioned error, never mis-parsed.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "olden/trace/trace.hpp"

namespace olden::analyze {

/// One run parsed back out of a binary trace log.
struct TraceRun {
  std::string label;
  ProcId nprocs = 0;
  Cycles makespan = 0;
  /// Events the observer discarded at its retention limit. When non-zero
  /// the event stream is incomplete and analyses flag the run truncated.
  std::uint64_t events_dropped = 0;
  std::vector<trace::TraceEvent> events;

  [[nodiscard]] bool truncated() const { return events_dropped > 0; }
};

struct TraceFile {
  int version = 0;  ///< always kBinaryTraceVersion after a successful parse
  std::vector<TraceRun> runs;
};

/// Parse an in-memory binary trace. Returns false and sets *err on any
/// malformed input: wrong magic, v1 logs (named explicitly), truncated
/// framing, or out-of-range event kinds.
bool parse_binary_trace(std::string_view bytes, TraceFile* out,
                        std::string* err);

/// Read and parse a binary trace file.
bool read_binary_trace(const std::string& path, TraceFile* out,
                       std::string* err);

}  // namespace olden::analyze
