// Offline reader for the binary trace log (format v2, "OLDNTRC2").
//
// The reader is the bridge between the runtime's observability layer and
// the analysis engine: it parses the bytes write_binary_trace() produced
// back into TraceEvents plus the per-run header (nprocs, makespan,
// dropped-event count) the analyses need. v1 logs are detected by magic
// and rejected with a versioned error, never mis-parsed.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "olden/trace/trace.hpp"

namespace olden::analyze {

/// One run parsed back out of a binary trace log.
struct TraceRun {
  std::string label;
  ProcId nprocs = 0;
  Cycles makespan = 0;
  /// Events the observer discarded at its retention limit. When non-zero
  /// the event stream is incomplete and analyses flag the run truncated.
  std::uint64_t events_dropped = 0;
  std::vector<trace::TraceEvent> events;
  /// Total events recorded in the run's file header. Streaming consumers
  /// (TraceStream) leave `events` empty and report counts from here;
  /// event_count() picks the right source either way.
  std::uint64_t num_events = 0;

  [[nodiscard]] bool truncated() const { return events_dropped > 0; }
  [[nodiscard]] std::uint64_t event_count() const {
    return events.empty() ? num_events : events.size();
  }
};

struct TraceFile {
  int version = 0;  ///< always kBinaryTraceVersion after a successful parse
  std::vector<TraceRun> runs;
};

/// Parse an in-memory binary trace. Returns false and sets *err on any
/// malformed input: wrong magic, v1 logs (named explicitly), truncated
/// framing, out-of-range event kinds, or trailing bytes past the declared
/// runs (a back-patched header whose counts disagree with the records
/// present — e.g. an unfinalized streaming trace — is rejected rather
/// than silently analyzed as a prefix).
bool parse_binary_trace(std::string_view bytes, TraceFile* out,
                        std::string* err);

/// Read and parse a binary trace file.
bool read_binary_trace(const std::string& path, TraceFile* out,
                       std::string* err);

/// Streaming reader over a binary trace file: run headers and bounded
/// event batches instead of one giant vector, so multi-GB traces can be
/// analyzed without loading them (see olden-analyze --stream). Applies the
/// same validation as parse_binary_trace — magic / version / v1 detection,
/// counts checked against the file size, nprocs plausibility, event-kind
/// range — so corrupt logs fail with the same loud errors.
///
///   TraceStream ts;
///   ts.open(path, &err);
///   TraceRun run;                       // header only; events stays empty
///   while (ts.next_run(&run, &err)) {
///     while (ts.next_events(&batch, 65536, &err)) { ... }
///     // falls out with err empty when the run is exhausted
///   }
///   // next_run false + empty err = clean end of file
class TraceStream {
 public:
  TraceStream() = default;
  ~TraceStream();
  TraceStream(const TraceStream&) = delete;
  TraceStream& operator=(const TraceStream&) = delete;

  bool open(const std::string& path, std::string* err);
  [[nodiscard]] int version() const { return version_; }
  [[nodiscard]] std::uint32_t num_runs() const { return num_runs_; }

  /// Advance to the next run header. Skips any unread events of the
  /// current run. Returns false with *err empty at end of file, false with
  /// *err set on malformed input.
  bool next_run(TraceRun* run, std::string* err);

  /// Read up to `max` events of the current run into *batch (replaced,
  /// not appended). Returns false with *err empty when the run's events
  /// are exhausted, false with *err set on malformed input.
  bool next_events(std::vector<trace::TraceEvent>* batch, std::size_t max,
                   std::string* err);

 private:
  bool fail(std::string* err, const std::string& msg);

  std::FILE* file_ = nullptr;
  std::string path_;
  std::uint64_t file_size_ = 0;
  std::uint64_t pos_ = 0;
  int version_ = 0;
  std::uint32_t num_runs_ = 0;
  std::uint32_t runs_delivered_ = 0;
  std::uint64_t run_events_left_ = 0;
  std::string buf_;  ///< batch read buffer, reused across next_events calls
};

}  // namespace olden::analyze
