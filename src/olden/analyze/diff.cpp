#include "olden/analyze/diff.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <unordered_set>

#include "olden/analyze/classify.hpp"
#include "olden/analyze/report.hpp"

namespace olden::analyze {

namespace {

using jsonio::append_escaped;
using jsonio::append_kv;
using jsonio::append_kv_i64;
using trace::CycleBucket;
using trace::EventKind;
using trace::TraceEvent;

const char* kind_name(std::uint8_t kind) {
  if (kind == EdgeKey::kSourceKind) return "SOURCE";
  if (kind == EdgeKey::kSinkKind) return "SINK";
  return trace::to_string(static_cast<EventKind>(kind));
}

std::uint64_t magnitude(std::int64_t v) {
  return v < 0 ? static_cast<std::uint64_t>(-v) : static_cast<std::uint64_t>(v);
}

DiffSide side_of(const DiffProfile& p) {
  DiffSide s;
  s.label = p.label;
  s.nprocs = p.nprocs;
  s.makespan = p.makespan;
  s.events = p.events;
  s.truncated = p.truncated;
  return s;
}

/// Merge one partition's maps into rows, returning the full-partition
/// delta sum; rows past top_n are rolled into *other. Ranking is by
/// |delta| desc, then combined weight desc, then key asc — a total order,
/// so the report is deterministic.
template <class Key, class Out, class Fill>
std::int64_t merge_partition(const std::map<Key, std::uint64_t>& a,
                             const std::map<Key, std::uint64_t>& b,
                             std::size_t top_n, std::vector<Out>* rows,
                             DiffRow* other, Fill&& fill) {
  std::map<Key, DiffRow> merged;
  for (const auto& [k, v] : a) merged[k].a = v;
  for (const auto& [k, v] : b) merged[k].b = v;
  std::vector<std::pair<Key, DiffRow>> all;
  all.reserve(merged.size());
  std::int64_t sum = 0;
  for (auto& [k, row] : merged) {
    row.delta = static_cast<std::int64_t>(row.b) -
                static_cast<std::int64_t>(row.a);
    sum += row.delta;
    all.emplace_back(k, row);
  }
  std::sort(all.begin(), all.end(), [](const auto& x, const auto& y) {
    const std::uint64_t mx = magnitude(x.second.delta);
    const std::uint64_t my = magnitude(y.second.delta);
    if (mx != my) return mx > my;
    if (x.second.a + x.second.b != y.second.a + y.second.b) {
      return x.second.a + x.second.b > y.second.a + y.second.b;
    }
    return x.first < y.first;
  });
  *other = DiffRow{};
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (i < top_n) {
      rows->push_back(fill(all[i].first, all[i].second));
    } else {
      other->a += all[i].second.a;
      other->b += all[i].second.b;
      other->delta += all[i].second.delta;
    }
  }
  return sum;
}

void append_row(std::string& out, const DiffRow& row, bool comma) {
  append_kv(out, "a", row.a);
  append_kv(out, "b", row.b);
  append_kv_i64(out, "delta", row.delta, /*comma=*/false);
  out += comma ? "}," : "}";
}

/// `"key":N,` or `"key":null,` for the kNoSite / kNoPage sentinels.
void append_kv_or_null(std::string& out, const char* key, std::uint64_t v,
                       std::uint64_t sentinel) {
  if (v == sentinel) {
    out += "\"";
    out += key;
    out += "\":null,";
  } else {
    append_kv(out, key, v);
  }
}

}  // namespace

DiffProfile diff_profile(const TraceRun& run) {
  DiffProfile p;
  p.label = run.label;
  p.nprocs = run.nprocs;
  p.makespan = run.makespan;
  p.events = run.event_count();
  p.truncated = run.truncated();

  const CriticalPath cp = critical_path(run);
  p.buckets = cp.attribution;
  for (const PathStep& s : cp.steps) {
    if (s.weight == 0) continue;  // zero edges cannot carry delta
    EdgeKey key;
    key.src_kind = s.src == PathStep::kSourceStep
                       ? EdgeKey::kSourceKind
                       : static_cast<std::uint8_t>(run.events[s.src].kind);
    key.dst_kind = s.event == PathStep::kSinkStep
                       ? EdgeKey::kSinkKind
                       : static_cast<std::uint8_t>(run.events[s.event].kind);
    key.bucket = static_cast<std::uint8_t>(s.bucket);
    key.site = s.site;
    p.site_cycles[s.site] += s.weight;
    p.page_cycles[s.page] += s.weight;
    p.edge_cycles[key] += s.weight;
  }

  std::unordered_set<std::uint64_t> seen_chains;
  for (const TraceEvent& e : run.events) {
    if (e.kind == EventKind::kRetransmit) {
      ++p.retries_by_class[retransmit_class_index(e.arg0)];
    }
    if (e.chain == trace::kNoChain) continue;
    if (seen_chains.insert(e.chain).second) {
      ++p.chains;
      ++p.chain_counts[{static_cast<std::uint8_t>(e.kind), e.site}];
    }
  }
  return p;
}

bool diff_runs(const DiffProfile& a, const DiffProfile& b, std::size_t top_n,
               DiffReport* out, std::string* err) {
  *out = DiffReport{};
  out->a = side_of(a);
  out->b = side_of(b);
  out->makespan_delta = static_cast<std::int64_t>(b.makespan) -
                        static_cast<std::int64_t>(a.makespan);
  out->makespan_delta_percent =
      a.makespan == 0 ? 0.0
                      : 100.0 * static_cast<double>(out->makespan_delta) /
                            static_cast<double>(a.makespan);

  for (std::size_t i = 0; i < trace::kNumBuckets; ++i) {
    DiffRow& row = out->buckets[i];
    row.a = a.buckets[i];
    row.b = b.buckets[i];
    row.delta =
        static_cast<std::int64_t>(row.b) - static_cast<std::int64_t>(row.a);
    out->bucket_delta_sum += row.delta;
  }
  out->site_delta_sum = merge_partition(
      a.site_cycles, b.site_cycles, top_n, &out->sites, &out->sites_other,
      [](SiteId site, const DiffRow& row) { return SiteDiff{site, row}; });
  out->page_delta_sum = merge_partition(
      a.page_cycles, b.page_cycles, top_n, &out->pages, &out->pages_other,
      [](std::uint64_t page, const DiffRow& row) {
        return PageDiff{page, row};
      });
  out->edge_delta_sum = merge_partition(
      a.edge_cycles, b.edge_cycles, top_n, &out->edges, &out->edges_other,
      [](const EdgeKey& key, const DiffRow& row) {
        return EdgeDiff{key, row};
      });

  out->chains_a = a.chains;
  out->chains_b = b.chains;
  for (std::size_t i = 0; i < out->retries_by_class.size(); ++i) {
    DiffRow& row = out->retries_by_class[i];
    row.a = a.retries_by_class[i];
    row.b = b.retries_by_class[i];
    row.delta =
        static_cast<std::int64_t>(row.b) - static_cast<std::int64_t>(row.a);
  }
  for (const auto& [sig, ca] : a.chain_counts) {
    const auto it = b.chain_counts.find(sig);
    if (it != b.chain_counts.end()) {
      out->chains_aligned += ca < it->second ? ca : it->second;
    }
  }

  // The exactness invariant: every partition of the two critical paths
  // must balance to the makespan delta. A mismatch means a profile bug
  // (an edge dropped or double-counted), so refuse to report.
  const struct {
    const char* name;
    std::int64_t sum;
  } checks[] = {{"bucket", out->bucket_delta_sum},
                {"site", out->site_delta_sum},
                {"page", out->page_delta_sum},
                {"edge", out->edge_delta_sum}};
  for (const auto& c : checks) {
    if (c.sum != out->makespan_delta) {
      if (err != nullptr) {
        *err = "diff invariant violated: " + std::string(c.name) +
               " deltas sum to " + std::to_string(c.sum) +
               ", makespan delta is " + std::to_string(out->makespan_delta) +
               " ('" + a.label + "' vs '" + b.label + "')";
      }
      return false;
    }
  }
  return true;
}

std::string human_diff(const DiffReport& rep) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof buf, "diff: %s -> %s\n", rep.a.label.c_str(),
                rep.b.label.c_str());
  out += buf;
  for (const auto* side : {&rep.a, &rep.b}) {
    std::snprintf(buf, sizeof buf,
                  "  %s: %s (%u procs, makespan %" PRIu64 " cycles, %" PRIu64
                  " events%s)\n",
                  side == &rep.a ? "A" : "B",
                  side->path.empty() ? "<memory>" : side->path.c_str(),
                  side->nprocs, side->makespan, side->events,
                  side->truncated ? ", TRUNCATED" : "");
    out += buf;
  }
  std::snprintf(buf, sizeof buf,
                "  makespan delta: %+" PRId64 " cycles (%+.2f%%)\n",
                rep.makespan_delta, rep.makespan_delta_percent);
  out += buf;

  std::snprintf(buf, sizeof buf,
                "  critical-path buckets (deltas sum to %+" PRId64 "):\n",
                rep.makespan_delta);
  out += buf;
  for (std::size_t i = 0; i < trace::kNumBuckets; ++i) {
    const DiffRow& row = rep.buckets[i];
    std::snprintf(buf, sizeof buf,
                  "    %-12s %12" PRIu64 " -> %12" PRIu64 "  %+12" PRId64 "\n",
                  trace::to_string(static_cast<CycleBucket>(i)), row.a, row.b,
                  row.delta);
    out += buf;
  }

  out += "  top sites by |delta|:\n";
  if (rep.sites.empty()) out += "    (no attributed cycles)\n";
  for (const SiteDiff& s : rep.sites) {
    char name[32];
    if (s.site == trace::kNoSite) {
      std::snprintf(name, sizeof name, "(no site)");
    } else {
      std::snprintf(name, sizeof name, "site %u", s.site);
    }
    std::snprintf(buf, sizeof buf,
                  "    %-12s %12" PRIu64 " -> %12" PRIu64 "  %+12" PRId64 "\n",
                  name, s.row.a, s.row.b, s.row.delta);
    out += buf;
  }
  if (rep.sites_other.a + rep.sites_other.b > 0 || rep.sites_other.delta != 0) {
    std::snprintf(buf, sizeof buf,
                  "    %-12s %12" PRIu64 " -> %12" PRIu64 "  %+12" PRId64 "\n",
                  "(other)", rep.sites_other.a, rep.sites_other.b,
                  rep.sites_other.delta);
    out += buf;
  }

  out += "  top pages by |delta|:\n";
  if (rep.pages.empty()) out += "    (no attributed cycles)\n";
  for (const PageDiff& p : rep.pages) {
    char name[32];
    if (p.page == classify::kNoPage) {
      std::snprintf(name, sizeof name, "(unpaged)");
    } else {
      std::snprintf(name, sizeof name, "page %" PRIu64, p.page);
    }
    std::snprintf(buf, sizeof buf,
                  "    %-12s %12" PRIu64 " -> %12" PRIu64 "  %+12" PRId64 "\n",
                  name, p.row.a, p.row.b, p.row.delta);
    out += buf;
  }
  if (rep.pages_other.a + rep.pages_other.b > 0 || rep.pages_other.delta != 0) {
    std::snprintf(buf, sizeof buf,
                  "    %-12s %12" PRIu64 " -> %12" PRIu64 "  %+12" PRId64 "\n",
                  "(other)", rep.pages_other.a, rep.pages_other.b,
                  rep.pages_other.delta);
    out += buf;
  }

  out += "  top responsible edges (aligned by structure):\n";
  if (rep.edges.empty()) out += "    (no attributed cycles)\n";
  for (const EdgeDiff& e : rep.edges) {
    char where[48] = "";
    if (e.key.site != trace::kNoSite) {
      std::snprintf(where, sizeof where, " @ site %u", e.key.site);
    }
    std::snprintf(buf, sizeof buf,
                  "    %+12" PRId64 " %-12s %s -> %s%s  (%" PRIu64
                  " -> %" PRIu64 ")\n",
                  e.row.delta,
                  trace::to_string(static_cast<CycleBucket>(e.key.bucket)),
                  kind_name(e.key.src_kind), kind_name(e.key.dst_kind), where,
                  e.row.a, e.row.b);
    out += buf;
  }
  if (rep.edges_other.a + rep.edges_other.b > 0 || rep.edges_other.delta != 0) {
    std::snprintf(buf, sizeof buf,
                  "    %+12" PRId64 " %-12s %s  (%" PRIu64 " -> %" PRIu64
                  ")\n",
                  rep.edges_other.delta, "", "(other edges)",
                  rep.edges_other.a, rep.edges_other.b);
    out += buf;
  }

  bool any_retries = false;
  for (const DiffRow& row : rep.retries_by_class) {
    any_retries = any_retries || row.a + row.b > 0;
  }
  if (any_retries) {
    out += "  retransmits by message class:\n";
    for (std::size_t i = 0; i < rep.retries_by_class.size(); ++i) {
      const DiffRow& row = rep.retries_by_class[i];
      if (row.a + row.b == 0) continue;
      std::snprintf(buf, sizeof buf,
                    "    %-14s %12" PRIu64 " -> %12" PRIu64 "  %+12" PRId64
                    "\n",
                    FaultSummary::class_label(i), row.a, row.b, row.delta);
      out += buf;
    }
  }

  std::snprintf(buf, sizeof buf,
                "  chains: %" PRIu64 " in A, %" PRIu64 " in B, %" PRIu64
                " aligned by spawn signature\n",
                rep.chains_a, rep.chains_b, rep.chains_aligned);
  out += buf;
  std::snprintf(buf, sizeof buf,
                "  invariant: bucket/site/page/edge deltas each sum to "
                "%+" PRId64 " (exact)\n",
                rep.makespan_delta);
  out += buf;
  return out;
}

namespace {

void append_side(std::string& out, const char* key, const DiffSide& side) {
  out += "\"";
  out += key;
  out += "\":{\"path\":\"";
  append_escaped(out, side.path);
  out += "\",\"label\":\"";
  append_escaped(out, side.label);
  out += "\",";
  append_kv(out, "nprocs", side.nprocs);
  append_kv(out, "makespan_cycles", side.makespan);
  append_kv(out, "events", side.events);
  out += "\"truncated\":";
  out += side.truncated ? "true" : "false";
  out += "},";
}

}  // namespace

std::string json_diff(const std::vector<DiffReport>& reps) {
  std::string out;
  out.reserve(1 << 14);
  out += "{\"diff_schema_version\":";
  out += std::to_string(kDiffSchemaVersion);
  out += ",\"generator\":\"olden-analyze\",";
  append_kv(out, "trace_version",
            static_cast<std::uint64_t>(trace::kBinaryTraceVersion));
  out += "\"diffs\":[";
  for (std::size_t r = 0; r < reps.size(); ++r) {
    const DiffReport& rep = reps[r];
    if (r != 0) out += ",";
    out += "\n{";
    append_side(out, "a", rep.a);
    append_side(out, "b", rep.b);
    append_kv_i64(out, "makespan_delta_cycles", rep.makespan_delta);
    char buf[64];
    std::snprintf(buf, sizeof buf, "\"makespan_delta_percent\":%.4f,",
                  rep.makespan_delta_percent);
    out += buf;
    out += "\"exact\":true,";

    out += "\"buckets\":[";
    for (std::size_t i = 0; i < trace::kNumBuckets; ++i) {
      if (i != 0) out += ",";
      out += "{\"bucket\":\"";
      out += trace::to_string(static_cast<CycleBucket>(i));
      out += "\",";
      append_row(out, rep.buckets[i], /*comma=*/false);
    }
    out += "],";

    out += "\"sites\":{";
    append_kv_i64(out, "delta_sum", rep.site_delta_sum);
    out += "\"top\":[";
    for (std::size_t i = 0; i < rep.sites.size(); ++i) {
      if (i != 0) out += ",";
      out += "{";
      append_kv_or_null(out, "site", rep.sites[i].site, trace::kNoSite);
      append_row(out, rep.sites[i].row, /*comma=*/false);
    }
    out += "],\"other\":{";
    append_row(out, rep.sites_other, /*comma=*/false);
    out += "},";

    out += "\"pages\":{";
    append_kv_i64(out, "delta_sum", rep.page_delta_sum);
    out += "\"top\":[";
    for (std::size_t i = 0; i < rep.pages.size(); ++i) {
      if (i != 0) out += ",";
      out += "{";
      append_kv_or_null(out, "page", rep.pages[i].page, classify::kNoPage);
      append_row(out, rep.pages[i].row, /*comma=*/false);
    }
    out += "],\"other\":{";
    append_row(out, rep.pages_other, /*comma=*/false);
    out += "},";

    out += "\"edges\":{";
    append_kv_i64(out, "delta_sum", rep.edge_delta_sum);
    out += "\"top\":[";
    for (std::size_t i = 0; i < rep.edges.size(); ++i) {
      const EdgeDiff& e = rep.edges[i];
      if (i != 0) out += ",";
      out += "{\"src\":\"";
      out += kind_name(e.key.src_kind);
      out += "\",\"dst\":\"";
      out += kind_name(e.key.dst_kind);
      out += "\",\"bucket\":\"";
      out += trace::to_string(static_cast<CycleBucket>(e.key.bucket));
      out += "\",";
      append_kv_or_null(out, "site", e.key.site, trace::kNoSite);
      append_row(out, e.row, /*comma=*/false);
    }
    out += "],\"other\":{";
    append_row(out, rep.edges_other, /*comma=*/false);
    out += "},";

    out += "\"retries_by_class\":{";
    for (std::size_t i = 0; i < rep.retries_by_class.size(); ++i) {
      out += "\"";
      out += FaultSummary::class_label(i);
      out += "\":{";
      append_row(out, rep.retries_by_class[i],
                 /*comma=*/i + 1 < rep.retries_by_class.size());
    }
    out += "},";

    out += "\"chains\":{";
    append_kv(out, "a", rep.chains_a);
    append_kv(out, "b", rep.chains_b);
    append_kv(out, "aligned", rep.chains_aligned, /*comma=*/false);
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace olden::analyze
