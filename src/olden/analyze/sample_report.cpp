#include "olden/analyze/sample_report.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace olden::analyze {

namespace {

// --- a restricted JSON parser, as in profile_reader.cpp, but admitting
// the floating-point numbers stats documents carry --------------------------

struct Value {
  enum class Kind { kObject, kArray, kString, kUint, kDouble, kBool } kind =
      Kind::kUint;
  std::map<std::string, Value> object;
  std::vector<Value> array;
  std::string string;
  std::uint64_t uint = 0;
  double real = 0.0;
  bool boolean = false;
};

class Parser {
 public:
  Parser(const char* data, std::size_t size, std::string* err)
      : p_(data), end_(data + size), err_(err) {}

  bool parse(Value* out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (p_ != end_) return fail("trailing bytes after document");
    return true;
  }

 private:
  bool fail(const std::string& what) {
    if (err_ != nullptr && err_->empty()) *err_ = "stats: " + what;
    return false;
  }

  void skip_ws() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                          *p_ == '\r')) {
      ++p_;
    }
  }

  bool parse_value(Value* out) {
    if (p_ == end_) return fail("unexpected end of input");
    switch (*p_) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': out->kind = Value::Kind::kString;
                return parse_string(&out->string);
      case 't':
      case 'f': return parse_bool(out);
      default: return parse_number(out);
    }
  }

  bool parse_object(Value* out) {
    out->kind = Value::Kind::kObject;
    ++p_;  // '{'
    skip_ws();
    if (p_ != end_ && *p_ == '}') {
      ++p_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (p_ == end_ || *p_ != ':') return fail("expected ':' in object");
      ++p_;
      skip_ws();
      Value v;
      if (!parse_value(&v)) return false;
      out->object.emplace(std::move(key), std::move(v));
      skip_ws();
      if (p_ == end_) return fail("unterminated object");
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == '}') {
        ++p_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(Value* out) {
    out->kind = Value::Kind::kArray;
    ++p_;  // '['
    skip_ws();
    if (p_ != end_ && *p_ == ']') {
      ++p_;
      return true;
    }
    while (true) {
      skip_ws();
      Value v;
      if (!parse_value(&v)) return false;
      out->array.push_back(std::move(v));
      skip_ws();
      if (p_ == end_) return fail("unterminated array");
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == ']') {
        ++p_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string* out) {
    if (p_ == end_ || *p_ != '"') return fail("expected string");
    ++p_;
    out->clear();
    while (p_ != end_ && *p_ != '"') {
      char c = *p_++;
      if (c == '\\') {
        if (p_ == end_) return fail("unterminated escape");
        const char e = *p_++;
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'u': {
            // The exporters only \u-escape control characters; decode the
            // low byte and reject anything wider.
            if (end_ - p_ < 4) return fail("truncated \\u escape");
            unsigned v = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = *p_++;
              v <<= 4;
              if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                v |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                v |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            if (v > 0xff) return fail("non-latin \\u escape unsupported");
            c = static_cast<char>(v);
            break;
          }
          default: return fail("unsupported escape");
        }
      }
      out->push_back(c);
    }
    if (p_ == end_) return fail("unterminated string");
    ++p_;  // closing quote
    return true;
  }

  bool parse_bool(Value* out) {
    out->kind = Value::Kind::kBool;
    if (end_ - p_ >= 4 && std::strncmp(p_, "true", 4) == 0) {
      out->boolean = true;
      p_ += 4;
      return true;
    }
    if (end_ - p_ >= 5 && std::strncmp(p_, "false", 5) == 0) {
      out->boolean = false;
      p_ += 5;
      return true;
    }
    return fail("expected true/false");
  }

  bool parse_number(Value* out) {
    const char* start = p_;
    if (p_ != end_ && *p_ == '-') ++p_;
    while (p_ != end_ && *p_ >= '0' && *p_ <= '9') ++p_;
    bool is_real = false;
    if (p_ != end_ && (*p_ == '.' || *p_ == 'e' || *p_ == 'E')) {
      is_real = true;
      if (*p_ == '.') {
        ++p_;
        while (p_ != end_ && *p_ >= '0' && *p_ <= '9') ++p_;
      }
      if (p_ != end_ && (*p_ == 'e' || *p_ == 'E')) {
        ++p_;
        if (p_ != end_ && (*p_ == '+' || *p_ == '-')) ++p_;
        while (p_ != end_ && *p_ >= '0' && *p_ <= '9') ++p_;
      }
    }
    if (p_ == start) return fail("expected a value");
    const std::string text(start, static_cast<std::size_t>(p_ - start));
    if (is_real || text[0] == '-') {
      out->kind = Value::Kind::kDouble;
      out->real = std::strtod(text.c_str(), nullptr);
      return true;
    }
    out->kind = Value::Kind::kUint;
    std::uint64_t v = 0;
    for (char c : text) {
      const std::uint64_t d = static_cast<std::uint64_t>(c - '0');
      if (v > (UINT64_MAX - d) / 10) return fail("integer overflow");
      v = v * 10 + d;
    }
    out->uint = v;
    return true;
  }

  const char* p_;
  const char* end_;
  std::string* err_;
};

const Value* get_field(const Value& obj, const char* key) {
  if (obj.kind != Value::Kind::kObject) return nullptr;
  const auto it = obj.object.find(key);
  return it == obj.object.end() ? nullptr : &it->second;
}

bool get_uint(const Value& obj, const char* key, std::uint64_t* out,
              std::string* err) {
  const Value* v = get_field(obj, key);
  if (v == nullptr || v->kind != Value::Kind::kUint) {
    if (err != nullptr && err->empty()) {
      *err = std::string("stats: missing or non-integer field '") + key + "'";
    }
    return false;
  }
  *out = v->uint;
  return true;
}

bool get_string(const Value& obj, const char* key, std::string* out,
                std::string* err) {
  const Value* v = get_field(obj, key);
  if (v == nullptr || v->kind != Value::Kind::kString) {
    if (err != nullptr && err->empty()) {
      *err = std::string("stats: missing or non-string field '") + key + "'";
    }
    return false;
  }
  *out = v->string;
  return true;
}

bool load_estimate(const Value& obj, SampledEstimate* out, std::string* err) {
  std::uint64_t est = 0;
  std::uint64_t ci = 0;
  if (!get_uint(obj, "estimate", &est, err) ||
      !get_uint(obj, "ci95", &ci, err)) {
    return false;
  }
  out->estimate = est;
  out->ci95 = ci;
  return true;
}

bool load_uint_map(const Value& obj, std::map<std::string, std::uint64_t>* out,
                   std::string* err) {
  if (obj.kind != Value::Kind::kObject) {
    if (err != nullptr && err->empty()) *err = "stats: expected an object";
    return false;
  }
  for (const auto& [k, v] : obj.object) {
    if (v.kind != Value::Kind::kUint) {
      if (err != nullptr && err->empty()) {
        *err = "stats: non-integer entry '" + k + "'";
      }
      return false;
    }
    (*out)[k] = v.uint;
  }
  return true;
}

bool load_estimate_map(const Value& obj,
                       std::map<std::string, SampledEstimate>* out,
                       std::string* err) {
  if (obj.kind != Value::Kind::kObject) {
    if (err != nullptr && err->empty()) *err = "stats: expected an object";
    return false;
  }
  for (const auto& [k, v] : obj.object) {
    SampledEstimate e;
    if (!load_estimate(v, &e, err)) return false;
    (*out)[k] = e;
  }
  return true;
}

bool load_run(const Value& rv, SampledRun* run, std::string* err) {
  if (!get_string(rv, "label", &run->label, err)) return false;
  const Value* config = get_field(rv, "config");
  if (config == nullptr) {
    if (err != nullptr && err->empty()) *err = "stats: run without config";
    return false;
  }
  std::uint64_t nprocs = 0;
  if (!get_uint(*config, "nprocs", &nprocs, err) ||
      !get_string(*config, "scheme", &run->scheme, err)) {
    return false;
  }
  run->nprocs = static_cast<std::uint32_t>(nprocs);
  if (const Value* b = get_field(*config, "benchmark");
      b != nullptr && b->kind == Value::Kind::kString) {
    run->benchmark = b->string;
  }
  if (!get_uint(rv, "makespan_cycles", &run->makespan, err)) return false;

  const Value* sampled = get_field(rv, "sampled");
  run->sampled = sampled != nullptr &&
                 sampled->kind == Value::Kind::kBool && sampled->boolean;
  if (!run->sampled) return true;

  const Value* sample = get_field(rv, "sample");
  if (sample == nullptr) {
    if (err != nullptr && err->empty()) {
      *err = "stats: sampled run without a sample block";
    }
    return false;
  }
  if (!get_uint(*sample, "window_cycles", &run->window_cycles, err) ||
      !get_uint(*sample, "detail_cycles", &run->detail_cycles, err) ||
      !get_uint(*sample, "offset_cycles", &run->offset_cycles, err) ||
      !get_uint(*sample, "windows", &run->windows, err) ||
      !get_uint(*sample, "measured_cycles", &run->measured_cycles, err)) {
    return false;
  }
  const Value* measured = get_field(rv, "measured");
  const Value* estimates = get_field(rv, "estimates");
  if (measured == nullptr || estimates == nullptr) {
    if (err != nullptr && err->empty()) {
      *err = "stats: sampled run without measured/estimates blocks";
    }
    return false;
  }
  const Value* mb = get_field(*measured, "bucket_cycles");
  const Value* me = get_field(*measured, "event_counts");
  const Value* em = get_field(*estimates, "makespan");
  const Value* eb = get_field(*estimates, "buckets");
  const Value* ee = get_field(*estimates, "event_counts");
  if (mb == nullptr || me == nullptr || em == nullptr || eb == nullptr ||
      ee == nullptr) {
    if (err != nullptr && err->empty()) {
      *err = "stats: sampled run with incomplete measured/estimates blocks";
    }
    return false;
  }
  return load_uint_map(*mb, &run->measured_buckets, err) &&
         load_uint_map(*me, &run->measured_events, err) &&
         load_estimate(*em, &run->makespan_estimate, err) &&
         load_estimate_map(*eb, &run->bucket_estimates, err) &&
         load_estimate_map(*ee, &run->event_estimates, err);
}

}  // namespace

bool load_sampled_stats(const std::string& path, SampledStatsDoc* out,
                        std::string* err) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (err != nullptr) *err = "cannot open " + path;
    return false;
  }
  std::string data;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) data.append(buf, n);
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) {
    if (err != nullptr) *err = "read error on " + path;
    return false;
  }

  Value doc;
  Parser parser(data.data(), data.size(), err);
  if (!parser.parse(&doc)) return false;

  std::uint64_t version = 0;
  if (!get_uint(doc, "schema_version", &version, err)) return false;
  out->schema_version = static_cast<int>(version);
  std::string generator;
  if (!get_string(doc, "generator", &generator, err)) return false;
  if (generator != "olden-trace") {
    if (err != nullptr) *err = "stats: unknown generator '" + generator + "'";
    return false;
  }
  if (version < 5) {
    if (err != nullptr) {
      *err = "stats: schema v" + std::to_string(version) +
             " predates sampling (need v5+); re-run with --sample";
    }
    return false;
  }
  const Value* runs = get_field(doc, "runs");
  if (runs == nullptr || runs->kind != Value::Kind::kArray) {
    if (err != nullptr) *err = "stats: missing runs array";
    return false;
  }
  for (const Value& rv : runs->array) {
    SampledRun run;
    if (!load_run(rv, &run, err)) return false;
    out->runs.push_back(std::move(run));
  }
  return true;
}

std::string sample_human_report(const SampledStatsDoc& doc, std::size_t top) {
  std::string out;
  char buf[256];
  std::size_t sampled_runs = 0;
  for (const SampledRun& run : doc.runs) {
    if (!run.sampled) continue;
    ++sampled_runs;
    std::snprintf(buf, sizeof buf,
                  "sampled run: %s (scheme %s, %u procs)\n",
                  run.label.c_str(), run.scheme.c_str(), run.nprocs);
    out += buf;
    const double pct =
        run.makespan == 0
            ? 0.0
            : 100.0 * static_cast<double>(run.measured_cycles) /
                  static_cast<double>(run.makespan);
    std::snprintf(buf, sizeof buf,
                  "  schedule %" PRIu64 ":%" PRIu64 ":%" PRIu64
                  " — %" PRIu64 " windows, %" PRIu64
                  " of %" PRIu64 " cycles measured (%.2f%%)\n",
                  run.window_cycles, run.detail_cycles, run.offset_cycles,
                  run.windows, run.measured_cycles, run.makespan, pct);
    out += buf;
    std::snprintf(buf, sizeof buf, "  %-12s %16s %16s %10s\n", "bucket",
                  "estimate", "ci95", "ci/est");
    out += buf;
    for (const auto& [name, e] : run.bucket_estimates) {
      const double rel = e.estimate == 0
                             ? 0.0
                             : 100.0 * static_cast<double>(e.ci95) /
                                   static_cast<double>(e.estimate);
      std::snprintf(buf, sizeof buf,
                    "  %-12s %16" PRIu64 " %16" PRIu64 " %9.2f%%\n",
                    name.c_str(), e.estimate, e.ci95, rel);
      out += buf;
    }
    // Largest event-count estimates first; the map is name-ordered, so
    // collect and sort by estimate for the ranking.
    std::vector<std::pair<std::string, SampledEstimate>> events(
        run.event_estimates.begin(), run.event_estimates.end());
    std::stable_sort(events.begin(), events.end(),
                     [](const auto& a, const auto& b) {
                       return a.second.estimate > b.second.estimate;
                     });
    if (!events.empty()) {
      std::snprintf(buf, sizeof buf, "  top event estimates (of %zu):\n",
                    events.size());
      out += buf;
    }
    for (std::size_t i = 0; i < events.size() && i < top; ++i) {
      std::snprintf(buf, sizeof buf,
                    "  %-24s %16" PRIu64 " ±%" PRIu64 "\n",
                    events[i].first.c_str(), events[i].second.estimate,
                    events[i].second.ci95);
      out += buf;
    }
    out += "\n";
  }
  std::snprintf(buf, sizeof buf,
                "%zu sampled run%s (%zu exact run%s skipped)\n", sampled_runs,
                sampled_runs == 1 ? "" : "s", doc.runs.size() - sampled_runs,
                doc.runs.size() - sampled_runs == 1 ? "" : "s");
  out += buf;
  return out;
}

}  // namespace olden::analyze
