// Edge-bucket classification for critical-path extraction.
//
// Shared by the in-memory extractor (critical_path.cpp) and the
// bounded-memory streaming analyzer (streaming.cpp): both must attribute
// identical buckets to identical edges or their reports diverge, so the
// classification lives in exactly one place. The functions take scalar
// (kind, arg0 > 0) views of the endpoints rather than whole events
// because the streaming pass retains only packed per-event fields, never
// whole events.
#pragma once

#include "olden/trace/trace.hpp"

namespace olden::analyze::classify {

/// Sentinel for "this event is not about a page" (see page_of).
inline constexpr std::uint64_t kNoPage = ~std::uint64_t{0};

/// The page an event is about, or kNoPage. Only the cache/coherence kinds
/// carry a page id in arg0; kCacheFlush's arg0 is a line count and the
/// fault kinds carry processor/sequence payloads, so both map to kNoPage.
/// Shared by the in-memory and streaming diff-profile builders — per-page
/// delta attribution must bucket identical events identically in both.
inline std::uint64_t page_of(trace::EventKind kind, std::uint64_t arg0) {
  using trace::EventKind;
  switch (kind) {
    case EventKind::kCacheHit:
    case EventKind::kCacheMiss:
    case EventKind::kCacheLineFill:
    case EventKind::kLineInvalidate:
    case EventKind::kTimestampCheck:
    // The coherence wire messages all carry the page in arg0 too.
    case EventKind::kFillRequest:
    case EventKind::kFillReply:
    case EventKind::kInvalidatePush:
    case EventKind::kInvalidateAck:
    case EventKind::kTsCheckRequest:
    case EventKind::kTsCheckReply:
      return arg0;
    default:
      return kNoPage;
  }
}

/// What one same-processor gap ending at the destination was spent on.
/// `dst_arg0_pos` is dst.arg0 > 0 (whether a flush / suspect-marking
/// actually dropped or marked anything).
inline trace::CycleBucket dst_bucket(trace::EventKind dst_kind,
                                     bool dst_arg0_pos) {
  using trace::CycleBucket;
  using trace::EventKind;
  switch (dst_kind) {
    case EventKind::kCacheMiss:
    case EventKind::kCacheLineFill:
    // Reaching a fill request/reply on the processor's own timeline is
    // part of servicing a miss.
    case EventKind::kFillRequest:
    case EventKind::kFillReply:
      return CycleBucket::kCacheStall;
    case EventKind::kLineInvalidate:
    case EventKind::kTimestampCheck:
    case EventKind::kInvalidatePush:
    case EventKind::kTsCheckRequest:
    case EventKind::kTsCheckReply:
    // An adaptive flip's own cost is its drain — coherence traffic.
    case EventKind::kSchemeFlip:
      return CycleBucket::kCoherence;
    // The ack closing an invalidation push is protocol overhead.
    case EventKind::kInvalidateAck:
      return CycleBucket::kRetry;
    // An acquire-time flush / suspect-marking that dropped or marked
    // nothing did no coherence work; the gap leading to it was the thread
    // computing (local work emits no events, so such gaps can be long).
    case EventKind::kCacheFlush:
    case EventKind::kMarkSuspect:
      return dst_arg0_pos ? CycleBucket::kCoherence : CycleBucket::kCompute;
    // Reaching an arrival / steal along the processor's own timeline means
    // the processor sat between its previous event and the hand-off.
    case EventKind::kMigrationArrive:
    case EventKind::kReturnStubArrive:
    case EventKind::kFutureSteal:
      return CycleBucket::kIdle;
    // Fault plane: a sender reaching its own retransmit sat out the ack
    // timeout — that wait is protocol overhead, not computation. Other
    // fault events are wire-side observations the processor merely
    // witnessed while waiting.
    case EventKind::kRetransmit:
      return CycleBucket::kRetry;
    case EventKind::kFaultDrop:
    case EventKind::kFaultDelay:
    case EventKind::kFaultDuplicate:
    case EventKind::kDupSuppressed:
    case EventKind::kHiccup:
      return CycleBucket::kIdle;
    default:
      return CycleBucket::kCompute;
  }
}

/// What a same-processor gap between consecutive events was spent on.
/// After an event that removed the running thread from the processor
/// (a blocked touch, a migration or return-stub departure), whatever
/// follows on this processor waited — the gap is idle no matter what the
/// next event is; otherwise the destination kind names the work.
inline trace::CycleBucket chain_bucket(trace::EventKind src_kind,
                                       trace::EventKind dst_kind,
                                       bool dst_arg0_pos) {
  using trace::CycleBucket;
  using trace::EventKind;
  switch (src_kind) {
    case EventKind::kTouchBlock:
    case EventKind::kMigrationDepart:
    case EventKind::kReturnStubSend:
      return CycleBucket::kIdle;
    default:
      return dst_bucket(dst_kind, dst_arg0_pos);
  }
}

/// What a causal (parent -> child) gap was spent on.
inline trace::CycleBucket causal_bucket(trace::EventKind src_kind,
                                        trace::EventKind dst_kind,
                                        bool dst_arg0_pos) {
  using trace::CycleBucket;
  using trace::EventKind;
  switch (dst_kind) {
    case EventKind::kMigrationArrive:
    case EventKind::kReturnStubArrive:
      return CycleBucket::kMigration;  // depart -> arrive transit
    // A causal edge into a fault-plane event (depart -> drop/retransmit/
    // suppressed duplicate) is time the message spent fighting the wire.
    case EventKind::kRetransmit:
    case EventKind::kFaultDrop:
    case EventKind::kFaultDelay:
    case EventKind::kFaultDuplicate:
    case EventKind::kDupSuppressed:
      return CycleBucket::kRetry;
    case EventKind::kFutureSteal:
      // Resolve-created steals waited on the resolution message; idle
      // steals waited for the continuation to age in the work list.
      return src_kind == EventKind::kFutureResolve ? CycleBucket::kMigration
                                                   : CycleBucket::kIdle;
    default:
      // A touch wake-up: the waiter's next step waited on the resolve's
      // delivery. Any other causal gap is sequential work.
      if (src_kind == EventKind::kFutureResolve) return CycleBucket::kMigration;
      return dst_bucket(dst_kind, dst_arg0_pos);
  }
}

}  // namespace olden::analyze::classify
