// The per-processor software cache of §3.2 and Figure 1.
//
// Each processor uses its local memory as a large fully-associative
// write-through cache. Allocation happens at page (2 KB) granularity and
// transfers at line (64 B) granularity. Because the CM-5 port cannot rely on
// virtual-memory support, translation goes through a 1024-bucket hash table
// whose buckets hold short chains of page entries; each entry carries the
// page tag, 32 line-valid bits, and the frame used to translate global to
// local addresses. In the authors' experience the average chain length is
// about one — `bench/fig1_cache_microbench` measures ours.
//
// This class is pure mechanism: it moves bytes and flips valid bits. All
// cycle charging and protocol messaging is done by the runtime machine,
// which also owns the coherence directory.
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <vector>

#include "olden/mem/global_addr.hpp"
#include "olden/support/types.hpp"

namespace olden {

inline constexpr std::uint32_t kCacheBuckets = 1024;

/// Home processor that owns a given global page.
inline ProcId page_home(std::uint32_t page_id) {
  return static_cast<ProcId>(page_id >> (kProcShift - 11));  // 2^11 = 2 KB
}

class SoftwareCache {
 public:
  struct PageEntry {
    std::uint32_t page_id = 0;
    std::uint32_t valid = 0;  ///< bit i set => line i holds current data
    /// Bilateral scheme: home page version at last validation, and the
    /// epoch mark set on migration arrival ("miss on first access").
    std::uint64_t version = 0;
    bool suspect = false;
    std::unique_ptr<std::byte[]> frame;  ///< 2 KB translation target
    std::unique_ptr<PageEntry> next;     ///< hash chain
  };

  struct LookupResult {
    PageEntry* entry = nullptr;  ///< null if the page is not allocated
    std::uint32_t chain_steps = 0;
  };

  SoftwareCache();

  /// Hash-table search for a page. Never allocates.
  [[nodiscard]] LookupResult lookup(std::uint32_t page_id);

  /// Find-or-create a page entry. `created` reports a fresh allocation.
  PageEntry& ensure_page(std::uint32_t page_id, bool& created);

  /// Whole-cache invalidation (the local-knowledge scheme's migration
  /// arrival action). Page entries stay allocated; lines become invalid.
  /// Returns the number of lines invalidated.
  std::uint64_t invalidate_all();

  /// Invalidate every line of every cached page whose home is in `procs`
  /// (the return-stub optimization). Returns lines invalidated.
  std::uint64_t invalidate_from_procs(ProcSet procs);

  /// Invalidate specific lines of one page, if cached. Returns lines
  /// actually invalidated.
  std::uint64_t invalidate_lines(std::uint32_t page_id, std::uint32_t mask);

  /// Bilateral scheme: mark every cached page suspect so its next access
  /// performs a timestamp check with the home.
  void mark_all_suspect();

  // --- introspection (tests, Figure 1 microbench) -----------------------
  [[nodiscard]] std::uint64_t pages_created() const { return pages_created_; }
  [[nodiscard]] std::uint64_t pages_live() const { return pages_live_; }
  /// Chain length of every nonempty bucket, for the Figure 1 claim.
  [[nodiscard]] std::vector<std::uint32_t> chain_lengths() const;

 private:
  static std::uint32_t bucket_of(std::uint32_t page_id) {
    // Multiplicative mix so consecutive pages of one processor spread out.
    return (page_id * 2654435761u) >> 22 & (kCacheBuckets - 1);
  }

  std::array<std::unique_ptr<PageEntry>, kCacheBuckets> buckets_;
  std::uint64_t pages_created_ = 0;
  std::uint64_t pages_live_ = 0;
};

}  // namespace olden
