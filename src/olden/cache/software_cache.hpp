// The per-processor software cache of §3.2 and Figure 1.
//
// Each processor uses its local memory as a large fully-associative
// write-through cache. Allocation happens at page (2 KB) granularity and
// transfers at line (64 B) granularity. Because the CM-5 port cannot rely on
// virtual-memory support, translation goes through a 1024-bucket hash table
// whose buckets hold short chains of page entries; each entry carries the
// page tag, 32 line-valid bits, and the frame used to translate global to
// local addresses. In the authors' experience the average chain length is
// about one — `bench/fig1_cache_microbench` measures ours.
//
// This class is pure mechanism: it moves bytes and flips valid bits. All
// cycle charging and protocol messaging is done by the runtime machine,
// which also owns the coherence directory.
//
// Host-speed layout (virtual behavior unchanged): entries live in a pooled
// deque (stable addresses, no per-entry allocation), 2 KB frames come from
// slab storage with a free list so an invalidated-then-refilled page never
// round-trips through the host allocator, and lookups serve a one-entry MRU
// fast path plus move-to-front on hash-chain hits. The *charged* chain cost
// must not depend on any of this, so `chain_steps` is always the entry's
// logical position in insertion order (newest first) — exactly what a
// physical walk of the never-reordered chain would count — and misses report
// the full bucket population. `Tuning::kReference` disables every host
// shortcut (physical walks, no MRU, no move-to-front, no frame recycling);
// the A/B golden-equivalence suite runs the whole benchmark matrix both ways
// and requires byte-identical traces.
#pragma once

#include <array>
#include <cstddef>
#include <deque>
#include <memory>
#include <vector>

#include "olden/mem/global_addr.hpp"
#include "olden/support/types.hpp"

namespace olden {

inline constexpr std::uint32_t kCacheBuckets = 1024;

/// Home processor that owns a given global page.
inline ProcId page_home(std::uint32_t page_id) {
  return static_cast<ProcId>(page_id >> (kProcShift - 11));  // 2^11 = 2 KB
}

class SoftwareCache {
 public:
  /// Host-speed tuning. kOptimized is the production configuration;
  /// kReference walks chains physically in insertion order with no MRU,
  /// no move-to-front and no frame recycling — the pre-overhaul behavior,
  /// kept selectable so tests can prove the shortcuts change nothing
  /// simulation-visible. Captured per cache at construction.
  enum class Tuning : std::uint8_t { kOptimized, kReference };

  struct PageEntry {
    std::uint32_t page_id = 0;
    std::uint32_t valid = 0;  ///< bit i set => line i holds current data
    /// Bilateral scheme: home page version at last validation, and the
    /// epoch mark set on migration arrival ("miss on first access").
    std::uint64_t version = 0;
    bool suspect = false;
    /// 2 KB translation target, slab storage owned by the cache. May be
    /// null after a targeted push-invalidation drained the page's last
    /// valid line (the frame parks on the free list); any line fill goes
    /// through `ensure_frame` first. Invariant: valid != 0 => frame set.
    std::byte* frame = nullptr;
    PageEntry* next = nullptr;  ///< hash chain (MRU order when optimized)
    /// Insertion rank within the bucket (0 = first page hashed here).
    /// The logical chain position charged for a hit is
    /// `bucket population - rank`, which move-to-front must not change.
    std::uint32_t rank = 0;
  };

  struct LookupResult {
    PageEntry* entry = nullptr;  ///< null if the page is not allocated
    std::uint32_t chain_steps = 0;
  };

  struct InvalidateResult {
    std::uint64_t dropped = 0;    ///< lines actually invalidated
    std::uint32_t remaining = 0;  ///< valid lines the page still holds
  };

  SoftwareCache();

  /// Hash-table search for a page. Never allocates. Inline: this is the
  /// translation step of every cached access.
  [[nodiscard]] LookupResult lookup(std::uint32_t page_id) {
    LookupResult r;
    const std::uint32_t b = bucket_of(page_id);
    if (tuning_ == Tuning::kOptimized) {
      if (mru_ != nullptr && mru_->page_id == page_id) {
        r.entry = mru_;
        r.chain_steps = counts_[b] - mru_->rank;
        return r;
      }
      PageEntry* prev = nullptr;
      for (PageEntry* e = buckets_[b]; e != nullptr; prev = e, e = e->next) {
        if (e->page_id == page_id) {
          if (prev != nullptr) {  // move-to-front: host time only
            prev->next = e->next;
            e->next = buckets_[b];
            buckets_[b] = e;
          }
          mru_ = e;
          r.entry = e;
          // Logical position in insertion order (newest first): what a
          // physical walk of the never-reordered chain would have counted.
          r.chain_steps = counts_[b] - e->rank;
          return r;
        }
      }
      r.chain_steps = counts_[b];
      return r;
    }
    for (PageEntry* e = buckets_[b]; e != nullptr; e = e->next) {
      ++r.chain_steps;
      if (e->page_id == page_id) {
        r.entry = e;
        return r;
      }
    }
    return r;
  }

  /// Const search with no MRU update and no move-to-front: the fault
  /// plane's wire-need probe must not perturb anything a later charged
  /// `lookup` would observe (host-side or simulation-visible).
  [[nodiscard]] const PageEntry* peek(std::uint32_t page_id) const {
    for (const PageEntry* e = buckets_[bucket_of(page_id)]; e != nullptr;
         e = e->next) {
      if (e->page_id == page_id) return e;
    }
    return nullptr;
  }

  /// Find-or-create a page entry. `created` reports a fresh allocation.
  PageEntry& ensure_page(std::uint32_t page_id, bool& created);

  /// Create a page known to be absent (the caller just saw `lookup` miss).
  /// Skips the re-search `ensure_page` would do.
  PageEntry& create_page(std::uint32_t page_id);

  /// The entry's frame, allocating from the free list / slab if the page
  /// currently holds none. Call before filling a line.
  std::byte* ensure_frame(PageEntry& e) {
    if (e.frame == nullptr) e.frame = alloc_frame();
    return e.frame;
  }

  /// Whole-cache invalidation (the local-knowledge scheme's migration
  /// arrival action). Page entries stay allocated; lines become invalid.
  /// Returns the number of lines invalidated.
  std::uint64_t invalidate_all();

  /// Invalidate every line of every cached page whose home is in `procs`
  /// (the return-stub optimization). Returns lines invalidated.
  std::uint64_t invalidate_from_procs(ProcSet procs);

  /// Invalidate specific lines of one page, if cached. Reports both the
  /// lines actually invalidated and how many valid lines the page still
  /// holds — zero remaining tells the eager-release protocol this sharer
  /// no longer caches the page and can be dropped from the sharer set.
  InvalidateResult invalidate_lines(std::uint32_t page_id,
                                    std::uint32_t mask);

  /// Bilateral scheme: mark every cached page suspect so its next access
  /// performs a timestamp check with the home.
  void mark_all_suspect();

  // --- introspection (tests, Figure 1 microbench) -----------------------
  [[nodiscard]] std::uint64_t pages_created() const { return pages_created_; }
  [[nodiscard]] std::uint64_t pages_live() const { return pages_live_; }
  /// Chain length of every nonempty bucket, for the Figure 1 claim.
  [[nodiscard]] std::vector<std::uint32_t> chain_lengths() const;
  [[nodiscard]] Tuning tuning() const { return tuning_; }
  /// Frames currently parked on the free list (test introspection).
  [[nodiscard]] std::size_t free_frames() const {
    return free_frames_.size();
  }

  /// Process-wide tuning for caches constructed after the call (the
  /// machine constructs one per processor). Tests flip this to run the
  /// same workload through the reference configuration.
  static void set_default_tuning(Tuning t);
  [[nodiscard]] static Tuning default_tuning();

 private:
  static std::uint32_t bucket_of(std::uint32_t page_id) {
    // Multiplicative mix so consecutive pages of one processor spread out.
    return (page_id * 2654435761u) >> 22 & (kCacheBuckets - 1);
  }

  std::byte* alloc_frame();
  void release_frame(PageEntry& e);

  std::array<PageEntry*, kCacheBuckets> buckets_{};
  /// Bucket populations; `chain_lengths()` and logical-position accounting
  /// read these instead of walking chains.
  std::array<std::uint32_t, kCacheBuckets> counts_{};
  /// Entry pool. A deque gives stable addresses (the machine holds
  /// `PageEntry*` across calls within one access) without per-entry
  /// allocations. Entries are never destroyed before the cache is.
  std::deque<PageEntry> pool_;
  PageEntry* mru_ = nullptr;  ///< last entry hit (optimized tuning only)

  // Frame storage: slabs of kFramesPerSlab pages plus a recycle list.
  static constexpr std::uint32_t kFramesPerSlab = 32;
  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  std::uint32_t slab_used_ = kFramesPerSlab;
  std::vector<std::byte*> free_frames_;

  std::uint64_t pages_created_ = 0;
  std::uint64_t pages_live_ = 0;
  Tuning tuning_;
};

}  // namespace olden
