#include "olden/cache/software_cache.hpp"

#include "olden/support/require.hpp"

namespace olden {

SoftwareCache::SoftwareCache() = default;

SoftwareCache::LookupResult SoftwareCache::lookup(std::uint32_t page_id) {
  LookupResult r;
  for (PageEntry* e = buckets_[bucket_of(page_id)].get(); e != nullptr;
       e = e->next.get()) {
    ++r.chain_steps;
    if (e->page_id == page_id) {
      r.entry = e;
      return r;
    }
  }
  return r;
}

SoftwareCache::PageEntry& SoftwareCache::ensure_page(std::uint32_t page_id,
                                                     bool& created) {
  auto& head = buckets_[bucket_of(page_id)];
  for (PageEntry* e = head.get(); e != nullptr; e = e->next.get()) {
    if (e->page_id == page_id) {
      created = false;
      return *e;
    }
  }
  auto entry = std::make_unique<PageEntry>();
  entry->page_id = page_id;
  entry->frame = std::make_unique<std::byte[]>(kPageBytes);
  entry->next = std::move(head);
  head = std::move(entry);
  ++pages_created_;
  ++pages_live_;
  created = true;
  return *head;
}

std::uint64_t SoftwareCache::invalidate_all() {
  std::uint64_t lines = 0;
  for (auto& head : buckets_) {
    for (PageEntry* e = head.get(); e != nullptr; e = e->next.get()) {
      lines += static_cast<std::uint64_t>(__builtin_popcount(e->valid));
      e->valid = 0;
    }
  }
  return lines;
}

std::uint64_t SoftwareCache::invalidate_from_procs(ProcSet procs) {
  std::uint64_t lines = 0;
  for (auto& head : buckets_) {
    for (PageEntry* e = head.get(); e != nullptr; e = e->next.get()) {
      if (procs.contains(page_home(e->page_id))) {
        lines += static_cast<std::uint64_t>(__builtin_popcount(e->valid));
        e->valid = 0;
      }
    }
  }
  return lines;
}

std::uint64_t SoftwareCache::invalidate_lines(std::uint32_t page_id,
                                              std::uint32_t mask) {
  const LookupResult r = lookup(page_id);
  if (r.entry == nullptr) return 0;
  const std::uint32_t hit = r.entry->valid & mask;
  r.entry->valid &= ~mask;
  return static_cast<std::uint64_t>(__builtin_popcount(hit));
}

void SoftwareCache::mark_all_suspect() {
  for (auto& head : buckets_) {
    for (PageEntry* e = head.get(); e != nullptr; e = e->next.get()) {
      e->suspect = true;
    }
  }
}

std::vector<std::uint32_t> SoftwareCache::chain_lengths() const {
  std::vector<std::uint32_t> lengths;
  lengths.reserve(kCacheBuckets);
  for (const auto& head : buckets_) {
    std::uint32_t n = 0;
    for (const PageEntry* e = head.get(); e != nullptr; e = e->next.get()) {
      ++n;
    }
    if (n > 0) lengths.push_back(n);
  }
  return lengths;
}

}  // namespace olden
