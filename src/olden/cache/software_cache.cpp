#include "olden/cache/software_cache.hpp"

#include <atomic>
#include <bit>

#include "olden/support/require.hpp"

namespace olden {

namespace {
// Atomic so host-parallel cell pools (bench_cell/host_perf --jobs) can
// construct Machines on several threads while a test elsewhere holds the
// process-wide default steady. Relaxed is enough: the value is a pure
// configuration knob, never used to publish other data.
std::atomic<SoftwareCache::Tuning> g_default_tuning{
    SoftwareCache::Tuning::kOptimized};
}  // namespace

void SoftwareCache::set_default_tuning(Tuning t) {
  g_default_tuning.store(t, std::memory_order_relaxed);
}
SoftwareCache::Tuning SoftwareCache::default_tuning() {
  return g_default_tuning.load(std::memory_order_relaxed);
}

SoftwareCache::SoftwareCache() : tuning_(default_tuning()) {}

std::byte* SoftwareCache::alloc_frame() {
  if (!free_frames_.empty()) {
    std::byte* f = free_frames_.back();
    free_frames_.pop_back();
    return f;
  }
  if (slab_used_ == kFramesPerSlab) {
    slabs_.push_back(std::make_unique<std::byte[]>(
        static_cast<std::size_t>(kFramesPerSlab) * kPageBytes));
    slab_used_ = 0;
  }
  return slabs_.back().get() +
         static_cast<std::size_t>(slab_used_++) * kPageBytes;
}

void SoftwareCache::release_frame(PageEntry& e) {
  // Reference tuning mimics the pre-overhaul cache, which never let a
  // frame go; recycling is a host-memory optimization only (frame bytes
  // of invalid lines are never read, so the contents cannot matter).
  if (tuning_ == Tuning::kReference || e.frame == nullptr) return;
  free_frames_.push_back(e.frame);
  e.frame = nullptr;
}

SoftwareCache::PageEntry& SoftwareCache::create_page(std::uint32_t page_id) {
  const std::uint32_t b = bucket_of(page_id);
  PageEntry& e = pool_.emplace_back();
  e.page_id = page_id;
  e.frame = alloc_frame();
  e.rank = counts_[b]++;
  e.next = buckets_[b];
  buckets_[b] = &e;
  if (tuning_ == Tuning::kOptimized) mru_ = &e;
  ++pages_created_;
  ++pages_live_;
  return e;
}

SoftwareCache::PageEntry& SoftwareCache::ensure_page(std::uint32_t page_id,
                                                     bool& created) {
  const LookupResult r = lookup(page_id);
  if (r.entry != nullptr) {
    created = false;
    // Callers that go on to fill lines expect a frame to write into.
    ensure_frame(*r.entry);
    return *r.entry;
  }
  created = true;
  return create_page(page_id);
}

// Bulk invalidation (the acquire paths) deliberately keeps each page's
// frame: acquires are frequent and most invalidated pages refill within a
// few accesses, so recycling here would be pure free-list churn. Frames go
// back to the free list only on the targeted push-invalidation path below,
// where a page losing its last line is a real eviction signal.
std::uint64_t SoftwareCache::invalidate_all() {
  std::uint64_t lines = 0;
  for (PageEntry& e : pool_) {
    lines += static_cast<std::uint64_t>(std::popcount(e.valid));
    e.valid = 0;
  }
  return lines;
}

std::uint64_t SoftwareCache::invalidate_from_procs(ProcSet procs) {
  std::uint64_t lines = 0;
  for (PageEntry& e : pool_) {
    if (procs.contains(page_home(e.page_id))) {
      lines += static_cast<std::uint64_t>(std::popcount(e.valid));
      e.valid = 0;
    }
  }
  return lines;
}

SoftwareCache::InvalidateResult SoftwareCache::invalidate_lines(
    std::uint32_t page_id, std::uint32_t mask) {
  const LookupResult r = lookup(page_id);
  if (r.entry == nullptr) return {};
  InvalidateResult res;
  const std::uint32_t hit = r.entry->valid & mask;
  r.entry->valid &= ~mask;
  res.dropped = static_cast<std::uint64_t>(std::popcount(hit));
  res.remaining =
      static_cast<std::uint32_t>(std::popcount(r.entry->valid));
  if (res.remaining == 0) release_frame(*r.entry);
  return res;
}

void SoftwareCache::mark_all_suspect() {
  for (PageEntry& e : pool_) e.suspect = true;
}

std::vector<std::uint32_t> SoftwareCache::chain_lengths() const {
  std::vector<std::uint32_t> lengths;
  lengths.reserve(kCacheBuckets);
  for (const std::uint32_t n : counts_) {
    if (n > 0) lengths.push_back(n);
  }
  return lengths;
}

}  // namespace olden
