// Cache-coherence support structures for the three schemes of Appendix A.
//
//  * Local knowledge  — no state beyond the caches themselves: the whole
//    cache is invalidated on migration arrival; on procedure-return
//    migrations only lines homed on processors the thread wrote.
//  * Eager release ("global knowledge") — the compiler inserts write
//    tracking; homes keep per-page sharer sets at page granularity and
//    dirty bits at line granularity; at each migration the runtime pushes
//    line-grain invalidations to every sharer of each dirtied page.
//  * Bilateral — write tracking plus a per-page timestamp at the home,
//    bumped when a migration leaves a processor that wrote the page; a
//    migration arrival marks all cached pages suspect, and the first access
//    to a suspect page does a timestamp-check round trip with the home.
//
// The protocol actions (who sends what, and what it costs) live in the
// runtime machine; this header holds the bookkeeping state.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "olden/support/types.hpp"

namespace olden {

enum class Coherence {
  kLocalKnowledge,
  kEagerGlobal,
  kBilateral,
};

[[nodiscard]] constexpr const char* to_string(Coherence c) {
  switch (c) {
    case Coherence::kLocalKnowledge: return "local";
    case Coherence::kEagerGlobal: return "global";
    case Coherence::kBilateral: return "bilateral";
  }
  return "?";
}

/// Whether a scheme requires compiler-inserted write tracking (and thus
/// pays the 7/23-instruction costs of Appendix A).
[[nodiscard]] constexpr bool tracks_writes(Coherence c) {
  return c != Coherence::kLocalKnowledge;
}

/// Home-side per-page directory state, kept by the page's owner.
struct HomePageInfo {
  /// Processors holding (possibly stale) cached lines of this page.
  /// Tracked at page granularity "to reduce the amount of state
  /// information" (Appendix A). Eager scheme only.
  ProcSet sharers;
  /// True once a second processor has requested the page: write tracking
  /// on shared pages costs more (23 vs 7 instructions).
  bool shared = false;
  /// Bilateral: page version, bumped by a departing migration whose thread
  /// wrote the page.
  std::uint64_t version = 0;
  /// Bilateral: lines written during the current version (i.e. since the
  /// last bump). A sharer exactly one version behind invalidates only
  /// these; a sharer further behind invalidates the whole page.
  std::uint32_t dirty_since_bump = 0;
  /// Bilateral: the lines the most recent version bump published. The
  /// timestamp-check reply tells a one-version-behind sharer to drop
  /// exactly these lines.
  std::uint32_t last_released = 0;
};

/// Directory spanning the machine, indexed by global page id. Each entry
/// conceptually lives on the page's home processor; the runtime charges the
/// home's clock whenever it consults or updates one.
class CoherenceDirectory {
 public:
  HomePageInfo& page(std::uint32_t page_id) { return pages_[page_id]; }

  [[nodiscard]] const HomePageInfo* find(std::uint32_t page_id) const {
    auto it = pages_.find(page_id);
    return it == pages_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] std::size_t tracked_pages() const { return pages_.size(); }

 private:
  std::unordered_map<std::uint32_t, HomePageInfo> pages_;
};

/// Per-thread write log: pages (and lines within them) this thread has
/// written since its last migration. This is what the compiler-inserted
/// write-tracking code of Appendix A accumulates; the runtime drains it at
/// each migration departure.
class WriteLog {
 public:
  void record(std::uint32_t page_id, std::uint32_t line_mask) {
    pages_[page_id] |= line_mask;
  }
  void clear() { pages_.clear(); }
  [[nodiscard]] bool empty() const { return pages_.empty(); }

  template <class Fn>  // fn(page_id, line_mask)
  void for_each(Fn&& fn) const {
    for (const auto& [page, mask] : pages_) fn(page, mask);
  }

 private:
  std::unordered_map<std::uint32_t, std::uint32_t> pages_;
};

}  // namespace olden
