// Cache-coherence support structures for the three schemes of Appendix A.
//
//  * Local knowledge  — no state beyond the caches themselves: the whole
//    cache is invalidated on migration arrival; on procedure-return
//    migrations only lines homed on processors the thread wrote.
//  * Eager release ("global knowledge") — the compiler inserts write
//    tracking; homes keep per-page sharer sets at page granularity and
//    dirty bits at line granularity; at each migration the runtime pushes
//    line-grain invalidations to every sharer of each dirtied page.
//  * Bilateral — write tracking plus a per-page timestamp at the home,
//    bumped when a migration leaves a processor that wrote the page; a
//    migration arrival marks all cached pages suspect, and the first access
//    to a suspect page does a timestamp-check round trip with the home.
//
// The protocol actions (who sends what, and what it costs) live in the
// runtime machine; this header holds the bookkeeping state.
//
// Host-speed layout: page ids are dense per home processor (top bits are
// the owner, low bits the local page number), so the directory is an array
// of per-processor vectors indexed directly by local page number — no
// hashing on the write-tracking fast path. Write logs are an inline
// small-vector (most threads dirty a handful of pages between migrations)
// with heap spill, a last-page fast path for the consecutive line-chunk
// writes the compiler emits, and *canonically sorted* iteration so every
// container choice drains releases in the same deterministic order.
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <vector>

#include "olden/mem/global_addr.hpp"
#include "olden/support/types.hpp"

namespace olden {

enum class Coherence {
  kLocalKnowledge,
  kEagerGlobal,
  kBilateral,
};

[[nodiscard]] constexpr const char* to_string(Coherence c) {
  switch (c) {
    case Coherence::kLocalKnowledge: return "local";
    case Coherence::kEagerGlobal: return "global";
    case Coherence::kBilateral: return "bilateral";
  }
  return "?";
}

/// Whether a scheme requires compiler-inserted write tracking (and thus
/// pays the 7/23-instruction costs of Appendix A).
[[nodiscard]] constexpr bool tracks_writes(Coherence c) {
  return c != Coherence::kLocalKnowledge;
}

/// Number of low page-id bits that index within one home processor.
inline constexpr int kLocalPageBits = kProcShift - 11;  // 2^11 = 2 KB pages
inline constexpr std::uint32_t kLocalPageMask = (1u << kLocalPageBits) - 1;

/// Home-side per-page directory state, kept by the page's owner.
struct HomePageInfo {
  /// Processors holding (possibly stale) cached lines of this page.
  /// Tracked at page granularity "to reduce the amount of state
  /// information" (Appendix A). Eager scheme only. A sharer is dropped
  /// again when a pushed invalidation leaves it with zero valid lines.
  ProcSet sharers;
  /// True once a second processor has requested the page: write tracking
  /// on shared pages costs more (23 vs 7 instructions).
  bool shared = false;
  /// Bilateral: page version, bumped by a departing migration whose thread
  /// wrote the page.
  std::uint64_t version = 0;
  /// Bilateral: lines written during the current version (i.e. since the
  /// last bump). A sharer exactly one version behind invalidates only
  /// these; a sharer further behind invalidates the whole page.
  std::uint32_t dirty_since_bump = 0;
  /// Bilateral: the lines the most recent version bump published. The
  /// timestamp-check reply tells a one-version-behind sharer to drop
  /// exactly these lines.
  std::uint32_t last_released = 0;
};

/// The bilateral scheme's revalidation rule, shared by the synchronous
/// timestamp check and the fault plane's asynchronous ts-check reply:
/// which of a sharer's `valid` lines must be dropped given that its copy
/// was validated at `cached_version`. Exactly one version behind drops
/// only the lines that release published; further behind drops everything.
[[nodiscard]] inline std::uint32_t stale_line_mask(
    const HomePageInfo& info, std::uint64_t cached_version,
    std::uint32_t valid) {
  if (cached_version == info.version) return 0;
  if (cached_version + 1 == info.version) return valid & info.last_released;
  return valid;
}

/// Directory spanning the machine, indexed by global page id. Each entry
/// conceptually lives on the page's home processor; the runtime charges the
/// home's clock whenever it consults or updates one. Storage is a flat
/// vector per home, grown on demand — heap pages are allocated densely from
/// offset zero, so the vectors stay compact and `page()` is two indexed
/// loads instead of a hash probe.
class CoherenceDirectory {
 public:
  HomePageInfo& page(std::uint32_t page_id) {
    const std::uint32_t home = page_id >> kLocalPageBits;
    const std::uint32_t local = page_id & kLocalPageMask;
    assert(home < kMaxProcs);
    std::vector<Slot>& v = pages_[home];
    if (v.size() <= local) v.resize(local + 1);
    Slot& s = v[local];
    if (!s.touched) {
      s.touched = true;
      ++tracked_;
    }
    return s.info;
  }

  [[nodiscard]] const HomePageInfo* find(std::uint32_t page_id) const {
    const std::uint32_t home = page_id >> kLocalPageBits;
    const std::uint32_t local = page_id & kLocalPageMask;
    assert(home < kMaxProcs);
    const std::vector<Slot>& v = pages_[home];
    if (local >= v.size() || !v[local].touched) return nullptr;
    return &v[local].info;
  }

  /// Pages ever consulted through `page()` (directory entries that exist).
  [[nodiscard]] std::size_t tracked_pages() const { return tracked_; }

 private:
  struct Slot {
    HomePageInfo info;
    bool touched = false;
  };
  std::array<std::vector<Slot>, kMaxProcs> pages_;
  std::size_t tracked_ = 0;
};

/// Per-thread write log: pages (and lines within them) this thread has
/// written since its last migration. This is what the compiler-inserted
/// write-tracking code of Appendix A accumulates; the runtime drains it at
/// each migration departure.
///
/// Most logs hold a handful of pages, and the tracking code records the
/// same page repeatedly as a structure's lines are written in sequence —
/// so: last-page fast path, then linear scan of an inline array, spilling
/// to the heap only past kInline distinct pages. `for_each` visits pages
/// in ascending page-id order, a canonical order no container rearranges.
class WriteLog {
 public:
  void record(std::uint32_t page_id, std::uint32_t line_mask) {
    if (n_ > 0) {
      Entry& last = at(last_);
      if (last.page == page_id) {
        last.mask |= line_mask;
        return;
      }
    }
    for (std::uint32_t i = 0; i < n_; ++i) {
      if (at(i).page == page_id) {
        at(i).mask |= line_mask;
        last_ = i;
        return;
      }
    }
    if (n_ < kInline) {
      inline_[n_] = {page_id, line_mask};
    } else {
      spill_.push_back({page_id, line_mask});
    }
    last_ = n_++;
  }

  void clear() {
    n_ = 0;
    last_ = 0;
    spill_.clear();  // keeps capacity: no realloc churn across migrations
  }

  [[nodiscard]] bool empty() const { return n_ == 0; }
  [[nodiscard]] std::size_t size() const { return n_; }

  template <class Fn>  // fn(page_id, line_mask), ascending page_id
  void for_each(Fn&& fn) const {
    Entry stack[kSortStack];
    std::vector<Entry> heap;
    Entry* buf = stack;
    if (n_ > kSortStack) {
      heap.resize(n_);
      buf = heap.data();
    }
    for (std::uint32_t i = 0; i < n_; ++i) buf[i] = at(i);
    std::sort(buf, buf + n_,
              [](const Entry& a, const Entry& b) { return a.page < b.page; });
    for (std::uint32_t i = 0; i < n_; ++i) fn(buf[i].page, buf[i].mask);
  }

 private:
  struct Entry {
    std::uint32_t page = 0;
    std::uint32_t mask = 0;
  };
  static constexpr std::uint32_t kInline = 8;
  static constexpr std::uint32_t kSortStack = 64;

  Entry& at(std::uint32_t i) {
    return i < kInline ? inline_[i] : spill_[i - kInline];
  }
  [[nodiscard]] const Entry& at(std::uint32_t i) const {
    return i < kInline ? inline_[i] : spill_[i - kInline];
  }

  std::array<Entry, kInline> inline_{};
  std::vector<Entry> spill_;
  std::uint32_t n_ = 0;
  std::uint32_t last_ = 0;  ///< index of the most recently recorded page
};

}  // namespace olden
