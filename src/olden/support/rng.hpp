// Deterministic pseudo-random numbers for workload generation.
//
// Benchmarks must be bit-reproducible across runs and across machine sizes
// (the same input graph is laid out over 1..32 processors), so we use our
// own splitmix64/xoshiro generator instead of std::mt19937 to guarantee the
// stream is identical on every platform and standard library.
#pragma once

#include <cstdint>

#include "olden/support/require.hpp"

namespace olden {

/// xoshiro256** seeded via splitmix64. Deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& s : s_) {
      // splitmix64 step
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be positive.
  std::uint64_t next_below(std::uint64_t bound) {
    OLDEN_REQUIRE(bound > 0, "next_below requires a positive bound");
    // Lemire-style rejection-free-enough reduction; bias is < 2^-32 for the
    // bounds used by the workload generators.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t s_[4] = {};
};

}  // namespace olden
