// A flat binary min-heap, replacing std::priority_queue on the event wheel.
//
// Two host-speed advantages over the adaptor: `reserve()` (the queue's peak
// size is reached early in a run, after which pushes never reallocate), and
// `pop_min()` which moves the minimum out in the same operation that
// re-heapifies — priority_queue forces a copy through `top()` because its
// top is const. Ordering and tie-breaking are exactly the adaptor's with
// std::greater: the element for which `Greater` is false against all others
// comes out first, so (time, seq)-ordered Events drain identically.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace olden {

template <class T, class Greater = std::greater<T>>
class MinHeap {
 public:
  [[nodiscard]] bool empty() const { return v_.empty(); }
  [[nodiscard]] std::size_t size() const { return v_.size(); }
  void reserve(std::size_t n) { v_.reserve(n); }

  [[nodiscard]] const T& top() const { return v_.front(); }

  void push(T x) {
    v_.push_back(std::move(x));
    sift_up(v_.size() - 1);
  }

  /// Remove and return the minimum element.
  T pop_min() {
    T out = std::move(v_.front());
    if (v_.size() > 1) {
      v_.front() = std::move(v_.back());
      v_.pop_back();
      sift_down(0);
    } else {
      v_.pop_back();
    }
    return out;
  }

 private:
  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!gt_(v_[parent], v_[i])) break;
      std::swap(v_[parent], v_[i]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = v_.size();
    for (;;) {
      std::size_t smallest = i;
      const std::size_t l = 2 * i + 1;
      const std::size_t r = 2 * i + 2;
      if (l < n && gt_(v_[smallest], v_[l])) smallest = l;
      if (r < n && gt_(v_[smallest], v_[r])) smallest = r;
      if (smallest == i) return;
      std::swap(v_[i], v_[smallest]);
      i = smallest;
    }
  }

  std::vector<T> v_;
  [[no_unique_address]] Greater gt_;
};

}  // namespace olden
