// Error handling: precondition checks that abort with a message, and the
// structured error for rejected configuration.
//
// The simulator is deterministic, so a failed invariant is always a
// programming error, never an environmental condition — we terminate rather
// than throw (Core Guidelines I.6/E.12: contracts violations are not
// recoverable errors). Bad *input* — a RunConfig with an impossible
// processor count, typically from a CLI flag — is the one recoverable case
// and throws ConfigError so drivers can print it and exit cleanly.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace olden {

/// Invalid run configuration (e.g. nprocs outside [1, kMaxProcs]).
/// CLIs catch this and exit with status 2.
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace olden

namespace olden::detail {

[[noreturn]] inline void require_failed(const char* cond, const char* file,
                                        int line, const char* msg) {
  std::fprintf(stderr, "olden: requirement failed: %s\n  at %s:%d\n  %s\n",
               cond, file, line, msg);
  std::abort();
}

}  // namespace olden::detail

#define OLDEN_REQUIRE(cond, msg)                                        \
  do {                                                                  \
    if (!(cond)) [[unlikely]] {                                         \
      ::olden::detail::require_failed(#cond, __FILE__, __LINE__, msg);  \
    }                                                                   \
  } while (false)
