// Error handling: precondition checks that abort with a message.
//
// The simulator is deterministic, so a failed invariant is always a
// programming error, never an environmental condition — we terminate rather
// than throw (Core Guidelines I.6/E.12: contracts violations are not
// recoverable errors).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace olden::detail {

[[noreturn]] inline void require_failed(const char* cond, const char* file,
                                        int line, const char* msg) {
  std::fprintf(stderr, "olden: requirement failed: %s\n  at %s:%d\n  %s\n",
               cond, file, line, msg);
  std::abort();
}

}  // namespace olden::detail

#define OLDEN_REQUIRE(cond, msg)                                        \
  do {                                                                  \
    if (!(cond)) [[unlikely]] {                                         \
      ::olden::detail::require_failed(#cond, __FILE__, __LINE__, msg);  \
    }                                                                   \
  } while (false)
