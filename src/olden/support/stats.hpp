// Machine-wide statistics, accumulated by the runtime and the cache.
//
// These counters are exactly the quantities the paper reports: Table 2 needs
// makespans and migration counts; Table 3 needs cacheable read/write counts,
// the fraction that are remote, the fraction of remote references that miss,
// and the number of pages ever cached.
#pragma once

#include <cstddef>
#include <cstdint>

#include "olden/support/require.hpp"
#include "olden/support/types.hpp"

namespace olden {

/// Classes of logical messages the reliable-delivery layer carries. The
/// first three ride PR 3's ack/retransmit protocol; the last three are the
/// coherence request/reply messages (fills, push invalidations, bilateral
/// timestamp checks). Per-class fault statistics are indexed by this enum.
enum class MsgClass : std::uint8_t {
  kMigration,
  kReturnStub,
  kFutureResolve,
  kFill,
  kInvalidate,
  kTsCheck,
};

inline constexpr std::size_t kNumMsgClasses = 6;

[[nodiscard]] constexpr const char* to_string(MsgClass c) {
  switch (c) {
    case MsgClass::kMigration: return "migration";
    case MsgClass::kReturnStub: return "return_stub";
    case MsgClass::kFutureResolve: return "future_resolve";
    case MsgClass::kFill: return "fill";
    case MsgClass::kInvalidate: return "invalidate";
    case MsgClass::kTsCheck: return "ts_check";
  }
  return "?";
}

struct MachineStats {
  // --- heap references, by outcome --------------------------------------
  std::uint64_t local_reads = 0;
  std::uint64_t local_writes = 0;

  /// References compiled to the software-caching mechanism ("cacheable").
  std::uint64_t cacheable_reads = 0;
  std::uint64_t cacheable_writes = 0;
  std::uint64_t cacheable_reads_remote = 0;
  std::uint64_t cacheable_writes_remote = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// Bilateral scheme only: page revalidations that needed a timestamp
  /// round-trip but no data transfer (one per suspect page consulted).
  std::uint64_t timestamp_checks = 0;
  /// Bilateral scheme only: accesses that performed at least one timestamp
  /// check and did NOT also register a cache miss. Disjoint from
  /// `cache_misses` by construction, so Table 3's "% of remote refs that
  /// miss" can add the two without double-counting an access whose
  /// revalidation was followed by a line fetch.
  std::uint64_t timestamp_stalls = 0;

  // --- migration ---------------------------------------------------------
  std::uint64_t migrations = 0;
  std::uint64_t return_migrations = 0;

  // --- futures ----------------------------------------------------------
  std::uint64_t futurecalls = 0;
  /// futurecalls whose body never migrated: no thread was created.
  std::uint64_t futures_inlined = 0;
  /// Continuations popped by a now-idle processor (threads created).
  std::uint64_t futures_stolen = 0;
  std::uint64_t touches_blocked = 0;

  // --- coherence ---------------------------------------------------------
  std::uint64_t cache_flushes = 0;        ///< whole-cache invalidations
  std::uint64_t lines_invalidated = 0;
  std::uint64_t invalidation_messages = 0;
  std::uint64_t tracked_writes = 0;

  // --- adaptive scheme (--scheme=adaptive; all zero otherwise) ------------
  /// Runtime mechanism flips the adaptive decision table performed.
  std::uint64_t scheme_flips = 0;
  /// Flips migrate->cache (cold start; no traffic).
  std::uint64_t flips_to_cache = 0;
  /// Flips cache->migrate (each drains the site's cached lines).
  std::uint64_t flips_to_migrate = 0;
  /// Valid lines dropped by flip drains (also counted in
  /// `lines_invalidated`).
  std::uint64_t flip_drain_lines = 0;
  /// Per-sharer invalidation messages sent by flip drains (also counted in
  /// `invalidation_messages`).
  std::uint64_t flip_drain_messages = 0;

  // --- cache occupancy ----------------------------------------------------
  std::uint64_t pages_cached = 0;  ///< distinct (proc, page) entries created

  // --- fault plane (src/olden/fault/; all zero when faults are disabled) --
  /// Logical inter-processor messages routed through the reliable layer.
  std::uint64_t fault_messages = 0;
  /// Transmission attempts (data or ack) the injector dropped on the wire.
  std::uint64_t fault_drops = 0;
  /// Extra copies of a data attempt the injector put on the wire.
  std::uint64_t fault_duplicates = 0;
  /// Attempts given injected extra wire latency.
  std::uint64_t fault_delays = 0;
  /// Sender timeouts that re-sent an unacknowledged message.
  std::uint64_t retransmissions = 0;
  /// Arrivals the receiver's dedup window recognized and discarded.
  std::uint64_t duplicates_suppressed = 0;
  /// Acknowledgements transmitted by receivers (one per accepted arrival).
  std::uint64_t acks_sent = 0;
  /// Transient per-processor slowdowns injected at message arrivals.
  std::uint64_t hiccups_injected = 0;
  /// Total stall cycles those hiccups added (accounted under `idle`).
  std::uint64_t hiccup_cycles = 0;
  /// Coherence request/reply layer: requests issued (fills + timestamp
  /// checks; each is answered by an idempotent reply that doubles as the
  /// acknowledgement).
  std::uint64_t coherence_requests = 0;
  /// Surplus replies discarded because the request they answered had
  /// already been satisfied (a retransmitted request re-serviced after the
  /// original reply got through). Kept separate from
  /// `duplicates_suppressed`, which counts wire-level duplicate arrivals.
  std::uint64_t replies_ignored = 0;
  /// Per-message-class decomposition of the aggregate fault counters
  /// above, indexed by MsgClass. Ack/reply trouble is attributed to the
  /// class of the data message it serves, so each array sums exactly to
  /// its aggregate (enforced by check_invariants).
  std::uint64_t class_sent[kNumMsgClasses] = {};
  std::uint64_t class_drops[kNumMsgClasses] = {};
  std::uint64_t class_dups[kNumMsgClasses] = {};
  std::uint64_t class_delays[kNumMsgClasses] = {};
  std::uint64_t class_retries[kNumMsgClasses] = {};

  // --- allocation ---------------------------------------------------------
  std::uint64_t allocations = 0;
  std::uint64_t bytes_allocated = 0;

  [[nodiscard]] std::uint64_t remote_cacheable() const {
    return cacheable_reads_remote + cacheable_writes_remote;
  }

  /// "% of remote references that miss" in the sense of Table 3: misses as
  /// a percentage of remote cacheable references. Timestamp *stalls* count
  /// as misses for the bilateral row (they stall the processor on a round
  /// trip even though no line moves); an access that revalidated and then
  /// also fetched a line is already a miss and is counted exactly once.
  [[nodiscard]] double remote_miss_percent() const {
    const std::uint64_t remote = remote_cacheable();
    if (remote == 0) return 0.0;
    return 100.0 * static_cast<double>(cache_misses + timestamp_stalls) /
           static_cast<double>(remote);
  }

  [[nodiscard]] double percent_reads_remote() const {
    if (cacheable_reads == 0) return 0.0;
    return 100.0 * static_cast<double>(cacheable_reads_remote) /
           static_cast<double>(cacheable_reads);
  }

  [[nodiscard]] double percent_writes_remote() const {
    if (cacheable_writes == 0) return 0.0;
    return 100.0 * static_cast<double>(cacheable_writes_remote) /
           static_cast<double>(cacheable_writes);
  }

  /// Structural relations between the counters. Every remote cacheable
  /// read resolves to exactly one of hit/miss; a timestamp stall is an
  /// access-level event so it cannot outnumber the page-level checks; a
  /// future is consumed at most once (inline or stolen — equal to
  /// `futurecalls` once the machine is quiescent). Called by tests always
  /// and by the runtime at quiescence in debug builds.
  void check_invariants() const {
    OLDEN_REQUIRE(cache_hits + cache_misses == cacheable_reads_remote,
                  "every remote cacheable read must be a hit xor a miss");
    OLDEN_REQUIRE(cacheable_reads_remote <= cacheable_reads,
                  "remote cacheable reads exceed cacheable reads");
    OLDEN_REQUIRE(cacheable_writes_remote <= cacheable_writes,
                  "remote cacheable writes exceed cacheable writes");
    OLDEN_REQUIRE(timestamp_stalls <= timestamp_checks,
                  "more stalled accesses than timestamp round trips");
    OLDEN_REQUIRE(futures_inlined + futures_stolen <= futurecalls,
                  "a future was consumed both inline and by stealing");
    OLDEN_REQUIRE(touches_blocked <= futurecalls,
                  "more blocked touches than futures");
    // Adaptive scheme: every flip has exactly one direction, and flip
    // drains are a subset of the aggregate coherence traffic.
    OLDEN_REQUIRE(flips_to_cache + flips_to_migrate == scheme_flips,
                  "per-direction flips do not sum to scheme_flips");
    OLDEN_REQUIRE(flip_drain_lines <= lines_invalidated,
                  "flip drains dropped more lines than were invalidated");
    OLDEN_REQUIRE(flip_drain_messages <= invalidation_messages,
                  "flip drains sent more messages than were counted");
    // Fault plane: every suppressed arrival is a surplus copy, and surplus
    // copies only come from injected duplicates or (spurious) retransmits.
    OLDEN_REQUIRE(duplicates_suppressed <= fault_duplicates + retransmissions,
                  "more duplicates suppressed than were ever created");
    OLDEN_REQUIRE(hiccups_injected == 0 || hiccup_cycles >= hiccups_injected,
                  "hiccups injected without stall cycles");
    // Per-class fault decomposition: every aggregate fault counter must be
    // exactly the sum of its per-class parts — a message the injector
    // touched always belongs to exactly one class.
    std::uint64_t sent = 0, drops = 0, dups = 0, delays = 0, retries = 0;
    for (std::size_t c = 0; c < kNumMsgClasses; ++c) {
      sent += class_sent[c];
      drops += class_drops[c];
      dups += class_dups[c];
      delays += class_delays[c];
      retries += class_retries[c];
    }
    OLDEN_REQUIRE(sent == fault_messages,
                  "per-class sends do not sum to fault_messages");
    OLDEN_REQUIRE(drops == fault_drops,
                  "per-class drops do not sum to fault_drops");
    OLDEN_REQUIRE(dups == fault_duplicates,
                  "per-class duplicates do not sum to fault_duplicates");
    OLDEN_REQUIRE(delays == fault_delays,
                  "per-class delays do not sum to fault_delays");
    OLDEN_REQUIRE(retries == retransmissions,
                  "per-class retries do not sum to retransmissions");
  }
};

}  // namespace olden
