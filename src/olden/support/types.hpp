// Fundamental scalar types shared by every Olden module.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>

namespace olden {

/// Identifier of a (virtual) processor. Olden encodes the processor name in
/// the top bits of a global heap address, so the machine size is bounded.
using ProcId = std::uint32_t;

/// Virtual time, in processor cycles (the CM-5 nodes ran at 33 MHz).
using Cycles = std::uint64_t;

/// Identifier of a pointer-dereference site in the (mini-)compiled program.
/// The mechanism-selection heuristic assigns each site either computation
/// migration or software caching; the runtime consults the decision table
/// at every access through that site.
using SiteId = std::uint32_t;

/// Identifier of an Olden thread (for statistics and debugging).
using ThreadId = std::uint64_t;

/// Upper bound on machine size. 64 lets us keep processor sets in a single
/// word, which is how the runtime tracks "processors written since the last
/// migration" for the return-stub invalidation optimization.
inline constexpr ProcId kMaxProcs = 64;

/// CM-5 node clock rate; converts virtual cycles to reported seconds.
inline constexpr double kClockHz = 33.0e6;

/// The remote-access mechanism chosen for a dereference site (§3): either
/// migrate the computation to the data, or cache the data at the
/// computation. The compile-time heuristic of §4 makes this choice.
enum class Mechanism : std::uint8_t {
  kMigrate,
  kCache,
};

[[nodiscard]] constexpr const char* to_string(Mechanism m) {
  return m == Mechanism::kMigrate ? "migrate" : "cache";
}

/// A set of processors, one bit per ProcId.
class ProcSet {
 public:
  constexpr ProcSet() = default;

  // Shifting by >= 64 is undefined behavior, so p must be a real ProcId;
  // Machine's constructor guarantees nprocs <= kMaxProcs up front.
  constexpr void add(ProcId p) {
    assert(p < kMaxProcs);
    bits_ |= (std::uint64_t{1} << p);
  }
  constexpr void remove(ProcId p) {
    assert(p < kMaxProcs);
    bits_ &= ~(std::uint64_t{1} << p);
  }
  [[nodiscard]] constexpr bool contains(ProcId p) const {
    assert(p < kMaxProcs);
    return (bits_ >> p) & 1U;
  }
  constexpr void clear() { bits_ = 0; }
  [[nodiscard]] constexpr bool empty() const { return bits_ == 0; }
  [[nodiscard]] constexpr std::uint64_t raw() const { return bits_; }
  [[nodiscard]] int count() const { return std::popcount(bits_); }

  /// Calls fn(ProcId) for every member.
  template <class Fn>
  void for_each(Fn&& fn) const {
    std::uint64_t b = bits_;
    while (b != 0) {
      const int p = std::countr_zero(b);
      fn(static_cast<ProcId>(p));
      b &= b - 1;
    }
  }

 private:
  std::uint64_t bits_ = 0;
};

inline double cycles_to_seconds(Cycles c) {
  return static_cast<double>(c) / kClockHz;
}

}  // namespace olden
