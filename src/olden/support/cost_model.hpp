// CostModel: the CM-5 calibration knobs for the simulated machine.
//
// Every cost the runtime charges comes from this table, so experiments can
// re-run the suite under a different machine balance (the paper's §7 notes
// that a network of workstations would shift the migration/caching threshold
// one way and hardware-assisted machines the other).
//
// Calibration anchors, from the paper:
//   * a thread migration costs about 7x a remote cache-line fetch (§4),
//     which puts the break-even path-affinity near 86% (§4.3 footnote);
//   * write tracking for the eager-release ("global knowledge") and
//     bilateral coherence schemes costs 7 instructions on non-shared pages
//     and 23 on shared pages (Appendix A).
#pragma once

#include "olden/support/types.hpp"

namespace olden {

struct CostModel {
  // --- every heap reference ---------------------------------------------
  /// Compiler-inserted locality test: extract processor bits, compare.
  Cycles pointer_test = 3;
  /// A reference that turns out to be processor-local.
  Cycles local_access = 1;

  // --- software caching ---------------------------------------------------
  /// Hash-table lookup + tag translation on a cache hit.
  Cycles cache_lookup = 12;
  /// Extra per-chain-element search cost beyond the first bucket entry.
  Cycles cache_chain_step = 4;
  /// Round trip to fetch one 64-byte line from its home (requester side;
  /// the home also pays `remote_handler` out of its own clock).
  Cycles cache_miss = 320;
  /// Allocating a fresh page entry in the translation table on first touch.
  Cycles page_alloc = 60;
  /// Active-message handler occupancy charged to the home processor per
  /// request it services (line fetch, write-through, timestamp check).
  Cycles remote_handler = 40;
  /// Requester-side cost of a write-through message (fire and forget).
  Cycles remote_write = 80;

  // --- computation migration ----------------------------------------------
  // Total one-way cost (sender occupancy + wire + receiver dispatch) is
  // the paper's 7x-a-miss anchor: 2240 cycles. Only `migration_send`
  // occupies the sender — an active-message send returns once the state
  // is marshalled, which is what lets one processor fling parallel work
  // without serializing on full migration latencies.
  /// Sender-side marshal + injection for a forward migration (active
  /// message launches are cheap; the latency lives in the wire and the
  /// receiver).
  Cycles migration_send = 300;
  /// Network transit: arrival = send end + this.
  Cycles migration_wire = 1140;
  /// Receiver-side cost of accepting a migration: interrupt, unmarshal,
  /// scheduler entry. This is what makes fine-grain "ping-pong" migration
  /// patterns (the failure mode §1 describes) so expensive.
  Cycles migration_recv = 800;
  /// Return stub: registers + return address only (no frame comes back).
  Cycles return_send = 200;
  Cycles return_wire = 600;
  Cycles return_recv = 300;

  [[nodiscard]] Cycles migration_total() const {
    return migration_send + migration_wire;
  }

  // --- futures --------------------------------------------------------------
  /// futurecall bookkeeping: save continuation on the work list.
  Cycles future_call = 40;
  /// touch on an already-resolved future.
  Cycles future_touch = 10;
  /// Popping a stolen continuation and turning it into a runnable thread.
  Cycles future_steal = 120;
  /// Sending a future-resolution message home from a remote processor.
  Cycles future_resolve_msg = 400;

  // --- coherence (Appendix A) ------------------------------------------------
  /// Compiler-inserted write tracking, non-shared page.
  Cycles write_track_unshared = 7;
  /// Compiler-inserted write tracking, shared page.
  Cycles write_track_shared = 23;
  /// Sender-side cost of one invalidation message.
  Cycles invalidate_send = 60;
  /// Receiver-side cost of applying one invalidation message.
  Cycles invalidate_recv = 40;
  /// Bilateral scheme: timestamp-check round trip (no data moves).
  Cycles timestamp_check = 220;

  // --- reliable delivery (fault plane only) ---------------------------------
  // Charged to the kRetry bucket, and only when fault injection is
  // enabled: a fault-free run never executes this machinery, so these
  // never perturb the paper's numbers.
  /// Receiver-side occupancy to emit one acknowledgement.
  Cycles ack_send = 30;
  /// Acknowledgement transit on the wire.
  Cycles ack_wire = 600;
  /// Sender-side cost of processing one acknowledgement.
  Cycles ack_recv = 20;
  /// Sender-side cost of re-marshalling + re-injecting a timed-out message.
  Cycles retransmit_send = 300;
  /// One-way wire transit for a coherence message (fill request/reply,
  /// push invalidation, timestamp check) once it rides the lossy wire.
  /// Half of `cache_miss` minus the handler occupancies, so a fault-free
  /// round trip stays in the neighborhood of the synchronous charge.
  Cycles coherence_wire = 140;

  // --- allocation -------------------------------------------------------------
  /// ALLOC library call (local bump allocation).
  Cycles alloc_local = 30;
  /// ALLOC on a remote processor (request/ack round trip).
  Cycles alloc_remote = 600;

  // --- no-overhead mode -----------------------------------------------------
  /// When true, the machine charges only explicit `work()` plus one cycle
  /// per heap access: this models the "true sequential implementation"
  /// baseline the paper divides by to compute speedups.
  bool sequential_baseline = false;
};

}  // namespace olden
