// trace::Observer — the single attachment point between the runtime and
// the observability layer.
//
// A Machine holds an optional Observer*; every instrumentation hook in the
// runtime is guarded by a null check, so with no observer installed the
// hooks compile down to one predictable branch and touch nothing (and in
// *virtual* time they are free either way: hooks only read the clocks the
// runtime already advanced — see the determinism A/B test).
//
// Lifecycle, from a bench binary's point of view:
//
//   trace::Observer obs;
//   obs.set_trace_enabled(true);          // collect TraceEvents
//   obs.begin_run("TreeAdd/p=4/local");   // label the next machine run
//   ... run a Machine constructed with RunConfig{.observer = &obs} ...
//   trace::write_chrome_trace(obs, "out.json", &err);
//   trace::write_stats_json(obs, "stats.json", &err);
//
// Machine calls attach() from its constructor and finish() when it goes
// quiescent; each attach/finish pair closes one RunRecord.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "olden/profile/profile.hpp"
#include "olden/sample/sample.hpp"
#include "olden/support/stats.hpp"
#include "olden/support/types.hpp"
#include "olden/trace/streaming_sink.hpp"
#include "olden/trace/trace.hpp"

namespace olden {
class Machine;
struct RunConfig;
}  // namespace olden

namespace olden::trace {

/// Everything recorded about one Machine run.
struct RunRecord {
  std::string label;
  /// Free-form configuration the bench binary wants exported alongside
  /// (benchmark name, seed, paper_size, ...).
  std::map<std::string, std::string> meta;
  ProcId nprocs = 0;
  std::string scheme;
  bool sequential_baseline = false;

  Cycles makespan = 0;
  std::vector<Cycles> proc_clock;            ///< final clock per processor
  std::vector<BucketCycles> breakdown;       ///< per-processor cycle buckets
  /// Counter snapshot: every MachineStats field by name, plus makespan and
  /// derived machine-level counts.
  std::map<std::string, std::uint64_t> counters;
  std::array<Histogram, kNumHists> hists{};
  std::array<std::uint64_t, kNumEventKinds> event_counts{};
  /// Per-message-class fault decomposition (mirrors MachineStats; exported
  /// as the stats JSON `fault_classes` object, keyed by to_string(MsgClass)).
  std::array<std::uint64_t, kNumMsgClasses> class_sent{};
  std::array<std::uint64_t, kNumMsgClasses> class_drops{};
  std::array<std::uint64_t, kNumMsgClasses> class_dups{};
  std::array<std::uint64_t, kNumMsgClasses> class_delays{};
  std::array<std::uint64_t, kNumMsgClasses> class_retries{};

  std::vector<TraceEvent> events;
  std::uint64_t events_dropped = 0;
  /// Events written through a StreamingTraceSink instead of `events`; the
  /// run's retained count is events.size() + events_streamed either way.
  std::uint64_t events_streamed = 0;

  /// Interval-sampled heat counters (empty unless profiling was enabled;
  /// see src/olden/profile/). Riding in the RunRecord means adopt_run
  /// merges worker profiles byte-identically to a serial run.
  profile::RunProfile profile;

  /// SMARTS-style sampled-run window tallies (disabled unless --sample;
  /// see src/olden/sample/ and docs/SAMPLING.md). Rides here for the same
  /// reason profile does: adopt_run merges host-parallel worker cells
  /// byte-identically to a serial run.
  sample::RunSample sample;

  [[nodiscard]] BucketCycles bucket_totals() const {
    BucketCycles t{};
    for (const BucketCycles& b : breakdown) {
      for (std::size_t i = 0; i < kNumBuckets; ++i) t[i] += b[i];
    }
    return t;
  }
};

class Observer {
 public:
  // --- configuration (set before the first run) -------------------------

  /// Collect per-event TraceEvents (for the Chrome/binary trace exports).
  /// Counters, histograms and cycle accounting are always collected while
  /// an observer is attached; event collection is opt-in because a full
  /// table sweep emits tens of millions of events.
  void set_trace_enabled(bool on) { trace_enabled_ = on; }
  [[nodiscard]] bool trace_enabled() const { return trace_enabled_; }

  /// Cap on retained TraceEvents across all runs; further events are
  /// counted in `events_dropped` but not stored.
  void set_event_limit(std::uint64_t n) { event_limit_ = n; }
  [[nodiscard]] std::uint64_t event_limit() const { return event_limit_; }

  /// Collect interval-sampled site/page/processor heat profiles (see
  /// src/olden/profile/ and docs/PROFILING.md). Like tracing, profiling
  /// never touches virtual time; unlike tracing it is bounded by the
  /// program's site/page footprint, not its event count.
  void enable_profile(Cycles interval_cycles = profile::kDefaultIntervalCycles) {
    profile_on_ = true;
    profile_interval_ = interval_cycles == 0 ? 1 : interval_cycles;
  }
  [[nodiscard]] bool profile_enabled() const { return profile_on_; }
  [[nodiscard]] Cycles profile_interval() const { return profile_interval_; }

  /// Stream retained events to `sink` (v2 binary bytes on disk) instead of
  /// accumulating them in RunRecord::events. Install before the first run;
  /// the caller owns the sink and finalizes it after the last run. The
  /// retention limit and `events_dropped` accounting behave exactly as in
  /// the in-memory path.
  void set_sink(StreamingTraceSink* sink) { sink_ = sink; }
  [[nodiscard]] StreamingTraceSink* sink() const { return sink_; }

  /// Enable SMARTS-style systematic sampling with the given W:D:offset
  /// schedule. Outside detail windows the hooks run in functional-warming
  /// mode: event ids still advance (id stability), but per-event counts,
  /// cycle attribution, histograms, page heat and profiling are all
  /// suppressed. Mutually exclusive with tracing and profiling — ObsCli
  /// enforces that at flag-parse time.
  void set_sample(const sample::Spec& spec) {
    sample_spec_ = spec;
    sample_on_ = spec.enabled();
  }
  [[nodiscard]] bool sample_enabled() const { return sample_on_; }
  [[nodiscard]] const sample::Spec& sample_spec() const {
    return sample_spec_;
  }

  // --- run lifecycle ------------------------------------------------------

  /// Name the next Machine run (call before constructing the Machine).
  void begin_run(std::string label,
                 std::map<std::string, std::string> meta = {});

  /// Called by Machine's constructor.
  void attach(const RunConfig& cfg);
  /// Called by Machine when it goes quiescent: snapshots stats, clocks,
  /// cycle buckets and histograms into the current RunRecord.
  void finish(const Machine& m);

  [[nodiscard]] const std::vector<RunRecord>& runs() const { return runs_; }
  [[nodiscard]] std::uint64_t events_retained() const {
    return events_retained_;
  }

  /// Append a run completed in another Observer (a host-parallel worker
  /// cell), re-applying this observer's cross-run retention limit so the
  /// merged record is byte-identical to what a serial run would have
  /// produced: the serial path retains a prefix of each run's events and
  /// counts the rest in events_dropped, so truncating the donor's prefix
  /// against the remaining budget reproduces it exactly. Streams the
  /// events into the sink (and drops the vector) when one is installed.
  void adopt_run(RunRecord&& r);

  /// adopt_run for every run in `donor`, in order; leaves donor empty.
  /// Callers merge worker observers in serial cell order to keep output
  /// deterministic regardless of completion order.
  void adopt_runs_from(Observer& donor);

  // --- hot-path hooks (called by the runtime, observer non-null) ---------

  /// Record one event and return its per-run id. Ids are assigned in
  /// emission order and are consumed even when the event is dropped by the
  /// retention limit, so parent references stay stable across different
  /// `--trace-limit` settings (and across trace-enabled on/off, where the
  /// runtime still threads ids through its obs-only bookkeeping).
  std::uint64_t event(EventKind k, Cycles t, ProcId p, ThreadId th,
                      SiteId site, std::uint64_t a0 = 0, std::uint64_t a1 = 0,
                      std::uint64_t chain = kNoChain,
                      std::uint64_t parent = kNoEvent) {
    const std::uint64_t id = next_event_id_++;
    if (sample_on_) {
      // Functional warming: the id is consumed (stability contract above)
      // but the event is only tallied when its stamp falls in a detail
      // window. Tracing/profiling are excluded under sampling.
      cur_.sample.add_event(t, k);
      return id;
    }
    ++cur_.event_counts[static_cast<std::size_t>(k)];
    if (profile_on_) cur_.profile.on_event(k, t, p, site, a0, a1);
    if (!trace_enabled_) return id;
    if (events_retained_ >= event_limit_) {
      ++cur_.events_dropped;
      return id;
    }
    if (sink_ != nullptr) {
      sink_->append(TraceEvent{t, p, th, k, site, a0, a1, id, chain, parent});
      ++cur_.events_streamed;
    } else {
      cur_.events.push_back(TraceEvent{t, p, th, k, site, a0, a1, id, chain,
                                       parent});
    }
    ++events_retained_;
    return id;
  }

  /// Open a new causal chain (thread lineage). Chains are numbered in
  /// thread-creation order, per run.
  std::uint64_t new_chain() { return next_chain_id_++; }

  /// Attribute `c` cycles on processor p to bucket b. `now` is p's clock
  /// *after* the charge (the same convention event stamps use), so the
  /// profiler can split the span [now - c, now) across its intervals.
  void account(ProcId p, Cycles c, CycleBucket b, Cycles now) {
    if (sample_on_) {
      // Only the detail-window overlap of the span [now - c, now) is
      // attributed; whole-run breakdown rows are not kept under sampling.
      cur_.sample.add_span(now - c, now, b);
      return;
    }
    acct_[p][static_cast<std::size_t>(b)] += c;
    if (profile_on_ && c != 0) cur_.profile.add_cycles(now - c, now, b);
  }

  /// One local or write-through dereference, for the profiling plane; no
  /// trace event exists for these (they would swamp the event stream).
  void profile_access(Cycles t, SiteId site, std::uint64_t page,
                      profile::AccessClass cls) {
    if (profile_on_) cur_.profile.add_access(t, site, page, cls);
  }

  void record(Hist h, std::uint64_t v) {
    if (sample_on_) return;  // histograms are suppressed under sampling
    cur_.hists[static_cast<std::size_t>(h)].record(v);
  }

  /// One software-cache access on processor p touching `page` (page heat;
  /// folded into the kPageHeat histogram at finish()).
  void touch_page(ProcId p, std::uint32_t page) {
    if (sample_on_) return;  // page heat is suppressed under sampling
    ++page_heat_[(static_cast<std::uint64_t>(p) << 32) | page];
  }

 private:
  bool trace_enabled_ = false;
  bool profile_on_ = false;
  bool sample_on_ = false;
  sample::Spec sample_spec_;
  Cycles profile_interval_ = profile::kDefaultIntervalCycles;
  std::uint64_t event_limit_ = 1'000'000;
  std::uint64_t events_retained_ = 0;
  std::uint64_t next_event_id_ = 0;  ///< per-run; reset in attach()
  std::uint64_t next_chain_id_ = 0;  ///< per-run; reset in attach()

  bool run_open_ = false;
  StreamingTraceSink* sink_ = nullptr;
  RunRecord cur_;
  std::vector<BucketCycles> acct_;
  std::unordered_map<std::uint64_t, std::uint64_t> page_heat_;
  std::vector<RunRecord> runs_;
};

// --- exporters (export.cpp) -------------------------------------------------

/// Chrome trace_event JSON (open in Perfetto / chrome://tracing): one
/// process per run, one thread track per virtual processor; ts is virtual
/// cycles displayed as microseconds. Cross-processor causal links
/// (migration arrivals, return stubs, future steals, touch wakes) are
/// emitted as flow events, so Perfetto draws the migration arrows.
[[nodiscard]] std::string chrome_trace_json(const Observer& obs);
bool write_chrome_trace(const Observer& obs, const std::string& path,
                        std::string* err = nullptr);

/// Compact binary log, format v2: "OLDNTRC2" magic, little-endian packed
/// records carrying the causal id/chain/parent fields, and a per-run
/// header with nprocs, makespan and the dropped-event count (so offline
/// analysis can refuse truncated traces). v1 logs ("OLDNTRC1") are
/// detected and rejected by the reader in src/olden/analyze/.
[[nodiscard]] std::string binary_trace_bytes(const Observer& obs);
bool write_binary_trace(const Observer& obs, const std::string& path,
                        std::string* err = nullptr);
// (The v2 format constants — kBinaryTraceVersion, kBinaryTraceMagic,
// kBinaryRecordBytes — live in trace.hpp, shared with the streaming sink.)

/// The structured stats document (schema documented in
/// docs/OBSERVABILITY.md and validated by tools/check_stats_schema.py).
/// v2: adds the `retry` cycle bucket and the fault-plane counters
/// (fault_messages, fault_drops, ..., hiccup_cycles); see
/// docs/ROBUSTNESS.md.
/// v3: adds the coherence request/reply counters (coherence_requests,
/// replies_ignored, fills_retried, invalidations_retried,
/// ts_checks_retried) and the per-run `fault_classes` object splitting
/// sent/drops/dups/delays/retries by message class.
/// v4: adds the adaptive-scheme flip counters (scheme_flips,
/// flips_to_cache, flips_to_migrate, flip_drain_lines,
/// flip_drain_messages; the per-direction counts provably sum to
/// scheme_flips) and admits "adaptive" as a run scheme.
/// v5: adds sampled runs (`sampled: true` with the pinned window
/// schedule, integer-exact in-window `measured` sums, per-counter
/// `estimates` with 95% CIs, and an exact-vs-estimated `provenance`
/// partition; see docs/SAMPLING.md). Exact runs are byte-identical to
/// v4 apart from the version field.
inline constexpr int kStatsSchemaVersion = 5;
[[nodiscard]] std::string stats_json(const Observer& obs);
bool write_stats_json(const Observer& obs, const std::string& path,
                      std::string* err = nullptr);

/// Human-readable per-processor cycle-breakdown table for one run.
[[nodiscard]] std::string breakdown_table(const RunRecord& run);

/// Human-readable schedule/estimate summary for one sampled run (printed
/// by --breakdown in place of the per-processor table, which sampled runs
/// do not collect).
[[nodiscard]] std::string sample_table(const RunRecord& run);

}  // namespace olden::trace
