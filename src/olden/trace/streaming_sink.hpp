// StreamingTraceSink — the disk-backed twin of Observer::events.
//
// The in-memory event vector cannot hold a paper-scale run (a 256K-node
// TreeAdd at p=8 emits millions of events; the full paper suite would need
// gigabytes of RAM). The sink writes the exact v2 ("OLDNTRC2") byte stream
// binary_trace_bytes() would have produced, but incrementally: events go
// through a large private buffer as they are emitted, and the fields a
// writer cannot know up front — the file-level run count and each run's
// makespan / dropped-event / event counts — are back-patched with fseek
// when the run (or file) closes. A finished file is indistinguishable,
// byte for byte, from the in-memory export of the same run
// (tests/streaming_trace_test.cpp proves it).
//
// Lifecycle (driven by trace::Observer once installed via set_sink()):
//
//   StreamingTraceSink sink("trace.bin");
//   obs.set_sink(&sink);
//   ... runs: Observer calls begin_run()/append()/end_run() ...
//   sink.finalize(&err);   // back-patch the run count, flush, close
//
// Errors are sticky: the first I/O failure is recorded, every later call
// becomes a no-op, and finalize() reports it. The sink is single-threaded
// by design — in host-parallel mode (bench_cell --jobs) worker cells
// retain events in their private Observers and the main thread replays
// them into the sink in deterministic serial order (adopt_runs_from).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "olden/support/types.hpp"
#include "olden/trace/trace.hpp"

namespace olden::trace {

class StreamingTraceSink {
 public:
  /// Default write-buffer size: big enough that paper-scale runs hit the
  /// filesystem in ~4 MiB sequential chunks, small enough to be invisible
  /// next to the simulator's own footprint.
  static constexpr std::size_t kDefaultBufferBytes = std::size_t{4} << 20;

  explicit StreamingTraceSink(std::string path,
                              std::size_t buffer_bytes = kDefaultBufferBytes);
  ~StreamingTraceSink();
  StreamingTraceSink(const StreamingTraceSink&) = delete;
  StreamingTraceSink& operator=(const StreamingTraceSink&) = delete;

  [[nodiscard]] bool ok() const { return err_.empty(); }
  [[nodiscard]] const std::string& error() const { return err_; }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t events_written() const {
    return events_written_;
  }
  [[nodiscard]] std::uint32_t runs_written() const { return runs_begun_; }

  /// Open one run: writes the label header with zero placeholders for
  /// makespan / dropped / event count.
  void begin_run(const std::string& label, ProcId nprocs);

  /// Append one event record to the open run (hot path: 68 bytes into the
  /// buffer, amortized one fwrite per buffer fill).
  void append(const TraceEvent& e) {
    if (!run_open_ || !err_.empty()) {
      if (err_.empty()) set_error("event emitted outside a run");
      return;
    }
    if (buf_.size() + kBinaryRecordBytes > buffer_bytes_) flush();
    put_u64(e.time);
    put_u32(e.proc);
    put_u64(e.thread);
    buf_ += static_cast<char>(e.kind);
    buf_.append(3, '\0');
    put_u32(e.site);
    put_u64(e.arg0);
    put_u64(e.arg1);
    put_u64(e.id);
    put_u64(e.chain);
    put_u64(e.parent);
    ++run_events_;
    ++events_written_;
  }

  /// Close the open run: back-patches its makespan / dropped / event-count
  /// header fields.
  void end_run(Cycles makespan, std::uint64_t events_dropped);

  /// Back-patch the file-level run count, flush and close. Idempotent; the
  /// destructor calls it as a safety net. Returns false (and sets *err)
  /// if any write along the way failed.
  bool finalize(std::string* err = nullptr);

 private:
  void put_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_ += static_cast<char>((v >> (8 * i)) & 0xff);
    }
  }
  void put_u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_ += static_cast<char>((v >> (8 * i)) & 0xff);
    }
  }
  void flush();
  void set_error(std::string what);
  /// Seek to `off`, overwrite `n` bytes, seek back to the end.
  void patch(long off, const char* bytes, std::size_t n);

  std::string path_;
  std::size_t buffer_bytes_;
  std::FILE* file_ = nullptr;
  std::string buf_;
  std::string err_;
  /// Bytes already fwritten; logical position = written_ + buf_.size().
  std::uint64_t written_ = 0;
  /// File offset of the open run's makespan/dropped/nevents patch area.
  std::uint64_t run_patch_off_ = 0;
  std::uint64_t run_events_ = 0;
  std::uint64_t events_written_ = 0;
  std::uint32_t runs_begun_ = 0;
  bool run_open_ = false;
  bool finalized_ = false;
};

}  // namespace olden::trace
