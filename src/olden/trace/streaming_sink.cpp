#include "olden/trace/streaming_sink.hpp"

namespace olden::trace {

namespace {

/// Offset of the file-level u32 run count: magic(8) + version(4).
constexpr long kNumRunsOffset = 8 + 4;

void encode_u32le(char* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}
void encode_u64le(char* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

}  // namespace

StreamingTraceSink::StreamingTraceSink(std::string path,
                                       std::size_t buffer_bytes)
    : path_(std::move(path)),
      // Always leave room for at least one record plus a run header.
      buffer_bytes_(buffer_bytes < 4096 ? 4096 : buffer_bytes) {
  buf_.reserve(buffer_bytes_);
  // "wb+" so the back-patch seeks can rewrite committed header bytes.
  file_ = std::fopen(path_.c_str(), "wb+");
  if (file_ == nullptr) {
    set_error("cannot open " + path_ + " for writing");
    return;
  }
  buf_.append(kBinaryTraceMagic, sizeof kBinaryTraceMagic);
  put_u32(static_cast<std::uint32_t>(kBinaryTraceVersion));
  put_u32(0);  // run count, patched in finalize()
}

StreamingTraceSink::~StreamingTraceSink() { finalize(); }

void StreamingTraceSink::set_error(std::string what) {
  if (err_.empty()) err_ = std::move(what);
}

void StreamingTraceSink::flush() {
  if (buf_.empty() || file_ == nullptr || !err_.empty()) {
    buf_.clear();
    return;
  }
  if (std::fwrite(buf_.data(), 1, buf_.size(), file_) != buf_.size()) {
    set_error("short write to " + path_);
  }
  written_ += buf_.size();
  buf_.clear();
}

void StreamingTraceSink::patch(long off, const char* bytes, std::size_t n) {
  if (file_ == nullptr || !err_.empty()) return;
  flush();
  if (!err_.empty()) return;
  if (std::fseek(file_, off, SEEK_SET) != 0 ||
      std::fwrite(bytes, 1, n, file_) != n ||
      std::fseek(file_, 0, SEEK_END) != 0) {
    set_error("back-patch failed in " + path_);
  }
}

void StreamingTraceSink::begin_run(const std::string& label, ProcId nprocs) {
  if (finalized_) {
    set_error("begin_run after finalize");
    return;
  }
  if (run_open_) {
    set_error("begin_run with a run still open");
    return;
  }
  run_open_ = true;
  run_events_ = 0;
  ++runs_begun_;
  put_u32(static_cast<std::uint32_t>(label.size()));
  buf_ += label;
  put_u32(nprocs);
  run_patch_off_ = written_ + buf_.size();
  put_u64(0);  // makespan, patched in end_run()
  put_u64(0);  // events_dropped, patched in end_run()
  put_u64(0);  // event count, patched in end_run()
}

void StreamingTraceSink::end_run(Cycles makespan,
                                 std::uint64_t events_dropped) {
  if (!run_open_) {
    set_error("end_run with no run open");
    return;
  }
  run_open_ = false;
  char bytes[24];
  encode_u64le(bytes, makespan);
  encode_u64le(bytes + 8, events_dropped);
  encode_u64le(bytes + 16, run_events_);
  patch(static_cast<long>(run_patch_off_), bytes, sizeof bytes);
}

bool StreamingTraceSink::finalize(std::string* err) {
  if (!finalized_) {
    finalized_ = true;
    if (run_open_) set_error("finalize with a run still open");
    char bytes[4];
    encode_u32le(bytes, runs_begun_);
    patch(kNumRunsOffset, bytes, sizeof bytes);
    if (file_ != nullptr) {
      if (std::fflush(file_) != 0) set_error("flush failed for " + path_);
      if (std::fclose(file_) != 0) set_error("close failed for " + path_);
      file_ = nullptr;
    }
  }
  if (!err_.empty() && err != nullptr) *err = err_;
  return err_.empty();
}

}  // namespace olden::trace
