// Core observability types: typed trace events, cycle-accounting buckets,
// and log-scale histograms.
//
// The runtime emits these through an optional trace::Observer (see
// observer.hpp). Everything here is pure data — nothing touches virtual
// time, so enabling observability can never perturb a run (the
// tracing-on/off A/B test in tests/observability_determinism_test.cpp
// holds the runtime to that).
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <limits>

#include "olden/support/types.hpp"

namespace olden::trace {

/// Site attribution for events that have no dereference site.
inline constexpr SiteId kNoSite = 0xffffffffu;
/// Thread attribution for events raised outside any thread.
inline constexpr ThreadId kNoThread = ~ThreadId{0};
/// Sentinel for "this event has no causal parent" / "no such event".
inline constexpr std::uint64_t kNoEvent = ~std::uint64_t{0};
/// Sentinel for events raised outside any causal chain.
inline constexpr std::uint64_t kNoChain = ~std::uint64_t{0};

/// Every observable runtime event, with the meaning of the two
/// kind-specific payload words (arg0/arg1).
enum class EventKind : std::uint8_t {
  kMigrationDepart,  ///< arg0 = target proc
  kMigrationArrive,  ///< arg0 = source proc, arg1 = depart->arrive cycles
  kReturnStubSend,   ///< arg0 = caller proc (destination)
  kReturnStubArrive, ///< arg0 = source proc, arg1 = send->arrive cycles
  kCacheHit,         ///< arg0 = page id
  kCacheMiss,        ///< arg0 = page id, arg1 = lines fetched this access
  kCacheLineFill,    ///< arg0 = page id, arg1 = line index
  kLineInvalidate,   ///< arg0 = page id, arg1 = lines dropped
  kCacheFlush,       ///< arg0 = lines dropped (local-knowledge acquire)
  kMarkSuspect,      ///< arg0 = pages marked (bilateral acquire)
  kTimestampCheck,   ///< arg0 = page id, arg1 = lines dropped
  kFutureCreate,     ///< arg0 = cell serial
  kFutureSteal,      ///< arg0 = cell serial, arg1 = 1 if resolve-created
  kTouchBlock,       ///< arg0 = cell serial
  kFutureResolve,    ///< arg0 = cell serial, arg1 = 1 if resolved remotely
  // Fault plane (src/olden/fault/). Emitted only when fault injection is
  // enabled; appended after the v2 kinds so existing binary traces keep
  // their encodings.
  kFaultDrop,        ///< arg0 = dst proc, arg1 = channel sequence number
  kFaultDelay,       ///< arg0 = dst proc, arg1 = extra wire cycles
  kFaultDuplicate,   ///< arg0 = dst proc, arg1 = channel sequence number
  kRetransmit,       ///< arg0 = dst proc, arg1 = attempt number
  kDupSuppressed,    ///< arg0 = src proc, arg1 = channel sequence number
  kHiccup,           ///< arg0 = stall cycles injected on `proc`
  // Coherence request/reply wire messages (fault plane only): under fault
  // injection, cache fills, push invalidations and bilateral timestamp
  // checks become explicit messages. Appended after the fault kinds so
  // existing binary traces keep their encodings. Fault events attributing
  // wire trouble to these messages encode the message class in arg0's
  // upper bits (see fault_plane.cpp).
  kFillRequest,      ///< arg0 = page id, arg1 = line index
  kFillReply,        ///< arg0 = page id, arg1 = line index (at the home)
  kInvalidatePush,   ///< arg0 = page id, arg1 = sharer proc (at the sender)
  kInvalidateAck,    ///< arg0 = page id, arg1 = acking proc (at the sender)
  kTsCheckRequest,   ///< arg0 = page id, arg1 = home proc
  kTsCheckReply,     ///< arg0 = page id, arg1 = home version (at the home)
  // Adaptive scheme (--scheme=adaptive). Appended after the coherence
  // kinds so existing binary traces keep their encodings.
  kSchemeFlip,       ///< arg0 = 1 if migrate->cache else cache->migrate,
                     ///< arg1 = pages registered for draining (0 for
                     ///< flips to caching); site = the flipped site
};

inline constexpr std::size_t kNumEventKinds = 28;

[[nodiscard]] constexpr const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kMigrationDepart: return "migration_depart";
    case EventKind::kMigrationArrive: return "migration_arrive";
    case EventKind::kReturnStubSend: return "return_stub_send";
    case EventKind::kReturnStubArrive: return "return_stub_arrive";
    case EventKind::kCacheHit: return "cache_hit";
    case EventKind::kCacheMiss: return "cache_miss";
    case EventKind::kCacheLineFill: return "cache_line_fill";
    case EventKind::kLineInvalidate: return "line_invalidate";
    case EventKind::kCacheFlush: return "cache_flush";
    case EventKind::kMarkSuspect: return "mark_suspect";
    case EventKind::kTimestampCheck: return "timestamp_check";
    case EventKind::kFutureCreate: return "future_create";
    case EventKind::kFutureSteal: return "future_steal";
    case EventKind::kTouchBlock: return "touch_block";
    case EventKind::kFutureResolve: return "future_resolve";
    case EventKind::kFaultDrop: return "fault_drop";
    case EventKind::kFaultDelay: return "fault_delay";
    case EventKind::kFaultDuplicate: return "fault_duplicate";
    case EventKind::kRetransmit: return "retransmit";
    case EventKind::kDupSuppressed: return "dup_suppressed";
    case EventKind::kHiccup: return "hiccup";
    case EventKind::kFillRequest: return "fill_request";
    case EventKind::kFillReply: return "fill_reply";
    case EventKind::kInvalidatePush: return "invalidate_push";
    case EventKind::kInvalidateAck: return "invalidate_ack";
    case EventKind::kTsCheckRequest: return "ts_check_request";
    case EventKind::kTsCheckReply: return "ts_check_reply";
    case EventKind::kSchemeFlip: return "scheme_flip";
  }
  return "?";
}

/// One timestamped, attributed runtime event.
///
/// Causal threading (binary log v2): every event carries an emission-order
/// `id` (stable even when retention drops events — dropped events still
/// consume ids), the `chain` it belongs to, and the id of its causal
/// `parent` event. A chain is one thread lineage: the root thread starts
/// chain 0 and every future steal starts a fresh chain whose first event's
/// parent links back into the spawning chain (the future_create for idle
/// steals, the future_resolve for resolve-created ones). Within a chain
/// the parent is simply the thread's previous event; migration /
/// return-stub arrivals parent on their departure event, and the first
/// event after a blocked touch wakes parents on the future_resolve that
/// woke it. The analysis engine (src/olden/analyze/) reconstructs the
/// event DAG from exactly these links.
struct TraceEvent {
  Cycles time = 0;       ///< virtual time on `proc` when the event fired
  ProcId proc = 0;       ///< processor the event is charged to
  ThreadId thread = kNoThread;
  EventKind kind = EventKind::kMigrationDepart;
  SiteId site = kNoSite; ///< dereference site, when one is responsible
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  std::uint64_t id = kNoEvent;      ///< per-run emission serial
  std::uint64_t chain = kNoChain;   ///< causal chain (thread lineage)
  std::uint64_t parent = kNoEvent;  ///< id of the causal parent event
};

/// Where a processor's cycles went. Each clock increment the machine makes
/// is attributed to exactly one bucket; idle time is the gap a processor
/// spends waiting for its next runnable thread.
enum class CycleBucket : std::uint8_t {
  kCompute,     ///< user work, pointer tests, future bookkeeping, allocation
  kMigration,   ///< migration / return-stub send+receive, future resolution
  kCacheStall,  ///< cache lookups, line fetches, write-throughs, fill service
  kCoherence,   ///< write tracking, invalidations, timestamp checks
  kIdle,        ///< waiting for work (includes trailing wait to makespan)
  kRetry,       ///< reliable-delivery overhead: acks, retransmits (fault
                ///< plane only; always zero when faults are disabled)
};

inline constexpr std::size_t kNumBuckets = 6;

[[nodiscard]] constexpr const char* to_string(CycleBucket b) {
  switch (b) {
    case CycleBucket::kCompute: return "compute";
    case CycleBucket::kMigration: return "migration";
    case CycleBucket::kCacheStall: return "cache_stall";
    case CycleBucket::kCoherence: return "coherence";
    case CycleBucket::kIdle: return "idle";
    case CycleBucket::kRetry: return "retry";
  }
  return "?";
}

using BucketCycles = std::array<std::uint64_t, kNumBuckets>;

/// A power-of-two-bucketed histogram of 64-bit values. Bucket 0 holds
/// exactly the value 0; bucket b >= 1 holds [2^(b-1), 2^b). Values are
/// also summed and min/max-tracked so exports can report exact means.
class Histogram {
 public:
  /// Bucket 0 for value 0, plus one bucket per bit of a 64-bit value.
  static constexpr std::size_t kBucketCount = 65;

  void record(std::uint64_t v) {
    ++buckets_[bucket_of(v)];
    ++count_;
    sum_ += v;
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  [[nodiscard]] static std::size_t bucket_of(std::uint64_t v) {
    return static_cast<std::size_t>(std::bit_width(v));
  }
  /// Inclusive lower bound of bucket b.
  [[nodiscard]] static std::uint64_t bucket_lo(std::size_t b) {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }
  /// Inclusive upper bound of bucket b.
  [[nodiscard]] static std::uint64_t bucket_hi(std::size_t b) {
    if (b == 0) return 0;
    if (b == kBucketCount - 1) return std::numeric_limits<std::uint64_t>::max();
    return (std::uint64_t{1} << b) - 1;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t b) const {
    return buckets_[b];
  }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  [[nodiscard]] bool empty() const { return count_ == 0; }

 private:
  std::array<std::uint64_t, kBucketCount> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ = 0;
};

/// The fixed histogram set the runtime feeds. An enum (rather than a
/// by-name registry) keeps the hot-path record a single array index.
enum class Hist : std::uint8_t {
  kMigrationLatency,  ///< depart -> arrival-processing-done, cycles
  kReturnLatency,     ///< return-stub send -> arrive, cycles
  kMissFillCycles,    ///< requester-side stall cycles per missing access
  kReadyQueueDepth,   ///< ready-queue depth sampled at each enqueue
  kWorklistDepth,     ///< work-list depth sampled at each futurecall
  kPageHeat,          ///< cached accesses per (proc, page), folded at finish
};

inline constexpr std::size_t kNumHists = 6;

// --- binary trace format v2 ("OLDNTRC2") ------------------------------------
// Shared by the in-memory exporter (export.cpp), the streaming sink
// (streaming_sink.hpp) and the readers in src/olden/analyze/. The two
// writers must stay byte-identical; tests/streaming_trace_test.cpp holds
// them to that.

inline constexpr int kBinaryTraceVersion = 2;
inline constexpr char kBinaryTraceMagic[8] = {'O', 'L', 'D', 'N',
                                              'T', 'R', 'C', '2'};
/// The v1 magic, kept so readers can name the version they refuse.
inline constexpr char kBinaryTraceMagicV1[8] = {'O', 'L', 'D', 'N',
                                                'T', 'R', 'C', '1'};
/// Size of one packed binary record (time, proc, thread, kind, site, args,
/// id, chain, parent).
inline constexpr std::size_t kBinaryRecordBytes =
    8 + 4 + 8 + 1 + 3 + 4 + 8 + 8 + 8 + 8 + 8;

[[nodiscard]] constexpr const char* to_string(Hist h) {
  switch (h) {
    case Hist::kMigrationLatency: return "migration_latency_cycles";
    case Hist::kReturnLatency: return "return_stub_latency_cycles";
    case Hist::kMissFillCycles: return "miss_fill_cycles";
    case Hist::kReadyQueueDepth: return "ready_queue_depth";
    case Hist::kWorklistDepth: return "worklist_depth";
    case Hist::kPageHeat: return "page_heat";
  }
  return "?";
}

}  // namespace olden::trace
