#include "olden/trace/observer.hpp"

#include <utility>

#include "olden/runtime/machine.hpp"

namespace olden::trace {

void Observer::begin_run(std::string label,
                         std::map<std::string, std::string> meta) {
  // A begin_run with no intervening machine just relabels the pending run.
  cur_.label = std::move(label);
  cur_.meta = std::move(meta);
}

void Observer::attach(const RunConfig& cfg) {
  if (cur_.label.empty()) {
    cur_.label = "run-" + std::to_string(runs_.size());
  }
  cur_.nprocs = cfg.nprocs;
  // The adaptive scheme is the eager-global protocol plus a live decision
  // table; it only exists as a distinct scheme once ticks are scheduled
  // (interval == 0 is exactly the seed scheme, byte for byte).
  cur_.scheme =
      cfg.adapt.interval > 0 ? "adaptive" : to_string(cfg.scheme);
  cur_.sequential_baseline = cfg.costs.sequential_baseline;
  acct_.assign(cfg.nprocs, BucketCycles{});
  cur_.sample.reset(sample_spec_);
  cur_.profile = profile::RunProfile{};
  if (profile_on_) {
    cur_.profile.enabled = true;
    cur_.profile.interval_cycles = profile_interval_;
    cur_.profile.procs.assign(cfg.nprocs, profile::ProcProfile{});
  }
  page_heat_.clear();
  next_event_id_ = 0;
  next_chain_id_ = 0;
  run_open_ = true;
  // The sink mirrors runs_ exactly: every run gets a header even when
  // event collection is off (the in-memory export also emits empty runs).
  if (sink_ != nullptr) sink_->begin_run(cur_.label, cur_.nprocs);
}

void Observer::finish(const Machine& m) {
  if (!run_open_) return;
  run_open_ = false;

  cur_.makespan = m.makespan();
  cur_.proc_clock.resize(m.nprocs());
  cur_.breakdown = std::move(acct_);
  for (ProcId p = 0; p < m.nprocs(); ++p) {
    cur_.proc_clock[p] = m.proc_clock(p);
    // A processor that went quiescent before the makespan was idle for
    // the remainder of the run.
    cur_.breakdown[p][static_cast<std::size_t>(CycleBucket::kIdle)] +=
        cur_.makespan - m.proc_clock(p);
    if (sample_on_) {
      // Mirror the trailing idle into the sample windows so each window's
      // bucket cycles sum to nprocs * window length (the conservation law
      // the estimator's apportionment and the v5 schema checker rely on).
      cur_.sample.add_span(m.proc_clock(p), cur_.makespan,
                           CycleBucket::kIdle);
    }
    if (profile_on_) {
      // Mirror the trailing idle into the interval timeline so interval
      // bucket cycles always sum to nprocs * makespan.
      cur_.profile.add_cycles(m.proc_clock(p), cur_.makespan,
                              CycleBucket::kIdle);
    }
  }
  if (sample_on_) {
    // Whole-run breakdown rows are not collected under sampling (account()
    // feeds the windows instead); drop the idle-only husk rather than
    // export rows that violate the per-proc conservation rule.
    cur_.sample.finalize(cur_.makespan);
    cur_.breakdown.clear();
  }
  if (profile_on_) {
    // Join each profiled site to the mechanism the compile-time heuristic
    // (or a feedback override) actually chose for this run.
    for (auto& [site, sp] : cur_.profile.sites) {
      sp.mechanism = m.mechanism(site);
    }
  }

  for (const auto& [key, heat] : page_heat_) {
    (void)key;
    cur_.hists[static_cast<std::size_t>(Hist::kPageHeat)].record(heat);
  }
  page_heat_.clear();

  const MachineStats& s = m.stats();
  auto& c = cur_.counters;
  c["local_reads"] = s.local_reads;
  c["local_writes"] = s.local_writes;
  c["cacheable_reads"] = s.cacheable_reads;
  c["cacheable_writes"] = s.cacheable_writes;
  c["cacheable_reads_remote"] = s.cacheable_reads_remote;
  c["cacheable_writes_remote"] = s.cacheable_writes_remote;
  c["cache_hits"] = s.cache_hits;
  c["cache_misses"] = s.cache_misses;
  c["timestamp_checks"] = s.timestamp_checks;
  c["timestamp_stalls"] = s.timestamp_stalls;
  c["migrations"] = s.migrations;
  c["return_migrations"] = s.return_migrations;
  c["futurecalls"] = s.futurecalls;
  c["futures_inlined"] = s.futures_inlined;
  c["futures_stolen"] = s.futures_stolen;
  c["touches_blocked"] = s.touches_blocked;
  c["cache_flushes"] = s.cache_flushes;
  c["lines_invalidated"] = s.lines_invalidated;
  c["invalidation_messages"] = s.invalidation_messages;
  c["tracked_writes"] = s.tracked_writes;
  c["pages_cached"] = s.pages_cached;
  c["allocations"] = s.allocations;
  c["bytes_allocated"] = s.bytes_allocated;
  c["fault_messages"] = s.fault_messages;
  c["fault_drops"] = s.fault_drops;
  c["fault_duplicates"] = s.fault_duplicates;
  c["fault_delays"] = s.fault_delays;
  c["retransmissions"] = s.retransmissions;
  c["duplicates_suppressed"] = s.duplicates_suppressed;
  c["acks_sent"] = s.acks_sent;
  c["hiccups_injected"] = s.hiccups_injected;
  c["hiccup_cycles"] = s.hiccup_cycles;
  c["coherence_requests"] = s.coherence_requests;
  c["replies_ignored"] = s.replies_ignored;
  c["scheme_flips"] = s.scheme_flips;
  c["flips_to_cache"] = s.flips_to_cache;
  c["flips_to_migrate"] = s.flips_to_migrate;
  c["flip_drain_lines"] = s.flip_drain_lines;
  c["flip_drain_messages"] = s.flip_drain_messages;
  // Retry decomposition for the three coherence classes, by name — the
  // full per-class matrix lives in the `fault_classes` export object.
  c["fills_retried"] =
      s.class_retries[static_cast<std::size_t>(MsgClass::kFill)];
  c["invalidations_retried"] =
      s.class_retries[static_cast<std::size_t>(MsgClass::kInvalidate)];
  c["ts_checks_retried"] =
      s.class_retries[static_cast<std::size_t>(MsgClass::kTsCheck)];
  c["threads_created"] = m.threads_created();
  c["makespan_cycles"] = cur_.makespan;
  for (std::size_t i = 0; i < kNumMsgClasses; ++i) {
    cur_.class_sent[i] = s.class_sent[i];
    cur_.class_drops[i] = s.class_drops[i];
    cur_.class_dups[i] = s.class_dups[i];
    cur_.class_delays[i] = s.class_delays[i];
    cur_.class_retries[i] = s.class_retries[i];
  }

  if (sink_ != nullptr) sink_->end_run(cur_.makespan, cur_.events_dropped);
  runs_.push_back(std::move(cur_));
  cur_ = RunRecord{};
}

void Observer::adopt_run(RunRecord&& r) {
  // Re-apply the cross-run retention limit. A serial observer would have
  // entered this run with `budget` slots left and kept the first `budget`
  // events; the donor (which started from a full limit) necessarily kept a
  // superset prefix, so truncation reconstructs the serial record exactly.
  const std::uint64_t budget =
      event_limit_ > events_retained_ ? event_limit_ - events_retained_ : 0;
  if (r.events.size() > budget) {
    r.events_dropped += r.events.size() - budget;
    r.events.resize(static_cast<std::size_t>(budget));
  }
  events_retained_ += r.events.size();
  if (sink_ != nullptr) {
    sink_->begin_run(r.label, r.nprocs);
    for (const TraceEvent& e : r.events) sink_->append(e);
    sink_->end_run(r.makespan, r.events_dropped);
    r.events_streamed = r.events.size();
    r.events.clear();
    r.events.shrink_to_fit();
  }
  runs_.push_back(std::move(r));
}

void Observer::adopt_runs_from(Observer& donor) {
  for (RunRecord& r : donor.runs_) adopt_run(std::move(r));
  donor.runs_.clear();
  donor.events_retained_ = 0;
}

}  // namespace olden::trace
